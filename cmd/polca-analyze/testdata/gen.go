//go:build ignore

// gen regenerates spans.jsonl, the golden-test fixture: a small
// deterministic serving run under KV pressure, a mid-run clock-lock
// retarget, and a node death, so the fixture exercises queueing, chunked
// prefill, preemption recompute, decode coalescing, cap-slowdown
// attribution, drop reasons, and the failover path's multi-root spans
// (half the killed requests are re-admitted with a bumped Retry, as the
// cluster failover path would). Run from this directory:
//
//	go run gen.go
//
// Then refresh the golden report with `go test .. -run TestGolden -update`.
package main

import (
	"fmt"
	"os"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/obs"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/workload"
)

func main() {
	eng := sim.New(3)
	tracer := obs.NewSpanTracer()
	eng.SetObserver(&obs.Observer{Spans: tracer})

	// The serve package's KV-pressure scenario: ~3786 KV tokens per GPU, so
	// a dozen mid-size requests force preemptions.
	spec := gpu.A100SXM80GB()
	spec.MemoryGB = 51
	cfg := serve.Config{Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16, DecodeStride: 4}
	dev := gpu.NewDevice(spec)
	rep, err := serve.NewReplica(eng, cfg, dev, 0, 0)
	if err != nil {
		panic(err)
	}

	dev.LockClock(1100)
	// Kill the node mid-run: in-flight sequences drop with reason
	// node-death. Even-ID victims are re-admitted five seconds later with a
	// bumped Retry — the shape the cluster failover path produces — so the
	// fixture holds both permanent drops and retried multi-root requests.
	rep.OnDrop = func(s *serve.Seq, now sim.Time, reason string) {
		req := s.Req
		if req.ID%2 != 0 {
			return
		}
		req.Retry++
		eng.At(now+5*time.Second, func(at sim.Time) { rep.Enqueue(at, req) })
	}
	eng.At(25*time.Second, func(now sim.Time) { rep.Fail(now) })
	classes := []string{"chat", "search", "code"}
	for i := 0; i < 12; i++ {
		i := i
		at := time.Duration(i) * 2 * time.Second
		eng.At(at, func(now sim.Time) {
			rep.Enqueue(now, workload.Request{
				ID: int64(i + 1), Arrival: now, Class: classes[i%len(classes)],
				Input: 600, Output: 300,
			})
		})
	}
	// Retarget the lock mid-run (banks partial iteration energy) and engage
	// the brake for a window, as POLCA would.
	eng.At(20*time.Second, func(now sim.Time) { dev.LockClock(900); rep.Replan(now) })
	eng.At(40*time.Second, func(now sim.Time) { dev.SetBrake(true); rep.Replan(now) })
	eng.At(60*time.Second, func(now sim.Time) { dev.SetBrake(false); rep.Replan(now) })
	eng.RunUntil(time.Hour)
	if !rep.Idle() {
		panic("fixture run did not drain")
	}

	f, err := os.Create("spans.jsonl")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	prov := obs.Provenance{
		"tool": "polca-sim", "policy": "recording-fixture", "seed": 3,
		"serve": true, "router": "least-queue", "git": "unknown",
	}
	if err := obs.WriteProvenance(f, prov); err != nil {
		panic(err)
	}
	if err := tracer.WriteJSONL(f); err != nil {
		panic(err)
	}
	st := rep.Stats()
	fmt.Printf("wrote spans.jsonl: %d spans, %d preemptions, %.0f J, cap +%.1f s\n",
		tracer.Len(), st.Preemptions, st.EnergyJ, st.CapExtraSec)
}
