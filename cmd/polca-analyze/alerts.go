package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"polca/internal/obs"
)

// This file is the -alerts mode: it reads the structured event JSONL that
// `polca-sim -trace` writes, extracts the rules engine's alert.fire /
// alert.resolve stream, reconstructs alert episodes offline, and renders
// a per-alert summary plus the longest episodes. Because the rules engine
// emits a resolve for every fire (end-of-run resolution included), the
// offline reconstruction reconciles exactly with the simulator's own
// alert summary — the cross-check the cluster tests pin down.

// episode is one reconstructed fire→resolve window.
type episode struct {
	name       string
	cond       string
	start, end time.Duration
	fireValue  float64
}

func (e episode) duration() time.Duration { return e.end - e.start }

// alertAgg aggregates one rule's episodes.
type alertAgg struct {
	name    string
	cond    string
	fires   int
	active  time.Duration
	longest time.Duration
}

// AnalyzeAlerts reads event JSONL in one streaming pass (obs.ScanEvents,
// so sequence gaps and truncation fail loudly with line numbers) and
// renders the alert timeline report. Non-alert events are skipped, so the
// input can be a full -trace dump.
func AnalyzeAlerts(r io.Reader, top int) (string, error) {
	var header []string
	var episodes []episode
	aggs := map[string]*alertAgg{}
	var order []string
	open := map[string]*episode{}
	events := 0

	agg := func(name, cond string) *alertAgg {
		a := aggs[name]
		if a == nil {
			a = &alertAgg{name: name, cond: cond}
			aggs[name] = a
			order = append(order, name)
		}
		return a
	}

	err := obs.ScanEvents(r, func(line string) { header = append(header, line) }, func(ev obs.Event) error {
		switch ev.Kind {
		case obs.KindAlertFire:
			events++
			a := agg(ev.Label, ev.Reason)
			a.fires++
			if open[ev.Label] != nil {
				return fmt.Errorf("alert %q fired twice without resolving", ev.Label)
			}
			open[ev.Label] = &episode{name: ev.Label, cond: ev.Reason, start: ev.At, fireValue: ev.Value}
		case obs.KindAlertResolve:
			events++
			e := open[ev.Label]
			if e == nil {
				return fmt.Errorf("alert %q resolved without firing", ev.Label)
			}
			delete(open, ev.Label)
			e.end = ev.At
			episodes = append(episodes, *e)
			a := agg(ev.Label, e.cond)
			a.active += e.duration()
			if e.duration() > a.longest {
				a.longest = e.duration()
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if events == 0 {
		return "", fmt.Errorf("no alert events in input (run polca-sim with -rules and -trace)")
	}

	var b strings.Builder
	for _, h := range header {
		fmt.Fprintln(&b, h)
	}
	if len(header) > 0 {
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "Alert timeline: %d events, %d episodes, %d rules\n\n", events, len(episodes), len(order))

	fmt.Fprintf(&b, "%-18s %6s %12s %12s  %s\n", "alert", "fires", "active", "longest", "condition")
	for _, name := range order {
		a := aggs[name]
		fmt.Fprintf(&b, "%-18s %6d %12s %12s  %s\n",
			a.name, a.fires, fmtDur(a.active), fmtDur(a.longest), a.cond)
	}
	for name, e := range open {
		fmt.Fprintf(&b, "%-18s still active since %s (no resolve in trace)\n", name, fmtDur(e.start))
	}
	fmt.Fprintln(&b)

	if top > 0 && len(episodes) > 0 {
		ranked := append([]episode(nil), episodes...)
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].duration() > ranked[j].duration() })
		if top > len(ranked) {
			top = len(ranked)
		}
		fmt.Fprintf(&b, "Top %d longest episodes:\n", top)
		fmt.Fprintf(&b, "%12s %12s %12s %-18s %10s\n", "fired", "resolved", "duration", "alert", "value")
		for _, e := range ranked[:top] {
			fmt.Fprintf(&b, "%12s %12s %12s %-18s %10.4g\n",
				fmtDur(e.start), fmtDur(e.end), fmtDur(e.duration()), e.name, e.fireValue)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}

// fmtDur renders a simulated timestamp or duration compactly (seconds
// rounded; days kept as hours like the rest of the tooling).
func fmtDur(d time.Duration) string {
	return d.Round(time.Second).String()
}
