package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestAlertsMode drives the CLI end to end on a handcrafted event trace
// and checks the reconstructed per-alert summary: episode pairing, total
// active time, longest episode, and provenance echo.
func TestAlertsMode(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-alerts", "-top", "2", "testdata/alerts.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	got := out.String()
	for _, w := range []string{
		"# polca-sim event trace",
		"Alert timeline: 6 events, 3 episodes, 2 rules",
		"breaker-breach", "row.util > 1",
		"breaker-near", "row.power > 0.97*row.breaker for 30s",
		"Top 2 longest episodes:",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("output missing %q:\n%s", w, got)
		}
	}
	// breaker-breach: two episodes of 6s and 2s → 2 fires, 8s active, 6s
	// longest. breaker-near: one 30s episode.
	for _, row := range []struct{ name, fires, active, longest string }{
		{"breaker-breach", "2", "8s", "6s"},
		{"breaker-near", "1", "30s", "30s"},
	} {
		line := ""
		for _, l := range strings.Split(got, "\n") {
			if strings.HasPrefix(l, row.name) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no summary row for %s:\n%s", row.name, got)
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[1] != row.fires || fields[2] != row.active || fields[3] != row.longest {
			t.Errorf("%s row = %q, want fires=%s active=%s longest=%s",
				row.name, line, row.fires, row.active, row.longest)
		}
	}
	// The longest-episode table is duration-sorted: breaker-near's 30s
	// episode first.
	topIdx := strings.Index(got, "Top 2 longest episodes:")
	nearIdx := strings.Index(got[topIdx:], "breaker-near")
	breachIdx := strings.Index(got[topIdx:], "breaker-breach")
	if nearIdx < 0 || breachIdx < 0 || nearIdx > breachIdx {
		t.Errorf("longest-episode table not duration-sorted:\n%s", got[topIdx:])
	}
}

// TestAlertsModeRejectsSpanInput: pointing -alerts at a span file is an
// input error, not an empty report — the scanner rejects span kinds with
// the offending line, and a genuine event trace without any alerts gets
// its own distinct error.
func TestAlertsModeRejectsSpanInput(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-alerts", "testdata/spans.jsonl"}, &out, &errw); code != 1 {
		t.Fatalf("cli exited %d, want 1; stderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "unknown kind") || !strings.Contains(errw.String(), "line") {
		t.Errorf("stderr = %q, want unknown-kind error with a line number", errw.String())
	}
	noAlerts := strings.NewReader(`{"t_us":2000000,"kind":"brake.engage","value":0.99}` + "\n")
	if _, err := AnalyzeAlerts(noAlerts, 5); err == nil || !strings.Contains(err.Error(), "no alert events") {
		t.Errorf("err = %v, want mention of missing alert events", err)
	}
}

// TestAlertsModeUnpairedResolve: a resolve with no prior fire is a
// malformed trace and must be reported with its line number.
func TestAlertsModeUnpairedResolve(t *testing.T) {
	in := strings.NewReader(`{"t_us":1000000,"kind":"alert.resolve","value":1,"reason":"x","label":"ghost"}`)
	if _, err := AnalyzeAlerts(in, 5); err == nil || !strings.Contains(err.Error(), "resolved without firing") {
		t.Errorf("err = %v, want unpaired-resolve error", err)
	}
}
