package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"polca/internal/obs"
	"polca/internal/stats"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current output")

// TestGolden runs the full CLI on the committed fixture (a deterministic
// serving run under KV pressure and clock capping — see testdata/gen.go)
// and compares against the golden report byte for byte. -no-provenance
// keeps the output stable: the analyzer's own header carries a git stamp
// that varies by build.
func TestGolden(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-top", "5", "-no-provenance", "testdata/spans.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.txt", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden.txt updated")
		return
	}
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from golden (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestReproducesReportPercentiles is the acceptance criterion: the p99 TTFT
// the simulator's report derives from its streaming sketch must be
// recomputable from the span JSONL alone. On the fixture every class holds
// few requests, so the sketch still stores singletons and the two numbers
// agree exactly.
func TestReproducesReportPercentiles(t *testing.T) {
	f, err := os.Open("testdata/spans.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	// Only each request's final attempt contributes to the class table —
	// the analyzer folds superseded failover roots into attempt counters.
	finalRetry := map[int64]int32{}
	for _, sp := range spans {
		if sp.Kind == obs.SpanRequest && sp.Retry >= finalRetry[sp.Req] {
			finalRetry[sp.Req] = sp.Retry
		}
	}
	ttftByClass := map[string][]float64{}
	digests := map[string]*obs.Digest{}
	for _, sp := range spans {
		if sp.Kind != obs.SpanRequest || sp.TTFTSec < 0 || sp.Retry != finalRetry[sp.Req] {
			continue
		}
		ttftByClass[sp.Class] = append(ttftByClass[sp.Class], sp.TTFTSec)
		d := digests[sp.Class]
		if d == nil {
			d = obs.NewDigest(obs.DefaultCompression)
			digests[sp.Class] = d
		}
		d.Add(sp.TTFTSec)
	}
	if len(ttftByClass) < 2 {
		t.Fatalf("fixture has %d classes, want several", len(ttftByClass))
	}

	var outBuf, errBuf bytes.Buffer
	if code := cli([]string{"testdata/spans.jsonl"}, &outBuf, &errBuf); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errBuf.String())
	}
	report := outBuf.String()
	for class, xs := range ttftByClass {
		exact := stats.Percentile(xs, 99)
		sketch := digests[class].Percentile(99)
		if exact != sketch {
			t.Errorf("%s: sketch p99 %.6f != exact %.6f on a singleton-resolution sample", class, sketch, exact)
		}
		cell := fmt.Sprintf("%9.3f", exact)
		found := false
		for _, line := range strings.Split(report, "\n") {
			if strings.HasPrefix(line, class) && strings.Contains(line, cell) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: report does not show the exact p99 TTFT %s", class, strings.TrimSpace(cell))
		}
	}
}

// TestAnalyzeConservesFixtureEnergy cross-checks the fixture itself: child
// span energies sum to each root, and the analyzer's overview total equals
// the sum over roots.
func TestAnalyzeConservesFixtureEnergy(t *testing.T) {
	f, err := os.Open("testdata/spans.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation holds per admission attempt: every span carries the
	// attempt's Retry, so a retried request's attempts reconcile
	// independently, and the report total covers all of them.
	type attempt struct {
		req   int64
		retry int32
	}
	rootJ := map[attempt]float64{}
	childJ := map[attempt]float64{}
	for _, sp := range spans {
		k := attempt{sp.Req, sp.Retry}
		if sp.Kind == obs.SpanRequest {
			rootJ[k] = sp.EnergyJ
		} else {
			childJ[k] += sp.EnergyJ
		}
	}
	var total float64
	for k, j := range rootJ {
		total += j
		if d := childJ[k] - j; d > 1e-6 || d < -1e-6 {
			t.Errorf("req %d attempt %d: children sum %.3f J, root %.3f J", k.req, k.retry, childJ[k], j)
		}
	}
	var out, errw bytes.Buffer
	if code := cli([]string{"testdata/spans.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	wantLine := fmt.Sprintf("Energy: %.2f kJ", total/1e3)
	if !strings.Contains(out.String(), wantLine) {
		t.Errorf("overview missing %q", wantLine)
	}
}

// TestProvenanceHeader: by default the report opens with the analyzer's
// own `# key: value` lines (tool, input, mode, parameters) above the
// echoed input headers, and -no-provenance drops exactly those lines.
func TestProvenanceHeader(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-top", "5", "testdata/spans.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	got := out.String()
	for _, w := range []string{
		"# tool: polca-analyze",
		"# input: testdata/spans.jsonl",
		"# mode: spans",
		"# top: 5",
		"# ttft-slo: 15s",
		"# git: ",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("default output missing provenance line %q", w)
		}
	}
	var bare, errw2 bytes.Buffer
	if code := cli([]string{"-top", "5", "-no-provenance", "testdata/spans.jsonl"}, &bare, &errw2); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw2.String())
	}
	if strings.Contains(bare.String(), "# tool: polca-analyze") {
		t.Error("-no-provenance did not suppress the analyzer header")
	}
	if !strings.HasSuffix(got, bare.String()) {
		t.Error("provenance header is not a pure prefix: report body differs with the flag")
	}
}

func TestCLIErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{}, &out, &errw); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := cli([]string{"testdata/definitely-missing.jsonl"}, &out, &errw); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := strings.NewReader(`{"req":1,"id":1,"kind":"zebra","start_us":0,"end_us":1}` + "\n")
	if _, err := Analyze(bad, 5); err == nil {
		t.Error("Analyze accepted an unknown span kind")
	}
	if _, err := Analyze(strings.NewReader(""), 5); err == nil {
		t.Error("Analyze accepted an empty trace")
	}
}

// writeSyntheticSpans streams nReq synthetic request trees (5 spans each:
// root, queue, prefill, decode, preempt) in WriteJSONL order — root first —
// to w, without materializing them.
func writeSyntheticSpans(w io.Writer, nReq int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# polca-sim synthetic memory fixture")
	for i := 0; i < nReq; i++ {
		base := int64(i) * 1_000_000 // µs
		class := []string{"chat", "code", "summarize"}[i%3]
		if _, err := fmt.Fprintf(bw,
			`{"req":%d,"id":1,"kind":"request","start_us":%d,"end_us":%d,"server":%d,"class":"%s","tokens":600,"preempts":1,"energy_j":%g,"cap_s":0.02,"ttft_s":0.8}`+"\n",
			i, base, base+30_000_000, i%16, class, 100.0+float64(i%50)); err != nil {
			return err
		}
		fmt.Fprintf(bw, `{"req":%d,"id":2,"parent":1,"kind":"queue","start_us":%d,"end_us":%d,"class":"%s"}`+"\n",
			i, base, base+300_000, class)
		fmt.Fprintf(bw, `{"req":%d,"id":3,"parent":1,"kind":"prefill","start_us":%d,"end_us":%d,"class":"%s","tokens":512}`+"\n",
			i, base+300_000, base+500_000, class)
		fmt.Fprintf(bw, `{"req":%d,"id":4,"parent":1,"kind":"decode","start_us":%d,"end_us":%d,"class":"%s","tokens":600,"energy_j":%g}`+"\n",
			i, base+500_000, base+30_000_000, class, 90.0+float64(i%50))
		if _, err := fmt.Fprintf(bw, `{"req":%d,"id":5,"parent":1,"kind":"preempt","start_us":%d,"end_us":%d,"class":"%s","tokens":128}`+"\n",
			i, base+700_000, base+700_000, class); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TestAnalyzeStreamsInFixedMemory is the acceptance test for the streaming
// input path: 40k requests × 5 spans = 200k spans arrive through a pipe (no
// backing buffer to mistake for the analyzer's own memory), and the heap
// high-water mark during Analyze must stay under a budget far below what
// materializing the file plus a []obs.Span (the old two-scan path) costs.
func TestAnalyzeStreamsInFixedMemory(t *testing.T) {
	const nReq = 40_000
	const budget = 96 << 20 // bytes of peak HeapAlloc

	runtime.GC()
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(writeSyntheticSpans(pw, nReq)) }()

	done := make(chan struct{})
	var peak uint64
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-done:
			default:
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return
		}
	}()

	report, err := Analyze(pr, 10)
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, fmt.Sprintf("Requests: %d (%d completed", nReq, nReq)) {
		t.Errorf("report did not fold all %d requests:\n%s", nReq, report[:200])
	}
	t.Logf("peak HeapAlloc %.1f MiB over %d spans (budget %d MiB)",
		float64(peak)/(1<<20), nReq*5, budget>>20)
	if peak > budget {
		t.Errorf("peak HeapAlloc %d MiB exceeds the %d MiB streaming budget", peak>>20, budget>>20)
	}
}

// TestFoldOutOfOrderAndErrors exercises the incremental folder's buffering
// and failure paths: children before their root fold identically, a child
// with no root anywhere is an error, and a duplicated root is an error.
func TestFoldOutOfOrderAndErrors(t *testing.T) {
	root := `{"req":3,"id":1,"kind":"request","start_us":0,"end_us":2000000,"class":"chat","tokens":10,"energy_j":5,"ttft_s":1.0}`
	queue := `{"req":3,"id":2,"kind":"queue","start_us":0,"end_us":400000}`
	prefill := `{"req":3,"id":3,"kind":"prefill","start_us":400000,"end_us":900000,"tokens":64}`
	preempt := `{"req":3,"id":4,"kind":"preempt","start_us":500000,"end_us":500000}`

	inOrder, err := Analyze(strings.NewReader(root+"\n"+queue+"\n"+prefill+"\n"+preempt+"\n"), 5)
	if err != nil {
		t.Fatal(err)
	}
	reversed, err := Analyze(strings.NewReader(preempt+"\n"+prefill+"\n"+queue+"\n"+root+"\n"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if inOrder != reversed {
		t.Errorf("root-last input folds differently:\n--- root first ---\n%s\n--- root last ---\n%s", inOrder, reversed)
	}

	if _, err := Analyze(strings.NewReader(queue+"\n"), 5); err == nil ||
		!strings.Contains(err.Error(), "no request root") {
		t.Errorf("orphan child err = %v", err)
	}
	if _, err := Analyze(strings.NewReader(root+"\n"+root+"\n"), 5); err == nil ||
		!strings.Contains(err.Error(), "two root spans") {
		t.Errorf("duplicate root err = %v", err)
	}
}
