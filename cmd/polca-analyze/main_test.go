package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"polca/internal/obs"
	"polca/internal/stats"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current output")

// TestGolden runs the full CLI on the committed fixture (a deterministic
// serving run under KV pressure and clock capping — see testdata/gen.go)
// and compares against the golden report byte for byte.
func TestGolden(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-top", "5", "testdata/spans.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.txt", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden.txt updated")
		return
	}
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from golden (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestReproducesReportPercentiles is the acceptance criterion: the p99 TTFT
// the simulator's report derives from its streaming sketch must be
// recomputable from the span JSONL alone. On the fixture every class holds
// few requests, so the sketch still stores singletons and the two numbers
// agree exactly.
func TestReproducesReportPercentiles(t *testing.T) {
	f, err := os.Open("testdata/spans.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	ttftByClass := map[string][]float64{}
	digests := map[string]*obs.Digest{}
	for _, sp := range spans {
		if sp.Kind != obs.SpanRequest || sp.TTFTSec < 0 {
			continue
		}
		ttftByClass[sp.Class] = append(ttftByClass[sp.Class], sp.TTFTSec)
		d := digests[sp.Class]
		if d == nil {
			d = obs.NewDigest(obs.DefaultCompression)
			digests[sp.Class] = d
		}
		d.Add(sp.TTFTSec)
	}
	if len(ttftByClass) < 2 {
		t.Fatalf("fixture has %d classes, want several", len(ttftByClass))
	}

	var outBuf, errBuf bytes.Buffer
	if code := cli([]string{"testdata/spans.jsonl"}, &outBuf, &errBuf); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errBuf.String())
	}
	report := outBuf.String()
	for class, xs := range ttftByClass {
		exact := stats.Percentile(xs, 99)
		sketch := digests[class].Percentile(99)
		if exact != sketch {
			t.Errorf("%s: sketch p99 %.6f != exact %.6f on a singleton-resolution sample", class, sketch, exact)
		}
		cell := fmt.Sprintf("%9.3f", exact)
		found := false
		for _, line := range strings.Split(report, "\n") {
			if strings.HasPrefix(line, class) && strings.Contains(line, cell) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: report does not show the exact p99 TTFT %s", class, strings.TrimSpace(cell))
		}
	}
}

// TestAnalyzeConservesFixtureEnergy cross-checks the fixture itself: child
// span energies sum to each root, and the analyzer's overview total equals
// the sum over roots.
func TestAnalyzeConservesFixtureEnergy(t *testing.T) {
	f, err := os.Open("testdata/spans.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	rootJ := map[int64]float64{}
	childJ := map[int64]float64{}
	for _, sp := range spans {
		if sp.Kind == obs.SpanRequest {
			rootJ[sp.Req] = sp.EnergyJ
		} else {
			childJ[sp.Req] += sp.EnergyJ
		}
	}
	var total float64
	for req, j := range rootJ {
		total += j
		if d := childJ[req] - j; d > 1e-6 || d < -1e-6 {
			t.Errorf("req %d: children sum %.3f J, root %.3f J", req, childJ[req], j)
		}
	}
	var out, errw bytes.Buffer
	if code := cli([]string{"testdata/spans.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	wantLine := fmt.Sprintf("Energy: %.2f kJ", total/1e3)
	if !strings.Contains(out.String(), wantLine) {
		t.Errorf("overview missing %q", wantLine)
	}
}

func TestCLIErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{}, &out, &errw); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := cli([]string{"testdata/definitely-missing.jsonl"}, &out, &errw); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := strings.NewReader(`{"req":1,"id":1,"kind":"zebra","start_us":0,"end_us":1}` + "\n")
	if _, err := Analyze(bad, 5); err == nil {
		t.Error("Analyze accepted an unknown span kind")
	}
	if _, err := Analyze(strings.NewReader(""), 5); err == nil {
		t.Error("Analyze accepted an empty trace")
	}
}
