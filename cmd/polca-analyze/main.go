// Command polca-analyze reads the request-span JSONL that `polca-sim -serve
// -spans out.jsonl` writes and produces an offline latency/energy report:
// where TTFT (time to first token) is spent on the critical path — queueing,
// prefill, preemption recompute, cap-induced slowdown — per-class latency
// and energy percentile tables computed exactly from the spans, and the
// top-K slowest and most energy-expensive requests.
//
// Usage:
//
//	polca-analyze [-top 10] [-ttft-slo 15s] spans.jsonl
//	polca-analyze -alerts [-top 10] trace.jsonl
//
// The per-class table reports SLO attainment — the fraction of each class's
// requests whose first token arrived within -ttft-slo (default 15s, the
// simulator's TTFT SLO) — followed by the Jain fairness index of those
// per-class attainment fractions: 1.0 means every class meets its SLO
// equally often, lower means the misses concentrate on a few classes.
// Scenario traces (polca-sim -scenario) additionally get a session summary,
// since their spans carry multi-turn session ids.
//
// With -alerts the input is instead the event trace written by `polca-sim
// -trace`, and the report reconstructs the rules engine's alert episodes
// offline: a per-alert summary (fires, total active time, longest episode)
// and the top-K longest episodes. The offline reconstruction reconciles
// exactly with the simulator's own alert summary because every fire is
// paired with a resolve, including end-of-run resolution.
//
// Reports are self-describing: the analyzer stamps its own `#` provenance
// header (tool, git revision, input path, mode, parameters) above the
// input's echoed `#` header, so a saved report records both how the data
// was produced and how it was read. -no-provenance suppresses the
// analyzer's lines (the git stamp varies by build) for byte-stable
// golden outputs. All percentiles here are exact (computed over every
// request in the trace); the simulator's own report uses a streaming
// quantile sketch, so the two agree to within the sketch's rank guarantee.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"polca/internal/obs"
	"polca/internal/stats"
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli runs the analyzer; split from main so tests drive it end to end.
func cli(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polca-analyze", flag.ContinueOnError)
	fs.SetOutput(errw)
	top := fs.Int("top", 10, "rows in the top-K slowest/most-expensive tables")
	ttftSLO := fs.Duration("ttft-slo", 15*time.Second, "TTFT SLO threshold for the per-class attainment column")
	alerts := fs.Bool("alerts", false, "analyze an event trace's alert.fire/alert.resolve stream instead of spans")
	noProv := fs.Bool("no-provenance", false, "suppress the analyzer's own `#` run-provenance header (input headers are still echoed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: polca-analyze [-alerts] [-top N] trace.jsonl")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 1
	}
	defer f.Close()
	analyze := func(r io.Reader, top int) (string, error) {
		return AnalyzeSLO(r, top, ttftSLO.Seconds())
	}
	mode := "spans"
	if *alerts {
		analyze = AnalyzeAlerts
		mode = "alerts"
	}
	report, err := analyze(f, *top)
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 1
	}
	if !*noProv {
		// The analyzer's own provenance, above the echoed input headers, so
		// a saved report records both how the data was made and how it was
		// read. -no-provenance drops the analyzer lines (the git stamp
		// varies by build), keeping golden outputs byte-stable.
		prov := obs.Provenance{
			"tool":  "polca-analyze",
			"git":   obs.GitDescribe(),
			"input": fs.Arg(0),
			"mode":  mode,
			"top":   *top,
		}
		if !*alerts {
			prov["ttft-slo"] = ttftSLO.String()
		}
		if err := obs.WriteProvenance(out, prov); err != nil {
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
	}
	fmt.Fprint(out, report)
	return 0
}

// request is one span tree folded into per-request aggregates.
type request struct {
	root obs.Span
	// critical-path components inside the [arrival, first token] window,
	// in seconds
	queue, prefill, recompute, stall float64
	preempts                         int
	haveRoot                         bool
	// attempts counts root spans superseded by a higher-Retry root: the
	// failover path emits one root per admission, and the latest attempt
	// is the request's outcome. The superseded attempts' energy, tokens,
	// and cap attribution accumulate here so the report stays conserved —
	// a failed attempt's work was still performed.
	attempts       int
	attemptEnergyJ float64
	attemptCapSec  float64
	attemptCapJ    float64
	attemptTokens  int32
	// pending buffers children that arrived before their root — the
	// critical-path window is unknown until the root supplies Start and
	// TTFT. WriteJSONL emits each root first, so this stays empty on
	// simulator output; it only fills on re-sorted or concatenated files.
	pending []pendingChild
}

// pendingChild is the compact residue of a child span awaiting its root:
// just what the fold needs, not the whole Span.
type pendingChild struct {
	id         int32
	kind       obs.SpanKind
	start, end time.Duration
	recompute  bool
}

// latencySec is the request's total residency (arrival to completion/drop).
func (r *request) latencySec() float64 { return (r.root.End - r.root.Start).Seconds() }

// foldAttempt accumulates a superseded root span's attribution.
func (r *request) foldAttempt(sp obs.Span) {
	r.attempts++
	r.attemptEnergyJ += sp.EnergyJ
	r.attemptCapSec += sp.CapSec
	r.attemptCapJ += sp.CapJ
	r.attemptTokens += sp.Tokens
}

// energyJ, capSec, capJ, and tokens are the request's totals across every
// admission attempt; on an unretried request they are just the root's.
func (r *request) energyJ() float64 { return r.root.EnergyJ + r.attemptEnergyJ }
func (r *request) capSec() float64  { return r.root.CapSec + r.attemptCapSec }
func (r *request) capJ() float64    { return r.root.CapJ + r.attemptCapJ }
func (r *request) tokens() int64    { return int64(r.root.Tokens) + int64(r.attemptTokens) }

// Analyze is AnalyzeSLO at the simulator's default 15 s TTFT SLO.
func Analyze(r io.Reader, top int) (string, error) {
	return AnalyzeSLO(r, top, 15)
}

// AnalyzeSLO reads span JSONL in one streaming pass and renders the offline
// report, judging per-class SLO attainment against sloSec. Spans fold into
// per-request aggregates as they arrive, so memory is proportional to the
// number of requests (plus any children whose root has not arrived yet),
// never to the span count or the file size.
func AnalyzeSLO(r io.Reader, top int, sloSec float64) (string, error) {
	f := newFolder()
	var header []string
	err := obs.ScanSpans(r, func(line string) { header = append(header, line) }, f.add)
	if err != nil {
		return "", err
	}
	reqs, err := f.finish()
	if err != nil {
		return "", err
	}
	if len(reqs) == 0 {
		return "", fmt.Errorf("no request spans in input")
	}

	var b strings.Builder
	for _, line := range header {
		fmt.Fprintln(&b, line)
	}
	if len(header) > 0 {
		fmt.Fprintln(&b)
	}
	writeOverview(&b, reqs)
	writeCriticalPath(&b, reqs)
	writeClassTable(&b, reqs, sloSec)
	writeTopK(&b, reqs, top)
	return b.String(), nil
}

// folder incrementally groups spans by request and derives the
// critical-path breakdown: child spans clipped to the [arrival,
// arrival+TTFT] window, since the time to first token is what the breakdown
// explains. Decode time never appears in the window (the first token rides
// the final prefill chunk); whatever the children leave uncovered is
// scheduler stall between iterations.
type folder struct {
	byReq map[int64]*request
}

func newFolder() *folder {
	return &folder{byReq: map[int64]*request{}}
}

// add folds one span. Children fold immediately when their root is known;
// otherwise a compact record is buffered until the root arrives.
func (f *folder) add(sp obs.Span) error {
	req := f.byReq[sp.Req]
	if req == nil {
		req = &request{}
		f.byReq[sp.Req] = req
	}
	if sp.Kind == obs.SpanRequest {
		// A retried request emits one root span per admission attempt; the
		// highest Retry is the outcome, earlier roots are counted as
		// superseded attempts. Two roots for the *same* attempt is still a
		// malformed trace.
		if req.haveRoot {
			switch {
			case sp.Retry == req.root.Retry:
				return fmt.Errorf("request %d has two root spans", sp.Req)
			case sp.Retry < req.root.Retry:
				req.foldAttempt(sp)
				return nil
			}
			req.foldAttempt(req.root)
		}
		req.root = sp
		req.haveRoot = true
		for _, c := range req.pending {
			req.fold(c)
		}
		req.pending = nil
		return nil
	}
	c := pendingChild{id: sp.ID, kind: sp.Kind, start: sp.Start, end: sp.End, recompute: sp.Recompute}
	if !req.haveRoot {
		req.pending = append(req.pending, c)
		return nil
	}
	req.fold(c)
	return nil
}

// fold applies one child to the request's aggregates. Callers guarantee the
// root is present.
func (r *request) fold(c pendingChild) {
	if c.kind == obs.SpanPreempt {
		r.preempts++
		return
	}
	if r.root.TTFTSec < 0 {
		return // never produced a token: no critical path to split
	}
	windowEnd := r.root.Start + time.Duration(r.root.TTFTSec*float64(time.Second))
	clipped := clip(c.start, c.end, r.root.Start, windowEnd)
	switch c.kind {
	case obs.SpanQueue:
		r.queue += clipped
	case obs.SpanPrefill:
		if c.recompute {
			r.recompute += clipped
		} else {
			r.prefill += clipped
		}
	}
}

// finish validates that every buffered child found its root, computes the
// stall residuals, and returns the requests ordered by ID.
func (f *folder) finish() ([]*request, error) {
	reqs := make([]*request, 0, len(f.byReq))
	for id, req := range f.byReq {
		if !req.haveRoot {
			return nil, fmt.Errorf("span %d/%d has no request root", id, req.pending[0].id)
		}
		if req.root.TTFTSec >= 0 {
			if stall := req.root.TTFTSec - req.queue - req.prefill - req.recompute; stall > 0 {
				req.stall = stall
			}
		}
		reqs = append(reqs, req)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].root.Req < reqs[j].root.Req })
	return reqs, nil
}

// clip returns the seconds of [s, e] that fall inside [lo, hi].
func clip(s, e, lo, hi time.Duration) float64 {
	if s < lo {
		s = lo
	}
	if e > hi {
		e = hi
	}
	if e <= s {
		return 0
	}
	return (e - s).Seconds()
}

func writeOverview(b *strings.Builder, reqs []*request) {
	var energy, capSec, capJ float64
	var tokens int64
	completed, dropped, preempted, attempts, retriedReqs := 0, 0, 0, 0, 0
	reasons := map[string]int{}
	for _, r := range reqs {
		energy += r.energyJ()
		capSec += r.capSec()
		capJ += r.capJ()
		tokens += r.tokens()
		if r.root.Reason == "" {
			completed++
		} else {
			dropped++
			reasons[r.root.Reason]++
		}
		if r.root.Preempts > 0 {
			preempted++
		}
		// In a complete trace the superseded-root count equals the final
		// root's Retry; on a truncated trace take whichever survived.
		n := r.attempts
		if int(r.root.Retry) > n {
			n = int(r.root.Retry)
		}
		if n > 0 {
			attempts += n
			retriedReqs++
		}
	}
	fmt.Fprintf(b, "Requests: %d (%d completed, %d dropped, %d preempted at least once)\n",
		len(reqs), completed, dropped, preempted)
	// Scenario traces carry session ids on their root spans; legacy traces
	// have none, and then the line is suppressed so old reports reproduce.
	sessions := map[int64]bool{}
	maxTurn := int32(0)
	for _, r := range reqs {
		if r.root.Session != 0 {
			sessions[r.root.Session] = true
			if r.root.Turn > maxTurn {
				maxTurn = r.root.Turn
			}
		}
	}
	if len(sessions) > 0 {
		fmt.Fprintf(b, "Sessions: %d multi-turn sessions (deepest turn %d)\n", len(sessions), maxTurn)
	}
	if attempts > 0 {
		fmt.Fprintf(b, "Failover: %d retried attempts across %d requests\n", attempts, retriedReqs)
	}
	if dropped > 0 {
		names := make([]string, 0, len(reasons))
		for name := range reasons {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(b, "Drop reasons:")
		for _, name := range names {
			fmt.Fprintf(b, " %s=%d", name, reasons[name])
		}
		fmt.Fprintln(b)
	}
	jPerTok := 0.0
	if tokens > 0 {
		jPerTok = energy / float64(tokens)
	}
	fmt.Fprintf(b, "Energy: %.2f kJ attributed across %d generated tokens (%.1f J/token)\n",
		energy/1e3, tokens, jPerTok)
	fmt.Fprintf(b, "Cap slowdown: %+.1f request-seconds, %+.2f kJ vs the DVFS-uncapped counterfactual\n\n",
		capSec, capJ/1e3)
}

// writeCriticalPath explains where TTFT goes: exact percentiles of each
// component and its share of the summed TTFT.
func writeCriticalPath(b *strings.Builder, reqs []*request) {
	var ttft, queue, prefill, recompute, stall, capSec []float64
	var totTTFT float64
	for _, r := range reqs {
		if r.root.TTFTSec < 0 {
			continue
		}
		ttft = append(ttft, r.root.TTFTSec)
		queue = append(queue, r.queue)
		prefill = append(prefill, r.prefill)
		recompute = append(recompute, r.recompute)
		stall = append(stall, r.stall)
		capSec = append(capSec, r.root.CapSec)
		totTTFT += r.root.TTFTSec
	}
	if len(ttft) == 0 {
		fmt.Fprintf(b, "Critical path: no request produced a first token\n\n")
		return
	}
	fmt.Fprintf(b, "TTFT critical path (%d requests with a first token):\n", len(ttft))
	fmt.Fprintf(b, "%-22s %10s %10s %10s %8s\n", "Component", "mean (s)", "p50 (s)", "p99 (s)", "share")
	row := func(name string, xs []float64) {
		share := 0.0
		if totTTFT > 0 {
			share = stats.Sum(xs) / totTTFT
		}
		fmt.Fprintf(b, "%-22s %10.3f %10.3f %10.3f %7.1f%%\n",
			name, stats.Mean(xs), stats.Percentile(xs, 50), stats.Percentile(xs, 99), share*100)
	}
	row("queue wait", queue)
	row("prefill", prefill)
	row("preemption recompute", recompute)
	row("scheduler stall", stall)
	row("ttft total", ttft)
	fmt.Fprintf(b, "%-22s %10.3f %10.3f %10.3f %8s\n",
		"cap slowdown (request)", stats.Mean(capSec), stats.Percentile(capSec, 50),
		stats.Percentile(capSec, 99), "-")
	fmt.Fprintln(b)
}

func writeClassTable(b *strings.Builder, reqs []*request, sloSec float64) {
	type agg struct {
		ttft, lat, energy []float64
		capSec            float64
		tokens            int64
		sloOK             int
	}
	classes := map[string]*agg{}
	var names []string
	for _, r := range reqs {
		name := r.root.Class
		if name == "" {
			name = "(none)"
		}
		a := classes[name]
		if a == nil {
			a = &agg{}
			classes[name] = a
			names = append(names, name)
		}
		if r.root.TTFTSec >= 0 {
			a.ttft = append(a.ttft, r.root.TTFTSec)
			if r.root.TTFTSec <= sloSec {
				a.sloOK++
			}
		}
		a.lat = append(a.lat, r.latencySec())
		a.energy = append(a.energy, r.energyJ())
		a.capSec += r.capSec()
		a.tokens += r.tokens()
	}
	sort.Strings(names)
	fmt.Fprintf(b, "Per-class latency and energy (exact percentiles over the trace; SLO = TTFT <= %gs):\n", sloSec)
	fmt.Fprintf(b, "%-12s %6s %9s %9s %8s %9s %9s %10s %10s %9s %9s\n",
		"Class", "reqs", "TTFT p50", "TTFT p99", "attain", "lat p50", "lat p99", "J p50", "J p99", "J/token", "cap (s)")
	var attain []float64
	for _, name := range names {
		a := classes[name]
		jPerTok := 0.0
		if a.tokens > 0 {
			jPerTok = stats.Sum(a.energy) / float64(a.tokens)
		}
		// Attainment over every request of the class: a request that never
		// produced a first token (dropped, shed) is an SLO miss.
		frac := float64(a.sloOK) / float64(len(a.lat))
		attain = append(attain, frac)
		fmt.Fprintf(b, "%-12s %6d %9.3f %9.3f %7.1f%% %9.2f %9.2f %10.1f %10.1f %9.1f %9.1f\n",
			name, len(a.lat),
			stats.Percentile(a.ttft, 50), stats.Percentile(a.ttft, 99), frac*100,
			stats.Percentile(a.lat, 50), stats.Percentile(a.lat, 99),
			stats.Percentile(a.energy, 50), stats.Percentile(a.energy, 99),
			jPerTok, a.capSec)
	}
	fmt.Fprintf(b, "Jain fairness of SLO attainment across classes: %.3f\n\n", stats.Jain(attain))
}

func writeTopK(b *strings.Builder, reqs []*request, top int) {
	if top <= 0 {
		return
	}
	byTTFT := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if r.root.TTFTSec >= 0 {
			byTTFT = append(byTTFT, r)
		}
	}
	sort.SliceStable(byTTFT, func(i, j int) bool { return byTTFT[i].root.TTFTSec > byTTFT[j].root.TTFTSec })
	writeRanked(b, fmt.Sprintf("Top %d slowest first tokens:", min(top, len(byTTFT))), byTTFT, top)

	byEnergy := append([]*request(nil), reqs...)
	sort.SliceStable(byEnergy, func(i, j int) bool { return byEnergy[i].energyJ() > byEnergy[j].energyJ() })
	writeRanked(b, fmt.Sprintf("Top %d most energy-expensive:", min(top, len(byEnergy))), byEnergy, top)
}

func writeRanked(b *strings.Builder, title string, ranked []*request, top int) {
	fmt.Fprintln(b, title)
	fmt.Fprintf(b, "%8s %-12s %6s %8s %9s %9s %9s %8s %8s\n",
		"req", "class", "server", "TTFT (s)", "lat (s)", "J", "cap (s)", "tokens", "preempts")
	for i, r := range ranked {
		if i >= top {
			break
		}
		ttft := "-"
		if r.root.TTFTSec >= 0 {
			ttft = fmt.Sprintf("%.3f", r.root.TTFTSec)
		}
		fmt.Fprintf(b, "%8d %-12s %6d %8s %9.2f %9.1f %9.1f %8d %8d\n",
			r.root.Req, r.root.Class, r.root.Server, ttft, r.latencySec(),
			r.energyJ(), r.capSec(), r.tokens(), r.root.Preempts)
	}
	fmt.Fprintln(b)
}
