// Command polca-experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	polca-experiments [-quick] [-seed N] [-eval-days N] [-sweep-days N]
//	                  [-servers N] [-parallel N] [-only id1,id2] [-list]
//
// Without -only it runs every registered experiment in paper order and
// prints the reproduced rows. -quick scales horizons down for a fast pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"polca/internal/experiments"
	"polca/internal/insights"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments")
	seed := flag.Int64("seed", 1, "simulation seed")
	evalDays := flag.Int("eval-days", 0, "evaluation horizon in days (default 35, paper's five weeks)")
	sweepDays := flag.Int("sweep-days", 0, "sweep horizon in days (default 7, paper's one week)")
	servers := flag.Int("servers", 0, "base row size (default 40)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations/experiments (0 = GOMAXPROCS, 1 = serial)")
	only := flag.String("only", "", "comma-separated experiment IDs to run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	checkInsights := flag.Bool("insights", false, "verify the paper's nine insights and exit")
	outDir := flag.String("out", "", "also write each experiment's data as JSON into this directory")
	flag.Parse()

	if *checkInsights {
		checks, err := insights.VerifyAll(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(insights.Render(checks))
		if !insights.AllHold(checks) {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	if *evalDays > 0 {
		opts.EvalDays = *evalDays
	}
	if *sweepDays > 0 {
		opts.SweepDays = *sweepDays
	}
	if *servers > 0 {
		opts.RowServers = *servers
	}
	opts.Parallel = *parallel

	if *only == "" {
		results, err := experiments.RunAll(opts, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := exportAll(*outDir, results); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		return
	}
	var results []experiments.Result
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n%s\n", res.ID, res.Title, res.Text)
		results = append(results, res)
	}
	if err := exportAll(*outDir, results); err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}
}

// exportAll writes each result's structured data as JSON plus the rendered
// text, one pair of files per experiment.
func exportAll(dir string, results []experiments.Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, res := range results {
		blob, err := json.MarshalIndent(map[string]any{
			"id":    res.ID,
			"title": res.Title,
			"data":  res.Data,
		}, "", "  ")
		if err != nil {
			return fmt.Errorf("%s: %w", res.ID, err)
		}
		if err := os.WriteFile(filepath.Join(dir, res.ID+".json"), blob, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, res.ID+".txt"), []byte(res.Text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
