// Command polca-experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	polca-experiments [-quick] [-seed N] [-eval-days N] [-sweep-days N]
//	                  [-servers N] [-parallel N] [-only id1,id2] [-list]
//	                  [-faults SPEC] [-scenario NAME|FILE] [-v] [-http :6060]
//
// Without -only it runs every registered experiment in paper order and
// prints the reproduced rows. -quick scales horizons down for a fast pass.
// -v logs each sweep grid point as the parallel executor completes it
// (count/total, wall time, cache hits); -http serves live /metrics
// (Prometheus text), /progress (JSON view of in-flight grid points), and
// /debug/pprof while the suite runs. Neither perturbs results. -faults
// overrides the figfault experiment's built-in chaos scenario with a
// faults-package DSL spec; every other experiment runs fault-free.
// -scenario restricts the figscenario experiment to one workload scenario
// (a builtin name or a .scn file) instead of sweeping the committed
// library; every other experiment keeps the Table 6 mix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polca/internal/experiments"
	"polca/internal/insights"
	"polca/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments")
	seed := flag.Int64("seed", 1, "simulation seed")
	evalDays := flag.Int("eval-days", 0, "evaluation horizon in days (default 35, paper's five weeks)")
	sweepDays := flag.Int("sweep-days", 0, "sweep horizon in days (default 7, paper's one week)")
	servers := flag.Int("servers", 0, "base row size (default 40)")
	parallel := flag.Int("parallel", 0, "max concurrent simulations/experiments (0 = GOMAXPROCS, 1 = serial)")
	only := flag.String("only", "", "comma-separated experiment IDs to run")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	checkInsights := flag.Bool("insights", false, "verify the paper's nine insights and exit")
	outDir := flag.String("out", "", "also write each experiment's data as JSON into this directory")
	faultSpec := flag.String("faults", "", "override the figfault chaos scenario (faults package DSL)")
	scenFlag := flag.String("scenario", "", "restrict figscenario to one workload scenario (builtin name or .scn file)")
	verbose := flag.Bool("v", false, "log each sweep grid point as it completes")
	httpAddr := flag.String("http", "", "serve live /metrics, /progress, and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	if *checkInsights {
		checks, err := insights.VerifyAll(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(insights.Render(checks))
		if !insights.AllHold(checks) {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-8s %s\n", id, title)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed
	if *evalDays > 0 {
		opts.EvalDays = *evalDays
	}
	if *sweepDays > 0 {
		opts.SweepDays = *sweepDays
	}
	if *servers > 0 {
		opts.RowServers = *servers
	}
	opts.Parallel = *parallel
	opts.Faults = *faultSpec
	opts.Scenario = *scenFlag

	if *verbose || *httpAddr != "" {
		opts.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
		opts.Progress = obs.NewProgress(0)
	}
	if *verbose {
		// Progress lines go to stderr so stdout stays the rendered results.
		opts.Progress.OnDone = func(name string, done, total int, cached bool, elapsed time.Duration) {
			suffix := ""
			if cached {
				suffix = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s in %.1fs%s\n", done, total, name, elapsed.Seconds(), suffix)
		}
	}
	if *httpAddr != "" {
		addr, err := obs.Serve(*httpAddr, opts.Obs.Metrics, opts.Progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "introspection on http://%s (/metrics, /progress, /debug/pprof)\n", addr)
	}

	if *only == "" {
		results, err := experiments.RunAll(opts, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := exportAll(*outDir, results); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		return
	}
	var results []experiments.Result
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s: %s ==\n%s\n", res.ID, res.Title, res.Text)
		results = append(results, res)
	}
	if err := exportAll(*outDir, results); err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}
}

// exportAll writes each result's structured data as JSON plus the rendered
// text, one pair of files per experiment.
func exportAll(dir string, results []experiments.Result) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, res := range results {
		blob, err := json.MarshalIndent(map[string]any{
			"id":    res.ID,
			"title": res.Title,
			"data":  res.Data,
		}, "", "  ")
		if err != nil {
			return fmt.Errorf("%s: %w", res.ID, err)
		}
		if err := os.WriteFile(filepath.Join(dir, res.ID+".json"), blob, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, res.ID+".txt"), []byte(res.Text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
