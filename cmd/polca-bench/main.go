// Command polca-bench turns `go test -bench` output into the versioned
// BENCH_*.json artifacts that track this repo's performance trajectory, and
// compares two artifacts to gate CI on regressions.
//
// Modes (exactly one):
//
//	go test -run '^$' -bench . -benchmem ./... | polca-bench -o BENCH_N.json
//	    Parse benchmark output (stdin or a file argument) and emit a
//	    polca-bench/v1 JSON artifact.
//
//	polca-bench -compare OLD.json NEW.json
//	    Compare two artifacts. An allocs/op increase on any shared
//	    benchmark always fails. An ns/op regression beyond -threshold
//	    (default 15%) fails, or only warns under -advisory-time (for noisy
//	    CI runners where wall time is not trustworthy but allocation
//	    counts are deterministic). A benchmark present in OLD but missing
//	    from NEW fails: the trajectory must not silently lose coverage.
//
//	polca-bench -check FILE.json [FILE2.json ...]
//	    Validate artifacts against the schema; used by `make ci` so a
//	    committed BENCH_*.json can never rot unnoticed.
//
//	polca-bench -require Name1,Name2 [bench-output.txt]
//	    Fail unless every named benchmark appears in the output; guards
//	    `make bench-smoke` against patterns that silently match nothing.
//
//	polca-bench -zero-alloc Name1,Name2 [bench-output.txt]
//	    Fail unless every named benchmark reports exactly 0 allocs/op.
//	    Guards hot paths with an allocation-free contract (the telemetry
//	    TSDB ingest, the rules evaluation tick) — unlike -compare this
//	    needs no baseline artifact, so a first regression cannot slip in
//	    alongside a refreshed snapshot. Composable with -require.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// schemaV1 identifies the artifact format. Bump only with a new reader.
const schemaV1 = "polca-bench/v1"

// Benchmark is one `go test -bench` result row.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (events/s, wall_s/day, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the versioned benchmark snapshot committed as BENCH_N.json.
// BaselineRef/Baseline are optional provenance: the pre-change numbers the
// snapshot was measured against, kept inside the artifact so the
// before/after story travels with it. The emitter never fills them; they
// are added by hand (or a future flag) when a snapshot documents a
// perf campaign.
type Artifact struct {
	Schema      string      `json:"schema"`
	Goos        string      `json:"goos,omitempty"`
	Goarch      string      `json:"goarch,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	BaselineRef string      `json:"baseline_ref,omitempty"`
	Baseline    []Benchmark `json:"baseline,omitempty"`
}

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

func cli(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polca-bench", flag.ContinueOnError)
	fs.SetOutput(errw)
	outPath := fs.String("o", "", "write the JSON artifact here instead of stdout")
	compare := fs.Bool("compare", false, "compare two artifacts: OLD.json NEW.json")
	check := fs.Bool("check", false, "validate artifact files against the schema")
	require := fs.String("require", "", "comma-separated benchmark names that must appear in the input")
	zeroAlloc := fs.String("zero-alloc", "", "comma-separated benchmark names that must report 0 allocs/op")
	threshold := fs.Float64("threshold", 0.15, "relative ns/op regression that fails -compare")
	advisoryTime := fs.Bool("advisory-time", false, "demote ns/op regressions to warnings (allocs/op still fail)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *compare:
		if fs.NArg() != 2 {
			fmt.Fprintln(errw, "usage: polca-bench -compare OLD.json NEW.json")
			return 2
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *threshold, *advisoryTime, out, errw)
	case *check:
		if fs.NArg() == 0 {
			fmt.Fprintln(errw, "usage: polca-bench -check FILE.json ...")
			return 2
		}
		code := 0
		for _, path := range fs.Args() {
			if err := checkArtifact(path); err != nil {
				fmt.Fprintf(errw, "polca-bench: %s: %v\n", path, err)
				code = 1
			} else {
				fmt.Fprintf(out, "%s: ok\n", path)
			}
		}
		return code
	default:
		in, name, err := openInput(fs.Args())
		if err != nil {
			fmt.Fprintln(errw, "polca-bench:", err)
			return 1
		}
		defer in.Close()
		art, err := parseBenchOutput(in)
		if err != nil {
			fmt.Fprintf(errw, "polca-bench: %s: %v\n", name, err)
			return 1
		}
		if *zeroAlloc != "" {
			if err := requireZeroAllocs(art, *zeroAlloc); err != nil {
				fmt.Fprintln(errw, "polca-bench:", err)
				return 1
			}
		}
		if *require != "" {
			if err := requireNames(art, *require); err != nil {
				fmt.Fprintln(errw, "polca-bench:", err)
				return 1
			}
			fmt.Fprintf(out, "all required benchmarks present (%d results)\n", len(art.Benchmarks))
			return 0
		}
		if *zeroAlloc != "" {
			fmt.Fprintf(out, "zero-alloc contract holds for: %s\n", *zeroAlloc)
			return 0
		}
		if len(art.Benchmarks) == 0 {
			fmt.Fprintf(errw, "polca-bench: %s: no benchmark results in input\n", name)
			return 1
		}
		return writeArtifact(art, *outPath, out, errw)
	}
}

// openInput returns the benchmark text source: the single file argument, or
// stdin when no argument is given.
func openInput(args []string) (io.ReadCloser, string, error) {
	switch len(args) {
	case 0:
		return io.NopCloser(os.Stdin), "stdin", nil
	case 1:
		f, err := os.Open(args[0])
		return f, args[0], err
	default:
		return nil, "", fmt.Errorf("expected at most one input file, got %d", len(args))
	}
}

// parseBenchOutput folds `go test -bench` text into an Artifact. Benchmark
// names must be unique across packages — comparisons are keyed by name, so
// a duplicate would make the trajectory ambiguous.
func parseBenchOutput(r io.Reader) (*Artifact, error) {
	art := &Artifact{Schema: schemaV1}
	seen := map[string]string{} // name → pkg
	pkg := ""
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			art.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			art.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result row is "BenchmarkName-P  iterations  value unit [value unit ...]".
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // e.g. the bare "BenchmarkName" echo line under -v
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate benchmark %s (in %s and %s)", ln+1, name, prev, pkg)
		}
		seen[name] = pkg
		b := Benchmark{Name: name, Pkg: pkg}
		if b.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad iteration count %q", ln+1, fields[1])
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad value %q for unit %q", ln+1, fields[i], fields[i+1])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		art.Benchmarks = append(art.Benchmarks, b)
	}
	sort.Slice(art.Benchmarks, func(i, j int) bool { return art.Benchmarks[i].Name < art.Benchmarks[j].Name })
	return art, nil
}

func writeArtifact(art *Artifact, path string, out, errw io.Writer) int {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(errw, "polca-bench:", err)
		return 1
	}
	data = append(data, '\n')
	if path == "" {
		out.Write(data)
		return 0
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(errw, "polca-bench:", err)
		return 1
	}
	fmt.Fprintf(out, "wrote %d benchmarks to %s\n", len(art.Benchmarks), path)
	return 0
}

// loadArtifact reads and schema-validates one BENCH_*.json.
func loadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, err
	}
	if err := validate(&art); err != nil {
		return nil, err
	}
	return &art, nil
}

func checkArtifact(path string) error {
	_, err := loadArtifact(path)
	return err
}

// validate enforces the v1 schema invariants.
func validate(art *Artifact) error {
	if art.Schema != schemaV1 {
		return fmt.Errorf("schema %q, want %q", art.Schema, schemaV1)
	}
	if len(art.Benchmarks) == 0 {
		return fmt.Errorf("artifact has no benchmarks")
	}
	seen := map[string]bool{}
	for _, b := range art.Benchmarks {
		if b.Name == "" || !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("benchmark name %q does not start with Benchmark", b.Name)
		}
		if seen[b.Name] {
			return fmt.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("%s: non-positive iterations (%d) or ns/op (%g)", b.Name, b.Iterations, b.NsPerOp)
		}
		if b.BPerOp < 0 || b.AllocsPerOp < 0 {
			return fmt.Errorf("%s: negative B/op or allocs/op", b.Name)
		}
	}
	return nil
}

// runCompare diffs NEW against OLD. Allocation growth and lost coverage are
// always fatal; ns/op regressions beyond threshold are fatal unless
// advisoryTime demotes them to warnings.
func runCompare(oldPath, newPath string, threshold float64, advisoryTime bool, out, errw io.Writer) int {
	oldArt, err := loadArtifact(oldPath)
	if err != nil {
		fmt.Fprintf(errw, "polca-bench: %s: %v\n", oldPath, err)
		return 1
	}
	newArt, err := loadArtifact(newPath)
	if err != nil {
		fmt.Fprintf(errw, "polca-bench: %s: %v\n", newPath, err)
		return 1
	}
	newBy := map[string]Benchmark{}
	for _, b := range newArt.Benchmarks {
		newBy[b.Name] = b
	}
	code := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(errw, "FAIL: "+format+"\n", args...)
		code = 1
	}
	for _, ob := range oldArt.Benchmarks {
		nb, ok := newBy[ob.Name]
		if !ok {
			fail("%s: present in %s but missing from %s", ob.Name, oldPath, newPath)
			continue
		}
		delete(newBy, ob.Name)
		rel := nb.NsPerOp/ob.NsPerOp - 1
		switch {
		case nb.AllocsPerOp > ob.AllocsPerOp:
			fail("%s: allocs/op %g → %g (any increase fails)", ob.Name, ob.AllocsPerOp, nb.AllocsPerOp)
		case rel > threshold && !advisoryTime:
			fail("%s: ns/op %.4g → %.4g (%+.1f%%, threshold %.0f%%)",
				ob.Name, ob.NsPerOp, nb.NsPerOp, rel*100, threshold*100)
		case rel > threshold:
			fmt.Fprintf(out, "WARN: %s: ns/op %.4g → %.4g (%+.1f%%, advisory)\n",
				ob.Name, ob.NsPerOp, nb.NsPerOp, rel*100)
		default:
			fmt.Fprintf(out, "ok:   %s: ns/op %.4g → %.4g (%+.1f%%), allocs/op %g → %g\n",
				ob.Name, ob.NsPerOp, nb.NsPerOp, rel*100, ob.AllocsPerOp, nb.AllocsPerOp)
		}
	}
	var added []string
	for name := range newBy {
		added = append(added, name)
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(out, "new:  %s (no baseline)\n", name)
	}
	if code == 0 {
		fmt.Fprintf(out, "compare: %s vs %s: no regressions\n", oldPath, newPath)
	}
	return code
}

// requireNames fails unless every comma-separated name parsed out of the
// benchmark output.
func requireNames(art *Artifact, list string) error {
	have := map[string]bool{}
	for _, b := range art.Benchmarks {
		have[b.Name] = true
	}
	var missing []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name != "" && !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmarks matched nothing: %s (pattern drift in the Makefile?)", strings.Join(missing, ", "))
	}
	return nil
}

// requireZeroAllocs fails if any named benchmark is missing or reports a
// nonzero allocs/op — the allocation-free contract for hot paths, enforced
// without needing a committed baseline.
func requireZeroAllocs(art *Artifact, list string) error {
	byName := map[string]Benchmark{}
	for _, b := range art.Benchmarks {
		byName[b.Name] = b
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := byName[name]
		if !ok {
			return fmt.Errorf("zero-alloc benchmark %s missing from input", name)
		}
		if b.AllocsPerOp != 0 {
			return fmt.Errorf("%s allocates %.0f allocs/op (%.0f B/op); this path must be allocation-free",
				name, b.AllocsPerOp, b.BPerOp)
		}
	}
	return nil
}
