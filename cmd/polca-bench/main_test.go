package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: polca
BenchmarkEngine-4   	85639108	        13.53 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeDay-4 	       3	 972072031 ns/op	         0.972 wall_s/day	 1966133 events/s	42528192 B/op	   34490 allocs/op
PASS
ok  	polca	4.2s
pkg: polca/internal/serve
BenchmarkScheduler-4	 2000000	       594.8 ns/op	       0 B/op	       0 allocs/op
PASS
`

func parseSample(t *testing.T) *Artifact {
	t.Helper()
	art, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestParseBenchOutput(t *testing.T) {
	art := parseSample(t)
	if art.Schema != schemaV1 || art.Goos != "linux" || art.Goarch != "amd64" {
		t.Errorf("header = %q/%q/%q", art.Schema, art.Goos, art.Goarch)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	// Sorted by name; the -P GOMAXPROCS suffix is stripped.
	byName := map[string]Benchmark{}
	for _, b := range art.Benchmarks {
		byName[b.Name] = b
	}
	eng := byName["BenchmarkEngine"]
	if eng.NsPerOp != 13.53 || eng.Iterations != 85639108 || eng.AllocsPerOp != 0 {
		t.Errorf("engine = %+v", eng)
	}
	day := byName["BenchmarkServeDay"]
	if day.Metrics["wall_s/day"] != 0.972 || day.Metrics["events/s"] != 1966133 {
		t.Errorf("serve-day metrics = %+v", day.Metrics)
	}
	if day.BPerOp != 42528192 || day.AllocsPerOp != 34490 {
		t.Errorf("serve-day mem = %+v", day)
	}
	if sched := byName["BenchmarkScheduler"]; sched.Pkg != "polca/internal/serve" {
		t.Errorf("scheduler pkg = %q", sched.Pkg)
	}
}

func TestParseRejectsDuplicateNames(t *testing.T) {
	dup := "BenchmarkX-4 10 5.0 ns/op\nBenchmarkX-8 10 6.0 ns/op\n"
	if _, err := parseBenchOutput(strings.NewReader(dup)); err == nil ||
		!strings.Contains(err.Error(), "duplicate benchmark BenchmarkX") {
		t.Errorf("err = %v", err)
	}
}

// writeArtifactFile emits the artifact as JSON for compare/check tests.
func writeArtifactFile(t *testing.T, dir, name string, art *Artifact) string {
	t.Helper()
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEmitCheckRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "BENCH_test.json")
	var out, errw bytes.Buffer
	if code := cli([]string{"-o", outJSON, in}, &out, &errw); code != 0 {
		t.Fatalf("emit exited %d: %s", code, errw.String())
	}
	if code := cli([]string{"-check", outJSON}, &out, &errw); code != 0 {
		t.Fatalf("check exited %d: %s", code, errw.String())
	}
	// Corrupt the schema tag; -check must fail.
	data, _ := os.ReadFile(outJSON)
	bad := bytes.Replace(data, []byte(schemaV1), []byte("polca-bench/v999"), 1)
	if err := os.WriteFile(outJSON, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := cli([]string{"-check", outJSON}, &out, &errw); code == 0 {
		t.Error("check accepted a wrong schema version")
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	old := parseSample(t)
	oldPath := writeArtifactFile(t, dir, "old.json", old)

	clone := func() *Artifact {
		cp := *old
		cp.Benchmarks = append([]Benchmark(nil), old.Benchmarks...)
		return &cp
	}
	find := func(art *Artifact, name string) *Benchmark {
		for i := range art.Benchmarks {
			if art.Benchmarks[i].Name == name {
				return &art.Benchmarks[i]
			}
		}
		t.Fatalf("no %s", name)
		return nil
	}

	t.Run("identical passes", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := cli([]string{"-compare", oldPath, oldPath}, &out, &errw); code != 0 {
			t.Fatalf("exit %d: %s", code, errw.String())
		}
		if !strings.Contains(out.String(), "no regressions") {
			t.Errorf("output: %s", out.String())
		}
	})
	t.Run("time regression fails", func(t *testing.T) {
		slow := clone()
		find(slow, "BenchmarkScheduler").NsPerOp *= 1.30
		newPath := writeArtifactFile(t, dir, "slow.json", slow)
		var out, errw bytes.Buffer
		if code := cli([]string{"-compare", oldPath, newPath}, &out, &errw); code != 1 {
			t.Fatalf("exit %d, want 1; stderr: %s", code, errw.String())
		}
		if !strings.Contains(errw.String(), "BenchmarkScheduler: ns/op") {
			t.Errorf("stderr: %s", errw.String())
		}
	})
	t.Run("time regression advisory warns", func(t *testing.T) {
		slow := clone()
		find(slow, "BenchmarkScheduler").NsPerOp *= 1.30
		newPath := writeArtifactFile(t, dir, "slow2.json", slow)
		var out, errw bytes.Buffer
		if code := cli([]string{"-compare", "-advisory-time", oldPath, newPath}, &out, &errw); code != 0 {
			t.Fatalf("exit %d: %s", code, errw.String())
		}
		if !strings.Contains(out.String(), "WARN: BenchmarkScheduler") {
			t.Errorf("output: %s", out.String())
		}
	})
	t.Run("alloc increase fails even advisory", func(t *testing.T) {
		leaky := clone()
		find(leaky, "BenchmarkScheduler").AllocsPerOp = 2
		newPath := writeArtifactFile(t, dir, "leaky.json", leaky)
		var out, errw bytes.Buffer
		if code := cli([]string{"-compare", "-advisory-time", oldPath, newPath}, &out, &errw); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		if !strings.Contains(errw.String(), "allocs/op 0 → 2") {
			t.Errorf("stderr: %s", errw.String())
		}
	})
	t.Run("lost coverage fails", func(t *testing.T) {
		fewer := clone()
		fewer.Benchmarks = fewer.Benchmarks[:len(fewer.Benchmarks)-1]
		newPath := writeArtifactFile(t, dir, "fewer.json", fewer)
		var out, errw bytes.Buffer
		if code := cli([]string{"-compare", oldPath, newPath}, &out, &errw); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		if !strings.Contains(errw.String(), "missing from") {
			t.Errorf("stderr: %s", errw.String())
		}
	})
	t.Run("improvement passes", func(t *testing.T) {
		fast := clone()
		find(fast, "BenchmarkServeDay").NsPerOp /= 2
		newPath := writeArtifactFile(t, dir, "fast.json", fast)
		var out, errw bytes.Buffer
		if code := cli([]string{"-compare", oldPath, newPath}, &out, &errw); code != 0 {
			t.Fatalf("exit %d: %s", code, errw.String())
		}
	})
}

func TestRequire(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := cli([]string{"-require", "BenchmarkEngine,BenchmarkServeDay,BenchmarkScheduler", in}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if code := cli([]string{"-require", "BenchmarkEngine,BenchmarkGhost", in}, &out, &errw); code != 1 {
		t.Fatal("missing benchmark should fail -require")
	}
	if !strings.Contains(errw.String(), "BenchmarkGhost") {
		t.Errorf("stderr: %s", errw.String())
	}
}

func TestZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	// BenchmarkEngine and BenchmarkScheduler both report 0 allocs/op.
	if code := cli([]string{"-zero-alloc", "BenchmarkEngine, BenchmarkScheduler", in}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "zero-alloc contract holds") {
		t.Errorf("stdout: %s", out.String())
	}
	// BenchmarkServeDay allocates; the gate must hard-fail with the name and
	// the measured allocs/op in the message.
	errw.Reset()
	if code := cli([]string{"-zero-alloc", "BenchmarkServeDay", in}, &out, &errw); code != 1 {
		t.Fatal("allocating benchmark should fail -zero-alloc")
	}
	if !strings.Contains(errw.String(), "BenchmarkServeDay") || !strings.Contains(errw.String(), "allocates") {
		t.Errorf("stderr: %s", errw.String())
	}
	// A name absent from the input is an error, not a silent pass.
	errw.Reset()
	if code := cli([]string{"-zero-alloc", "BenchmarkGhost", in}, &out, &errw); code != 1 {
		t.Fatal("missing benchmark should fail -zero-alloc")
	}
	if !strings.Contains(errw.String(), "missing from input") {
		t.Errorf("stderr: %s", errw.String())
	}
	// Composes with -require: both gates must pass.
	errw.Reset()
	if code := cli([]string{"-require", "BenchmarkEngine", "-zero-alloc", "BenchmarkEngine", in}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
}
