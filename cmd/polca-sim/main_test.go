package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/serve"
)

var timingRe = regexp.MustCompile(`Done in \d+\.\d+s`)

// normalizeReport removes the two legitimately run-dependent parts of a
// report: the wall-clock timing line and the output-path lines (temp dirs
// differ per run). Everything else must be byte-identical.
func normalizeReport(s string) string {
	s = timingRe.ReplaceAllString(s, "Done in X.Xs")
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "written to ") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.TrimRight(strings.Join(keep, "\n"), "\n")
}

func baseOpts(serveMode bool, dir string) runOpts {
	cfg := cluster.Production()
	cfg.BaseServers = 16
	cfg.Seed = 1
	if serveMode {
		cfg.Serve = &serve.Config{Router: "least-queue"}
	}
	return runOpts{
		policy: "polca", cfg: cfg, days: 1, seed: 1, t1: 0.80, t2: 0.89,
		csvPath: filepath.Join(dir, "util.csv"),
	}
}

// TestSpanTracingDoesNotPerturbResults is the zero-perturbation regression
// at the CLI level: the default `polca-sim -days 1 -servers 16` run — slot
// mode and serve mode — must produce an identical report and utilization
// CSV with span tracing on and off.
func TestSpanTracingDoesNotPerturbResults(t *testing.T) {
	for _, mode := range []struct {
		name  string
		serve bool
	}{{"slot", false}, {"serve", true}} {
		t.Run(mode.name, func(t *testing.T) {
			d1, d2 := t.TempDir(), t.TempDir()
			plain, err := runOne(baseOpts(mode.serve, d1))
			if err != nil {
				t.Fatal(err)
			}
			o := baseOpts(mode.serve, d2)
			o.obs = &obs.Observer{Metrics: obs.NewRegistry(), Spans: obs.NewSpanTracer()}
			o.spansPath = filepath.Join(d2, "spans.jsonl")
			o.spansPerfettoPath = filepath.Join(d2, "spans.json")
			observed, err := runOne(o)
			if err != nil {
				t.Fatal(err)
			}

			if normalizeReport(plain) != normalizeReport(observed) {
				t.Errorf("report differs with span tracing on\n--- plain ---\n%s\n--- observed ---\n%s",
					normalizeReport(plain), normalizeReport(observed))
			}
			csv1, err := os.ReadFile(filepath.Join(d1, "util.csv"))
			if err != nil {
				t.Fatal(err)
			}
			csv2, err := os.ReadFile(filepath.Join(d2, "util.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if string(csv1) != string(csv2) {
				t.Error("utilization CSV differs with span tracing on")
			}

			f, err := os.Open(o.spansPath)
			if err != nil {
				t.Fatal(err)
			}
			spans, err := obs.ReadSpans(f)
			f.Close()
			if err != nil {
				t.Fatalf("span JSONL does not parse: %v", err)
			}
			roots := 0
			for _, sp := range spans {
				if sp.Kind == obs.SpanRequest {
					roots++
				}
			}
			if mode.serve && roots == 0 {
				t.Error("serve mode emitted no request spans")
			}
			if !mode.serve && len(spans) != 0 {
				t.Errorf("slot mode emitted %d spans, want 0", len(spans))
			}
		})
	}
}

// TestPolicyCSVPath pins the per-policy suffixing the span flags reuse.
func TestPolicyCSVPath(t *testing.T) {
	if got := policyCSVPath("out/spans.jsonl", "polca", true); got != "out/spans.polca.jsonl" {
		t.Errorf("multi-policy path = %q", got)
	}
	if got := policyCSVPath("spans.jsonl", "polca", false); got != "spans.jsonl" {
		t.Errorf("single-policy path = %q", got)
	}
	if got := policyCSVPath("", "polca", true); got != "" {
		t.Errorf("empty path = %q", got)
	}
}
