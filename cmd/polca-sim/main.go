// Command polca-sim runs inference-row power-oversubscription simulations
// and reports utilization, latency, throughput, and power-brake outcomes.
//
// Usage:
//
//	polca-sim [-policy polca|1tl|1ta|nocap] [-added 0.30] [-days 7]
//	          [-servers 40] [-intensity 1.0] [-lp 0.5] [-seed 1]
//	          [-t1 0.80] [-t2 0.89] [-csv out.csv] [-parallel N]
//	          [-scenario NAME|FILE] [-scenario-scale X]
//	          [-faults SPEC] [-guard] [-watchdog N]
//	          [-oob-retries N] [-oob-backoff D] [-drop-stale]
//	          [-serve] [-router round-robin|least-queue|least-kv|power-aware]
//	          [-retries N] [-retry-backoff D] [-class-shed]
//	          [-circuit-sheds N] [-circuit-cooldown D] [-watchdog-drain]
//
// Serving backend: -serve replaces the slot model (whole requests dispatched
// to exclusive per-server slots) with the request-level serving engine —
// continuous batching with chunked prefill, per-request KV-cache accounting,
// preempt-with-recompute under HBM pressure, and per-iteration power
// synthesized from each batch's prompt/decode mix. -router picks how
// arrivals spread across replicas; power-aware steers low-priority work
// toward frequency-capped servers. The report gains batch/preemption/KV
// counters and per-class p99 TTFT (time-to-first-token) and TBT
// (time-between-tokens) — the latencies that matter for interactive serving
// and that the slot model cannot see.
//
// Scenarios: -scenario replaces the hardcoded Table 6 mix with a declarative
// workload scenario — a builtin from the committed library (chatbot,
// launch-day, ...; see scenarios/) or a .scn file in the scenario DSL. The
// scenario's cohorts drive capacity planning (their analytic token moments
// become the class table), admission priorities, and serve-mode shed ranks,
// and the generator synthesizes the full request trace — heavy-tailed
// arrivals, diurnal/ramp/spike rate shapes, burst overlays, shared-prefix
// groups, and multi-turn sessions with growing context — on dedicated named
// RNG streams, so runs are event-for-event deterministic. -scenario-scale
// multiplies every cohort rate on top of the automatic servers/basis
// scaling. In serve mode the report gains per-class SLO attainment and the
// Jain fairness index across classes.
//
// Fault injection: -faults takes the faults package DSL (for example
// "tdrop=0.05,crash=6h+20,oobburst=3h+15m,kill=2@8h+1h") and runs the same
// deterministic simulation under that chaos scenario. -guard wraps the
// policy in the telemetry validity layer (median filter, stuck-sensor
// detection, fail-safe conservative cap), -watchdog N arms the row-side
// deadman that self-caps after N silent controller epochs, the
// -oob-retries/-oob-backoff pair bounds OOB command retries, and
// -drop-stale discards in-flight cap commands superseded before landing.
// All default to off, which reproduces the fault-free simulator exactly.
//
// Serve-mode fault tolerance: -retries N arms request failover — a request
// dropped by node death, an empty routable set, or a full replica queue
// re-enters the router up to N times (deterministic exponential backoff from
// -retry-backoff, default one telemetry interval) before it is finally
// dropped as retry-exhausted; recompute semantics, so tokens from a failed
// attempt are discarded. -class-shed arms SLO-class-aware degradation:
// under a power emergency (brake, watchdog, deep frequency cap, or
// sustained KV pressure) admission sheds batch/sheddable classes first and
// the critical interactive class last, reported as per-class goodput.
// -circuit-sheds N opens a per-replica circuit breaker after N queue sheds
// within one telemetry epoch (cooldown -circuit-cooldown, default 30s), and
// -watchdog-drain makes an engaged deadman also drain the serve replicas
// gracefully. All default to off; the drop-only serving backend is
// reproduced exactly.
//
// -policy accepts a comma-separated list (e.g. "polca,nocap"); the
// simulations then run concurrently, bounded by -parallel workers, and the
// reports print in the order the policies were listed. Every run owns a
// private engine seeded from -seed, so results are identical to running the
// policies one at a time. The -csv flag additionally writes the 2 s
// row-utilization series (suffixed with the policy name when several are
// simulated).
//
// Observability: -trace writes the run's structured event stream (threshold
// crossings, per-server cap/uncap actions, request lifecycle, brake events)
// as JSONL, -perfetto writes the same stream as Chrome trace-event JSON for
// chrome://tracing or ui.perfetto.dev, and -http serves live /metrics
// (Prometheus text), /progress, and /debug/pprof while the simulation runs.
// In serve mode, -spans additionally writes per-request span trees
// (request → queue → prefill chunks → decode runs → preemptions) with
// per-request energy and cap-slowdown attribution as JSONL — the input of
// cmd/polca-analyze — and -spans-perfetto renders the same trees on
// per-request Perfetto tracks. Tracing never changes results; with it off
// the instrumentation costs one nil check per site. All trace flags take
// per-policy suffixes like -csv.
//
// Sim-time telemetry: -tsdb records every row signal (server/row/site
// power, breaker headroom, cap MHz, KV occupancy, queue depth, TTFT/TBT)
// into a fixed-memory multi-resolution TSDB — bounded telemetry no matter
// how many days are simulated — reported in a Telemetry section, exposed
// on /metrics, and exportable as Perfetto counter tracks with
// -tsdb-perfetto. -rules loads an alert/recording ruleset ("default" for
// the committed one) evaluated in sim time on every telemetry tick;
// alerts emit alert.fire/alert.resolve trace events and a per-alert
// summary table (polca-analyze -alerts rebuilds the timeline from the
// event trace). -rules implies -tsdb.
//
// Decision provenance: -decisions records every controller tick and every
// router pick together with the full input snapshot the policy saw —
// telemetry reading and delivery status, guard/watchdog state, ladder
// stage, desired pool locks, busy counts and measured pool power, and the
// per-replica queue/KV/cap candidate set for each route — as a versioned
// JSONL decision log (schema polca-decisions/v2, strict sequence numbers).
// The header carries the policy spec, thresholds, and row shape, so
// cmd/polca-replay can re-evaluate alternate configurations purely on the
// recorded inputs and price the regret of the deployed one. Recording is
// zero-allocation in steady state and, like all tracing, changes nothing:
// with the flag off the hot path costs one nil check per site.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/scenario"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// runOpts carries everything one policy simulation needs.
type runOpts struct {
	policy       string
	cfg          cluster.RowConfig
	days         int
	seed         int64
	t1, t2       float64
	guard        bool
	faults       string // canonical DSL form, for reports and provenance
	retrain      bool
	reqs              []workload.Request // non-nil replays a recorded trace
	scen              *scenario.Spec     // non-nil generates scenario traffic
	scenScale         float64
	csvPath           string
	tracePath         string
	perfettoPath      string
	spansPath         string
	spansPerfettoPath string
	decisionsPath     string
	tsdbPerfettoPath  string
	rulesName         string // "" = no rules; "default" or a file path
	obs               *obs.Observer
}

func main() {
	policy := flag.String("policy", "polca", "power policy (comma-separated list of polca, 1tl, 1ta, nocap)")
	added := flag.Float64("added", 0.30, "oversubscription fraction (0.30 = 30% more servers)")
	days := flag.Int("days", 7, "simulated days")
	servers := flag.Int("servers", 40, "base row size")
	intensity := flag.Float64("intensity", 1.0, "workload power intensity factor")
	lpFrac := flag.Float64("lp", 0.5, "low-priority server fraction")
	seed := flag.Int64("seed", 1, "simulation seed")
	t1 := flag.Float64("t1", 0.80, "POLCA T1 threshold")
	t2 := flag.Float64("t2", 0.89, "POLCA T2 threshold")
	csvPath := flag.String("csv", "", "write the utilization series to this CSV file")
	scenFlag := flag.String("scenario", "", "generate traffic from a workload scenario: a builtin name ("+strings.Join(scenario.Names(), ", ")+") or a .scn file path")
	scenScale := flag.Float64("scenario-scale", 1.0, "extra rate multiplier on the scenario's cohorts (on top of servers/basis scaling)")
	faultSpec := flag.String("faults", "", "fault-injection scenario (faults package DSL, e.g. \"tdrop=0.05,crash=6h+20\")")
	guard := flag.Bool("guard", false, "wrap the policy in the telemetry validity guard (filter + fail-safe cap)")
	watchdog := flag.Int("watchdog", 0, "row deadman: self-cap after N silent controller epochs (0 = off)")
	oobRetries := flag.Int("oob-retries", 0, "abandon an OOB cap target after N failed retries (0 = unlimited)")
	oobBackoff := flag.Duration("oob-backoff", 0, "base exponential backoff between OOB retries (0 = next tick)")
	dropStale := flag.Bool("drop-stale", false, "drop in-flight OOB commands superseded before landing (off = apply the outdated lock, the historical behaviour)")
	serveMode := flag.Bool("serve", false, "run the request-level serving backend (continuous batching + KV cache) instead of the slot model")
	router := flag.String("router", "least-queue", "serve-mode routing policy ("+strings.Join(serve.RouterNames(), ", ")+")")
	retries := flag.Int("retries", 0, "serve mode: requeue a dropped/shed request up to N times before giving up (0 = drop-only)")
	retryBackoff := flag.Duration("retry-backoff", 0, "serve mode: base failover backoff, doubling per attempt (0 = one telemetry interval)")
	classShed := flag.Bool("class-shed", false, "serve mode: shed admission by SLO class under power emergencies (batch first, critical last)")
	circuitSheds := flag.Int("circuit-sheds", 0, "serve mode: open a replica's circuit after N queue sheds in one telemetry epoch (0 = off)")
	circuitCooldown := flag.Duration("circuit-cooldown", 0, "serve mode: circuit-breaker cooldown before a tripped replica rejoins routing (0 = 30s)")
	watchdogDrain := flag.Bool("watchdog-drain", false, "serve mode: an engaged deadman watchdog also drains the serve replicas gracefully")
	retrain := flag.Bool("retrain", false, "print a threshold retraining recommendation after the run")
	replay := flag.String("replay", "", "replay a request trace CSV (from polca-trace -requests) instead of generating arrivals")
	parallel := flag.Int("parallel", 0, "max concurrent policy simulations (0 = GOMAXPROCS)")
	tracePath := flag.String("trace", "", "write the structured event stream to this JSONL file")
	perfettoPath := flag.String("perfetto", "", "write the event stream as Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)")
	spansPath := flag.String("spans", "", "write per-request span trees with energy attribution (serve mode) to this JSONL file, for polca-analyze")
	decisionsPath := flag.String("decisions", "", "record every controller tick and router pick with its full input snapshot to this JSONL decision log, for polca-replay")
	spansPerfetto := flag.String("spans-perfetto", "", "write per-request spans as Chrome trace-event JSON on per-request tracks")
	httpAddr := flag.String("http", "", "serve live /metrics, /progress, and /debug/pprof on this address (e.g. :6060)")
	tsdbFlag := flag.Bool("tsdb", false, "record bounded sim-time telemetry (multi-resolution TSDB with server→row→site rollups)")
	rulesFlag := flag.String("rules", "", "evaluate alert/recording rules each telemetry tick: \"default\" for the built-in ruleset, or a rules file path (implies -tsdb)")
	tsdbPerfetto := flag.String("tsdb-perfetto", "", "write the TSDB as Chrome trace-event counter tracks (implies -tsdb)")
	flag.Parse()

	cfg := cluster.Production()
	cfg.BaseServers = *servers
	cfg.AddedFraction = *added
	cfg.PowerIntensity = *intensity
	cfg.LowPriorityFraction = *lpFrac
	cfg.Seed = *seed
	spec, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
	cfg.Faults = spec
	cfg.WatchdogEpochs = *watchdog
	cfg.OOBRetryBudget = *oobRetries
	cfg.OOBRetryBackoff = *oobBackoff
	cfg.DropStaleOOB = *dropStale
	if *serveMode {
		cfg.Serve = &serve.Config{Router: *router}
	}
	cfg.ServeRetries = *retries
	cfg.ServeRetryBackoff = *retryBackoff
	cfg.ServeClassShed = *classShed
	cfg.ServeCircuitSheds = *circuitSheds
	cfg.ServeCircuitCooldown = *circuitCooldown
	cfg.WatchdogDrain = *watchdogDrain

	var scen *scenario.Spec
	if *scenFlag != "" {
		if *replay != "" {
			fmt.Fprintln(os.Stderr, "scenario: -scenario and -replay are mutually exclusive")
			os.Exit(1)
		}
		s, err := scenario.Load(*scenFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenario:", err)
			os.Exit(1)
		}
		if *scenScale <= 0 {
			fmt.Fprintln(os.Stderr, "scenario: -scenario-scale must be positive")
			os.Exit(1)
		}
		scen = &s
		// The cohorts' analytic token moments become the class table the
		// capacity planner and admission control run on, and their SLO
		// classes pin the serve-mode shed ranks.
		cfg.Classes = scen.Classes()
		cfg.ShedRanks = scen.ShedRanks()
	}

	policies := strings.Split(*policy, ",")
	for i, p := range policies {
		policies[i] = strings.TrimSpace(p)
	}

	var reqs []workload.Request
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		reqs, err = cluster.LoadRequestsCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(policies) {
		workers = len(policies)
	}

	// Parse the ruleset once; every policy run gets a private engine bound
	// to its own TSDB so alert state never crosses runs.
	var ruleSet *obs.RuleSet
	if *rulesFlag != "" {
		src := obs.DefaultRules
		if *rulesFlag != "default" {
			b, err := os.ReadFile(*rulesFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rules:", err)
				os.Exit(1)
			}
			src = string(b)
		}
		var err error
		ruleSet, err = obs.ParseRules(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rules:", err)
			os.Exit(1)
		}
	}
	useTSDB := *tsdbFlag || ruleSet != nil || *tsdbPerfetto != ""

	// One shared metrics registry for every policy run (scoped by a policy
	// label); tracers and TSDBs are per run so event streams and alert
	// state don't interleave.
	var registry *obs.Registry
	if *httpAddr != "" || *tracePath != "" || *perfettoPath != "" || *spansPath != "" || *spansPerfetto != "" {
		registry = obs.NewRegistry()
	}
	observers := make([]*obs.Observer, len(policies))
	var tsdbHandles []obs.TSDBHandle
	for i, p := range policies {
		if registry == nil && !useTSDB && *decisionsPath == "" {
			continue
		}
		observer := &obs.Observer{Metrics: registry, Labels: obs.Label("policy", p)}
		if *decisionsPath != "" {
			observer.Decisions = obs.NewDecisionRecorder()
		}
		if *tracePath != "" || *perfettoPath != "" {
			observer.Tracer = obs.NewTracer()
		}
		if *spansPath != "" || *spansPerfetto != "" {
			observer.Spans = obs.NewSpanTracer()
		}
		if useTSDB {
			observer.DB = obs.NewTSDB(obs.TSDBConfig{Step: cfg.TelemetryInterval})
			if ruleSet != nil {
				observer.Rules = obs.NewRules(observer.DB, ruleSet, observer.Tracer)
			}
			tsdbHandles = append(tsdbHandles, obs.TSDBHandle{DB: observer.DB, Labels: observer.Labels})
		}
		observers[i] = observer
	}
	if *httpAddr != "" {
		addr, err := obs.Serve(*httpAddr, registry, nil, tsdbHandles...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "introspection on http://%s (/metrics, /progress, /debug/pprof)\n", addr)
	}

	reports := make([]string, len(policies))
	errs := make([]error, len(policies))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range policies {
		opts := runOpts{
			policy: p, cfg: cfg, days: *days, seed: *seed,
			t1: *t1, t2: *t2, guard: *guard, faults: spec.String(),
			retrain: *retrain, reqs: reqs,
			scen:    scen, scenScale: *scenScale,
			csvPath:           policyCSVPath(*csvPath, p, len(policies) > 1),
			tracePath:         policyCSVPath(*tracePath, p, len(policies) > 1),
			perfettoPath:      policyCSVPath(*perfettoPath, p, len(policies) > 1),
			spansPath:         policyCSVPath(*spansPath, p, len(policies) > 1),
			spansPerfettoPath: policyCSVPath(*spansPerfetto, p, len(policies) > 1),
			decisionsPath:     policyCSVPath(*decisionsPath, p, len(policies) > 1),
			tsdbPerfettoPath:  policyCSVPath(*tsdbPerfetto, p, len(policies) > 1),
			rulesName:         *rulesFlag,
			obs:               observers[i],
		}
		wg.Add(1)
		go func(i int, opts runOpts) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[i], errs[i] = runOne(opts)
		}(i, opts)
	}
	wg.Wait()

	failed := false
	for i := range policies {
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, "error:", errs[i])
			failed = true
			continue
		}
		if i > 0 {
			fmt.Println(strings.Repeat("-", 72))
		}
		fmt.Print(reports[i])
	}
	if failed {
		os.Exit(1)
	}
}

// policyCSVPath derives a per-policy CSV path when several policies share
// one -csv flag, so concurrent runs don't clobber each other's series.
func policyCSVPath(base, policy string, multi bool) string {
	if base == "" || !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + policy + ext
}

// runOne simulates a single policy on a private engine and renders its
// report.
func runOne(o runOpts) (string, error) {
	var ctrl cluster.Controller
	switch o.policy {
	case "polca":
		pc := polca.DefaultConfig()
		pc.T1, pc.T2 = o.t1, o.t2
		ctrl = polca.New(pc)
	case "1tl":
		ctrl = polca.NewSingleThresholdLowPri()
	case "1ta":
		ctrl = polca.NewSingleThresholdAll()
	case "nocap":
		ctrl = polca.NoCap{}
	default:
		return "", fmt.Errorf("unknown policy %q", o.policy)
	}
	var guard *polca.Guard
	if o.guard {
		guard = polca.NewGuard(ctrl, polca.DefaultGuardConfig())
		ctrl = guard
	}
	if dec := o.obs.DecisionLog(); dec != nil {
		// The row fills the shape/power half of the header at construction;
		// the policy spec is the CLI's to describe, since only it knows the
		// controller it built.
		pspec, gspec, err := polca.DescribeController(ctrl)
		if err != nil {
			return "", fmt.Errorf("decisions: %w", err)
		}
		dec.UpdateMeta(func(m *obs.DecisionMeta) {
			m.Spec, m.Guard, m.Seed = pspec, gspec, o.seed
		})
	}

	cfg := o.cfg
	fitCfg := cfg
	fitCfg.PowerIntensity = 1
	horizon := time.Duration(o.days) * 24 * time.Hour
	eng := sim.New(o.seed)
	eng.SetObserver(o.obs)

	var b strings.Builder
	fmt.Fprintf(&b, "Simulating %d days: %d servers (%d base, +%.0f%%), policy %s, intensity %.2f\n",
		o.days, cfg.Servers(), cfg.BaseServers, cfg.AddedFraction*100, ctrl.Name(), cfg.PowerIntensity)
	if cfg.Serve != nil {
		fmt.Fprintf(&b, "Serving mode: continuous batching, router %s\n", cfg.Serve.Router)
	}
	start := time.Now()
	row, err := cluster.NewRow(eng, cfg, ctrl)
	if err != nil {
		return "", err
	}
	var m *cluster.Metrics
	if o.scen != nil {
		// Scenario rates are calibrated for Basis servers; scale them to
		// this row, times the explicit -scenario-scale multiplier. Each
		// policy run generates on its own engine's named streams, so every
		// arm of a sweep sees the identical request trace.
		scale := float64(cfg.Servers()) / float64(o.scen.Basis) * o.scenScale
		reqs, err := scenario.Generate(*o.scen, horizon, scale, eng.Rand)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Scenario %s: %d cohorts, %d requests generated (rate scale %.2f)\n",
			o.scen.Name, len(o.scen.Cohorts), len(reqs), scale)
		m = row.RunRequests(reqs, horizon)
	} else if o.reqs != nil {
		fmt.Fprintf(&b, "Replaying %d requests\n", len(o.reqs))
		m = row.RunRequests(o.reqs, horizon)
	} else {
		ref := trace.ProductionInference().Reference(horizon, eng.Rand("reference"))
		plan, err := trace.FitArrivals(ref, fitCfg.Shape(), 5*time.Minute)
		if err != nil {
			return "", err
		}
		m = row.Run(plan.Scale(1 + cfg.AddedFraction))
	}
	fmt.Fprintf(&b, "Done in %.1fs (%d requests served)\n\n", time.Since(start).Seconds(),
		m.Completed[workload.Low]+m.Completed[workload.High])

	fmt.Fprintf(&b, "Row budget: %.0f kW (provisioned for %d servers)\n", m.Provisioned/1000, cfg.BaseServers)
	fmt.Fprintf(&b, "Utilization: mean %.1f%%, peak %.1f%%, max 2s rise %.1f%%, max 40s rise %.1f%%\n",
		m.Util.Mean()*100, m.Util.Peak()*100,
		m.Util.MaxRise(2*time.Second)*100, m.Util.MaxRise(40*time.Second)*100)
	fmt.Fprintf(&b, "Power brakes: %d; OOB commands: %d (%d silent failures)\n",
		m.BrakeEvents, m.LockCommands, m.FailedCommands)
	if o.faults != "" || o.guard || cfg.WatchdogEpochs > 0 || cfg.OOBRetryBudget > 0 || cfg.DropStaleOOB {
		fmt.Fprintf(&b, "Degradation: %d stale drops, %d retries (%d exhausted), %d watchdog engagements, %d node deaths\n",
			m.StaleOOBDrops, m.OOBRetries, m.OOBRetriesExhausted, m.WatchdogEngagements, m.NodeDeaths)
	}
	if o.faults != "" {
		c := m.Faults
		fmt.Fprintf(&b, "Injected [%s]: %d samples lost, %d stuck, %d spiked; %d crash epochs, %d missed ticks; %d burst fails; %d node deaths\n",
			o.faults, c.TelemetryLost, c.TelemetryStuck, c.TelemetrySpiked,
			c.CtrlCrashTicks, c.CtrlMissedTicks, c.OOBBurstFails, c.NodeDeaths)
	}
	if guard != nil {
		g := guard.Stats()
		fmt.Fprintf(&b, "Guard: %d delivered, %d outliers filtered, %d stuck ticks, %d lost ticks, %d fail-safe engagements\n",
			g.Delivered, g.Outliers, g.StuckTicks, g.LostTicks, g.FailSafeEngagements)
	}
	fmt.Fprintln(&b)

	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %10s %10s\n", "Priority", "served", "dropped", "p50 (s)", "p99 (s)", "max (s)", "req/srv/h")
	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		lat := m.LatencySec[pri]
		poolN := row.PoolSize(pri)
		fmt.Fprintf(&b, "%-10s %10d %10d %10.1f %10.1f %10.1f %10.1f\n",
			pri, m.Completed[pri], m.Dropped[pri],
			stats.Percentile(lat, 50), stats.Percentile(lat, 99), stats.Percentile(lat, 100),
			m.Throughput(pri, poolN)*3600)
	}

	if cfg.Serve != nil {
		s := m.Serve
		fmt.Fprintf(&b, "\nServe: %d batches, %d preemptions, peak batch %d, KV high water %.0f%%\n",
			s.Batches, s.Preemptions, s.MaxRunning, s.KVHighWaterFrac*100)
		fmt.Fprintf(&b, "Tokens: %d prompt, %d decode\n", s.PromptTokens, s.DecodeTokens)
		jPerTok := 0.0
		if s.DecodeTokens > 0 {
			jPerTok = s.EnergyJ / float64(s.DecodeTokens)
		}
		fmt.Fprintf(&b, "Energy: %.2f MJ attributed to requests (%.1f J per generated token); cap slowdown %+.0f s, %+.3f MJ vs uncapped\n",
			s.EnergyJ/1e6, jPerTok, s.CapExtraSec, s.CapDeltaJ/1e6)
		fmt.Fprintf(&b, "%-12s %10s %12s %13s %10s\n", "Class", "requests", "p99 TTFT (s)", "p99 TBT (ms)", "J/token")
		for _, name := range workload.Names(cfg.Classes) {
			ttft := m.TTFT[name]
			tbt := m.TBT[name]
			if ttft.Count() == 0 && tbt.Count() == 0 {
				continue
			}
			classJTok := 0.0
			if t := m.ClassTokens[name]; t > 0 {
				classJTok = m.ClassEnergyJ[name] / float64(t)
			}
			fmt.Fprintf(&b, "%-12s %10d %12.2f %13.1f %10.1f\n", name, tbt.Count(),
				ttft.Percentile(99), tbt.Percentile(99)*1000, classJTok)
		}
		if cfg.ServeRetries > 0 || cfg.ServeClassShed || cfg.ServeCircuitSheds > 0 || cfg.WatchdogDrain {
			sheds := 0
			for _, v := range m.ClassShed {
				sheds += v
			}
			fmt.Fprintf(&b, "Failover: %d retries (%d exhausted), %d class sheds, %d circuit opens, %d node drains\n",
				m.ServeRetries, m.ServeRetryExhausted, sheds, m.CircuitOpens, m.NodeDrains)
		}
		if cfg.ServeClassShed {
			fmt.Fprintf(&b, "%-12s %10s %10s %10s %11s\n", "Class", "arrived", "shed", "SLO ok", "goodput %")
			for _, name := range workload.Names(cfg.Classes) {
				arrived := m.ClassArrived[name]
				if arrived == 0 {
					continue
				}
				goodput := 100 * float64(m.ClassSLOOK[name]) / float64(arrived)
				fmt.Fprintf(&b, "%-12s %10d %10d %10d %10.1f%%\n",
					name, arrived, m.ClassShed[name], m.ClassSLOOK[name], goodput)
			}
		}
		if o.scen != nil {
			// Per-cohort SLO attainment (first token within the TTFT SLO,
			// over first admissions) and the Jain index of those attainment
			// fractions — 1.0 means every class meets its SLO equally often,
			// lower means the pain concentrates on a few classes.
			fmt.Fprintf(&b, "%-12s %-10s %10s %10s %10s\n", "Class", "slo", "arrived", "SLO ok", "attain %")
			var attain []float64
			for _, name := range workload.Names(cfg.Classes) {
				arrived := m.ClassArrived[name]
				if arrived == 0 {
					continue
				}
				frac := float64(m.ClassSLOOK[name]) / float64(arrived)
				attain = append(attain, frac)
				fmt.Fprintf(&b, "%-12s %-10s %10d %10d %9.1f%%\n",
					name, o.scen.SLOOf(name), arrived, m.ClassSLOOK[name], frac*100)
			}
			fmt.Fprintf(&b, "Jain fairness of SLO attainment across classes: %.3f\n", stats.Jain(attain))
		}
	}

	if o.retrain {
		base := polca.DefaultConfig()
		base.T1, base.T2 = o.t1, o.t2
		rec := polca.RetrainFromMetrics(base, m)
		fmt.Fprintf(&b, "\nThreshold retraining (from this run's power trace and capping history):\n%s", rec.Describe())
	}

	if db := o.obs.TimeSeries(); db != nil {
		db.Flush()
		wins := make([]string, 0, len(db.Windows()))
		for _, w := range db.Windows() {
			wins = append(wins, w.String())
		}
		fmt.Fprintf(&b, "\nTelemetry: %d series, %.0f KiB retained (raw %s + %s rollups; memory independent of run length)\n",
			db.NumSeries(), float64(db.MemoryBytes())/1024, db.Step(), strings.Join(wins, "/"))
	}
	if rl := o.obs.RuleEngine(); rl != nil {
		rl.Finish()
		fmt.Fprintf(&b, "Alerts (%s rules):\n", o.rulesName)
		if err := rl.WriteSummary(&b); err != nil {
			return "", fmt.Errorf("alerts: %w", err)
		}
	}

	prov := o.provenance(ctrl.Name())
	if o.csvPath != "" {
		if err := writeCSV(o.csvPath, m.Util, prov); err != nil {
			return "", fmt.Errorf("csv: %w", err)
		}
		fmt.Fprintf(&b, "\nUtilization series written to %s\n", o.csvPath)
	}
	if tr := o.obs.Trace(); tr != nil {
		if o.tracePath != "" {
			if err := writeTrace(o.tracePath, tr.WriteJSONL); err != nil {
				return "", fmt.Errorf("trace: %w", err)
			}
			fmt.Fprintf(&b, "\nEvent trace (%d events) written to %s\n", tr.Len(), o.tracePath)
		}
		if o.perfettoPath != "" {
			if err := writeTrace(o.perfettoPath, tr.WriteChromeTrace); err != nil {
				return "", fmt.Errorf("perfetto: %w", err)
			}
			fmt.Fprintf(&b, "Perfetto trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", o.perfettoPath)
		}
	}
	if db := o.obs.TimeSeries(); db != nil && o.tsdbPerfettoPath != "" {
		res := db.Windows()[0]
		if err := writeTrace(o.tsdbPerfettoPath, func(w io.Writer) error {
			return db.WriteChromeTrace(w, res)
		}); err != nil {
			return "", fmt.Errorf("tsdb-perfetto: %w", err)
		}
		fmt.Fprintf(&b, "TSDB counter tracks (%s resolution) written to %s\n", res, o.tsdbPerfettoPath)
	}
	if sp := o.obs.SpanSink(); sp != nil {
		if o.spansPath != "" {
			if err := writeTrace(o.spansPath, func(w io.Writer) error {
				if err := obs.WriteProvenance(w, prov); err != nil {
					return err
				}
				return sp.WriteJSONL(w)
			}); err != nil {
				return "", fmt.Errorf("spans: %w", err)
			}
			fmt.Fprintf(&b, "\nRequest spans (%d) written to %s (analyze with polca-analyze)\n", sp.Len(), o.spansPath)
		}
		if o.spansPerfettoPath != "" {
			if err := writeTrace(o.spansPerfettoPath, sp.WriteChromeTrace); err != nil {
				return "", fmt.Errorf("spans-perfetto: %w", err)
			}
			fmt.Fprintf(&b, "Request-span Perfetto trace written to %s (one track per request)\n", o.spansPerfettoPath)
		}
	}
	if dec := o.obs.DecisionLog(); dec != nil && o.decisionsPath != "" {
		if err := writeTrace(o.decisionsPath, func(w io.Writer) error {
			if err := obs.WriteProvenance(w, prov); err != nil {
				return err
			}
			return dec.WriteJSONL(w)
		}); err != nil {
			return "", fmt.Errorf("decisions: %w", err)
		}
		fmt.Fprintf(&b, "\nDecision log (%d decisions) written to %s (replay with polca-replay)\n", dec.Len(), o.decisionsPath)
	}
	return b.String(), nil
}

// provenance assembles the run parameters stamped onto result files.
// Hardening keys appear only when the corresponding feature is on, so a
// fault-free run's output stays byte-identical to the pre-hardening tool.
func (o runOpts) provenance(policyName string) obs.Provenance {
	p := obs.Provenance{
		"tool":      "polca-sim",
		"policy":    policyName,
		"seed":      o.seed,
		"days":      o.days,
		"servers":   o.cfg.Servers(),
		"base":      o.cfg.BaseServers,
		"added":     o.cfg.AddedFraction,
		"intensity": o.cfg.PowerIntensity,
		"lp":        o.cfg.LowPriorityFraction,
		"t1":        o.t1,
		"t2":        o.t2,
		"git":       obs.GitDescribe(),
	}
	if o.faults != "" {
		p["faults"] = o.faults
	}
	if o.scen != nil {
		p["scenario"] = o.scen.Name
		if o.scenScale != 1 {
			p["scenarioscale"] = o.scenScale
		}
	}
	if o.guard {
		p["guard"] = true
	}
	if o.cfg.WatchdogEpochs > 0 {
		p["watchdog"] = o.cfg.WatchdogEpochs
	}
	if o.cfg.DropStaleOOB {
		p["dropstale"] = true
	}
	if o.cfg.Serve != nil {
		p["serve"] = true
		p["router"] = o.cfg.Serve.Router
	}
	if o.cfg.ServeRetries > 0 {
		p["retries"] = o.cfg.ServeRetries
		if o.cfg.ServeRetryBackoff > 0 {
			p["retrybackoff"] = o.cfg.ServeRetryBackoff.String()
		}
	}
	if o.cfg.ServeClassShed {
		p["classshed"] = true
	}
	if o.cfg.ServeCircuitSheds > 0 {
		p["circuit"] = o.cfg.ServeCircuitSheds
	}
	if o.cfg.WatchdogDrain {
		p["wddrain"] = true
	}
	if o.obs.TimeSeries() != nil {
		p["tsdb"] = true
	}
	if o.obs.DecisionLog() != nil {
		p["decisions"] = true
	}
	if o.rulesName != "" {
		p["rules"] = o.rulesName
	}
	return p
}

// writeTrace streams a tracer export to a file.
func writeTrace(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(path string, s stats.Series, prov obs.Provenance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteProvenance(f, prov); err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"seconds", "utilization"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		if err := w.Write([]string{
			fmt.Sprintf("%.0f", s.TimeAt(i).Seconds()),
			fmt.Sprintf("%.5f", v),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
