// Command polca-sim runs one inference-row power-oversubscription
// simulation and reports utilization, latency, throughput, and power-brake
// outcomes.
//
// Usage:
//
//	polca-sim [-policy polca|1tl|1ta|nocap] [-added 0.30] [-days 7]
//	          [-servers 40] [-intensity 1.0] [-lp 0.5] [-seed 1]
//	          [-t1 0.80] [-t2 0.89] [-csv out.csv]
//
// The -csv flag additionally writes the 2 s row-utilization series.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"polca/internal/cluster"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

func main() {
	policy := flag.String("policy", "polca", "power policy: polca, 1tl, 1ta, nocap")
	added := flag.Float64("added", 0.30, "oversubscription fraction (0.30 = 30% more servers)")
	days := flag.Int("days", 7, "simulated days")
	servers := flag.Int("servers", 40, "base row size")
	intensity := flag.Float64("intensity", 1.0, "workload power intensity factor")
	lpFrac := flag.Float64("lp", 0.5, "low-priority server fraction")
	seed := flag.Int64("seed", 1, "simulation seed")
	t1 := flag.Float64("t1", 0.80, "POLCA T1 threshold")
	t2 := flag.Float64("t2", 0.89, "POLCA T2 threshold")
	csvPath := flag.String("csv", "", "write the utilization series to this CSV file")
	retrain := flag.Bool("retrain", false, "print a threshold retraining recommendation after the run")
	replay := flag.String("replay", "", "replay a request trace CSV (from polca-trace -requests) instead of generating arrivals")
	flag.Parse()

	cfg := cluster.Production()
	cfg.BaseServers = *servers
	cfg.AddedFraction = *added
	cfg.PowerIntensity = *intensity
	cfg.LowPriorityFraction = *lpFrac
	cfg.Seed = *seed

	var ctrl cluster.Controller
	switch *policy {
	case "polca":
		pc := polca.DefaultConfig()
		pc.T1, pc.T2 = *t1, *t2
		ctrl = polca.New(pc)
	case "1tl":
		ctrl = polca.NewSingleThresholdLowPri()
	case "1ta":
		ctrl = polca.NewSingleThresholdAll()
	case "nocap":
		ctrl = polca.NoCap{}
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	fitCfg := cfg
	fitCfg.PowerIntensity = 1
	horizon := time.Duration(*days) * 24 * time.Hour
	eng := sim.New(*seed)

	fmt.Printf("Simulating %d days: %d servers (%d base, +%.0f%%), policy %s, intensity %.2f\n",
		*days, cfg.Servers(), cfg.BaseServers, *added*100, ctrl.Name(), *intensity)
	start := time.Now()
	row := cluster.NewRow(eng, cfg, ctrl)
	var m *cluster.Metrics
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		reqs, err := cluster.LoadRequestsCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		fmt.Printf("Replaying %d requests from %s\n", len(reqs), *replay)
		m = row.RunRequests(reqs, horizon)
	} else {
		ref := trace.ProductionInference().Reference(horizon, eng.Rand("reference"))
		plan, err := trace.FitArrivals(ref, fitCfg.Shape(), 5*time.Minute)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		m = row.Run(plan.Scale(1 + *added))
	}
	fmt.Printf("Done in %.1fs (%d requests served)\n\n", time.Since(start).Seconds(),
		m.Completed[workload.Low]+m.Completed[workload.High])

	fmt.Printf("Row budget: %.0f kW (provisioned for %d servers)\n", m.Provisioned/1000, cfg.BaseServers)
	fmt.Printf("Utilization: mean %.1f%%, peak %.1f%%, max 2s rise %.1f%%, max 40s rise %.1f%%\n",
		m.Util.Mean()*100, m.Util.Peak()*100,
		m.Util.MaxRise(2*time.Second)*100, m.Util.MaxRise(40*time.Second)*100)
	fmt.Printf("Power brakes: %d; OOB commands: %d (%d silent failures)\n\n",
		m.BrakeEvents, m.LockCommands, m.FailedCommands)

	fmt.Printf("%-10s %10s %10s %10s %10s %10s %10s\n", "Priority", "served", "dropped", "p50 (s)", "p99 (s)", "max (s)", "req/srv/h")
	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		lat := m.LatencySec[pri]
		poolN := row.PoolSize(pri)
		fmt.Printf("%-10s %10d %10d %10.1f %10.1f %10.1f %10.1f\n",
			pri, m.Completed[pri], m.Dropped[pri],
			stats.Percentile(lat, 50), stats.Percentile(lat, 99), stats.Percentile(lat, 100),
			m.Throughput(pri, poolN)*3600)
	}

	if *retrain {
		base := polca.DefaultConfig()
		base.T1, base.T2 = *t1, *t2
		rec := polca.RetrainFromMetrics(base, m)
		fmt.Printf("\nThreshold retraining (from this run's power trace and capping history):\n%s", rec.Describe())
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, m.Util); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("\nUtilization series written to %s\n", *csvPath)
	}
}

func writeCSV(path string, s stats.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"seconds", "utilization"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		if err := w.Write([]string{
			fmt.Sprintf("%.0f", s.TimeAt(i).Seconds()),
			fmt.Sprintf("%.5f", v),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
