package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildAssemblesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fig4.txt"), []byte("FIG4 ROWS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tab4.txt"), []byte("TAB4 ROWS"), 0o644); err != nil {
		t.Fatal(err)
	}
	report, missing, err := build(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "FIG4 ROWS") || !strings.Contains(report, "TAB4 ROWS") {
		t.Error("report missing artifact bodies")
	}
	if !strings.Contains(report, "## Figure 4") || !strings.Contains(report, "## Table 4") {
		t.Errorf("report missing titles:\n%s", report[:200])
	}
	// Figure 4 must appear before Table 4 (registry order).
	if strings.Index(report, "FIG4 ROWS") > strings.Index(report, "TAB4 ROWS") {
		t.Error("artifacts out of paper order")
	}
	if len(missing) == 0 {
		t.Error("unexported experiments should be reported missing")
	}
	for _, id := range missing {
		if id == "fig4" || id == "tab4" {
			t.Errorf("%s reported missing despite existing", id)
		}
	}
}

func TestBuildEmptyDir(t *testing.T) {
	if _, _, err := build(t.TempDir()); err == nil {
		t.Error("want error for a directory with no artifacts")
	}
}

func TestBuildSkipsProvenanceComments(t *testing.T) {
	dir := t.TempDir()
	body := "# seed: 1\n# git: abc123\nFIG4 ROWS\nmore # inline stays\n"
	if err := os.WriteFile(filepath.Join(dir, "fig4.txt"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	report, _, err := build(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(report, "# seed") || strings.Contains(report, "# git") {
		t.Errorf("provenance comment lines leaked into the report:\n%s", report)
	}
	if !strings.Contains(report, "FIG4 ROWS") || !strings.Contains(report, "more # inline stays") {
		t.Errorf("non-comment content lost:\n%s", report)
	}
}
