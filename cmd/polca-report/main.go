// Command polca-report assembles the artifacts exported by
// `polca-experiments -out <dir>` into a single markdown report, in paper
// order, with each experiment's rendered tables and charts in fenced
// blocks.
//
// Usage:
//
//	polca-report [-in results] [-o REPORT.md]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polca/internal/experiments"
)

func main() {
	in := flag.String("in", "results", "directory written by polca-experiments -out")
	out := flag.String("o", "REPORT.md", "output markdown file ('-' for stdout)")
	flag.Parse()

	report, missing, err := build(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "note: %d experiment(s) not found in %s: %s\n",
			len(missing), *in, strings.Join(missing, ", "))
	}
	if *out == "-" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("report written to %s\n", *out)
}

// build assembles the report and returns the experiments that had no
// exported artifact.
func build(dir string) (string, []string, error) {
	var b strings.Builder
	var missing []string
	fmt.Fprintf(&b, "# Reproduced artifacts\n\n")
	fmt.Fprintf(&b, "Assembled from `%s` on %s. Regenerate with "+
		"`polca-experiments -out %s && polca-report -in %s`.\n\n",
		dir, time.Now().UTC().Format("2006-01-02"), dir, dir)

	found := 0
	for _, id := range experiments.IDs() {
		title, err := experiments.Title(id)
		if err != nil {
			return "", nil, err
		}
		blob, err := os.ReadFile(filepath.Join(dir, id+".txt"))
		if err != nil {
			missing = append(missing, id)
			continue
		}
		found++
		fmt.Fprintf(&b, "## %s\n\n", title)
		fmt.Fprintf(&b, "```\n%s\n```\n\n", strings.TrimRight(stripComments(string(blob)), "\n"))
	}
	if found == 0 {
		return "", missing, fmt.Errorf("no exported artifacts in %s (run polca-experiments -out %s first)", dir, dir)
	}
	return b.String(), missing, nil
}

// stripComments drops '#' run-provenance header lines from an artifact so
// reports stay readable; provenance remains in the source files.
func stripComments(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "#") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}
