package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from the current output")

// TestGolden runs the full CLI on the committed fixture (a deterministic
// faulted serve-mode run recorded with the decision recorder — see
// testdata/gen.go) and compares against the golden report byte for byte.
// -no-provenance keeps the output stable: the replayer's own header
// carries a git stamp that varies by build.
func TestGolden(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-no-provenance", "-top", "3", "-spans", "testdata/spans.jsonl", "testdata/decisions.jsonl"}
	if code := cli(args, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.txt", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden.txt updated")
		return
	}
	want, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from golden (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), want)
	}
}

// TestSelfMode: -self on a complete log is a clean exit; the fixture's
// fidelity line must show full reproduction.
func TestSelfMode(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-no-provenance", "-self", "testdata/decisions.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "Self-replay fidelity: 360/360 ticks") ||
		!strings.Contains(got, "117/117 picks") {
		t.Errorf("fidelity line missing or partial:\n%s", got)
	}
	if strings.Contains(got, "Counterfactual cap policies") {
		t.Error("-self ran the full counterfactual report")
	}
}

// TestProvenanceHeader: by default the report opens with the replayer's
// own `#` lines above the echoed log header; -no-provenance drops exactly
// the replayer's.
func TestProvenanceHeader(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{"-self", "testdata/decisions.jsonl"}, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	got := out.String()
	for _, w := range []string{
		"# tool: polca-replay",
		"# input: testdata/decisions.jsonl",
		"# git: ",
		"# tool: polca-sim", // echoed from the recorded log
	} {
		if !strings.Contains(got, w) {
			t.Errorf("default output missing %q", w)
		}
	}
	var bare, errw2 bytes.Buffer
	if code := cli([]string{"-no-provenance", "-self", "testdata/decisions.jsonl"}, &bare, &errw2); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw2.String())
	}
	if strings.Contains(bare.String(), "# tool: polca-replay") {
		t.Error("-no-provenance did not suppress the replayer header")
	}
	if !strings.Contains(bare.String(), "# tool: polca-sim") {
		t.Error("-no-provenance also dropped the echoed input header")
	}
}

// TestPerfettoOutput: -perfetto writes a valid Chrome trace with regret
// slices from the fixture's diverged alternates.
func TestPerfettoOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regret.json")
	var out, errw bytes.Buffer
	args := []string{"-no-provenance", "-top", "5", "-routers=false", "-perfetto", path, "testdata/decisions.jsonl"}
	if code := cli(args, &out, &errw); code != 0 {
		t.Fatalf("cli exited %d: %s", code, errw.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Error("no regret slices in the annotation track")
	}
	if !strings.Contains(out.String(), "Regret annotation track written to") {
		t.Error("report does not mention the annotation track")
	}
}

// TestCLIErrors: usage, missing file, bad grid, truncated log.
func TestCLIErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := cli([]string{}, &out, &errw); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := cli([]string{"testdata/definitely-missing.jsonl"}, &out, &errw); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := cli([]string{"-grid", "a,b", "testdata/decisions.jsonl"}, &out, &errw); code != 2 {
		t.Errorf("bad grid: exit %d, want 2", code)
	}

	// A truncated copy (last line dropped after a mid-file cut) must fail
	// with the scanner's gap error, not replay silently short.
	raw, err := os.ReadFile("testdata/decisions.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	cut := append([]string{}, lines[:len(lines)/2]...)
	cut = append(cut, lines[len(lines)/2+1:]...)
	path := filepath.Join(t.TempDir(), "truncated.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(cut, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	errw.Reset()
	if code := cli([]string{path}, &out, &errw); code != 1 {
		t.Errorf("truncated log: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "gap") {
		t.Errorf("truncated log error %q does not report the sequence gap", errw.String())
	}
}
