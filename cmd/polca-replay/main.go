// Command polca-replay re-evaluates a recorded decision log against
// alternate policy configurations — purely on the recorded input
// snapshots, with no re-simulation — and prices the divergence into
// per-decision regret.
//
// Usage:
//
//	polca-replay [-top 10] [-grid "-0.05,0,0.05"] [-routers]
//	             [-spans spans.jsonl] [-perfetto regret.json]
//	             [-no-provenance] decisions.jsonl
//	polca-replay -self decisions.jsonl
//
// The input is the JSONL decision log that `polca-sim -decisions` writes
// (schema polca-decisions/v2): every controller tick with the exact
// telemetry reading or outage the policy saw, the guard/watchdog state and
// busy/power snapshot per pool, and every router pick with its per-replica
// queue/KV/cap candidate set. Because each decision carries its full
// input, any alternate cap policy can be asked "what would you have done
// here?" and any router policy can re-pick over the same candidates.
//
// The report opens with the self-replay fidelity check — the recorded
// configuration replayed against its own log must reproduce 100% of
// decisions, which is what proves the log complete — then compares the
// deployed cap policy against the standard alternates (single-threshold
// variants, the ladder equivalent, no-cap) and a T1/T2 threshold grid
// around the deployed values. Each diverged tick is priced from the
// recorded busy/power snapshot using the same inference cost model the
// simulator runs on: headroom joules the deployed config left unreclaimed
// when the row had safe margin, joules a deeper-capping alternate would
// have saved, busy-server latency seconds burned relative to the
// alternate, and brake risk where reclaiming headroom would have pushed
// estimated utilization to the brake threshold. Per-policy summaries are
// followed by top-K regret tables, and -routers replays every registered
// router policy over the recorded candidate snapshots (stateful policies
// reproduce their cursors, so the deployed router is divergence-free).
//
// -spans folds the run's request-span trace (polca-sim -spans) into the
// report, giving the recorded per-request TTFT/cap/energy baseline that
// the regret estimates scale against. -perfetto writes the highest-regret
// intervals as a Chrome trace-event annotation track to load next to the
// run's other traces in ui.perfetto.dev.
//
// -self runs only the fidelity check and exits non-zero on any
// divergence, which makes it a cheap CI gate over recorded logs. Reports
// are self-describing: a `#` provenance header (suppress with
// -no-provenance for byte-stable golden outputs) above the input log's
// echoed header.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"polca/internal/obs"
	"polca/internal/replay"
	"polca/internal/serve"
)

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}

// cli runs the replayer; split from main so tests drive it end to end.
func cli(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("polca-replay", flag.ContinueOnError)
	fs.SetOutput(errw)
	top := fs.Int("top", 10, "rows in each per-policy top-regret table")
	grid := fs.String("grid", "-0.05,0,0.05", "comma-separated T1/T2 offsets for the threshold sweep (empty disables; POLCA logs only)")
	routers := fs.Bool("routers", true, "replay every registered router policy over the recorded candidate snapshots")
	spansPath := fs.String("spans", "", "fold the run's request-span trace into the report as the recorded per-request baseline")
	perfettoPath := fs.String("perfetto", "", "write the top-regret intervals as a Chrome trace-event annotation track")
	self := fs.Bool("self", false, "fidelity check only: replay the deployed configuration and exit non-zero on any divergence")
	noProv := fs.Bool("no-provenance", false, "suppress the replayer's own `#` provenance header (input headers are still echoed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: polca-replay [-self] [-top N] [-grid OFFSETS] decisions.jsonl")
		return 2
	}
	offsets, err := parseOffsets(*grid)
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 2
	}

	l, err := replay.LoadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 1
	}

	if !*noProv {
		prov := obs.Provenance{
			"tool":  "polca-replay",
			"git":   obs.GitDescribe(),
			"input": fs.Arg(0),
			"top":   *top,
		}
		if *grid != "" {
			prov["grid"] = *grid
		}
		if *self {
			prov["self"] = true
		}
		if err := obs.WriteProvenance(out, prov); err != nil {
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
	}
	for _, c := range l.Comments {
		fmt.Fprintln(out, c)
	}
	if len(l.Comments) > 0 || !*noProv {
		fmt.Fprintln(out)
	}

	writeOverview(out, l)
	tickDiv, routeDiv, err := writeFidelity(out, l)
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 1
	}
	if *self {
		if tickDiv+routeDiv > 0 {
			fmt.Fprintln(errw, "error: self replay diverged; the log does not carry the policy's full input")
			return 1
		}
		return 0
	}

	prof, err := replay.NewProfiler(l.Meta)
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 1
	}
	alts, err := replay.Alternates(l)
	if err != nil {
		fmt.Fprintln(errw, "error:", err)
		return 1
	}
	var sums []*replay.PolicySummary
	for _, a := range alts {
		sums = append(sums, replay.Evaluate(l, a.Name, a.Ctrl, prof, *top))
	}
	var gridSums []*replay.PolicySummary
	for _, g := range replay.ThresholdGrid(l, offsets) {
		gridSums = append(gridSums, replay.Evaluate(l, g.Name, g.Ctrl, prof, *top))
	}
	writePolicyTable(out, l, sums, gridSums)
	for _, s := range sums {
		writeTopRegret(out, s)
	}

	if *routers {
		if err := writeRouterTable(out, l); err != nil {
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
	}
	if *spansPath != "" {
		if err := writeSpanBaseline(out, *spansPath); err != nil {
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
	}
	if *perfettoPath != "" {
		f, err := os.Create(*perfettoPath)
		if err != nil {
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
		annotated := append(append([]*replay.PolicySummary(nil), sums...), gridSums...)
		if err := replay.WritePerfetto(f, l.Meta, annotated); err != nil {
			f.Close()
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(errw, "error:", err)
			return 1
		}
		fmt.Fprintf(out, "Regret annotation track written to %s (load next to the run's traces in ui.perfetto.dev)\n", *perfettoPath)
	}
	return 0
}

// parseOffsets parses the -grid flag: a comma-separated float list.
func parseOffsets(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-grid %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func writeOverview(w io.Writer, l *replay.Log) {
	horizon := time.Duration(0)
	for _, d := range l.Decisions {
		if d.At > horizon {
			horizon = d.At
		}
	}
	fmt.Fprintf(w, "Decision log: %d controller ticks, %d router picks over %s (schema %s)\n",
		l.Ticks(), l.Routes(), fmtDur(horizon), l.Meta.Schema)
	fmt.Fprintf(w, "Deployed: %s  seed=%d  servers=%d (%d low-priority)  telemetry=%gs\n",
		l.Meta.Policy, l.Meta.Seed, l.Meta.Servers, l.Meta.LPServers, l.Meta.TelemetrySec)
	if l.Meta.Serve {
		fmt.Fprintf(w, "Serve mode: router=%s\n", l.Meta.Router)
	}
	fmt.Fprintln(w)
}

// writeFidelity replays the deployed configuration against its own log and
// reports reproduction — the check that proves the log carries the
// policy's full input.
func writeFidelity(w io.Writer, l *replay.Log) (tickDiv, routeDiv int, err error) {
	tickDiv, ticks, err := replay.SelfCheck(l)
	if err != nil {
		return 0, 0, err
	}
	fmt.Fprintf(w, "Self-replay fidelity: %d/%d ticks reproduce the recorded locks", ticks-tickDiv, ticks)
	routes := l.Routes()
	if routes > 0 {
		_, sum, rerr := replay.ReplayRoutes(l, l.Meta.Router)
		if rerr != nil {
			return 0, 0, rerr
		}
		routeDiv = sum.Diverged
		fmt.Fprintf(w, ", %d/%d picks reproduce the recorded routes", routes-routeDiv, routes)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
	return tickDiv, routeDiv, nil
}

func writePolicyTable(w io.Writer, l *replay.Log, sums, gridSums []*replay.PolicySummary) {
	fmt.Fprintln(w, "Counterfactual cap policies (priced on recorded snapshots; positive latency = deployed ran slower):")
	fmt.Fprintf(w, "%-18s %14s %13s %11s %11s %11s %9s\n",
		"policy", "diverged", "headroom kJ", "saved kJ", "latency s", "brake-risk", "J/req")
	row := func(s *replay.PolicySummary) {
		fmt.Fprintf(w, "%-18s %7d/%-6d %13.2f %11.2f %11.1f %11d %9.1f\n",
			s.Name, s.Diverged, s.Ticks, s.HeadroomJ/1e3, s.SavedJ/1e3,
			s.LatencyS, s.BrakeRiskTicks, s.EnergyPerReqJ)
	}
	for _, s := range sums {
		row(s)
	}
	if len(gridSums) > 0 {
		fmt.Fprintf(w, "Threshold grid around deployed T1=%.2f T2=%.2f:\n", l.Meta.Spec.T1, l.Meta.Spec.T2)
		for _, s := range gridSums {
			row(s)
		}
	}
	fmt.Fprintln(w)
}

// writeTopRegret renders one alternate's highest-regret ticks — where the
// deployed configuration left the most headroom unreclaimed or the
// alternate would have saved the most energy.
func writeTopRegret(w io.Writer, s *replay.PolicySummary) {
	if len(s.TopRegret) == 0 {
		return
	}
	fmt.Fprintf(w, "Top %d regret ticks vs %s:\n", len(s.TopRegret), s.Name)
	fmt.Fprintf(w, "%10s %10s %15s %15s %10s %11s %11s %6s\n",
		"seq", "t", "rec LP/HP MHz", "alt LP/HP MHz", "regret J", "latency s", "est ΔW", "risk")
	for _, r := range s.TopRegret {
		risk := ""
		if r.BrakeRisk {
			risk = "brake"
		}
		fmt.Fprintf(w, "%10d %10s %7s/%-7s %7s/%-7s %10.1f %11.2f %11.1f %6s\n",
			r.Seq, fmtDur(r.At), fmtMHz(r.RecLP), fmtMHz(r.RecHP),
			fmtMHz(r.AltLP), fmtMHz(r.AltHP), r.Score(), r.LatencyS, r.DeltaW, risk)
	}
	fmt.Fprintln(w)
}

func writeRouterTable(w io.Writer, l *replay.Log) error {
	if l.Routes() == 0 {
		return nil
	}
	fmt.Fprintln(w, "Router policies over recorded candidate snapshots:")
	fmt.Fprintf(w, "%-18s %14s %13s %10s %13s\n",
		"router", "diverged", "excess load", "mean KV", "capped picks")
	for _, name := range serve.RouterNames() {
		_, sum, err := replay.ReplayRoutes(l, name)
		if err != nil {
			return err
		}
		deployed := ""
		if name == l.Meta.Router {
			deployed = "  (deployed)"
		}
		fmt.Fprintf(w, "%-18s %7d/%-6d %13.2f %10.2f %13d%s\n",
			sum.Name, sum.Diverged, sum.Routes, sum.MeanExcessLoad, sum.MeanChosenKV, sum.CappedPicks, deployed)
	}
	fmt.Fprintln(w)
	return nil
}

// writeSpanBaseline folds the run's span trace into the recorded
// per-request baseline the regret estimates scale against.
func writeSpanBaseline(w io.Writer, path string) error {
	st, err := replay.LoadSpanStats(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Recorded request baseline (%s): %d requests, mean TTFT %.3fs\n",
		path, st.Requests, st.MeanTTFTSec)
	fmt.Fprintf(w, "  cap slowdown %+.1f request-s (%+.3f s/req), energy %.2f kJ (%.1f J/req)\n",
		st.TotalCapSec, st.MeanCapSec, st.TotalEnergyJ/1e3, st.MeanEnergyJ)
	fmt.Fprintln(w)
	return nil
}

// fmtDur renders a simulated timestamp compactly, matching the rest of the
// tooling (seconds rounded).
func fmtDur(d time.Duration) string {
	return d.Round(time.Second).String()
}

// fmtMHz renders a pool lock, with uncapped as "-".
func fmtMHz(mhz float64) string {
	if mhz == 0 {
		return "-"
	}
	return strconv.FormatFloat(mhz, 'f', 0, 64)
}
