//go:build ignore

// gen regenerates decisions.jsonl and spans.jsonl, the golden-test
// fixtures: one small deterministic faulted serve-mode run (telemetry
// dropout, a controller crash long enough to engage the deadman watchdog,
// a node death) recorded with both the decision recorder and the span
// tracer, so the replay fixture holds capped ticks, outage epochs,
// watchdog engagement, and router picks with live candidate sets, while
// the span fixture supplies the matching per-request baseline. Run from
// this directory:
//
//	go run gen.go
//
// Then refresh the golden report with `go test .. -run TestGolden -update`.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/trace"
)

func main() {
	cfg := cluster.Production()
	cfg.BaseServers = 4
	cfg.AddedFraction = 0.30
	cfg.BrakeUtil = 0.90
	cfg.BrakeReleaseUtil = 0.80
	cfg.Serve = &serve.Config{Router: "round-robin"}
	spec, err := faults.Parse("tdrop=0.15,crash=2m+45,kill=1@6m+1m")
	if err != nil {
		panic(err)
	}
	cfg.Faults = spec
	cfg.WatchdogEpochs = 5
	cfg.OOBRetryBudget = 8
	cfg.OOBRetryBackoff = 4 * time.Second
	cfg.DropStaleOOB = true
	cfg.ServeRetries = 3
	cfg.ServeRetryBackoff = 2 * time.Second

	ctrl := polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
	pspec, gspec, err := polca.DescribeController(ctrl)
	if err != nil {
		panic(err)
	}
	rec := obs.NewDecisionRecorder()
	rec.UpdateMeta(func(m *obs.DecisionMeta) {
		m.Spec, m.Guard, m.Seed = pspec, gspec, cfg.Seed
	})
	spans := obs.NewSpanTracer()
	eng := sim.New(cfg.Seed)
	eng.SetObserver(&obs.Observer{Decisions: rec, Spans: spans})
	row := cluster.MustRow(eng, cfg, ctrl)

	const horizon = 12 * time.Minute
	shape := cfg.Shape()
	rate := 0.95 * float64(cfg.Servers()) / shape.MeanServiceSec
	rates := make([]float64, int(horizon/time.Minute))
	for i := range rates {
		rates[i] = rate
	}
	row.Run(trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32})

	prov := obs.Provenance{
		"tool": "polca-sim", "policy": ctrl.Name(), "seed": cfg.Seed,
		"serve": true, "router": "round-robin", "git": "unknown",
		"faults": "tdrop=0.15,crash=2m+45,kill=1@6m+1m", "watchdog": cfg.WatchdogEpochs,
	}
	write := func(path string, emit func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := obs.WriteProvenance(f, prov); err != nil {
			panic(err)
		}
		if err := emit(f); err != nil {
			panic(err)
		}
	}
	write("decisions.jsonl", rec.WriteJSONL)
	write("spans.jsonl", spans.WriteJSONL)
	fmt.Printf("wrote decisions.jsonl (%d decisions) and spans.jsonl (%d spans)\n",
		rec.Len(), spans.Len())
}
