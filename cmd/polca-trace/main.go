// Command polca-trace generates the synthetic production trace the POLCA
// evaluation runs on (§6.4): a diurnal reference power-utilization series,
// the fitted request-arrival plan, and the MAPE validation between them.
//
// Usage:
//
//	polca-trace [-days 7] [-seed 1] [-servers 40] [-bucket 5m]
//	            [-csv trace.csv] [-arrivals arrivals.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/stats"
	"polca/internal/trace"
)

// provenance stamps every CSV this command writes, so a result file is
// self-describing (readers skip '#' comment lines).
func provenance(days int, seed int64, servers int, bucket time.Duration) obs.Provenance {
	return obs.Provenance{
		"tool":    "polca-trace",
		"days":    days,
		"seed":    seed,
		"servers": servers,
		"bucket":  bucket,
		"git":     obs.GitDescribe(),
	}
}

func main() {
	days := flag.Int("days", 7, "trace length in days")
	seed := flag.Int64("seed", 1, "generation seed")
	servers := flag.Int("servers", 40, "row size the trace is fitted for")
	bucket := flag.Duration("bucket", 5*time.Minute, "arrival-rate bucket size")
	csvPath := flag.String("csv", "", "write the reference utilization series to CSV")
	arrPath := flag.String("arrivals", "", "write sampled request arrival times to CSV")
	reqPath := flag.String("requests", "", "write a full synthetic request trace (arrival, class, priority, sizes) to CSV")
	flag.Parse()

	model := trace.ProductionInference()
	horizon := time.Duration(*days) * 24 * time.Hour
	ref := model.Reference(horizon, rand.New(rand.NewSource(*seed)))

	cfg := cluster.Production()
	cfg.BaseServers = *servers
	shape := cfg.Shape()
	plan, err := trace.FitArrivals(ref, shape, *bucket)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fit:", err)
		os.Exit(1)
	}
	mape, err := trace.ValidateFit(ref, plan, shape)
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}

	fmt.Printf("Reference trace: %d days at %v (%d samples)\n", *days, model.Step, ref.Len())
	fmt.Printf("  mean %.1f%%, peak %.1f%%, max 2s rise %.1f%%, max 40s rise %.1f%%\n",
		ref.Mean()*100, ref.Peak()*100, ref.MaxRise(2*time.Second)*100, ref.MaxRise(40*time.Second)*100)
	fmt.Printf("Cluster shape: %d servers, %.0f kW budget, busy %.2f kW, idle %.2f kW, mean service %.1fs\n",
		shape.Servers, shape.ProvisionedWatts/1000, shape.BusyServerWatts/1000,
		shape.IdleServerWatts/1000, shape.MeanServiceSec)
	fmt.Printf("Fitted arrival plan: %d buckets of %v; MAPE vs reference %.2f%% (paper accepts <= 3%%)\n",
		len(plan.Rates), plan.Bucket, mape*100)

	trained := polca.TrainThresholds(ref, cfg.BrakeUtil, cfg.OOBLatency)
	fmt.Printf("Thresholds trained from this trace: T1=%.0f%% T2=%.0f%%\n", trained.T1*100, trained.T2*100)

	prov := provenance(*days, *seed, *servers, *bucket)
	if *csvPath != "" {
		if err := writeSeriesCSV(*csvPath, ref, prov); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("Reference series written to %s\n", *csvPath)
	}
	if *arrPath != "" {
		arrivals := plan.Arrivals(rand.New(rand.NewSource(*seed + 1)))
		if err := writeArrivalsCSV(*arrPath, arrivals, prov); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		fmt.Printf("%d arrivals written to %s\n", len(arrivals), *arrPath)
	}
	if *reqPath != "" {
		reqs, err := cluster.GenerateRequests(cfg, plan, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "requests:", err)
			os.Exit(1)
		}
		f, err := os.Create(*reqPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "requests:", err)
			os.Exit(1)
		}
		err = obs.WriteProvenance(f, prov)
		if err == nil {
			err = cluster.SaveRequestsCSV(f, reqs)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "requests:", err)
			os.Exit(1)
		}
		fmt.Printf("%d requests written to %s (replay with polca-sim -replay)\n", len(reqs), *reqPath)
	}
}

func writeSeriesCSV(path string, s stats.Series, prov obs.Provenance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteProvenance(f, prov); err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"seconds", "utilization"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		if err := w.Write([]string{
			fmt.Sprintf("%.0f", s.TimeAt(i).Seconds()),
			fmt.Sprintf("%.5f", v),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeArrivalsCSV(path string, arrivals []time.Duration, prov obs.Provenance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteProvenance(f, prov); err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"seconds"}); err != nil {
		return err
	}
	for _, a := range arrivals {
		if err := w.Write([]string{fmt.Sprintf("%.3f", a.Seconds())}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
