// Command polca-profile reproduces the paper's server-level power
// characterization interactively: power timeseries for inference and
// training workloads (rendered as ASCII traces), configuration sweeps, and
// the counter-correlation analysis.
//
// Usage:
//
//	polca-profile -mode inference -model BLOOM-176B [-input 2048]
//	              [-output 256] [-batch 1] [-lock 1110] [-cap 325]
//	polca-profile -mode training -model GPT-NeoX-20B [-lock 1100] [-cap 325]
//	polca-profile -mode sweep -model BLOOM-176B
//	polca-profile -mode correlate
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/profiler"
	"polca/internal/stats"
)

func main() {
	mode := flag.String("mode", "inference", "inference, training, sweep, or correlate")
	model := flag.String("model", "BLOOM-176B", "model name (see Table 3)")
	input := flag.Int("input", 2048, "prompt tokens")
	output := flag.Int("output", 256, "output tokens")
	batch := flag.Int("batch", 1, "batch size")
	lock := flag.Float64("lock", 0, "SM clock lock in MHz (0 = unlocked)")
	capW := flag.Float64("cap", 0, "power cap in watts (0 = TDP)")
	requests := flag.Int("requests", 3, "requests to profile (inference mode)")
	flag.Parse()

	knob := profiler.Knob{LockClockMHz: *lock, PowerCapWatts: *capW}
	switch *mode {
	case "inference":
		runInference(*model, *batch, *input, *output, knob, *requests)
	case "training":
		runTraining(*model, knob)
	case "sweep":
		runSweep(*model, *batch, *input, *output)
	case "correlate":
		runCorrelate(*model, *input)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func mustModel(name string) llm.Model {
	m, err := llm.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return m
}

// sparkline renders a series as an ASCII trace normalized to [lo, hi].
func sparkline(s stats.Series, lo, hi float64, width int) string {
	if s.Len() == 0 {
		return "(empty)"
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	step := s.Len() / width
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for i := 0; i < s.Len(); i += step {
		end := i + step
		if end > s.Len() {
			end = s.Len()
		}
		v := stats.Max(s.Values[i:end])
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		b.WriteRune(glyphs[int(frac*float64(len(glyphs)-1)+0.5)])
	}
	return b.String()
}

func runInference(name string, batch, input, output int, knob profiler.Knob, requests int) {
	m := mustModel(name)
	cfg := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: batch, InputTokens: input, OutputTokens: output}
	run, err := profiler.RunInference(cfg, knob, 1, requests, 500*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tdp := run.Spec.TDPWatts
	s := run.PowerSeries()
	fmt.Printf("%s inference (batch=%d input=%d output=%d, %s) on %s\n",
		m.Name, batch, input, output, knob, run.Spec.Name)
	fmt.Printf("power trace (%d x 100ms samples, %.0f-%.0f W):\n  %s\n",
		s.Len(), stats.Min(s.Values), s.Peak(), sparkline(s, 0.5*tdp, 1.15*tdp, 100))
	fmt.Printf("peak %.2f TDP, mean %.2f TDP, mean latency %.2fs\n",
		s.Peak()/tdp, s.Mean()/tdp, run.MeanLatency().Seconds())
	for _, sp := range run.Spans {
		if sp.Request == 0 {
			fmt.Printf("  request 0 %s phase: %.2fs\n", sp.Name, (sp.To - sp.From).Seconds())
		}
	}
}

func runTraining(name string, knob profiler.Knob) {
	var cfg plan.TrainingConfig
	found := false
	for _, c := range plan.TrainingProfiles() {
		if c.Model.Name == name {
			cfg, found = c, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "no training profile for %q (have RoBERTa-355M, GPT-NeoX-20B, Flan-T5-XXL-11B)\n", name)
		os.Exit(2)
	}
	run, err := profiler.RunTraining(cfg, knob, 5)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tdp := run.Spec.TDPWatts
	s := run.Timeline.SampleInstant(profiler.DCGMInterval, func(c gpu.Counters) float64 { return c.PowerWatts })
	fmt.Printf("%s fine-tuning (%s) on %s, 5 iterations\n", name, knob, run.Spec.Name)
	fmt.Printf("power trace:\n  %s\n", sparkline(s, 0, 1.15*tdp, 100))
	fmt.Printf("sustained peak %.2f TDP, sync trough %.2f TDP, %.2fs per iteration\n",
		run.PeakWatts/tdp, run.TroughWatts/tdp, run.IterSeconds)
}

func runSweep(name string, batch, input, output int) {
	m := mustModel(name)
	cfg := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: batch, InputTokens: input, OutputTokens: output}
	clocks := []float64{1410, 1350, 1300, 1250, 1200, 1150, 1100}
	pts, err := profiler.FrequencySweep(cfg, clocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s frequency sweep (batch=%d input=%d output=%d):\n", m.Name, batch, input, output)
	fmt.Printf("%10s %22s %16s\n", "SM MHz", "peak power reduction", "perf reduction")
	for _, p := range pts {
		fmt.Printf("%10.0f %21.1f%% %15.1f%%\n", p.Knob.LockClockMHz, p.PeakPowerReduction*100, p.PerfReduction*100)
	}
}

func runCorrelate(name string, input int) {
	m := mustModel(name)
	cfg := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: input, OutputTokens: 64}
	prompt, token, err := profiler.CounterCorrelations(cfg, 3, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	show := func(label string, mx profiler.CorrMatrix) {
		fmt.Printf("%s phase — correlation of power with:\n", label)
		for i, l := range mx.Labels {
			if l == "power" {
				continue
			}
			fmt.Printf("  %-16s %+0.2f\n", l, mx.R[0][i])
		}
	}
	fmt.Printf("%s counter correlations (Figure 7 methodology)\n", m.Name)
	show("prompt", prompt)
	show("token", token)
}
