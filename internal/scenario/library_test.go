package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLibraryFilesMatchBuiltins holds the committed scenarios/*.scn files
// and the builtin library in lockstep: every builtin has a file with its
// exact canonical source, and no stray .scn files exist. Regenerate with
// `make scenarios` (go run ./internal/scenario/gen) after editing a
// builtin.
func TestLibraryFilesMatchBuiltins(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	for _, n := range Names() {
		src, err := BuiltinSource(n)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, n+".scn"))
		if err != nil {
			t.Fatalf("builtin %q has no committed file (run make scenarios): %v", n, err)
		}
		if string(data) != src {
			t.Errorf("scenarios/%s.scn differs from the builtin source (run make scenarios)", n)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".scn") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".scn")
		if _, err := BuiltinSource(name); err != nil {
			t.Errorf("scenarios/%s has no matching builtin", e.Name())
		}
	}
}
