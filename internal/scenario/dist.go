package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// TokenDist is a token-length distribution for prompts or outputs. Unlike
// the uniform ranges hardcoded in workload.Class, scenario cohorts may use
// heavy-tailed lognormal lengths (real chat traffic) or point masses
// (fixed-template batch jobs). Every kind exposes a closed-form Mean so
// trace.FitArrivals-style service-time estimation stays exact under
// scenarios (the workload surrogate classes are built from these moments).
type TokenDist struct {
	Kind DistKind
	// A, B are kind-specific parameters:
	//   uniform(lo,hi): A=lo, B=hi (inclusive, sampled uniformly)
	//   logn(median,sigma): A=median (= exp(mu)), B=sigma of log
	//   point(n): A=n
	A, B float64
}

// DistKind enumerates token-length distribution families.
type DistKind int

const (
	DistUniform DistKind = iota
	DistLogNormal
	DistPoint
)

// Mean returns the exact expected token count.
func (d TokenDist) Mean() float64 {
	switch d.Kind {
	case DistLogNormal:
		// Lognormal parameterized by median m and log-sigma s:
		// E[X] = m * exp(s^2 / 2).
		return d.A * math.Exp(d.B*d.B/2)
	case DistPoint:
		return d.A
	default:
		return (d.A + d.B) / 2
	}
}

// Sample draws one token count (always >= 1).
func (d TokenDist) Sample(rng *rand.Rand) int {
	var x float64
	switch d.Kind {
	case DistLogNormal:
		x = d.A * math.Exp(d.B*rng.NormFloat64())
	case DistPoint:
		x = d.A
	default:
		lo, hi := int(d.A), int(d.B)
		return lo + rng.Intn(hi-lo+1)
	}
	n := int(math.Round(x))
	if n < 1 {
		n = 1
	}
	return n
}

func (d TokenDist) validate(field string) error {
	switch d.Kind {
	case DistUniform:
		if d.A < 1 || d.B < d.A || d.A != math.Trunc(d.A) || d.B != math.Trunc(d.B) {
			return fmt.Errorf("scenario: %s: bad uniform range [%v,%v]", field, d.A, d.B)
		}
	case DistLogNormal:
		if d.A < 1 || d.B <= 0 || d.B > 3 {
			return fmt.Errorf("scenario: %s: bad lognormal(median=%v,sigma=%v)", field, d.A, d.B)
		}
	case DistPoint:
		if d.A < 1 || d.A != math.Trunc(d.A) {
			return fmt.Errorf("scenario: %s: bad point mass %v", field, d.A)
		}
	default:
		return fmt.Errorf("scenario: %s: unknown distribution kind %d", field, d.Kind)
	}
	return nil
}

// String renders the canonical DSL form.
func (d TokenDist) String() string {
	switch d.Kind {
	case DistLogNormal:
		return fmt.Sprintf("logn(%s,%s)", trimFloat(d.A), trimFloat(d.B))
	case DistPoint:
		return fmt.Sprintf("point(%s)", trimFloat(d.A))
	default:
		return fmt.Sprintf("uniform(%s,%s)", trimFloat(d.A), trimFloat(d.B))
	}
}

// Arrivals selects the renewal process generating a cohort's inter-arrival
// gaps. All processes are normalized to unit mean so the piecewise rate
// plan sets the intensity; the shape parameter sets the burstiness
// (coefficient of variation) around it.
type Arrivals struct {
	Kind ArrKind
	// Shape is the gamma/weibull shape parameter k (unused for Poisson).
	// k < 1 means heavier-than-exponential tails (bursty); large k means
	// smoothed, front-door-balanced traffic (gamma(32) ~ the Erlang-32
	// smoothing the legacy trace fit uses).
	Shape float64
}

// ArrKind enumerates arrival process families.
type ArrKind int

const (
	ArrPoisson ArrKind = iota
	ArrGamma
	ArrWeibull
)

// CV returns the coefficient of variation of the inter-arrival gaps: 1 for
// Poisson, 1/sqrt(k) for gamma, and the closed-form Weibull ratio. The
// statistical tests pin generated traffic against these values.
func (a Arrivals) CV() float64 {
	switch a.Kind {
	case ArrGamma:
		return 1 / math.Sqrt(a.Shape)
	case ArrWeibull:
		g1 := math.Gamma(1 + 1/a.Shape)
		g2 := math.Gamma(1 + 2/a.Shape)
		return math.Sqrt(g2/(g1*g1) - 1)
	default:
		return 1
	}
}

// Gap returns the unit-mean inter-arrival sampler plugged into
// trace.RatePlan.Gap, or nil for Poisson (the plan's native Exp(1) path).
func (a Arrivals) Gap() func(*rand.Rand) float64 {
	switch a.Kind {
	case ArrGamma:
		k := a.Shape
		return func(rng *rand.Rand) float64 { return gammaUnitMean(k, rng) }
	case ArrWeibull:
		k := a.Shape
		scale := 1 / math.Gamma(1+1/k)
		return func(rng *rand.Rand) float64 {
			return scale * math.Pow(rng.ExpFloat64(), 1/k)
		}
	default:
		return nil
	}
}

// gammaUnitMean draws from Gamma(k, 1/k) (mean 1) via Marsaglia-Tsang,
// with the standard k < 1 boost Gamma(k) = Gamma(k+1) * U^(1/k).
func gammaUnitMean(k float64, rng *rand.Rand) float64 {
	boost := 1.0
	shape := k
	if shape < 1 {
		boost = math.Pow(rng.Float64(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * boost / k
		}
	}
}

func (a Arrivals) validate() error {
	switch a.Kind {
	case ArrPoisson:
	case ArrGamma, ArrWeibull:
		if a.Shape <= 0.05 || a.Shape > 256 {
			return fmt.Errorf("scenario: arrival shape %v outside (0.05,256]", a.Shape)
		}
	default:
		return fmt.Errorf("scenario: unknown arrival kind %d", a.Kind)
	}
	return nil
}

// String renders the canonical DSL form.
func (a Arrivals) String() string {
	switch a.Kind {
	case ArrGamma:
		return fmt.Sprintf("gamma(%s)", trimFloat(a.Shape))
	case ArrWeibull:
		return fmt.Sprintf("weibull(%s)", trimFloat(a.Shape))
	default:
		return "poisson"
	}
}

// Burst overlays heavy-load episodes on a cohort's rate: episode starts
// follow a Poisson process (mean Gap between the end of one episode and
// the start of the next), each lasts Dur, and multiplies the rate by X
// while active. Episodes are drawn on the cohort's dedicated burst stream
// so they stay identical across policy reruns.
type Burst struct {
	Gap time.Duration
	Dur time.Duration
	X   float64
}

func (b Burst) validate() error {
	switch {
	case b.Gap <= 0 || b.Dur <= 0:
		return fmt.Errorf("scenario: burst gap/dur must be positive")
	case b.X <= 1 || b.X > 100:
		return fmt.Errorf("scenario: burst multiplier %v outside (1,100]", b.X)
	}
	return nil
}

// String renders the canonical DSL form.
func (b Burst) String() string {
	return fmt.Sprintf("(gap=%s,dur=%s,x=%s)", trimDur(b.Gap), trimDur(b.Dur), trimFloat(b.X))
}

// RateShape modulates a cohort's mean rate over the run: flat, a diurnal
// sine with a regional offset, a launch-day ramp to a new plateau, or a
// one-off spike with exponential decay.
type RateShape struct {
	Kind ShapeKind
	// Diurnal: Peak is the local hour-of-day of maximum load (as a
	// duration into the day), Amp the relative amplitude, Offset a
	// regional timezone shift applied to the clock.
	Peak   time.Duration
	Amp    float64
	Offset time.Duration
	// Ramp: rate climbs linearly from 1x to X between At and At+Over and
	// stays there. Spike: rate climbs to X over Rise starting at At, then
	// decays back exponentially with time constant Fall.
	At   time.Duration
	Over time.Duration
	Rise time.Duration
	Fall time.Duration
	X    float64
}

// ShapeKind enumerates rate-shape families.
type ShapeKind int

const (
	ShapeFlat ShapeKind = iota
	ShapeDiurnal
	ShapeRamp
	ShapeSpike
)

// Factor returns the rate multiplier at time t (>= 0, mean 1 over whole
// days for flat and diurnal shapes).
func (s RateShape) Factor(t time.Duration) float64 {
	switch s.Kind {
	case ShapeDiurnal:
		// Same phase convention as trace.DiurnalModel.MeanAt: the sine
		// peaks when the (offset-shifted) local hour equals Peak.
		hours := (t + s.Offset).Seconds() / 3600
		return 1 + s.Amp*math.Sin(2*math.Pi*(hours-s.Peak.Hours()+6)/24)
	case ShapeRamp:
		switch {
		case t <= s.At:
			return 1
		case s.Over <= 0 || t >= s.At+s.Over:
			return s.X
		default:
			return 1 + (s.X-1)*float64(t-s.At)/float64(s.Over)
		}
	case ShapeSpike:
		switch {
		case t <= s.At:
			return 1
		case t < s.At+s.Rise:
			return 1 + (s.X-1)*float64(t-s.At)/float64(s.Rise)
		default:
			return 1 + (s.X-1)*math.Exp(-float64(t-s.At-s.Rise)/float64(s.Fall))
		}
	default:
		return 1
	}
}

func (s RateShape) validate() error {
	switch s.Kind {
	case ShapeFlat:
	case ShapeDiurnal:
		if s.Amp < 0 || s.Amp > 0.95 {
			return fmt.Errorf("scenario: diurnal amplitude %v outside [0,0.95]", s.Amp)
		}
		if s.Peak < 0 || s.Peak >= 24*time.Hour {
			return fmt.Errorf("scenario: diurnal peak %s outside [0,24h)", s.Peak)
		}
	case ShapeRamp:
		if s.X <= 0 || s.X > 100 {
			return fmt.Errorf("scenario: ramp multiplier %v outside (0,100]", s.X)
		}
		if s.At < 0 || s.Over < 0 {
			return fmt.Errorf("scenario: negative ramp timing")
		}
	case ShapeSpike:
		if s.X <= 1 || s.X > 100 {
			return fmt.Errorf("scenario: spike multiplier %v outside (1,100]", s.X)
		}
		if s.At < 0 || s.Rise <= 0 || s.Fall <= 0 {
			return fmt.Errorf("scenario: bad spike timing")
		}
	default:
		return fmt.Errorf("scenario: unknown shape kind %d", s.Kind)
	}
	return nil
}

// String renders the canonical DSL form.
func (s RateShape) String() string {
	switch s.Kind {
	case ShapeDiurnal:
		out := fmt.Sprintf("diurnal(peak=%s,amp=%s", trimDur(s.Peak), trimFloat(s.Amp))
		if s.Offset != 0 {
			out += ",offset=" + trimDur(s.Offset)
		}
		return out + ")"
	case ShapeRamp:
		return fmt.Sprintf("ramp(at=%s,over=%s,x=%s)", trimDur(s.At), trimDur(s.Over), trimFloat(s.X))
	case ShapeSpike:
		return fmt.Sprintf("spike(at=%s,x=%s,rise=%s,fall=%s)", trimDur(s.At), trimFloat(s.X), trimDur(s.Rise), trimDur(s.Fall))
	default:
		return "flat"
	}
}
