// Command gen regenerates the committed scenarios/*.scn files from the
// builtin library (go run ./internal/scenario/gen from the repo root; the
// make scenarios target wraps it). TestLibraryFilesMatchBuiltins keeps the
// two in lockstep.
package main

import (
	"fmt"
	"os"

	"polca/internal/scenario"
)

func main() {
	for _, n := range scenario.Names() {
		src, err := scenario.BuiltinSource(n)
		if err != nil {
			panic(err)
		}
		if err := os.WriteFile("scenarios/"+n+".scn", []byte(src), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote scenarios/" + n + ".scn")
	}
}
