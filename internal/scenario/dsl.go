package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The scenario DSL is line-oriented:
//
//	# comment
//	scenario chatbot
//	basis 16
//	cohort chat-na slo=standard rate=0.3 arrivals=gamma(0.5) \
//	    shape=diurnal(peak=14h,amp=0.5) prompt=logn(360,0.7) \
//	    output=logn(180,0.6) sessions=(turns=4,think=45s,grow=0.7) \
//	    prefix=(groups=8,tokens=64)
//
// (shown wrapped; each cohort is one physical line of key=value fields).
// Parse(String(spec)) round-trips through the canonical form: fields in
// the order slo, rate, arrivals, burst, shape, prompt, output, sessions,
// prefix, with defaults (poisson arrivals, flat shape, absent overlays)
// elided — the same convention the faults DSL uses.

// Parse parses and validates a scenario spec from its DSL text.
func Parse(src string) (Spec, error) {
	var spec Spec
	sawHeader := false
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "scenario":
			if sawHeader {
				return Spec{}, fmt.Errorf("scenario: line %d: duplicate scenario header", ln+1)
			}
			if len(fields) != 2 {
				return Spec{}, fmt.Errorf("scenario: line %d: want \"scenario <name>\"", ln+1)
			}
			spec.Name = fields[1]
			sawHeader = true
		case "basis":
			if !sawHeader {
				return Spec{}, fmt.Errorf("scenario: line %d: basis before scenario header", ln+1)
			}
			if len(fields) != 2 {
				return Spec{}, fmt.Errorf("scenario: line %d: want \"basis <servers>\"", ln+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: line %d: bad basis %q", ln+1, fields[1])
			}
			spec.Basis = n
		case "cohort":
			if !sawHeader {
				return Spec{}, fmt.Errorf("scenario: line %d: cohort before scenario header", ln+1)
			}
			c, err := parseCohort(fields[1:])
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: line %d: %v", ln+1, err)
			}
			spec.Cohorts = append(spec.Cohorts, c)
		default:
			return Spec{}, fmt.Errorf("scenario: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if !sawHeader {
		return Spec{}, fmt.Errorf("scenario: missing \"scenario <name>\" header")
	}
	if spec.Basis == 0 {
		spec.Basis = DefaultBasis
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func parseCohort(fields []string) (Cohort, error) {
	if len(fields) < 1 {
		return Cohort{}, fmt.Errorf("want \"cohort <name> key=value...\"")
	}
	c := Cohort{Name: fields[0]}
	var sawRate, sawPrompt, sawOutput bool
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Cohort{}, fmt.Errorf("cohort %s: field %q is not key=value", c.Name, f)
		}
		var err error
		switch key {
		case "slo":
			c.SLO, err = ParseSLOClass(val)
		case "rate":
			c.Rate, err = parseFloat(val)
			sawRate = true
		case "arrivals":
			c.Arrivals, err = parseArrivals(val)
		case "burst":
			var b Burst
			if b, err = parseBurst(val); err == nil {
				c.Burst = &b
			}
		case "shape":
			c.Shape, err = parseShape(val)
		case "prompt":
			c.Prompt, err = parseDist(val)
			sawPrompt = true
		case "output":
			c.Output, err = parseDist(val)
			sawOutput = true
		case "sessions":
			var s Sessions
			if s, err = parseSessions(val); err == nil {
				c.Sessions = &s
			}
		case "prefix":
			var p Prefix
			if p, err = parsePrefix(val); err == nil {
				c.Prefix = &p
			}
		default:
			return Cohort{}, fmt.Errorf("cohort %s: unknown field %q", c.Name, key)
		}
		if err != nil {
			return Cohort{}, fmt.Errorf("cohort %s: %s: %v", c.Name, key, err)
		}
	}
	if !sawRate || !sawPrompt || !sawOutput {
		return Cohort{}, fmt.Errorf("cohort %s: rate, prompt, and output are required", c.Name)
	}
	return c, nil
}

// parseCall splits "name(a,b,...)" or a bare "name" into its parts.
func parseCall(s string) (name string, args []string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, nil, nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("unbalanced parens in %q", s)
	}
	name = s[:open]
	body := s[open+1 : len(s)-1]
	if body != "" {
		args = strings.Split(body, ",")
	}
	return name, args, nil
}

// parseKVArgs parses "(k=v,k=v)" bodies, enforcing the allowed keys.
func parseKVArgs(s string, into map[string]string) error {
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return fmt.Errorf("want (key=value,...) in %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return fmt.Errorf("empty argument list")
	}
	for _, f := range strings.Split(body, ",") {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("argument %q is not key=value", f)
		}
		if _, allowed := into[key]; !allowed {
			return fmt.Errorf("unknown argument %q", key)
		}
		into[key] = val
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return f, nil
}

func parseArrivals(s string) (Arrivals, error) {
	name, args, err := parseCall(s)
	if err != nil {
		return Arrivals{}, err
	}
	switch name {
	case "poisson":
		if len(args) != 0 {
			return Arrivals{}, fmt.Errorf("poisson takes no arguments")
		}
		return Arrivals{Kind: ArrPoisson}, nil
	case "gamma", "weibull":
		if len(args) != 1 {
			return Arrivals{}, fmt.Errorf("%s wants one shape argument", name)
		}
		k, err := parseFloat(args[0])
		if err != nil {
			return Arrivals{}, err
		}
		kind := ArrGamma
		if name == "weibull" {
			kind = ArrWeibull
		}
		return Arrivals{Kind: kind, Shape: k}, nil
	default:
		return Arrivals{}, fmt.Errorf("unknown arrival process %q", name)
	}
}

func parseDist(s string) (TokenDist, error) {
	name, args, err := parseCall(s)
	if err != nil {
		return TokenDist{}, err
	}
	want := map[string]struct {
		kind DistKind
		n    int
	}{
		"uniform": {DistUniform, 2},
		"logn":    {DistLogNormal, 2},
		"point":   {DistPoint, 1},
	}
	w, ok := want[name]
	if !ok {
		return TokenDist{}, fmt.Errorf("unknown distribution %q", name)
	}
	if len(args) != w.n {
		return TokenDist{}, fmt.Errorf("%s wants %d arguments", name, w.n)
	}
	d := TokenDist{Kind: w.kind}
	if d.A, err = parseFloat(args[0]); err != nil {
		return TokenDist{}, err
	}
	if w.n == 2 {
		if d.B, err = parseFloat(args[1]); err != nil {
			return TokenDist{}, err
		}
	}
	return d, nil
}

func parseShape(s string) (RateShape, error) {
	name, _, err := parseCall(s)
	if err != nil {
		return RateShape{}, err
	}
	switch name {
	case "flat":
		if s != "flat" {
			return RateShape{}, fmt.Errorf("flat takes no arguments")
		}
		return RateShape{Kind: ShapeFlat}, nil
	case "diurnal":
		kv := map[string]string{"peak": "", "amp": "", "offset": ""}
		if err := parseKVArgs(s[len(name):], kv); err != nil {
			return RateShape{}, err
		}
		sh := RateShape{Kind: ShapeDiurnal}
		if sh.Peak, err = reqDur(kv, "peak"); err != nil {
			return RateShape{}, err
		}
		if sh.Amp, err = reqFloat(kv, "amp"); err != nil {
			return RateShape{}, err
		}
		if kv["offset"] != "" {
			if sh.Offset, err = time.ParseDuration(kv["offset"]); err != nil {
				return RateShape{}, fmt.Errorf("bad offset %q", kv["offset"])
			}
		}
		return sh, nil
	case "ramp":
		kv := map[string]string{"at": "", "over": "", "x": ""}
		if err := parseKVArgs(s[len(name):], kv); err != nil {
			return RateShape{}, err
		}
		sh := RateShape{Kind: ShapeRamp}
		if sh.At, err = reqDur(kv, "at"); err != nil {
			return RateShape{}, err
		}
		if sh.Over, err = reqDur(kv, "over"); err != nil {
			return RateShape{}, err
		}
		if sh.X, err = reqFloat(kv, "x"); err != nil {
			return RateShape{}, err
		}
		return sh, nil
	case "spike":
		kv := map[string]string{"at": "", "x": "", "rise": "", "fall": ""}
		if err := parseKVArgs(s[len(name):], kv); err != nil {
			return RateShape{}, err
		}
		sh := RateShape{Kind: ShapeSpike}
		if sh.At, err = reqDur(kv, "at"); err != nil {
			return RateShape{}, err
		}
		if sh.X, err = reqFloat(kv, "x"); err != nil {
			return RateShape{}, err
		}
		if sh.Rise, err = reqDur(kv, "rise"); err != nil {
			return RateShape{}, err
		}
		if sh.Fall, err = reqDur(kv, "fall"); err != nil {
			return RateShape{}, err
		}
		return sh, nil
	default:
		return RateShape{}, fmt.Errorf("unknown rate shape %q", name)
	}
}

func parseBurst(s string) (Burst, error) {
	kv := map[string]string{"gap": "", "dur": "", "x": ""}
	if err := parseKVArgs(s, kv); err != nil {
		return Burst{}, err
	}
	var b Burst
	var err error
	if b.Gap, err = reqDur(kv, "gap"); err != nil {
		return Burst{}, err
	}
	if b.Dur, err = reqDur(kv, "dur"); err != nil {
		return Burst{}, err
	}
	if b.X, err = reqFloat(kv, "x"); err != nil {
		return Burst{}, err
	}
	return b, nil
}

func parseSessions(s string) (Sessions, error) {
	kv := map[string]string{"turns": "", "think": "", "grow": ""}
	if err := parseKVArgs(s, kv); err != nil {
		return Sessions{}, err
	}
	var out Sessions
	var err error
	if out.Turns, err = reqFloat(kv, "turns"); err != nil {
		return Sessions{}, err
	}
	if out.Think, err = reqDur(kv, "think"); err != nil {
		return Sessions{}, err
	}
	if out.Grow, err = reqFloat(kv, "grow"); err != nil {
		return Sessions{}, err
	}
	return out, nil
}

func parsePrefix(s string) (Prefix, error) {
	kv := map[string]string{"groups": "", "tokens": ""}
	if err := parseKVArgs(s, kv); err != nil {
		return Prefix{}, err
	}
	var p Prefix
	for _, key := range []string{"groups", "tokens"} {
		if kv[key] == "" {
			return Prefix{}, fmt.Errorf("missing %s", key)
		}
		n, err := strconv.Atoi(kv[key])
		if err != nil {
			return Prefix{}, fmt.Errorf("bad %s %q", key, kv[key])
		}
		if key == "groups" {
			p.Groups = n
		} else {
			p.Tokens = n
		}
	}
	return p, nil
}

func reqFloat(kv map[string]string, key string) (float64, error) {
	if kv[key] == "" {
		return 0, fmt.Errorf("missing %s", key)
	}
	return parseFloat(kv[key])
}

func reqDur(kv map[string]string, key string) (time.Duration, error) {
	if kv[key] == "" {
		return 0, fmt.Errorf("missing %s", key)
	}
	d, err := time.ParseDuration(kv[key])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, kv[key])
	}
	return d, nil
}

// String renders the spec in canonical DSL form: Parse(spec.String())
// reproduces the spec exactly, and the committed scenarios/*.scn files are
// kept byte-identical to their builtins' canonical form by make scenarios.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	fmt.Fprintf(&b, "basis %d\n", s.Basis)
	for _, c := range s.Cohorts {
		fmt.Fprintf(&b, "cohort %s slo=%s rate=%s", c.Name, c.SLO, trimFloat(c.Rate))
		if c.Arrivals.Kind != ArrPoisson {
			fmt.Fprintf(&b, " arrivals=%s", c.Arrivals)
		}
		if c.Burst != nil {
			fmt.Fprintf(&b, " burst=%s", c.Burst)
		}
		if c.Shape.Kind != ShapeFlat {
			fmt.Fprintf(&b, " shape=%s", c.Shape)
		}
		fmt.Fprintf(&b, " prompt=%s output=%s", c.Prompt, c.Output)
		if c.Sessions != nil {
			fmt.Fprintf(&b, " sessions=%s", c.Sessions)
		}
		if c.Prefix != nil {
			fmt.Fprintf(&b, " prefix=%s", c.Prefix)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trimFloat renders a float compactly ("0.5", "8", "1e-05").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// trimDur renders a duration compactly: "2h" rather than "2h0m0s".
func trimDur(d time.Duration) string {
	s := d.String()
	if strings.HasSuffix(s, "m0s") {
		s = s[:len(s)-2]
	}
	if strings.HasSuffix(s, "h0m") {
		s = s[:len(s)-2]
	}
	return s
}
