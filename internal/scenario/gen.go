package scenario

import (
	"math/rand"
	"time"

	"polca/internal/trace"
	"polca/internal/workload"
)

// genBucket is the piecewise-constant granularity the generator compiles
// rate shapes and burst overlays to — fine enough that a 5-minute burst
// episode or a 10-minute spike rise lands on several buckets.
const genBucket = time.Minute

// maxSessionTurns bounds the geometric turn draw so one session cannot
// outlive the run.
const maxSessionTurns = 64

// Generator produces a scenario's requests online, in globally sorted
// arrival order, drawing every cohort from its own named RNG streams. The
// steady-state path allocates nothing (the pending-turn heap reuses its
// backing array), so it can sit inside the simulator's hot loop.
type Generator struct {
	horizon time.Duration
	cohorts []cohortGen
	turns   turnHeap
	nextID  int64
	nextSID int64
}

// cohortGen is one cohort's generation state: its compiled rate plan, its
// three dedicated streams, and the next fresh-session arrival.
type cohortGen struct {
	cohort Cohort
	pri    workload.Priority
	plan   trace.RatePlan
	arrRNG *rand.Rand // inter-arrival gaps
	tokRNG *rand.Rand // prompt/output lengths
	sesRNG *rand.Rand // turn counts, think times, prefix groups
	next   time.Duration
	ok     bool
}

// turnEvent is a pending follow-up turn of an open session.
type turnEvent struct {
	at        time.Duration
	session   int64
	ctx       int32 // accumulated fresh+output tokens of prior turns
	cohort    int32
	turnsLeft int32
	turn      int32
	group     int32
}

// NewGenerator compiles the spec for the horizon and primes every cohort.
// scale multiplies all rates (callers pass servers/Basis so the scenario
// keeps its per-server intensity on any row, times any explicit -scale).
// randFor hands out named streams — sim.Engine.Rand in production, so
// generation shares the engine's determinism contract.
func NewGenerator(spec Spec, horizon time.Duration, scale float64, randFor func(string) *rand.Rand) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{horizon: horizon}
	g.cohorts = make([]cohortGen, len(spec.Cohorts))
	for i, co := range spec.Cohorts {
		c := &g.cohorts[i]
		c.cohort = co
		c.pri = co.SLO.Priority()
		c.arrRNG = randFor("scenario/" + co.Name + "/arrivals")
		c.tokRNG = randFor("scenario/" + co.Name + "/tokens")
		c.sesRNG = randFor("scenario/" + co.Name + "/sessions")
		c.plan = compilePlan(co, horizon, scale, randFor("scenario/"+co.Name+"/bursts"))
		c.next, c.ok = c.plan.NextAfter(0, c.arrRNG)
		if c.next >= horizon {
			c.ok = false
		}
	}
	return g, nil
}

// compilePlan flattens a cohort's mean rate, rate shape, and burst overlay
// into a piecewise-constant trace.RatePlan with the cohort's renewal
// process plugged in as the gap sampler.
func compilePlan(co Cohort, horizon time.Duration, scale float64, burstRNG *rand.Rand) trace.RatePlan {
	n := int((horizon + genBucket - 1) / genBucket)
	plan := trace.RatePlan{Bucket: genBucket, Rates: make([]float64, n), Gap: co.Arrivals.Gap()}
	for i := range plan.Rates {
		mid := time.Duration(i)*genBucket + genBucket/2
		plan.Rates[i] = scale * co.Rate * co.Shape.Factor(mid)
	}
	if b := co.Burst; b != nil {
		// Walk the episode process once; each bucket gets the multiplier
		// weighted by how much of the bucket an episode covers.
		for t := time.Duration(0); t < horizon; {
			start := t + time.Duration(burstRNG.ExpFloat64()*float64(b.Gap))
			end := start + b.Dur
			for i := int(start / genBucket); i <= int(end/genBucket) && i < n; i++ {
				bLo, bHi := time.Duration(i)*genBucket, time.Duration(i+1)*genBucket
				lo, hi := maxDur(bLo, start), minDur(bHi, end)
				if hi > lo {
					frac := float64(hi-lo) / float64(genBucket)
					plan.Rates[i] *= 1 + (b.X-1)*frac
				}
			}
			t = end
		}
	}
	return plan
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// Next returns the next request in global arrival order, or ok == false
// once every cohort's plan is exhausted and no session turns are pending.
// Ties (identical arrival instants) resolve pending turns first, then the
// lowest cohort index, so the merge order is deterministic.
func (g *Generator) Next() (workload.Request, bool) {
	bestC := -1
	var bestT time.Duration
	for i := range g.cohorts {
		c := &g.cohorts[i]
		if c.ok && (bestC < 0 || c.next < bestT) {
			bestC, bestT = i, c.next
		}
	}
	if g.turns.len() > 0 {
		if ev := g.turns.peek(); bestC < 0 || ev.at <= bestT {
			g.turns.pop()
			return g.emitTurn(ev), true
		}
	}
	if bestC < 0 {
		return workload.Request{}, false
	}
	c := &g.cohorts[bestC]
	req := g.emitFresh(bestC, bestT)
	c.next, c.ok = c.plan.NextAfter(bestT, c.arrRNG)
	if c.next >= g.horizon {
		c.ok = false
	}
	return req, true
}

// emitFresh opens a new session: draws its prefix group and turn count on
// the session stream, its first prompt/output on the token stream, and
// schedules the follow-up turn when the session has one.
func (g *Generator) emitFresh(idx int, at time.Duration) workload.Request {
	c := &g.cohorts[idx]
	co := &c.cohort
	g.nextSID++
	var group int32
	if co.Prefix != nil {
		group = int32(c.sesRNG.Intn(co.Prefix.Groups) + 1)
	}
	turns := 1
	if s := co.Sessions; s != nil {
		p := 1 / s.Turns
		for turns < maxSessionTurns && c.sesRNG.Float64() >= p {
			turns++
		}
	}
	fresh := co.Prompt.Sample(c.tokRNG)
	out := co.Output.Sample(c.tokRNG)
	g.nextID++
	req := workload.Request{
		ID: g.nextID, Class: co.Name, Priority: c.pri, Arrival: at,
		Input: clampPrompt(fresh, 0, co.Prefix), Output: out,
		Session: g.nextSID, Turn: 1, PrefixGroup: group,
	}
	if turns > 1 {
		g.scheduleTurn(int32(idx), turnEvent{
			session: g.nextSID, ctx: int32(fresh + out),
			turnsLeft: int32(turns - 1), turn: 2, group: group,
		}, at)
	}
	return req
}

// emitTurn emits a follow-up turn: a fresh prompt plus the grow fraction
// of the session's accumulated context, re-sent the way a chat client
// replays its history.
func (g *Generator) emitTurn(ev turnEvent) workload.Request {
	c := &g.cohorts[ev.cohort]
	co := &c.cohort
	fresh := co.Prompt.Sample(c.tokRNG)
	out := co.Output.Sample(c.tokRNG)
	carried := int(co.Sessions.Grow * float64(ev.ctx))
	g.nextID++
	req := workload.Request{
		ID: g.nextID, Class: co.Name, Priority: c.pri, Arrival: ev.at,
		Input: clampPrompt(fresh, carried, co.Prefix), Output: out,
		Session: ev.session, Turn: int(ev.turn), PrefixGroup: ev.group,
	}
	if ev.turnsLeft > 1 {
		g.scheduleTurn(ev.cohort, turnEvent{
			session: ev.session, ctx: ev.ctx + int32(fresh+out),
			turnsLeft: ev.turnsLeft - 1, turn: ev.turn + 1, group: ev.group,
		}, ev.at)
	}
	return req
}

// scheduleTurn queues the session's next turn after an exponential think
// gap; turns that would land past the horizon are dropped, so every
// emitted arrival stays inside it.
func (g *Generator) scheduleTurn(cohort int32, ev turnEvent, from time.Duration) {
	c := &g.cohorts[cohort]
	ev.cohort = cohort
	ev.at = from + time.Duration(c.sesRNG.ExpFloat64()*float64(c.cohort.Sessions.Think))
	if ev.at < g.horizon {
		g.turns.push(ev)
	}
}

// clampPrompt assembles prefix + fresh + carried context under MaxContext.
func clampPrompt(fresh, carried int, p *Prefix) int {
	n := fresh + carried
	if p != nil {
		n += p.Tokens
	}
	if n > MaxContext {
		return MaxContext
	}
	return n
}

// Generate runs the generator to exhaustion and returns the full sorted
// request list — the form Row.RunRequests consumes.
func Generate(spec Spec, horizon time.Duration, scale float64, randFor func(string) *rand.Rand) ([]workload.Request, error) {
	g, err := NewGenerator(spec, horizon, scale, randFor)
	if err != nil {
		return nil, err
	}
	var out []workload.Request
	for {
		req, ok := g.Next()
		if !ok {
			return out, nil
		}
		out = append(out, req)
	}
}

// turnHeap is a by-value min-heap of pending turns ordered by (at,
// cohort, session); the backing array is reused across push/pop so the
// steady-state generation path allocates nothing.
type turnHeap struct {
	evs []turnEvent
}

func (h *turnHeap) len() int        { return len(h.evs) }
func (h *turnHeap) peek() turnEvent { return h.evs[0] }

func (h *turnHeap) less(a, b turnEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.cohort != b.cohort {
		return a.cohort < b.cohort
	}
	return a.session < b.session
}

func (h *turnHeap) push(ev turnEvent) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.evs[i], h.evs[parent]) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

func (h *turnHeap) pop() turnEvent {
	top := h.evs[0]
	last := len(h.evs) - 1
	h.evs[0] = h.evs[last]
	h.evs = h.evs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(h.evs[l], h.evs[small]) {
			small = l
		}
		if r < last && h.less(h.evs[r], h.evs[small]) {
			small = r
		}
		if small == i {
			return top
		}
		h.evs[i], h.evs[small] = h.evs[small], h.evs[i]
		i = small
	}
}
