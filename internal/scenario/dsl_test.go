package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"polca/internal/workload"
)

// TestBuiltinsAreCanonical pins every builtin's source to its own
// canonical form: Parse then String must reproduce the text byte for
// byte. The committed scenarios/*.scn files carry the same bytes (see
// TestLibraryFilesMatchBuiltins), so this is what keeps name and file
// forms interchangeable.
func TestBuiltinsAreCanonical(t *testing.T) {
	for _, name := range Names() {
		src, err := BuiltinSource(name)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("%s: spec declares name %q", name, spec.Name)
		}
		if got := spec.String(); got != src {
			t.Errorf("%s: canonical form drifted from source:\n--- source\n%s--- canonical\n%s", name, src, got)
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Errorf("%s: round trip changed the spec", name)
		}
	}
}

// TestParseCanonicalizesFieldOrder checks that a cohort written with
// scrambled fields renders in the canonical order.
func TestParseCanonicalizesFieldOrder(t *testing.T) {
	src := `scenario x
cohort a output=point(100) sessions=(turns=3,think=10s,grow=0.5) rate=0.1 prompt=logn(300,0.5) slo=sheddable arrivals=weibull(0.7)
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := `scenario x
basis 16
cohort a slo=sheddable rate=0.1 arrivals=weibull(0.7) prompt=logn(300,0.5) output=point(100) sessions=(turns=3,think=10s,grow=0.5)
`
	if got := spec.String(); got != want {
		t.Errorf("canonical form:\n%s\nwant:\n%s", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no header", "cohort a rate=1 prompt=point(10) output=point(10)\n", "before scenario header"},
		{"missing header", "# nothing\n", "missing"},
		{"dup header", "scenario a\nscenario b\n", "duplicate"},
		{"no cohorts", "scenario a\n", "no cohorts"},
		{"dup cohort", "scenario a\ncohort c rate=1 prompt=point(10) output=point(10)\ncohort c rate=1 prompt=point(10) output=point(10)\n", "duplicate cohort"},
		{"bad slo", "scenario a\ncohort c slo=gold rate=1 prompt=point(10) output=point(10)\n", "unknown slo"},
		{"missing rate", "scenario a\ncohort c prompt=point(10) output=point(10)\n", "required"},
		{"unknown field", "scenario a\ncohort c rate=1 prompt=point(10) output=point(10) color=red\n", "unknown field"},
		{"bad dist", "scenario a\ncohort c rate=1 prompt=zipf(10) output=point(10)\n", "unknown distribution"},
		{"bad uniform", "scenario a\ncohort c rate=1 prompt=uniform(100,50) output=point(10)\n", "bad uniform"},
		{"bad shape", "scenario a\ncohort c rate=1 prompt=point(10) output=point(10) shape=square(x=2)\n", "unknown rate shape"},
		{"bad basis", "scenario a\nbasis zero\ncohort c rate=1 prompt=point(10) output=point(10)\n", "bad basis"},
		{"context blowout", "scenario a\ncohort c rate=1 prompt=point(4000) output=point(2000) sessions=(turns=8,think=10s,grow=1)\n", "context cap"},
		{"bad burst", "scenario a\ncohort c rate=1 prompt=point(10) output=point(10) burst=(gap=1h,dur=5m,x=0.5)\n", "burst multiplier"},
		{"unknown directive", "scenario a\nfleet 3\n", "unknown directive"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestSLOClassMapping(t *testing.T) {
	cases := []struct {
		c    SLOClass
		pri  workload.Priority
		rank int
	}{
		{Critical, workload.High, 2},
		{Standard, workload.High, 1},
		{Sheddable, workload.Low, 0},
		{Batch, workload.Low, 0},
	}
	for _, c := range cases {
		if c.c.Priority() != c.pri || c.c.ShedRank() != c.rank {
			t.Errorf("%s: got (%v, %d), want (%v, %d)", c.c, c.c.Priority(), c.c.ShedRank(), c.pri, c.rank)
		}
		back, err := ParseSLOClass(c.c.String())
		if err != nil || back != c.c {
			t.Errorf("%s: name round trip failed (%v, %v)", c.c, back, err)
		}
	}
}

func TestTrimDur(t *testing.T) {
	for _, d := range []time.Duration{0, time.Second, 45 * time.Second, time.Minute,
		90 * time.Minute, 2 * time.Hour, 14 * time.Hour, -6 * time.Hour, 2*time.Hour + 30*time.Minute} {
		s := trimDur(d)
		back, err := time.ParseDuration(s)
		if err != nil || back != d {
			t.Errorf("trimDur(%v) = %q, reparses to (%v, %v)", d, s, back, err)
		}
	}
}

// TestLoadResolvesBuiltinsAndFiles exercises the -scenario argument
// resolution both ways.
func TestLoadResolvesBuiltinsAndFiles(t *testing.T) {
	if _, err := Load("chatbot"); err != nil {
		t.Fatalf("builtin: %v", err)
	}
	if _, err := Load("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "builtins:") {
		t.Fatalf("unknown name: %v", err)
	}
	dir := t.TempDir()
	path := dir + "/mine.scn"
	src := "scenario mine\ncohort only rate=0.5 prompt=point(100) output=point(50)\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "mine" || spec.Basis != DefaultBasis {
		t.Errorf("loaded %q basis %d", spec.Name, spec.Basis)
	}
}

// TestTable6MatchesLegacyMix pins the table6 builtin's compiled classes
// to the hardcoded workload.Table6 moments: same mean tokens, same
// priority split, so the legacy path really is a special case.
func TestTable6MatchesLegacyMix(t *testing.T) {
	spec, err := Builtin("table6")
	if err != nil {
		t.Fatal(err)
	}
	classes := spec.Classes()
	if err := workload.Validate(classes); err != nil {
		t.Fatal(err)
	}
	wantP, wantO := workload.MeanTokens(workload.Table6())
	gotP, gotO := workload.MeanTokens(classes)
	if !within(gotP, wantP, 1e-9) || !within(gotO, wantO, 1e-9) {
		t.Errorf("mean tokens (%v, %v), legacy (%v, %v)", gotP, gotO, wantP, wantO)
	}
	var low float64
	for _, c := range classes {
		low += c.Share * c.LowShare
	}
	if !within(low, 0.5, 1e-9) {
		t.Errorf("low-priority traffic share %v, legacy 0.5", low)
	}
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
