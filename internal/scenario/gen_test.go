package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"

	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/workload"
)

// flatSpec builds a one-cohort spec for the arrival-process tests.
func flatSpec(arr Arrivals, burst *Burst, rate float64) Spec {
	return Spec{
		Name: "t", Basis: 16,
		Cohorts: []Cohort{{
			Name: "c", SLO: Standard, Rate: rate, Arrivals: arr, Burst: burst,
			Prompt: TokenDist{Kind: DistPoint, A: 100},
			Output: TokenDist{Kind: DistPoint, A: 50},
		}},
	}
}

func generate(t *testing.T, spec Spec, horizon time.Duration, seed int64) []workload.Request {
	t.Helper()
	reqs, err := Generate(spec, horizon, 1, sim.New(seed).Rand)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestGenerateDeterministic reruns the same spec on fresh engines and on
// an engine whose streams were pre-touched in a different order; both
// must reproduce the run request for request (the named-stream contract).
func TestGenerateDeterministic(t *testing.T) {
	spec, err := Builtin("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	a := generate(t, spec, 6*time.Hour, 7)
	b := generate(t, spec, 6*time.Hour, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rerun diverged")
	}
	eng := sim.New(7)
	eng.Rand("workload") // unrelated streams must not perturb generation
	eng.Rand("dispatch")
	c, err := Generate(spec, 6*time.Hour, 1, eng.Rand)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("pre-touching unrelated streams perturbed generation")
	}
	if len(a) == 0 {
		t.Fatal("no requests generated")
	}
}

// TestGenerateSortedWithinHorizon pins the invariants RunRequests needs:
// nondecreasing arrivals, all inside the horizon, sequential ids from 1 —
// the same contract internal/trace pins for RatePlan.Arrivals.
func TestGenerateSortedWithinHorizon(t *testing.T) {
	for _, name := range Names() {
		spec, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 12 * time.Hour
		reqs := generate(t, spec, horizon, 3)
		if len(reqs) == 0 {
			t.Fatalf("%s: no requests", name)
		}
		for i, r := range reqs {
			if r.ID != int64(i+1) {
				t.Fatalf("%s: request %d has id %d", name, i, r.ID)
			}
			if r.Arrival < 0 || r.Arrival >= horizon {
				t.Fatalf("%s: arrival %v outside [0,%v)", name, r.Arrival, horizon)
			}
			if i > 0 && r.Arrival < reqs[i-1].Arrival {
				t.Fatalf("%s: arrivals not sorted at %d", name, i)
			}
			if r.Input < 1 || r.Input > MaxContext || r.Output < 1 {
				t.Fatalf("%s: bad token counts %+v", name, r)
			}
		}
	}
}

// TestArrivalCV pins the coefficient of variation of generated
// inter-arrival gaps to each process's closed form: Poisson at 1,
// gamma/weibull above or below per their shape. Flat rate, so bucket
// restarts are the only distortion (a few percent).
func TestArrivalCV(t *testing.T) {
	cases := []Arrivals{
		{Kind: ArrPoisson},
		{Kind: ArrGamma, Shape: 0.5},
		{Kind: ArrGamma, Shape: 32},
		{Kind: ArrWeibull, Shape: 0.6},
		{Kind: ArrWeibull, Shape: 2},
	}
	for _, arr := range cases {
		reqs := generate(t, flatSpec(arr, nil, 5), 8*time.Hour, 11)
		if len(reqs) < 10000 {
			t.Fatalf("%s: only %d arrivals", arr, len(reqs))
		}
		gaps := make([]float64, 0, len(reqs)-1)
		for i := 1; i < len(reqs); i++ {
			gaps = append(gaps, (reqs[i].Arrival - reqs[i-1].Arrival).Seconds())
		}
		mean := stats.Mean(gaps)
		cv := stats.StdDev(gaps) / mean
		want := arr.CV()
		if math.Abs(cv-want) > 0.12*want+0.02 {
			t.Errorf("%s: gap CV %.3f, want %.3f", arr, cv, want)
		}
		// The rate plan holds mean intensity regardless of process.
		if wantMean := 1.0 / 5; math.Abs(mean-wantMean) > 0.1*wantMean {
			t.Errorf("%s: mean gap %.4fs, want %.4fs", arr, mean, wantMean)
		}
	}
}

// TestBurstOverlay checks burst episodes raise windowed rates well above
// the base (burstiness the CV of a smooth process cannot produce) and
// that the episode schedule is deterministic.
func TestBurstOverlay(t *testing.T) {
	b := &Burst{Gap: 2 * time.Hour, Dur: 10 * time.Minute, X: 8}
	spec := flatSpec(Arrivals{Kind: ArrGamma, Shape: 32}, b, 1)
	horizon := 24 * time.Hour
	reqs := generate(t, spec, horizon, 5)
	window := 5 * time.Minute
	counts := make([]float64, int(horizon/window))
	for _, r := range reqs {
		counts[int(r.Arrival/window)]++
	}
	peak, mean := stats.Max(counts), stats.Mean(counts)
	if peak < 3*mean {
		t.Errorf("burst overlay too weak: peak window %v, mean %v", peak, mean)
	}
	// Without the overlay the same smooth process stays near its mean.
	flat := generate(t, flatSpec(Arrivals{Kind: ArrGamma, Shape: 32}, nil, 1), horizon, 5)
	fcounts := make([]float64, int(horizon/window))
	for _, r := range flat {
		fcounts[int(r.Arrival/window)]++
	}
	if fp, fm := stats.Max(fcounts), stats.Mean(fcounts); fp > 1.6*fm {
		t.Errorf("smooth baseline unexpectedly bursty: peak %v, mean %v", fp, fm)
	}
}

// TestSessionsAndPrefix checks the multi-turn structure: turn numbering,
// one prefix group per session, growing carried context, and think-time
// spacing between a session's turns.
func TestSessionsAndPrefix(t *testing.T) {
	spec := Spec{
		Name: "s", Basis: 16,
		Cohorts: []Cohort{{
			Name: "agent", SLO: Critical, Rate: 0.05,
			Prompt:   TokenDist{Kind: DistPoint, A: 200},
			Output:   TokenDist{Kind: DistPoint, A: 300},
			Sessions: &Sessions{Turns: 5, Think: 20 * time.Second, Grow: 0.8},
			Prefix:   &Prefix{Groups: 4, Tokens: 128},
		}},
	}
	reqs := generate(t, spec, 24*time.Hour, 9)
	bySession := map[int64][]workload.Request{}
	for _, r := range reqs {
		if r.Session == 0 {
			t.Fatal("session id missing")
		}
		if r.PrefixGroup < 1 || r.PrefixGroup > 4 {
			t.Fatalf("prefix group %d outside [1,4]", r.PrefixGroup)
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	var turnsTotal, multi int
	for sid, turns := range bySession {
		for i, r := range turns {
			if r.Turn != i+1 {
				t.Fatalf("session %d: turn %d out of order", sid, r.Turn)
			}
			if r.PrefixGroup != turns[0].PrefixGroup {
				t.Fatalf("session %d: prefix group changed mid-session", sid)
			}
			if i > 0 {
				if r.Arrival <= turns[i-1].Arrival {
					t.Fatalf("session %d: turns not spaced", sid)
				}
				// Carried context: 0.8 * i * (200+300) on top of 128+200.
				want := 128 + 200 + int(0.8*float64(i)*500)
				if r.Input != want && r.Input != MaxContext {
					t.Fatalf("session %d turn %d: prompt %d, want %d", sid, r.Turn, r.Input, want)
				}
			}
		}
		turnsTotal += len(turns)
		if len(turns) > 1 {
			multi++
		}
	}
	meanTurns := float64(turnsTotal) / float64(len(bySession))
	if meanTurns < 4 || meanTurns > 6 {
		t.Errorf("mean turns %.2f, want ~5", meanTurns)
	}
	if multi == 0 {
		t.Error("no multi-turn sessions")
	}
}

// TestMomentsMatchEmpirical is the satellite-2 regression: the analytic
// MeanPromptTokens/MeanOutputTokens moments that Classes() bakes into the
// capacity-planning surrogates must match what the generator actually
// produces, lognormal tails, sessions, and prefixes included.
func TestMomentsMatchEmpirical(t *testing.T) {
	spec := Spec{
		Name: "m", Basis: 16,
		Cohorts: []Cohort{{
			Name: "chat", SLO: Standard, Rate: 0.2,
			Arrivals: Arrivals{Kind: ArrGamma, Shape: 0.5},
			Prompt:   TokenDist{Kind: DistLogNormal, A: 360, B: 0.7},
			Output:   TokenDist{Kind: DistLogNormal, A: 180, B: 0.6},
			Sessions: &Sessions{Turns: 4, Think: 30 * time.Second, Grow: 0.7},
			Prefix:   &Prefix{Groups: 8, Tokens: 64},
		}},
	}
	reqs := generate(t, spec, 7*24*time.Hour, 13)
	if len(reqs) < 50000 {
		t.Fatalf("only %d requests", len(reqs))
	}
	var p, o float64
	for _, r := range reqs {
		p += float64(r.Input)
		o += float64(r.Output)
	}
	p /= float64(len(reqs))
	o /= float64(len(reqs))
	wantP, wantO := spec.MeanTokens()
	if math.Abs(p-wantP) > 0.05*wantP {
		t.Errorf("empirical mean prompt %.0f, analytic %.0f", p, wantP)
	}
	if math.Abs(o-wantO) > 0.05*wantO {
		t.Errorf("empirical mean output %.0f, analytic %.0f", o, wantO)
	}
	// And the compiled surrogate classes carry exactly these moments
	// (within integer rounding of the point-mass ranges).
	gotP, gotO := workload.MeanTokens(spec.Classes())
	if math.Abs(gotP-wantP) > 0.5 || math.Abs(gotO-wantO) > 0.5 {
		t.Errorf("surrogate classes (%v, %v), analytic (%v, %v)", gotP, gotO, wantP, wantO)
	}
}

// TestClassesValidAndRanked checks every builtin compiles to a class
// table the cluster config accepts, with shed ranks from the SLO ladder.
func TestClassesValidAndRanked(t *testing.T) {
	for _, name := range Names() {
		spec, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		classes := spec.Classes()
		if err := workload.Validate(classes); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ranks := spec.ShedRanks()
		for _, c := range spec.Cohorts {
			if ranks[c.Name] != c.SLO.ShedRank() {
				t.Fatalf("%s: rank mismatch for %s", name, c.Name)
			}
		}
	}
}

// TestRampAndSpikeShapes pins the launch-day machinery: a ramp multiplies
// the post-launch rate, a spike decays back.
func TestRampAndSpikeShapes(t *testing.T) {
	ramp := RateShape{Kind: ShapeRamp, At: 6 * time.Hour, Over: 2 * time.Hour, X: 5}
	if f := ramp.Factor(3 * time.Hour); f != 1 {
		t.Errorf("pre-ramp factor %v", f)
	}
	if f := ramp.Factor(7 * time.Hour); math.Abs(f-3) > 1e-9 {
		t.Errorf("mid-ramp factor %v, want 3", f)
	}
	if f := ramp.Factor(20 * time.Hour); f != 5 {
		t.Errorf("post-ramp factor %v, want 5", f)
	}
	spike := RateShape{Kind: ShapeSpike, At: 8 * time.Hour, X: 8, Rise: 10 * time.Minute, Fall: time.Hour}
	if f := spike.Factor(8*time.Hour + 10*time.Minute); math.Abs(f-8) > 1e-9 {
		t.Errorf("spike peak %v, want 8", f)
	}
	if f := spike.Factor(16 * time.Hour); f > 1.01 {
		t.Errorf("spike did not decay: %v", f)
	}
	spec := flatSpec(Arrivals{Kind: ArrGamma, Shape: 32}, nil, 0.5)
	spec.Cohorts[0].Shape = ramp
	reqs := generate(t, spec, 24*time.Hour, 21)
	var pre, post int
	for _, r := range reqs {
		switch {
		case r.Arrival < 6*time.Hour:
			pre++
		case r.Arrival >= 8*time.Hour:
			post++
		}
	}
	preRate := float64(pre) / (6 * 3600)
	postRate := float64(post) / (16 * 3600)
	if postRate < 4*preRate || postRate > 6*preRate {
		t.Errorf("ramp rates: pre %.4f/s post %.4f/s, want 5x", preRate, postRate)
	}
}
