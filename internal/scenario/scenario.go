// Package scenario is the declarative workload layer between traffic
// generation and the serving engine: a compact text DSL (mirroring the
// faults DSL's Parse/String canonical round-trip) that composes per-client
// cohorts — each with its own arrival process, rate shape, SLO class,
// token-length distributions, shared-prefix group, and multi-turn session
// structure — into one named, reproducible scenario.
//
// The paper evaluates POLCA against a single Table 6 mix under one diurnal
// curve; scenarios generalize that to the named, diverse traffic that
// site-scale planning and counterfactual policy search need. The legacy
// mix is re-expressed as the builtin "table6" scenario, so the hardcoded
// path is a special case of this subsystem.
//
// Determinism: every cohort samples from dedicated named RNG streams
// (scenario/<cohort>/arrivals, /tokens, /sessions, /bursts) drawn from the
// engine's stream factory, so generated traffic is event-for-event
// identical across reruns and across policy arms of the same sweep, and
// adding a cohort never perturbs the draws of another.
package scenario

import (
	"fmt"
	"math"
	"strings"
	"time"

	"polca/internal/workload"
)

// MaxContext caps a generated prompt's length (the Table 6 maximum; also
// what fits the serve-mode KV budget for BLOOM-176B). Multi-turn sessions
// whose accumulated context would exceed it are truncated to the cap, the
// way production stacks window old turns out.
const MaxContext = 8192

// DefaultBasis is the nominal row size rates are calibrated for when a
// spec does not say otherwise.
const DefaultBasis = 16

// SLOClass is a cohort's service-level class. It maps onto the two
// simulator substrates: the paper's two-pool Priority (critical/standard
// run high priority, sheddable/batch run low) and the serve-mode
// class-shed rank (batch and sheddable shed first in a power emergency,
// standard next, critical never).
type SLOClass int

const (
	Critical SLOClass = iota
	Standard
	Sheddable
	Batch
)

var sloNames = [...]string{"critical", "standard", "sheddable", "batch"}

// String returns the DSL name of the class.
func (c SLOClass) String() string {
	if c < 0 || int(c) >= len(sloNames) {
		return fmt.Sprintf("slo(%d)", int(c))
	}
	return sloNames[c]
}

// ParseSLOClass parses a DSL class name.
func ParseSLOClass(s string) (SLOClass, error) {
	for i, n := range sloNames {
		if s == n {
			return SLOClass(i), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown slo class %q (have %s)", s, strings.Join(sloNames[:], ", "))
}

// Priority maps the class onto the paper's two-pool priority model.
func (c SLOClass) Priority() workload.Priority {
	if c == Critical || c == Standard {
		return workload.High
	}
	return workload.Low
}

// ShedRank maps the class onto the serve-mode class-shed severity ladder
// (0 sheds at severity >= 1, 1 at severity 2, 2 never).
func (c SLOClass) ShedRank() int {
	switch c {
	case Critical:
		return 2
	case Standard:
		return 1
	default:
		return 0
	}
}

// Sessions makes a cohort multi-turn: each fresh arrival opens a session
// whose turn count is geometric with mean Turns, turns are separated by
// exponential think time with mean Think, and every follow-up turn re-sends
// Grow of the session's accumulated context (fresh prompts + generated
// outputs) on top of its fresh prompt — the growing-context pattern of
// chat and agent traffic.
type Sessions struct {
	Turns float64
	Think time.Duration
	Grow  float64
}

func (s Sessions) validate() error {
	switch {
	case s.Turns < 1 || s.Turns > 64:
		return fmt.Errorf("scenario: mean turns %v outside [1,64]", s.Turns)
	case s.Think <= 0:
		return fmt.Errorf("scenario: non-positive think time")
	case s.Grow < 0 || s.Grow > 1:
		return fmt.Errorf("scenario: context grow fraction %v outside [0,1]", s.Grow)
	}
	return nil
}

// String renders the canonical DSL form.
func (s Sessions) String() string {
	return fmt.Sprintf("(turns=%s,think=%s,grow=%s)", trimFloat(s.Turns), trimDur(s.Think), trimFloat(s.Grow))
}

// Prefix gives every prompt in the cohort a shared system prefix: each
// session is assigned one of Groups distinct prefixes (uniformly, on the
// session stream) and every turn prepends its Tokens tokens. The group id
// rides on the request so prefix-aware routing can exploit the locality.
type Prefix struct {
	Groups int
	Tokens int
}

func (p Prefix) validate() error {
	switch {
	case p.Groups < 1 || p.Groups > 1<<20:
		return fmt.Errorf("scenario: prefix groups %d outside [1,2^20]", p.Groups)
	case p.Tokens < 1 || p.Tokens > MaxContext/2:
		return fmt.Errorf("scenario: prefix tokens %d outside [1,%d]", p.Tokens, MaxContext/2)
	}
	return nil
}

// String renders the canonical DSL form.
func (p Prefix) String() string {
	return fmt.Sprintf("(groups=%d,tokens=%d)", p.Groups, p.Tokens)
}

// Cohort is one client population: a stream of sessions with a common SLO
// class, arrival process, rate shape, and token-length profile.
type Cohort struct {
	Name string
	SLO  SLOClass
	// Rate is the mean fresh-session arrival rate (sessions/s) at Basis
	// servers; the generator scales it by the actual row size.
	Rate     float64
	Arrivals Arrivals
	Burst    *Burst
	Shape    RateShape
	// Prompt is the fresh-prompt token distribution (per turn, before the
	// shared prefix and carried context are added); Output the generated
	// token distribution.
	Prompt   TokenDist
	Output   TokenDist
	Sessions *Sessions
	Prefix   *Prefix
}

// MeanTurns returns the expected requests per session (1 when the cohort
// is single-turn).
func (c Cohort) MeanTurns() float64 {
	if c.Sessions == nil {
		return 1
	}
	return c.Sessions.Turns
}

// RequestRate returns the cohort's mean request rate (requests/s at Basis
// servers): session rate times mean turns.
func (c Cohort) RequestRate() float64 {
	return c.Rate * c.MeanTurns()
}

// MeanPromptTokens returns the exact expected prompt length of a random
// request from the cohort, including the shared prefix and the carried
// multi-turn context: for geometric sessions with mean T turns, a random
// request has T-1 expected prior turns, each contributing its fresh
// prompt and output scaled by the grow fraction. (The MaxContext clamp is
// ignored; Validate rejects specs whose mean would exceed it.)
func (c Cohort) MeanPromptTokens() float64 {
	mean := c.Prompt.Mean()
	if c.Prefix != nil {
		mean += float64(c.Prefix.Tokens)
	}
	if s := c.Sessions; s != nil {
		mean += s.Grow * (s.Turns - 1) * (c.Prompt.Mean() + c.Output.Mean())
	}
	return mean
}

// MeanOutputTokens returns the expected generated length per request.
func (c Cohort) MeanOutputTokens() float64 {
	return c.Output.Mean()
}

func (c Cohort) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("scenario: unnamed cohort")
	case strings.ContainsAny(c.Name, " \t=#"):
		return fmt.Errorf("scenario: cohort name %q has reserved characters", c.Name)
	case c.SLO < Critical || c.SLO > Batch:
		return fmt.Errorf("scenario: %s: bad slo class %d", c.Name, int(c.SLO))
	case c.Rate <= 0 || c.Rate > 1e6:
		return fmt.Errorf("scenario: %s: rate %v outside (0,1e6]", c.Name, c.Rate)
	}
	if err := c.Arrivals.validate(); err != nil {
		return fmt.Errorf("%v (cohort %s)", err, c.Name)
	}
	if c.Burst != nil {
		if err := c.Burst.validate(); err != nil {
			return fmt.Errorf("%v (cohort %s)", err, c.Name)
		}
	}
	if err := c.Shape.validate(); err != nil {
		return fmt.Errorf("%v (cohort %s)", err, c.Name)
	}
	if err := c.Prompt.validate("prompt"); err != nil {
		return fmt.Errorf("%v (cohort %s)", err, c.Name)
	}
	if err := c.Output.validate("output"); err != nil {
		return fmt.Errorf("%v (cohort %s)", err, c.Name)
	}
	if c.Sessions != nil {
		if err := c.Sessions.validate(); err != nil {
			return fmt.Errorf("%v (cohort %s)", err, c.Name)
		}
	}
	if c.Prefix != nil {
		if err := c.Prefix.validate(); err != nil {
			return fmt.Errorf("%v (cohort %s)", err, c.Name)
		}
	}
	if mean := c.MeanPromptTokens(); mean > MaxContext {
		return fmt.Errorf("scenario: %s: mean prompt %.0f tokens exceeds the %d context cap", c.Name, mean, MaxContext)
	}
	return nil
}

// Spec is one named scenario: a basis row size and the cohorts that share
// it. The zero value is not valid; build specs with Parse or the library.
type Spec struct {
	Name string
	// Basis is the row size (server count) the cohort rates are calibrated
	// for; the generator scales rates by servers/Basis so a scenario keeps
	// its per-server intensity on any row.
	Basis   int
	Cohorts []Cohort
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: unnamed spec")
	case strings.ContainsAny(s.Name, " \t=#"):
		return fmt.Errorf("scenario: name %q has reserved characters", s.Name)
	case s.Basis < 1 || s.Basis > 1<<16:
		return fmt.Errorf("scenario: basis %d outside [1,65536]", s.Basis)
	case len(s.Cohorts) == 0:
		return fmt.Errorf("scenario: %s: no cohorts", s.Name)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	for _, c := range s.Cohorts {
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// TotalRequestRate returns the spec's mean aggregate request rate
// (requests/s at Basis servers).
func (s Spec) TotalRequestRate() float64 {
	var total float64
	for _, c := range s.Cohorts {
		total += c.RequestRate()
	}
	return total
}

// MeanTokens returns the request-weighted expected prompt and output
// lengths of the whole mix — the scenario counterpart of
// workload.MeanTokens, and by construction equal to it on the surrogate
// classes Classes builds.
func (s Spec) MeanTokens() (prompt, output float64) {
	total := s.TotalRequestRate()
	for _, c := range s.Cohorts {
		w := c.RequestRate() / total
		prompt += w * c.MeanPromptTokens()
		output += w * c.MeanOutputTokens()
	}
	return prompt, output
}

// Classes compiles the spec into the workload.Class table the cluster
// simulator's capacity planning runs on. Each cohort becomes one class
// whose point-mass token ranges equal the cohort's exact analytic means —
// so MeanServiceSeconds, BusyServerWatts, and the trace fit see the same
// first moments the generator produces, whatever the underlying
// distributions — and whose Share is the cohort's fraction of mean
// request traffic. LowShare is 0 or 1 per the SLO class's priority
// mapping (scenario cohorts never split one cohort across pools; split
// populations are expressed as two cohorts).
func (s Spec) Classes() []workload.Class {
	total := s.TotalRequestRate()
	out := make([]workload.Class, len(s.Cohorts))
	var acc float64
	for i, c := range s.Cohorts {
		share := c.RequestRate() / total
		if i == len(s.Cohorts)-1 {
			share = 1 - acc // exact residual so shares sum to 1
		}
		acc += share
		low := 0.0
		if c.SLO.Priority() == workload.Low {
			low = 1
		}
		p := int(math.Round(c.MeanPromptTokens()))
		if p < 1 {
			p = 1
		}
		o := int(math.Round(c.MeanOutputTokens()))
		if o < 1 {
			o = 1
		}
		out[i] = workload.Class{
			Name: c.Name, PromptMin: p, PromptMax: p, OutputMin: o, OutputMax: o,
			Share: share, LowShare: low,
		}
	}
	return out
}

// ShedRanks returns the per-class serve-mode shed ranks declared by the
// cohorts' SLO classes, overriding the LowShare-derived heuristic.
func (s Spec) ShedRanks() map[string]int {
	out := make(map[string]int, len(s.Cohorts))
	for _, c := range s.Cohorts {
		out[c.Name] = c.SLO.ShedRank()
	}
	return out
}

// SLOOf returns the cohort's SLO class by name (Standard for unknown
// names, matching the dispatcher's fallback spirit).
func (s Spec) SLOOf(name string) SLOClass {
	for _, c := range s.Cohorts {
		if c.Name == name {
			return c.SLO
		}
	}
	return Standard
}
