package scenario

import (
	"testing"
	"time"

	"polca/internal/sim"
)

// BenchmarkScenarioSample measures the generator's steady-state Next()
// path — rate-plan walk, renewal gap, token draws, and the pending-turn
// heap — which sits upstream of the simulator's arrival loop. It must not
// allocate per request (polca-bench -zero-alloc gates it): the turn heap
// reuses its backing array and every draw is a value operation.
func BenchmarkScenarioSample(b *testing.B) {
	spec := Spec{
		Name: "bench", Basis: 16,
		Cohorts: []Cohort{
			{
				Name: "chat", SLO: Standard, Rate: 6,
				Arrivals: Arrivals{Kind: ArrGamma, Shape: 0.5},
				Shape:    RateShape{Kind: ShapeDiurnal, Peak: 14 * time.Hour, Amp: 0.4},
				Prompt:   TokenDist{Kind: DistLogNormal, A: 360, B: 0.7},
				Output:   TokenDist{Kind: DistLogNormal, A: 180, B: 0.6},
				Sessions: &Sessions{Turns: 4, Think: 45 * time.Second, Grow: 0.7},
				Prefix:   &Prefix{Groups: 8, Tokens: 64},
			},
			{
				Name: "batch", SLO: Batch, Rate: 4,
				Arrivals: Arrivals{Kind: ArrWeibull, Shape: 0.7},
				Prompt:   TokenDist{Kind: DistPoint, A: 2000},
				Output:   TokenDist{Kind: DistUniform, A: 200, B: 400},
			},
		},
	}
	gen, err := NewGenerator(spec, 90*24*time.Hour, 1, sim.New(1).Rand)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := gen.Next(); !ok {
			b.Fatal("generator exhausted; raise the bench horizon")
		}
	}
}
