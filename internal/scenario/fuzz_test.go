package scenario

import (
	"reflect"
	"testing"
)

// FuzzScenarioSpec fuzzes the DSL parser with the same two properties the
// faults-spec fuzzer pins: Parse never panics, and any input it accepts
// round-trips through the canonical form — Parse(String(spec)) succeeds,
// reproduces the spec, and String is a fixed point.
func FuzzScenarioSpec(f *testing.F) {
	for _, name := range Names() {
		src, _ := BuiltinSource(name)
		f.Add(src)
	}
	f.Add("scenario x\ncohort a rate=1 prompt=point(10) output=point(10)\n")
	f.Add("scenario x\nbasis 4\n# c\ncohort a slo=batch rate=0.5 arrivals=weibull(0.7) burst=(gap=1h,dur=5m,x=3) shape=spike(at=2h,x=4,rise=5m,fall=30m) prompt=uniform(10,20) output=logn(50,0.5) sessions=(turns=2,think=5s,grow=0.5) prefix=(groups=2,tokens=16)\n")
	f.Add("scenario é\ncohort a rate=1e3 prompt=point(1) output=point(1)\n")
	f.Add("cohort before header\n")
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed spec:\n%s", canon)
		}
		if canon2 := again.String(); canon2 != canon {
			t.Fatalf("canonical form not a fixed point:\n%q\n%q", canon, canon2)
		}
	})
}
