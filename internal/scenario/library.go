package scenario

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// The builtin library. Each entry is the scenario's canonical DSL source:
// the committed scenarios/*.scn files carry exactly this text (a test and
// the make scenarios target hold the two in lockstep), so a scenario can
// be referenced by name or shipped around as a file interchangeably.
//
// Rates are calibrated for the default 16-server row (basis 16): the
// aggregate mean load lands near the production trace's ~55% power
// utilization, with peaks (diurnal crest, launch ramp, burst episodes)
// probing the region POLCA caps in.
var builtins = map[string]string{
	// table6 re-expresses the paper's hardcoded workload.Table6 mix as a
	// scenario: same token ranges, same shares, same priority split
	// (chat's 50/50 LowShare becomes two cohorts), under the production
	// diurnal (peak hour 14, relative amplitude ≈ DailyAmp/Base) with the
	// trace fit's Erlang-32 front-door smoothing expressed as gamma(32).
	"table6": `scenario table6
basis 16
cohort summarize slo=batch rate=0.0625 arrivals=gamma(32) shape=diurnal(peak=14h,amp=0.17) prompt=uniform(2048,8192) output=uniform(256,512)
cohort search slo=critical rate=0.0625 arrivals=gamma(32) shape=diurnal(peak=14h,amp=0.17) prompt=uniform(512,2048) output=uniform(1024,2048)
cohort chat-rt slo=standard rate=0.0625 arrivals=gamma(32) shape=diurnal(peak=14h,amp=0.17) prompt=uniform(2048,4096) output=uniform(128,2048)
cohort chat-bulk slo=sheddable rate=0.0625 arrivals=gamma(32) shape=diurnal(peak=14h,amp=0.17) prompt=uniform(2048,4096) output=uniform(128,2048)
`,

	// chatbot: consumer chat across two regions plus a free tier. Bursty
	// per-user arrivals (gamma shape < 1), short lognormal turns, growing
	// multi-turn context, per-region diurnal offsets, and a shared system
	// prompt per product surface.
	"chatbot": `scenario chatbot
basis 16
cohort chat-na slo=standard rate=0.055 arrivals=gamma(0.5) shape=diurnal(peak=14h,amp=0.5) prompt=logn(360,0.7) output=logn(180,0.6) sessions=(turns=4,think=45s,grow=0.7) prefix=(groups=8,tokens=64)
cohort chat-eu slo=standard rate=0.04 arrivals=gamma(0.5) shape=diurnal(peak=14h,amp=0.5,offset=6h) prompt=logn(360,0.7) output=logn(180,0.6) sessions=(turns=4,think=45s,grow=0.7) prefix=(groups=8,tokens=64)
cohort chat-free slo=sheddable rate=0.045 arrivals=gamma(0.35) shape=diurnal(peak=16h,amp=0.6) prompt=logn(280,0.8) output=logn(140,0.6) sessions=(turns=3,think=1m,grow=0.6) prefix=(groups=2,tokens=48)
`,

	// contentgen: marketing-copy generation. Small prompts, long outputs,
	// a Weibull-bursty interactive tier with campaign-day burst episodes,
	// and a flat template-driven batch tier.
	"contentgen": `scenario contentgen
basis 16
cohort drafts slo=standard rate=0.06 arrivals=weibull(0.6) burst=(gap=3h,dur=10m,x=6) shape=diurnal(peak=11h,amp=0.35) prompt=logn(250,0.5) output=logn(650,0.45)
cohort rewrite slo=sheddable rate=0.035 arrivals=gamma(0.7) shape=diurnal(peak=15h,amp=0.4) prompt=logn(420,0.5) output=logn(380,0.5)
cohort templates slo=batch rate=0.03 prompt=point(512) output=uniform(600,1200)
`,

	// summarization: document pipelines. Long uniform prompts with small
	// outputs interactively, plus an overnight batch crawl that runs flat
	// with heavy-tailed submission gaps.
	"summarization": `scenario summarization
basis 16
cohort docsum slo=standard rate=0.05 arrivals=gamma(2) shape=diurnal(peak=10h,amp=0.45) prompt=uniform(3000,8000) output=uniform(200,400)
cohort inbox slo=critical rate=0.035 arrivals=gamma(1.5) shape=diurnal(peak=9h,amp=0.5) prompt=logn(1800,0.4) output=point(160)
cohort crawl slo=batch rate=0.04 arrivals=weibull(0.7) prompt=point(6000) output=point(256)
`,

	// multidoc: retrieval-augmented multi-document QA. Every session pins
	// one of a few shared corpus prefixes (prefix-cache locality), with a
	// sheddable background refresh tier re-indexing the corpus.
	"multidoc": `scenario multidoc
basis 16
cohort rag-qa slo=critical rate=0.045 arrivals=gamma(0.8) shape=diurnal(peak=13h,amp=0.4) prompt=logn(2400,0.35) output=logn(280,0.4) sessions=(turns=2,think=30s,grow=0.3) prefix=(groups=4,tokens=1024)
cohort refresh slo=sheddable rate=0.035 arrivals=weibull(0.8) prompt=uniform(2000,5000) output=point(200) prefix=(groups=4,tokens=1024)
`,

	// agentic-multiturn: tool-driven agent loops. Many short machine-paced
	// turns with aggressively carried context, plus a batch evaluation
	// harness replaying fixed tasks.
	"agentic-multiturn": `scenario agentic-multiturn
basis 16
cohort agents slo=critical rate=0.02 arrivals=gamma(0.6) shape=diurnal(peak=12h,amp=0.3) prompt=logn(200,0.5) output=logn(380,0.5) sessions=(turns=8,think=5s,grow=0.9) prefix=(groups=16,tokens=256)
cohort evals slo=batch rate=0.015 prompt=point(900) output=point(500) sessions=(turns=5,think=2s,grow=0.8)
`,

	// launch-day: a product launch on top of steady traffic. The launch
	// cohort ramps 5x over two hours after the 6h announcement and stays
	// there, a press spike decays through the morning, and burst episodes
	// ride the ramp — the adversarial shape for a power-capping policy.
	"launch-day": `scenario launch-day
basis 16
cohort steady slo=standard rate=0.045 arrivals=gamma(4) shape=diurnal(peak=14h,amp=0.3) prompt=logn(500,0.6) output=logn(240,0.5) sessions=(turns=3,think=40s,grow=0.6)
cohort launch slo=standard rate=0.02 arrivals=weibull(0.55) burst=(gap=2h,dur=8m,x=6) shape=ramp(at=6h,over=2h,x=7) prompt=logn(420,0.7) output=logn(300,0.55) sessions=(turns=2,think=30s,grow=0.5)
cohort press slo=sheddable rate=0.014 arrivals=gamma(0.4) shape=spike(at=8h,x=10,rise=10m,fall=1h30m) prompt=logn(300,0.6) output=logn(220,0.5)
`,
}

// Names returns the builtin scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Builtin returns the named builtin scenario.
func Builtin(name string) (Spec, error) {
	src, ok := builtins[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return Parse(src)
}

// BuiltinSource returns the canonical DSL text of a builtin — what the
// committed scenarios/*.scn files must contain byte for byte.
func BuiltinSource(name string) (string, error) {
	src, ok := builtins[name]
	if !ok {
		return "", fmt.Errorf("scenario: unknown scenario %q", name)
	}
	return src, nil
}

// Load resolves a -scenario argument: a builtin name, or a path to a .scn
// file when the argument names no builtin (or looks like a path).
func Load(arg string) (Spec, error) {
	if src, ok := builtins[arg]; ok {
		return Parse(src)
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		if !strings.ContainsAny(arg, "/.") {
			return Spec{}, fmt.Errorf("scenario: unknown scenario %q (builtins: %s)", arg, strings.Join(Names(), ", "))
		}
		return Spec{}, fmt.Errorf("scenario: %v", err)
	}
	spec, err := Parse(string(data))
	if err != nil {
		return Spec{}, fmt.Errorf("%v (file %s)", err, arg)
	}
	return spec, nil
}
