package polca

import (
	"fmt"
	"sort"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/sim"
	"polca/internal/workload"
)

// FrequencyProfile records one capping frequency's effect on one pool's
// workload mix: the execution slowdown it causes and the busy-power it
// reclaims. Profiles are what §6.7's workload-aware extension adds on top
// of the fixed Table 5 frequencies.
type FrequencyProfile struct {
	ClockMHz  float64
	PerfLoss  float64 // mean execution slowdown (fraction)
	PowerSave float64 // mean busy GPU power reduction (fraction)
}

// FrequencyPlanner precomputes frequency profiles per priority from the
// workload classes (using the same plan/GPU models the cluster runs on)
// and answers "what is the deepest cap whose slowdown fits this budget?".
type FrequencyPlanner struct {
	profiles map[workload.Priority][]FrequencyProfile // sorted by clock desc
}

// NewFrequencyPlanner profiles the candidate clocks for both priorities.
// Candidates are sorted descending; the device's clock range clips them.
func NewFrequencyPlanner(model llm.Model, dt llm.DType, classes []workload.Class, candidatesMHz []float64) (*FrequencyPlanner, error) {
	if len(candidatesMHz) == 0 {
		return nil, fmt.Errorf("polca: no candidate frequencies")
	}
	cands := append([]float64(nil), candidatesMHz...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cands)))

	fp := &FrequencyPlanner{profiles: map[workload.Priority][]FrequencyProfile{}}
	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		baseT, baseP, err := mixCost(model, dt, classes, pri, 0)
		if err != nil {
			return nil, err
		}
		for _, mhz := range cands {
			t, p, err := mixCost(model, dt, classes, pri, mhz)
			if err != nil {
				return nil, err
			}
			fp.profiles[pri] = append(fp.profiles[pri], FrequencyProfile{
				ClockMHz:  mhz,
				PerfLoss:  t/baseT - 1,
				PowerSave: 1 - p/baseP,
			})
		}
	}
	return fp, nil
}

// mixCost returns the share-weighted mean execution time and mean busy
// power of the priority's class mix under the given lock (0 = boost).
func mixCost(model llm.Model, dt llm.DType, classes []workload.Class, pri workload.Priority, lockMHz float64) (seconds, watts float64, err error) {
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	dev.LockClock(lockMHz)
	var wsum, tsum, esum float64
	for _, cl := range classes {
		w := cl.Share * cl.LowShare
		if pri == workload.High {
			w = cl.Share * (1 - cl.LowShare)
		}
		if w <= 0 {
			continue
		}
		p, err := plan.NewInference(plan.InferenceConfig{
			Model: model, DType: dt, BatchSize: 1,
			InputTokens:  (cl.PromptMin + cl.PromptMax) / 2,
			OutputTokens: (cl.OutputMin + cl.OutputMax) / 2,
		})
		if err != nil {
			return 0, 0, err
		}
		var dur time.Duration
		var energy float64
		for _, ph := range p.Phases() {
			e := dev.Run(ph)
			dur += e.Duration
			energy += e.Energy()
		}
		wsum += w
		tsum += w * dur.Seconds()
		esum += w * energy / dur.Seconds()
	}
	if wsum == 0 {
		return 0, 0, fmt.Errorf("polca: no classes at priority %v", pri)
	}
	return tsum / wsum, esum / wsum, nil
}

// Profiles returns the planner's profiles for a priority (clock-descending).
func (fp *FrequencyPlanner) Profiles(p workload.Priority) []FrequencyProfile {
	return fp.profiles[p]
}

// DeepestWithin returns the lowest candidate clock whose profiled slowdown
// stays within the budget, or 0 (no cap) if even the highest candidate
// exceeds it.
func (fp *FrequencyPlanner) DeepestWithin(p workload.Priority, perfBudget float64) float64 {
	best := 0.0
	for _, prof := range fp.profiles[p] {
		if prof.PerfLoss <= perfBudget {
			best = prof.ClockMHz // candidates are clock-descending
		}
	}
	return best
}

// WorkloadAware is the §6.7 extension of the dual-threshold policy: instead
// of the fixed Table 5 frequencies, it picks per-priority capping clocks
// from profiled workload sensitivity so each action reclaims the most
// power its SLO budget allows.
type WorkloadAware struct {
	base    Config
	planner *FrequencyPlanner

	// Per-threshold budgets (fractions of execution slowdown).
	T1Budget   float64 // low priority at T1
	T2LPBudget float64 // low priority at T2
	T2HPBudget float64 // high priority at T2

	inner *Policy
}

// NewWorkloadAware builds the workload-aware policy: the dual-threshold
// structure of cfg with frequencies replanned from the classes' profiles.
// Budgets default to the Table 6 SLO p50 bounds (LP 5%, HP 1%) with the
// T1 action at half the low-priority budget.
func NewWorkloadAware(cfg Config, model llm.Model, dt llm.DType, classes []workload.Class) (*WorkloadAware, error) {
	planner, err := NewFrequencyPlanner(model, dt, classes,
		[]float64{1380, 1350, 1305, 1275, 1230, 1185, 1140, 1110, 1050, 990})
	if err != nil {
		return nil, err
	}
	slos := workload.SLOs()
	w := &WorkloadAware{
		base:       cfg,
		planner:    planner,
		T1Budget:   slos[workload.Low].P50Impact / 2,
		T2LPBudget: slos[workload.Low].P50Impact,
		T2HPBudget: slos[workload.High].P50Impact,
	}
	tuned := cfg
	if mhz := planner.DeepestWithin(workload.Low, w.T1Budget); mhz > 0 {
		tuned.LPBaseMHz = mhz
	}
	if mhz := planner.DeepestWithin(workload.Low, w.T2LPBudget); mhz > 0 {
		tuned.LPDeepMHz = mhz
	}
	if mhz := planner.DeepestWithin(workload.High, w.T2HPBudget); mhz > 0 {
		tuned.HPCapMHz = mhz
	}
	if tuned.LPDeepMHz > tuned.LPBaseMHz {
		tuned.LPDeepMHz = tuned.LPBaseMHz
	}
	if err := tuned.Validate(); err != nil {
		return nil, err
	}
	w.inner = New(tuned)
	return w, nil
}

// Name implements cluster.Controller.
func (w *WorkloadAware) Name() string {
	c := w.inner.Config()
	return fmt.Sprintf("POLCA-aware(%.0f/%.0f/%.0f MHz)", c.LPBaseMHz, c.LPDeepMHz, c.HPCapMHz)
}

// Frequencies returns the planned capping clocks (T1 LP, T2 LP, T2 HP).
func (w *WorkloadAware) Frequencies() (lpBase, lpDeep, hpCap float64) {
	c := w.inner.Config()
	return c.LPBaseMHz, c.LPDeepMHz, c.HPCapMHz
}

// OnTelemetry implements cluster.Controller by delegating to the tuned
// dual-threshold state machine.
func (w *WorkloadAware) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	w.inner.OnTelemetry(now, util, act)
}

// Reset implements cluster.Restartable by restarting the tuned state
// machine (the planned frequencies are configuration, not state).
func (w *WorkloadAware) Reset() { w.inner.Reset() }

var (
	_ cluster.Controller  = (*WorkloadAware)(nil)
	_ cluster.Restartable = (*WorkloadAware)(nil)
)
