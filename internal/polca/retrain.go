package polca

import (
	"fmt"
	"math"
	"time"

	"polca/internal/cluster"
	"polca/internal/stats"
)

// Recommendation is the outcome of a policy retraining pass (§6.3: "as
// workloads evolve, POLCA infrequently updates the policy parameters using
// power traces and capping history").
type Recommendation struct {
	Current   Config
	Suggested Config
	// Changed reports whether Suggested differs from Current.
	Changed bool
	// Reasons explains each adjustment, in order of application.
	Reasons []string
}

// RetrainInput is the observation window a retraining pass analyzes.
type RetrainInput struct {
	// Util is the observed row utilization series.
	Util stats.Series
	// BrakeEvents observed during the window.
	BrakeEvents int
	// OOBLatency is the actuation delay the thresholds must absorb.
	OOBLatency time.Duration
	// BrakeUtil is the utilization at which the power brake fires.
	BrakeUtil float64
}

// Retrain analyzes a completed observation window and recommends updated
// thresholds:
//
//   - T2 must sit below the brake point by at least the largest power rise
//     observed within the OOB latency, so a spike beginning as capping
//     triggers still cannot reach the brake.
//   - Any observed brake event is treated as evidence the margin was too
//     thin: T2 drops an extra safety step.
//   - If the row never came near T2, the thresholds are left alone —
//     raising them wins nothing and burns the safety margin.
//   - T1 follows T2 at 80% of the observed rise band, as in the initial
//     training procedure.
func Retrain(current Config, in RetrainInput) Recommendation {
	rec := Recommendation{Current: current, Suggested: current}
	if in.Util.Len() < 2 {
		rec.Reasons = append(rec.Reasons, "insufficient telemetry; keeping thresholds")
		return rec
	}
	if in.BrakeUtil <= 0 {
		in.BrakeUtil = 1.0
	}
	rise := in.Util.MaxRise(in.OOBLatency)
	if rise < 0.02 {
		rise = 0.02
	}

	safeT2 := math.Floor((in.BrakeUtil-rise)*100) / 100
	if in.BrakeEvents > 0 {
		// Brakes fired at the current setting: whatever the analytic
		// ceiling says, the current T2 demonstrably was not safe.
		safeT2 = math.Min(safeT2, current.T2) - 0.02
		safeT2 = math.Floor(safeT2*100) / 100
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("%d power brake(s) observed: tightening T2 by an extra 2 points", in.BrakeEvents))
	}

	// Move gradually: a single pass tightens by at most 5 points. Post-
	// brake traces contain brake-release transients that inflate the rise
	// estimate, and operators re-evaluate after each adjustment anyway.
	if floor := current.T2 - 0.05; safeT2 < floor {
		safeT2 = floor
	}

	peak := in.Util.Peak()
	switch {
	case safeT2 < current.T2:
		rec.Suggested.T2 = safeT2
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("observed %.0f%% rise within the %v OOB window: T2 %.0f%% -> %.0f%% (max 5 points per pass)",
				rise*100, in.OOBLatency, current.T2*100, safeT2*100))
	case peak < current.T2-current.UncapMargin:
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("peak utilization %.0f%% never reached T2 %.0f%%; keeping thresholds",
				peak*100, current.T2*100))
	default:
		rec.Reasons = append(rec.Reasons, "thresholds remain within the safe band")
	}

	t1 := math.Floor((rec.Suggested.T2-rise*0.8)*100) / 100
	if t1 < rec.Suggested.T2-0.15 {
		t1 = rec.Suggested.T2 - 0.15
	}
	if t1 != rec.Suggested.T1 && rec.Suggested.T2 != current.T2 {
		rec.Reasons = append(rec.Reasons,
			fmt.Sprintf("T1 follows: %.0f%% -> %.0f%%", rec.Suggested.T1*100, t1*100))
		rec.Suggested.T1 = t1
	}

	if rec.Suggested.Validate() != nil {
		// Never recommend an invalid configuration.
		rec.Suggested = current
		rec.Reasons = append(rec.Reasons, "derived thresholds invalid; keeping current configuration")
	}
	rec.Changed = rec.Suggested != rec.Current
	return rec
}

// RetrainFromMetrics runs Retrain on a completed cluster simulation.
func RetrainFromMetrics(current Config, m *cluster.Metrics) Recommendation {
	return Retrain(current, RetrainInput{
		Util:        m.Util,
		BrakeEvents: m.BrakeEvents,
		OOBLatency:  m.Config.OOBLatency,
		BrakeUtil:   m.Config.BrakeUtil,
	})
}

// Describe renders the recommendation for operators.
func (r Recommendation) Describe() string {
	out := fmt.Sprintf("current:   T1=%.0f%% T2=%.0f%%\n", r.Current.T1*100, r.Current.T2*100)
	out += fmt.Sprintf("suggested: T1=%.0f%% T2=%.0f%%", r.Suggested.T1*100, r.Suggested.T2*100)
	if !r.Changed {
		out += " (unchanged)"
	}
	out += "\n"
	for _, reason := range r.Reasons {
		out += "  - " + reason + "\n"
	}
	return out
}
