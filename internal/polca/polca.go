// Package polca implements POLCA, the paper's power-oversubscription
// framework for LLM inference clusters (§6), as cluster.Controller
// policies: the dual-threshold priority-aware frequency-capping policy of
// Table 5, the baselines it is evaluated against (1-Thresh-Low-Pri,
// 1-Thresh-All, No-cap), and the threshold-training procedure that derives
// T1/T2 from a historical power trace.
//
// The policy is deliberately simple (§6.2): thresholds on row-level power
// utilization, hysteresis to avoid capping/uncapping oscillation, and
// priority ordering so that low-priority workloads shield high-priority
// ones from power reclamation.
package polca

import (
	"fmt"
	"math"
	"time"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/workload"
)

// emitThreshold traces one policy threshold transition through the
// actuator's observer. Reasons are static strings ("t1.engage",
// "t2.hp.release") so emission never allocates; a disabled observer
// returns before the event value is even built.
func emitThreshold(act cluster.Actuator, now sim.Time, label, reason string, util float64) {
	tr := act.Observer().Trace()
	if tr == nil {
		return
	}
	tr.Emit(obs.Event{
		At: now, Kind: obs.KindThreshold, Server: -1, Pool: obs.PoolNone,
		Value: util, Reason: reason, Label: label,
	})
}

// Config parameterizes the dual-threshold policy. Utilizations are
// fractions of the row's provisioned power.
type Config struct {
	// T1 is the lower threshold: low-priority servers lock to LPBaseMHz.
	T1 float64
	// T2 is the upper threshold: low-priority servers lock to LPDeepMHz;
	// if utilization is still at or above T2 on a later tick, high-priority
	// servers lock to HPCapMHz.
	T2 float64
	// UncapMargin is the hysteresis band: an action engaged at threshold T
	// releases only when utilization falls below T - UncapMargin (§6.3:
	// 5% based on parameter sweeps).
	UncapMargin float64

	// Capping frequencies (Table 5). Defaults: the A100 base clock
	// 1275 MHz at T1, 1110 MHz for low priority at T2, and 1305 MHz for
	// high priority at T2 (negligible performance impact, Insight 7).
	LPBaseMHz float64
	LPDeepMHz float64
	HPCapMHz  float64
}

// DefaultConfig returns the paper's chosen configuration: T1 = 80%,
// T2 = 89%, 5% uncap margin, Table 5 frequencies.
func DefaultConfig() Config {
	return Config{
		T1:          0.80,
		T2:          0.89,
		UncapMargin: 0.05,
		LPBaseMHz:   1275,
		LPDeepMHz:   1110,
		HPCapMHz:    1305,
	}
}

// Validate reports whether the configuration is coherent.
func (c Config) Validate() error {
	switch {
	case c.T1 <= 0 || c.T2 <= c.T1 || c.T2 > 1.2:
		return fmt.Errorf("polca: bad thresholds T1=%v T2=%v", c.T1, c.T2)
	case c.UncapMargin <= 0 || c.UncapMargin >= c.T1:
		return fmt.Errorf("polca: bad uncap margin %v", c.UncapMargin)
	case c.LPBaseMHz <= 0 || c.LPDeepMHz <= 0 || c.HPCapMHz <= 0:
		return fmt.Errorf("polca: non-positive capping frequency")
	case c.LPDeepMHz > c.LPBaseMHz:
		return fmt.Errorf("polca: T2 low-priority clock above T1 clock")
	}
	return nil
}

// Policy is the dual-threshold POLCA controller. It is stateful (engaged
// thresholds with hysteresis) and not safe for concurrent use; each
// simulated row owns one.
type Policy struct {
	cfg Config

	t1Engaged   bool // LP at base clock
	t2LPEngaged bool // LP at deep clock
	t2HPEngaged bool // HP capped
	t2Since     sim.Time
	t2Armed     bool

	// Controller-view TSDB series (nil when the run has no TSDB), bound
	// lazily on the first telemetry tick so construction needs no actuator.
	ctrlUtil  *obs.TSSeries
	ctrlStage *obs.TSSeries
	tsdbBound bool
}

// New returns a Policy with the given configuration. It panics on an
// invalid configuration.
func New(cfg Config) *Policy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Policy{cfg: cfg}
}

// Name implements cluster.Controller.
func (p *Policy) Name() string {
	return fmt.Sprintf("POLCA(T1=%.0f%%,T2=%.0f%%)", p.cfg.T1*100, p.cfg.T2*100)
}

// Config returns the policy's configuration.
func (p *Policy) Config() Config { return p.cfg }

// OnTelemetry implements cluster.Controller: the Table 5 state machine.
func (p *Policy) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	c := p.cfg

	// T2, low priority: engage at T2, release below T2 - margin.
	switch {
	case util >= c.T2 && !p.t2LPEngaged:
		p.t2LPEngaged = true
		p.t2Since = now
		p.t2Armed = false
		emitThreshold(act, now, p.Name(), "t2.lp.engage", util)
	case util < c.T2-c.UncapMargin && p.t2LPEngaged:
		p.t2LPEngaged = false
		emitThreshold(act, now, p.Name(), "t2.lp.release", util)
		if p.t2HPEngaged {
			p.t2HPEngaged = false
			emitThreshold(act, now, p.Name(), "t2.hp.release", util)
		}
	}

	// T2, high priority: only if utilization remains at T2 after the LP
	// action had a chance to land (a later tick), to avoid touching
	// high-priority workloads until absolutely necessary (§6.3).
	if p.t2LPEngaged && util >= c.T2 {
		if p.t2Armed && !p.t2HPEngaged {
			p.t2HPEngaged = true
			emitThreshold(act, now, p.Name(), "t2.hp.engage", util)
		}
		p.t2Armed = true
	}
	if p.t2HPEngaged && util < c.T2-c.UncapMargin {
		p.t2HPEngaged = false
		emitThreshold(act, now, p.Name(), "t2.hp.release", util)
	}

	// T1: engage at T1, release below T1 - margin.
	switch {
	case util >= c.T1 && !p.t1Engaged:
		p.t1Engaged = true
		emitThreshold(act, now, p.Name(), "t1.engage", util)
	case util < c.T1-c.UncapMargin && p.t1Engaged:
		p.t1Engaged = false
		emitThreshold(act, now, p.Name(), "t1.release", util)
	}

	// Desired state for the pools.
	lp := 0.0
	if p.t1Engaged {
		lp = c.LPBaseMHz
	}
	if p.t2LPEngaged {
		lp = c.LPDeepMHz
	}
	hp := 0.0
	if p.t2HPEngaged {
		hp = c.HPCapMHz
	}
	act.SetPoolLock(workload.Low, lp)
	act.SetPoolLock(workload.High, hp)
	p.observeState(now, util, act)
}

// observeState records the controller's view into the run's sim-time
// TSDB: the utilization it acted on (which under telemetry faults can
// diverge from the row's physical reading) and the engaged stage as a
// step series (0 = uncapped, 1 = T1, 2 = T2 low-priority, 3 = T2 both).
// Observation-only; a run without a TSDB pays two nil-receiver branches.
func (p *Policy) observeState(now sim.Time, util float64, act cluster.Actuator) {
	if !p.tsdbBound {
		p.tsdbBound = true
		if db := act.Observer().TimeSeries(); db != nil {
			p.ctrlUtil = db.Series("ctrl.util", obs.LevelRow, obs.WithUnit("frac"))
			p.ctrlStage = db.Series("ctrl.stage", obs.LevelRow, obs.WithUnit("stage"))
		}
	}
	p.ctrlUtil.Observe(now, util)
	stage := 0.0
	switch {
	case p.t2HPEngaged:
		stage = 3
	case p.t2LPEngaged:
		stage = 2
	case p.t1Engaged:
		stage = 1
	}
	p.ctrlStage.Observe(now, stage)
}

// Engaged reports the current threshold state (for tests and inspection).
func (p *Policy) Engaged() (t1, t2LP, t2HP bool) {
	return p.t1Engaged, p.t2LPEngaged, p.t2HPEngaged
}

// Reset implements cluster.Restartable: a cold-restarted controller comes
// back with no thresholds engaged and re-derives its state from the next
// telemetry tick.
func (p *Policy) Reset() {
	p.t1Engaged = false
	p.t2LPEngaged = false
	p.t2HPEngaged = false
	p.t2Since = 0
	p.t2Armed = false
}

// SingleThreshold is the 1-Thresh baseline family: one trigger that locks
// the selected pools straight to the deep frequency, with the same
// hysteresis margin.
type SingleThreshold struct {
	// Threshold is the trigger utilization (the paper evaluates 89%).
	Threshold float64
	// Margin is the uncap hysteresis band.
	Margin float64
	// LockMHz is the capping frequency applied when triggered.
	LockMHz float64
	// AllPriorities selects 1-Thresh-All (cap both pools) over
	// 1-Thresh-Low-Pri (cap only low priority).
	AllPriorities bool

	engaged bool
}

// Name implements cluster.Controller.
func (s *SingleThreshold) Name() string {
	if s.AllPriorities {
		return fmt.Sprintf("1-Thresh-All(%.0f%%)", s.Threshold*100)
	}
	return fmt.Sprintf("1-Thresh-Low-Pri(%.0f%%)", s.Threshold*100)
}

// OnTelemetry implements cluster.Controller.
func (s *SingleThreshold) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	switch {
	case util >= s.Threshold && !s.engaged:
		s.engaged = true
		emitThreshold(act, now, s.Name(), "engage", util)
	case util < s.Threshold-s.Margin && s.engaged:
		s.engaged = false
		emitThreshold(act, now, s.Name(), "release", util)
	}
	lock := 0.0
	if s.engaged {
		lock = s.LockMHz
	}
	act.SetPoolLock(workload.Low, lock)
	if s.AllPriorities {
		act.SetPoolLock(workload.High, lock)
	} else {
		act.SetPoolLock(workload.High, 0)
	}
}

// Reset implements cluster.Restartable.
func (s *SingleThreshold) Reset() { s.engaged = false }

// NewSingleThresholdLowPri returns the paper's 1-Thresh-Low-Pri baseline.
func NewSingleThresholdLowPri() *SingleThreshold {
	return &SingleThreshold{Threshold: 0.89, Margin: 0.05, LockMHz: 1110}
}

// NewSingleThresholdAll returns the paper's 1-Thresh-All baseline.
func NewSingleThresholdAll() *SingleThreshold {
	return &SingleThreshold{Threshold: 0.89, Margin: 0.05, LockMHz: 1110, AllPriorities: true}
}

// NoCap is the uncontrolled baseline: it never caps; only the row's
// built-in power brake protects the breaker.
type NoCap struct{}

// Name implements cluster.Controller.
func (NoCap) Name() string { return "No-cap" }

// OnTelemetry implements cluster.Controller.
func (NoCap) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	act.SetPoolLock(workload.Low, 0)
	act.SetPoolLock(workload.High, 0)
}

// Reset implements cluster.Restartable (stateless, so a no-op).
func (NoCap) Reset() {}

// TrainThresholds derives T1/T2 from a historical utilization trace
// (§6.3/§6.5): T2 sits below the brake point by the largest power rise
// observed within the OOB capping latency (so a spike that begins just as
// capping is triggered still cannot reach the brake); T1 sits one more
// such band below, engaging the gentle low-priority action early enough to
// usually avoid T2 entirely. Results are rounded down to whole percent.
func TrainThresholds(ref stats.Series, brakeUtil float64, oobLatency time.Duration) Config {
	rise := ref.MaxRise(oobLatency)
	if rise < 0.02 {
		rise = 0.02
	}
	t2 := math.Floor((brakeUtil-rise)*100) / 100
	t1 := math.Floor((t2-rise*0.8)*100) / 100
	cfg := DefaultConfig()
	cfg.T1 = t1
	cfg.T2 = t2
	if cfg.Validate() != nil {
		return DefaultConfig()
	}
	return cfg
}

var (
	_ cluster.Controller  = (*Policy)(nil)
	_ cluster.Controller  = (*SingleThreshold)(nil)
	_ cluster.Controller  = NoCap{}
	_ cluster.Restartable = (*Policy)(nil)
	_ cluster.Restartable = (*SingleThreshold)(nil)
	_ cluster.Restartable = NoCap{}
)
