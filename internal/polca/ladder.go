package polca

import (
	"fmt"
	"sort"
	"strings"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/sim"
	"polca/internal/workload"
)

// Rung is one threshold of a capping ladder: when row utilization reaches
// Trigger, the target pool is locked to LockMHz; the action releases when
// utilization falls below Trigger - Margin. The paper's §6.3 notes the
// two-threshold design "can be easily extended to support more priorities
// by adding thresholds accordingly" — Ladder is that extension.
type Rung struct {
	// Trigger is the utilization (fraction of provisioned power) at which
	// the rung engages.
	Trigger float64
	// Margin is the hysteresis band below Trigger for release.
	Margin float64
	// Pool is the priority pool the action applies to.
	Pool workload.Priority
	// LockMHz is the SM clock the pool is locked to while engaged.
	LockMHz float64
	// Delay requires the utilization to remain at or above Trigger for
	// this many consecutive telemetry ticks before engaging (0 = engage
	// immediately). POLCA's high-priority T2 action uses 1: it fires only
	// if the low-priority action did not bring power down by the next
	// tick.
	Delay int
}

// Ladder is a generalized multi-threshold capping policy: any number of
// rungs, each with its own pool, clock, hysteresis, and engagement delay.
// When several engaged rungs target the same pool, the deepest (lowest
// frequency) wins.
type Ladder struct {
	name  string
	rungs []Rung

	engaged []bool
	streak  []int
}

// NewLadder validates and builds a ladder policy.
func NewLadder(name string, rungs []Rung) (*Ladder, error) {
	if len(rungs) == 0 {
		return nil, fmt.Errorf("polca: ladder with no rungs")
	}
	for i, r := range rungs {
		switch {
		case r.Trigger <= 0 || r.Trigger > 1.2:
			return nil, fmt.Errorf("polca: rung %d: bad trigger %v", i, r.Trigger)
		case r.Margin <= 0 || r.Margin >= r.Trigger:
			return nil, fmt.Errorf("polca: rung %d: bad margin %v", i, r.Margin)
		case r.LockMHz <= 0:
			return nil, fmt.Errorf("polca: rung %d: bad lock frequency %v", i, r.LockMHz)
		case r.Delay < 0:
			return nil, fmt.Errorf("polca: rung %d: negative delay", i)
		}
	}
	sorted := append([]Rung(nil), rungs...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Trigger < sorted[b].Trigger })
	return &Ladder{
		name:    name,
		rungs:   sorted,
		engaged: make([]bool, len(sorted)),
		streak:  make([]int, len(sorted)),
	}, nil
}

// FromConfig expresses the paper's dual-threshold policy as a ladder —
// useful both as a construction shortcut and as the equivalence anchor for
// tests.
func FromConfig(cfg Config) (*Ladder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewLadder(fmt.Sprintf("Ladder(T1=%.0f%%,T2=%.0f%%)", cfg.T1*100, cfg.T2*100), []Rung{
		{Trigger: cfg.T1, Margin: cfg.UncapMargin, Pool: workload.Low, LockMHz: cfg.LPBaseMHz},
		{Trigger: cfg.T2, Margin: cfg.UncapMargin, Pool: workload.Low, LockMHz: cfg.LPDeepMHz},
		{Trigger: cfg.T2, Margin: cfg.UncapMargin, Pool: workload.High, LockMHz: cfg.HPCapMHz, Delay: 1},
	})
}

// Name implements cluster.Controller.
func (l *Ladder) Name() string { return l.name }

// Rungs returns the ladder's rungs in trigger order.
func (l *Ladder) Rungs() []Rung {
	return append([]Rung(nil), l.rungs...)
}

// emitRung traces one rung transition; Pool and MHz carry the rung's
// target so a trace distinguishes same-trigger rungs.
func (l *Ladder) emitRung(act cluster.Actuator, now sim.Time, r Rung, reason string, util float64) {
	tr := act.Observer().Trace()
	if tr == nil {
		return
	}
	tr.Emit(obs.Event{
		At: now, Kind: obs.KindThreshold, Server: -1, Pool: int8(r.Pool),
		MHz: r.LockMHz, Value: util, Reason: reason, Label: l.name,
	})
}

// OnTelemetry implements cluster.Controller.
func (l *Ladder) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	for i, r := range l.rungs {
		switch {
		case util >= r.Trigger:
			l.streak[i]++
			if l.streak[i] > r.Delay && !l.engaged[i] {
				l.engaged[i] = true
				l.emitRung(act, now, r, "rung.engage", util)
			}
		case util < r.Trigger-r.Margin:
			if l.engaged[i] {
				l.engaged[i] = false
				l.emitRung(act, now, r, "rung.release", util)
			}
			l.streak[i] = 0
		default:
			// Inside the hysteresis band: hold state, reset the streak so
			// delayed rungs need a fresh run of hot ticks.
			l.streak[i] = 0
		}
	}
	// Deepest engaged lock per pool.
	locks := map[workload.Priority]float64{}
	for i, r := range l.rungs {
		if !l.engaged[i] {
			continue
		}
		if cur, ok := locks[r.Pool]; !ok || r.LockMHz < cur {
			locks[r.Pool] = r.LockMHz
		}
	}
	for _, pool := range []workload.Priority{workload.Low, workload.High} {
		act.SetPoolLock(pool, locks[pool]) // zero value = unlock
	}
}

// Reset implements cluster.Restartable: all rungs disengage and delayed
// rungs need a fresh run of hot ticks.
func (l *Ladder) Reset() {
	for i := range l.engaged {
		l.engaged[i] = false
		l.streak[i] = 0
	}
}

// Describe renders the ladder for operators.
func (l *Ladder) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", l.name)
	for i, r := range l.rungs {
		state := " "
		if l.engaged[i] {
			state = "*"
		}
		delay := ""
		if r.Delay > 0 {
			delay = fmt.Sprintf(" after %d hot tick(s)", r.Delay)
		}
		fmt.Fprintf(&b, "%s at %4.0f%% (release < %4.0f%%): %s priority -> %.0f MHz%s\n",
			state, r.Trigger*100, (r.Trigger-r.Margin)*100, r.Pool, r.LockMHz, delay)
	}
	return b.String()
}

var (
	_ cluster.Controller  = (*Ladder)(nil)
	_ cluster.Restartable = (*Ladder)(nil)
)
