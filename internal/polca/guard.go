package polca

import (
	"fmt"
	"sort"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/sim"
	"polca/internal/workload"
)

// GuardConfig parameterizes the telemetry validity layer. Utilization
// values are fractions of the row's provisioned power, counts are in
// telemetry ticks (2 s in the production configuration).
type GuardConfig struct {
	// Window is the length of the median filter applied to raw readings
	// before they reach the wrapped policy. Single-tick spikes within the
	// window are voted out; genuine load changes pass after a one-tick lag.
	Window int
	// StuckAfter is how many consecutive byte-identical readings mark the
	// sensor as stuck. A busy row's power reading essentially never
	// repeats exactly, so exact equality is the stuck-at signature.
	StuckAfter int
	// StuckMinUtil disarms the stuck detector below this reading: a quiet
	// row genuinely plateaus (every server idle draws constant power), so
	// constancy is only implausible — and a frozen sensor only dangerous —
	// when the row reads busy. 0 arms the detector everywhere.
	StuckMinUtil float64
	// FailSafeAfter is how many consecutive invalid ticks (lost, stuck)
	// engage the fail-safe conservative cap.
	FailSafeAfter int
	// MaxStep is the largest per-tick utilization move the filter accepts
	// from a raw reading; larger jumps are treated as spikes and replaced
	// by the window median.
	MaxStep float64
	// FailSafeLPMHz and FailSafeHPMHz are the conservative locks asserted
	// while the fail-safe is engaged: the Table 5 deep clocks, the same
	// frequencies POLCA would choose at T2 — safe for the breaker at any
	// load the row can physically reach.
	FailSafeLPMHz float64
	FailSafeHPMHz float64
}

// DefaultGuardConfig returns the guard used by the hardened policies in
// the fault experiments: median-of-3 filter, stuck after 5 identical
// readings, fail-safe after 10 invalid ticks (20 s), 10%-of-provisioned
// step limit, Table 5 deep clocks as the fail-safe.
func DefaultGuardConfig() GuardConfig {
	return GuardConfig{
		Window:        3,
		StuckAfter:    5,
		StuckMinUtil:  0.5,
		FailSafeAfter: 10,
		MaxStep:       0.10,
		FailSafeLPMHz: 1110,
		FailSafeHPMHz: 1305,
	}
}

// Validate reports whether the configuration is coherent.
func (c GuardConfig) Validate() error {
	switch {
	case c.Window < 1:
		return fmt.Errorf("polca: guard window %d < 1", c.Window)
	case c.StuckAfter < 2:
		return fmt.Errorf("polca: guard stuck-after %d < 2", c.StuckAfter)
	case c.StuckMinUtil < 0 || c.StuckMinUtil > 1:
		return fmt.Errorf("polca: guard stuck floor %v outside [0, 1]", c.StuckMinUtil)
	case c.FailSafeAfter < 1:
		return fmt.Errorf("polca: guard fail-safe-after %d < 1", c.FailSafeAfter)
	case c.MaxStep <= 0 || c.MaxStep > 1:
		return fmt.Errorf("polca: guard max step %v outside (0, 1]", c.MaxStep)
	case c.FailSafeLPMHz <= 0 || c.FailSafeHPMHz <= 0:
		return fmt.Errorf("polca: non-positive fail-safe frequency")
	}
	return nil
}

// GuardStats counts what the validity layer did, for tests and reports.
type GuardStats struct {
	// Delivered is the number of readings passed to the wrapped policy.
	Delivered int
	// Outliers is the number of raw readings replaced by the window median
	// (spike suppressed, still delivered).
	Outliers int
	// StuckTicks is the number of ticks discarded as stuck-at repeats.
	StuckTicks int
	// LostTicks is the number of ticks with no reading at all.
	LostTicks int
	// FailSafeEngagements counts distinct fail-safe episodes.
	FailSafeEngagements int
}

// Guard wraps any cluster.Controller with a telemetry validity layer
// (§3.3: OOB telemetry is slow and unreliable, and a power manager that
// trusts it blindly inherits its failures). Readings pass through a
// median filter with spike rejection; exact-repeat readings are detected
// as a stuck sensor and discarded; and after FailSafeAfter consecutive
// invalid ticks the guard stops trusting the stream entirely and asserts
// a conservative cap on both pools until a valid reading returns.
//
// While readings are invalid but the fail-safe has not yet engaged, the
// wrapped policy is driven with the last valid filtered reading so it
// keeps reasserting its current decision rather than acting on garbage.
//
// Guard is itself a cluster.Controller and composes with any policy:
// NewGuard(polca.New(cfg), polca.DefaultGuardConfig()).
type Guard struct {
	inner cluster.Controller
	cfg   GuardConfig

	window   []float64 // ring of raw accepted readings
	wlen     int
	wpos     int
	lastRaw  float64
	repeats  int     // consecutive exact repeats of lastRaw
	lastGood float64 // last filtered value delivered to inner
	haveGood bool
	stale    int // consecutive invalid ticks
	failSafe bool
	stats    GuardStats
}

// NewGuard wraps inner with the validity layer. It panics on a nil inner
// controller or an invalid configuration (programmer error, matching New).
func NewGuard(inner cluster.Controller, cfg GuardConfig) *Guard {
	if inner == nil {
		panic("polca: NewGuard with nil inner controller")
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Guard{
		inner:  inner,
		cfg:    cfg,
		window: make([]float64, cfg.Window),
	}
}

// Name implements cluster.Controller.
func (g *Guard) Name() string { return fmt.Sprintf("Guard(%s)", g.inner.Name()) }

// Inner returns the wrapped policy.
func (g *Guard) Inner() cluster.Controller { return g.inner }

// Stats returns the validity-layer counters.
func (g *Guard) Stats() GuardStats { return g.stats }

// FailSafeEngaged reports whether the conservative cap is currently
// asserted.
func (g *Guard) FailSafeEngaged() bool { return g.failSafe }

// median returns the median of the current window contents.
func (g *Guard) median() float64 {
	tmp := make([]float64, g.wlen)
	copy(tmp, g.window[:g.wlen])
	sort.Float64s(tmp)
	return tmp[g.wlen/2]
}

// OnTelemetry implements cluster.Controller.
func (g *Guard) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	// Stuck-at detection: exact repeats of the previous raw reading, armed
	// only when the row reads busy enough that a genuine plateau is
	// implausible.
	if g.wlen > 0 && util == g.lastRaw && util >= g.cfg.StuckMinUtil {
		g.repeats++
	} else {
		g.repeats = 0
	}
	g.lastRaw = util
	if g.repeats >= g.cfg.StuckAfter-1 {
		g.stats.StuckTicks++
		g.invalidTick(now, act)
		return
	}

	// Admit the raw reading into the window, then filter.
	if g.wlen < len(g.window) {
		g.window[g.wlen] = util
		g.wlen++
	} else {
		g.window[g.wpos] = util
		g.wpos = (g.wpos + 1) % len(g.window)
	}
	filtered := util
	if med := g.median(); g.haveGood && util > g.lastGood+g.cfg.MaxStep && util > med+g.cfg.MaxStep {
		// An upward jump implausible for one tick that the window does not
		// corroborate: a spike. Downward jumps are let through — treating a
		// real reading as too *high* only caps early, never late.
		filtered = med
		g.stats.Outliers++
	}
	g.deliver(now, filtered, act)
}

// OnTelemetryLoss implements cluster.TelemetryLossAware: a tick with no
// reading at all (dropout or blackout window).
func (g *Guard) OnTelemetryLoss(now sim.Time, act cluster.Actuator) {
	g.stats.LostTicks++
	g.repeats = 0
	g.invalidTick(now, act)
}

// deliver passes a valid filtered reading to the wrapped policy and
// releases the fail-safe if it was engaged.
func (g *Guard) deliver(now sim.Time, filtered float64, act cluster.Actuator) {
	if g.failSafe {
		g.failSafe = false
		g.emit(act, now, obs.KindFailSafeRelease, filtered)
		// The inner policy reasserts its own locks on this same tick, so no
		// explicit unlock is needed here.
	}
	g.stale = 0
	g.lastGood = filtered
	g.haveGood = true
	g.stats.Delivered++
	g.inner.OnTelemetry(now, filtered, act)
}

// invalidTick handles a tick whose reading is missing or untrustworthy.
func (g *Guard) invalidTick(now sim.Time, act cluster.Actuator) {
	g.stale++
	if g.stale >= g.cfg.FailSafeAfter {
		if !g.failSafe {
			g.failSafe = true
			g.stats.FailSafeEngagements++
			g.emit(act, now, obs.KindFailSafeEngage, float64(g.stale))
		}
		// Reassert every stale tick: the OOB pipeline is lossy, and a
		// fail-safe that issues its cap once can lose it silently.
		act.SetPoolLock(workload.Low, g.cfg.FailSafeLPMHz)
		act.SetPoolLock(workload.High, g.cfg.FailSafeHPMHz)
		return
	}
	if g.haveGood {
		// Hold-last-good: keep the policy asserting its current decision.
		g.inner.OnTelemetry(now, g.lastGood, act)
	}
}

// Reset implements cluster.Restartable: the filter state, staleness
// count, and fail-safe all clear, and the wrapped policy restarts too if
// it can.
func (g *Guard) Reset() {
	g.wlen = 0
	g.wpos = 0
	g.lastRaw = 0
	g.repeats = 0
	g.lastGood = 0
	g.haveGood = false
	g.stale = 0
	g.failSafe = false
	if r, ok := g.inner.(cluster.Restartable); ok {
		r.Reset()
	}
}

// emit traces a fail-safe transition through the actuator's observer.
func (g *Guard) emit(act cluster.Actuator, now sim.Time, kind obs.Kind, v float64) {
	tr := act.Observer().Trace()
	if tr == nil {
		return
	}
	tr.Emit(obs.Event{
		At: now, Kind: kind, Server: -1, Pool: obs.PoolNone,
		Value: v, Label: g.Name(),
	})
}

var (
	_ cluster.Controller         = (*Guard)(nil)
	_ cluster.Restartable        = (*Guard)(nil)
	_ cluster.TelemetryLossAware = (*Guard)(nil)
)
