package polca_test

import (
	"math/rand"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

// fakeActuator records the desired pool locks.
type fakeActuator struct {
	locks map[workload.Priority]float64
	obs   *obs.Observer
}

func newFake() *fakeActuator {
	return &fakeActuator{locks: map[workload.Priority]float64{}}
}

func (f *fakeActuator) SetPoolLock(p workload.Priority, mhz float64) { f.locks[p] = mhz }
func (f *fakeActuator) PoolLock(p workload.Priority) float64         { return f.locks[p] }
func (f *fakeActuator) GPUSpec() gpu.Spec                            { return gpu.A100SXM80GB() }
func (f *fakeActuator) Observer() *obs.Observer                      { return f.obs }

func tick(p cluster.Controller, act *fakeActuator, utils ...float64) {
	now := sim.Time(0)
	for _, u := range utils {
		now += 2 * time.Second
		p.OnTelemetry(now, u, act)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := polca.DefaultConfig()
	if c.T1 != 0.80 || c.T2 != 0.89 {
		t.Errorf("thresholds = %v/%v, want 0.80/0.89 (§6.5)", c.T1, c.T2)
	}
	if c.UncapMargin != 0.05 {
		t.Errorf("uncap margin = %v, want 0.05 (§6.3)", c.UncapMargin)
	}
	if c.LPBaseMHz != 1275 || c.LPDeepMHz != 1110 || c.HPCapMHz != 1305 {
		t.Errorf("frequencies = %v/%v/%v, want Table 5's 1275/1110/1305",
			c.LPBaseMHz, c.LPDeepMHz, c.HPCapMHz)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []polca.Config{
		{},
		{T1: 0.9, T2: 0.8, UncapMargin: 0.05, LPBaseMHz: 1, LPDeepMHz: 1, HPCapMHz: 1},
		{T1: 0.8, T2: 0.89, UncapMargin: 0, LPBaseMHz: 1, LPDeepMHz: 1, HPCapMHz: 1},
		{T1: 0.8, T2: 0.89, UncapMargin: 0.05, LPBaseMHz: 1100, LPDeepMHz: 1200, HPCapMHz: 1},
		{T1: 0.8, T2: 0.89, UncapMargin: 0.05, LPBaseMHz: 0, LPDeepMHz: 0, HPCapMHz: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with bad config should panic")
		}
	}()
	polca.New(polca.Config{})
}

func TestT1EngagesLowPriorityOnly(t *testing.T) {
	p := polca.New(polca.DefaultConfig())
	act := newFake()
	tick(p, act, 0.82)
	if got := act.locks[workload.Low]; got != 1275 {
		t.Errorf("LP lock = %v, want 1275 at T1 (Table 5)", got)
	}
	if got := act.locks[workload.High]; got != 0 {
		t.Errorf("HP lock = %v, want uncapped at T1", got)
	}
}

func TestT2EscalatesThenCapsHighPriority(t *testing.T) {
	p := polca.New(polca.DefaultConfig())
	act := newFake()
	// First T2 tick: only low priority deep-capped.
	tick(p, act, 0.90)
	if act.locks[workload.Low] != 1110 {
		t.Errorf("LP lock = %v, want 1110 at T2", act.locks[workload.Low])
	}
	if act.locks[workload.High] != 0 {
		t.Errorf("HP must not be capped on the first T2 tick")
	}
	// Still above T2 on later ticks: high priority gets the gentle cap.
	tick(p, act, 0.90, 0.90)
	if act.locks[workload.High] != 1305 {
		t.Errorf("HP lock = %v, want 1305 when T2 persists (Table 5)", act.locks[workload.High])
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	p := polca.New(polca.DefaultConfig())
	act := newFake()
	tick(p, act, 0.82)
	if act.locks[workload.Low] != 1275 {
		t.Fatal("T1 did not engage")
	}
	// Drop just below T1 — within the margin: stays engaged.
	tick(p, act, 0.78)
	if act.locks[workload.Low] != 1275 {
		t.Error("uncapped inside hysteresis band (would cause capping storms)")
	}
	// Below T1 - margin: release.
	tick(p, act, 0.74)
	if act.locks[workload.Low] != 0 {
		t.Error("did not uncap below T1 - margin")
	}
}

func TestT2ReleaseFallsBackToT1(t *testing.T) {
	p := polca.New(polca.DefaultConfig())
	act := newFake()
	tick(p, act, 0.91, 0.91, 0.91) // T2 fully escalated
	if act.locks[workload.High] != 1305 {
		t.Fatal("escalation did not happen")
	}
	// Fall to 0.82: below T2-margin but above T1 → LP back to base clock,
	// HP uncapped.
	tick(p, act, 0.82)
	if act.locks[workload.Low] != 1275 {
		t.Errorf("LP lock = %v, want 1275 after T2 release with T1 held", act.locks[workload.Low])
	}
	if act.locks[workload.High] != 0 {
		t.Errorf("HP lock = %v, want released", act.locks[workload.High])
	}
	t1, t2lp, t2hp := p.Engaged()
	if !t1 || t2lp || t2hp {
		t.Errorf("engagement state = %v/%v/%v, want T1 only", t1, t2lp, t2hp)
	}
}

func TestSingleThresholdBaselines(t *testing.T) {
	lp := polca.NewSingleThresholdLowPri()
	act := newFake()
	tick(lp, act, 0.90)
	if act.locks[workload.Low] != 1110 || act.locks[workload.High] != 0 {
		t.Errorf("1-Thresh-Low-Pri locks = %v", act.locks)
	}
	all := polca.NewSingleThresholdAll()
	act = newFake()
	tick(all, act, 0.90)
	if act.locks[workload.Low] != 1110 || act.locks[workload.High] != 1110 {
		t.Errorf("1-Thresh-All locks = %v", act.locks)
	}
	// Below threshold: nothing.
	act = newFake()
	lp2 := polca.NewSingleThresholdLowPri()
	tick(lp2, act, 0.80)
	if act.locks[workload.Low] != 0 {
		t.Error("1-Thresh engaged below its threshold")
	}
}

func TestNoCapNeverCaps(t *testing.T) {
	act := newFake()
	tick(polca.NoCap{}, act, 0.99, 1.1)
	if act.locks[workload.Low] != 0 || act.locks[workload.High] != 0 {
		t.Errorf("No-cap capped: %v", act.locks)
	}
	if (polca.NoCap{}).Name() != "No-cap" {
		t.Error("name wrong")
	}
}

func TestNames(t *testing.T) {
	if polca.New(polca.DefaultConfig()).Name() != "POLCA(T1=80%,T2=89%)" {
		t.Errorf("name = %q", polca.New(polca.DefaultConfig()).Name())
	}
	if polca.NewSingleThresholdLowPri().Name() != "1-Thresh-Low-Pri(89%)" {
		t.Error("baseline name wrong")
	}
	if polca.NewSingleThresholdAll().Name() != "1-Thresh-All(89%)" {
		t.Error("baseline name wrong")
	}
}

func TestTrainThresholds(t *testing.T) {
	ref := trace.ProductionInference().Reference(trace.Day, rand.New(rand.NewSource(5)))
	cfg := polca.TrainThresholds(ref, 1.0, 40*time.Second)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	rise := ref.MaxRise(40 * time.Second)
	// T2 must leave room for the worst 40 s spike before the brake point.
	if cfg.T2+rise > 1.0+0.011 {
		t.Errorf("T2 %.2f + rise %.3f exceeds the brake point", cfg.T2, rise)
	}
	if cfg.T1 >= cfg.T2 {
		t.Errorf("T1 %v not below T2 %v", cfg.T1, cfg.T2)
	}
	// Degenerate trace falls back to defaults.
	flat := stats.Series{Step: time.Second, Values: []float64{0.5, 0.5, 0.5}}
	got := polca.TrainThresholds(flat, 1.0, 40*time.Second)
	if got.Validate() != nil {
		t.Error("fallback config invalid")
	}
}

// Integration: POLCA on a small oversubscribed row keeps power at bay and
// never brakes, while No-cap crosses the brake threshold.
func TestPolicyOnRowIntegration(t *testing.T) {
	cfg := cluster.Production()
	cfg.BaseServers = 10
	cfg.AddedFraction = 0.3

	mkPlan := func() trace.RatePlan {
		shape := cfg.Shape()
		rate := 0.76 * float64(cfg.Servers()) / shape.MeanServiceSec
		rates := make([]float64, 60)
		for i := range rates {
			rates[i] = rate
		}
		return trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32}
	}

	nocap := cluster.MustRow(sim.New(2), cfg, polca.NoCap{}).Run(mkPlan())
	pol := cluster.MustRow(sim.New(2), cfg, polca.New(polca.DefaultConfig())).Run(mkPlan())

	if pol.Util.Peak() >= nocap.Util.Peak() {
		t.Errorf("POLCA peak %.3f should be below No-cap peak %.3f",
			pol.Util.Peak(), nocap.Util.Peak())
	}
	if pol.LockCommands == 0 {
		t.Error("POLCA never issued capping commands at 95%+ utilization")
	}
	if pol.BrakeEvents > nocap.BrakeEvents {
		t.Errorf("POLCA brakes %d exceed No-cap %d", pol.BrakeEvents, nocap.BrakeEvents)
	}
}
