package polca_test

import (
	"strings"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
)

// rampSeries builds a utilization series rising by step per 2s sample.
func rampSeries(start, step float64, n int) stats.Series {
	s := stats.Series{Step: 2 * time.Second, Values: make([]float64, n)}
	for i := range s.Values {
		s.Values[i] = start + float64(i)*step
	}
	return s
}

func TestRetrainKeepsCalmTrace(t *testing.T) {
	// Flat, low utilization: nothing to change.
	in := polca.RetrainInput{
		Util:       rampSeries(0.6, 0.00001, 1000),
		OOBLatency: 40 * time.Second,
		BrakeUtil:  1.0,
	}
	rec := polca.Retrain(polca.DefaultConfig(), in)
	if rec.Changed {
		t.Errorf("calm trace changed thresholds: %s", rec.Describe())
	}
	if len(rec.Reasons) == 0 {
		t.Error("no reasons given")
	}
}

func TestRetrainTightensOnFastRises(t *testing.T) {
	// A trace with violent 40s rises: T2 must drop below 1 - rise.
	s := rampSeries(0.5, 0, 2000)
	for i := 500; i < 520; i++ {
		s.Values[i] = 0.5 + float64(i-500)*0.012 // +22.8% over 40s
	}
	in := polca.RetrainInput{Util: s, OOBLatency: 40 * time.Second, BrakeUtil: 1.0}
	rec := polca.Retrain(polca.DefaultConfig(), in)
	if !rec.Changed {
		t.Fatalf("violent trace did not change thresholds: %s", rec.Describe())
	}
	// One pass moves by the maximum step (5 points).
	if got := polca.DefaultConfig().T2 - rec.Suggested.T2; got < 0.049 || got > 0.051 {
		t.Errorf("single-pass tightening = %.3f, want the 5-point cap", got)
	}
	if rec.Suggested.T1 >= rec.Suggested.T2 {
		t.Error("T1 not below T2")
	}
	if rec.Suggested.Validate() != nil {
		t.Error("suggestion invalid")
	}
	// Repeated passes converge below the analytic ceiling 1 - rise.
	rise := s.MaxRise(40 * time.Second)
	cfg := polca.DefaultConfig()
	for i := 0; i < 10; i++ {
		r := polca.Retrain(cfg, in)
		if !r.Changed {
			break
		}
		cfg = r.Suggested
	}
	if cfg.T2+rise > 1.0+0.011 {
		t.Errorf("converged T2 %.2f still leaves less than the observed rise %.2f", cfg.T2, rise)
	}
}

func TestRetrainReactsToBrakes(t *testing.T) {
	noBrake := polca.Retrain(polca.DefaultConfig(), polca.RetrainInput{
		Util: rampSeries(0.7, 0.0001, 1000), OOBLatency: 40 * time.Second, BrakeUtil: 1.0,
	})
	withBrake := polca.Retrain(polca.DefaultConfig(), polca.RetrainInput{
		Util: rampSeries(0.7, 0.0001, 1000), OOBLatency: 40 * time.Second, BrakeUtil: 1.0,
		BrakeEvents: 3,
	})
	if withBrake.Suggested.T2 >= noBrake.Suggested.T2 {
		t.Errorf("brakes should tighten T2: %.2f vs %.2f",
			withBrake.Suggested.T2, noBrake.Suggested.T2)
	}
	found := false
	for _, r := range withBrake.Reasons {
		if strings.Contains(r, "brake") {
			found = true
		}
	}
	if !found {
		t.Error("brake reason missing")
	}
}

func TestRetrainDegenerateInput(t *testing.T) {
	rec := polca.Retrain(polca.DefaultConfig(), polca.RetrainInput{})
	if rec.Changed {
		t.Error("empty telemetry must not change thresholds")
	}
}

func TestRetrainNeverSuggestsInvalid(t *testing.T) {
	// Catastrophic rises would push T2 below T1's floor; the recommendation
	// must stay valid (fall back if needed).
	s := rampSeries(0.1, 0, 100)
	s.Values[50] = 0.99 // 89% instant rise
	rec := polca.Retrain(polca.DefaultConfig(), polca.RetrainInput{
		Util: s, OOBLatency: 40 * time.Second, BrakeUtil: 1.0,
	})
	if rec.Suggested.Validate() != nil {
		t.Errorf("invalid suggestion: %+v", rec.Suggested)
	}
}

func TestRetrainFromMetricsIntegration(t *testing.T) {
	cfg := cluster.Production()
	cfg.BaseServers = 8
	eng := sim.New(5)
	shape := cfg.Shape()
	rate := 0.65 * float64(cfg.Servers()) / shape.MeanServiceSec
	rates := make([]float64, 60)
	for i := range rates {
		rates[i] = rate
	}
	row := cluster.MustRow(eng, cfg, polca.New(polca.DefaultConfig()))
	m := row.Run(trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32})
	rec := polca.RetrainFromMetrics(polca.DefaultConfig(), m)
	if rec.Suggested.Validate() != nil {
		t.Errorf("invalid suggestion from metrics: %+v", rec.Suggested)
	}
	if !strings.Contains(rec.Describe(), "current:") {
		t.Error("Describe missing content")
	}
}
