package polca_test

import (
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/workload"
)

// captureCtrl records every reading delivered through the guard.
type captureCtrl struct {
	utils  []float64
	resets int
}

func (c *captureCtrl) Name() string { return "capture" }
func (c *captureCtrl) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	c.utils = append(c.utils, util)
}
func (c *captureCtrl) Reset() { c.resets++ }

// guardTick drives n readings through g at the 2 s telemetry cadence.
func guardTick(g *polca.Guard, act *fakeActuator, utils ...float64) {
	now := sim.Time(0)
	for _, u := range utils {
		now += 2 * time.Second
		g.OnTelemetry(now, u, act)
	}
}

func TestGuardConfigValidation(t *testing.T) {
	if err := polca.DefaultGuardConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*polca.GuardConfig){
		func(c *polca.GuardConfig) { c.Window = 0 },
		func(c *polca.GuardConfig) { c.StuckAfter = 1 },
		func(c *polca.GuardConfig) { c.StuckMinUtil = -0.1 },
		func(c *polca.GuardConfig) { c.FailSafeAfter = 0 },
		func(c *polca.GuardConfig) { c.MaxStep = 0 },
		func(c *polca.GuardConfig) { c.FailSafeLPMHz = 0 },
	}
	for i, mutate := range bad {
		cfg := polca.DefaultGuardConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestGuardPassesCleanReadings(t *testing.T) {
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, polca.DefaultGuardConfig())
	in := []float64{0.60, 0.62, 0.65, 0.63, 0.66, 0.70}
	guardTick(g, newFake(), in...)
	if len(inner.utils) != len(in) {
		t.Fatalf("delivered %d of %d readings", len(inner.utils), len(in))
	}
	for i, u := range in {
		if inner.utils[i] != u {
			t.Errorf("reading %d: got %v, want %v untouched", i, inner.utils[i], u)
		}
	}
	if s := g.Stats(); s.Delivered != len(in) || s.Outliers != 0 || s.StuckTicks != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGuardFiltersSpike(t *testing.T) {
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, polca.DefaultGuardConfig())
	guardTick(g, newFake(), 0.60, 0.61, 0.62, 0.99, 0.62)
	if s := g.Stats(); s.Outliers != 1 {
		t.Fatalf("outliers = %d, want 1; delivered %v", s.Outliers, inner.utils)
	}
	// The spike tick was delivered, but as the window median, not 0.99.
	spiked := inner.utils[3]
	if spiked == 0.99 || spiked > 0.63 {
		t.Errorf("spike delivered as %v, want window median", spiked)
	}
	// A genuine sustained rise passes: the window corroborates it.
	inner.utils = nil
	guardTick(g, newFake(), 0.85, 0.86, 0.87)
	if got := inner.utils[len(inner.utils)-1]; got != 0.87 {
		t.Errorf("sustained rise delivered as %v, want 0.87", got)
	}
}

func TestGuardDownwardJumpPasses(t *testing.T) {
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, polca.DefaultGuardConfig())
	guardTick(g, newFake(), 0.80, 0.81, 0.20)
	// Treating a real reading as too high only caps early; a downward jump
	// must reach the policy immediately so it can uncap.
	if got := inner.utils[2]; got != 0.20 {
		t.Errorf("downward jump delivered as %v, want 0.20", got)
	}
}

func TestGuardStuckSensor(t *testing.T) {
	cfg := polca.DefaultGuardConfig()
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, cfg)
	act := newFake()
	// A busy row frozen at exactly 0.80: after StuckAfter repeats the ticks
	// are discarded and the inner policy is held at the last good reading.
	reads := []float64{0.78, 0.80, 0.80, 0.80, 0.80, 0.80, 0.80}
	guardTick(g, act, reads...)
	s := g.Stats()
	if s.StuckTicks == 0 {
		t.Fatal("frozen busy sensor not detected")
	}
	for _, u := range inner.utils[len(inner.utils)-s.StuckTicks:] {
		if u != inner.utils[len(inner.utils)-s.StuckTicks-1] {
			t.Errorf("stuck tick delivered %v, want hold-last-good", u)
		}
	}
}

func TestGuardIdlePlateauIsNotStuck(t *testing.T) {
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, polca.DefaultGuardConfig())
	// An idle row genuinely plateaus: identical readings below StuckMinUtil
	// must pass untouched.
	reads := make([]float64, 20)
	for i := range reads {
		reads[i] = 0.35
	}
	guardTick(g, newFake(), reads...)
	if s := g.Stats(); s.StuckTicks != 0 || s.Delivered != len(reads) {
		t.Errorf("idle plateau misdetected: %+v", s)
	}
}

func TestGuardFailSafeEngageAndRelease(t *testing.T) {
	cfg := polca.DefaultGuardConfig()
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, cfg)
	act := newFake()

	// One good reading, then a blackout longer than FailSafeAfter.
	g.OnTelemetry(2*time.Second, 0.70, act)
	now := sim.Time(2 * time.Second)
	for i := 0; i < cfg.FailSafeAfter+2; i++ {
		now += 2 * time.Second
		g.OnTelemetryLoss(now, act)
	}
	if !g.FailSafeEngaged() {
		t.Fatal("fail-safe should engage after FailSafeAfter lost ticks")
	}
	if got := act.PoolLock(workload.Low); got != cfg.FailSafeLPMHz {
		t.Errorf("LP lock = %v, want fail-safe %v", got, cfg.FailSafeLPMHz)
	}
	if got := act.PoolLock(workload.High); got != cfg.FailSafeHPMHz {
		t.Errorf("HP lock = %v, want fail-safe %v", got, cfg.FailSafeHPMHz)
	}
	if s := g.Stats(); s.FailSafeEngagements != 1 || s.LostTicks != cfg.FailSafeAfter+2 {
		t.Errorf("stats = %+v", s)
	}
	// Before the fail-safe, the inner policy was held at the last good value.
	for _, u := range inner.utils {
		if u != 0.70 {
			t.Errorf("hold-last-good delivered %v, want 0.70", u)
		}
	}

	// A valid reading releases the fail-safe and resumes delivery.
	delivered := len(inner.utils)
	g.OnTelemetry(now+2*time.Second, 0.55, act)
	if g.FailSafeEngaged() {
		t.Error("fail-safe should release on the first valid reading")
	}
	if len(inner.utils) != delivered+1 || inner.utils[len(inner.utils)-1] != 0.55 {
		t.Errorf("post-release delivery = %v", inner.utils[delivered:])
	}
}

func TestGuardReset(t *testing.T) {
	cfg := polca.DefaultGuardConfig()
	inner := &captureCtrl{}
	g := polca.NewGuard(inner, cfg)
	act := newFake()
	g.OnTelemetry(2*time.Second, 0.7, act)
	for i := 0; i < cfg.FailSafeAfter; i++ {
		g.OnTelemetryLoss(sim.Time(4+2*i)*time.Second, act)
	}
	if !g.FailSafeEngaged() {
		t.Fatal("precondition: fail-safe engaged")
	}
	g.Reset()
	if g.FailSafeEngaged() {
		t.Error("Reset should clear the fail-safe")
	}
	if inner.resets != 1 {
		t.Errorf("inner resets = %d, want 1 (cold restart cascades)", inner.resets)
	}
}

func TestGuardName(t *testing.T) {
	g := polca.NewGuard(polca.NoCap{}, polca.DefaultGuardConfig())
	if got := g.Name(); got != "Guard(No-cap)" {
		t.Errorf("Name() = %q", got)
	}
	if _, ok := g.Inner().(polca.NoCap); !ok {
		t.Error("Inner() should return the wrapped policy")
	}
}
