package polca_test

import (
	"testing"

	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/workload"
)

// transitions extracts (reason) in order from the traced threshold events.
func reasons(tr *obs.Tracer) []string {
	var out []string
	for _, ev := range tr.Events() {
		if ev.Kind == obs.KindThreshold {
			out = append(out, ev.Reason)
		}
	}
	return out
}

func TestPolicyEmitsThresholdEvents(t *testing.T) {
	act := newFake()
	act.obs = &obs.Observer{Tracer: obs.NewTracer()}
	p := polca.New(polca.DefaultConfig())

	// Climb through T1 and T2, hold hot so the HP action arms and fires,
	// then fall back below every release point.
	tick(p, act, 0.70, 0.82, 0.90, 0.90, 0.90, 0.70)

	got := reasons(act.obs.Tracer)
	want := []string{
		"t1.engage",      // 0.82
		"t2.lp.engage",   // 0.90
		"t2.hp.engage",   // third hot tick (armed on the second)
		"t2.lp.release",  // 0.70
		"t2.hp.release",
		"t1.release",
	}
	if len(got) != len(want) {
		t.Fatalf("threshold events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	for _, ev := range act.obs.Tracer.Events() {
		if ev.Label == "" || ev.Value == 0 {
			t.Fatalf("threshold event missing label or utilization: %+v", ev)
		}
	}
}

func TestPolicyEmitsNothingWhenDisabled(t *testing.T) {
	// A nil observer must not panic anywhere in the decision path.
	act := newFake()
	p := polca.New(polca.DefaultConfig())
	tick(p, act, 0.70, 0.90, 0.90, 0.90, 0.70)
	if got := act.locks[workload.Low]; got != 0 {
		t.Fatalf("low pool lock = %v, want released", got)
	}
}

func TestSingleThresholdEmitsEngageRelease(t *testing.T) {
	act := newFake()
	act.obs = &obs.Observer{Tracer: obs.NewTracer()}
	s := polca.NewSingleThresholdAll()
	tick(s, act, 0.90, 0.90, 0.70)
	got := reasons(act.obs.Tracer)
	if len(got) != 2 || got[0] != "engage" || got[1] != "release" {
		t.Fatalf("events = %v, want [engage release]", got)
	}
}

func TestLadderEmitsRungEvents(t *testing.T) {
	act := newFake()
	act.obs = &obs.Observer{Tracer: obs.NewTracer()}
	l, err := polca.FromConfig(polca.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tick(l, act, 0.90, 0.90, 0.90, 0.70)
	engages, releases := 0, 0
	for _, r := range reasons(act.obs.Tracer) {
		switch r {
		case "rung.engage":
			engages++
		case "rung.release":
			releases++
		}
	}
	// Three rungs engage (T1-LP, T2-LP, delayed T2-HP) and all release.
	if engages != 3 || releases != 3 {
		t.Fatalf("engages=%d releases=%d, want 3/3 (events: %v)", engages, releases, reasons(act.obs.Tracer))
	}
	for _, ev := range act.obs.Tracer.Events() {
		if ev.Kind == obs.KindThreshold && ev.MHz == 0 {
			t.Fatalf("rung event missing lock frequency: %+v", ev)
		}
	}
}
