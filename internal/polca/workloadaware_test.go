package polca_test

import (
	"testing"

	"polca/internal/llm"
	"polca/internal/polca"
	"polca/internal/workload"
)

func TestFrequencyPlannerProfiles(t *testing.T) {
	fp, err := polca.NewFrequencyPlanner(
		llm.MustByName("BLOOM-176B"), llm.FP16, workload.Table6(),
		[]float64{1350, 1275, 1110})
	if err != nil {
		t.Fatal(err)
	}
	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		profs := fp.Profiles(pri)
		if len(profs) != 3 {
			t.Fatalf("%v profiles = %d, want 3", pri, len(profs))
		}
		// Deeper caps cost more performance and save more power.
		for i := 1; i < len(profs); i++ {
			if profs[i].ClockMHz >= profs[i-1].ClockMHz {
				t.Fatal("profiles not clock-descending")
			}
			if profs[i].PerfLoss < profs[i-1].PerfLoss-1e-9 {
				t.Errorf("%v: perf loss not monotone: %+v", pri, profs)
			}
			if profs[i].PowerSave < profs[i-1].PowerSave-1e-9 {
				t.Errorf("%v: power save not monotone: %+v", pri, profs)
			}
		}
		// The superlinear trade-off holds in the profiles too.
		last := profs[len(profs)-1]
		if last.PowerSave < last.PerfLoss {
			t.Errorf("%v at %v MHz: save %.3f below loss %.3f", pri, last.ClockMHz, last.PowerSave, last.PerfLoss)
		}
	}
}

func TestDeepestWithin(t *testing.T) {
	fp, err := polca.NewFrequencyPlanner(
		llm.MustByName("BLOOM-176B"), llm.FP16, workload.Table6(),
		[]float64{1350, 1275, 1110})
	if err != nil {
		t.Fatal(err)
	}
	// A generous budget allows the deepest candidate.
	if got := fp.DeepestWithin(workload.Low, 0.5); got != 1110 {
		t.Errorf("deep budget -> %v, want 1110", got)
	}
	// A zero budget allows nothing.
	if got := fp.DeepestWithin(workload.Low, 0); got != 0 {
		t.Errorf("zero budget -> %v, want 0", got)
	}
	// Budgets in between pick an intermediate clock.
	mid := fp.DeepestWithin(workload.Low, 0.01)
	if mid == 0 || mid == 1110 {
		t.Logf("1%% budget -> %v MHz (mix-dependent)", mid)
	}
}

func TestPlannerErrors(t *testing.T) {
	if _, err := polca.NewFrequencyPlanner(llm.MustByName("BLOOM-176B"), llm.FP16, workload.Table6(), nil); err == nil {
		t.Error("want error for no candidates")
	}
	// A class table with no high-priority traffic cannot be profiled.
	lowOnly := []workload.Class{{Name: "x", PromptMin: 128, PromptMax: 256, OutputMin: 64, OutputMax: 128, Share: 1, LowShare: 1}}
	if _, err := polca.NewFrequencyPlanner(llm.MustByName("BLOOM-176B"), llm.FP16, lowOnly, []float64{1275}); err == nil {
		t.Error("want error for one-sided priority mix")
	}
}

func TestWorkloadAwarePolicy(t *testing.T) {
	w, err := polca.NewWorkloadAware(polca.DefaultConfig(),
		llm.MustByName("BLOOM-176B"), llm.FP16, workload.Table6())
	if err != nil {
		t.Fatal(err)
	}
	lpBase, lpDeep, hpCap := w.Frequencies()
	// Ordering invariants: the T2 LP action is at least as deep as T1's,
	// and the HP cap is gentler than the LP deep cap.
	if lpDeep > lpBase {
		t.Errorf("LP deep %v above LP base %v", lpDeep, lpBase)
	}
	if hpCap < lpDeep {
		t.Errorf("HP cap %v deeper than LP deep %v (priorities inverted)", hpCap, lpDeep)
	}
	if w.Name() == "" {
		t.Error("empty name")
	}

	// Behaves like a dual-threshold controller.
	act := newFake()
	tick(w, act, 0.90)
	if act.locks[workload.Low] != lpDeep {
		t.Errorf("LP lock at T2 = %v, want %v", act.locks[workload.Low], lpDeep)
	}
	tick(w, act, 0.90, 0.90)
	if act.locks[workload.High] != hpCap {
		t.Errorf("HP lock after sustained T2 = %v, want %v", act.locks[workload.High], hpCap)
	}
	tick(w, act, 0.5)
	if act.locks[workload.Low] != 0 || act.locks[workload.High] != 0 {
		t.Error("did not release at low utilization")
	}
}

func TestWorkloadAwarePlansDeeperLPCap(t *testing.T) {
	// The point of the extension: the low-priority SLO budget (5% p50)
	// affords a deeper cap than Table 5's static 1110 MHz, reclaiming more
	// power from the workloads that can afford it — while the strict 1%
	// high-priority budget keeps the HP cap conservative (our profiles rate
	// the static 1305 MHz at just over 1% for the Search-heavy HP mix).
	w, err := polca.NewWorkloadAware(polca.DefaultConfig(),
		llm.MustByName("BLOOM-176B"), llm.FP16, workload.Table6())
	if err != nil {
		t.Fatal(err)
	}
	_, lpDeep, hpCap := w.Frequencies()
	if lpDeep > polca.DefaultConfig().LPDeepMHz {
		t.Errorf("planned LP deep cap %v is shallower than the static 1110", lpDeep)
	}
	// The HP cap must respect its own profiled budget.
	fp, err := polca.NewFrequencyPlanner(llm.MustByName("BLOOM-176B"), llm.FP16,
		workload.Table6(), []float64{hpCap})
	if err != nil {
		t.Fatal(err)
	}
	if loss := fp.Profiles(workload.High)[0].PerfLoss; loss > 0.011 {
		t.Errorf("HP cap %v MHz costs %.4f slowdown, above the 1%% budget", hpCap, loss)
	}
}
