package polca

import (
	"fmt"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/workload"
)

// Stage implements cluster.StageReporter: 0 = uncapped, 1 = T1, 2 = T2
// low-priority, 3 = T2 both pools (the same encoding observeState writes
// to the ctrl.stage TSDB series).
func (p *Policy) Stage() int {
	switch {
	case p.t2HPEngaged:
		return 3
	case p.t2LPEngaged:
		return 2
	case p.t1Engaged:
		return 1
	}
	return 0
}

// Stage implements cluster.StageReporter (0 or 1).
func (s *SingleThreshold) Stage() int {
	if s.engaged {
		return 1
	}
	return 0
}

// Stage implements cluster.StageReporter (always 0).
func (NoCap) Stage() int { return 0 }

// Stage implements cluster.StageReporter: the number of engaged rungs.
func (l *Ladder) Stage() int {
	n := 0
	for _, e := range l.engaged {
		if e {
			n++
		}
	}
	return n
}

// Stage implements cluster.StageReporter: the wrapped policy's stage (the
// guard itself adds no capping stages; its fail-safe is reported
// separately through FailSafeEngaged).
func (g *Guard) Stage() int {
	if sr, ok := g.inner.(cluster.StageReporter); ok {
		return sr.Stage()
	}
	return 0
}

// DescribeController renders a controller's full configuration as the
// obs.PolicySpec the decision-log header carries, so an offline replay can
// rebuild the deployed policy (and variants of it) without the original
// command line. A Guard wrapper is unwrapped into the returned GuardSpec.
// Controllers outside this package's families are not describable.
func DescribeController(ctrl cluster.Controller) (obs.PolicySpec, *obs.GuardSpec, error) {
	var gs *obs.GuardSpec
	if g, ok := ctrl.(*Guard); ok {
		cfg := g.cfg
		gs = &obs.GuardSpec{
			Window:        cfg.Window,
			StuckAfter:    cfg.StuckAfter,
			StuckMinUtil:  cfg.StuckMinUtil,
			FailSafeAfter: cfg.FailSafeAfter,
			MaxStep:       cfg.MaxStep,
			FailSafeLPMHz: cfg.FailSafeLPMHz,
			FailSafeHPMHz: cfg.FailSafeHPMHz,
		}
		ctrl = g.inner
	}
	switch c := ctrl.(type) {
	case *Policy:
		cfg := c.cfg
		return obs.PolicySpec{
			Kind: "polca",
			T1:   cfg.T1, T2: cfg.T2, UncapMargin: cfg.UncapMargin,
			LPBaseMHz: cfg.LPBaseMHz, LPDeepMHz: cfg.LPDeepMHz, HPCapMHz: cfg.HPCapMHz,
		}, gs, nil
	case *SingleThreshold:
		return obs.PolicySpec{
			Kind:      "1t",
			Threshold: c.Threshold, Margin: c.Margin, LockMHz: c.LockMHz, All: c.AllPriorities,
		}, gs, nil
	case *Ladder:
		spec := obs.PolicySpec{Kind: "ladder", Name: c.name}
		for _, r := range c.rungs {
			spec.Rungs = append(spec.Rungs, obs.RungSpec{
				Trigger: r.Trigger, Margin: r.Margin, Pool: int8(r.Pool),
				LockMHz: r.LockMHz, Delay: r.Delay,
			})
		}
		return spec, gs, nil
	case NoCap:
		return obs.PolicySpec{Kind: "nocap"}, gs, nil
	}
	return obs.PolicySpec{}, nil, fmt.Errorf("polca: cannot describe controller %T", ctrl)
}

// ControllerFromSpec is the inverse of DescribeController: it rebuilds a
// fresh (cold-state) controller from a decision-log header, wrapping it in
// a Guard when guard is non-nil. Round-tripping through the two functions
// is locked by TestSpecRoundTrip.
func ControllerFromSpec(spec obs.PolicySpec, guard *obs.GuardSpec) (cluster.Controller, error) {
	var ctrl cluster.Controller
	switch spec.Kind {
	case "polca":
		cfg := Config{
			T1: spec.T1, T2: spec.T2, UncapMargin: spec.UncapMargin,
			LPBaseMHz: spec.LPBaseMHz, LPDeepMHz: spec.LPDeepMHz, HPCapMHz: spec.HPCapMHz,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		ctrl = New(cfg)
	case "1t":
		if spec.Threshold <= 0 || spec.Margin <= 0 || spec.LockMHz <= 0 {
			return nil, fmt.Errorf("polca: bad 1t spec %+v", spec)
		}
		ctrl = &SingleThreshold{
			Threshold: spec.Threshold, Margin: spec.Margin,
			LockMHz: spec.LockMHz, AllPriorities: spec.All,
		}
	case "ladder":
		rungs := make([]Rung, 0, len(spec.Rungs))
		for _, r := range spec.Rungs {
			rungs = append(rungs, Rung{
				Trigger: r.Trigger, Margin: r.Margin, Pool: workload.Priority(r.Pool),
				LockMHz: r.LockMHz, Delay: r.Delay,
			})
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("Ladder(%d rungs)", len(rungs))
		}
		l, err := NewLadder(name, rungs)
		if err != nil {
			return nil, err
		}
		ctrl = l
	case "nocap":
		ctrl = NoCap{}
	default:
		return nil, fmt.Errorf("polca: unknown policy kind %q", spec.Kind)
	}
	if guard != nil {
		cfg := GuardConfig{
			Window:        guard.Window,
			StuckAfter:    guard.StuckAfter,
			StuckMinUtil:  guard.StuckMinUtil,
			FailSafeAfter: guard.FailSafeAfter,
			MaxStep:       guard.MaxStep,
			FailSafeLPMHz: guard.FailSafeLPMHz,
			FailSafeHPMHz: guard.FailSafeHPMHz,
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		ctrl = NewGuard(ctrl, cfg)
	}
	return ctrl, nil
}

var (
	_ cluster.StageReporter = (*Policy)(nil)
	_ cluster.StageReporter = (*SingleThreshold)(nil)
	_ cluster.StageReporter = NoCap{}
	_ cluster.StageReporter = (*Ladder)(nil)
	_ cluster.StageReporter = (*Guard)(nil)
)
