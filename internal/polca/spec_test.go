package polca

import (
	"reflect"
	"testing"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/workload"
)

func TestSpecRoundTrip(t *testing.T) {
	ladder, err := FromConfig(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrls := []cluster.Controller{
		New(DefaultConfig()),
		NewSingleThresholdLowPri(),
		NewSingleThresholdAll(),
		NoCap{},
		ladder,
		NewGuard(New(DefaultConfig()), DefaultGuardConfig()),
		NewGuard(NewSingleThresholdAll(), DefaultGuardConfig()),
	}
	for _, ctrl := range ctrls {
		spec, gs, err := DescribeController(ctrl)
		if err != nil {
			t.Fatalf("%s: describe: %v", ctrl.Name(), err)
		}
		rebuilt, err := ControllerFromSpec(spec, gs)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", ctrl.Name(), err)
		}
		if rebuilt.Name() != ctrl.Name() {
			t.Fatalf("rebuilt name %q, want %q", rebuilt.Name(), ctrl.Name())
		}
		spec2, gs2, err := DescribeController(rebuilt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(spec, spec2) {
			t.Fatalf("%s: spec did not round-trip:\n got %+v\nwant %+v", ctrl.Name(), spec2, spec)
		}
		if (gs == nil) != (gs2 == nil) {
			t.Fatalf("%s: guard presence did not round-trip", ctrl.Name())
		}
		if gs != nil && *gs != *gs2 {
			t.Fatalf("%s: guard spec did not round-trip:\n got %+v\nwant %+v", ctrl.Name(), *gs2, *gs)
		}
	}

	if _, err := ControllerFromSpec(obs.PolicySpec{Kind: "zorp"}, nil); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if _, err := ControllerFromSpec(obs.PolicySpec{Kind: "polca"}, nil); err == nil {
		t.Fatal("invalid polca config should fail")
	}
}

func TestStageReporters(t *testing.T) {
	p := New(DefaultConfig())
	if p.Stage() != 0 {
		t.Fatal("cold policy stage should be 0")
	}
	p.t1Engaged = true
	if p.Stage() != 1 {
		t.Fatal("t1 stage should be 1")
	}
	p.t2LPEngaged = true
	if p.Stage() != 2 {
		t.Fatal("t2lp stage should be 2")
	}
	p.t2HPEngaged = true
	if p.Stage() != 3 {
		t.Fatal("t2hp stage should be 3")
	}

	s := NewSingleThresholdAll()
	if s.Stage() != 0 {
		t.Fatal("cold 1t stage should be 0")
	}
	s.engaged = true
	if s.Stage() != 1 {
		t.Fatal("engaged 1t stage should be 1")
	}

	l, err := FromConfig(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l.engaged[0], l.engaged[2] = true, true
	if l.Stage() != 2 {
		t.Fatal("ladder stage should count engaged rungs")
	}

	g := NewGuard(p, DefaultGuardConfig())
	if g.Stage() != 3 {
		t.Fatal("guard stage should delegate to inner")
	}
	if NoCap.Stage(NoCap{}) != 0 {
		t.Fatal("nocap stage should be 0")
	}
	_ = workload.Low
}
