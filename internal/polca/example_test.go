package polca_test

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/polca"
	"polca/internal/sim"
	"polca/internal/trace"
	"polca/internal/workload"
)

// ExampleNew shows the minimal end-to-end use of the library: a production
// row, 30% oversubscription, the default dual-threshold policy, one
// simulated hour of flat traffic.
func ExampleNew() {
	cfg := cluster.Production()
	cfg.BaseServers = 8
	cfg.AddedFraction = 0.30

	eng := sim.New(42)
	rate := 0.6 * float64(cfg.Servers()) / cfg.Shape().MeanServiceSec
	rates := make([]float64, 60)
	for i := range rates {
		rates[i] = rate
	}
	arrivals := trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32}

	row := cluster.MustRow(eng, cfg, polca.New(polca.DefaultConfig()))
	m := row.Run(arrivals)

	fmt.Printf("policy: %s\n", m.Policy)
	fmt.Printf("brakes: %d\n", m.BrakeEvents)
	fmt.Printf("served both priorities: %v\n",
		m.Completed[workload.Low] > 0 && m.Completed[workload.High] > 0)
	// Output:
	// policy: POLCA(T1=80%,T2=89%)
	// brakes: 0
	// served both priorities: true
}

// ExampleTrainThresholds derives T1/T2 from a historical power trace the
// way §6.3 describes.
func ExampleTrainThresholds() {
	ref := trace.ProductionInference().Reference(24*time.Hour, sim.New(1).Rand("trace"))
	cfg := polca.TrainThresholds(ref, 1.0, 40*time.Second)
	fmt.Printf("T1 below T2: %v\n", cfg.T1 < cfg.T2)
	fmt.Printf("T2 leaves headroom below the brake: %v\n", cfg.T2 < 1.0)
	// Output:
	// T1 below T2: true
	// T2 leaves headroom below the brake: true
}
