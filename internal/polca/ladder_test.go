package polca_test

import (
	"strings"
	"testing"

	"polca/internal/polca"
	"polca/internal/workload"
)

func TestLadderValidation(t *testing.T) {
	if _, err := polca.NewLadder("x", nil); err == nil {
		t.Error("empty ladder should fail")
	}
	bad := [][]polca.Rung{
		{{Trigger: 0, Margin: 0.05, LockMHz: 1}},
		{{Trigger: 0.8, Margin: 0, LockMHz: 1}},
		{{Trigger: 0.8, Margin: 0.9, LockMHz: 1}},
		{{Trigger: 0.8, Margin: 0.05, LockMHz: 0}},
		{{Trigger: 0.8, Margin: 0.05, LockMHz: 1, Delay: -1}},
	}
	for i, rungs := range bad {
		if _, err := polca.NewLadder("x", rungs); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestLadderMatchesDualThresholdPolicy(t *testing.T) {
	// The ladder expressing the paper's config must act like the
	// hand-written dual-threshold state machine across a utilization
	// journey covering engage, escalate, hysteresis, and release.
	ladder, err := polca.FromConfig(polca.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	policy := polca.New(polca.DefaultConfig())

	journey := []float64{
		0.70, 0.82, 0.85, 0.90, 0.90, 0.90, // climb through T1, T2, escalate
		0.86, 0.82, 0.78, 0.74, 0.70, // descend through the bands
		0.90, 0.90, 0.90, // re-engage
	}
	la, pa := newFake(), newFake()
	for _, u := range journey {
		tick(ladder, la, u)
		tick(policy, pa, u)
		for _, pool := range []workload.Priority{workload.Low, workload.High} {
			if la.locks[pool] != pa.locks[pool] {
				t.Fatalf("at util %.2f: ladder %s=%v, policy %s=%v",
					u, pool, la.locks[pool], pool, pa.locks[pool])
			}
		}
	}
}

func TestLadderThreePriorityStyle(t *testing.T) {
	// A deeper ladder: three escalating LP actions plus a guarded HP one.
	ladder, err := polca.NewLadder("3-step", []polca.Rung{
		{Trigger: 0.75, Margin: 0.05, Pool: workload.Low, LockMHz: 1335},
		{Trigger: 0.82, Margin: 0.05, Pool: workload.Low, LockMHz: 1200},
		{Trigger: 0.90, Margin: 0.05, Pool: workload.Low, LockMHz: 1050},
		{Trigger: 0.90, Margin: 0.05, Pool: workload.High, LockMHz: 1305, Delay: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	act := newFake()
	tick(ladder, act, 0.78)
	if act.locks[workload.Low] != 1335 {
		t.Errorf("first rung lock = %v", act.locks[workload.Low])
	}
	tick(ladder, act, 0.85)
	if act.locks[workload.Low] != 1200 {
		t.Errorf("second rung lock = %v", act.locks[workload.Low])
	}
	tick(ladder, act, 0.91)
	if act.locks[workload.Low] != 1050 {
		t.Errorf("third rung lock = %v", act.locks[workload.Low])
	}
	if act.locks[workload.High] != 0 {
		t.Error("delayed HP rung engaged immediately")
	}
	tick(ladder, act, 0.91)
	if act.locks[workload.High] != 1305 {
		t.Error("delayed HP rung did not engage on the second hot tick")
	}
	// Deep release unlocks everything.
	tick(ladder, act, 0.60)
	if act.locks[workload.Low] != 0 || act.locks[workload.High] != 0 {
		t.Errorf("release failed: %v", act.locks)
	}
}

func TestLadderHysteresisHoldsState(t *testing.T) {
	ladder, err := polca.NewLadder("h", []polca.Rung{
		{Trigger: 0.80, Margin: 0.05, Pool: workload.Low, LockMHz: 1275},
	})
	if err != nil {
		t.Fatal(err)
	}
	act := newFake()
	tick(ladder, act, 0.81)
	tick(ladder, act, 0.77) // inside the band
	if act.locks[workload.Low] != 1275 {
		t.Error("released inside the hysteresis band")
	}
	tick(ladder, act, 0.74)
	if act.locks[workload.Low] != 0 {
		t.Error("did not release below the band")
	}
}

func TestLadderDeepestWinsPerPool(t *testing.T) {
	ladder, err := polca.NewLadder("d", []polca.Rung{
		{Trigger: 0.70, Margin: 0.05, Pool: workload.Low, LockMHz: 1300},
		{Trigger: 0.75, Margin: 0.05, Pool: workload.Low, LockMHz: 1100},
	})
	if err != nil {
		t.Fatal(err)
	}
	act := newFake()
	tick(ladder, act, 0.80)
	if act.locks[workload.Low] != 1100 {
		t.Errorf("deepest engaged rung should win: %v", act.locks[workload.Low])
	}
}

func TestLadderDescribe(t *testing.T) {
	ladder, _ := polca.FromConfig(polca.DefaultConfig())
	act := newFake()
	tick(ladder, act, 0.85)
	out := ladder.Describe()
	if !strings.Contains(out, "80%") || !strings.Contains(out, "1275") {
		t.Errorf("describe missing content:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("engaged rung not marked")
	}
	if len(ladder.Rungs()) != 3 {
		t.Errorf("rungs = %d", len(ladder.Rungs()))
	}
}
