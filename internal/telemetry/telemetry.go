// Package telemetry models the power-monitoring interfaces of an LLM
// cluster (paper Table 1): in-band DCGM at 100 ms, out-of-band IPMI and
// SMBPBI at seconds granularity, and the row manager at 2 s. It provides
// the counter timeline abstraction the profiler samples, including the
// interval-update lag the paper observes on activity counters and the
// peak-based alignment used to correct for it.
package telemetry

import (
	"fmt"
	"sort"
	"time"

	"polca/internal/gpu"
	"polca/internal/stats"
)

// Path distinguishes in-band (driver-level) from out-of-band (BMC-level)
// monitoring interfaces.
type Path int

const (
	InBand Path = iota
	OutOfBand
)

// String returns "IB" or "OOB".
func (p Path) String() string {
	if p == InBand {
		return "IB"
	}
	return "OOB"
}

// Interface describes one monitoring mechanism (one row of Table 1).
type Interface struct {
	Name        string
	Granularity string // what it measures: GPU, server, row of racks, ...
	Path        Path
	Interval    time.Duration // practical sampling interval
	Reliable    bool          // OOB GPU interfaces may fail silently (§3.3)
}

// Table1 returns the paper's monitoring-interface inventory.
func Table1() []Interface {
	return []Interface{
		{Name: "RAPL", Granularity: "CPU & DRAM", Path: InBand, Interval: 10 * time.Millisecond, Reliable: true},
		{Name: "DCGM", Granularity: "GPU", Path: InBand, Interval: 100 * time.Millisecond, Reliable: true},
		{Name: "SMBPBI", Granularity: "GPU", Path: OutOfBand, Interval: 5 * time.Second, Reliable: false},
		{Name: "IPMI", Granularity: "Server", Path: OutOfBand, Interval: 3 * time.Second, Reliable: true},
		{Name: "RowManager", Granularity: "Row of racks", Path: OutOfBand, Interval: 2 * time.Second, Reliable: true},
	}
}

// ByName returns the Table 1 interface with the given name.
func ByName(name string) (Interface, error) {
	for _, i := range Table1() {
		if i.Name == name {
			return i, nil
		}
	}
	return Interface{}, fmt.Errorf("telemetry: unknown interface %q", name)
}

// segment is one piecewise-constant stretch of counters.
type segment struct {
	start, end time.Duration
	ctr        gpu.Counters
}

// Timeline is a piecewise-constant record of GPU counters over virtual
// time, built by appending execution results back to back. It is the raw
// material DCGM-style samplers draw from.
type Timeline struct {
	segs []segment
	end  time.Duration
	idle gpu.Counters // counters reported for gaps and beyond the end
}

// NewTimeline returns an empty timeline whose gaps report the given idle
// counter values.
func NewTimeline(idle gpu.Counters) *Timeline {
	return &Timeline{idle: idle}
}

// End returns the time at which the last appended segment finishes.
func (t *Timeline) End() time.Duration { return t.end }

// Append adds an execution at the given start time (usually End() for
// back-to-back phases) and returns the time it finishes. Appends must be
// in non-decreasing start order; gaps are reported as idle. An append
// before the current end — possible when callers compute start times from
// external input — is rejected with an error rather than corrupting the
// piecewise-constant invariant.
func (t *Timeline) Append(start time.Duration, e gpu.Exec) (time.Duration, error) {
	if start < t.end {
		return t.end, fmt.Errorf("telemetry: append at %v before timeline end %v", start, t.end)
	}
	at := start
	for _, s := range e.Segments {
		if s.Duration <= 0 {
			continue
		}
		t.segs = append(t.segs, segment{start: at, end: at + s.Duration, ctr: s.Counters})
		at += s.Duration
	}
	if at > t.end {
		t.end = at
	}
	return at, nil
}

// AppendIdle advances the timeline by d of idle time and returns the new end.
func (t *Timeline) AppendIdle(d time.Duration) time.Duration {
	t.end += d
	return t.end
}

// At returns the counters in effect at time ts.
func (t *Timeline) At(ts time.Duration) gpu.Counters {
	if ts >= t.end || len(t.segs) == 0 {
		return t.idle
	}
	// Find the last segment starting at or before ts.
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].start > ts }) - 1
	if i < 0 {
		return t.idle
	}
	// The segment may have ended before ts if a gap follows.
	if ts >= t.segs[i].end {
		return t.idle
	}
	return t.segs[i].ctr
}

// MeanBetween returns the time-weighted mean of sel over [from, to).
func (t *Timeline) MeanBetween(from, to time.Duration, sel func(gpu.Counters) float64) float64 {
	if to <= from {
		return sel(t.At(from))
	}
	var weighted float64
	cur := from
	for cur < to {
		ctr := t.At(cur)
		next := t.nextBoundary(cur)
		if next > to || next <= cur {
			next = to
		}
		weighted += sel(ctr) * float64(next-cur)
		cur = next
	}
	return weighted / float64(to-from)
}

// nextBoundary returns the first segment boundary (start or end) strictly
// after ts, or the timeline end.
func (t *Timeline) nextBoundary(ts time.Duration) time.Duration {
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].start > ts })
	best := ts
	if i < len(t.segs) {
		best = t.segs[i].start
	} else if t.end > ts {
		best = t.end
	}
	// The enclosing segment may end (into a gap) before the next start.
	if i > 0 {
		if end := t.segs[i-1].end; end > ts && (end < best || best == ts) {
			best = end
		}
	}
	return best
}

// SampleInstant samples sel at multiples of step over [0, End()), the way
// DCGM reports instantaneous counters such as power.
func (t *Timeline) SampleInstant(step time.Duration, sel func(gpu.Counters) float64) stats.Series {
	return t.SampleInstantUntil(t.end, step, sel)
}

// SampleInstantUntil is SampleInstant with an explicit horizon.
func (t *Timeline) SampleInstantUntil(horizon, step time.Duration, sel func(gpu.Counters) float64) stats.Series {
	if step <= 0 {
		panic("telemetry: non-positive sampling step")
	}
	out := stats.Series{Step: step}
	for ts := time.Duration(0); ts < horizon; ts += step {
		out.Values = append(out.Values, sel(t.At(ts)))
	}
	return out
}

// SampleIntervalAvg samples sel as an interval-updated counter: each sample
// at time ts reports the mean over [ts-step-lag, ts-lag). This reproduces
// the update lag the paper observes on DCGM activity counters (SM activity,
// tensor core utilization) relative to instantaneous power.
func (t *Timeline) SampleIntervalAvg(step, lag time.Duration, sel func(gpu.Counters) float64) stats.Series {
	if step <= 0 {
		panic("telemetry: non-positive sampling step")
	}
	out := stats.Series{Step: step}
	for ts := time.Duration(0); ts < t.end; ts += step {
		from := ts - step - lag
		to := ts - lag
		if to <= 0 {
			out.Values = append(out.Values, sel(t.idle))
			continue
		}
		if from < 0 {
			from = 0
		}
		out.Values = append(out.Values, t.MeanBetween(from, to, sel))
	}
	return out
}

// AlignByPeak returns the shift (in samples, >= 0) that best aligns b to a
// by matching their maxima, the technique the paper uses to undo counter
// lag before correlating (§3.4). The returned shift is how many samples b
// lags a.
func AlignByPeak(a, b stats.Series) int {
	ai := argmax(a.Values)
	bi := argmax(b.Values)
	if ai < 0 || bi < 0 {
		return 0 // one series is empty; no peaks to align
	}
	if bi > ai {
		return bi - ai
	}
	return 0
}

// ShiftLeft returns a copy of s with the first n samples dropped, used to
// undo a measured lag.
func ShiftLeft(s stats.Series, n int) stats.Series {
	if n <= 0 || n >= len(s.Values) {
		return s
	}
	return stats.Series{Start: s.Start, Step: s.Step, Values: s.Values[n:]}
}

// argmax returns the index of the maximum value (first on ties), or -1.
func argmax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best == -1 || x > xs[best] {
			best = i
		}
	}
	return best
}

// Selectors for the counters profiled in Figure 7.
var (
	Power     = func(c gpu.Counters) float64 { return c.PowerWatts }
	GPUUtil   = func(c gpu.Counters) float64 { return c.GPUUtil }
	MemUtil   = func(c gpu.Counters) float64 { return c.MemUtil }
	SMAct     = func(c gpu.Counters) float64 { return c.SMActivity }
	TensorAct = func(c gpu.Counters) float64 { return c.TensorActivity }
	MemAct    = func(c gpu.Counters) float64 { return c.MemActivity }
	PCIeTX    = func(c gpu.Counters) float64 { return c.PCIeTXMBps }
	PCIeRX    = func(c gpu.Counters) float64 { return c.PCIeRXMBps }
)
