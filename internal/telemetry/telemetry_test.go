package telemetry

import (
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/stats"
)

func idleCtr() gpu.Counters { return gpu.Counters{PowerWatts: 82} }

func exec(watts float64, dur time.Duration) gpu.Exec {
	return gpu.Exec{
		Segments: []gpu.Segment{{Duration: dur, Counters: gpu.Counters{PowerWatts: watts}}},
		Duration: dur,
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	dcgm, err := ByName("DCGM")
	if err != nil {
		t.Fatal(err)
	}
	if dcgm.Path != InBand || dcgm.Interval != 100*time.Millisecond {
		t.Errorf("DCGM = %+v, want IB at 100ms", dcgm)
	}
	smbpbi, _ := ByName("SMBPBI")
	if smbpbi.Path != OutOfBand || smbpbi.Interval < 5*time.Second || smbpbi.Reliable {
		t.Errorf("SMBPBI = %+v, want slow unreliable OOB (paper §3.3)", smbpbi)
	}
	rm, _ := ByName("RowManager")
	if rm.Interval != 2*time.Second {
		t.Errorf("row manager interval = %v, want 2s (Table 2)", rm.Interval)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown interface should error")
	}
	if InBand.String() != "IB" || OutOfBand.String() != "OOB" {
		t.Error("path strings wrong")
	}
}

// mustAppend appends and fails the test on error.
func mustAppend(t *testing.T, tl *Timeline, start time.Duration, e gpu.Exec) time.Duration {
	t.Helper()
	end, err := tl.Append(start, e)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestTimelineAppendAndAt(t *testing.T) {
	tl := NewTimeline(idleCtr())
	end := mustAppend(t, tl, 0, exec(400, time.Second))
	if end != time.Second {
		t.Fatalf("end = %v", end)
	}
	end = mustAppend(t, tl, end, exec(250, 2*time.Second))
	if end != 3*time.Second {
		t.Fatalf("end = %v", end)
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 400},
		{999 * time.Millisecond, 400},
		{time.Second, 250},
		{2500 * time.Millisecond, 250},
		{3 * time.Second, 82}, // past the end: idle
		{10 * time.Second, 82},
	}
	for _, c := range cases {
		if got := tl.At(c.at).PowerWatts; got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestTimelineGapIsIdle(t *testing.T) {
	tl := NewTimeline(idleCtr())
	mustAppend(t, tl, 0, exec(400, time.Second))
	tl.AppendIdle(time.Second)
	mustAppend(t, tl, tl.End(), exec(300, time.Second))
	if got := tl.At(1500 * time.Millisecond).PowerWatts; got != 82 {
		t.Errorf("gap power = %v, want idle 82", got)
	}
	if got := tl.At(2500 * time.Millisecond).PowerWatts; got != 300 {
		t.Errorf("post-gap power = %v, want 300", got)
	}
}

func TestAppendBackwardsErrors(t *testing.T) {
	tl := NewTimeline(idleCtr())
	mustAppend(t, tl, 0, exec(400, time.Second))
	end, err := tl.Append(500*time.Millisecond, exec(100, time.Second))
	if err == nil {
		t.Fatal("overlapping append should error")
	}
	if end != time.Second {
		t.Errorf("failed append moved the end to %v, want %v", end, time.Second)
	}
	// The timeline is unchanged: the original segment still reads through.
	if got := tl.At(750 * time.Millisecond).PowerWatts; got != 400 {
		t.Errorf("At after rejected append = %v, want 400", got)
	}
}

func TestSampleInstant(t *testing.T) {
	tl := NewTimeline(idleCtr())
	mustAppend(t, tl, 0, exec(400, 250*time.Millisecond))
	mustAppend(t, tl, tl.End(), exec(200, 250*time.Millisecond))
	s := tl.SampleInstant(100*time.Millisecond, Power)
	want := []float64{400, 400, 400, 200, 200}
	if len(s.Values) != len(want) {
		t.Fatalf("samples = %v", s.Values)
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Errorf("sample[%d] = %v, want %v", i, s.Values[i], want[i])
		}
	}
}

func TestMeanBetween(t *testing.T) {
	tl := NewTimeline(idleCtr())
	mustAppend(t, tl, 0, exec(400, time.Second))
	mustAppend(t, tl, tl.End(), exec(200, time.Second))
	got := tl.MeanBetween(500*time.Millisecond, 1500*time.Millisecond, Power)
	if got != 300 {
		t.Errorf("MeanBetween = %v, want 300", got)
	}
	// Beyond the end blends idle.
	got = tl.MeanBetween(1500*time.Millisecond, 2500*time.Millisecond, Power)
	if got != (200*0.5 + 82*0.5) {
		t.Errorf("MeanBetween with idle tail = %v", got)
	}
	// Degenerate interval returns the instantaneous value.
	if got := tl.MeanBetween(time.Second, time.Second, Power); got != 200 {
		t.Errorf("degenerate MeanBetween = %v", got)
	}
}

func TestSampleIntervalAvgLag(t *testing.T) {
	// A counter sampled with one-interval lag reports the spike one sample
	// later than the instantaneous power does.
	tl := NewTimeline(gpu.Counters{})
	spike := gpu.Exec{Segments: []gpu.Segment{
		{Duration: 100 * time.Millisecond, Counters: gpu.Counters{PowerWatts: 0, SMActivity: 0}},
		{Duration: 100 * time.Millisecond, Counters: gpu.Counters{PowerWatts: 400, SMActivity: 1}},
		{Duration: 300 * time.Millisecond, Counters: gpu.Counters{PowerWatts: 0, SMActivity: 0}},
	}, Duration: 500 * time.Millisecond}
	mustAppend(t, tl, 0, spike)
	step := 100 * time.Millisecond
	power := tl.SampleInstant(step, Power)
	sm := tl.SampleIntervalAvg(step, step, SMAct)
	lag := AlignByPeak(power, sm)
	if lag < 1 {
		t.Errorf("expected lagged activity counter, got shift %d", lag)
	}
	aligned := ShiftLeft(sm, lag)
	if AlignByPeak(power, aligned) != 0 {
		t.Error("alignment did not cancel the lag")
	}
}

func TestShiftLeftEdges(t *testing.T) {
	s := stats.Series{Step: time.Second, Values: []float64{1, 2, 3}}
	if got := ShiftLeft(s, 0); len(got.Values) != 3 {
		t.Error("shift 0 should be identity")
	}
	if got := ShiftLeft(s, 5); len(got.Values) != 3 {
		t.Error("oversized shift should be identity")
	}
	if got := ShiftLeft(s, 1); got.Values[0] != 2 {
		t.Error("shift 1 wrong")
	}
}

func TestSampleStepValidation(t *testing.T) {
	tl := NewTimeline(idleCtr())
	defer func() {
		if recover() == nil {
			t.Error("zero step should panic")
		}
	}()
	tl.SampleInstant(0, Power)
}

func TestSelectors(t *testing.T) {
	c := gpu.Counters{
		PowerWatts: 1, GPUUtil: 2, MemUtil: 3, SMActivity: 4,
		TensorActivity: 5, MemActivity: 6, PCIeTXMBps: 7, PCIeRXMBps: 8,
	}
	sel := []struct {
		f    func(gpu.Counters) float64
		want float64
	}{
		{Power, 1}, {GPUUtil, 2}, {MemUtil, 3}, {SMAct, 4},
		{TensorAct, 5}, {MemAct, 6}, {PCIeTX, 7}, {PCIeRX, 8},
	}
	for i, s := range sel {
		if got := s.f(c); got != s.want {
			t.Errorf("selector %d = %v, want %v", i, got, s.want)
		}
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := NewTimeline(idleCtr())
	if got := tl.At(0).PowerWatts; got != 82 {
		t.Errorf("empty timeline At = %v", got)
	}
	if s := tl.SampleInstant(time.Second, Power); len(s.Values) != 0 {
		t.Errorf("empty timeline samples = %v", s.Values)
	}
}

func TestAlignByPeakEmptySeries(t *testing.T) {
	empty := stats.Series{Step: time.Second}
	full := stats.Series{Step: time.Second, Values: []float64{1, 2, 9, 3}}
	cases := []struct {
		name string
		a, b stats.Series
	}{
		{"both empty", empty, empty},
		{"empty reference", empty, full},
		{"empty lagged", full, empty},
	}
	for _, c := range cases {
		if got := AlignByPeak(c.a, c.b); got != 0 {
			t.Errorf("%s: AlignByPeak = %d, want 0", c.name, got)
		}
	}
	// Shifting an empty series must stay a no-op regardless of n.
	if got := ShiftLeft(empty, 3); len(got.Values) != 0 {
		t.Errorf("ShiftLeft on empty series = %v", got.Values)
	}
}

func TestAlignByPeakAllEqual(t *testing.T) {
	// With no unique peak, argmax falls back to the first sample on both
	// sides, so the flat series are treated as already aligned.
	flat := func(n int) stats.Series {
		s := stats.Series{Step: time.Second}
		for i := 0; i < n; i++ {
			s.Values = append(s.Values, 0.5)
		}
		return s
	}
	if got := AlignByPeak(flat(6), flat(6)); got != 0 {
		t.Errorf("flat vs flat = %d, want 0", got)
	}
	// Flat reference against a peaked lagged series still reports the
	// lagged peak offset from the (first-index) reference peak.
	peaked := stats.Series{Step: time.Second, Values: []float64{0, 0, 1, 0, 0, 0}}
	if got := AlignByPeak(flat(6), peaked); got != 2 {
		t.Errorf("flat vs peaked = %d, want 2", got)
	}
	// A lagged series that is flat never looks ahead of the reference.
	if got := AlignByPeak(peaked, flat(6)); got != 0 {
		t.Errorf("peaked vs flat = %d, want 0", got)
	}
}

func TestAlignByPeakLagLargerThanWindow(t *testing.T) {
	// The largest expressible shift is the whole window minus one sample;
	// ShiftLeft refuses anything >= the window so correction stays safe.
	a := stats.Series{Step: time.Second, Values: []float64{9, 0, 0, 0}}
	b := stats.Series{Step: time.Second, Values: []float64{0, 0, 0, 9}}
	lag := AlignByPeak(a, b)
	if lag != len(b.Values)-1 {
		t.Fatalf("lag = %d, want %d", lag, len(b.Values)-1)
	}
	if got := ShiftLeft(b, lag); len(got.Values) != 1 || got.Values[0] != 9 {
		t.Errorf("ShiftLeft(b, %d) = %v, want the peak alone", lag, got.Values)
	}
	if got := ShiftLeft(b, lag+1); len(got.Values) != len(b.Values) {
		t.Errorf("shift beyond the window should be identity, got %v", got.Values)
	}
}

func TestSampleIntervalAvgLagBeyondWindow(t *testing.T) {
	// A lag longer than the whole timeline means every sample's averaging
	// window ends before t=0, so the counter only ever reports idle.
	tl := NewTimeline(idleCtr())
	mustAppend(t, tl, 0, exec(400, 500*time.Millisecond))
	step := 100 * time.Millisecond
	s := tl.SampleIntervalAvg(step, time.Second, Power)
	if len(s.Values) != 5 {
		t.Fatalf("samples = %v", s.Values)
	}
	for i, v := range s.Values {
		if v != 82 {
			t.Errorf("sample[%d] = %v, want idle 82", i, v)
		}
	}
	// And aligning the all-idle (flat) series against real power is a
	// zero-shift: there is no peak left to match.
	power := tl.SampleInstant(step, Power)
	if got := AlignByPeak(power, s); got != 0 {
		t.Errorf("align vs all-idle lagged counter = %d, want 0", got)
	}
}
