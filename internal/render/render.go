// Package render draws the reproduction's figures as terminal graphics:
// multi-series line charts for power timeseries (Figures 4, 6, 9, 16),
// horizontal bar charts for policy comparisons (Figures 17, 18), shaded
// heatmaps for correlation matrices (Figure 7), and compact sparklines.
// Everything is plain text — the repository has no plotting dependencies.
package render

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"polca/internal/stats"
)

// ChartOptions configures a line chart.
type ChartOptions struct {
	Title  string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 12)
	YMin   float64
	YMax   float64 // YMax <= YMin means autoscale
	YLabel string
	// YFormat formats axis labels (default %.2f).
	YFormat string
}

func (o ChartOptions) withDefaults() ChartOptions {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 12
	}
	if o.YFormat == "" {
		o.YFormat = "%.2f"
	}
	return o
}

// seriesGlyphs mark each series in a multi-series chart.
var seriesGlyphs = []rune("•x+o*#@%")

// Lines renders one or more named series as an ASCII line chart. Series
// are resampled to the chart width (max within each bucket, preserving
// peaks). Names are rendered in a legend in sorted order.
func Lines(series map[string]stats.Series, opts ChartOptions) string {
	opts = opts.withDefaults()
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "(no series)\n"
	}

	// Autoscale, ignoring non-finite samples.
	lo, hi := opts.YMin, opts.YMax
	if hi <= lo {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, n := range names {
			for _, v := range series[n].Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
		if hi == lo {
			hi = lo + 1
		}
		pad := (hi - lo) * 0.05
		lo, hi = lo-pad, hi+pad
	}

	// Paint the grid.
	grid := make([][]rune, opts.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", opts.Width))
	}
	for si, n := range names {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		vals := resampleMax(series[n].Values, opts.Width)
		for c, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			frac := (v - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			r := opts.Height - 1 - int(frac*float64(opts.Height-1)+0.5)
			grid[r][c] = glyph
		}
	}

	// Assemble with axis labels.
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	labelW := 0
	rowLabels := make([]string, opts.Height)
	for r := 0; r < opts.Height; r++ {
		frac := float64(opts.Height-1-r) / float64(opts.Height-1)
		rowLabels[r] = fmt.Sprintf(opts.YFormat, lo+frac*(hi-lo))
		if len(rowLabels[r]) > labelW {
			labelW = len(rowLabels[r])
		}
	}
	for r := 0; r < opts.Height; r++ {
		label := ""
		if r == 0 || r == opts.Height-1 || r == opts.Height/2 {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%*s │%s\n", labelW, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s └%s\n", labelW, "", strings.Repeat("─", opts.Width))
	// Time axis: start and end.
	first := series[names[0]]
	fmt.Fprintf(&b, "%*s  %-*s%s\n", labelW, "",
		opts.Width-10, formatDur(first.Start), formatDur(first.Start+first.Duration()))
	// Legend.
	var legend []string
	for si, n := range names {
		legend = append(legend, fmt.Sprintf("%c %s", seriesGlyphs[si%len(seriesGlyphs)], n))
	}
	fmt.Fprintf(&b, "%*s  %s\n", labelW, "", strings.Join(legend, "   "))
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%*s  y: %s\n", labelW, "", opts.YLabel)
	}
	return b.String()
}

// resampleMax buckets vals into width buckets, keeping each bucket's max
// (so short power spikes survive rendering). Produces NaN for empty
// buckets when vals is shorter than width.
func resampleMax(vals []float64, width int) []float64 {
	out := make([]float64, width)
	if len(vals) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for c := 0; c < width; c++ {
		fromF := float64(c) * float64(len(vals)) / float64(width)
		toF := float64(c+1) * float64(len(vals)) / float64(width)
		from, to := int(fromF), int(math.Ceil(toF))
		if to > len(vals) {
			to = len(vals)
		}
		if from >= to {
			out[c] = math.NaN()
			continue
		}
		out[c] = stats.Max(vals[from:to])
	}
	return out
}

// formatDur renders a duration compactly for the time axis.
func formatDur(d interface{ Seconds() float64 }) string {
	s := d.Seconds()
	switch {
	case s >= 48*3600:
		return fmt.Sprintf("%.1fd", s/86400)
	case s >= 2*3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 120:
		return fmt.Sprintf("%.1fm", s/60)
	default:
		return fmt.Sprintf("%.1fs", s)
	}
}

// Bar is one entry of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarOptions configures a horizontal bar chart.
type BarOptions struct {
	Title  string
	Width  int // bar columns (default 50)
	Format string
	// Reference draws a marker at this value (e.g. 1.0 for normalized
	// charts); NaN disables it.
	Reference float64
	// Log renders bar lengths on a log10 scale (Figure 18's brake counts).
	Log bool
}

func (o BarOptions) withDefaults() BarOptions {
	if o.Width <= 0 {
		o.Width = 50
	}
	if o.Format == "" {
		o.Format = "%.3g"
	}
	if o.Reference == 0 {
		o.Reference = math.NaN()
	}
	return o
}

// Bars renders a horizontal bar chart.
func Bars(bars []Bar, opts BarOptions) string {
	opts = opts.withDefaults()
	if len(bars) == 0 {
		return "(no bars)\n"
	}
	labelW, max := 0, math.Inf(-1)
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		max = math.Max(max, b.Value)
	}
	if !math.IsNaN(opts.Reference) {
		max = math.Max(max, opts.Reference)
	}
	if max <= 0 {
		max = 1
	}
	scale := func(v float64) float64 {
		if !opts.Log {
			return v / max
		}
		if v < 1 {
			return 0
		}
		return math.Log10(v+1) / math.Log10(max+1)
	}
	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	refCol := -1
	if !math.IsNaN(opts.Reference) {
		refCol = int(scale(opts.Reference) * float64(opts.Width))
		if refCol >= opts.Width {
			refCol = opts.Width - 1
		}
	}
	for _, bar := range bars {
		n := int(scale(bar.Value)*float64(opts.Width) + 0.5)
		if n > opts.Width {
			n = opts.Width
		}
		row := []rune(strings.Repeat("█", n) + strings.Repeat(" ", opts.Width-n))
		if refCol >= 0 && refCol < opts.Width && row[refCol] == ' ' {
			row[refCol] = '┊'
		}
		fmt.Fprintf(&b, "%-*s │%s│ %s\n", labelW, bar.Label, string(row),
			fmt.Sprintf(opts.Format, bar.Value))
	}
	return b.String()
}

// Heatmap renders a labelled square matrix of values in [-1, 1] with
// shading: deep negative correlations render dark '▓-', positives '▓+'.
func Heatmap(labels []string, m [][]float64, title string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	short := make([]string, len(labels))
	for i, l := range labels {
		if len(l) > 5 {
			short[i] = l[:5]
		} else {
			short[i] = l
		}
	}
	fmt.Fprintf(&b, "%*s", labelW+1, "")
	for _, s := range short {
		fmt.Fprintf(&b, " %-6s", s)
	}
	b.WriteString("\n")
	for i, l := range labels {
		fmt.Fprintf(&b, "%-*s ", labelW, l)
		for j := range labels {
			fmt.Fprintf(&b, " %s", cell(m[i][j]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// cell shades one heatmap value.
func cell(v float64) string {
	mag := math.Abs(v)
	var shade string
	switch {
	case mag >= 0.75:
		shade = "▓▓"
	case mag >= 0.5:
		shade = "▒▒"
	case mag >= 0.25:
		shade = "░░"
	default:
		shade = "  "
	}
	sign := "+"
	if v < 0 {
		sign = "-"
	}
	return fmt.Sprintf("%s%s%.1f", shade, sign, mag)
}

// Sparkline renders a series as a single line of block glyphs scaled to
// [lo, hi].
func Sparkline(s stats.Series, lo, hi float64, width int) string {
	if s.Len() == 0 {
		return "(empty)"
	}
	if width <= 0 {
		width = 80
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	vals := resampleMax(s.Values, width)
	var b strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) {
			b.WriteRune(' ')
			continue
		}
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		b.WriteRune(glyphs[int(frac*float64(len(glyphs)-1)+0.5)])
	}
	return b.String()
}
