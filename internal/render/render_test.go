package render

import (
	"math"
	"strings"
	"testing"
	"time"

	"polca/internal/stats"
)

func ramp(n int) stats.Series {
	s := stats.Series{Step: time.Second, Values: make([]float64, n)}
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	return s
}

func TestLinesBasics(t *testing.T) {
	out := Lines(map[string]stats.Series{"ramp": ramp(100)}, ChartOptions{
		Title: "test chart", Width: 40, Height: 8, YLabel: "watts",
	})
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "• ramp") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "y: watts") {
		t.Error("missing y label")
	}
	lines := strings.Split(out, "\n")
	// Title + 8 plot rows + axis + time + legend + ylabel.
	if len(lines) < 12 {
		t.Errorf("too few lines: %d\n%s", len(lines), out)
	}
	// The ramp ascends: the top row's glyph should be to the right of the
	// bottom row's.
	var topIdx, botIdx int
	for _, l := range lines {
		if i := strings.IndexRune(l, '•'); i >= 0 {
			if topIdx == 0 {
				topIdx = i
			}
			botIdx = i
		}
	}
	if topIdx <= botIdx {
		t.Errorf("ramp renders backwards: top at %d, bottom at %d", topIdx, botIdx)
	}
}

func TestLinesMultiSeries(t *testing.T) {
	a := ramp(50)
	b := ramp(50)
	for i := range b.Values {
		b.Values[i] *= 2
	}
	out := Lines(map[string]stats.Series{"a": a, "b": b}, ChartOptions{Width: 30, Height: 6})
	if !strings.Contains(out, "• a") || !strings.Contains(out, "x b") {
		t.Errorf("legend glyphs wrong:\n%s", out)
	}
}

func TestLinesEmpty(t *testing.T) {
	if out := Lines(nil, ChartOptions{}); !strings.Contains(out, "no series") {
		t.Errorf("empty chart = %q", out)
	}
	// Constant series autoscale must not divide by zero.
	flat := stats.Series{Step: time.Second, Values: []float64{5, 5, 5}}
	out := Lines(map[string]stats.Series{"flat": flat}, ChartOptions{Width: 10, Height: 4})
	if out == "" {
		t.Error("flat series render failed")
	}
}

func TestLinesFixedScaleClamps(t *testing.T) {
	s := stats.Series{Step: time.Second, Values: []float64{-10, 0, 10, 20}}
	out := Lines(map[string]stats.Series{"s": s}, ChartOptions{Width: 8, Height: 4, YMin: 0, YMax: 10})
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("clamped render bad:\n%s", out)
	}
}

func TestResampleMax(t *testing.T) {
	vals := []float64{1, 9, 2, 3, 8, 1}
	out := resampleMax(vals, 3)
	want := []float64{9, 3, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("resample[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Upsampling produces NaN gaps but keeps all values.
	up := resampleMax([]float64{5}, 4)
	found := false
	for _, v := range up {
		if v == 5 {
			found = true
		}
	}
	if !found {
		t.Error("upsample lost the value")
	}
	for _, v := range resampleMax(nil, 3) {
		if !math.IsNaN(v) {
			t.Error("empty input should give NaN buckets")
		}
	}
}

func TestBars(t *testing.T) {
	out := Bars([]Bar{
		{Label: "POLCA", Value: 1.0},
		{Label: "No-cap", Value: 2.0},
	}, BarOptions{Title: "latency", Reference: 1.0})
	if !strings.Contains(out, "latency") || !strings.Contains(out, "POLCA") {
		t.Errorf("bars missing content:\n%s", out)
	}
	// No-cap's bar is twice as long.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	count := func(l string) int { return strings.Count(l, "█") }
	if count(lines[2]) <= count(lines[1]) {
		t.Errorf("bar lengths wrong:\n%s", out)
	}
	// Reference tick visible on the shorter bar... reference equals bar 1's
	// length, so check it exists somewhere when value < reference.
	out = Bars([]Bar{{Label: "x", Value: 0.5}}, BarOptions{Reference: 1.0})
	if !strings.Contains(out, "┊") {
		t.Errorf("missing reference marker:\n%s", out)
	}
	if out := Bars(nil, BarOptions{}); !strings.Contains(out, "no bars") {
		t.Error("empty bars")
	}
}

func TestBarsLogScale(t *testing.T) {
	out := Bars([]Bar{
		{Label: "zero", Value: 0},
		{Label: "ten", Value: 10},
		{Label: "tenk", Value: 10000},
	}, BarOptions{Log: true, Width: 40})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	count := func(l string) int { return strings.Count(l, "█") }
	if count(lines[0]) != 0 {
		t.Error("zero should have no bar")
	}
	if !(count(lines[2]) > count(lines[1]) && count(lines[1]) > 0) {
		t.Errorf("log bars not ordered:\n%s", out)
	}
	// Log compresses: 1000x the value should be well under 1000x the bar.
	if count(lines[2]) > 4*count(lines[1]) {
		t.Errorf("log scale not compressing:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	labels := []string{"power", "sm"}
	m := [][]float64{{1, -0.8}, {-0.8, 1}}
	out := Heatmap(labels, m, "corr")
	if !strings.Contains(out, "corr") || !strings.Contains(out, "power") {
		t.Errorf("heatmap missing content:\n%s", out)
	}
	if !strings.Contains(out, "+1.0") || !strings.Contains(out, "-0.8") {
		t.Errorf("heatmap values missing:\n%s", out)
	}
	if !strings.Contains(out, "▓") {
		t.Error("strong correlations should shade dark")
	}
}

func TestCellShading(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.9, "▓▓"}, {0.6, "▒▒"}, {0.3, "░░"}, {0.1, "  "},
	}
	for _, c := range cases {
		if got := cell(c.v); !strings.HasPrefix(got, c.want) {
			t.Errorf("cell(%v) = %q, want prefix %q", c.v, got, c.want)
		}
	}
	if !strings.Contains(cell(-0.9), "-") {
		t.Error("negative sign missing")
	}
}

func TestSparkline(t *testing.T) {
	s := ramp(200)
	out := Sparkline(s, 0, 199, 50)
	if len([]rune(out)) != 50 {
		t.Errorf("sparkline width = %d, want 50", len([]rune(out)))
	}
	if !strings.HasSuffix(out, "█") {
		t.Errorf("ramp should end at full block: %q", out)
	}
	if Sparkline(stats.Series{}, 0, 1, 10) != "(empty)" {
		t.Error("empty sparkline")
	}
}

func TestLinesSurvivesNonFiniteValues(t *testing.T) {
	s := stats.Series{Step: time.Second, Values: []float64{
		1, math.NaN(), math.Inf(1), 2, math.Inf(-1), 3,
	}}
	out := Lines(map[string]stats.Series{"dirty": s}, ChartOptions{Width: 12, Height: 4})
	if out == "" {
		t.Fatal("empty render")
	}
	// All-non-finite series must not panic either.
	bad := stats.Series{Step: time.Second, Values: []float64{math.NaN(), math.Inf(1)}}
	out = Lines(map[string]stats.Series{"bad": bad}, ChartOptions{Width: 6, Height: 3})
	if out == "" {
		t.Fatal("empty render for non-finite series")
	}
}
