// Package trace implements the paper's trace methodology (§6.4): a
// reference power-utilization series standing in for the confidential
// six-week production trace (June 21 - August 2, 2023), a fitting step that
// converts the reference into a time-varying request arrival plan, and the
// MAPE validation that the paper uses to accept the synthetic trace (within
// 3% of the original power timeseries).
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"polca/internal/stats"
)

// Day and Week are the calendar periods of the diurnal model.
const (
	Day  = 24 * time.Hour
	Week = 7 * Day
)

// DiurnalModel describes the aggregate power utilization of an interactive
// inference cluster as a fraction of provisioned row power: a daily cycle,
// a weekly modulation, slow burst episodes, and short-term noise.
type DiurnalModel struct {
	Base      float64 // mean utilization
	DailyAmp  float64 // amplitude of the daily sine
	WeeklyAmp float64 // weekday-vs-weekend modulation
	BurstAmp  float64 // amplitude of occasional slow load bursts
	NoiseStd  float64 // per-sample short-term noise (AR(1)-smoothed)
	PeakHour  float64 // local hour of daily peak
	Step      time.Duration
	Floor     float64 // utilization never falls below this
	Ceiling   float64 // nor rises above this
}

// ProductionInference returns the diurnal model calibrated to Table 4's
// inference cluster: peak utilization ≈ 79%, clear diurnal pattern, small
// short-term variation (max 2 s spike ≈ 9% of provisioned power).
func ProductionInference() DiurnalModel {
	// The curve describes *offered load*; the simulated row adds its own
	// stochastic peaks (queueing and prompt alignment) of ~6-9 points on
	// top, which is what brings the observed row peak to Table 4's ~79%.
	return DiurnalModel{
		Base:      0.555,
		DailyAmp:  0.095,
		WeeklyAmp: 0.030,
		BurstAmp:  0.015,
		NoiseStd:  0.005,
		PeakHour:  14,
		Step:      2 * time.Second,
		Floor:     0.33,
		Ceiling:   0.70,
	}
}

// Validate reports whether the model is usable.
func (m DiurnalModel) Validate() error {
	switch {
	case m.Step <= 0:
		return fmt.Errorf("trace: non-positive step")
	case m.Base <= 0 || m.Base >= 1:
		return fmt.Errorf("trace: base utilization %v outside (0,1)", m.Base)
	case m.Floor < 0 || m.Ceiling > 1 || m.Floor >= m.Ceiling:
		return fmt.Errorf("trace: bad floor/ceiling %v/%v", m.Floor, m.Ceiling)
	case m.DailyAmp < 0 || m.WeeklyAmp < 0 || m.BurstAmp < 0 || m.NoiseStd < 0:
		return fmt.Errorf("trace: negative amplitude")
	}
	return nil
}

// MeanAt returns the noise-free utilization at time t.
func (m DiurnalModel) MeanAt(t time.Duration) float64 {
	hours := t.Seconds() / 3600
	daily := m.DailyAmp * math.Sin(2*math.Pi*(hours-m.PeakHour+6)/24)
	// Weekly modulation: weekdays run hotter than weekends.
	dayIdx := int(t / Day)
	weekly := m.WeeklyAmp
	if wd := dayIdx % 7; wd == 5 || wd == 6 {
		weekly = -m.WeeklyAmp
	}
	u := m.Base + daily + weekly
	return m.clamp(u)
}

func (m DiurnalModel) clamp(u float64) float64 {
	return math.Min(math.Max(u, m.Floor), m.Ceiling)
}

// Reference generates the stand-in for the production power-utilization
// trace: the diurnal mean plus AR(1)-correlated noise and slow bursts. The
// result is deterministic for a given source.
func (m DiurnalModel) Reference(horizon time.Duration, rng *rand.Rand) stats.Series {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	n := int(horizon / m.Step)
	out := stats.Series{Step: m.Step, Values: make([]float64, n)}
	noise := 0.0
	burst := 0.0
	const noiseRho = 0.95  // ~40 s correlation at 2 s steps
	const burstRho = 0.999 // ~30 min episodes
	for i := 0; i < n; i++ {
		t := time.Duration(i) * m.Step
		noise = noiseRho*noise + (1-noiseRho)*rng.NormFloat64()*m.NoiseStd/(1-noiseRho)
		burst = burstRho*burst + (1-burstRho)*rng.NormFloat64()*m.BurstAmp/math.Sqrt(1-burstRho*burstRho)*8
		out.Values[i] = m.clamp(m.MeanAt(t) + noise + burst)
	}
	return out
}

// ClusterShape summarizes the row the arrivals are fitted for.
type ClusterShape struct {
	Servers          int
	ProvisionedWatts float64 // row power budget
	IdleServerWatts  float64 // server power when idle
	BusyServerWatts  float64 // mean server power while serving a request
	MeanServiceSec   float64 // mean request service time at full clocks
}

// Validate reports whether the shape is usable for fitting.
func (s ClusterShape) Validate() error {
	switch {
	case s.Servers <= 0:
		return fmt.Errorf("trace: no servers")
	case s.ProvisionedWatts <= 0:
		return fmt.Errorf("trace: no power budget")
	case s.IdleServerWatts <= 0 || s.BusyServerWatts <= s.IdleServerWatts:
		return fmt.Errorf("trace: bad server power levels")
	case s.MeanServiceSec <= 0:
		return fmt.Errorf("trace: bad service time")
	}
	return nil
}

// BusyFraction inverts the row power model: the fraction of servers that
// must be busy for the row to draw the given utilization of its budget.
// The result is clamped to [0, 0.97] — a row cannot usefully run hotter.
func (s ClusterShape) BusyFraction(util float64) float64 {
	n := float64(s.Servers)
	watts := util * s.ProvisionedWatts
	frac := (watts - n*s.IdleServerWatts) / (n * (s.BusyServerWatts - s.IdleServerWatts))
	return math.Min(math.Max(frac, 0), 0.97)
}

// UtilFromBusy is the forward model: row utilization when the given
// fraction of servers is busy.
func (s ClusterShape) UtilFromBusy(frac float64) float64 {
	n := float64(s.Servers)
	watts := n*s.IdleServerWatts + frac*n*(s.BusyServerWatts-s.IdleServerWatts)
	return watts / s.ProvisionedWatts
}

// RatePlan is a piecewise-constant cluster-wide arrival rate (requests/s).
type RatePlan struct {
	Bucket time.Duration
	Rates  []float64
	// Shape is the Erlang shape parameter of the inter-arrival
	// distribution: 1 (or 0) is Poisson; higher values model the smoother,
	// load-balanced traffic a production row receives from the cluster
	// front door (coefficient of variation 1/√Shape).
	Shape int
	// Gap, when non-nil, overrides the Erlang sampler with a custom
	// unit-mean inter-arrival draw (internal/scenario plugs Gamma and
	// Weibull renewal processes in here). Shape is ignored while Gap is
	// set. The sampler must have mean 1; NextAfter divides it by the
	// bucket rate.
	Gap func(rng *rand.Rand) float64
}

// Horizon returns the time span the plan covers.
func (p RatePlan) Horizon() time.Duration {
	return time.Duration(len(p.Rates)) * p.Bucket
}

// RateAt returns the arrival rate at time t (0 outside the plan).
func (p RatePlan) RateAt(t time.Duration) float64 {
	if p.Bucket <= 0 || t < 0 {
		return 0
	}
	i := int(t / p.Bucket)
	if i >= len(p.Rates) {
		return 0
	}
	return p.Rates[i]
}

// Scale returns a copy of the plan with every rate multiplied by f — used
// when oversubscription adds servers and the cluster absorbs
// proportionally more traffic.
func (p RatePlan) Scale(f float64) RatePlan {
	out := RatePlan{Bucket: p.Bucket, Rates: make([]float64, len(p.Rates)), Shape: p.Shape, Gap: p.Gap}
	for i, r := range p.Rates {
		out.Rates[i] = r * f
	}
	return out
}

// FitArrivals converts a reference utilization series into an arrival-rate
// plan for the given cluster shape, bucketed at the given granularity: in
// steady state, busy-server fraction ≈ λ·E[S]/N (Little's law), so
// λ(t) = busyFraction(U(t))·N / E[S].
func FitArrivals(ref stats.Series, shape ClusterShape, bucket time.Duration) (RatePlan, error) {
	if err := shape.Validate(); err != nil {
		return RatePlan{}, err
	}
	if bucket < ref.Step {
		bucket = ref.Step
	}
	coarse := ref.Downsample(bucket)
	plan := RatePlan{Bucket: bucket, Rates: make([]float64, coarse.Len()), Shape: 32}
	for i, u := range coarse.Values {
		busy := shape.BusyFraction(u)
		plan.Rates[i] = busy * float64(shape.Servers) / shape.MeanServiceSec
	}
	return plan, nil
}

// PredictedUtil returns the utilization series the plan should produce
// under the shape's steady-state model, for MAPE validation against the
// reference.
func (p RatePlan) PredictedUtil(shape ClusterShape) stats.Series {
	out := stats.Series{Step: p.Bucket, Values: make([]float64, len(p.Rates))}
	for i, r := range p.Rates {
		busy := r * shape.MeanServiceSec / float64(shape.Servers)
		out.Values[i] = shape.UtilFromBusy(math.Min(busy, 0.97))
	}
	return out
}

// NextAfter returns the first arrival of the piecewise-Poisson process
// strictly after t, or ok == false once the plan is exhausted. The cluster
// simulator uses this to generate arrivals online in O(1) memory.
func (p RatePlan) NextAfter(t time.Duration, rng *rand.Rand) (time.Duration, bool) {
	horizon := p.Horizon()
	if t < 0 {
		t = 0
	}
	for t < horizon {
		rate := p.RateAt(t)
		if rate <= 0 {
			// Skip to the next bucket.
			t = (t/p.Bucket + 1) * p.Bucket
			continue
		}
		gap := time.Duration(p.drawGap(rng) / rate * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		// If the gap crosses into the next bucket, restart there at that
		// bucket's rate — (approximately, for Shape > 1) restartable.
		boundary := (t/p.Bucket + 1) * p.Bucket
		if t+gap >= boundary {
			t = boundary
			continue
		}
		t += gap
		if t < horizon {
			return t, true
		}
		return 0, false
	}
	return 0, false
}

// drawGap draws a unit-mean inter-arrival sample: the custom Gap sampler
// when one is set, Exp(1) for Poisson, or an Erlang(Shape) sum scaled to
// unit mean for smoothed traffic.
func (p RatePlan) drawGap(rng *rand.Rand) float64 {
	if p.Gap != nil {
		return p.Gap(rng)
	}
	k := p.Shape
	if k <= 1 {
		return rng.ExpFloat64()
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += rng.ExpFloat64()
	}
	return sum / float64(k)
}

// Arrivals generates the arrival times of a piecewise-Poisson process
// following the plan, deterministically for a given source.
func (p RatePlan) Arrivals(rng *rand.Rand) []time.Duration {
	var out []time.Duration
	t := time.Duration(0)
	for {
		next, ok := p.NextAfter(t, rng)
		if !ok {
			return out
		}
		out = append(out, next)
		t = next
	}
}

// ValidateFit computes the MAPE between the reference series and the
// plan's predicted utilization (both downsampled to the plan's bucket),
// implementing the paper's acceptance criterion for the synthetic trace.
func ValidateFit(ref stats.Series, plan RatePlan, shape ClusterShape) (float64, error) {
	coarse := ref.Downsample(plan.Bucket)
	pred := plan.PredictedUtil(shape)
	n := coarse.Len()
	if pred.Len() < n {
		n = pred.Len()
	}
	return stats.MAPE(coarse.Values[:n], pred.Values[:n])
}
