package trace_test

import (
	"fmt"
	"math/rand"
	"time"

	"polca/internal/trace"
)

// ExampleFitArrivals walks the §6.4 methodology: generate the reference
// power curve, fit a request arrival plan to it, and validate the fit with
// the paper's MAPE criterion.
func ExampleFitArrivals() {
	ref := trace.ProductionInference().Reference(24*time.Hour, rand.New(rand.NewSource(1)))
	shape := trace.ClusterShape{
		Servers:          40,
		ProvisionedWatts: 40 * 4600,
		IdleServerWatts:  1516,
		BusyServerWatts:  3949,
		MeanServiceSec:   28.5,
	}
	plan, err := trace.FitArrivals(ref, shape, 5*time.Minute)
	if err != nil {
		fmt.Println("fit failed:", err)
		return
	}
	mape, _ := trace.ValidateFit(ref, plan, shape)
	fmt.Printf("plan buckets: %d\n", len(plan.Rates))
	fmt.Printf("fit within the paper's 3%% bar: %v\n", mape <= 0.03)
	// Output:
	// plan buckets: 288
	// fit within the paper's 3% bar: true
}

// ExampleRatePlan_Scale shows how oversubscription scales the offered load:
// 30% more servers absorb 30% more traffic under the same power budget.
func ExampleRatePlan_Scale() {
	plan := trace.RatePlan{Bucket: time.Minute, Rates: []float64{1.0, 2.0}}
	scaled := plan.Scale(1.30)
	fmt.Printf("%.1f %.1f\n", scaled.Rates[0], scaled.Rates[1])
	// Output:
	// 1.3 2.6
}
