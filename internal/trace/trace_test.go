package trace

import (
	"math/rand"
	"testing"
	"time"

	"polca/internal/stats"
)

func shape() ClusterShape {
	return ClusterShape{
		Servers:          40,
		ProvisionedWatts: 40 * 4600,
		IdleServerWatts:  1600,
		BusyServerWatts:  3700,
		MeanServiceSec:   25,
	}
}

func TestDiurnalModelValidates(t *testing.T) {
	if err := ProductionInference().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ProductionInference()
	bad.Step = 0
	if bad.Validate() == nil {
		t.Error("zero step should fail")
	}
	bad = ProductionInference()
	bad.Floor = 0.9
	if bad.Validate() == nil {
		t.Error("floor above ceiling should fail")
	}
}

func TestReferenceShape(t *testing.T) {
	m := ProductionInference()
	ref := m.Reference(Week, rand.New(rand.NewSource(1)))
	if ref.Len() != int(Week/m.Step) {
		t.Fatalf("len = %d", ref.Len())
	}
	peak := ref.Peak()
	// The offered-load curve peaks near 0.72; the simulated row's own
	// stochastic peaks bring the observed Table 4 value to ~79%.
	if peak < 0.66 || peak > 0.76 {
		t.Errorf("peak utilization = %.3f, want ~0.72", peak)
	}
	// Diurnal: day-peak vs night-trough separation is substantial.
	var dayVals, nightVals []float64
	for i, v := range ref.Values {
		h := int(ref.TimeAt(i).Hours()) % 24
		if h >= 12 && h < 16 {
			dayVals = append(dayVals, v)
		}
		if h >= 0 && h < 4 {
			nightVals = append(nightVals, v)
		}
	}
	if stats.Mean(dayVals)-stats.Mean(nightVals) < 0.12 {
		t.Errorf("diurnal swing too small: day %.3f vs night %.3f", stats.Mean(dayVals), stats.Mean(nightVals))
	}
	// Table 4: short-term variation small — max 2 s rise well below training's.
	if rise := ref.MaxRise(2 * time.Second); rise > 0.05 {
		t.Errorf("2s spike = %.3f of provisioned, want small for inference", rise)
	}
	// Bounds respected.
	if stats.Min(ref.Values) < m.Floor-1e-9 || stats.Max(ref.Values) > m.Ceiling+1e-9 {
		t.Error("reference escapes floor/ceiling")
	}
}

func TestReferenceDeterministic(t *testing.T) {
	m := ProductionInference()
	a := m.Reference(Day, rand.New(rand.NewSource(7)))
	b := m.Reference(Day, rand.New(rand.NewSource(7)))
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("reference not deterministic")
		}
	}
}

func TestWeekendDip(t *testing.T) {
	m := ProductionInference()
	// Day 0 is a weekday, days 5-6 the weekend.
	wd := m.MeanAt(2*Day + 14*time.Hour)
	we := m.MeanAt(5*Day + 14*time.Hour)
	if we >= wd {
		t.Errorf("weekend %.3f should dip below weekday %.3f", we, wd)
	}
}

func TestBusyFractionRoundTrip(t *testing.T) {
	s := shape()
	for _, u := range []float64{0.4, 0.5, 0.6, 0.7} {
		frac := s.BusyFraction(u)
		if frac <= 0 || frac > 0.97 {
			t.Fatalf("busy fraction at %.2f = %v", u, frac)
		}
		back := s.UtilFromBusy(frac)
		if diff := back - u; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("round trip at %.2f: got %.4f", u, back)
		}
	}
	// Clamps.
	if s.BusyFraction(0) != 0 {
		t.Error("below-idle utilization should clamp to 0")
	}
	if s.BusyFraction(5) != 0.97 {
		t.Error("impossible utilization should clamp to 0.97")
	}
}

func TestShapeValidate(t *testing.T) {
	bad := []ClusterShape{
		{},
		{Servers: 1, ProvisionedWatts: 1, IdleServerWatts: 5, BusyServerWatts: 4, MeanServiceSec: 1},
		{Servers: 1, ProvisionedWatts: 1, IdleServerWatts: 1, BusyServerWatts: 2, MeanServiceSec: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestFitArrivalsAndValidate(t *testing.T) {
	m := ProductionInference()
	ref := m.Reference(Week, rand.New(rand.NewSource(3)))
	plan, err := FitArrivals(ref, shape(), 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Horizon() < Week-5*time.Minute {
		t.Errorf("plan horizon = %v", plan.Horizon())
	}
	// Paper §6.4: MAPE between synthetic and original power within 3%.
	mape, err := ValidateFit(ref, plan, shape())
	if err != nil {
		t.Fatal(err)
	}
	if mape > 0.03 {
		t.Errorf("MAPE = %.4f, want <= 0.03 (paper criterion)", mape)
	}
}

func TestFitRejectsBadShape(t *testing.T) {
	ref := ProductionInference().Reference(Day, rand.New(rand.NewSource(1)))
	if _, err := FitArrivals(ref, ClusterShape{}, time.Minute); err == nil {
		t.Error("want error")
	}
}

func TestRatePlanAccessors(t *testing.T) {
	p := RatePlan{Bucket: time.Minute, Rates: []float64{1, 2, 3}}
	if p.Horizon() != 3*time.Minute {
		t.Errorf("horizon = %v", p.Horizon())
	}
	if p.RateAt(90*time.Second) != 2 {
		t.Errorf("RateAt = %v", p.RateAt(90*time.Second))
	}
	if p.RateAt(-time.Second) != 0 || p.RateAt(time.Hour) != 0 {
		t.Error("out-of-range rates should be 0")
	}
	s := p.Scale(1.3)
	if s.Rates[2] < 3.9-1e-9 || s.Rates[2] > 3.9+1e-9 {
		t.Errorf("Scale = %v", s.Rates)
	}
	if p.Rates[2] != 3 {
		t.Error("Scale mutated the original")
	}
}

func TestArrivalsFollowRates(t *testing.T) {
	p := RatePlan{Bucket: time.Hour, Rates: []float64{2, 0, 4}}
	arr := p.Arrivals(rand.New(rand.NewSource(11)))
	counts := make([]int, 3)
	for _, a := range arr {
		counts[int(a/time.Hour)]++
	}
	// Expect ~7200, 0, ~14400 with Poisson noise.
	if counts[0] < 6500 || counts[0] > 7900 {
		t.Errorf("bucket 0 arrivals = %d, want ~7200", counts[0])
	}
	if counts[1] != 0 {
		t.Errorf("bucket 1 arrivals = %d, want 0 (zero rate)", counts[1])
	}
	if counts[2] < 13400 || counts[2] > 15400 {
		t.Errorf("bucket 2 arrivals = %d, want ~14400", counts[2])
	}
	// Sorted and in-range.
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	if arr[len(arr)-1] >= p.Horizon() {
		t.Error("arrival beyond horizon")
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	p := RatePlan{Bucket: time.Minute, Rates: []float64{5, 5}}
	a := p.Arrivals(rand.New(rand.NewSource(2)))
	b := p.Arrivals(rand.New(rand.NewSource(2)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrivals diverge")
		}
	}
}

func TestReferenceTemporalStructure(t *testing.T) {
	m := ProductionInference()
	ref := m.Reference(3*Day, rand.New(rand.NewSource(21)))
	// Short-term noise is AR(1)-correlated: adjacent 2s samples nearly equal.
	r, err := ref.Autocorrelation(2 * time.Second)
	if err != nil || r < 0.9 {
		t.Errorf("lag-2s autocorrelation = %v, %v; want high (smooth noise)", r, err)
	}
	// The diurnal cycle dominates: 24h-lag correlation is strong while the
	// 12h lag (peak vs trough) is strongly negative.
	day, err := ref.Autocorrelation(24 * time.Hour)
	if err != nil || day < 0.5 {
		t.Errorf("lag-24h autocorrelation = %v, %v; want strong diurnal", day, err)
	}
	half, err := ref.Autocorrelation(12 * time.Hour)
	if err != nil || half > 0 {
		t.Errorf("lag-12h autocorrelation = %v, %v; want negative (anti-phase)", half, err)
	}
	// The utilization distribution is broad, not a point mass.
	h := stats.NewHistogram(ref.Values, 10)
	occupied := 0
	for _, c := range h.Counts {
		if c > 0 {
			occupied++
		}
	}
	if occupied < 5 {
		t.Errorf("utilization occupies only %d/10 bins", occupied)
	}
}
