package server

import (
	"testing"

	"polca/internal/gpu"
)

func dgx() Spec { return DGXA100(gpu.A100SXM80GB()) }

func TestSpecValidates(t *testing.T) {
	if err := dgx().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := dgx()
	bad.GPUCount = 0
	if bad.Validate() == nil {
		t.Error("zero GPUs should fail")
	}
	bad = dgx()
	bad.Components[0].PeakWatts = bad.Components[0].ProvisionedWatts + 1
	if bad.Validate() == nil {
		t.Error("peak above provisioned should fail")
	}
	bad = dgx()
	bad.ProvisionedWatts = 1000
	if bad.Validate() == nil {
		t.Error("overcommitted envelope should fail")
	}
}

func TestFigure3Breakdown(t *testing.T) {
	s := dgx()
	// Paper: ~50% of provisioned power is GPUs.
	gpuShare := s.GPUProvisionedWatts() / s.ProvisionedWatts
	if gpuShare < 0.45 || gpuShare > 0.55 {
		t.Errorf("GPU provisioned share = %.2f, want ~0.5 (Figure 3)", gpuShare)
	}
	// Paper §5: fans are nearly 25% of server power.
	var fans float64
	for _, c := range s.Components {
		if c.Name == "fans" {
			fans = c.ProvisionedWatts
		}
	}
	if share := fans / s.ProvisionedWatts; share < 0.2 || share > 0.3 {
		t.Errorf("fan share = %.2f, want ~0.25 (Figure 3)", share)
	}
}

func TestRatedPowerIs6500(t *testing.T) {
	if w := dgx().ProvisionedWatts; w != 6500 {
		t.Errorf("DGX-A100 rated power = %v, want 6500 (paper §5)", w)
	}
}

func TestPeakBelowRatedByDeratingMargin(t *testing.T) {
	// Paper §5: observed peak never exceeded 5700 W on the 6500 W machine,
	// leaving ~800 W of derating headroom.
	s := New(0, dgx())
	peak := s.PeakWatts()
	if peak > 5900 {
		t.Errorf("peak server power %v W leaves no derating headroom", peak)
	}
	if peak < 5300 {
		t.Errorf("peak server power %v W implausibly low", peak)
	}
	if headroom := s.Spec().ProvisionedWatts - peak; headroom < 600 {
		t.Errorf("derating headroom = %v W, want >= 600 (paper: ~800)", headroom)
	}
}

func TestGPUShareOfServerPowerAtLoad(t *testing.T) {
	// Figure 11: GPUs are ~60% of server power under load.
	s := New(0, dgx())
	gpuW := 8 * 400.0
	share := gpuW / s.PowerFromGPUs(gpuW)
	if share < 0.55 || share > 0.68 {
		t.Errorf("GPU share at load = %.2f, want ~0.6 (Figure 11)", share)
	}
}

func TestServerPowerMonotonicInGPUPower(t *testing.T) {
	s := New(0, dgx())
	last := 0.0
	for w := 600.0; w <= 3600; w += 200 {
		p := s.PowerFromGPUs(w)
		if p <= last {
			t.Fatalf("server power not monotonic at %v", w)
		}
		last = p
	}
}

func TestIdlePower(t *testing.T) {
	s := New(0, dgx())
	idle := s.IdleWatts()
	// 8 GPUs at 82 W plus host idle (~860 W).
	if idle < 1200 || idle > 2000 {
		t.Errorf("idle server power = %v W, want 1.2-2 kW", idle)
	}
	if s.PowerFromGPUs(0) < s.Spec().HostIdleWatts() {
		t.Error("host idle floor violated")
	}
}

func TestKnobFanout(t *testing.T) {
	s := New(3, dgx())
	s.LockAllClocks(1275)
	for _, d := range s.GPUs() {
		if d.LockedClock() != 1275 {
			t.Fatal("LockAllClocks did not reach every GPU")
		}
	}
	s.LockAllClocks(0)
	for _, d := range s.GPUs() {
		if d.LockedClock() != 0 {
			t.Fatal("unlock did not reach every GPU")
		}
	}
	s.SetAllPowerCaps(325)
	for _, d := range s.GPUs() {
		if d.PowerCap() != 325 {
			t.Fatal("SetAllPowerCaps did not reach every GPU")
		}
	}
	s.SetBrake(true)
	for _, d := range s.GPUs() {
		if !d.Brake() {
			t.Fatal("SetBrake did not reach every GPU")
		}
	}
	if s.Index != 3 {
		t.Error("index lost")
	}
	if len(s.GPUs()) != 8 {
		t.Errorf("GPU count = %d", len(s.GPUs()))
	}
}
