// Package server models a DGX-A100-class GPU server: eight GPUs plus the
// host components (CPUs, fans, DRAM, NVSwitch, NICs, storage) whose
// provisioned power the paper breaks down in Figure 3.
//
// The server-level power model reproduces the paper's production findings
// (Figure 11): GPU power constitutes ~60% of server power under load, peak
// server power correlates tightly with peak GPU power, and the rated
// (provisioned) power of 6.5 kW is never reached — observed peaks stay
// below ~5.7 kW, which is the headroom the paper proposes reclaiming by
// derating (§5).
package server

import (
	"fmt"

	"polca/internal/gpu"
)

// Component is one entry of the provisioned-power breakdown (Figure 3).
type Component struct {
	Name             string
	ProvisionedWatts float64
	IdleWatts        float64 // draw at zero load
	PeakWatts        float64 // realistic draw at full load (≤ provisioned)
}

// Spec describes a GPU server SKU.
type Spec struct {
	Name             string
	GPU              gpu.Spec
	GPUCount         int
	ProvisionedWatts float64 // rated power used for datacenter provisioning
	// Host components other than GPUs, in display order.
	Components []Component
}

// DGXA100 returns the spec of an NVIDIA DGX-A100 with the given GPU SKU.
// The provisioned breakdown follows Figure 3: roughly half the rated power
// is GPUs and a quarter is fans.
func DGXA100(g gpu.Spec) Spec {
	return Spec{
		Name:             "DGX-A100",
		GPU:              g,
		GPUCount:         8,
		ProvisionedWatts: 6500,
		Components: []Component{
			{Name: "fans", ProvisionedWatts: 1600, IdleWatts: 300, PeakWatts: 1200},
			{Name: "cpus", ProvisionedWatts: 560, IdleWatts: 160, PeakWatts: 450},
			{Name: "dram", ProvisionedWatts: 350, IdleWatts: 120, PeakWatts: 280},
			{Name: "nvswitch+nic", ProvisionedWatts: 450, IdleWatts: 150, PeakWatts: 380},
			{Name: "storage+other", ProvisionedWatts: 340, IdleWatts: 130, PeakWatts: 250},
		},
	}
}

// GPUProvisionedWatts returns the provisioned power reserved for GPUs.
func (s Spec) GPUProvisionedWatts() float64 {
	return float64(s.GPUCount) * s.GPU.TDPWatts
}

// HostIdleWatts returns the non-GPU power at zero load.
func (s Spec) HostIdleWatts() float64 {
	var w float64
	for _, c := range s.Components {
		w += c.IdleWatts
	}
	return w
}

// HostPeakWatts returns the realistic non-GPU power at full load.
func (s Spec) HostPeakWatts() float64 {
	var w float64
	for _, c := range s.Components {
		w += c.PeakWatts
	}
	return w
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	if s.GPUCount <= 0 {
		return fmt.Errorf("server: %s: no GPUs", s.Name)
	}
	if err := s.GPU.Validate(); err != nil {
		return err
	}
	var prov float64
	for _, c := range s.Components {
		if c.IdleWatts < 0 || c.PeakWatts < c.IdleWatts || c.ProvisionedWatts < c.PeakWatts {
			return fmt.Errorf("server: %s: component %s power ordering violated", s.Name, c.Name)
		}
		prov += c.ProvisionedWatts
	}
	if prov+s.GPUProvisionedWatts() > s.ProvisionedWatts {
		return fmt.Errorf("server: %s: components exceed provisioned envelope", s.Name)
	}
	return nil
}

// Server is a stateful GPU server: a set of devices plus the host power
// model. Servers are identified by Index within their cluster.
type Server struct {
	Index int
	spec  Spec
	gpus  []*gpu.Device

	// Power-model constants, folded once at construction: PowerFromGPUs is
	// the telemetry hot path (every node, every sub-tick), and re-deriving
	// these from the spec there re-walks the component table per sample.
	gpuIdleW float64 // GPUIdleWatts()
	gpuSpanW float64 // GPUProvisionedWatts() - GPUIdleWatts()
	hostIdle float64 // HostIdleWatts()
	hostPeak float64 // HostPeakWatts()
}

// New returns a server with freshly initialized devices.
func New(index int, spec Spec) *Server {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	s := &Server{Index: index, spec: spec}
	for i := 0; i < spec.GPUCount; i++ {
		s.gpus = append(s.gpus, gpu.NewDevice(spec.GPU))
	}
	s.gpuIdleW = s.GPUIdleWatts()
	s.gpuSpanW = spec.GPUProvisionedWatts() - s.gpuIdleW
	s.hostIdle = spec.HostIdleWatts()
	s.hostPeak = spec.HostPeakWatts()
	return s
}

// Spec returns the server's SKU description.
func (s *Server) Spec() Spec { return s.spec }

// GPUs returns the server's devices.
func (s *Server) GPUs() []*gpu.Device { return s.gpus }

// GPUIdleWatts returns the aggregate idle power of the GPUs.
func (s *Server) GPUIdleWatts() float64 {
	return float64(s.spec.GPUCount) * s.spec.GPU.IdleWatts
}

// PowerFromGPUs maps an aggregate GPU power draw to total server power
// (what IPMI would report): host components ramp between their idle and
// peak draw with GPU load, dominated by fans tracking heat.
func (s *Server) PowerFromGPUs(gpuWatts float64) float64 {
	load := 0.0
	if s.gpuSpanW > 0 {
		load = (gpuWatts - s.gpuIdleW) / s.gpuSpanW
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	host := s.hostIdle + load*(s.hostPeak-s.hostIdle)
	return gpuWatts + host
}

// IdleWatts returns total server power at idle.
func (s *Server) IdleWatts() float64 {
	return s.PowerFromGPUs(s.GPUIdleWatts())
}

// PeakWatts returns the realistic peak server power: all GPUs at their
// compute-spike power plus the host at full load. This is what the paper
// observes never exceeding ~5.7 kW on a 6.5 kW-rated machine.
func (s *Server) PeakWatts() float64 {
	// GPUs can transiently exceed TDP by the spike allowance in the gpu
	// model (~8%), bounded here by the reactive limiter's steady state.
	gpuPeak := float64(s.spec.GPUCount) * s.spec.GPU.TDPWatts * 1.02
	return s.PowerFromGPUs(gpuPeak)
}

// LockAllClocks locks every GPU's SM clock (0 unlocks), the action POLCA's
// BMC applies when a frequency-capping threshold fires.
func (s *Server) LockAllClocks(mhz float64) {
	for _, d := range s.gpus {
		d.LockClock(mhz)
	}
}

// SetAllPowerCaps sets every GPU's reactive power cap.
func (s *Server) SetAllPowerCaps(watts float64) {
	for _, d := range s.gpus {
		d.SetPowerCap(watts)
	}
}

// SetBrake engages or releases the power brake on every GPU.
func (s *Server) SetBrake(on bool) {
	for _, d := range s.gpus {
		d.SetBrake(on)
	}
}
