package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestTable6MatchesPaper(t *testing.T) {
	classes := Table6()
	if err := Validate(classes); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Class{}
	for _, c := range classes {
		byName[c.Name] = c
	}
	sum := byName["summarize"]
	if sum.PromptMin != 2048 || sum.PromptMax != 8192 || sum.OutputMin != 256 || sum.OutputMax != 512 {
		t.Errorf("summarize ranges = %+v", sum)
	}
	if sum.Share != 0.25 || sum.LowShare != 1 {
		t.Errorf("summarize share/priority = %+v, want 25%% low", sum)
	}
	sea := byName["search"]
	if sea.PromptMin != 512 || sea.PromptMax != 2048 || sea.OutputMin != 1024 || sea.OutputMax != 2048 {
		t.Errorf("search ranges = %+v", sea)
	}
	if sea.Share != 0.25 || sea.LowShare != 0 {
		t.Errorf("search share/priority = %+v, want 25%% high", sea)
	}
	chat := byName["chat"]
	if chat.Share != 0.5 || chat.LowShare != 0.5 {
		t.Errorf("chat share/priority = %+v, want 50%% at 50:50", chat)
	}
}

func TestSLOsMatchTable6(t *testing.T) {
	slos := SLOs()
	if slos[High].P50Impact != 0.01 || slos[High].P99Impact != 0.05 {
		t.Errorf("high SLO = %+v", slos[High])
	}
	if slos[Low].P50Impact != 0.05 || slos[Low].P99Impact != 0.50 {
		t.Errorf("low SLO = %+v", slos[Low])
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	bad := [][]Class{
		{{Name: "", PromptMin: 1, PromptMax: 2, Share: 1}},
		{{Name: "x", PromptMin: 0, PromptMax: 2, Share: 1}},
		{{Name: "x", PromptMin: 2, PromptMax: 1, Share: 1}},
		{{Name: "x", PromptMin: 1, PromptMax: 2, OutputMin: 5, OutputMax: 1, Share: 1}},
		{{Name: "x", PromptMin: 1, PromptMax: 2, Share: 0.5}},
		{{Name: "x", PromptMin: 1, PromptMax: 2, Share: 1, LowShare: 2}},
	}
	for i, cs := range bad {
		if Validate(cs) == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSamplerDistribution(t *testing.T) {
	s := NewSampler(Table6(), rand.New(rand.NewSource(5)))
	counts := map[string]int{}
	prio := map[Priority]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		r := s.Sample(0)
		counts[r.Class]++
		prio[r.Priority]++
		if r.Input < 512 || r.Input > 8192 {
			t.Fatalf("input %d out of any class range", r.Input)
		}
		if r.Output < 128 || r.Output > 2048 {
			t.Fatalf("output %d out of any class range", r.Output)
		}
	}
	within := func(got int, want, tol float64) bool {
		f := float64(got) / n
		return f > want-tol && f < want+tol
	}
	if !within(counts["summarize"], 0.25, 0.02) || !within(counts["search"], 0.25, 0.02) || !within(counts["chat"], 0.5, 0.02) {
		t.Errorf("class mix = %v", counts)
	}
	// Low = summarize (25%) + half of chat (25%) = 50%.
	if !within(prio[Low], 0.5, 0.02) {
		t.Errorf("priority mix = %v", prio)
	}
}

func TestSampleWithPriority(t *testing.T) {
	s := NewSampler(Table6(), rand.New(rand.NewSource(6)))
	for i := 0; i < 2000; i++ {
		r := s.SampleWithPriority(0, Low)
		if r.Priority != Low {
			t.Fatal("priority not forced")
		}
		if r.Class == "search" {
			t.Fatal("search can never be low priority")
		}
		r = s.SampleWithPriority(0, High)
		if r.Priority != High {
			t.Fatal("priority not forced")
		}
		if r.Class == "summarize" {
			t.Fatal("summarize can never be high priority")
		}
	}
}

func TestSamplerRangesRespectClass(t *testing.T) {
	s := NewSampler(Table6(), rand.New(rand.NewSource(7)))
	ranges := map[string][4]int{
		"summarize": {2048, 8192, 256, 512},
		"search":    {512, 2048, 1024, 2048},
		"chat":      {2048, 4096, 128, 2048},
	}
	for i := 0; i < 5000; i++ {
		r := s.Sample(time.Duration(i))
		w := ranges[r.Class]
		if r.Input < w[0] || r.Input > w[1] || r.Output < w[2] || r.Output > w[3] {
			t.Fatalf("%s sizes %d/%d outside %v", r.Class, r.Input, r.Output, w)
		}
		if r.Arrival != time.Duration(i) {
			t.Fatal("arrival not recorded")
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	a := NewSampler(Table6(), rand.New(rand.NewSource(9)))
	b := NewSampler(Table6(), rand.New(rand.NewSource(9)))
	for i := 0; i < 100; i++ {
		ra, rb := a.Sample(0), b.Sample(0)
		if ra != rb {
			t.Fatal("samplers with equal seeds diverged")
		}
	}
}

func TestSamplerUniqueIDs(t *testing.T) {
	s := NewSampler(Table6(), rand.New(rand.NewSource(10)))
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		r := s.Sample(0)
		if seen[r.ID] {
			t.Fatal("duplicate request ID")
		}
		seen[r.ID] = true
	}
}

func TestMeanTokens(t *testing.T) {
	p, o := MeanTokens(Table6())
	// summarize (2048+8192)/2*0.25 + search (512+2048)/2*0.25 + chat (2048+4096)/2*0.5
	wantP := 5120*0.25 + 1280*0.25 + 3072*0.5
	wantO := 384*0.25 + 1536*0.25 + 1088*0.5
	if p != wantP || o != wantO {
		t.Errorf("MeanTokens = %v, %v; want %v, %v", p, o, wantP, wantO)
	}
}

func TestPriorityString(t *testing.T) {
	if Low.String() != "low" || High.String() != "high" {
		t.Error("priority strings wrong")
	}
}

func TestNewSamplerPanicsOnBadTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewSampler([]Class{{Name: "x", PromptMin: 1, PromptMax: 2, Share: 0.1}}, rand.New(rand.NewSource(1)))
}

func TestNamesStableOrder(t *testing.T) {
	got := Names(Table6())
	want := []string{"summarize", "search", "chat"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want declaration order %v", got, want)
		}
	}
	if n := Names(nil); len(n) != 0 {
		t.Errorf("Names(nil) = %v, want empty", n)
	}
}

// TestSamplingRuleStreamParity is the regression test for the unified
// sampling rule: both entry points consume exactly four variates per
// request (class, priority, prompt, output), so interleaving them — or
// forcing priorities — never shifts the stream for later requests. Two
// samplers share a seed; one draws via Sample, the other alternates
// SampleWithPriority and Sample. After each pair of draws the underlying
// streams must be back in lockstep: the next Sample calls agree exactly.
func TestSamplingRuleStreamParity(t *testing.T) {
	a := NewSampler(Table6(), rand.New(rand.NewSource(42)))
	b := NewSampler(Table6(), rand.New(rand.NewSource(42)))
	for i := 0; i < 500; i++ {
		a.Sample(0)
		a.Sample(0)
		b.SampleWithPriority(0, Priority(i%2))
		b.Sample(0)
		ra, rb := a.Sample(0), b.Sample(0)
		// Re-sync ids (path histories differ only there by construction).
		rb.ID = ra.ID
		if ra != rb {
			t.Fatalf("streams diverged after %d rounds:\n%+v\n%+v", i+1, ra, rb)
		}
	}
}

// TestSampleWithPriorityConditional pins the documented rule that
// SampleWithPriority draws classes from the conditional distribution
// given the priority — the same joint law Sample induces, sliced the
// other way. Empirically: P(class | low) from filtered Sample draws must
// match the class frequencies of SampleWithPriority(low).
func TestSampleWithPriorityConditional(t *testing.T) {
	const n = 200000
	marginal := NewSampler(Table6(), rand.New(rand.NewSource(7)))
	lowCond := map[string]float64{}
	var lowTotal float64
	for i := 0; i < n; i++ {
		r := marginal.Sample(0)
		if r.Priority == Low {
			lowCond[r.Class]++
			lowTotal++
		}
	}
	forced := NewSampler(Table6(), rand.New(rand.NewSource(8)))
	got := map[string]float64{}
	for i := 0; i < n; i++ {
		r := forced.SampleWithPriority(0, Low)
		if r.Priority != Low {
			t.Fatal("forced priority not honored")
		}
		got[r.Class]++
	}
	for _, c := range Table6() {
		want := lowCond[c.Name] / lowTotal
		have := got[c.Name] / n
		if diff := have - want; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: conditional share %v via forcing, %v via filtering", c.Name, have, want)
		}
	}
}

// TestSamplerGolden pins the exact draw sequence of both paths so the
// unification refactor provably did not move any variate: these values
// were produced by the pre-refactor sampler.
func TestSamplerGolden(t *testing.T) {
	s := NewSampler(Table6(), rand.New(rand.NewSource(1)))
	r1 := s.Sample(0)
	r2 := s.SampleWithPriority(0, High)
	r3 := s.Sample(0)
	got := [3][4]any{
		{r1.Class, r1.Priority, r1.Input, r1.Output},
		{r2.Class, r2.Priority, r2.Input, r2.Output},
		{r3.Class, r3.Priority, r3.Input, r3.Output},
	}
	want := goldenDraws
	if got != want {
		t.Fatalf("draw sequence changed:\n got %v\nwant %v", got, want)
	}
}

// goldenDraws is the exact (class, priority, input, output) sequence the
// pre-unification sampler produced for seed 1: Sample, then
// SampleWithPriority(High), then Sample.
var goldenDraws = [3][4]any{
	{"chat", High, 3346, 467},
	{"search", High, 1278, 1464},
	{"summarize", Low, 5492, 274},
}
