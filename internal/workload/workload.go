// Package workload models the inference traffic POLCA is evaluated on
// (paper Table 6): three BLOOM-176B workload classes — Summarize, Search,
// and Chat — with their prompt/output size ranges, cluster shares, and
// priorities, plus the request type and samplers that draw concrete
// requests from seeded randomness.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Priority is a workload priority level. POLCA reclaims power from low
// priority workloads first.
type Priority int

const (
	Low Priority = iota
	High
)

// String returns "low" or "high".
func (p Priority) String() string {
	if p == Low {
		return "low"
	}
	return "high"
}

// Class describes one workload class (a row of Table 6). Token counts are
// sampled uniformly from the inclusive ranges.
type Class struct {
	Name      string
	PromptMin int
	PromptMax int
	OutputMin int
	OutputMax int
	// Share is the fraction of cluster requests in this class.
	Share float64
	// LowShare is the fraction of this class's requests that run at low
	// priority (1 = always low, 0 = always high, 0.5 = the paper's Chat).
	LowShare float64
}

// Table6 returns the paper's workload distribution.
func Table6() []Class {
	return []Class{
		{Name: "summarize", PromptMin: 2048, PromptMax: 8192, OutputMin: 256, OutputMax: 512, Share: 0.25, LowShare: 1},
		{Name: "search", PromptMin: 512, PromptMax: 2048, OutputMin: 1024, OutputMax: 2048, Share: 0.25, LowShare: 0},
		{Name: "chat", PromptMin: 2048, PromptMax: 4096, OutputMin: 128, OutputMax: 2048, Share: 0.5, LowShare: 0.5},
	}
}

// SLO is a latency-impact service level objective (Table 6): percentile
// latency under POLCA may exceed the uncapped baseline by at most the given
// fractions.
type SLO struct {
	P50Impact float64
	P99Impact float64
}

// SLOs returns the paper's per-priority SLOs: high priority tolerates <1%
// p50 and <5% p99 impact; low priority <5% and <50%.
func SLOs() map[Priority]SLO {
	return map[Priority]SLO{
		High: {P50Impact: 0.01, P99Impact: 0.05},
		Low:  {P50Impact: 0.05, P99Impact: 0.50},
	}
}

// Request is one inference request.
type Request struct {
	ID       int64
	Class    string
	Priority Priority
	Arrival  time.Duration // virtual time of arrival
	Input    int           // prompt tokens
	Output   int           // tokens to generate
	// Retry counts how many times the request has re-entered the router
	// through the serve-mode failover path (0 on first admission). Tokens
	// generated before a failed attempt are discarded and recomputed, so a
	// retried request is indistinguishable from a fresh one below routing.
	Retry int
	// Session, Turn, and PrefixGroup carry the scenario generator's
	// structure: requests of one multi-turn session share a Session id
	// (Turn counts from 1), and cohorts with shared system prefixes tag
	// each request with its prefix group so routing can exploit the
	// locality. All three are zero on legacy-sampled traffic.
	Session     int64
	Turn        int
	PrefixGroup int32
}

// Validate reports whether the class table is internally consistent.
func Validate(classes []Class) error {
	var share float64
	for _, c := range classes {
		switch {
		case c.Name == "":
			return fmt.Errorf("workload: unnamed class")
		case c.PromptMin <= 0 || c.PromptMax < c.PromptMin:
			return fmt.Errorf("workload: %s: bad prompt range", c.Name)
		case c.OutputMin < 0 || c.OutputMax < c.OutputMin:
			return fmt.Errorf("workload: %s: bad output range", c.Name)
		case c.Share < 0 || c.Share > 1:
			return fmt.Errorf("workload: %s: bad share", c.Name)
		case c.LowShare < 0 || c.LowShare > 1:
			return fmt.Errorf("workload: %s: bad low-priority share", c.Name)
		}
		share += c.Share
	}
	if share < 0.999 || share > 1.001 {
		return fmt.Errorf("workload: shares sum to %v, want 1", share)
	}
	return nil
}

// Sampler draws requests from a class mix using a seeded random stream.
// It is not safe for concurrent use.
type Sampler struct {
	classes []Class
	rng     *rand.Rand
	nextID  int64
}

// NewSampler returns a sampler over the classes. It panics if the classes
// fail Validate.
func NewSampler(classes []Class, rng *rand.Rand) *Sampler {
	if err := Validate(classes); err != nil {
		panic(err)
	}
	cp := make([]Class, len(classes))
	copy(cp, classes)
	return &Sampler{classes: cp, rng: rng}
}

// Sample draws one request arriving at the given time, from the full mix.
func (s *Sampler) Sample(arrival time.Duration) Request {
	return s.sample(arrival, func(c Class) float64 { return c.Share }, nil)
}

// SampleWithPriority draws one request of the given priority: the class is
// chosen with probability proportional to the share of the cluster's
// traffic that the class contributes *at that priority* (e.g. at low
// priority, Summarize and Chat contribute 25% each, so they are drawn
// 50:50), and the priority variate is resolved to the given priority
// rather than the class's LowShare split.
func (s *Sampler) SampleWithPriority(arrival time.Duration, p Priority) Request {
	return s.sample(arrival, func(c Class) float64 {
		if p == Low {
			return c.Share * c.LowShare
		}
		return c.Share * (1 - c.LowShare)
	}, &p)
}

// sample implements the one sampling rule both entry points share: every
// request consumes exactly four variates from the stream, in fixed order —
// class, priority, prompt length, output length. The class variate walks
// the caller's weight table; the priority variate resolves against the
// chosen class's LowShare, unless the caller forces a priority, in which
// case the variate is still consumed but its value discarded. Consuming
// it unconditionally keeps the two paths stream-compatible: a run that
// mixes Sample and SampleWithPriority draws the same sequence either way,
// so switching the cluster's arrival split never perturbs unrelated
// requests. (Forcing without conditioning the class weights — or
// conditioning the weights without forcing — was the historical
// inconsistency; the weight table and the forced priority must describe
// the same conditional distribution, which the regression tests pin.)
func (s *Sampler) sample(arrival time.Duration, weight func(Class) float64, force *Priority) Request {
	var total float64
	for _, c := range s.classes {
		total += weight(c)
	}
	x := s.rng.Float64() * total
	var chosen Class
	for _, c := range s.classes {
		w := weight(c)
		if w <= 0 {
			continue
		}
		if x < w {
			chosen = c
			break
		}
		x -= w
		chosen = c // fall back to last eligible on FP residue
	}
	s.nextID++
	pr := Low
	if s.rng.Float64() >= chosen.LowShare {
		pr = High
	}
	if force != nil {
		pr = *force
	}
	return Request{
		ID:       s.nextID,
		Class:    chosen.Name,
		Priority: pr,
		Arrival:  arrival,
		Input:    s.uniformInt(chosen.PromptMin, chosen.PromptMax),
		Output:   s.uniformInt(chosen.OutputMin, chosen.OutputMax),
	}
}

// uniformInt draws uniformly from [lo, hi].
func (s *Sampler) uniformInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Names returns the class names in declaration order — the stable
// iteration order reports and experiments use for per-class breakdowns
// (Go map iteration would shuffle them run to run).
func Names(classes []Class) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.Name
	}
	return out
}

// MeanTokens returns the expected prompt and output token counts of the
// mix, used for service-time estimation when fitting traces.
func MeanTokens(classes []Class) (prompt, output float64) {
	for _, c := range classes {
		prompt += c.Share * float64(c.PromptMin+c.PromptMax) / 2
		output += c.Share * float64(c.OutputMin+c.OutputMax) / 2
	}
	return prompt, output
}
