package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SpanKind enumerates the node types of a request span tree. The serve
// path emits a depth-two tree per request:
//
//	request (root)
//	├── queue            waiting for admission (re-opened after preemption)
//	├── prefill[i]       one prompt-chunk iteration (Recompute after preempt)
//	├── decode[j]        a coalesced run of back-to-back decode iterations
//	└── preempt          instant: evicted from the batch under KV pressure
type SpanKind uint8

const (
	SpanNone SpanKind = iota
	// SpanRequest is the root span covering a request end to end, from
	// arrival to completion (or drop — Reason is set on drops). It carries
	// the request-level attributions: TTFTSec, Tokens (decoded), EnergyJ,
	// CapSec/CapJ, Preempts.
	SpanRequest
	// SpanQueue covers time spent waiting for batch admission, including
	// the requeue wait after a preemption.
	SpanQueue
	// SpanPrefill covers one prompt-chunk prefill iteration; Tokens is the
	// chunk size and Recompute marks chunks that re-run work lost to a
	// preemption.
	SpanPrefill
	// SpanDecode covers a run of consecutive decode iterations, coalesced
	// while they chain back-to-back so a 500-token generation yields one
	// span, not 500; Tokens is the number of tokens generated in the run.
	SpanDecode
	// SpanPreempt is a zero-duration marker at the instant a sequence was
	// evicted for recompute; Tokens is the KV tokens released.
	SpanPreempt
)

var spanKindNames = [...]string{
	SpanNone:    "none",
	SpanRequest: "request",
	SpanQueue:   "queue",
	SpanPrefill: "prefill",
	SpanDecode:  "decode",
	SpanPreempt: "preempt",
}

// String returns the span kind's wire name ("prefill").
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// ParseSpanKind maps a wire name back to its SpanKind.
func ParseSpanKind(s string) (SpanKind, bool) {
	for k, name := range spanKindNames {
		if name == s && k != int(SpanNone) {
			return SpanKind(k), true
		}
	}
	return SpanNone, false
}

// Span is one node of a request span tree: a flat value type like Event,
// so emitting costs only the tracer's amortized buffer growth. Spans are
// keyed by (Req, ID): Req is the workload request ID, ID numbers the spans
// within one request's tree (the root is always 1), Parent is the ID of
// the enclosing span (0 on the root).
//
// Attribute use by kind: Server/Pool/Class locate the request; Tokens is
// kind-specific (see SpanKind docs); EnergyJ is the GPU energy attributed
// to the span across the replica's tensor-parallel group; CapSec and CapJ
// are the extra seconds and extra (or, negative, saved) joules versus the
// DVFS-uncapped counterfactual of the same iterations; TTFTSec (root only)
// is the time to first token, or -1 when the request never produced one;
// Reason (root only) records why a request ended without completing.
type Span struct {
	Req       int64
	ID        int32
	Parent    int32
	Kind      SpanKind
	Start     time.Duration // simulated time
	End       time.Duration // simulated time
	Server    int32
	Pool      int8
	Class     string
	Tokens    int32
	Recompute bool
	Preempts  int32
	EnergyJ   float64
	CapSec    float64
	CapJ      float64
	TTFTSec   float64
	Reason    string
	// Retry is the failover attempt number of the request span's attempt
	// (0 = first admission); the analyzer uses it to fold multiple root
	// spans of one failed-over request into a single outcome.
	Retry int32
	// Session groups the root spans of one scenario multi-turn session
	// (0 = no session structure); Turn is the request's 1-based position
	// in it. Both are omitted from the wire format when zero, so legacy
	// traffic produces unchanged output.
	Session int64
	Turn    int32
}

// SpanTracer records request spans. Like Tracer, it is safe for concurrent
// use and a nil *SpanTracer is a valid disabled sink — Emit on nil is a
// single branch (see BenchmarkSpanTracerDisabled).
type SpanTracer struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpanTracer returns an enabled span tracer.
func NewSpanTracer() *SpanTracer {
	return &SpanTracer{}
}

// Emit records a span. On a nil tracer it returns immediately; emitters
// that need per-sequence bookkeeping should additionally gate that work on
// Enabled so the disabled path allocates nothing.
func (t *SpanTracer) Emit(sp Span) {
	if t == nil {
		return
	}
	t.append(sp)
}

func (t *SpanTracer) append(sp Span) {
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Enabled reports whether spans are being recorded.
func (t *SpanTracer) Enabled() bool { return t != nil }

// Len returns the number of recorded spans.
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in emission order.
func (t *SpanTracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset discards recorded spans but keeps the buffer capacity.
func (t *SpanTracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// appendSpanJSON renders one span as a single JSON object with fixed field
// order and omitted zero fields, mirroring appendEventJSON.
func appendSpanJSON(b []byte, sp Span) []byte {
	b = append(b, `{"req":`...)
	b = strconv.AppendInt(b, sp.Req, 10)
	b = append(b, `,"id":`...)
	b = strconv.AppendInt(b, int64(sp.ID), 10)
	if sp.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendInt(b, int64(sp.Parent), 10)
	}
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, sp.Kind.String())
	b = append(b, `,"start_us":`...)
	b = strconv.AppendInt(b, int64(sp.Start/time.Microsecond), 10)
	b = append(b, `,"end_us":`...)
	b = strconv.AppendInt(b, int64(sp.End/time.Microsecond), 10)
	if sp.Server >= 0 {
		b = append(b, `,"server":`...)
		b = strconv.AppendInt(b, int64(sp.Server), 10)
	}
	if name := PoolName(sp.Pool); name != "" {
		b = append(b, `,"pool":`...)
		b = appendJSONString(b, name)
	}
	if sp.Class != "" {
		b = append(b, `,"class":`...)
		b = appendJSONString(b, sp.Class)
	}
	if sp.Tokens != 0 {
		b = append(b, `,"tokens":`...)
		b = strconv.AppendInt(b, int64(sp.Tokens), 10)
	}
	if sp.Recompute {
		b = append(b, `,"recompute":true`...)
	}
	if sp.Preempts != 0 {
		b = append(b, `,"preempts":`...)
		b = strconv.AppendInt(b, int64(sp.Preempts), 10)
	}
	if sp.EnergyJ != 0 {
		b = append(b, `,"energy_j":`...)
		b = strconv.AppendFloat(b, sp.EnergyJ, 'g', -1, 64)
	}
	if sp.CapSec != 0 {
		b = append(b, `,"cap_s":`...)
		b = strconv.AppendFloat(b, sp.CapSec, 'g', -1, 64)
	}
	if sp.CapJ != 0 {
		b = append(b, `,"cap_j":`...)
		b = strconv.AppendFloat(b, sp.CapJ, 'g', -1, 64)
	}
	if sp.Kind == SpanRequest {
		b = append(b, `,"ttft_s":`...)
		b = strconv.AppendFloat(b, sp.TTFTSec, 'g', -1, 64)
	}
	if sp.Reason != "" {
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, sp.Reason)
	}
	if sp.Retry != 0 {
		b = append(b, `,"retry":`...)
		b = strconv.AppendInt(b, int64(sp.Retry), 10)
	}
	if sp.Session != 0 {
		b = append(b, `,"session":`...)
		b = strconv.AppendInt(b, sp.Session, 10)
	}
	if sp.Turn != 0 {
		b = append(b, `,"turn":`...)
		b = strconv.AppendInt(b, int64(sp.Turn), 10)
	}
	return append(b, '}')
}

// sortedSpans returns the tracer's spans ordered by (Req, ID), so one
// request's tree is a contiguous block led by its root regardless of how
// emission interleaved across requests.
func (t *SpanTracer) sortedSpans() []Span {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Req != spans[j].Req {
			return spans[i].Req < spans[j].Req
		}
		if spans[i].Retry != spans[j].Retry {
			return spans[i].Retry < spans[j].Retry
		}
		return spans[i].ID < spans[j].ID
	})
	return spans
}

// WriteJSONL writes the spans, one JSON object per line, sorted by
// (request, span ID). The encoding is hand-rolled like the event export,
// so identical runs produce identical bytes.
func (t *SpanTracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	for _, sp := range t.sortedSpans() {
		buf = appendSpanJSON(buf[:0], sp)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace renders the spans in the Chrome trace-event JSON format
// with one track per request, so a single request's queue → prefill →
// decode lifecycle reads left to right in ui.perfetto.dev. Tracks are
// ordered by request ID; preemptions render as instants.
func (t *SpanTracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.sortedSpans()
	tids := map[int64]int32{}
	var meta []chromeTraceRow
	var rows []chromeTraceRow
	for _, sp := range spans {
		tid, ok := tids[sp.Req]
		if !ok {
			tid = int32(len(tids))
			tids[sp.Req] = tid
			label := fmt.Sprintf("req %d", sp.Req)
			if sp.Class != "" {
				label += " (" + sp.Class + ")"
			}
			meta = append(meta, chromeTraceRow{
				name: "thread_name", ph: "M", tid: tid,
				args: `"name":` + string(appendJSONString(nil, label)),
			})
		}
		name := sp.Kind.String()
		if sp.Kind == SpanPrefill && sp.Recompute {
			name = "prefill (recompute)"
		}
		args := `"tokens":` + strconv.FormatInt(int64(sp.Tokens), 10)
		if sp.EnergyJ != 0 {
			args += `,"energy_j":` + strconv.FormatFloat(sp.EnergyJ, 'g', -1, 64)
		}
		if sp.CapSec != 0 {
			args += `,"cap_s":` + strconv.FormatFloat(sp.CapSec, 'g', -1, 64)
		}
		if sp.Kind == SpanRequest {
			args += `,"ttft_s":` + strconv.FormatFloat(sp.TTFTSec, 'g', -1, 64)
			if sp.Reason != "" {
				args += `,"reason":` + string(appendJSONString(nil, sp.Reason))
			}
		}
		ts := int64(sp.Start / time.Microsecond)
		if sp.Kind == SpanPreempt {
			rows = append(rows, chromeTraceRow{name: name, ph: "i", ts: ts, tid: tid, args: args})
			continue
		}
		rows = append(rows, chromeTraceRow{
			name: name, ph: "X", ts: ts,
			dur: int64((sp.End - sp.Start) / time.Microsecond),
			tid: tid, args: args,
		})
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	first := true
	writeRow := func(r chromeTraceRow) error {
		buf = buf[:0]
		if !first {
			buf = append(buf, ',', '\n')
		}
		first = false
		buf = r.append(buf)
		_, err := bw.Write(buf)
		return err
	}
	for _, r := range meta {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// spanJSON is the decode-side shadow of appendSpanJSON's wire format.
type spanJSON struct {
	Req       int64   `json:"req"`
	ID        int32   `json:"id"`
	Parent    int32   `json:"parent"`
	Kind      string  `json:"kind"`
	StartUS   int64   `json:"start_us"`
	EndUS     int64   `json:"end_us"`
	Server    int32   `json:"server"`
	Pool      string  `json:"pool"`
	Class     string  `json:"class"`
	Tokens    int32   `json:"tokens"`
	Recompute bool    `json:"recompute"`
	Preempts  int32   `json:"preempts"`
	EnergyJ   float64 `json:"energy_j"`
	CapSec    float64 `json:"cap_s"`
	CapJ      float64 `json:"cap_j"`
	TTFTSec   float64 `json:"ttft_s"`
	Reason    string  `json:"reason"`
	Retry     int32   `json:"retry"`
	Session   int64   `json:"session"`
	Turn      int32   `json:"turn"`
}

// scanSpansMaxLine bounds one JSONL line. Span lines are a few hundred
// bytes, but the limit is generous so a hand-edited or concatenated file
// fails with a line-numbered error rather than a silent mid-file stop.
const scanSpansMaxLine = 64 * 1024 * 1024

// ScanSpans streams span JSONL produced by WriteJSONL: one callback per
// parsed span, in file order, without materializing the file or the span
// slice. Blank lines are skipped; `#` provenance lines go to comment (when
// non-nil) instead of the parser. Errors — malformed JSON, unknown kinds,
// lines beyond the 64 MiB cap, or an error returned by fn (which aborts the
// scan) — carry the 1-based line number.
func ScanSpans(r io.Reader, comment func(line string), fn func(sp Span) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), scanSpansMaxLine)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '#' {
			if comment != nil {
				comment(string(raw))
			}
			continue
		}
		sp, err := parseSpanLine(raw)
		if err != nil {
			return fmt.Errorf("spans line %d: %w", line, err)
		}
		if err := fn(sp); err != nil {
			return fmt.Errorf("spans line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("spans line %d: longer than %d bytes: %w", line+1, scanSpansMaxLine, err)
		}
		return fmt.Errorf("spans line %d: %w", line+1, err)
	}
	return nil
}

// parseSpanLine decodes one non-comment JSONL line into a Span.
func parseSpanLine(raw []byte) (Span, error) {
	sj := spanJSON{Server: -1, Pool: "", TTFTSec: -1}
	if err := json.Unmarshal(raw, &sj); err != nil {
		return Span{}, err
	}
	kind, ok := ParseSpanKind(sj.Kind)
	if !ok {
		return Span{}, fmt.Errorf("unknown kind %q", sj.Kind)
	}
	pool := PoolNone
	switch sj.Pool {
	case "low":
		pool = PoolLow
	case "high":
		pool = PoolHigh
	}
	return Span{
		Req:       sj.Req,
		ID:        sj.ID,
		Parent:    sj.Parent,
		Kind:      kind,
		Start:     time.Duration(sj.StartUS) * time.Microsecond,
		End:       time.Duration(sj.EndUS) * time.Microsecond,
		Server:    sj.Server,
		Pool:      pool,
		Class:     sj.Class,
		Tokens:    sj.Tokens,
		Recompute: sj.Recompute,
		Preempts:  sj.Preempts,
		EnergyJ:   sj.EnergyJ,
		CapSec:    sj.CapSec,
		CapJ:      sj.CapJ,
		TTFTSec:   sj.TTFTSec,
		Reason:    sj.Reason,
		Retry:     sj.Retry,
		Session:   sj.Session,
		Turn:      sj.Turn,
	}, nil
}

// ReadSpans parses span JSONL produced by WriteJSONL, skipping blank lines
// and `#` provenance headers. Consumers that don't need the whole slice at
// once should prefer ScanSpans, which this wraps.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	err := ScanSpans(r, nil, func(sp Span) error {
		out = append(out, sp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
