package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// eventJSON is the decode-side shadow of appendEventJSON's wire format.
type eventJSON struct {
	Seq    uint64  `json:"seq"`
	TUS    int64   `json:"t_us"`
	Kind   string  `json:"kind"`
	Server int32   `json:"server"`
	Pool   string  `json:"pool"`
	MHz    float64 `json:"mhz"`
	Value  float64 `json:"value"`
	Reason string  `json:"reason"`
	Label  string  `json:"label"`
}

// parseEventLine decodes one non-comment JSONL line into an Event.
func parseEventLine(raw []byte) (Event, error) {
	ej := eventJSON{Server: -1}
	if err := json.Unmarshal(raw, &ej); err != nil {
		return Event{}, err
	}
	kind, ok := ParseKind(ej.Kind)
	if !ok {
		return Event{}, fmt.Errorf("unknown kind %q", ej.Kind)
	}
	pool := PoolNone
	switch ej.Pool {
	case "low":
		pool = PoolLow
	case "high":
		pool = PoolHigh
	}
	return Event{
		At:     time.Duration(ej.TUS) * time.Microsecond,
		Kind:   kind,
		Server: ej.Server,
		Pool:   pool,
		MHz:    ej.MHz,
		Value:  ej.Value,
		Reason: ej.Reason,
		Label:  ej.Label,
		Seq:    ej.Seq,
	}, nil
}

// ScanEvents streams event JSONL produced by Tracer.WriteJSONL: one callback
// per parsed event, in file order, without materializing the file. Blank
// lines are skipped; `#` provenance lines go to comment (when non-nil)
// instead of the parser.
//
// Sequence integrity: once a line carries a non-zero "seq", every subsequent
// line must continue the sequence exactly — a jump means lines were lost
// (truncated mid-file, a dropped shard of a concatenation), a repeat or
// regression means streams were interleaved. Either fails with the 1-based
// line number instead of silently analyzing a partial stream. Files written
// before sequence numbers existed carry no "seq" and skip the check. A file
// truncated mid-line surfaces as a JSON parse error on that line.
func ScanEvents(r io.Reader, comment func(line string), fn func(ev Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), scanSpansMaxLine)
	line := 0
	lastSeq := uint64(0)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '#' {
			if comment != nil {
				comment(string(raw))
			}
			continue
		}
		ev, err := parseEventLine(raw)
		if err != nil {
			return fmt.Errorf("events line %d: %w", line, err)
		}
		if ev.Seq != 0 {
			if lastSeq != 0 && ev.Seq != lastSeq+1 {
				if ev.Seq > lastSeq+1 {
					return fmt.Errorf("events line %d: sequence gap: seq %d follows %d (%d events missing)",
						line, ev.Seq, lastSeq, ev.Seq-lastSeq-1)
				}
				return fmt.Errorf("events line %d: sequence regression: seq %d follows %d",
					line, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
		}
		if err := fn(ev); err != nil {
			return fmt.Errorf("events line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("events line %d: longer than %d bytes: %w", line+1, scanSpansMaxLine, err)
		}
		return fmt.Errorf("events line %d: %w", line+1, err)
	}
	return nil
}

// ReadEvents parses event JSONL produced by WriteJSONL, skipping blank lines
// and `#` provenance headers. Consumers that don't need the whole slice at
// once should prefer ScanEvents, which this wraps.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	err := ScanEvents(r, nil, func(ev Event) error {
		out = append(out, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
