package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// DecisionSchema versions the decision-provenance JSONL wire format. PR 2's
// decision tracer (bare policy.threshold events) was v1 in spirit; v2
// records the full input snapshot each decision was made from, which is
// what makes offline counterfactual replay possible at all.
const DecisionSchema = "polca-decisions/v2"

// DecisionKind separates the two decision streams the row records.
type DecisionKind uint8

const (
	// DecTick is one controller telemetry epoch: the reading the policy
	// saw (or the loss/outage that replaced it), the guard/watchdog/brake
	// state in effect, and the pool locks the policy asked for.
	DecTick DecisionKind = iota + 1
	// DecRoute is one serve-mode router pick: the request being placed and
	// the per-replica queue/KV/cap snapshot the router chose from.
	DecRoute
)

var decisionKindNames = [...]string{
	DecTick:  "tick",
	DecRoute: "route",
}

// String returns the decision kind's wire name ("tick").
func (k DecisionKind) String() string {
	if int(k) < len(decisionKindNames) && decisionKindNames[k] != "" {
		return decisionKindNames[k]
	}
	return "unknown"
}

// ParseDecisionKind maps a wire name back to its DecisionKind.
func ParseDecisionKind(s string) (DecisionKind, bool) {
	for k, name := range decisionKindNames {
		if name == s && k != 0 {
			return DecisionKind(k), true
		}
	}
	return 0, false
}

// Decision is one recorded decision with its full input snapshot: a flat
// value type like Event, so recording costs only the recorder's amortized
// buffer growth. Tick and route decisions share the struct (one arena, one
// sequence) with kind-specific fields; unused fields stay zero.
type Decision struct {
	// Seq is the recorder-assigned 1-based sequence number across both
	// decision kinds, so the scanner can prove a log is gap-free.
	Seq  uint64
	At   time.Duration // simulated time
	Kind DecisionKind

	// Tick inputs: TrueUtil is the physical row utilization the breaker
	// sees; Reading is what telemetry delivered to the controller this
	// epoch (valid only when Delivered). Exactly one of Delivered, Lost,
	// Down, Missed describes the epoch: a reading arrived, a loss-aware
	// controller was told telemetry was lost, the controller was crashed,
	// or the tick was silently missed. Reset marks the controller
	// restarting cold at this epoch (before any delivery).
	TrueUtil  float64
	Reading   float64
	Delivered bool
	Lost      bool
	Down      bool
	Missed    bool
	Reset     bool

	// Tick environment: the row-side state that gates what the policy's
	// output means. Watchdog is the deadman self-cap being engaged;
	// FailSafe is the telemetry guard's conservative cap; Stage is the
	// policy's engagement depth (0 = uncapped) as reported by StageReporter.
	Braked       bool
	BrakePending bool
	Watchdog     bool
	FailSafe     bool
	Stage        int8

	// Tick action: the pool locks desired after the policy ran (0 = uncap).
	LPDesiredMHz float64
	HPDesiredMHz float64

	// Tick load snapshot: busy servers and GPU power per pool, for regret
	// estimation without re-simulation.
	LPBusy  int32
	HPBusy  int32
	LPWatts float64
	HPWatts float64

	// Route inputs: the request being placed and the candidate snapshot
	// (EpOff/EpLen index the recorder's candidate arena).
	ReqID   int64
	Class   string
	Pri     int8
	Retry   int32
	Session int64
	Prefix  int32
	EpOff   int32
	EpLen   int32
	// Chosen is the picked candidate's index into the snapshot (-1 = no
	// server available).
	Chosen int32
}

// RouteCandidate is one endpoint as the router saw it: the replica's node
// index, queued+running load, KV occupancy, and applied cap.
type RouteCandidate struct {
	Server    int32
	Load      int32
	KVFrac    float64
	CappedMHz float64
}

// Candidates returns the decision's route snapshot from the arena slice
// returned alongside it (nil for tick decisions).
func (d Decision) Candidates(arena []RouteCandidate) []RouteCandidate {
	if d.Kind != DecRoute || d.EpLen == 0 {
		return nil
	}
	return arena[d.EpOff : d.EpOff+d.EpLen]
}

// RungSpec mirrors polca.Rung in the decision-log header.
type RungSpec struct {
	Trigger float64 `json:"trigger"`
	Margin  float64 `json:"margin"`
	Pool    int8    `json:"pool"`
	LockMHz float64 `json:"lock_mhz"`
	Delay   int     `json:"delay,omitempty"`
}

// PolicySpec is the deployed cap policy's full configuration, written to
// the log header so replay can reconstruct the controller (and variants of
// it) without access to the original command line.
type PolicySpec struct {
	// Kind selects the controller family: "polca", "1t" (single
	// threshold), "ladder", or "nocap".
	Kind string `json:"kind"`
	// polca fields.
	T1          float64 `json:"t1,omitempty"`
	T2          float64 `json:"t2,omitempty"`
	UncapMargin float64 `json:"uncap_margin,omitempty"`
	LPBaseMHz   float64 `json:"lp_base_mhz,omitempty"`
	LPDeepMHz   float64 `json:"lp_deep_mhz,omitempty"`
	HPCapMHz    float64 `json:"hp_cap_mhz,omitempty"`
	// 1t fields.
	Threshold float64 `json:"threshold,omitempty"`
	Margin    float64 `json:"margin,omitempty"`
	LockMHz   float64 `json:"lock_mhz,omitempty"`
	All       bool    `json:"all,omitempty"`
	// ladder fields.
	Name  string     `json:"name,omitempty"`
	Rungs []RungSpec `json:"rungs,omitempty"`
}

// GuardSpec mirrors polca.GuardConfig in the decision-log header.
type GuardSpec struct {
	Window        int     `json:"window"`
	StuckAfter    int     `json:"stuck_after"`
	StuckMinUtil  float64 `json:"stuck_min_util"`
	FailSafeAfter int     `json:"failsafe_after"`
	MaxStep       float64 `json:"max_step"`
	FailSafeLPMHz float64 `json:"failsafe_lp_mhz"`
	FailSafeHPMHz float64 `json:"failsafe_hp_mhz"`
}

// DecisionMeta is the log header: everything replay needs to rebuild the
// deployed policy, interpret the snapshots, and convert lock deltas into
// watts and seconds. It is the first line of the JSONL file.
type DecisionMeta struct {
	Schema string `json:"schema"`
	// Policy is the deployed controller's display name ("polca", "guard(polca)").
	Policy string     `json:"policy"`
	Spec   PolicySpec `json:"spec"`
	// Guard is set when the deployed controller ran behind the telemetry
	// guard; replay wraps alternates identically.
	Guard *GuardSpec `json:"guard,omitempty"`
	// Watchdog configuration (0 epochs = disabled).
	WatchdogEpochs int     `json:"watchdog_epochs,omitempty"`
	WatchdogLPMHz  float64 `json:"watchdog_lp_mhz,omitempty"`
	WatchdogHPMHz  float64 `json:"watchdog_hp_mhz,omitempty"`
	// Row shape and power model constants.
	TelemetrySec     float64 `json:"telemetry_s"`
	Servers          int     `json:"servers"`
	LPServers        int     `json:"lp_servers"`
	HPServers        int     `json:"hp_servers"`
	ProvisionedW     float64 `json:"provisioned_w"`
	BrakeUtil        float64 `json:"brake_util"`
	BrakeReleaseUtil float64 `json:"brake_release_util"`
	IdleServerW      float64 `json:"idle_server_w"`
	BusyServerW      float64 `json:"busy_server_w"`
	UncappedMHz      float64 `json:"uncapped_mhz,omitempty"`
	// Model and DType name the served model, so replay can profile lock
	// slowdown/power factors on the same inference cost model the run used.
	Model string `json:"model,omitempty"`
	DType string `json:"dtype,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// Serve-mode routing: Router is the deployed router's name.
	Serve  bool   `json:"serve,omitempty"`
	Router string `json:"router,omitempty"`
}

// DecisionRecorder records decisions with their input snapshots. It is safe
// for concurrent use; a nil *DecisionRecorder is a valid disabled recorder
// — RecordTick/RecordRoute on nil return after a single branch, which is
// the non-perturbation guarantee the row relies on (see
// BenchmarkDecisionRecord for the enabled path's zero-alloc contract).
type DecisionRecorder struct {
	mu    sync.Mutex
	seq   uint64
	meta  DecisionMeta
	recs  []Decision
	cands []RouteCandidate
}

// NewDecisionRecorder returns an enabled recorder.
func NewDecisionRecorder() *DecisionRecorder {
	return &DecisionRecorder{}
}

// Enabled reports whether decisions are being recorded.
func (r *DecisionRecorder) Enabled() bool { return r != nil }

// SetMeta stores the log header; the row fills the shape fields at
// construction and the CLI fills the policy spec.
func (r *DecisionRecorder) SetMeta(m DecisionMeta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.meta = m
	r.mu.Unlock()
}

// UpdateMeta edits the stored header in place under the recorder's lock.
func (r *DecisionRecorder) UpdateMeta(fn func(*DecisionMeta)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fn(&r.meta)
	r.mu.Unlock()
}

// Meta returns the stored header.
func (r *DecisionRecorder) Meta() DecisionMeta {
	if r == nil {
		return DecisionMeta{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.meta
}

// RecordTick records one controller-tick decision.
func (r *DecisionRecorder) RecordTick(d Decision) {
	if r == nil {
		return
	}
	d.Kind = DecTick
	r.mu.Lock()
	r.seq++
	d.Seq = r.seq
	r.recs = append(r.recs, d)
	r.mu.Unlock()
}

// RecordRoute records one router decision with its candidate snapshot. The
// candidates are copied into the recorder's arena, so callers may reuse
// their scratch slice across calls.
func (r *DecisionRecorder) RecordRoute(d Decision, cands []RouteCandidate) {
	if r == nil {
		return
	}
	d.Kind = DecRoute
	r.mu.Lock()
	r.seq++
	d.Seq = r.seq
	d.EpOff = int32(len(r.cands))
	d.EpLen = int32(len(cands))
	r.cands = append(r.cands, cands...)
	r.recs = append(r.recs, d)
	r.mu.Unlock()
}

// Len returns the number of recorded decisions.
func (r *DecisionRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Decisions returns a copy of the recorded decisions in order, plus the
// candidate arena route decisions index into via Decision.Candidates.
func (r *DecisionRecorder) Decisions() ([]Decision, []RouteCandidate) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := make([]Decision, len(r.recs))
	copy(recs, r.recs)
	cands := make([]RouteCandidate, len(r.cands))
	copy(cands, r.cands)
	return recs, cands
}

// Reset discards recorded decisions but keeps buffer capacity and the
// stored header; the sequence counter restarts.
func (r *DecisionRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs = r.recs[:0]
	r.cands = r.cands[:0]
	r.seq = 0
	r.mu.Unlock()
}

// appendDecisionJSON renders one decision as a single JSON object with
// fixed field order and omitted zero fields, mirroring appendEventJSON.
func appendDecisionJSON(b []byte, d Decision, arena []RouteCandidate) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, d.Seq, 10)
	b = append(b, `,"t_us":`...)
	b = strconv.AppendInt(b, int64(d.At/time.Microsecond), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, d.Kind.String())
	switch d.Kind {
	case DecTick:
		b = append(b, `,"true_util":`...)
		b = strconv.AppendFloat(b, d.TrueUtil, 'g', -1, 64)
		if d.Delivered {
			b = append(b, `,"util":`...)
			b = strconv.AppendFloat(b, d.Reading, 'g', -1, 64)
		}
		if d.Lost {
			b = append(b, `,"lost":true`...)
		}
		if d.Down {
			b = append(b, `,"down":true`...)
		}
		if d.Missed {
			b = append(b, `,"missed":true`...)
		}
		if d.Reset {
			b = append(b, `,"reset":true`...)
		}
		if d.Braked {
			b = append(b, `,"braked":true`...)
		}
		if d.BrakePending {
			b = append(b, `,"brake_pending":true`...)
		}
		if d.Watchdog {
			b = append(b, `,"wd":true`...)
		}
		if d.FailSafe {
			b = append(b, `,"failsafe":true`...)
		}
		if d.Stage != 0 {
			b = append(b, `,"stage":`...)
			b = strconv.AppendInt(b, int64(d.Stage), 10)
		}
		b = append(b, `,"lp_mhz":`...)
		b = strconv.AppendFloat(b, d.LPDesiredMHz, 'g', -1, 64)
		b = append(b, `,"hp_mhz":`...)
		b = strconv.AppendFloat(b, d.HPDesiredMHz, 'g', -1, 64)
		if d.LPBusy != 0 {
			b = append(b, `,"lp_busy":`...)
			b = strconv.AppendInt(b, int64(d.LPBusy), 10)
		}
		if d.HPBusy != 0 {
			b = append(b, `,"hp_busy":`...)
			b = strconv.AppendInt(b, int64(d.HPBusy), 10)
		}
		if d.LPWatts != 0 {
			b = append(b, `,"lp_w":`...)
			b = strconv.AppendFloat(b, d.LPWatts, 'g', -1, 64)
		}
		if d.HPWatts != 0 {
			b = append(b, `,"hp_w":`...)
			b = strconv.AppendFloat(b, d.HPWatts, 'g', -1, 64)
		}
	case DecRoute:
		b = append(b, `,"req":`...)
		b = strconv.AppendInt(b, d.ReqID, 10)
		if d.Class != "" {
			b = append(b, `,"class":`...)
			b = appendJSONString(b, d.Class)
		}
		b = append(b, `,"pri":`...)
		b = strconv.AppendInt(b, int64(d.Pri), 10)
		if d.Retry != 0 {
			b = append(b, `,"retry":`...)
			b = strconv.AppendInt(b, int64(d.Retry), 10)
		}
		if d.Session != 0 {
			b = append(b, `,"session":`...)
			b = strconv.AppendInt(b, d.Session, 10)
		}
		if d.Prefix != 0 {
			b = append(b, `,"prefix":`...)
			b = strconv.AppendInt(b, int64(d.Prefix), 10)
		}
		b = append(b, `,"chosen":`...)
		b = strconv.AppendInt(b, int64(d.Chosen), 10)
		b = append(b, `,"eps":[`...)
		for i, c := range d.Candidates(arena) {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, '[')
			b = strconv.AppendInt(b, int64(c.Server), 10)
			b = append(b, ',')
			b = strconv.AppendInt(b, int64(c.Load), 10)
			b = append(b, ',')
			b = strconv.AppendFloat(b, c.KVFrac, 'g', -1, 64)
			b = append(b, ',')
			b = strconv.AppendFloat(b, c.CappedMHz, 'g', -1, 64)
			b = append(b, ']')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// WriteJSONL writes the log: the meta header line first, then one decision
// per line in record order. The decision encoding is hand-rolled (fixed
// field order, omitted zero fields) so identical runs produce identical
// bytes; the header uses encoding/json, which is also deterministic for a
// struct.
func (r *DecisionRecorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	meta := r.Meta()
	meta.Schema = DecisionSchema
	recs, cands := r.Decisions()
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	buf := make([]byte, 0, 512)
	for _, d := range recs {
		buf = appendDecisionJSON(buf[:0], d, cands)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decisionJSON is the decode-side shadow of appendDecisionJSON. Util is a
// pointer so Delivered survives the round trip ("util" present iff a
// reading was delivered — 0.0 is a legitimate reading).
type decisionJSON struct {
	Seq          uint64      `json:"seq"`
	TUS          int64       `json:"t_us"`
	Kind         string      `json:"kind"`
	TrueUtil     float64     `json:"true_util"`
	Util         *float64    `json:"util"`
	Lost         bool        `json:"lost"`
	Down         bool        `json:"down"`
	Missed       bool        `json:"missed"`
	Reset        bool        `json:"reset"`
	Braked       bool        `json:"braked"`
	BrakePending bool        `json:"brake_pending"`
	WD           bool        `json:"wd"`
	FailSafe     bool        `json:"failsafe"`
	Stage        int8        `json:"stage"`
	LPMHz        float64     `json:"lp_mhz"`
	HPMHz        float64     `json:"hp_mhz"`
	LPBusy       int32       `json:"lp_busy"`
	HPBusy       int32       `json:"hp_busy"`
	LPW          float64     `json:"lp_w"`
	HPW          float64     `json:"hp_w"`
	Req          int64       `json:"req"`
	Class        string      `json:"class"`
	Pri          int8        `json:"pri"`
	Retry        int32       `json:"retry"`
	Session      int64       `json:"session"`
	Prefix       int32       `json:"prefix"`
	Chosen       int32       `json:"chosen"`
	Eps          [][]float64 `json:"eps"`
}

// parseDecisionLine decodes one decision line; route candidates are
// appended to cands and indexed by the returned decision.
func parseDecisionLine(raw []byte, cands []RouteCandidate) (Decision, []RouteCandidate, error) {
	dj := decisionJSON{Chosen: -1}
	if err := json.Unmarshal(raw, &dj); err != nil {
		return Decision{}, cands, err
	}
	kind, ok := ParseDecisionKind(dj.Kind)
	if !ok {
		return Decision{}, cands, fmt.Errorf("unknown kind %q", dj.Kind)
	}
	d := Decision{
		Seq:  dj.Seq,
		At:   time.Duration(dj.TUS) * time.Microsecond,
		Kind: kind,
	}
	switch kind {
	case DecTick:
		d.TrueUtil = dj.TrueUtil
		if dj.Util != nil {
			d.Delivered = true
			d.Reading = *dj.Util
		}
		d.Lost, d.Down, d.Missed, d.Reset = dj.Lost, dj.Down, dj.Missed, dj.Reset
		d.Braked, d.BrakePending = dj.Braked, dj.BrakePending
		d.Watchdog, d.FailSafe, d.Stage = dj.WD, dj.FailSafe, dj.Stage
		d.LPDesiredMHz, d.HPDesiredMHz = dj.LPMHz, dj.HPMHz
		d.LPBusy, d.HPBusy = dj.LPBusy, dj.HPBusy
		d.LPWatts, d.HPWatts = dj.LPW, dj.HPW
	case DecRoute:
		d.ReqID, d.Class, d.Pri = dj.Req, dj.Class, dj.Pri
		d.Retry, d.Session, d.Prefix = dj.Retry, dj.Session, dj.Prefix
		d.Chosen = dj.Chosen
		d.EpOff = int32(len(cands))
		d.EpLen = int32(len(dj.Eps))
		for i, ep := range dj.Eps {
			if len(ep) != 4 {
				return Decision{}, cands, fmt.Errorf("eps[%d]: want 4 elements, got %d", i, len(ep))
			}
			cands = append(cands, RouteCandidate{
				Server:    int32(ep[0]),
				Load:      int32(ep[1]),
				KVFrac:    ep[2],
				CappedMHz: ep[3],
			})
		}
	}
	return d, cands, nil
}

// ScanDecisions streams a decision log produced by WriteJSONL: the header
// is validated and returned, then fn runs once per decision in file order.
// The cands slice passed to fn is the decision's candidate snapshot (nil
// for ticks) and is only valid during the callback. Blank lines are
// skipped; `#` provenance lines go to comment (when non-nil).
//
// The sequence numbers must run 1,2,3,... without gaps: a jump or repeat
// fails with the 1-based line number, so a truncated or spliced log cannot
// be silently replayed. A file truncated mid-line surfaces as a JSON parse
// error on that line.
func ScanDecisions(r io.Reader, comment func(line string), fn func(d Decision, cands []RouteCandidate) error) (DecisionMeta, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), scanSpansMaxLine)
	line := 0
	var meta DecisionMeta
	sawMeta := false
	lastSeq := uint64(0)
	var scratch []RouteCandidate
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '#' {
			if comment != nil {
				comment(string(raw))
			}
			continue
		}
		if !sawMeta {
			if err := json.Unmarshal(raw, &meta); err != nil {
				return meta, fmt.Errorf("decisions line %d: header: %w", line, err)
			}
			if meta.Schema != DecisionSchema {
				return meta, fmt.Errorf("decisions line %d: schema %q, want %q", line, meta.Schema, DecisionSchema)
			}
			sawMeta = true
			continue
		}
		var d Decision
		var err error
		d, scratch, err = parseDecisionLine(raw, scratch[:0])
		if err != nil {
			return meta, fmt.Errorf("decisions line %d: %w", line, err)
		}
		if d.Seq != lastSeq+1 {
			if d.Seq > lastSeq+1 {
				return meta, fmt.Errorf("decisions line %d: sequence gap: seq %d follows %d (%d decisions missing)",
					line, d.Seq, lastSeq, d.Seq-lastSeq-1)
			}
			return meta, fmt.Errorf("decisions line %d: sequence regression: seq %d follows %d",
				line, d.Seq, lastSeq)
		}
		lastSeq = d.Seq
		if err := fn(d, d.Candidates(scratch)); err != nil {
			return meta, fmt.Errorf("decisions line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return meta, fmt.Errorf("decisions line %d: longer than %d bytes: %w", line+1, scanSpansMaxLine, err)
		}
		return meta, fmt.Errorf("decisions line %d: %w", line+1, err)
	}
	if !sawMeta {
		return meta, errors.New("decisions: empty log (no header line)")
	}
	return meta, nil
}
