package obs

import (
	"strings"
	"testing"
	"time"
)

// testDB returns a small TSDB: 1s raw step, one 10s rollup window, tiny
// rings so eviction is easy to reach.
func testDB(capacity int) *TSDB {
	return NewTSDB(TSDBConfig{
		Step:     time.Second,
		Windows:  []time.Duration{10 * time.Second},
		Capacity: capacity,
	})
}

func TestBucketDownsampleSemantics(t *testing.T) {
	db := testDB(8)
	s := db.Series("sig", LevelRow)

	// Two samples in raw bucket [0,1s), one in [1s,2s).
	s.Observe(0, 4)
	s.Observe(500*time.Millisecond, 2)
	s.Observe(time.Second, 9)

	raw := s.Buckets(time.Second)
	if len(raw) != 2 {
		t.Fatalf("raw buckets = %d, want 2", len(raw))
	}
	b0 := raw[0]
	if b0.Min != 2 || b0.Max != 4 || b0.Mean() != 3 || b0.Last != 2 || b0.Count != 2 {
		t.Errorf("bucket0 = %+v, want min 2 max 4 mean 3 last 2 count 2", b0)
	}
	// The 10s rollup absorbs all three samples into one open bucket.
	coarse := s.Buckets(10 * time.Second)
	if len(coarse) != 1 {
		t.Fatalf("10s buckets = %d, want 1", len(coarse))
	}
	if c := coarse[0]; c.Min != 2 || c.Max != 9 || c.Count != 3 || c.Last != 9 {
		t.Errorf("10s bucket = %+v, want min 2 max 9 last 9 count 3", c)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	db := testDB(4)
	s := db.Series("sig", LevelRow)
	// 6 sealed raw buckets + 1 open; capacity 4 keeps the newest 4 sealed.
	for i := 0; i <= 6; i++ {
		s.Observe(time.Duration(i)*time.Second, float64(i))
	}
	raw := s.Buckets(time.Second)
	if len(raw) != 5 { // 4 sealed + open
		t.Fatalf("raw buckets = %d, want 5", len(raw))
	}
	if raw[0].Start != 2*time.Second || raw[len(raw)-1].Start != 6*time.Second {
		t.Errorf("retained window [%v,%v], want [2s,6s]", raw[0].Start, raw[len(raw)-1].Start)
	}
	// t=0 fell off the raw ring but the open 10s rollup bucket [0,10s)
	// still covers it; its Last is the newest sample in the window.
	if v, ok := s.ValueAt(0); !ok || v != 6 {
		t.Errorf("ValueAt(0) = %v,%v, want 6,true (10s rollup)", v, ok)
	}
}

func TestValueAtPrefersFinestResolution(t *testing.T) {
	db := testDB(4)
	s := db.Series("sig", LevelRow)
	for i := 0; i <= 6; i++ {
		s.Observe(time.Duration(i)*time.Second, float64(i))
	}
	// t=3s is retained raw: exact per-second value.
	if v, ok := s.ValueAt(3 * time.Second); !ok || v != 3 {
		t.Errorf("ValueAt(3s) = %v,%v, want 3,true", v, ok)
	}
	// t=1s was evicted from raw; the open 10s bucket covers it but its
	// Last reflects the newest sample in the window — coarser, still
	// available.
	if v, ok := s.ValueAt(time.Second); !ok || v != 6 {
		t.Errorf("ValueAt(1s) = %v,%v, want 6,true (coarse bucket last)", v, ok)
	}
	// Future time: not covered.
	if _, ok := s.ValueAt(time.Hour); ok {
		t.Error("ValueAt(1h) = ok, want false")
	}
}

func TestRollupHierarchySumAndMax(t *testing.T) {
	db := testDB(8)
	// Register in the cluster's order: site, then row, then servers —
	// Flush walks reverse registration order so aggregates propagate
	// upward in one call.
	site := db.Series("site.power", LevelSite, WithUnit("W"))
	row := db.Series("row.power", LevelRow, WithParent(site, AggSum), WithUnit("W"))
	s1 := db.Series(`server.power{server="0"}`, LevelServer, WithParent(row, AggSum))
	s2 := db.Series(`server.power{server="1"}`, LevelServer, WithParent(row, AggSum))

	s1.Observe(0, 10)
	s2.Observe(0, 20)
	s1.Observe(time.Second, 11)
	s2.Observe(time.Second, 21)
	db.Flush()

	if v, ok := row.Last(); !ok || v != 32 {
		t.Errorf("row.Last = %v,%v, want 32,true", v, ok)
	}
	if v, ok := site.Last(); !ok || v != 32 {
		t.Errorf("site.Last = %v,%v, want 32,true", v, ok)
	}
	// The first step's aggregate is retained at t=0.
	if v, ok := row.ValueAt(0); !ok || v != 30 {
		t.Errorf("row.ValueAt(0) = %v,%v, want 30,true", v, ok)
	}
	if v, ok := site.ValueAt(0); !ok || v != 30 {
		t.Errorf("site.ValueAt(0) = %v,%v, want 30,true", v, ok)
	}
	// Flush is idempotent: a second call must not double-ingest.
	db.Flush()
	if b := row.Buckets(time.Second); len(b) != 2 {
		t.Errorf("row raw buckets after double flush = %d, want 2", len(b))
	}

	// Max rollup: first child's Agg wins for the parent.
	rowCap := db.Series("row.capmhz", LevelRow)
	c1 := db.Series(`server.capmhz{server="0"}`, LevelServer, WithParent(rowCap, AggMax))
	c2 := db.Series(`server.capmhz{server="1"}`, LevelServer, WithParent(rowCap, AggMax))
	c1.Observe(0, 1200)
	c2.Observe(0, 1980)
	db.Flush()
	if v, ok := rowCap.Last(); !ok || v != 1980 {
		t.Errorf("rowCap.Last = %v,%v, want 1980,true (max)", v, ok)
	}
}

func TestCounterAddAndDeltaOver(t *testing.T) {
	db := testDB(32)
	c := db.Series("row.req_total", LevelRow, CounterSeries())
	if !c.IsCounter() {
		t.Fatal("CounterSeries not applied")
	}
	for i := 0; i < 20; i++ {
		c.Add(time.Duration(i)*time.Second, 2) // +2/s
	}
	now := 19 * time.Second
	if d, ok := c.DeltaOver(now, 10*time.Second); !ok || d != 20 {
		t.Errorf("DeltaOver(10s) = %v,%v, want 20,true", d, ok)
	}
	// Window reaching before t=0: unretained.
	if _, ok := c.DeltaOver(5*time.Second, 10*time.Second); ok {
		t.Error("DeltaOver with pre-run window start = ok, want false")
	}
	if _, ok := c.DeltaOver(now, 0); ok {
		t.Error("DeltaOver(0) = ok, want false")
	}
}

func TestSeriesRegistrationIdempotent(t *testing.T) {
	db := testDB(8)
	a := db.Series("sig", LevelRow, WithUnit("W"))
	b := db.Series("sig", LevelSite, WithUnit("MHz")) // options ignored
	if a != b {
		t.Fatal("re-registration returned a different series")
	}
	if a.Unit() != "W" || a.Level() != LevelRow {
		t.Errorf("first registration's options lost: unit=%q level=%v", a.Unit(), a.Level())
	}
	if db.NumSeries() != 1 {
		t.Errorf("NumSeries = %d, want 1", db.NumSeries())
	}
	if db.Lookup("sig") != a || db.Lookup("nope") != nil {
		t.Error("Lookup mismatch")
	}
}

func TestTSDBNilSafety(t *testing.T) {
	var db *TSDB
	if db.Enabled() || db.Step() != 0 || db.Windows() != nil || db.NumSeries() != 0 || db.MemoryBytes() != 0 {
		t.Error("nil TSDB accessors not zero")
	}
	db.Flush()
	db.Each(func(*TSSeries) { t.Error("Each on nil db called fn") })
	if db.Series("x", LevelRow) != nil || db.Lookup("x") != nil {
		t.Error("nil db Series/Lookup not nil")
	}
	if err := db.WritePrometheus(nil, ""); err != nil {
		t.Error(err)
	}
	if err := db.WriteChromeTrace(nil, time.Second); err != nil {
		t.Error(err)
	}

	var s *TSSeries
	s.Observe(0, 1)
	s.Add(0, 1)
	if _, ok := s.Last(); ok {
		t.Error("nil series Last ok")
	}
	if s.LastTime() != 0 || s.Name() != "" || s.Unit() != "" || s.IsCounter() {
		t.Error("nil series accessors not zero")
	}
	if _, ok := s.ValueAt(0); ok {
		t.Error("nil series ValueAt ok")
	}
	if _, ok := s.DeltaOver(time.Second, time.Second); ok {
		t.Error("nil series DeltaOver ok")
	}
	if s.Buckets(time.Second) != nil {
		t.Error("nil series Buckets not nil")
	}
}

// TestTSDBMemoryIndependentOfRunLength is the acceptance criterion: the
// retained footprint is fixed at registration and does not grow with the
// number of observations (a 7-day run retains the same bytes as a 1-hour
// run).
func TestTSDBMemoryIndependentOfRunLength(t *testing.T) {
	build := func(ticks int) int {
		db := NewTSDB(TSDBConfig{Step: 2 * time.Second})
		site := db.Series("site.power", LevelSite)
		row := db.Series("row.power", LevelRow, WithParent(site, AggSum))
		srv := make([]*TSSeries, 16)
		for i := range srv {
			srv[i] = db.Series("server.power{server=\""+string(rune('a'+i))+"\"}",
				LevelServer, WithParent(row, AggSum), WithCapacity(128))
		}
		for tick := 0; tick < ticks; tick++ {
			at := time.Duration(tick) * 2 * time.Second
			for _, s := range srv {
				s.Observe(at, 400)
			}
		}
		db.Flush()
		return db.MemoryBytes()
	}
	short := build(100)       // ~3 sim-minutes
	long := build(7 * 43_200) // 7 sim-days of 2s ticks
	if short != long {
		t.Errorf("MemoryBytes grew with run length: %d (short) vs %d (long)", short, long)
	}
	if short == 0 {
		t.Error("MemoryBytes = 0, want positive")
	}
}

// TestTSDBIngestSteadyStateZeroAlloc pins the zero-perturbation ingest
// property: after registration and first ring wrap, Observe and Add do not
// allocate. CI enforces the same property via BenchmarkTSDBIngest's
// allocs/op.
func TestTSDBIngestSteadyStateZeroAlloc(t *testing.T) {
	db := testDB(16)
	row := db.Series("row.power", LevelRow)
	srv := db.Series("server.power", LevelServer, WithParent(row, AggSum))
	ctr := db.Series("row.req_total", LevelRow, CounterSeries())

	// Warm past every ring's wrap point (10s window × 16 buckets = 160s).
	at := time.Duration(0)
	for i := 0; i < 400; i++ {
		at += time.Second
		srv.Observe(at, float64(i))
		ctr.Add(at, 1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		at += time.Second
		srv.Observe(at, 512)
		ctr.Add(at, 1)
		db.Flush()
	})
	if allocs != 0 {
		t.Errorf("steady-state ingest allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestTSDBWritePrometheus(t *testing.T) {
	db := testDB(8)
	site := db.Series("site.power", LevelSite, WithUnit("W"))
	row := db.Series("row.power", LevelRow, WithParent(site, AggSum))
	srv := db.Series(`server.power{server="3"}`, LevelServer, WithParent(row, AggSum))
	ctr := db.Series("row.oob-fail_total", LevelRow, CounterSeries())
	srv.Observe(0, 420.5)
	ctr.Add(0, 3)
	db.Series("row.silent", LevelRow) // never observed: omitted
	srv.Observe(time.Second, 421)
	db.Flush()

	var b strings.Builder
	if err := db.WritePrometheus(&b, `policy="polca"`); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# TYPE server_power gauge\n",
		`server_power{server="3",level="server",policy="polca"} 421`,
		"# TYPE row_oob_fail_total counter\n",
		`row_oob_fail_total{level="row",policy="polca"} 3`,
		`row_power{level="row",policy="polca"} 421`,
		`site_power{level="site",policy="polca"} 421`,
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "row_silent") {
		t.Errorf("exposition contains never-observed series:\n%s", out)
	}
	// Determinism: two renders are identical.
	var b2 strings.Builder
	if err := db.WritePrometheus(&b2, `policy="polca"`); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus not deterministic")
	}
}

func TestTSDBWriteChromeTrace(t *testing.T) {
	db := testDB(8)
	site := db.Series("site.power", LevelSite)
	row := db.Series("row.power", LevelRow, WithParent(site, AggSum))
	srv := db.Series(`server.power{server="0"}`, LevelServer, WithParent(row, AggSum))
	for i := 0; i < 5; i++ {
		srv.Observe(time.Duration(i)*time.Second, 400+float64(i))
	}
	var b strings.Builder
	if err := db.WriteChromeTrace(&b, time.Second); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		`"name":"process_name"`, `"tsdb:site"`, `"tsdb:row"`, `"tsdb:server"`,
		`"ph":"C"`, `"server.power{server=\"0\"}"`,
	} {
		if !strings.Contains(out, w) {
			t.Errorf("chrome trace missing %q:\n%s", w, out)
		}
	}
}

// BenchmarkTSDBIngest is part of the CI benchmark trajectory; CI fails the
// build if allocs/op is nonzero (the observability tax on the hot sim loop
// must stay fixed-cost).
func BenchmarkTSDBIngest(b *testing.B) {
	db := NewTSDB(TSDBConfig{Step: 2 * time.Second})
	site := db.Series("site.power", LevelSite)
	row := db.Series("row.power", LevelRow, WithParent(site, AggSum))
	srv := make([]*TSSeries, 16)
	for i := range srv {
		srv[i] = db.Series("server.power{server=\""+string(rune('a'+i))+"\"}",
			LevelServer, WithParent(row, AggSum), WithCapacity(128))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * 2 * time.Second
		for _, s := range srv {
			s.Observe(at, float64(i&1023))
		}
		db.Flush()
	}
}
