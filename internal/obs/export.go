package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// appendJSONString appends s as a JSON string literal. Event strings are
// short static reasons/labels, so only the escapes that can actually occur
// plus the mandatory control-character range are handled.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\t':
			b = append(b, '\\', 't')
		case r < 0x20:
			b = append(b, fmt.Sprintf("\\u%04x", r)...)
		default:
			b = utf8AppendRune(b, r)
		}
	}
	return append(b, '"')
}

func utf8AppendRune(b []byte, r rune) []byte {
	var tmp [4]byte
	n := copy(tmp[:], string(r))
	return append(b, tmp[:n]...)
}

// appendEventJSON renders one event as a single JSON object. Fields are
// emitted in a fixed order and zero-valued optional fields are omitted, so
// the JSONL output is deterministic and diff-friendly.
func appendEventJSON(b []byte, ev Event) []byte {
	b = append(b, '{')
	if ev.Seq != 0 {
		b = append(b, `"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
		b = append(b, ',')
	}
	b = append(b, `"t_us":`...)
	b = strconv.AppendInt(b, int64(ev.At/time.Microsecond), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, ev.Kind.String())
	if ev.Server >= 0 {
		b = append(b, `,"server":`...)
		b = strconv.AppendInt(b, int64(ev.Server), 10)
	}
	if name := PoolName(ev.Pool); name != "" {
		b = append(b, `,"pool":`...)
		b = appendJSONString(b, name)
	}
	if ev.MHz != 0 {
		b = append(b, `,"mhz":`...)
		b = strconv.AppendFloat(b, ev.MHz, 'g', -1, 64)
	}
	if ev.Value != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	}
	if ev.Reason != "" {
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, ev.Reason)
	}
	if ev.Label != "" {
		b = append(b, `,"label":`...)
		b = appendJSONString(b, ev.Label)
	}
	return append(b, '}')
}

// WriteJSONL writes the tracer's events, one JSON object per line, in
// emission order. The encoding is hand-rolled (fixed field order, omitted
// zero fields) so identical runs produce identical bytes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	for _, ev := range t.Events() {
		buf = appendEventJSON(buf[:0], ev)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeTraceRow is one emitted trace-event object in the Chrome
// trace-event format (the "JSON array format" Perfetto and chrome://tracing
// both load).
type chromeTraceRow struct {
	name string
	ph   string // "X" duration, "i" instant, "M" metadata
	ts   int64  // microseconds
	dur  int64  // microseconds, ph "X" only
	tid  int32
	args string // pre-rendered JSON object body, may be ""
}

func (r chromeTraceRow) append(b []byte) []byte {
	b = append(b, `{"name":`...)
	b = appendJSONString(b, r.name)
	b = append(b, `,"ph":`...)
	b = appendJSONString(b, r.ph)
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(r.tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, r.ts, 10)
	if r.ph == "X" {
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, r.dur, 10)
	}
	if r.ph == "i" {
		b = append(b, `,"s":"t"`...)
	}
	if r.args != "" {
		b = append(b, `,"args":{`...)
		b = append(b, r.args...)
		b = append(b, '}')
	}
	return append(b, '}')
}

// Track ids: row-level events live on tid 0; server s lives on tid s+1.
const rowTrack = 0

func serverTrack(server int32) int32 { return server + 1 }

// WriteChromeTrace renders the tracer's events in the Chrome trace-event
// JSON format: one thread ("track") for row-level events and one per
// server, with capping intervals (cap.apply → cap.release) and the power
// brake (brake.engage → brake.release) as duration spans and everything
// else as instants. The output loads directly in chrome://tracing and
// ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := t.Events()
	var rows []chromeTraceRow
	maxServer := int32(-1)
	lastTS := int64(0)

	type openSpan struct {
		startUS int64
		name    string
		args    string
	}
	capOpen := map[int32]openSpan{}  // server -> open capping span
	var brakeOpen *openSpan          // row-level brake span

	for _, ev := range events {
		ts := int64(ev.At / time.Microsecond)
		if ts > lastTS {
			lastTS = ts
		}
		if ev.Server > maxServer {
			maxServer = ev.Server
		}
		switch ev.Kind {
		case KindCapApply:
			// A re-lock at a new frequency closes the previous span.
			if sp, ok := capOpen[ev.Server]; ok {
				rows = append(rows, chromeTraceRow{
					name: sp.name, ph: "X", ts: sp.startUS, dur: ts - sp.startUS,
					tid: serverTrack(ev.Server), args: sp.args,
				})
			}
			capOpen[ev.Server] = openSpan{
				startUS: ts,
				name:    fmt.Sprintf("cap %.0f MHz", ev.MHz),
				args:    `"mhz":` + strconv.FormatFloat(ev.MHz, 'g', -1, 64) + `,"pool":"` + PoolName(ev.Pool) + `"`,
			}
		case KindCapRelease:
			if sp, ok := capOpen[ev.Server]; ok {
				rows = append(rows, chromeTraceRow{
					name: sp.name, ph: "X", ts: sp.startUS, dur: ts - sp.startUS,
					tid: serverTrack(ev.Server), args: sp.args,
				})
				delete(capOpen, ev.Server)
			}
		case KindBrakeEngage:
			brakeOpen = &openSpan{startUS: ts, name: "power brake"}
		case KindBrakeRelease:
			if brakeOpen != nil {
				rows = append(rows, chromeTraceRow{
					name: brakeOpen.name, ph: "X", ts: brakeOpen.startUS,
					dur: ts - brakeOpen.startUS, tid: rowTrack,
				})
				brakeOpen = nil
			}
		case KindArrive, KindComplete, KindDrop:
			// Request-level instants flood the UI at full-run scale; they
			// remain in the JSONL export but are skipped here.
		default:
			tid := int32(rowTrack)
			if ev.Server >= 0 {
				tid = serverTrack(ev.Server)
			}
			args := ""
			if ev.Reason != "" {
				args = `"reason":` + string(appendJSONString(nil, ev.Reason))
			}
			if ev.Value != 0 {
				if args != "" {
					args += ","
				}
				args += `"value":` + strconv.FormatFloat(ev.Value, 'g', -1, 64)
			}
			rows = append(rows, chromeTraceRow{
				name: ev.Kind.String(), ph: "i", ts: ts, tid: tid, args: args,
			})
		}
	}
	// Close dangling spans at the last observed timestamp so locks still
	// held at end of run are visible.
	for server, sp := range capOpen {
		rows = append(rows, chromeTraceRow{
			name: sp.name, ph: "X", ts: sp.startUS, dur: lastTS - sp.startUS,
			tid: serverTrack(server), args: sp.args,
		})
	}
	if brakeOpen != nil {
		rows = append(rows, chromeTraceRow{
			name: brakeOpen.name, ph: "X", ts: brakeOpen.startUS,
			dur: lastTS - brakeOpen.startUS, tid: rowTrack,
		})
	}
	// Name the tracks.
	meta := []chromeTraceRow{{
		name: "thread_name", ph: "M", tid: rowTrack, args: `"name":"row"`,
	}}
	for s := int32(0); s <= maxServer; s++ {
		meta = append(meta, chromeTraceRow{
			name: "thread_name", ph: "M", tid: serverTrack(s),
			args: `"name":` + string(appendJSONString(nil, fmt.Sprintf("server %d", s))),
		})
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	first := true
	writeRow := func(r chromeTraceRow) error {
		buf = buf[:0]
		if !first {
			buf = append(buf, ',', '\n')
		}
		first = false
		buf = r.append(buf)
		_, err := bw.Write(buf)
		return err
	}
	for _, r := range meta {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
