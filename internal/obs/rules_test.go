package obs

import (
	"strings"
	"testing"
	"time"
)

// rulesHarness is one TSDB + engine + capturing tracer.
type rulesHarness struct {
	db *TSDB
	rl *Rules
	tr *Tracer
}

func newRulesHarness(t *testing.T, src string) *rulesHarness {
	t.Helper()
	set, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	db := NewTSDB(TSDBConfig{Step: time.Second, Windows: []time.Duration{10 * time.Second}})
	tr := NewTracer()
	return &rulesHarness{db: db, rl: NewRules(db, set, tr), tr: tr}
}

// alertEvents filters the trace down to fire/resolve events.
func (h *rulesHarness) alertEvents() []Event {
	var out []Event
	for _, ev := range h.tr.Events() {
		if ev.Kind == KindAlertFire || ev.Kind == KindAlertResolve {
			out = append(out, ev)
		}
	}
	return out
}

func TestParseRulesErrors(t *testing.T) {
	cases := []struct{ src, wantErr string }{
		{"", "no rules"},
		{"# only a comment\n", "no rules"},
		{"gauge x row.util", "unknown directive"},
		{"alert a row.util", "alert wants"},
		{"alert a row.util ~ 1", "bad comparison"},
		{"alert a row.util > 1 for nope", "bad for-duration"},
		{"alert a row.util > 1 for -5s", "bad for-duration"},
		{"alert a row.util > 1 bogus", "unexpected token"},
		{"alert a row.util > 1\nalert a row.util > 2", "duplicate rule name"},
		{"alert a rate(row.x) > 1", "rate wants"},
		{"alert a rate(row.x,0s) > 1", "bad rate window"},
		{"alert a rate(row.x,5s > 1", "unterminated rate"},
		{"alert a burn(g,t,1.5,5m,1h) > 6", "bad burn target"},
		{"alert a burn(g,t,0.9,5m,1m) > 6", "bad burn long window"},
		{"alert a burn(g,t,0.9,x,1h) > 6", "bad burn short window"},
		{"alert a sqrt(row.x) > 1", "unknown function"},
		{"alert a row.util > x*y", "bad rhs"},
		{"alert a row.util > 2*", "empty signal after *"},
		{"record r", "record wants"},
	}
	for _, tc := range cases {
		_, err := ParseRules(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseRules(%q) err = %v, want containing %q", tc.src, err, tc.wantErr)
		}
	}
	// Errors carry line numbers.
	if _, err := ParseRules("alert ok row.util > 1\nalert bad row.util ~ 1"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2", err)
	}
}

func TestParseDefaultRules(t *testing.T) {
	set, err := ParseRules(DefaultRules)
	if err != nil {
		t.Fatalf("committed default ruleset does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, s := range set.Specs {
		names[s.Name] = true
	}
	for _, want := range []string{"breaker-near", "breaker-breach", "ttft-slo-burn"} {
		if !names[want] {
			t.Errorf("default ruleset missing %q", want)
		}
	}
}

func TestThresholdFireAndResolve(t *testing.T) {
	h := newRulesHarness(t, "alert breach row.util > 1 severity page")
	util := h.db.Series("row.util", LevelRow)
	for i, v := range []float64{0.5, 1.2, 1.3, 0.8} {
		at := time.Duration(i+1) * time.Second
		util.Observe(at, v)
		h.rl.Eval(at)
	}
	st := h.rl.Alerts()[0]
	if st.Fires != 1 || st.ActiveSec != 2 || st.CondSec != 2 || st.LongestSec != 2 {
		t.Errorf("fires=%d active=%g cond=%g longest=%g, want 1/2/2/2",
			st.Fires, st.ActiveSec, st.CondSec, st.LongestSec)
	}
	if st.Active() {
		t.Error("still active after sub-threshold tick")
	}
	evs := h.alertEvents()
	if len(evs) != 2 {
		t.Fatalf("alert events = %d, want 2", len(evs))
	}
	fire, res := evs[0], evs[1]
	if fire.Kind != KindAlertFire || fire.At != 2*time.Second || fire.Value != 1.2 ||
		fire.Label != "breach" || fire.Reason != "row.util > 1" {
		t.Errorf("fire event = %+v", fire)
	}
	if res.Kind != KindAlertResolve || res.At != 4*time.Second || res.Value != 2 {
		t.Errorf("resolve event = %+v (value is episode seconds)", res)
	}
}

func TestForDurationRequiresContinuousBreach(t *testing.T) {
	h := newRulesHarness(t, "alert breach row.util > 1 for 2s")
	util := h.db.Series("row.util", LevelRow)
	// Two above, a dip (resets pending), then three above → fires on the
	// third consecutive tick (2s after pending started).
	vals := []float64{1.5, 1.5, 0.5, 1.5, 1.5, 1.5}
	for i, v := range vals {
		at := time.Duration(i+1) * time.Second
		util.Observe(at, v)
		h.rl.Eval(at)
	}
	st := h.rl.Alerts()[0]
	if st.Fires != 1 || !st.Active() {
		t.Fatalf("fires=%d active=%v, want 1 fire still active", st.Fires, st.Active())
	}
	evs := h.alertEvents()
	if len(evs) != 1 || evs[0].At != 6*time.Second {
		t.Errorf("fire at %v, want 6s (2s of continuous breach from t=4s)", evs[0].At)
	}
	// CondSec counts every breaching tick, including pre-fire pending ones.
	if st.CondSec != 5 {
		t.Errorf("CondSec = %g, want 5", st.CondSec)
	}
}

func TestRHSSignalScaling(t *testing.T) {
	h := newRulesHarness(t, "alert near row.power > 0.9*row.breaker")
	power := h.db.Series("row.power", LevelRow)
	breaker := h.db.Series("row.breaker", LevelRow)
	breaker.Observe(time.Second, 1000)
	power.Observe(time.Second, 850)
	h.rl.Eval(time.Second)
	if st := h.rl.Alerts()[0]; st.Active() {
		t.Error("fired below 0.9*breaker")
	}
	power.Observe(2*time.Second, 950)
	breaker.Observe(2*time.Second, 1000)
	h.rl.Eval(2 * time.Second)
	if st := h.rl.Alerts()[0]; !st.Active() {
		t.Error("did not fire above 0.9*breaker")
	}
}

func TestMissingSignalsHoldState(t *testing.T) {
	h := newRulesHarness(t, "alert ghost row.nope > 1\nalert half row.util > 2*row.nope")
	h.db.Series("row.util", LevelRow).Observe(time.Second, 5)
	h.rl.Eval(time.Second)
	for _, st := range h.rl.Alerts() {
		if st.Active() || st.Fires != 0 {
			t.Errorf("%s fired with missing signal", st.Spec.Name)
		}
		if st.NoData == 0 {
			t.Errorf("%s did not count no-data", st.Spec.Name)
		}
	}
	if evs := h.alertEvents(); len(evs) != 0 {
		t.Errorf("events on missing signals: %+v", evs)
	}
}

func TestRateRule(t *testing.T) {
	h := newRulesHarness(t, "alert storm rate(row.brake_total,10s) > 0.5")
	ctr := h.db.Series("row.brake_total", LevelRow, CounterSeries())
	st := h.rl.Alerts()[0]
	firedAt := time.Duration(0)
	for i := 1; i <= 30; i++ {
		at := time.Duration(i) * time.Second
		ctr.Add(at, 1) // 1/s, well above 0.5/s
		h.rl.Eval(at)
		if st.Active() && firedAt == 0 {
			firedAt = at
		}
	}
	if firedAt == 0 {
		t.Fatal("rate rule never fired at 1/s against a 0.5/s threshold")
	}
	// Before the 10s window is retained the rule holds state (no data).
	if firedAt < 10*time.Second {
		t.Errorf("fired at %v, before the rate window was observable", firedAt)
	}
	if st.NoData == 0 {
		t.Error("expected no-data ticks while the window was unretained")
	}
}

func TestBurnRateComputation(t *testing.T) {
	db := NewTSDB(TSDBConfig{Step: time.Second, Windows: []time.Duration{10 * time.Second}})
	good := db.Series("ok", LevelRow, CounterSeries())
	total := db.Series("tot", LevelRow, CounterSeries())
	// 20 ticks, 10 requests each; 2 good → 80% errors against a 90%
	// target: burn = 0.8/0.1 = 8.
	for i := 1; i <= 20; i++ {
		at := time.Duration(i) * time.Second
		good.Add(at, 2)
		total.Add(at, 10)
	}
	v, ok := burnRate(good, total, 20*time.Second, 10*time.Second, 0.9)
	if !ok || v < 8-1e-9 || v > 8+1e-9 {
		t.Errorf("burnRate = %v,%v, want 8,true", v, ok)
	}
	// No traffic in the window: burn 0, not unknown — idle systems do not
	// page.
	idleGood := db.Series("ok2", LevelRow, CounterSeries())
	idleTot := db.Series("tot2", LevelRow, CounterSeries())
	for i := 1; i <= 20; i++ {
		at := time.Duration(i) * time.Second
		idleGood.Add(at, 0)
		idleTot.Add(at, 0)
	}
	if v, ok := burnRate(idleGood, idleTot, 20*time.Second, 10*time.Second, 0.9); !ok || v != 0 {
		t.Errorf("idle burnRate = %v,%v, want 0,true", v, ok)
	}
}

func TestBurnRuleTakesMinOfWindows(t *testing.T) {
	// Short window burning, long window healthy → min stays low → no fire.
	// This is the multiwindow AND: a brief error spike alone cannot page.
	h := newRulesHarness(t, "alert slo burn(row.ok,row.tot,0.9,2s,10s) > 6")
	good := h.db.Series("row.ok", LevelRow, CounterSeries())
	total := h.db.Series("row.tot", LevelRow, CounterSeries())
	st := h.rl.Alerts()[0]
	for i := 1; i <= 40; i++ {
		at := time.Duration(i) * time.Second
		g := 10.0
		if i >= 39 { // 2-tick spike of total failure at the end
			g = 0
		}
		good.Add(at, g)
		total.Add(at, 10)
		h.rl.Eval(at)
	}
	if st.Fires != 0 {
		t.Errorf("short-window spike alone fired the multiwindow burn rule (last=%g)", st.LastValue)
	}
	// The evaluated value is min(short, long): short burns at 10, long at
	// 0.2/0.1*... — long window: 2 bad ticks of 10 → 20 errors / 100 total
	// over 10s = 0.2 err frac → burn 2.
	if st.LastValue >= 6 {
		t.Errorf("LastValue = %g, want < 6 (long window caps the burn)", st.LastValue)
	}
}

func TestRecordRuleFeedsSameTickAlerts(t *testing.T) {
	h := newRulesHarness(t, `
record row.req_rate rate(row.req_total,10s)
alert hot row.req_rate > 0.5
`)
	ctr := h.db.Series("row.req_total", LevelRow, CounterSeries())
	var fired bool
	for i := 1; i <= 30; i++ {
		at := time.Duration(i) * time.Second
		ctr.Add(at, 1)
		h.rl.Eval(at)
		fired = fired || h.rl.Alerts()[0].Active()
	}
	if !fired {
		t.Fatal("alert on recorded series never fired")
	}
	if rec := h.db.Lookup("row.req_rate"); rec == nil {
		t.Fatal("recording rule did not register its output series")
	} else if v, ok := rec.Last(); !ok || v != 1 {
		t.Errorf("recorded rate = %v,%v, want 1,true", v, ok)
	}
}

// TestFinishReconciliation pins the exact-reconciliation contract: every
// fire is paired with a resolve whose value is the episode's active
// seconds, still-active alerts resolve one step past the last eval, and
// the resolve values sum to ActiveSec — so offline reconstruction from the
// trace (polca-analyze -alerts) agrees with the in-run summary exactly.
func TestFinishReconciliation(t *testing.T) {
	h := newRulesHarness(t, "alert breach row.util > 1")
	util := h.db.Series("row.util", LevelRow)
	vals := []float64{2, 2, 0.5, 2, 2, 2} // two episodes; second unresolved
	for i, v := range vals {
		at := time.Duration(i+1) * time.Second
		util.Observe(at, v)
		h.rl.Eval(at)
	}
	h.rl.Finish()
	h.rl.Finish() // idempotent

	st := h.rl.Alerts()[0]
	evs := h.alertEvents()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want fire/resolve/fire/resolve", len(evs))
	}
	if evs[3].At != 7*time.Second {
		t.Errorf("end-of-run resolve at %v, want lastEval+step = 7s", evs[3].At)
	}
	var resolvedSec float64
	for _, ev := range evs {
		if ev.Kind == KindAlertResolve {
			resolvedSec += ev.Value
		}
	}
	if resolvedSec != st.ActiveSec {
		t.Errorf("sum of resolve episode values = %g, ActiveSec = %g; must reconcile exactly",
			resolvedSec, st.ActiveSec)
	}
	if st.Fires != 2 || st.ActiveSec != 5 || st.LongestSec != 3 {
		t.Errorf("fires=%d active=%g longest=%g, want 2/5/3", st.Fires, st.ActiveSec, st.LongestSec)
	}
}

func TestFinishWithoutEvalIsSilent(t *testing.T) {
	h := newRulesHarness(t, "alert breach row.util > 1")
	h.rl.Finish()
	if evs := h.alertEvents(); len(evs) != 0 {
		t.Errorf("Finish before any Eval emitted events: %+v", evs)
	}
}

func TestRulesNilSafety(t *testing.T) {
	var r *Rules
	if r.Enabled() {
		t.Error("nil Rules enabled")
	}
	r.Eval(time.Second)
	r.Finish()
	if r.Alerts() != nil {
		t.Error("nil Rules Alerts not nil")
	}
	if err := r.WriteSummary(nil); err != nil {
		t.Error(err)
	}
}

func TestWriteSummaryTable(t *testing.T) {
	h := newRulesHarness(t, "alert breach row.util > 1 severity page\nalert ghost row.nope > 1")
	util := h.db.Series("row.util", LevelRow)
	util.Observe(time.Second, 2)
	h.rl.Eval(time.Second)
	h.rl.Finish()
	var b strings.Builder
	if err := h.rl.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{"breach", "page", "row.util > 1", "ghost", "no data"} {
		if !strings.Contains(out, w) {
			t.Errorf("summary missing %q:\n%s", w, out)
		}
	}
}

// BenchmarkRuleEval is part of the CI benchmark trajectory: the default
// ruleset evaluated against live signals every telemetry tick must stay
// allocation-free and cheap relative to the tick itself.
func BenchmarkRuleEval(b *testing.B) {
	set, err := ParseRules(DefaultRules)
	if err != nil {
		b.Fatal(err)
	}
	db := NewTSDB(TSDBConfig{Step: 2 * time.Second})
	gauges := []*TSSeries{
		db.Series("row.power", LevelRow), db.Series("row.breaker", LevelRow),
		db.Series("row.util", LevelRow), db.Series("row.queue", LevelRow),
		db.Series("row.kv", LevelRow),
	}
	counters := []*TSSeries{
		db.Series("row.brake_total", LevelRow, CounterSeries()),
		db.Series("row.oob_fail_total", LevelRow, CounterSeries()),
		db.Series("row.ttft_ok", LevelRow, CounterSeries()),
		db.Series("row.ttft_total", LevelRow, CounterSeries()),
		db.Series("row.req_total", LevelRow, CounterSeries()),
	}
	rl := NewRules(db, set, nil)
	// Warm far enough that every rate/burn window is retained.
	at := time.Duration(0)
	warm := int((2 * time.Hour) / (2 * time.Second))
	for i := 0; i < warm; i++ {
		at += 2 * time.Second
		for _, s := range gauges {
			s.Observe(at, 0.5)
		}
		for _, s := range counters {
			s.Add(at, 1)
		}
		rl.Eval(at)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += 2 * time.Second
		for _, s := range gauges {
			s.Observe(at, 0.5)
		}
		for _, s := range counters {
			s.Add(at, 1)
		}
		rl.Eval(at)
	}
}
