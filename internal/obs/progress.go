package obs

import (
	"sort"
	"sync"
	"time"
)

// Progress tracks a set of named units of work (sweep grid points) from
// start to finish, for the -v progress log and the /progress endpoint. A
// nil *Progress disables tracking. Wall-clock here is observability
// metadata — it never feeds back into simulation state.
type Progress struct {
	mu       sync.Mutex
	total    int
	done     int
	cached   int
	inflight map[string]time.Time

	// OnDone, if set, is called (outside the lock) after each unit
	// completes with the unit name, done count, total, whether the result
	// came from the singleflight cache, and the unit's wall-clock elapsed.
	OnDone func(name string, done, total int, cached bool, elapsed time.Duration)
}

// NewProgress returns a tracker expecting total units.
func NewProgress(total int) *Progress {
	return &Progress{total: total, inflight: map[string]time.Time{}}
}

// AddTotal grows the expected unit count — sweeps register their batch
// sizes as they reach the executor, since the full grid is not known up
// front.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Start marks a unit in flight.
func (p *Progress) Start(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.inflight[name] = time.Now()
	p.mu.Unlock()
}

// Done marks a unit complete and fires OnDone.
func (p *Progress) Done(name string, cached bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	started, ok := p.inflight[name]
	delete(p.inflight, name)
	p.done++
	if cached {
		p.cached++
	}
	done, total := p.done, p.total
	cb := p.OnDone
	p.mu.Unlock()
	var elapsed time.Duration
	if ok {
		elapsed = time.Since(started)
	}
	if cb != nil {
		cb(name, done, total, cached, elapsed)
	}
}

// ProgressSnapshot is a point-in-time view for the /progress endpoint.
type ProgressSnapshot struct {
	Total    int              `json:"total"`
	Done     int              `json:"done"`
	Cached   int              `json:"cached"`
	InFlight []InFlightUnit   `json:"in_flight"`
}

// InFlightUnit is one unit currently running.
type InFlightUnit struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Snapshot returns the current state with in-flight units sorted by name.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{InFlight: []InFlightUnit{}}
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	units := make([]InFlightUnit, 0, len(p.inflight))
	for name, started := range p.inflight {
		units = append(units, InFlightUnit{
			Name:      name,
			ElapsedMS: float64(now.Sub(started)) / float64(time.Millisecond),
		})
	}
	sort.Slice(units, func(a, b int) bool { return units[a].Name < units[b].Name })
	return ProgressSnapshot{Total: p.total, Done: p.done, Cached: p.cached, InFlight: units}
}
