package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the sim-time TSDB: fixed-memory ring series with
// multi-resolution downsampling and hierarchical server→row→site rollups.
//
// Each series owns one ring per resolution (raw telemetry tick plus a
// configurable set of coarser windows, 10s/1m/15m by default). Every ring
// holds a fixed number of buckets {start, min, mean, max, last}; when a
// ring wraps, the oldest bucket is evicted. Memory is therefore a function
// of series count and ring capacity only — a 7-day run retains exactly as
// many bytes as a 1-hour run, which is what makes multi-day 10k-GPU
// simulations observable without unbounded JSONL dumps.
//
// Rollups are incremental: a child series registered with WithParent
// pushes each observation into a per-parent accumulator, and the parent's
// own ring ingests the aggregated value when simulated time advances past
// the accumulation step. Row power is the sum of its servers' power, site
// power the sum of its rows, cap MHz the max across servers — computed at
// ingest, never by re-scanning children.
//
// Everything on the ingest path is allocation-free after registration
// (asserted by TestTSDBIngestSteadyStateZeroAlloc and tracked by
// BenchmarkTSDBIngest in the CI trajectory); the db-level mutex exists
// only so a live /metrics scrape can read while the sim goroutine writes.

// Level places a series in the power-delivery hierarchy. Exports carry it
// as a `level` label, and the Perfetto export groups counter tracks by it.
type Level uint8

const (
	LevelServer Level = iota
	LevelRow
	LevelSite
)

// String returns the level's wire name.
func (l Level) String() string {
	switch l {
	case LevelServer:
		return "server"
	case LevelRow:
		return "row"
	case LevelSite:
		return "site"
	}
	return "unknown"
}

// Agg selects how a parent series combines its children's observations
// within one accumulation step.
type Agg uint8

const (
	// AggSum adds children (power, queue depth, request counts).
	AggSum Agg = iota
	// AggMax keeps the children's max (cap MHz, KV occupancy).
	AggMax
)

// Bucket is one downsampled window: min/mean/max over the samples it
// absorbed, plus the last sample (the value a scrape at bucket end would
// have seen — for cumulative counters this is the cumulative total).
type Bucket struct {
	Start time.Duration // window start, simulated time
	Min   float64
	Max   float64
	Sum   float64
	Last  float64
	Count int64
}

// Mean returns the bucket's average sample value.
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// end returns the exclusive end of the bucket's window.
func (b Bucket) end(window time.Duration) time.Duration { return b.Start + window }

// ring is one fixed-capacity resolution of a series. Sealed buckets live
// in buf as a circular buffer ordered oldest→newest; cur is the open
// bucket still absorbing samples.
type ring struct {
	window time.Duration
	buf    []Bucket
	head   int // index of oldest sealed bucket
	n      int // sealed bucket count
	cur    Bucket
	open   bool
}

func (rg *ring) bucketStart(t time.Duration) time.Duration {
	return t - (t % rg.window)
}

// observe absorbs one sample. Samples must arrive in non-decreasing time
// order (the sim is single-threaded per run, so they do).
func (rg *ring) observe(t time.Duration, v float64) {
	start := rg.bucketStart(t)
	if rg.open && start != rg.cur.Start {
		rg.seal()
	}
	if !rg.open {
		rg.cur = Bucket{Start: start, Min: v, Max: v, Sum: v, Last: v, Count: 1}
		rg.open = true
		return
	}
	if v < rg.cur.Min {
		rg.cur.Min = v
	}
	if v > rg.cur.Max {
		rg.cur.Max = v
	}
	rg.cur.Sum += v
	rg.cur.Last = v
	rg.cur.Count++
}

// seal closes the open bucket, evicting the oldest sealed bucket if the
// ring is full.
func (rg *ring) seal() {
	if !rg.open {
		return
	}
	if rg.n == len(rg.buf) {
		rg.buf[rg.head] = rg.cur
		rg.head = (rg.head + 1) % len(rg.buf)
	} else {
		rg.buf[(rg.head+rg.n)%len(rg.buf)] = rg.cur
		rg.n++
	}
	rg.open = false
}

// sealed returns the i-th sealed bucket, oldest first.
func (rg *ring) sealed(i int) Bucket {
	return rg.buf[(rg.head+i)%len(rg.buf)]
}

// at returns the bucket covering simulated time t, if retained.
func (rg *ring) at(t time.Duration) (Bucket, bool) {
	if rg.open && t >= rg.cur.Start {
		if t < rg.cur.end(rg.window) {
			return rg.cur, true
		}
		return Bucket{}, false
	}
	lo, hi := 0, rg.n
	for lo < hi {
		mid := (lo + hi) / 2
		if rg.sealed(mid).end(rg.window) <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < rg.n {
		if b := rg.sealed(lo); t >= b.Start {
			return b, true
		}
	}
	return Bucket{}, false
}

// TSDBConfig sizes a TSDB. Zero fields take defaults.
type TSDBConfig struct {
	// Step is the raw resolution — normally the row telemetry interval.
	// Default 2s.
	Step time.Duration
	// Windows are the coarser rollup resolutions, ascending. Default
	// 10s, 1m, 15m.
	Windows []time.Duration
	// Capacity is the default bucket count per ring. Default 360 (12
	// minutes of raw, 1h of 10s, 6h of 1m, 90h of 15m).
	Capacity int
}

func (c TSDBConfig) withDefaults() TSDBConfig {
	if c.Step <= 0 {
		c.Step = 2 * time.Second
	}
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{10 * time.Second, time.Minute, 15 * time.Minute}
	}
	if c.Capacity <= 0 {
		c.Capacity = 360
	}
	return c
}

// TSDB is a fixed-memory sim-time time-series database. Series are
// registered once (allocating), then observed allocation-free. The mutex
// serializes the sim goroutine's writes against live /metrics scrapes; a
// nil *TSDB disables everything.
type TSDB struct {
	mu     sync.Mutex
	cfg    TSDBConfig
	series []*TSSeries
	byName map[string]*TSSeries
}

// NewTSDB returns an empty TSDB.
func NewTSDB(cfg TSDBConfig) *TSDB {
	return &TSDB{cfg: cfg.withDefaults(), byName: map[string]*TSSeries{}}
}

// Enabled reports whether the TSDB records anything.
func (db *TSDB) Enabled() bool { return db != nil }

// Step returns the raw resolution.
func (db *TSDB) Step() time.Duration {
	if db == nil {
		return 0
	}
	return db.cfg.Step
}

// Windows returns the configured rollup resolutions (shared slice; do not
// mutate).
func (db *TSDB) Windows() []time.Duration {
	if db == nil {
		return nil
	}
	return db.cfg.Windows
}

// SeriesOpt configures a series at registration.
type SeriesOpt func(*TSSeries)

// WithParent links the series under parent with the given aggregation:
// each observation feeds the parent's accumulator, and the parent ingests
// the aggregate when time advances. All children of one parent must share
// the parent's aggregation (the first child's Agg wins).
func WithParent(parent *TSSeries, agg Agg) SeriesOpt {
	return func(s *TSSeries) {
		if parent == nil {
			return
		}
		s.parent = parent
		if parent.children == 0 {
			parent.childAgg = agg
		}
		parent.children++
	}
}

// WithUnit attaches a display unit ("W", "MHz", "frac") carried into the
// Prometheus HELP-style comments and the report.
func WithUnit(unit string) SeriesOpt {
	return func(s *TSSeries) { s.unit = unit }
}

// CounterSeries marks the series cumulative: exports render it as a
// Prometheus counter and DeltaOver/rate() read increments off Last values.
func CounterSeries() SeriesOpt {
	return func(s *TSSeries) { s.counter = true }
}

// WithCapacity overrides the per-ring bucket count for this series — the
// cluster registers per-server series with a smaller capacity than
// row/site series so 10k-GPU topologies stay cheap.
func WithCapacity(n int) SeriesOpt {
	return func(s *TSSeries) {
		if n > 0 {
			s.capacity = n
		}
	}
}

// Series registers (or returns the existing) series under name. Names may
// carry Prometheus-style inline labels (`server.power{server="3"}`).
// Options apply only on first registration. Returns nil on a nil TSDB.
func (db *TSDB) Series(name string, level Level, opts ...SeriesOpt) *TSSeries {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if s := db.byName[name]; s != nil {
		return s
	}
	s := &TSSeries{db: db, name: name, level: level, capacity: db.cfg.Capacity}
	for _, opt := range opts {
		opt(s)
	}
	s.rings = make([]ring, 1+len(db.cfg.Windows))
	s.rings[0] = ring{window: db.cfg.Step, buf: make([]Bucket, s.capacity)}
	for i, w := range db.cfg.Windows {
		s.rings[1+i] = ring{window: w, buf: make([]Bucket, s.capacity)}
	}
	db.series = append(db.series, s)
	db.byName[name] = s
	return s
}

// Lookup returns the series registered under name, or nil.
func (db *TSDB) Lookup(name string) *TSSeries {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.byName[name]
}

// NumSeries returns the registered series count.
func (db *TSDB) NumSeries() int {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.series)
}

// MemoryBytes returns the retained telemetry footprint: ring buffers plus
// per-series bookkeeping. It is a function of the registered series and
// their capacities only — independent of how long the simulation ran —
// which the bounded-memory tests assert directly.
func (db *TSDB) MemoryBytes() int {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	const bucketBytes = 56 // unsafe.Sizeof(Bucket{}) on 64-bit
	total := 0
	for _, s := range db.series {
		total += 160 + len(s.name) // struct + name, approximate
		for i := range s.rings {
			total += cap(s.rings[i].buf) * bucketBytes
		}
	}
	return total
}

// Flush propagates pending rollup accumulators and seals nothing else —
// open buckets remain queryable. Children flush before parents would
// naturally, but eviction order does not matter here: flushing in reverse
// registration order pushes pending child aggregates upward (servers are
// registered after their row, rows after the site). Idempotent; call at
// end of run before rendering reports.
func (db *TSDB) Flush() {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := len(db.series) - 1; i >= 0; i-- {
		db.series[i].flushRoll()
	}
}

// Each calls fn for every series in registration order.
func (db *TSDB) Each(fn func(*TSSeries)) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.series {
		fn(s)
	}
}

// TSSeries is one registered signal. Observe/Add are allocation-free and
// must be called with non-decreasing simulated timestamps (the sim run
// loop guarantees this). A nil *TSSeries no-ops, so instrumented code
// needs no conditional plumbing.
type TSSeries struct {
	db       *TSDB
	name     string
	unit     string
	level    Level
	counter  bool
	capacity int

	rings []ring

	// Counter state for Add.
	cum float64

	// Last raw sample.
	lastT   time.Duration
	lastV   float64
	hasLast bool

	// Parent rollup edge and (on parents) the child accumulator.
	parent   *TSSeries
	childAgg Agg
	children int
	rollT    time.Duration
	rollSum  float64
	rollMax  float64
	rollN    int
	rollSet  bool
}

// Name returns the registered series name (with inline labels, if any).
func (s *TSSeries) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Level returns the series' hierarchy level.
func (s *TSSeries) Level() Level {
	if s == nil {
		return LevelServer
	}
	return s.level
}

// Unit returns the display unit ("" when unset).
func (s *TSSeries) Unit() string {
	if s == nil {
		return ""
	}
	return s.unit
}

// IsCounter reports cumulative semantics.
func (s *TSSeries) IsCounter() bool { return s != nil && s.counter }

// Observe records one sample at simulated time t.
func (s *TSSeries) Observe(t time.Duration, v float64) {
	if s == nil {
		return
	}
	s.db.mu.Lock()
	s.observe(t, v)
	s.db.mu.Unlock()
}

// Add increments a cumulative series by delta at simulated time t — the
// event-driven form of a counter (TTFT SLO good/total counts).
func (s *TSSeries) Add(t time.Duration, delta float64) {
	if s == nil {
		return
	}
	s.db.mu.Lock()
	s.cum += delta
	s.observe(t, s.cum)
	s.db.mu.Unlock()
}

// observe runs under db.mu (directly or via a child's locked Observe).
func (s *TSSeries) observe(t time.Duration, v float64) {
	for i := range s.rings {
		s.rings[i].observe(t, v)
	}
	s.lastT, s.lastV, s.hasLast = t, v, true
	if p := s.parent; p != nil {
		p.accumulate(t, v)
	}
}

// accumulate folds one child observation into the parent's pending step.
// When time advances past the current step, the completed aggregate is
// ingested into the parent's own rings first (and recursively upward).
func (s *TSSeries) accumulate(t time.Duration, v float64) {
	step := s.db.cfg.Step
	start := t - (t % step)
	if s.rollSet && start != s.rollT {
		s.flushRoll()
	}
	if !s.rollSet {
		s.rollT, s.rollSum, s.rollMax, s.rollN, s.rollSet = start, v, v, 1, true
		return
	}
	s.rollSum += v
	if v > s.rollMax {
		s.rollMax = v
	}
	s.rollN++
}

// flushRoll ingests the pending child aggregate, if any.
func (s *TSSeries) flushRoll() {
	if !s.rollSet {
		return
	}
	v := s.rollSum
	if s.childAgg == AggMax {
		v = s.rollMax
	}
	t := s.rollT
	s.rollSet = false
	s.observe(t, v)
}

// Last returns the most recent raw sample.
func (s *TSSeries) Last() (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.lastV, s.hasLast
}

// LastTime returns the simulated time of the most recent raw sample.
func (s *TSSeries) LastTime() time.Duration {
	if s == nil {
		return 0
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.lastT
}

// ValueAt returns the series value at simulated time t, read from the
// finest resolution that still retains t (the bucket's last sample). The
// second result is false when t predates every retained bucket.
func (s *TSSeries) ValueAt(t time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.valueAt(t)
}

func (s *TSSeries) valueAt(t time.Duration) (float64, bool) {
	for i := range s.rings {
		if b, ok := s.rings[i].at(t); ok {
			return b.Last, true
		}
	}
	return 0, false
}

// DeltaOver returns the increase of a cumulative series over the window
// ending at now. The second result is false when the window start is no
// longer retained (or the series has no data yet) — rate rules stay
// silent rather than guessing.
func (s *TSSeries) DeltaOver(now, window time.Duration) (float64, bool) {
	if s == nil || window <= 0 {
		return 0, false
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if !s.hasLast {
		return 0, false
	}
	prev := now - window
	if prev < 0 {
		return 0, false
	}
	v0, ok := s.valueAt(prev)
	if !ok {
		return 0, false
	}
	return s.lastV - v0, true
}

// Buckets returns a copy of the retained buckets at the given resolution
// (window must be the raw step or one of the configured windows),
// oldest first, including the still-open bucket.
func (s *TSSeries) Buckets(window time.Duration) []Bucket {
	if s == nil {
		return nil
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	for i := range s.rings {
		rg := &s.rings[i]
		if rg.window != window {
			continue
		}
		out := make([]Bucket, 0, rg.n+1)
		for j := 0; j < rg.n; j++ {
			out = append(out, rg.sealed(j))
		}
		if rg.open {
			out = append(out, rg.cur)
		}
		return out
	}
	return nil
}

// tsdbFamily renders a series name as a Prometheus family: dots and
// dashes become underscores, inline labels are preserved.
func tsdbFamily(name string) (fam, labels string) {
	fam = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		fam, labels = name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	fam = strings.NewReplacer(".", "_", "-", "_").Replace(fam)
	return fam, labels
}

// WritePrometheus renders every series' latest value in the Prometheus
// text exposition format. Gauge series expose the last raw sample,
// counter series the cumulative total. Each series carries a `level`
// label plus extraLabels (a pre-rendered `k="v"` list, usually the
// observer's policy scope). Output is sorted for determinism.
func (db *TSDB) WritePrometheus(w io.Writer, extraLabels string) error {
	if db == nil {
		return nil
	}
	type row struct {
		fam, name, value string
		counter          bool
	}
	db.mu.Lock()
	rows := make([]row, 0, len(db.series))
	for _, s := range db.series {
		if !s.hasLast {
			continue
		}
		fam, labels := tsdbFamily(s.name)
		all := Label("level", s.level.String())
		if labels != "" {
			all = labels + "," + all
		}
		if extraLabels != "" {
			all += "," + extraLabels
		}
		rows = append(rows, row{
			fam:     fam,
			name:    fam + "{" + all + "}",
			value:   formatFloat(s.lastV),
			counter: s.counter,
		})
	}
	db.mu.Unlock()
	sort.Slice(rows, func(a, b int) bool { return rows[a].name < rows[b].name })
	lastFam := ""
	for _, r := range rows {
		if r.fam != lastFam {
			typ := "gauge"
			if r.counter {
				typ = "counter"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", r.fam, typ); err != nil {
				return err
			}
			lastFam = r.fam
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace exports the retained buckets at the given resolution as
// Chrome trace-event counter tracks ("ph":"C") — one process per
// hierarchy level, one counter track per series — loadable in Perfetto
// alongside the event/span trace. Gauge series plot the bucket mean,
// counter series the bucket-end cumulative value.
func (db *TSDB) WriteChromeTrace(w io.Writer, window time.Duration) error {
	if db == nil {
		return nil
	}
	db.Flush()
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, l := range []Level{LevelSite, LevelRow, LevelServer} {
		// pid 1=site, 2=row, 3=server keeps Perfetto's process list in
		// hierarchy order.
		if err := emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"tsdb:%s"}}`, int(l)+1, l)); err != nil {
			return err
		}
	}
	db.mu.Lock()
	series := append([]*TSSeries(nil), db.series...)
	db.mu.Unlock()
	for _, s := range series {
		var pid int
		switch s.level {
		case LevelSite:
			pid = 1
		case LevelRow:
			pid = 2
		default:
			pid = 3
		}
		for _, b := range s.Buckets(window) {
			v := b.Mean()
			if s.counter {
				v = b.Last
			}
			line := fmt.Sprintf(`{"name":%s,"ph":"C","pid":%d,"tid":0,"ts":%d,"args":{"value":%s}}`,
				jsonString(s.name), pid, b.Start.Microseconds(), formatFloat(v))
			if err := emit(line); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// jsonString renders s as a JSON string using the export-path escaper.
func jsonString(s string) string {
	return string(appendJSONString(nil, s))
}
