// Package obs is the simulation-time observability layer: a structured
// event tracer, a metrics registry, a sweep progress tracker, and a live
// HTTP introspection endpoint. It exists so a surprising result — a
// GOODPUT dip at one threshold combination, a brake storm under drifted
// intensity — can be audited from the run's own telemetry instead of a
// re-run under a debugger.
//
// Design contract (enforced by benchmarks and tests):
//
//   - The disabled path is near-free. Every type in this package accepts a
//     nil receiver as "observability off": a nil *Tracer, *Counter, *Gauge,
//     *Histogram, *Progress or *Observer short-circuits before any
//     allocation or lock, so instrumented code needs no conditional
//     plumbing at call sites.
//   - Observation never perturbs simulation results. Nothing in this
//     package touches the simulation's random streams or event queue;
//     enabling tracing must leave every simulated metric byte-identical.
//
// The package deliberately depends only on the standard library (times are
// plain time.Duration, which sim.Time aliases), so every layer of the
// stack — the engine, the cluster, the policies, the sweep executor — can
// import it without cycles.
package obs

import (
	"sync"
	"time"
)

// Kind enumerates the event taxonomy. Events are typed rather than
// free-form so exports can build tracks and reconciliation tests can
// count: the cap/uncap stream must agree exactly with the run's reported
// capping summary.
type Kind uint8

const (
	KindNone Kind = iota
	// KindThreshold is a policy decision: a capping threshold engaged or
	// released. Reason carries the transition ("t1.engage", "t2.hp.release"),
	// Value the utilization that caused it, Label the policy name.
	KindThreshold
	// KindCapRequest is the policy's desired pool lock changing (the row
	// records it immediately; actuation follows asynchronously). Pool and
	// MHz carry the target (MHz 0 = unlock).
	KindCapRequest
	// KindOOBIssue is one out-of-band lock command issued to a server.
	KindOOBIssue
	// KindOOBFail is an OOB command failing silently (to be re-issued).
	KindOOBFail
	// KindCapApply is a lock landing on a server (MHz > 0).
	KindCapApply
	// KindCapRelease is an unlock landing on a server.
	KindCapRelease
	// KindArrive is a request admitted at the row's front door.
	KindArrive
	// KindDrop is a request shed because the pool's buffering was full.
	KindDrop
	// KindComplete is a request finishing; Value is its end-to-end latency
	// in seconds, Server the node that served it.
	KindComplete
	// KindBrakeTrigger is the row manager deciding to engage the power
	// brake (Value = utilization); KindBrakeEngage is the brake landing
	// after its latency; KindBrakeRelease is the brake releasing.
	KindBrakeTrigger
	KindBrakeEngage
	KindBrakeRelease
	// KindGridStart and KindGridDone bracket one sweep grid point in the
	// parallel executor. Label identifies the point; Value on GridDone is
	// the wall-clock seconds it took (cached points take ~0).
	KindGridStart
	KindGridDone
	// KindOOBStale is an in-flight OOB command discarded at landing because
	// the desired lock changed during its flight; MHz carries the stale
	// target, Value the current desired lock.
	KindOOBStale
	// KindCtrlCrash and KindCtrlRestart bracket an injected controller
	// outage (the controller restarts with cold state).
	KindCtrlCrash
	KindCtrlRestart
	// KindWatchdogEngage and KindWatchdogRelease bracket the row-side
	// deadman watchdog self-capping after controller silence; Value on
	// engage is the silent-epoch count that tripped it.
	KindWatchdogEngage
	KindWatchdogRelease
	// KindFailSafeEngage and KindFailSafeRelease bracket a controller-side
	// telemetry-validity fail-safe (conservative caps while readings are
	// stale or implausible); Reason carries the cause.
	KindFailSafeEngage
	KindFailSafeRelease
	// KindNodeDeath and KindNodeRevive bracket an injected server-death
	// window for one node.
	KindNodeDeath
	KindNodeRevive
	// KindBatchForm is a serving replica forming one continuous-batching
	// iteration: Server is the replica's node index, Value the iteration's
	// total token count (prompt-chunk tokens + decode steps), Reason
	// "prefill", "decode", or "mixed".
	KindBatchForm
	// KindPreempt is a running sequence preempted for recompute under KV
	// pressure; Value is the KV bytes freed.
	KindPreempt
	// KindKVHighWater is a replica's KV-cache occupancy reaching a new high
	// water; Value is the occupancy as a fraction of KV capacity. Emitted
	// only when the high water grows by at least a capacity step, so the
	// stream stays bounded.
	KindKVHighWater
	// KindAlertFire and KindAlertResolve bracket one alert episode from
	// the rules engine. Label carries the rule name, Reason the rule's
	// condition text; Value is the evaluated expression on fire and the
	// episode's active seconds on resolve.
	KindAlertFire
	KindAlertResolve
	// KindRetry is a dropped serve-mode request re-entering the router
	// under the failover path; Value is the attempt number, Reason the
	// drop reason that triggered the retry.
	KindRetry
	// KindDrain and KindUndrain bracket a replica's graceful-drain window
	// (maintenance action or watchdog drain): in-flight decodes finish,
	// new admissions are refused. Reason names what initiated the drain.
	KindDrain
	KindUndrain
	// KindShedLevel is the SLO-class load-shedding severity changing;
	// Value is the new level (0 = admit everything, 1 = shed batch
	// traffic, 2 = shed everything but the critical class). Reason names
	// the emergency signal that moved the level.
	KindShedLevel
	// KindCircuitOpen is a replica's admission circuit opening after too
	// many queue-full sheds inside one telemetry epoch; Value is the shed
	// count that tripped it.
	KindCircuitOpen
)

var kindNames = [...]string{
	KindNone:            "none",
	KindThreshold:       "policy.threshold",
	KindCapRequest:      "cap.request",
	KindOOBIssue:        "oob.issue",
	KindOOBFail:         "oob.fail",
	KindCapApply:        "cap.apply",
	KindCapRelease:      "cap.release",
	KindArrive:          "req.arrive",
	KindDrop:            "req.drop",
	KindComplete:        "req.complete",
	KindBrakeTrigger:    "brake.trigger",
	KindBrakeEngage:     "brake.engage",
	KindBrakeRelease:    "brake.release",
	KindGridStart:       "grid.start",
	KindGridDone:        "grid.done",
	KindOOBStale:        "oob.stale",
	KindCtrlCrash:       "ctrl.crash",
	KindCtrlRestart:     "ctrl.restart",
	KindWatchdogEngage:  "watchdog.engage",
	KindWatchdogRelease: "watchdog.release",
	KindFailSafeEngage:  "failsafe.engage",
	KindFailSafeRelease: "failsafe.release",
	KindNodeDeath:       "node.death",
	KindNodeRevive:      "node.revive",
	KindBatchForm:       "batch.form",
	KindPreempt:         "preempt",
	KindKVHighWater:     "kv.highwater",
	KindAlertFire:       "alert.fire",
	KindAlertResolve:    "alert.resolve",
	KindRetry:           "req.retry",
	KindDrain:           "replica.drain",
	KindUndrain:         "replica.undrain",
	KindShedLevel:       "shed.level",
	KindCircuitOpen:     "circuit.open",
}

// String returns the event kind's wire name ("cap.apply").
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind maps a wire name back to its Kind. It is the inverse of
// String for every kind except KindNone; the exhaustive round-trip test
// keeps the two in lockstep so a new kind cannot ship without a name.
func ParseKind(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s && k != int(KindNone) {
			return Kind(k), true
		}
	}
	return KindNone, false
}

// Pool codes for Event.Pool. They match workload.Priority's values so
// emitters can convert with a plain cast.
const (
	PoolNone int8 = -1
	PoolLow  int8 = 0
	PoolHigh int8 = 1
)

// PoolName returns "low", "high", or "" for PoolNone.
func PoolName(p int8) string {
	switch p {
	case PoolLow:
		return "low"
	case PoolHigh:
		return "high"
	}
	return ""
}

// Event is one traced occurrence. It is a flat value type — no pointers
// besides the two strings, which emitters populate with static literals —
// so emitting does not allocate beyond the tracer's amortized buffer
// growth.
//
// Field use by kind: Server is the node index (or -1), Pool the priority
// pool (or PoolNone), MHz the lock frequency involved (0 = unlock), Value
// a kind-specific measurement (utilization, latency seconds, wall
// seconds), Reason a short static cause ("t1.engage", "silent-failure"),
// Label a run- or policy-level identifier.
type Event struct {
	At     time.Duration // simulated time
	Kind   Kind
	Server int32
	Pool   int8
	MHz    float64
	Value  float64
	Reason string
	Label  string
	// Seq is the tracer-assigned 1-based sequence number. The JSONL export
	// carries it so offline scanners can prove a stream is gap-free instead
	// of trusting timestamp order; 0 marks events built outside a tracer
	// (legacy files, hand-written fixtures) and is omitted on the wire.
	Seq uint64
}

// Sink consumes events. *Tracer is the canonical implementation; the
// simulation layers hold the concrete *Tracer so the disabled (nil) path
// costs a single predictable branch instead of an interface dispatch.
type Sink interface {
	Emit(Event)
}

// Tracer records typed events with simulated timestamps. It is safe for
// concurrent use; a nil *Tracer is a valid disabled sink.
type Tracer struct {
	mu     sync.Mutex
	seq    uint64
	events []Event
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{}
}

// Emit records an event. On a nil tracer it returns immediately — this is
// the hot-path guard the whole stack relies on (see
// BenchmarkTracerDisabled), so it must stay a single branch before the
// slow path.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.append(ev)
}

func (t *Tracer) append(ev Event) {
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// CountKind returns how many recorded events have the given kind —
// reconciliation tests count cap/uncap events against the run's metrics.
func (t *Tracer) CountKind(k Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.events {
		if t.events[i].Kind == k {
			n++
		}
	}
	return n
}

// Reset discards recorded events but keeps the buffer capacity. The
// sequence counter restarts too, so each exported stream numbers from 1.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.seq = 0
	t.mu.Unlock()
}

// Observer bundles the observability handles a simulation layer needs:
// the event tracer, the metrics registry, and the request span tracer. A
// nil *Observer (or nil fields) disables the corresponding instrument;
// every accessor is nil-safe so holders never check.
//
// Labels, when non-empty, is a Prometheus label list (`k="v",k2="v2"`)
// injected into every metric name created through this observer — the CLIs
// use it to scope one shared registry per policy or per sweep grid point.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
	Spans   *SpanTracer
	Labels  string

	// DB, when set, is the sim-time TSDB the cluster wiring registers its
	// telemetry series into; Rules is the alert/recording rules engine the
	// row evaluates on each telemetry tick. Both are nil-safe when unset.
	DB    *TSDB
	Rules *Rules

	// Decisions, when set, records full-input decision provenance (every
	// controller tick and router pick with the snapshot the policy saw) for
	// offline counterfactual replay. Nil-safe when unset.
	Decisions *DecisionRecorder
}

// DecisionLog returns the decision-provenance recorder (nil when disabled).
func (o *Observer) DecisionLog() *DecisionRecorder {
	if o == nil {
		return nil
	}
	return o.Decisions
}

// TimeSeries returns the sim-time TSDB (nil when disabled).
func (o *Observer) TimeSeries() *TSDB {
	if o == nil {
		return nil
	}
	return o.DB
}

// RuleEngine returns the alert rules engine (nil when disabled).
func (o *Observer) RuleEngine() *Rules {
	if o == nil {
		return nil
	}
	return o.Rules
}

// Trace returns the tracer (nil when disabled).
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// SpanSink returns the request span tracer (nil when disabled).
func (o *Observer) SpanSink() *SpanTracer {
	if o == nil {
		return nil
	}
	return o.Spans
}

// Emit forwards to the tracer, if any.
func (o *Observer) Emit(ev Event) {
	if o == nil {
		return
	}
	o.Tracer.Emit(ev)
}

// Counter returns the named counter from the registry with the observer's
// labels applied, or nil when metrics are disabled.
func (o *Observer) Counter(name string) *Counter {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Counter(MergeLabels(name, o.Labels))
}

// Gauge is the gauge analogue of Counter.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Gauge(MergeLabels(name, o.Labels))
}

// Histogram is the histogram analogue of Counter; bounds are the bucket
// upper bounds used if the histogram does not exist yet.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Histogram(MergeLabels(name, o.Labels), bounds)
}

// WithLabels returns a derived observer sharing this observer's tracer and
// registry with additional label pairs appended. kv alternates keys and
// values; values are escaped.
func (o *Observer) WithLabels(kv ...string) *Observer {
	if o == nil {
		return nil
	}
	labels := o.Labels
	for i := 0; i+1 < len(kv); i += 2 {
		l := Label(kv[i], kv[i+1])
		if labels == "" {
			labels = l
		} else {
			labels += "," + l
		}
	}
	return &Observer{Tracer: o.Tracer, Metrics: o.Metrics, Spans: o.Spans, Labels: labels, DB: o.DB, Rules: o.Rules, Decisions: o.Decisions}
}

// MetricsOnly returns a derived observer with the event and span tracers
// — and the TSDB and rules engine — dropped: the sweep executor attaches
// it to row engines so grid points contribute metrics without flooding
// the sweep-level trace with per-request events, accumulating span trees,
// or cross-wiring hundreds of grid points into one alert engine.
func (o *Observer) MetricsOnly() *Observer {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return &Observer{Metrics: o.Metrics, Labels: o.Labels}
}
