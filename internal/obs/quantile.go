package obs

import (
	"math"
	"sort"
)

// DefaultCompression is the Digest compression used across the repo. At
// δ=200 a digest holds at most ~2δ centroids (~6 KB), and p99/p99.9
// estimates on the serve workload land within a fraction of a percent of
// the exact sorted values (see TestDigestAccuracyServeShapes).
const DefaultCompression = 200

// Digest is a fixed-compression merging t-digest: a streaming quantile
// sketch whose memory is bounded by the compression parameter instead of
// the sample count, so per-class TTFT/TBT/energy percentiles no longer
// require retaining full slices over multi-day runs.
//
// Determinism contract: the centroid set after any sequence of Add/Merge
// calls is a pure function of the inserted values and their order. The
// implementation is single-threaded by design (like the rest of the row's
// metrics, it is only touched from the owning engine's goroutine); the
// buffered inserts are flushed by sorting with sort.Float64s, which is
// deterministic for equal inputs. A nil *Digest is a valid disabled sketch:
// Add is a no-op, Count reports 0 and Percentile reports 0 (matching
// stats.Percentile on an empty slice).
type Digest struct {
	compression float64
	means       []float64 // centroid means, sorted ascending
	weights     []float64 // centroid weights, parallel to means
	buf         []float64 // unmerged singleton inserts
	count       int64
	min, max    float64
}

// NewDigest returns an empty digest. Compressions below 20 are raised to
// 20; use DefaultCompression unless there is a measured reason not to.
func NewDigest(compression float64) *Digest {
	if compression < 20 {
		compression = 20
	}
	return &Digest{
		compression: compression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add inserts one observation. Inserts are buffered and merged in batches,
// so the amortized cost is O(log buffer) for the sort share.
func (d *Digest) Add(x float64) {
	if d == nil {
		return
	}
	if x < d.min {
		d.min = x
	}
	if x > d.max {
		d.max = x
	}
	d.count++
	d.buf = append(d.buf, x)
	if len(d.buf) >= d.bufCap() {
		d.flush()
	}
}

func (d *Digest) bufCap() int { return 4 * int(d.compression) }

// Count returns the number of observations inserted (directly or via
// Merge).
func (d *Digest) Count() int64 {
	if d == nil {
		return 0
	}
	return d.count
}

// Merge folds another digest's centroids into this one. The other digest
// is flushed (an observably-neutral normalization) but its samples are not
// consumed; merging the same digest twice double-counts, as with any
// sketch.
func (d *Digest) Merge(o *Digest) {
	if d == nil || o == nil || o.Count() == 0 {
		return
	}
	o.flush()
	if o.min < d.min {
		d.min = o.min
	}
	if o.max > d.max {
		d.max = o.max
	}
	d.count += o.count
	d.flush() // normalize our own buffer before a weighted merge
	n := len(d.means) + len(o.means)
	ms := make([]float64, 0, n)
	ws := make([]float64, 0, n)
	i, j := 0, 0
	for i < len(d.means) || j < len(o.means) {
		if j >= len(o.means) || (i < len(d.means) && d.means[i] <= o.means[j]) {
			ms = append(ms, d.means[i])
			ws = append(ws, d.weights[i])
			i++
		} else {
			ms = append(ms, o.means[j])
			ws = append(ws, o.weights[j])
			j++
		}
	}
	d.means, d.weights = d.compress(ms, ws)
}

// flush merges the buffered singletons into the centroid set.
func (d *Digest) flush() {
	if len(d.buf) == 0 {
		return
	}
	sort.Float64s(d.buf)
	n := len(d.means) + len(d.buf)
	ms := make([]float64, 0, n)
	ws := make([]float64, 0, n)
	i, j := 0, 0
	for i < len(d.means) || j < len(d.buf) {
		if j >= len(d.buf) || (i < len(d.means) && d.means[i] <= d.buf[j]) {
			ms = append(ms, d.means[i])
			ws = append(ws, d.weights[i])
			i++
		} else {
			ms = append(ms, d.buf[j])
			ws = append(ws, 1)
			j++
		}
	}
	d.buf = d.buf[:0]
	d.means, d.weights = d.compress(ms, ws)
}

// compress runs one merge pass over sorted (mean, weight) pairs, greedily
// fusing neighbours while the fused centroid stays within one unit of the
// k1 scale function k(q) = (δ/2π)·asin(2q−1), which keeps centroids small
// near both tails and large in the middle.
func (d *Digest) compress(ms, ws []float64) ([]float64, []float64) {
	if len(ms) == 0 {
		return ms[:0], ws[:0]
	}
	var total float64
	for _, w := range ws {
		total += w
	}
	outM := ms[:0]
	outW := ws[:0]
	curM, curW := ms[0], ws[0]
	var soFar float64 // weight fully emitted so far
	qLimit := d.qLimit(0)
	for i := 1; i < len(ms); i++ {
		m, w := ms[i], ws[i]
		if (soFar+curW+w)/total <= qLimit {
			// Fuse into the current centroid (weighted mean update).
			curM += (m - curM) * w / (curW + w)
			curW += w
			continue
		}
		outM = append(outM, curM)
		outW = append(outW, curW)
		soFar += curW
		qLimit = d.qLimit(soFar / total)
		curM, curW = m, w
	}
	outM = append(outM, curM)
	outW = append(outW, curW)
	return outM, outW
}

// qLimit returns the quantile at which a centroid starting at q0 must end:
// the q whose k1-scale value is one unit past k(q0).
func (d *Digest) qLimit(q0 float64) float64 {
	if q0 < 0 {
		q0 = 0
	} else if q0 > 1 {
		q0 = 1
	}
	k := d.compression/(2*math.Pi)*math.Asin(2*q0-1) + 1
	if k >= d.compression/4 {
		return 1
	}
	return (math.Sin(2*math.Pi*k/d.compression) + 1) / 2
}

// Percentile estimates the p-th percentile (p in [0, 100], matching
// stats.Percentile's convention). It returns 0 for an empty digest, the
// exact min/max at the extremes, and interpolates between adjacent
// centroid means elsewhere.
func (d *Digest) Percentile(p float64) float64 {
	if d == nil || d.count == 0 {
		return 0
	}
	d.flush()
	if p <= 0 {
		return d.min
	}
	if p >= 100 {
		return d.max
	}
	n := len(d.means)
	if n == 1 {
		return d.means[0]
	}
	// While every point is still its own centroid the sample is fully
	// known, so return the exact percentile under stats.Percentile's
	// convention (linear interpolation at rank p/100*(n-1)). Small-sample
	// report tables therefore match the old retained-slice numbers.
	if d.count == int64(n) {
		rank := p / 100 * float64(n-1)
		lo := int(rank)
		if lo >= n-1 {
			return d.means[n-1]
		}
		return d.means[lo] + (rank-float64(lo))*(d.means[lo+1]-d.means[lo])
	}
	target := p / 100 * float64(d.count)

	// Below the first centroid's midpoint: interpolate from the minimum.
	firstMid := d.weights[0] / 2
	if target <= firstMid {
		if firstMid == 0 {
			return d.means[0]
		}
		return d.min + (d.means[0]-d.min)*(target/firstMid)
	}
	// Above the last centroid's midpoint: interpolate toward the maximum.
	lastMid := float64(d.count) - d.weights[n-1]/2
	if target >= lastMid {
		span := float64(d.count) - lastMid
		if span == 0 {
			return d.max
		}
		return d.means[n-1] + (d.max-d.means[n-1])*((target-lastMid)/span)
	}
	// Between two centroid midpoints.
	var cum float64
	for i := 0; i < n-1; i++ {
		mid := cum + d.weights[i]/2
		nextMid := cum + d.weights[i] + d.weights[i+1]/2
		if target < nextMid {
			if nextMid == mid {
				return d.means[i]
			}
			return d.means[i] + (d.means[i+1]-d.means[i])*((target-mid)/(nextMid-mid))
		}
		cum += d.weights[i]
	}
	return d.max
}

// Centroids returns the digest's current (mean, weight) pairs — exposed
// for tests that assert the memory bound.
func (d *Digest) Centroids() (means, weights []float64) {
	if d == nil {
		return nil, nil
	}
	d.flush()
	means = append([]float64(nil), d.means...)
	weights = append([]float64(nil), d.weights...)
	return means, weights
}
