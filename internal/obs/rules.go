package obs

import (
	_ "embed"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file is the declarative recording/alert rules engine evaluated in
// sim time against the TSDB. The grammar is one rule per line:
//
//	alert  NAME EXPR CMP RHS [for DUR] [severity WORD]
//	record NAME EXPR
//
//	EXPR := SIGNAL
//	      | rate(SIGNAL,DUR)                     per-second increase
//	      | burn(GOOD,TOTAL,TARGET,SHORT,LONG)   multi-window SLO burn rate
//	CMP  := > | >= | < | <=
//	RHS  := NUMBER | NUMBER*SIGNAL | SIGNAL
//
// Signals are TSDB series names (registered by the cluster wiring; a rule
// binds lazily, so load order does not matter). `for DUR` requires the
// condition to hold continuously before firing, matching the Prometheus
// semantics operators already know. burn() evaluates the SRE multiwindow
// burn-rate: (1 - good/total) / (1 - target) over each window, taking the
// min of the short and long windows so `burn(...) > 6` expresses
// "burning ≥6x on BOTH windows" with a single comparison.
//
// Alerts emit KindAlertFire / KindAlertResolve events into the run trace
// (with the rule's condition text as the reason), accumulate a per-rule
// summary for the run report, and — because evaluation happens on the
// telemetry tick with `for 0` semantics counted one step per active tick
// — a threshold rule's active seconds reconcile exactly with
// stats.Series.TimeAbove on the underlying full-resolution trace.

// DefaultRules is the committed default operator ruleset, selected with
// `polca-sim -rules default`.
//
//go:embed default.rules
var DefaultRules string

// CmpOp is a rule comparison operator.
type CmpOp uint8

const (
	CmpGT CmpOp = iota
	CmpGE
	CmpLT
	CmpLE
)

func (op CmpOp) String() string {
	switch op {
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	}
	return "?"
}

func (op CmpOp) eval(lhs, rhs float64) bool {
	switch op {
	case CmpGT:
		return lhs > rhs
	case CmpGE:
		return lhs >= rhs
	case CmpLT:
		return lhs < rhs
	case CmpLE:
		return lhs <= rhs
	}
	return false
}

type exprKind uint8

const (
	exprSignal exprKind = iota
	exprRate
	exprBurn
)

// ruleExpr is a parsed left-hand side.
type ruleExpr struct {
	kind        exprKind
	sig         string // signal; rate signal; burn good-counter
	sig2        string // burn total-counter
	short, long time.Duration
	target      float64
	text        string // canonical rendering
}

// RuleSpec is one parsed rule.
type RuleSpec struct {
	Name     string
	Record   bool
	Expr     ruleExpr
	Op       CmpOp
	RHSNum   float64
	RHSSig   string
	For      time.Duration
	Severity string
	Cond     string // canonical condition text, used as the event reason
}

// RuleSet is a parsed rules file.
type RuleSet struct {
	Specs []RuleSpec
}

// ParseRules parses the rules text format. Blank lines and #-comments are
// ignored. Errors carry the line number.
func ParseRules(src string) (*RuleSet, error) {
	set := &RuleSet{}
	seen := map[string]bool{}
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		spec, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("rules line %d: %w", ln+1, err)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("rules line %d: duplicate rule name %q", ln+1, spec.Name)
		}
		seen[spec.Name] = true
		set.Specs = append(set.Specs, spec)
	}
	if len(set.Specs) == 0 {
		return nil, fmt.Errorf("rules: no rules defined")
	}
	return set, nil
}

func parseRule(fields []string) (RuleSpec, error) {
	var spec RuleSpec
	switch fields[0] {
	case "record":
		if len(fields) != 3 {
			return spec, fmt.Errorf("record wants: record NAME EXPR")
		}
		expr, err := parseExpr(fields[2])
		if err != nil {
			return spec, err
		}
		spec = RuleSpec{Name: fields[1], Record: true, Expr: expr, Cond: expr.text}
		return spec, nil
	case "alert":
		// alert NAME EXPR CMP RHS [for DUR] [severity WORD]
		if len(fields) < 5 {
			return spec, fmt.Errorf("alert wants: alert NAME EXPR CMP RHS [for DUR] [severity WORD]")
		}
		expr, err := parseExpr(fields[2])
		if err != nil {
			return spec, err
		}
		op, err := parseCmp(fields[3])
		if err != nil {
			return spec, err
		}
		spec = RuleSpec{Name: fields[1], Expr: expr, Op: op, Severity: "warn"}
		if err := parseRHS(&spec, fields[4]); err != nil {
			return spec, err
		}
		rest := fields[5:]
		for len(rest) > 0 {
			switch rest[0] {
			case "for":
				if len(rest) < 2 {
					return spec, fmt.Errorf("for wants a duration")
				}
				d, err := time.ParseDuration(rest[1])
				if err != nil || d < 0 {
					return spec, fmt.Errorf("bad for-duration %q", rest[1])
				}
				spec.For = d
				rest = rest[2:]
			case "severity":
				if len(rest) < 2 {
					return spec, fmt.Errorf("severity wants a word")
				}
				spec.Severity = rest[1]
				rest = rest[2:]
			default:
				return spec, fmt.Errorf("unexpected token %q", rest[0])
			}
		}
		spec.Cond = condText(spec)
		return spec, nil
	}
	return spec, fmt.Errorf("unknown directive %q (want alert or record)", fields[0])
}

func parseCmp(tok string) (CmpOp, error) {
	switch tok {
	case ">":
		return CmpGT, nil
	case ">=":
		return CmpGE, nil
	case "<":
		return CmpLT, nil
	case "<=":
		return CmpLE, nil
	}
	return 0, fmt.Errorf("bad comparison %q", tok)
}

func parseExpr(tok string) (ruleExpr, error) {
	if strings.HasPrefix(tok, "rate(") {
		if !strings.HasSuffix(tok, ")") {
			return ruleExpr{}, fmt.Errorf("unterminated rate() in %q", tok)
		}
		args := splitArgs(tok[len("rate(") : len(tok)-1])
		if len(args) != 2 {
			return ruleExpr{}, fmt.Errorf("rate wants rate(SIGNAL,DUR)")
		}
		d, err := time.ParseDuration(args[1])
		if err != nil || d <= 0 {
			return ruleExpr{}, fmt.Errorf("bad rate window %q", args[1])
		}
		e := ruleExpr{kind: exprRate, sig: args[0], short: d}
		e.text = "rate(" + args[0] + "," + args[1] + ")"
		return e, nil
	}
	if strings.HasPrefix(tok, "burn(") {
		if !strings.HasSuffix(tok, ")") {
			return ruleExpr{}, fmt.Errorf("unterminated burn() in %q", tok)
		}
		args := splitArgs(tok[len("burn(") : len(tok)-1])
		if len(args) != 5 {
			return ruleExpr{}, fmt.Errorf("burn wants burn(GOOD,TOTAL,TARGET,SHORT,LONG)")
		}
		target, err := strconv.ParseFloat(args[2], 64)
		if err != nil || target <= 0 || target >= 1 {
			return ruleExpr{}, fmt.Errorf("bad burn target %q (want 0<target<1)", args[2])
		}
		short, err := time.ParseDuration(args[3])
		if err != nil || short <= 0 {
			return ruleExpr{}, fmt.Errorf("bad burn short window %q", args[3])
		}
		long, err := time.ParseDuration(args[4])
		if err != nil || long <= short {
			return ruleExpr{}, fmt.Errorf("bad burn long window %q (must exceed short)", args[4])
		}
		e := ruleExpr{kind: exprBurn, sig: args[0], sig2: args[1], target: target, short: short, long: long}
		e.text = "burn(" + strings.Join(args, ",") + ")"
		return e, nil
	}
	if strings.ContainsAny(tok, "()") {
		return ruleExpr{}, fmt.Errorf("unknown function in %q", tok)
	}
	return ruleExpr{kind: exprSignal, sig: tok, text: tok}, nil
}

// splitArgs splits a function argument list on commas that are not inside
// a {label="v"} block (series names may carry labels).
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func parseRHS(spec *RuleSpec, tok string) error {
	if v, err := strconv.ParseFloat(tok, 64); err == nil {
		spec.RHSNum = v
		return nil
	}
	if i := strings.IndexByte(tok, '*'); i > 0 {
		v, err := strconv.ParseFloat(tok[:i], 64)
		if err != nil {
			return fmt.Errorf("bad rhs %q (want NUMBER, NUMBER*SIGNAL, or SIGNAL)", tok)
		}
		if tok[i+1:] == "" {
			return fmt.Errorf("bad rhs %q: empty signal after *", tok)
		}
		spec.RHSNum, spec.RHSSig = v, tok[i+1:]
		return nil
	}
	spec.RHSNum, spec.RHSSig = 1, tok
	return nil
}

func condText(spec RuleSpec) string {
	var b strings.Builder
	b.WriteString(spec.Expr.text)
	b.WriteByte(' ')
	b.WriteString(spec.Op.String())
	b.WriteByte(' ')
	if spec.RHSSig == "" {
		b.WriteString(strconv.FormatFloat(spec.RHSNum, 'g', -1, 64))
	} else {
		if spec.RHSNum != 1 {
			b.WriteString(strconv.FormatFloat(spec.RHSNum, 'g', -1, 64))
			b.WriteByte('*')
		}
		b.WriteString(spec.RHSSig)
	}
	if spec.For > 0 {
		b.WriteString(" for ")
		b.WriteString(spec.For.String())
	}
	return b.String()
}

// AlertState is the runtime state and end-of-run summary of one rule.
type AlertState struct {
	Spec RuleSpec

	// Lazily bound series handles (signals may register after the engine).
	sig, sig2, rhsSig, out *TSSeries

	pending      bool
	pendingSince time.Duration
	active       bool
	firedAt      time.Duration

	// Summary accumulators. ActiveSec counts one evaluation step per tick
	// the alert was active (including the firing tick), which is what
	// makes a `for 0` threshold rule reconcile exactly with
	// stats.Series.TimeAbove. CondSec counts ticks where the raw
	// condition held regardless of `for` state.
	Fires      int
	ActiveSec  float64
	CondSec    float64
	LongestSec float64
	episodeSec float64
	LastValue  float64
	HasValue   bool
	NoData     int
}

// Active reports whether the alert is currently firing.
func (a *AlertState) Active() bool { return a.active }

// Rules evaluates a RuleSet against a TSDB on every telemetry tick. A nil
// *Rules is a valid disabled engine.
type Rules struct {
	db       *TSDB
	sink     Sink
	states   []*AlertState
	lastEval time.Duration
	step     time.Duration
	ran      bool
	finished bool
}

// NewRules binds a parsed rule set to a TSDB. Alert events go to sink
// (usually the run's *Tracer; nil discards events but keeps the summary).
func NewRules(db *TSDB, set *RuleSet, sink Sink) *Rules {
	r := &Rules{db: db, sink: sink, step: db.Step()}
	for _, spec := range set.Specs {
		st := &AlertState{Spec: spec}
		if spec.Record {
			st.out = db.Series(spec.Name, LevelRow, WithUnit("recorded"))
		}
		r.states = append(r.states, st)
	}
	return r
}

// Enabled reports whether the engine evaluates anything.
func (r *Rules) Enabled() bool { return r != nil }

// Alerts returns the per-rule states (alert rules only), in file order.
func (r *Rules) Alerts() []*AlertState {
	if r == nil {
		return nil
	}
	out := make([]*AlertState, 0, len(r.states))
	for _, st := range r.states {
		if !st.Spec.Record {
			out = append(out, st)
		}
	}
	return out
}

// Eval evaluates every rule at simulated time now. Recording rules run
// first so alerts can reference recorded series within the same tick.
func (r *Rules) Eval(now time.Duration) {
	if r == nil {
		return
	}
	r.lastEval, r.ran = now, true
	for _, st := range r.states {
		if st.Spec.Record {
			r.evalRecord(st, now)
		}
	}
	for _, st := range r.states {
		if !st.Spec.Record {
			r.evalAlert(st, now)
		}
	}
}

// value resolves a rule expression at now. ok is false on missing signals
// or windows not yet retained — the rule holds state rather than firing
// on garbage.
func (r *Rules) value(st *AlertState, now time.Duration) (float64, bool) {
	e := &st.Spec.Expr
	if st.sig == nil {
		st.sig = r.db.Lookup(e.sig)
	}
	if st.sig == nil {
		return 0, false
	}
	switch e.kind {
	case exprSignal:
		v, ok := st.sig.Last()
		return v, ok
	case exprRate:
		d, ok := st.sig.DeltaOver(now, e.short)
		if !ok {
			return 0, false
		}
		return d / e.short.Seconds(), true
	case exprBurn:
		if st.sig2 == nil {
			st.sig2 = r.db.Lookup(e.sig2)
		}
		if st.sig2 == nil {
			return 0, false
		}
		short, ok := burnRate(st.sig, st.sig2, now, e.short, e.target)
		if !ok {
			return 0, false
		}
		long, ok := burnRate(st.sig, st.sig2, now, e.long, e.target)
		if !ok {
			return 0, false
		}
		// min(short, long): a single `> factor` comparison then expresses
		// the multiwindow AND ("burning fast on the long window AND still
		// burning on the short window", the SRE page condition).
		if short < long {
			return short, true
		}
		return long, true
	}
	return 0, false
}

// burnRate computes the error-budget burn rate over one window: the
// fraction of requests that violated the SLO, normalized by the budget
// (1-target). Burn 1.0 consumes the budget exactly at the sustainable
// rate; 6.0 burns it six times too fast.
func burnRate(good, total *TSSeries, now, window time.Duration, target float64) (float64, bool) {
	dg, ok := good.DeltaOver(now, window)
	if !ok {
		return 0, false
	}
	dt, ok := total.DeltaOver(now, window)
	if !ok {
		return 0, false
	}
	if dt <= 0 {
		return 0, true // no traffic: not burning
	}
	errFrac := 1 - dg/dt
	return errFrac / (1 - target), true
}

func (r *Rules) evalRecord(st *AlertState, now time.Duration) {
	v, ok := r.value(st, now)
	if !ok {
		st.NoData++
		return
	}
	st.LastValue, st.HasValue = v, true
	st.out.Observe(now, v)
}

func (r *Rules) evalAlert(st *AlertState, now time.Duration) {
	v, ok := r.value(st, now)
	cond := false
	if !ok {
		st.NoData++
	} else {
		st.LastValue, st.HasValue = v, true
		rhs := st.Spec.RHSNum
		if st.Spec.RHSSig != "" {
			if st.rhsSig == nil {
				st.rhsSig = r.db.Lookup(st.Spec.RHSSig)
			}
			rv, rok := st.rhsSig.Last()
			if !rok {
				st.NoData++
				r.step2(st, false, now)
				return
			}
			rhs *= rv
		}
		cond = st.Spec.Op.eval(v, rhs)
	}
	r.step2(st, cond, now)
}

// step2 advances the fire/resolve state machine one tick.
func (r *Rules) step2(st *AlertState, cond bool, now time.Duration) {
	stepSec := r.step.Seconds()
	if cond {
		st.CondSec += stepSec
	}
	switch {
	case cond && !st.active:
		if !st.pending {
			st.pending, st.pendingSince = true, now
		}
		if now-st.pendingSince >= st.Spec.For {
			st.pending = false
			st.active, st.firedAt = true, now
			st.Fires++
			st.episodeSec = 0
			r.emit(KindAlertFire, st, now, st.LastValue)
		}
	case !cond && st.pending:
		st.pending = false
	case !cond && st.active:
		st.active = false
		r.emit(KindAlertResolve, st, now, st.episodeSec)
	}
	if st.active {
		st.ActiveSec += stepSec
		st.episodeSec += stepSec
		if st.episodeSec > st.LongestSec {
			st.LongestSec = st.episodeSec
		}
	}
}

func (r *Rules) emit(kind Kind, st *AlertState, now time.Duration, value float64) {
	if r.sink == nil {
		return
	}
	r.sink.Emit(Event{
		At:     now,
		Kind:   kind,
		Server: -1,
		Pool:   PoolNone,
		Value:  value,
		Reason: st.Spec.Cond,
		Label:  st.Spec.Name,
	})
}

// FinishTime returns the simulated time Finish resolves still-active
// alerts at — one evaluation step past the last Eval — or 0 if the engine
// never evaluated. Callers that keep simulating past the last telemetry
// tick (the drain phase) can schedule Finish at this time so trace events
// stay timestamp-ordered.
func (r *Rules) FinishTime() time.Duration {
	if r == nil || !r.ran {
		return 0
	}
	return r.lastEval + r.step
}

// Finish closes alerts still active at end of run: each emits a resolve
// one evaluation step after the last tick (the first instant the
// condition is no longer observed), so offline episode reconstruction
// from the trace reconciles exactly. Idempotent.
func (r *Rules) Finish() {
	if r == nil || r.finished || !r.ran {
		return
	}
	r.finished = true
	end := r.lastEval + r.step
	for _, st := range r.states {
		if st.active {
			st.active = false
			r.emit(KindAlertResolve, st, end, st.episodeSec)
		}
		st.pending = false
	}
}

// WriteSummary renders the per-alert summary table for the run report.
func (r *Rules) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	alerts := r.Alerts()
	if len(alerts) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "  %-18s %-9s %6s %10s %10s %10s  %s\n",
		"alert", "severity", "fires", "active", "longest", "last", "condition"); err != nil {
		return err
	}
	for _, st := range alerts {
		last := "no data"
		if st.HasValue {
			last = strconv.FormatFloat(st.LastValue, 'g', 4, 64)
		}
		if _, err := fmt.Fprintf(w, "  %-18s %-9s %6d %10s %10s %10s  %s\n",
			st.Spec.Name, st.Spec.Severity, st.Fires,
			fmtSec(st.ActiveSec), fmtSec(st.LongestSec), last, st.Spec.Cond); err != nil {
			return err
		}
	}
	return nil
}

func fmtSec(sec float64) string {
	return (time.Duration(sec * float64(time.Second))).Round(time.Second).String()
}
