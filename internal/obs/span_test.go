package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []Span {
	return []Span{
		{Req: 2, ID: 1, Kind: SpanRequest, Start: 5 * time.Second, End: 9 * time.Second,
			Server: 1, Pool: PoolHigh, Class: "chat", Tokens: 80, Preempts: 1,
			EnergyJ: 412.5, CapSec: 0.8, CapJ: -33.25, TTFTSec: 1.25},
		{Req: 2, ID: 2, Parent: 1, Kind: SpanQueue, Start: 5 * time.Second, End: 6 * time.Second,
			Server: 1, Pool: PoolHigh, Class: "chat"},
		{Req: 2, ID: 3, Parent: 1, Kind: SpanPrefill, Start: 6 * time.Second, End: 6*time.Second + 250*time.Millisecond,
			Server: 1, Pool: PoolHigh, Class: "chat", Tokens: 512, EnergyJ: 50},
		{Req: 2, ID: 4, Parent: 1, Kind: SpanPreempt, Start: 7 * time.Second, End: 7 * time.Second,
			Server: 1, Pool: PoolHigh, Class: "chat", Tokens: 600, Reason: "kv-pressure"},
		{Req: 2, ID: 5, Parent: 1, Kind: SpanPrefill, Start: 7 * time.Second, End: 7*time.Second + 300*time.Millisecond,
			Server: 1, Pool: PoolHigh, Class: "chat", Tokens: 512, Recompute: true, EnergyJ: 55},
		{Req: 2, ID: 6, Parent: 1, Kind: SpanDecode, Start: 7*time.Second + 300*time.Millisecond, End: 9 * time.Second,
			Server: 1, Pool: PoolHigh, Class: "chat", Tokens: 80, EnergyJ: 307.5, CapSec: 0.8, CapJ: -33.25},
		{Req: 1, ID: 1, Kind: SpanRequest, Start: 0, End: 4 * time.Second,
			Server: 0, Pool: PoolLow, Class: "code", Tokens: 0, TTFTSec: -1, Reason: "node-death"},
		{Req: 1, ID: 2, Parent: 1, Kind: SpanQueue, Start: 0, End: time.Second,
			Server: 0, Pool: PoolLow, Class: "code"},
	}
}

// TestSpanJSONLRoundTrip writes spans out and reads them back; every field
// must survive, and the output must come back sorted by (req, id).
func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := NewSpanTracer()
	for _, sp := range sampleSpans() {
		tr.Emit(sp)
	}
	var buf bytes.Buffer
	buf.WriteString("# git: unknown\n\n") // headers and blanks must be skipped
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.sortedSpans()
	if len(got) != len(want) {
		t.Fatalf("read %d spans, wrote %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		if w.Kind != SpanRequest {
			// ttft_s is only on the wire for roots; readers see the
			// "absent" sentinel on children.
			w.TTFTSec = -1
		}
		if got[i] != w {
			t.Errorf("span %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], w)
		}
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Req > b.Req || (a.Req == b.Req && a.ID >= b.ID) {
			t.Errorf("output not sorted by (req,id) at line %d", i)
		}
	}
}

// TestSpanJSONLValid checks every emitted line is standalone valid JSON with
// the fixed leading fields.
func TestSpanJSONLValid(t *testing.T) {
	tr := NewSpanTracer()
	for _, sp := range sampleSpans() {
		tr.Emit(sp)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i+1, err, line)
		}
		if !strings.HasPrefix(line, `{"req":`) {
			t.Errorf("line %d does not lead with req: %s", i+1, line)
		}
	}
}

// TestSpanChromeTrace checks the Perfetto export is valid JSON with one
// thread_name metadata row per request and an instant for the preemption.
func TestSpanChromeTrace(t *testing.T) {
	tr := NewSpanTracer()
	for _, sp := range sampleSpans() {
		tr.Emit(sp)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	var threads, instants, slices int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threads++
			}
		case "i":
			instants++
		case "X":
			slices++
		}
	}
	if threads != 2 {
		t.Errorf("thread_name rows = %d, want 2 (one per request)", threads)
	}
	if instants != 1 {
		t.Errorf("instant rows = %d, want 1 (the preemption)", instants)
	}
	if slices != len(sampleSpans())-1 {
		t.Errorf("slice rows = %d, want %d", slices, len(sampleSpans())-1)
	}
}

func TestSpanTracerNil(t *testing.T) {
	var tr *SpanTracer
	tr.Emit(Span{Req: 1}) // must not panic
	if tr.Enabled() || tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer should be disabled and empty")
	}
	tr.Reset()
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
}

func TestReadSpansErrors(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed JSON line should error")
	}
	if _, err := ReadSpans(strings.NewReader(`{"req":1,"id":1,"kind":"zebra","start_us":0,"end_us":1}` + "\n")); err == nil {
		t.Error("unknown span kind should error")
	}
}

func TestParseSpanKind(t *testing.T) {
	for _, k := range []SpanKind{SpanRequest, SpanQueue, SpanPrefill, SpanDecode, SpanPreempt} {
		got, ok := ParseSpanKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseSpanKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseSpanKind("none"); ok {
		t.Error(`ParseSpanKind("none") should reject the zero kind`)
	}
}

// BenchmarkSpanTracerDisabled measures the cost of the disabled path — a
// nil-receiver Emit must be a branch, not an allocation.
func BenchmarkSpanTracerDisabled(b *testing.B) {
	var tr *SpanTracer
	sp := Span{Req: 42, ID: 1, Kind: SpanDecode, Tokens: 8, EnergyJ: 1.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(sp)
	}
}

// TestScanSpans covers the streaming reader: spans stream in file order,
// comment lines reach the comment callback instead of the parser, and
// every failure mode — malformed JSON, unknown kind, a callback error, an
// over-long line — is reported with its 1-based line number.
func TestScanSpans(t *testing.T) {
	input := "# polca-sim v0\n\n" +
		`{"req":2,"id":1,"kind":"request","start_us":0,"end_us":100,"ttft_s":0.01}` + "\n" +
		`{"req":2,"id":2,"kind":"queue","start_us":0,"end_us":5}` + "\n"
	var comments []string
	var got []Span
	err := ScanSpans(strings.NewReader(input),
		func(line string) { comments = append(comments, line) },
		func(sp Span) error { got = append(got, sp); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(comments) != 1 || comments[0] != "# polca-sim v0" {
		t.Errorf("comments = %q", comments)
	}
	if len(got) != 2 || got[0].Kind != SpanRequest || got[1].Kind != SpanQueue {
		t.Errorf("spans = %+v", got)
	}

	for _, tc := range []struct {
		name, input, wantErr string
	}{
		{"bad json", "{\"req\":1,\"id\":1,\"kind\":\"request\",\"start_us\":0,\"end_us\":1,\"ttft_s\":-1}\n{not json}\n", "spans line 2:"},
		{"bad kind", `{"req":1,"id":1,"kind":"zebra","start_us":0,"end_us":1}` + "\n", `spans line 1: unknown kind "zebra"`},
	} {
		err := ScanSpans(strings.NewReader(tc.input), nil, func(Span) error { return nil })
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}

	// A callback error aborts the scan and carries the offending line.
	calls := 0
	err = ScanSpans(strings.NewReader(input), nil, func(Span) error {
		calls++
		return fmt.Errorf("stop here")
	})
	if err == nil || !strings.Contains(err.Error(), "spans line 3: stop here") {
		t.Errorf("callback error = %v", err)
	}
	if calls != 1 {
		t.Errorf("scan continued after callback error (%d calls)", calls)
	}
}

// TestScanSpansLongLine pins the over-long-line behavior the raised limit
// buys: a line beyond the cap fails loudly with its line number instead of
// stopping the scan silently, and a multi-megabyte line (beyond the old
// 1 MiB scanner cap) parses fine.
func TestScanSpansLongLine(t *testing.T) {
	big := `{"req":1,"id":1,"kind":"request","start_us":0,"end_us":1,"ttft_s":-1,"reason":"` +
		strings.Repeat("x", 2<<20) + `"}` + "\n"
	n := 0
	if err := ScanSpans(strings.NewReader(big), nil, func(Span) error { n++; return nil }); err != nil {
		t.Fatalf("2 MiB line: %v", err)
	}
	if n != 1 {
		t.Fatalf("2 MiB line parsed %d spans", n)
	}

	over := "{\"req\":1,\"id\":1,\"kind\":\"request\",\"start_us\":0,\"end_us\":1,\"ttft_s\":-1}\n" +
		strings.Repeat("y", scanSpansMaxLine+1)
	err := ScanSpans(strings.NewReader(over), nil, func(Span) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "spans line 2:") {
		t.Errorf("over-long line err = %v, want line 2 marker", err)
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("over-long line err = %v, want bufio.ErrTooLong", err)
	}
}

// TestScanSpansOutOfOrder feeds children before their root — the scanner
// itself has no ordering opinion, so both must stream through.
func TestScanSpansOutOfOrder(t *testing.T) {
	input := `{"req":7,"id":2,"kind":"queue","start_us":0,"end_us":5}` + "\n" +
		`{"req":7,"id":1,"kind":"request","start_us":0,"end_us":100,"ttft_s":0.01}` + "\n"
	var ids []int32
	if err := ScanSpans(strings.NewReader(input), nil, func(sp Span) error {
		ids = append(ids, sp.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 1 {
		t.Errorf("ids = %v, want file order [2 1]", ids)
	}
}
