package obs

import (
	"fmt"
	"io"
	"runtime/debug"
	"sort"
)

// GitDescribe returns a best-effort VCS identifier for the running binary
// from its embedded build info (no git invocation): the short revision,
// suffixed with "-dirty" when built from a modified tree. Binaries built
// without VCS stamping (e.g. `go test`) report "unknown".
func GitDescribe() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, modified := "", ""
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "-dirty"
			}
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + modified
}

// Provenance is the set of run parameters stamped onto result files.
// Values render with %v; keys are emitted in sorted order so headers are
// deterministic.
type Provenance map[string]any

// WriteProvenance writes the provenance as `# key: value` comment lines —
// the header every CSV the CLIs produce starts with, making result files
// self-describing. Readers skip lines starting with '#'
// (encoding/csv's Comment rune).
func WriteProvenance(w io.Writer, p Provenance) error {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "# %s: %v\n", k, p[k]); err != nil {
			return err
		}
	}
	return nil
}
