package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument must accept a nil receiver as "disabled" without
	// panicking or allocating observable state.
	var tr *Tracer
	tr.Emit(Event{Kind: KindCapApply})
	tr.Reset()
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil || tr.CountKind(KindCapApply) != 0 {
		t.Fatal("nil tracer should be fully inert")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(0.5, time.Second)

	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	reg.Snapshot() // must not panic

	var p *Progress
	p.Start("a")
	p.Done("a", false)
	if s := p.Snapshot(); s.Total != 0 || len(s.InFlight) != 0 {
		t.Fatal("nil progress should snapshot empty")
	}

	var o *Observer
	o.Emit(Event{})
	if o.Trace() != nil || o.Counter("x") != nil || o.Gauge("x") != nil ||
		o.Histogram("x", nil) != nil || o.WithLabels("a", "b") != nil || o.MetricsOnly() != nil {
		t.Fatal("nil observer should stay nil through derivation")
	}
}

func TestTracerRecordsAndCounts(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{At: time.Second, Kind: KindCapApply, Server: 3, MHz: 1200})
	tr.Emit(Event{At: 2 * time.Second, Kind: KindCapRelease, Server: 3})
	tr.Emit(Event{At: 3 * time.Second, Kind: KindCapApply, Server: 4, MHz: 900})
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := tr.CountKind(KindCapApply); got != 2 {
		t.Fatalf("CountKind(apply) = %d, want 2", got)
	}
	evs := tr.Events()
	if evs[0].Server != 3 || evs[0].MHz != 1200 {
		t.Fatalf("unexpected first event %+v", evs[0])
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset should discard events")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(Event{Kind: KindArrive})
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 8000 {
		t.Fatalf("Len = %d, want 8000", got)
	}
}

func TestWriteJSONLDeterministicAndValid(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{At: 1500 * time.Microsecond, Kind: KindThreshold, Server: -1,
		Pool: PoolNone, Value: 0.87, Reason: "t1.engage", Label: "polca"})
	tr.Emit(Event{At: 2 * time.Second, Kind: KindCapApply, Server: 7, Pool: PoolLow, MHz: 1200})

	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL export should be deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	if first["kind"] != "policy.threshold" || first["reason"] != "t1.engage" {
		t.Fatalf("unexpected decoded event: %v", first)
	}
	if first["t_us"] != float64(1500) {
		t.Fatalf("t_us = %v, want 1500", first["t_us"])
	}
	if _, hasServer := first["server"]; hasServer {
		t.Fatal("server -1 should be omitted")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["pool"] != "low" || second["mhz"] != float64(1200) {
		t.Fatalf("unexpected decoded event: %v", second)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{At: time.Second, Kind: KindCapApply, Server: 0, Pool: PoolLow, MHz: 1200})
	tr.Emit(Event{At: 3 * time.Second, Kind: KindCapRelease, Server: 0})
	tr.Emit(Event{At: 4 * time.Second, Kind: KindBrakeEngage, Server: -1})
	tr.Emit(Event{At: 5 * time.Second, Kind: KindBrakeRelease, Server: -1})
	// Dangling cap span: applied but never released before end of run.
	tr.Emit(Event{At: 6 * time.Second, Kind: KindCapApply, Server: 1, Pool: PoolLow, MHz: 900})
	tr.Emit(Event{At: 7 * time.Second, Kind: KindThreshold, Server: -1, Value: 0.8, Reason: "t1.release"})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var spans, instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"] == nil {
				t.Fatalf("span without dur: %v", ev)
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	// cap span on server 0, brake span, dangling cap span on server 1.
	if spans != 3 {
		t.Fatalf("spans = %d, want 3", spans)
	}
	if instants != 1 {
		t.Fatalf("instants = %d, want 1 (threshold)", instants)
	}
	// Track metadata: row + server 0 + server 1.
	if metas != 3 {
		t.Fatalf("metadata rows = %d, want 3", metas)
	}
}

func TestRegistryAndPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`row_requests_total{priority="low"}`).Add(10)
	reg.Counter(`row_requests_total{priority="high"}`).Add(20)
	if got := reg.Counter(`row_requests_total{priority="low"}`).Value(); got != 10 {
		t.Fatalf("counter identity broken: %d", got)
	}
	reg.Gauge("row_util").Set(0.75)
	h := reg.Histogram("row_util_seconds", []float64{0.5, 1.0})
	h.Observe(0.25, 2*time.Second) // bucket le=0.5
	h.Observe(0.75, 4*time.Second) // bucket le=1.0
	h.Observe(2.0, 1*time.Second)  // +Inf bucket

	s := reg.Snapshot()
	if s.Counters[`row_requests_total{priority="low"}`] != 10 {
		t.Fatalf("snapshot counters: %v", s.Counters)
	}
	if s.Gauges["row_util"] != 0.75 {
		t.Fatalf("snapshot gauges: %v", s.Gauges)
	}
	hs := s.Histograms["row_util_seconds"]
	if hs.Total != 7 {
		t.Fatalf("histogram total = %v, want 7", hs.Total)
	}
	wantSum := 0.25*2 + 0.75*4 + 2.0*1
	if math.Abs(hs.Sum-wantSum) > 1e-9 {
		t.Fatalf("histogram sum = %v, want %v", hs.Sum, wantSum)
	}

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE row_requests_total counter",
		`row_requests_total{priority="high"} 20`,
		`row_requests_total{priority="low"} 10`,
		"# TYPE row_util gauge",
		"row_util 0.75",
		"# TYPE row_util_seconds histogram",
		`row_util_seconds_bucket{le="0.5"} 2`,
		`row_util_seconds_bucket{le="1"} 6`,
		`row_util_seconds_bucket{le="+Inf"} 7`,
		"row_util_seconds_sum 5.5",
		"row_util_seconds_count 7",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// Determinism: two renders are byte-identical.
	var buf2 bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("prometheus output should be deterministic")
	}
}

func TestMergeLabelsAndLabel(t *testing.T) {
	if got := MergeLabels("m", ""); got != "m" {
		t.Fatalf("got %q", got)
	}
	if got := MergeLabels("m", `a="1"`); got != `m{a="1"}` {
		t.Fatalf("got %q", got)
	}
	if got := MergeLabels(`m{a="1"}`, `b="2"`); got != `m{a="1",b="2"}` {
		t.Fatalf("got %q", got)
	}
	if got := Label("k", `va"l\ue`); got != `k="va\"l\\ue"` {
		t.Fatalf("got %q", got)
	}
}

func TestObserverLabelScoping(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer()
	o := &Observer{Tracer: tr, Metrics: reg}
	po := o.WithLabels("policy", "polca")
	po.Counter("row_lock_commands_total").Add(3)
	if got := reg.Counter(`row_lock_commands_total{policy="polca"}`).Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
	if po.Trace() != tr {
		t.Fatal("WithLabels should share the tracer")
	}
	mo := po.MetricsOnly()
	if mo.Trace() != nil {
		t.Fatal("MetricsOnly should drop the tracer")
	}
	mo.Counter("row_lock_commands_total").Inc()
	if got := reg.Counter(`row_lock_commands_total{policy="polca"}`).Value(); got != 4 {
		t.Fatalf("MetricsOnly should keep labels; got %d", got)
	}
	// Metrics-less observer derivations collapse to nil.
	to := &Observer{Tracer: tr}
	if to.MetricsOnly() != nil {
		t.Fatal("MetricsOnly with no registry should be nil")
	}
}

func TestProgress(t *testing.T) {
	p := NewProgress(3)
	type doneRec struct {
		name   string
		done   int
		cached bool
	}
	var mu sync.Mutex
	var recs []doneRec
	p.OnDone = func(name string, done, total int, cached bool, elapsed time.Duration) {
		mu.Lock()
		recs = append(recs, doneRec{name, done, cached})
		mu.Unlock()
		if total != 3 {
			t.Errorf("total = %d, want 3", total)
		}
	}
	p.Start("a")
	p.Start("b")
	s := p.Snapshot()
	if s.Done != 0 || len(s.InFlight) != 2 || s.InFlight[0].Name != "a" {
		t.Fatalf("snapshot: %+v", s)
	}
	p.Done("a", false)
	p.Done("b", true)
	p.Start("c")
	p.Done("c", false)
	s = p.Snapshot()
	if s.Done != 3 || s.Cached != 1 || len(s.InFlight) != 0 {
		t.Fatalf("final snapshot: %+v", s)
	}
	if len(recs) != 3 || recs[0] != (doneRec{"a", 1, false}) || recs[1] != (doneRec{"b", 2, true}) {
		t.Fatalf("OnDone records: %+v", recs)
	}
}

func TestHTTPHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sweep_points_total").Add(42)
	prog := NewProgress(10)
	prog.Start("fig13/polca")

	h := Handler(reg, prog)
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "sweep_points_total 42") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	code, body := get("/progress")
	if code != 200 {
		t.Fatalf("/progress code = %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if snap.Total != 10 || len(snap.InFlight) != 1 || snap.InFlight[0].Name != "fig13/polca" {
		t.Fatalf("/progress snapshot: %+v", snap)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline code = %d", code)
	}
	// Nil registry and progress must still serve.
	hn := Handler(nil, nil)
	rec := httptest.NewRecorder()
	hn.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("nil /metrics code = %d", rec.Code)
	}
}

func TestWriteProvenance(t *testing.T) {
	var buf bytes.Buffer
	err := WriteProvenance(&buf, Provenance{
		"seed":   int64(42),
		"policy": "polca",
		"t1":     0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "# policy: polca\n# seed: 42\n# t1: 0.85\n"
	if buf.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestGitDescribeDoesNotPanic(t *testing.T) {
	if GitDescribe() == "" {
		t.Fatal("GitDescribe should never be empty")
	}
}

func TestKindString(t *testing.T) {
	if KindCapApply.String() != "cap.apply" {
		t.Fatalf("got %q", KindCapApply.String())
	}
	if Kind(200).String() != "unknown" {
		t.Fatalf("got %q", Kind(200).String())
	}
	for k := KindNone; k <= KindGridDone; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestPoolName(t *testing.T) {
	if PoolName(PoolLow) != "low" || PoolName(PoolHigh) != "high" || PoolName(PoolNone) != "" {
		t.Fatal("pool names wrong")
	}
}
