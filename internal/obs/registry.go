package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric with an atomic fast path.
// A nil *Counter (metrics disabled) no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds d (d must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric stored as atomic float bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a sim-time-weighted histogram: each observation carries the
// simulated duration it was in effect, so bucket weights are "seconds
// spent at this value" rather than sample counts. Count-style usage
// (latencies) passes a constant weight per observation.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // bucket upper bounds, ascending
	weights []float64 // len(bounds)+1; last bucket is +Inf
	sum     float64   // integral of value*dt, in value-seconds
	total   float64   // total observed seconds
}

// DefaultUtilBuckets are the bucket bounds used for row power-utilization
// histograms: dense around the POLCA thresholds and the brake point.
var DefaultUtilBuckets = []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0, 1.05}

// Observe accumulates d of simulated time at value v.
func (h *Histogram) Observe(v float64, d time.Duration) {
	if h == nil || d <= 0 {
		return
	}
	sec := d.Seconds()
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.weights[i] += sec
	h.sum += v * sec
	h.total += sec
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds  []float64
	Weights []float64 // per-bucket seconds; one more entry than Bounds
	Sum     float64
	Total   float64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Weights: append([]float64(nil), h.weights...),
		Sum:     h.sum,
		Total:   h.total,
	}
}

// Registry holds named metrics. Series names may carry Prometheus labels
// inline (`row_requests_total{priority="low"}`); creation takes the
// registry lock once, after which callers hold the metric and update it
// lock-free (counters, gauges) or under the metric's own lock
// (histograms). A nil *Registry hands out nil metrics, which no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds (ascending; used only on creation).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			weights: make([]float64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot returns a consistent-enough copy for rendering: each metric is
// read atomically, though the set is not a global atomic cut (fine for
// monitoring).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// family returns the metric family name (the series name without labels).
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Label renders one escaped Prometheus label pair (`key="value"`).
func Label(key, value string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString(`"`)
	return b.String()
}

// MergeLabels injects a label list into a series name, merging with any
// labels the name already carries.
func MergeLabels(name, labels string) string {
	if labels == "" {
		return name
	}
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + labels + "}"
	}
	return name + "{" + labels + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, with families sorted by name for deterministic output.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	type series struct {
		name  string
		value string
	}
	families := map[string][]series{}
	types := map[string]string{}
	addSeries := func(name, typ, value string) {
		fam := family(name)
		families[fam] = append(families[fam], series{name: name, value: value})
		types[fam] = typ
	}
	for name, v := range s.Counters {
		addSeries(name, "counter", fmt.Sprintf("%d", v))
	}
	for name, v := range s.Gauges {
		addSeries(name, "gauge", formatFloat(v))
	}
	for name, h := range s.Histograms {
		fam := family(name)
		types[fam] = "histogram"
		cum := 0.0
		for i, b := range h.Bounds {
			cum += h.Weights[i]
			le := Label("le", formatFloat(b))
			families[fam] = append(families[fam], series{
				name:  MergeLabels(fam+"_bucket", mergeNameLabels(name, le)),
				value: formatFloat(cum),
			})
		}
		cum += h.Weights[len(h.Bounds)]
		families[fam] = append(families[fam], series{
			name:  MergeLabels(fam+"_bucket", mergeNameLabels(name, Label("le", "+Inf"))),
			value: formatFloat(cum),
		})
		families[fam] = append(families[fam],
			series{name: strings.Replace(name, fam, fam+"_sum", 1), value: formatFloat(h.Sum)},
			series{name: strings.Replace(name, fam, fam+"_count", 1), value: formatFloat(h.Total)},
		)
	}
	names := make([]string, 0, len(families))
	for fam := range families {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, types[fam]); err != nil {
			return err
		}
		ss := families[fam]
		sort.Slice(ss, func(a, b int) bool { return ss[a].name < ss[b].name })
		for _, x := range ss {
			if _, err := fmt.Fprintf(w, "%s %s\n", x.name, x.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeNameLabels extracts the label list of a series name and appends
// extra, returning a label list (for re-merging under a derived family
// name such as fam_bucket).
func mergeNameLabels(name, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		inner := strings.TrimSuffix(name[i+1:], "}")
		if inner == "" {
			return extra
		}
		return inner + "," + extra
	}
	return extra
}

func formatFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}
