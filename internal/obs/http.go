package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves live introspection over HTTP:
//
//	/metrics        Prometheus text-format snapshot of the registry
//	/progress       JSON view of sweep progress and in-flight grid points
//	/healthz        liveness probe
//	/debug/pprof/*  the standard runtime profiles
//
// Either field may be nil; the corresponding endpoint then serves an empty
// snapshot rather than failing. Optional TSDBHandles append each TSDB's
// latest values (with its labels) to the /metrics exposition, so a live
// scrape sees the registry and the sim-time telemetry in one page.
func Handler(reg *Registry, prog *Progress, dbs ...TSDBHandle) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
		for _, h := range dbs {
			_ = h.DB.WritePrometheus(w, h.Labels)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(prog.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the introspection handler in a background
// goroutine, returning the bound address (useful when addr has port 0).
// The listener lives for the remaining process lifetime — the CLIs exit
// shortly after their runs complete, so there is no graceful-shutdown
// dance.
func Serve(addr string, reg *Registry, prog *Progress, dbs ...TSDBHandle) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg, prog, dbs...)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// TSDBHandle pairs a TSDB with the pre-rendered label list (`k="v",...`)
// distinguishing it on the shared /metrics page — the CLIs pass one
// handle per policy, labeled with the policy name.
type TSDBHandle struct {
	DB     *TSDB
	Labels string
}
