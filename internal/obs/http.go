package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves live introspection over HTTP:
//
//	/metrics        Prometheus text-format snapshot of the registry
//	/progress       JSON view of sweep progress and in-flight grid points
//	/healthz        liveness probe
//	/debug/pprof/*  the standard runtime profiles
//
// Either field may be nil; the corresponding endpoint then serves an empty
// snapshot rather than failing.
func Handler(reg *Registry, prog *Progress) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(prog.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the introspection handler in a background
// goroutine, returning the bound address (useful when addr has port 0).
// The listener lives for the remaining process lifetime — the CLIs exit
// shortly after their runs complete, so there is no graceful-shutdown
// dance.
func Serve(addr string, reg *Registry, prog *Progress) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg, prog)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
