package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPrometheusExpositionGolden pins the /metrics wire format byte for
// byte: registry counters/gauges/histograms plus the TSDB's per-level
// series, exactly as a scrape concatenates them. Regenerate after an
// intentional format change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/obs -run TestPrometheusExpositionGolden
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`row_requests_total{priority="high"}`).Add(120)
	reg.Counter(`row_requests_total{priority="low"}`).Add(45)
	reg.Counter("row_brake_engage_total").Add(3)
	reg.Gauge("row_power_watts").Set(11520.5)
	reg.Gauge("row_util_frac").Set(0.9375)
	h := reg.Histogram("row_util_hist", DefaultUtilBuckets)
	h.Observe(0.72, 10*time.Second)
	h.Observe(0.97, 4*time.Second)
	h.Observe(1.02, 2*time.Second)

	db := NewTSDB(TSDBConfig{Step: 2 * time.Second})
	site := db.Series("site.power", LevelSite, WithUnit("W"))
	row := db.Series("row.power", LevelRow, WithParent(site, AggSum), WithUnit("W"))
	for i, w := range []float64{410.25, 395, 402.5} {
		s := db.Series("server.power{server=\""+string(rune('0'+i))+"\"}",
			LevelServer, WithParent(row, AggSum), WithCapacity(16))
		s.Observe(2*time.Second, w)
		s.Observe(4*time.Second, w+1)
	}
	db.Series("row.req_total", LevelRow, CounterSeries()).Add(4*time.Second, 165)
	db.Flush()

	var b bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.WritePrometheus(&b, Label("policy", "polca")); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "registry.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s updated", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition differs from golden (UPDATE_GOLDEN=1 to regenerate if intended)\n--- got ---\n%s\n--- want ---\n%s",
			b.String(), want)
	}
}
