package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactPercentile mirrors stats.Percentile (linear interpolation on the
// sorted sample at rank p/100*(n-1)) without importing the package, so obs
// stays dependency-free.
func exactPercentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// rankError returns how many sorted-sample ranks the estimate is away from
// the exact percentile's rank.
func rankError(sorted []float64, p, est float64) float64 {
	wantRank := p / 100 * float64(len(sorted)-1)
	gotRank := float64(sort.SearchFloat64s(sorted, est))
	return math.Abs(gotRank - wantRank)
}

// checkAccuracy asserts the digest's p50/p90/p99 are within 1% relative
// error or one rank of the exact percentiles, and the deep tail (p99.9) is
// within 5%.
func checkAccuracy(t *testing.T, name string, d *Digest, sorted []float64) {
	t.Helper()
	check := func(p, relTol, rankTol float64) {
		want := exactPercentile(sorted, p)
		got := d.Percentile(p)
		relOK := false
		if want != 0 {
			relOK = math.Abs(got-want)/math.Abs(want) <= relTol
		} else {
			relOK = math.Abs(got) <= 1e-12
		}
		if !relOK && rankError(sorted, p, got) > rankTol {
			t.Errorf("%s: p%g = %g, exact %g (rel err %.3f%%, rank err %.1f)",
				name, p, got, want, 100*math.Abs(got-want)/math.Max(math.Abs(want), 1e-300),
				rankError(sorted, p, got))
		}
	}
	for _, p := range []float64{50, 90, 99} {
		check(p, 0.01, 1)
	}
	check(99.9, 0.05, 1)
}

func TestDigestAccuracy(t *testing.T) {
	dists := map[string]func(r *rand.Rand) float64{
		"uniform":     func(r *rand.Rand) float64 { return r.Float64() },
		"exponential": func(r *rand.Rand) float64 { return r.ExpFloat64() },
		"lognormal":   func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) },
	}
	for name, gen := range dists {
		r := rand.New(rand.NewSource(7))
		d := NewDigest(DefaultCompression)
		xs := make([]float64, 50_000)
		for i := range xs {
			xs[i] = gen(r)
			d.Add(xs[i])
		}
		sort.Float64s(xs)
		checkAccuracy(t, name, d, xs)
		if d.Count() != int64(len(xs)) {
			t.Errorf("%s: Count = %d, want %d", name, d.Count(), len(xs))
		}
		if got := d.Percentile(0); got != xs[0] {
			t.Errorf("%s: p0 = %g, want min %g", name, got, xs[0])
		}
		if got := d.Percentile(100); got != xs[len(xs)-1] {
			t.Errorf("%s: p100 = %g, want max %g", name, got, xs[len(xs)-1])
		}
	}
}

// TestDigestSmallExact requires exact percentiles while every point is still
// its own centroid — the serve report's per-class tables often hold only a
// handful of samples.
func TestDigestSmallExact(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10} {
		d := NewDigest(DefaultCompression)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64((i*7)%n) + 1
			d.Add(xs[i])
		}
		sort.Float64s(xs)
		for _, p := range []float64{0, 25, 50, 75, 99, 100} {
			want := exactPercentile(xs, p)
			if got := d.Percentile(p); math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d p%g = %g, want %g", n, p, got, want)
			}
		}
	}
}

func TestDigestMerge(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var xs []float64
	parts := make([]*Digest, 4)
	for i := range parts {
		parts[i] = NewDigest(DefaultCompression)
		for j := 0; j < 10_000; j++ {
			x := r.NormFloat64()*3 + float64(i)
			parts[i].Add(x)
			xs = append(xs, x)
		}
	}
	merged := NewDigest(DefaultCompression)
	for _, p := range parts {
		merged.Merge(p)
	}
	sort.Float64s(xs)
	if merged.Count() != int64(len(xs)) {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), len(xs))
	}
	checkAccuracy(t, "merged", merged, xs)
}

func TestDigestDeterministic(t *testing.T) {
	build := func() *Digest {
		r := rand.New(rand.NewSource(3))
		d := NewDigest(DefaultCompression)
		for i := 0; i < 20_000; i++ {
			d.Add(r.ExpFloat64())
		}
		return d
	}
	a, b := build(), build()
	for p := 0.0; p <= 100; p += 0.5 {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%g differs across identical builds", p)
		}
	}
}

// TestDigestBounded checks memory stays O(compression) no matter how many
// points stream in — the reason the serve path can drop slice retention.
func TestDigestBounded(t *testing.T) {
	d := NewDigest(DefaultCompression)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500_000; i++ {
		d.Add(r.Float64())
	}
	means, _ := d.Centroids()
	if n := len(means); n > 2*DefaultCompression {
		t.Errorf("digest holds %d centroids after 500k points (compression %d)", n, DefaultCompression)
	}
}

func TestDigestNilAndEmpty(t *testing.T) {
	var nilD *Digest
	nilD.Add(1)              // must not panic
	nilD.Merge(NewDigest(0)) // must not panic
	if nilD.Count() != 0 || nilD.Percentile(50) != 0 {
		t.Error("nil digest should report zero count and percentile")
	}
	d := NewDigest(DefaultCompression)
	if d.Count() != 0 || d.Percentile(99) != 0 {
		t.Error("empty digest should report zero count and percentile")
	}
	d.Merge(nil) // must not panic
}

func BenchmarkQuantileSketch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	d := NewDigest(DefaultCompression)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(xs[i&(1<<16-1)])
	}
	sinkF = d.Percentile(99)
}

var sinkF float64

// TestDigestMergeUnderCompression folds many shard digests — the
// per-replica → per-row fold the cluster performs at finalize — at a low
// compression so the merge path actually fuses centroids, and asserts the
// sketch's guarantees survive: exact count, exact extremes (p0/p100 are
// tracked min/max, never interpolated away), and bounded rank error at the
// operating percentiles. Both fold shapes (sequential chain and pairwise
// tree) must satisfy the same bounds.
func TestDigestMergeUnderCompression(t *testing.T) {
	const (
		shards      = 50
		perShard    = 2000
		compression = 100
	)
	r := rand.New(rand.NewSource(17))
	var xs []float64
	build := func() []*Digest {
		parts := make([]*Digest, shards)
		for i := range parts {
			parts[i] = NewDigest(compression)
		}
		return parts
	}
	seq := build()
	tree := build()
	for i := 0; i < shards; i++ {
		for j := 0; j < perShard; j++ {
			// Heavy-tailed and shard-skewed, like per-replica TTFT under
			// uneven load.
			x := r.ExpFloat64()*float64(i+1) + float64(i%7)
			xs = append(xs, x)
			seq[i].Add(x)
			tree[i].Add(x)
		}
	}
	sort.Float64s(xs)

	chain := NewDigest(compression)
	for _, p := range seq {
		chain.Merge(p)
	}
	for len(tree) > 1 {
		var next []*Digest
		for i := 0; i+1 < len(tree); i += 2 {
			tree[i].Merge(tree[i+1])
			next = append(next, tree[i])
		}
		if len(tree)%2 == 1 {
			next = append(next, tree[len(tree)-1])
		}
		tree = next
	}

	for name, d := range map[string]*Digest{"chain": chain, "tree": tree[0]} {
		if d.Count() != int64(len(xs)) {
			t.Errorf("%s: Count = %d, want %d (must be exact)", name, d.Count(), len(xs))
		}
		if got := d.Percentile(0); got != xs[0] {
			t.Errorf("%s: p0 = %g, want exact min %g", name, got, xs[0])
		}
		if got := d.Percentile(100); got != xs[len(xs)-1] {
			t.Errorf("%s: p100 = %g, want exact max %g", name, got, xs[len(xs)-1])
		}
		n := float64(len(xs))
		for _, tc := range []struct{ p, rankFracTol float64 }{
			{50, 0.01}, {90, 0.01}, {99, 0.005},
		} {
			if frac := rankError(xs, tc.p, d.Percentile(tc.p)) / n; frac > tc.rankFracTol {
				t.Errorf("%s: p%g rank error %.4f of n, tolerance %.4f",
					name, tc.p, frac, tc.rankFracTol)
			}
		}
		means, _ := d.Centroids()
		if len(means) > 2*compression {
			t.Errorf("%s: %d centroids after merges, want <= %d (compression held)",
				name, len(means), 2*compression)
		}
	}
}
