package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestKindRoundTripExhaustive walks every declared Kind: each must have a
// distinct non-"unknown" wire name, ParseKind must invert String, and a
// representative event of that kind must survive the JSONL encode/decode
// round trip. A new kind added without a kindNames entry fails here, so
// export wiring can't be forgotten.
func TestKindRoundTripExhaustive(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(1); int(k) < len(kindNames); k++ {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("kind %d has no wire name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share wire name %q", prev, k, name)
		}
		seen[name] = k
		parsed, ok := ParseKind(name)
		if !ok || parsed != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v, true", name, parsed, ok, k)
		}

		ev := Event{
			At: 1500 * time.Microsecond, Kind: k, Server: 3, Pool: PoolLow,
			MHz: 1275, Value: 0.5, Reason: "r", Label: "l", Seq: uint64(k),
		}
		line := appendEventJSON(nil, ev)
		got, err := parseEventLine(line)
		if err != nil {
			t.Fatalf("kind %v: parse: %v\n%s", k, err, line)
		}
		if got != ev {
			t.Fatalf("kind %v did not round-trip:\n got %+v\nwant %+v", k, got, ev)
		}
	}
	if _, ok := ParseKind("unknown"); ok {
		t.Fatal(`ParseKind("unknown") should fail`)
	}
	if _, ok := ParseKind("none"); ok {
		t.Fatal(`ParseKind("none") should fail: KindNone is not a wire kind`)
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind should stringify as unknown")
	}
}

func TestTracerAssignsSequenceNumbers(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		tr.Emit(Event{At: time.Duration(i) * time.Second, Kind: KindArrive, Server: -1, Pool: PoolNone})
	}
	evs := tr.Events()
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	tr.Reset()
	tr.Emit(Event{Kind: KindArrive, Server: -1, Pool: PoolNone})
	if got := tr.Events()[0].Seq; got != 1 {
		t.Fatalf("seq after Reset = %d, want 1", got)
	}
}

func TestScanEventsRoundTripAndGapDetection(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{At: 1500 * time.Microsecond, Kind: KindThreshold, Server: -1,
		Pool: PoolNone, Value: 0.87, Reason: "t1.engage", Label: "polca"})
	tr.Emit(Event{At: 2 * time.Second, Kind: KindCapApply, Server: 7, Pool: PoolLow, MHz: 1200})
	tr.Emit(Event{At: 3 * time.Second, Kind: KindCapRelease, Server: 7, Pool: PoolLow})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	var comments []string
	var got []Event
	input := "# header: yes\n\n" + buf.String()
	err := ScanEvents(strings.NewReader(input), func(l string) { comments = append(comments, l) }, func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(comments) != 1 || comments[0] != "# header: yes" {
		t.Fatalf("comments = %v", comments)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d did not round-trip:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	// Dropping the middle line is a gap with a line number.
	lines := strings.SplitAfter(buf.String(), "\n")
	gappy := lines[0] + lines[2]
	err = ScanEvents(strings.NewReader(gappy), nil, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("gap error = %v", err)
	}

	// Duplicated lines are a regression.
	err = ScanEvents(strings.NewReader(lines[1]+lines[1]), nil, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("regression error = %v", err)
	}

	// Legacy files without seq skip the check entirely.
	legacy := `{"t_us":0,"kind":"req.arrive"}` + "\n" + `{"t_us":5,"kind":"req.drop"}` + "\n"
	if err := ScanEvents(strings.NewReader(legacy), nil, func(Event) error { return nil }); err != nil {
		t.Fatalf("legacy scan: %v", err)
	}

	// Unknown kinds fail with a line number.
	err = ScanEvents(strings.NewReader(`{"t_us":0,"kind":"zorp"}`+"\n"), nil, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("unknown-kind error = %v", err)
	}
}
