package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func sampleTick(at time.Duration) Decision {
	return Decision{
		At:           at,
		TrueUtil:     0.83,
		Reading:      0.81,
		Delivered:    true,
		Braked:       false,
		Watchdog:     false,
		Stage:        1,
		LPDesiredMHz: 1275,
		HPDesiredMHz: 0,
		LPBusy:       5,
		HPBusy:       3,
		LPWatts:      2100.5,
		HPWatts:      1800.25,
	}
}

func sampleRoute(at time.Duration) (Decision, []RouteCandidate) {
	d := Decision{
		At:      at,
		ReqID:   42,
		Class:   "chat",
		Pri:     1,
		Retry:   1,
		Session: 7,
		Prefix:  3,
		Chosen:  1,
	}
	cands := []RouteCandidate{
		{Server: 2, Load: 4, KVFrac: 0.5, CappedMHz: 1110},
		{Server: 5, Load: 1, KVFrac: 0.25, CappedMHz: 0},
	}
	return d, cands
}

func TestDecisionRecorderNilSafe(t *testing.T) {
	var r *DecisionRecorder
	r.RecordTick(Decision{})
	r.RecordRoute(Decision{}, nil)
	r.SetMeta(DecisionMeta{})
	r.UpdateMeta(func(*DecisionMeta) { t.Fatal("must not run on nil") })
	r.Reset()
	if r.Enabled() || r.Len() != 0 {
		t.Fatal("nil recorder should be disabled and empty")
	}
	if d, c := r.Decisions(); d != nil || c != nil {
		t.Fatal("nil recorder should return nil slices")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionJSONLRoundTrip(t *testing.T) {
	r := NewDecisionRecorder()
	r.SetMeta(DecisionMeta{
		Policy:       "polca",
		Spec:         PolicySpec{Kind: "polca", T1: 0.80, T2: 0.89, UncapMargin: 0.05, LPBaseMHz: 1275, LPDeepMHz: 1110, HPCapMHz: 1305},
		Guard:        &GuardSpec{Window: 3, StuckAfter: 5, StuckMinUtil: 0.5, FailSafeAfter: 10, MaxStep: 0.10, FailSafeLPMHz: 1110, FailSafeHPMHz: 1305},
		TelemetrySec: 2,
		Servers:      16, LPServers: 8, HPServers: 8,
		ProvisionedW: 30000, BrakeUtil: 0.95, BrakeReleaseUtil: 0.90,
		IdleServerW: 500, BusyServerW: 2000, UncappedMHz: 1410,
		Serve: true, Router: "least-queue", Seed: 1,
	})
	r.RecordTick(sampleTick(2 * time.Second))
	rd, rc := sampleRoute(2*time.Second + 300*time.Millisecond)
	r.RecordRoute(rd, rc)
	// A lost-telemetry tick with no reading and zero true util.
	r.RecordTick(Decision{At: 4 * time.Second, Lost: true, Watchdog: true, FailSafe: true, LPDesiredMHz: 1110, HPDesiredMHz: 1305})
	// An empty-candidate route (no server available).
	r.RecordRoute(Decision{At: 5 * time.Second, ReqID: 43, Pri: 0, Chosen: -1}, nil)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := r.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("decision JSONL export should be deterministic")
	}

	var got []Decision
	var gotCands [][]RouteCandidate
	meta, err := ScanDecisions(bytes.NewReader(buf.Bytes()), nil, func(d Decision, cands []RouteCandidate) error {
		got = append(got, d)
		cp := make([]RouteCandidate, len(cands))
		copy(cp, cands)
		gotCands = append(gotCands, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Schema != DecisionSchema {
		t.Fatalf("schema = %q", meta.Schema)
	}
	if meta.Spec.Kind != "polca" || meta.Spec.T2 != 0.89 || meta.Guard == nil || meta.Guard.Window != 3 {
		t.Fatalf("meta did not round-trip: %+v", meta)
	}
	if meta.Router != "least-queue" || !meta.Serve || meta.BusyServerW != 2000 {
		t.Fatalf("meta row fields did not round-trip: %+v", meta)
	}
	if len(got) != 4 {
		t.Fatalf("got %d decisions, want 4", len(got))
	}

	want := sampleTick(2 * time.Second)
	want.Kind, want.Seq = DecTick, 1
	if got[0] != want {
		t.Fatalf("tick did not round-trip:\n got %+v\nwant %+v", got[0], want)
	}
	if got[1].Kind != DecRoute || got[1].ReqID != 42 || got[1].Class != "chat" || got[1].Chosen != 1 {
		t.Fatalf("route did not round-trip: %+v", got[1])
	}
	if len(gotCands[1]) != 2 || gotCands[1][0] != (RouteCandidate{Server: 2, Load: 4, KVFrac: 0.5, CappedMHz: 1110}) {
		t.Fatalf("candidates did not round-trip: %+v", gotCands[1])
	}
	if got[2].Delivered || !got[2].Lost || !got[2].Watchdog || !got[2].FailSafe {
		t.Fatalf("lost tick flags did not round-trip: %+v", got[2])
	}
	if got[3].Chosen != -1 || len(gotCands[3]) != 0 {
		t.Fatalf("empty route did not round-trip: %+v %v", got[3], gotCands[3])
	}
	// A delivered 0.0 reading must stay distinguishable from no reading.
	r2 := NewDecisionRecorder()
	r2.RecordTick(Decision{At: time.Second, Delivered: true, Reading: 0})
	var b3 bytes.Buffer
	if err := r2.WriteJSONL(&b3); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanDecisions(&b3, nil, func(d Decision, _ []RouteCandidate) error {
		if !d.Delivered || d.Reading != 0 {
			return fmt.Errorf("zero reading lost: %+v", d)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanDecisionsReportsGapsAndTruncation(t *testing.T) {
	r := NewDecisionRecorder()
	for i := 0; i < 5; i++ {
		r.RecordTick(sampleTick(time.Duration(i) * 2 * time.Second))
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")

	// Dropping a middle line is a sequence gap with the line number.
	gappy := strings.Join(append(append([]string{}, lines[:3]...), lines[4:]...), "")
	_, err := ScanDecisions(strings.NewReader(gappy), nil, func(Decision, []RouteCandidate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("gap error = %v", err)
	}

	// Duplicating a line is a regression.
	dup := strings.Join([]string{lines[0], lines[1], lines[1]}, "")
	_, err = ScanDecisions(strings.NewReader(dup), nil, func(Decision, []RouteCandidate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("regression error = %v", err)
	}

	// Truncating mid-line is a parse error with the line number.
	trunc := strings.Join(lines[:2], "") + lines[2][:len(lines[2])/2]
	_, err = ScanDecisions(strings.NewReader(trunc), nil, func(Decision, []RouteCandidate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("truncation error = %v", err)
	}

	// A missing header is an explicit error.
	_, err = ScanDecisions(strings.NewReader(""), nil, func(Decision, []RouteCandidate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("empty-log error = %v", err)
	}

	// A foreign schema is refused.
	_, err = ScanDecisions(strings.NewReader(`{"schema":"polca-decisions/v1"}`+"\n"), nil, func(Decision, []RouteCandidate) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema error = %v", err)
	}
}

// BenchmarkDecisionRecord locks the enabled recording hot path at zero
// allocations per decision once buffers are warm (make ci runs it under
// polca-bench -zero-alloc). The disabled path is a nil-receiver branch,
// same as BenchmarkTracerDisabled.
func BenchmarkDecisionRecord(b *testing.B) {
	r := NewDecisionRecorder()
	tick := sampleTick(2 * time.Second)
	route, cands := sampleRoute(2 * time.Second)
	// Warm the arenas to their steady-state capacity, then reset: Reset
	// keeps capacity, so the timed loop measures the append path alone.
	for i := 0; i < b.N+1; i++ {
		r.RecordTick(tick)
		r.RecordRoute(route, cands)
	}
	r.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordTick(tick)
		r.RecordRoute(route, cands)
	}
}

func BenchmarkDecisionRecordDisabled(b *testing.B) {
	var r *DecisionRecorder
	tick := sampleTick(2 * time.Second)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordTick(tick)
	}
}
