package serve

import (
	"fmt"

	"polca/internal/workload"
)

// Endpoint is one routable replica plus the snapshot the policies decide
// from: the sequences in flight (waiting plus running), the KV-cache
// occupancy fraction, and the SM-clock lock currently applied to its
// server (0 = uncapped). Routers read only the value fields — never Rep —
// so a recorded snapshot can be replayed against any router offline with
// Rep left nil; the live dispatch path fills the fields from Rep and keeps
// Rep for the subsequent Enqueue.
type Endpoint struct {
	Rep       *Replica
	Load      int
	KVFrac    float64
	CappedMHz float64
}

// Snapshot fills the decision fields from the live replica.
func (e *Endpoint) Snapshot() {
	e.Load = e.Rep.Load()
	e.KVFrac = e.Rep.KVFrac()
}

// Router picks a replica for an arriving request. Implementations must be
// deterministic — ties break on the lowest endpoint index, and no policy
// draws randomness — so serve-mode runs stay byte-identical across reruns.
type Router interface {
	Name() string
	// Pick returns the index into eps to route the request to, or -1 if
	// eps is empty.
	Pick(eps []Endpoint, req workload.Request) int
}

// RouterNames lists the available policies in a stable order.
func RouterNames() []string {
	return []string{"round-robin", "least-queue", "least-kv", "power-aware", "session-affinity"}
}

// NewRouter builds a routing policy by name.
func NewRouter(name string) (Router, error) {
	switch name {
	case "round-robin":
		return &roundRobin{}, nil
	case "least-queue":
		return leastQueue{}, nil
	case "least-kv":
		return leastKV{}, nil
	case "power-aware":
		return powerAware{}, nil
	case "session-affinity":
		return sessionAffinity{}, nil
	}
	return nil, fmt.Errorf("serve: unknown router %q (have %v)", name, RouterNames())
}

// roundRobin cycles through the endpoints regardless of load.
type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(eps []Endpoint, _ workload.Request) int {
	if len(eps) == 0 {
		return -1
	}
	i := r.next % len(eps)
	r.next = i + 1
	return i
}

// leastQueue routes to the replica with the fewest sequences in flight
// (waiting plus running) — the classic load balancer.
type leastQueue struct{}

func (leastQueue) Name() string { return "least-queue" }

func (leastQueue) Pick(eps []Endpoint, _ workload.Request) int {
	best := -1
	for i := range eps {
		if best < 0 || eps[i].Load < eps[best].Load {
			best = i
		}
	}
	return best
}

// leastKV routes to the replica with the most free KV cache, which spreads
// long-context work away from memory-pressured replicas and so minimizes
// preemptions.
type leastKV struct{}

func (leastKV) Name() string { return "least-kv" }

func (leastKV) Pick(eps []Endpoint, _ workload.Request) int {
	best := -1
	for i := range eps {
		if best < 0 || eps[i].KVFrac < eps[best].KVFrac {
			best = i
		}
	}
	return best
}

// powerAware steers low-priority work toward frequency-capped replicas and
// keeps high-priority work on uncapped ones, concentrating the latency
// penalty of POLCA's caps on the traffic that tolerates it (the paper's
// priority argument, applied at routing time). Within the preferred set it
// falls back to least-queue; if the preferred set is empty it considers
// everyone.
type powerAware struct{}

func (powerAware) Name() string { return "power-aware" }

func (powerAware) Pick(eps []Endpoint, req workload.Request) int {
	wantCapped := req.Priority == workload.Low
	best, bestPreferred := -1, false
	for i := range eps {
		preferred := (eps[i].CappedMHz > 0) == wantCapped
		switch {
		case best < 0,
			preferred && !bestPreferred,
			preferred == bestPreferred && eps[i].Load < eps[best].Load:
			best, bestPreferred = i, preferred
		}
	}
	return best
}

// sessionAffinity keeps the turns of one scenario session — and, failing
// that, the requests of one shared-prefix group — on the same replica, so
// the carried context's KV pages land where earlier turns already warmed
// them (vLLM-style prefix-cache locality). The key hashes onto the
// endpoint set, which is stable while the pool is healthy; requests with
// no session or prefix structure (legacy traffic, retries after failover
// reshuffles) fall back to least-queue. Deterministic: the hash depends
// only on the request, ties on the endpoint order.
type sessionAffinity struct{}

func (sessionAffinity) Name() string { return "session-affinity" }

func (sessionAffinity) Pick(eps []Endpoint, req workload.Request) int {
	if len(eps) == 0 {
		return -1
	}
	key := uint64(req.Session)
	if key == 0 {
		key = uint64(req.PrefixGroup)
	}
	if key == 0 || req.Retry > 0 {
		return leastQueue{}.Pick(eps, req)
	}
	// Fibonacci hashing spreads consecutive session ids uniformly.
	return int((key * 0x9E3779B97F4A7C15 >> 33) % uint64(len(eps)))
}
