package serve

import (
	"fmt"

	"polca/internal/gpu"
	"polca/internal/obs"
	"polca/internal/plan"
	"polca/internal/sim"
	"polca/internal/workload"
)

// Seq is one request moving through a replica: waiting, then running
// (prefill followed by decode), possibly bounced back to waiting by a
// preemption, until its output length is reached.
//
// Lifetime: the replica owns its sequences and recycles them through a free
// list once they retire. A *Seq handed to OnFirstToken, OnComplete, or
// OnDrop is valid only for the duration of the callback; callers that need
// the values afterwards must copy them out (or snapshot the whole struct by
// value) before returning.
type Seq struct {
	Req      workload.Request
	Enqueued sim.Time

	// prefillTarget is the context the sequence must (re)build before it
	// can decode: the prompt, plus — after a preemption — the tokens it had
	// already generated (recompute semantics).
	prefillTarget int
	prefilled     int
	decoded       int

	// kvTokens is the context materialized in the KV cache; kvRes is the
	// tokens of KV reserved for it (materialized plus the in-flight
	// iteration's planned growth). Reservations happen at batch formation
	// and are released in full on preemption or completion, so the
	// replica-level sum of kvRes can never overshoot capacity mid-iteration.
	kvTokens int
	kvRes    int

	firstTokenAt sim.Time // -1 until the first output token
	lastTokenAt  sim.Time
	preempts     int

	// Plan for the in-flight iteration, applied when it finishes.
	chunk int // prompt tokens to prefill
	steps int // decode steps to take

	// Per-request energy attribution, accumulated as each iteration the
	// sequence participated in settles: energyJ is the tensor-parallel
	// group's integrated GPU energy apportioned by token-weighted share;
	// capSec and capJ are this sequence's share of the iteration's extra
	// seconds and extra (or, negative, saved) joules versus the DVFS
	// uncapped counterfactual.
	energyJ float64
	capSec  float64
	capJ    float64

	tr *seqTrace // span bookkeeping; nil when span tracing is off
}

// seqTrace is the per-sequence span bookkeeping, allocated only when a
// span tracer is attached so the disabled path stays allocation-free.
type seqTrace struct {
	next       int32 // next child span ID (the root is always 1)
	queueStart sim.Time
	queueOpen  bool
	pending    obs.Span // open coalesced decode span
	hasPending bool
}

func (t *seqTrace) childID() int32 {
	t.next++
	return t.next - 1
}

// outputTarget is the generation length that completes the sequence; even
// a zero-output request samples one token from its prefill pass.
func (s *Seq) outputTarget() int {
	if s.Req.Output < 1 {
		return 1
	}
	return s.Req.Output
}

// Decoded returns the tokens generated so far.
func (s *Seq) Decoded() int { return s.decoded }

// KVTokens returns the tokens materialized in the KV cache.
func (s *Seq) KVTokens() int { return s.kvTokens }

// KVReserved returns the tokens of KV reserved for the sequence.
func (s *Seq) KVReserved() int { return s.kvRes }

// Preempts returns how many times the sequence was preempted.
func (s *Seq) Preempts() int { return s.preempts }

// EnergyJ returns the GPU energy attributed to the sequence so far, in
// joules across the replica's tensor-parallel group.
func (s *Seq) EnergyJ() float64 { return s.energyJ }

// CapSlowdownSec returns the extra seconds the sequence's iterations took
// versus the DVFS uncapped counterfactual (0 on an uncapped replica).
func (s *Seq) CapSlowdownSec() float64 { return s.capSec }

// CapDeltaJ returns the extra (positive) or saved (negative) joules of the
// sequence's iterations versus the DVFS uncapped counterfactual.
func (s *Seq) CapDeltaJ() float64 { return s.capJ }

// TTFTSeconds returns the time-to-first-token (arrival to first output
// token), or -1 if no token was produced yet.
func (s *Seq) TTFTSeconds() float64 {
	if s.firstTokenAt < 0 {
		return -1
	}
	return (s.firstTokenAt - s.Req.Arrival).Seconds()
}

// MeanTBTSeconds returns the request's mean time-between-tokens across its
// generation (0 for single-token outputs).
func (s *Seq) MeanTBTSeconds() float64 {
	if s.decoded < 2 || s.firstTokenAt < 0 {
		return 0
	}
	return (s.lastTokenAt - s.firstTokenAt).Seconds() / float64(s.decoded-1)
}

// Stats are the replica's cumulative scheduler counters. The observability
// reconciliation test checks the traced event stream against them.
type Stats struct {
	Batches           int // iterations formed
	Preemptions       int // sequences bounced to recompute
	Completed         int
	Dropped           int   // shed at the queue cap or lost to node death
	PromptTokens      int64 // prefill tokens processed
	DecodeTokens      int64 // tokens generated
	MaxRunning        int   // peak concurrent running sequences
	KVHighWaterFrac   float64
	KVHighWaterEvents int   // trace emissions of a new high water
	KVReservedTokens  int64 // cumulative reservation, in tokens
	KVFreedTokens     int64 // cumulative release; equals reserved at drain

	// EnergyJ is the per-GPU energy actually integrated over every settled
	// iteration, in joules: replanned iterations bank the consumed share of
	// the old execution before switching, and a node death settles the
	// partial energy of the cancelled iteration. On runs without
	// mid-iteration replans it equals the planned-at-launch energy the
	// calibration tests rely on. The per-request attribution (Seq.EnergyJ)
	// sums to exactly TensorParallel times this once every iteration has
	// settled — see TestEnergyConservation.
	EnergyJ float64

	// CapExtraSec and CapDeltaJ are the summed per-iteration differences
	// between actual duration/energy and the DVFS uncapped counterfactual
	// (clock lock, brake, and power cap released). Seconds are wall
	// iteration time; joules are per GPU like EnergyJ. Both are exactly 0
	// on a replica that never saw a cap or a mid-flight replan.
	CapExtraSec float64
	CapDeltaJ   float64
}

// spanSeg is one planned iteration inside a coalesced decode span: a
// pure-decode batch whose formation, execution, and settlement have been
// computed ahead of time. Segments before the one containing "now" settle
// lazily (their effects are applied when the span ends or breaks); the
// per-segment snapshot carries everything the per-stride path would have
// produced at the same instants, so settlement is bit-identical.
type spanSeg struct {
	start, end sim.Time
	stride     int
	phase      gpu.Phase
	exec       gpu.Exec
	baseSec    float64 // DVFS-uncapped counterfactual duration, seconds
	baseJ      float64 // DVFS-uncapped counterfactual energy, joules
	kvAfter    int     // replica kvToks after this segment's reservations
	memGB      float64 // device resident memory at this segment's formation
}

// maxSpanSegs bounds how far ahead a span plans. Interrupted spans discard
// the unreached tail, so an over-long horizon only wastes planning work.
const maxSpanSegs = 128

// Replica is one continuous-batching serving instance: a tensor-parallel
// group modeled by a single representative device (all GPUs in the group
// execute identical phases, as in the slot model).
type Replica struct {
	eng  *sim.Engine
	cfg  Config
	dev  *gpu.Device
	idx  int
	pool int8

	kvPerTok      int     // per-GPU KV bytes per token
	kvCapToks     int     // per-GPU KV capacity in tokens
	weightsPerGPU float64
	scale         float64 // tensor-parallel degree: per-GPU → group energy
	idleWatts     float64 // device idle draw (spec copy is too hot for PowerAt)
	tdpWatts      float64 // device TDP (the capped() check runs per iteration)

	waiting seqDeque
	running []*Seq
	kvToks  int // reserved KV across running sequences, in tokens

	iterActive bool
	iterPhase  gpu.Phase
	iterExec   gpu.Exec
	iterStart  sim.Time
	iterTimer  sim.Timer

	// Energy settlement state for the in-flight iteration. iterFormedAt is
	// the formation instant (iterStart moves on replans, this does not);
	// iterBankedJ accumulates the consumed share of executions replaced by
	// replans; iterBaseSec/iterBaseJ are the iteration's DVFS uncapped
	// counterfactual (equal to the planned execution when the device was
	// uncapped at formation).
	iterFormedAt sim.Time
	iterBankedJ  float64
	iterBaseSec  float64
	iterBaseJ    float64

	// Coalesced decode span: on stable pure-decode stretches the replica
	// plans up to maxSpanSegs iterations ahead and schedules one engine
	// event at the span's end instead of one per iteration. span aliases
	// segBuf's prefix; spanFormed/spanLaunched/spanSettled track how many
	// leading segments have had their formation/launch/finish effects
	// applied (seg 0's formation is real — formBatch ran before the span
	// was planned). spanCursor is a monotonic read cursor for the
	// non-destructive observers (PowerAt, KVFrac).
	span         []spanSeg
	segBuf       []spanSeg
	spanTimer    sim.Timer
	spanSeqs     int // batch size the span was planned with
	spanFormed   int
	spanLaunched int
	spanCursor   int
	coalesce     bool

	// Cached handlers and scratch, so the steady state allocates nothing:
	// method values passed to AfterCancelable would otherwise allocate a
	// closure per iteration, and Run would allocate Segments per call.
	finishFn  sim.Handler
	spanEndFn sim.Handler
	baseExec  gpu.Exec // scratch for the uncapped counterfactual
	seqFree   []*Seq
	trFree    []*seqTrace

	// draining marks a graceful-drain window: Enqueue refuses new work
	// while every sequence already accepted (running and waiting) finishes
	// normally. The row uses it for operator-style maintenance windows and
	// for the watchdog's serve-mode degradation.
	draining bool

	stats  Stats
	lastHW float64 // last traced high-water fraction

	tracer     *obs.Tracer
	spans      *obs.SpanTracer
	batchCtr   *obs.Counter
	preemptCtr *obs.Counter
	kvGauge    *obs.Gauge

	// Lifecycle callbacks, all optional. They fire inside engine event
	// handlers, so they must not block. The *Seq argument is only valid
	// during the callback — the replica recycles retired sequences.
	OnFirstToken func(s *Seq, now sim.Time)
	OnComplete   func(s *Seq, now sim.Time)
	OnDrop       func(s *Seq, now sim.Time, reason string)
}

// NewReplica builds a replica on the given device. idx and pool identify it
// in trace events (the row uses the node index and priority pool).
func NewReplica(eng *sim.Engine, cfg Config, dev *gpu.Device, idx int, pool int8) (*Replica, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(dev.Spec()); err != nil {
		return nil, err
	}
	kvPerTok := cfg.kvBytesPerToken()
	r := &Replica{
		eng: eng, cfg: cfg, dev: dev, idx: idx, pool: pool,
		kvPerTok:      int(kvPerTok),
		kvCapToks:     int(cfg.kvCapacityBytes(dev.Spec()) / kvPerTok),
		weightsPerGPU: cfg.Model.WeightBytes(cfg.DType) / float64(cfg.TensorParallel),
		scale:         float64(cfg.TensorParallel),
		idleWatts:     dev.Spec().IdleWatts,
		tdpWatts:      dev.Spec().TDPWatts,
	}
	o := eng.Observer()
	r.tracer = o.Trace()
	r.spans = o.SpanSink()
	r.batchCtr = o.Counter("serve_batches_total")
	r.preemptCtr = o.Counter("serve_preemptions_total")
	r.kvGauge = o.Gauge("serve_kv_highwater_frac")
	// Coalescing is exact, but the tracer and span sink observe individual
	// iterations, so their presence forces the per-stride path.
	r.coalesce = !cfg.NoCoalesce && r.tracer == nil && r.spans == nil
	r.finishFn = r.finishIteration
	r.spanEndFn = r.spanEnd
	return r, nil
}

// Config returns the replica's resolved configuration.
func (r *Replica) Config() Config { return r.cfg }

// Stats returns a snapshot of the scheduler counters. Reading the counters
// settles any in-flight coalesced span first (settlement at any instant
// leaves the future trajectory unchanged), so the snapshot is exactly what
// the per-stride scheduler would report at this moment.
func (r *Replica) Stats() Stats {
	r.breakSpan(r.eng.Now())
	return r.stats
}

// QueueLen returns the waiting-queue depth.
func (r *Replica) QueueLen() int { return r.waiting.Len() }

// Load returns waiting plus running sequences — the router's least-queue
// signal.
func (r *Replica) Load() int { return r.waiting.Len() + len(r.running) }

// Running returns the running-batch size.
func (r *Replica) Running() int { return len(r.running) }

// KVFrac returns the reserved KV cache as a fraction of capacity.
func (r *Replica) KVFrac() float64 {
	return float64(r.currentKVToks()) / float64(r.kvCapToks)
}

// TelemetrySample is the non-destructive per-tick reading the row's
// sim-time TSDB ingests every telemetry interval.
type TelemetrySample struct {
	Queue   int     // waiting-queue depth
	Running int     // running-batch size
	KVFrac  float64 // reserved KV cache as a fraction of capacity
}

// TelemetrySample reads the replica's queue, batch, and KV occupancy
// without settling the in-flight coalesced decode span — unlike Stats,
// it is safe to call on every telemetry tick without perturbing the
// span trace or paying the settlement cost.
func (r *Replica) TelemetrySample() TelemetrySample {
	return TelemetrySample{
		Queue:   r.waiting.Len(),
		Running: len(r.running),
		KVFrac:  r.KVFrac(),
	}
}

// KVReservedBytes returns the reserved KV bytes per GPU.
func (r *Replica) KVReservedBytes() float64 {
	return float64(r.currentKVToks()) * float64(r.kvPerTok)
}

// currentKVToks returns the reservation ledger as the per-stride scheduler
// would see it now: inside a coalesced span the planned segments' deferred
// reservations are folded in without settling them.
func (r *Replica) currentKVToks() int {
	if len(r.span) == 0 {
		return r.kvToks
	}
	return r.currentSeg(r.eng.Now()).kvAfter
}

// currentSeg returns the span segment covering now. A segment remains
// current until strictly after its end, matching event ordering at exact
// boundaries (a telemetry tick scheduled before the iteration fires first
// and still observes it in flight).
func (r *Replica) currentSeg(now sim.Time) *spanSeg {
	for r.spanCursor < len(r.span)-1 && r.span[r.spanCursor].end < now {
		r.spanCursor++
	}
	return &r.span[r.spanCursor]
}

// KVCapacityTokens returns the replica's KV capacity in tokens.
func (r *Replica) KVCapacityTokens() int { return r.kvCapToks }

// Idle reports whether the replica has no work at all.
func (r *Replica) Idle() bool {
	return !r.iterActive && len(r.span) == 0 && len(r.running) == 0 && r.waiting.Len() == 0
}

// Sequences calls fn for every sequence the replica holds (running first,
// then waiting); property tests use it to check KV invariants. Like Stats,
// it settles any in-flight span first so per-sequence counters are exact.
func (r *Replica) Sequences(fn func(s *Seq)) {
	r.breakSpan(r.eng.Now())
	for _, s := range r.running {
		fn(s)
	}
	for i := 0; i < r.waiting.Len(); i++ {
		fn(r.waiting.At(i))
	}
}

// newSeq builds a sequence for an accepted request, recycling a retired one
// when the free list has it.
func (r *Replica) newSeq(now sim.Time, req workload.Request) *Seq {
	var s *Seq
	if n := len(r.seqFree); n > 0 {
		s = r.seqFree[n-1]
		r.seqFree[n-1] = nil
		r.seqFree = r.seqFree[:n-1]
		*s = Seq{}
	} else {
		s = &Seq{}
	}
	s.Req = req
	s.Enqueued = now
	s.prefillTarget = req.Input
	s.firstTokenAt = -1
	s.lastTokenAt = -1
	if s.prefillTarget < 1 {
		s.prefillTarget = 1
	}
	if r.spans != nil {
		s.tr = r.newSeqTrace(now)
	}
	return s
}

// recycleSeq returns a retired sequence to the free list. Callers must have
// emitted its root span and fired its callback first.
func (r *Replica) recycleSeq(s *Seq) {
	r.seqFree = append(r.seqFree, s)
}

func (r *Replica) newSeqTrace(now sim.Time) *seqTrace {
	var t *seqTrace
	if n := len(r.trFree); n > 0 {
		t = r.trFree[n-1]
		r.trFree[n-1] = nil
		r.trFree = r.trFree[:n-1]
	} else {
		t = &seqTrace{}
	}
	*t = seqTrace{next: 2, queueStart: now, queueOpen: true}
	return t
}

// SetDraining switches the replica's graceful-drain mode: while draining
// it refuses new admissions but lets accepted work finish. Idempotent.
func (r *Replica) SetDraining(v bool) { r.draining = v }

// Draining reports whether the replica is in graceful-drain mode.
func (r *Replica) Draining() bool { return r.draining }

// Enqueue accepts a request into the waiting queue, kicking the iteration
// loop if the replica was idle. It returns false when the queue is at
// capacity or the replica is draining (the caller sheds or fails the
// request over).
func (r *Replica) Enqueue(now sim.Time, req workload.Request) bool {
	if r.draining || r.waiting.Len() >= r.cfg.QueueCap {
		r.stats.Dropped++
		return false
	}
	// An arrival invalidates the planned decode span: settle it and fall
	// back to the materialized in-flight iteration, exactly as the
	// per-stride scheduler stands at this instant.
	r.breakSpan(now)
	s := r.newSeq(now, req)
	r.waiting.PushBack(s)
	if !r.iterActive {
		r.startIteration(now)
	}
	return true
}

// Fail drops every sequence the replica holds (running and waiting) and
// cancels the in-flight iteration — the node died under it. The replica
// revives cold on the next Enqueue. The cancelled iteration's consumed
// energy is settled and attributed first, so per-request attribution stays
// conserved across node deaths.
func (r *Replica) Fail(now sim.Time) {
	r.breakSpan(now)
	if r.iterActive {
		r.iterTimer.Stop()
		r.iterActive = false
		partialJ := r.iterBankedJ + r.iterExec.EnergyUpTo(now-r.iterStart)
		r.stats.EnergyJ += partialJ
		totalToks := 0
		for _, s := range r.running {
			totalToks += s.chunk + s.steps
		}
		if totalToks > 0 {
			perTokJ := partialJ * r.scale / float64(totalToks)
			for _, s := range r.running {
				s.energyJ += perTokJ * float64(s.chunk+s.steps)
				// The cancelled iteration still gets a child span, so the
				// span tree's children sum to the root attribution even
				// across a node death.
				if s.tr != nil && s.chunk+s.steps > 0 {
					kind := obs.SpanDecode
					toks := s.steps
					if s.chunk > 0 {
						kind = obs.SpanPrefill
						toks = s.chunk
					}
					r.flushDecodeSpan(s)
					sp := r.spanBase(s, kind)
					sp.Start, sp.End = r.iterStart, now
					sp.Tokens = int32(toks)
					sp.Recompute = kind == obs.SpanPrefill && s.preempts > 0
					sp.EnergyJ = perTokJ * float64(s.chunk+s.steps)
					r.spans.Emit(sp)
				}
			}
		}
	}
	for _, s := range r.running {
		r.freeKV(s)
		s.chunk, s.steps = 0, 0
		r.emitRootSpan(s, now, "node-death")
		r.stats.Dropped++
		if r.OnDrop != nil {
			r.OnDrop(s, now, "node-death")
		}
		r.recycleSeq(s)
	}
	for i := 0; i < r.waiting.Len(); i++ {
		s := r.waiting.At(i)
		r.closeQueueSpan(s, now)
		r.emitRootSpan(s, now, "node-death")
		r.stats.Dropped++
		if r.OnDrop != nil {
			r.OnDrop(s, now, "node-death")
		}
		r.recycleSeq(s)
	}
	for i := range r.running {
		r.running[i] = nil
	}
	r.running = r.running[:0]
	r.waiting.Clear()
}

// PowerAt returns the replica's current per-GPU power draw.
func (r *Replica) PowerAt(now sim.Time) float64 {
	if r.iterActive {
		return r.iterExec.PowerAt(now - r.iterStart)
	}
	if len(r.span) > 0 {
		seg := r.currentSeg(now)
		return seg.exec.PowerAt(now - seg.start)
	}
	return r.idleWatts
}

// Replan re-times the in-flight iteration under the device's current
// settings — the row calls it when an OOB clock lock or the power brake
// lands mid-iteration, mirroring the slot model's replan. The iteration's
// outcome (which tokens it advances) is fixed at formation; only its
// remaining duration and power change.
func (r *Replica) Replan(now sim.Time) {
	// A cap change invalidates every planned segment: settle the span and
	// replan the materialized current iteration.
	r.breakSpan(now)
	if !r.iterActive {
		return
	}
	elapsed := now - r.iterStart
	frac := 1.0
	if r.iterExec.Duration > 0 {
		frac = float64(elapsed) / float64(r.iterExec.Duration)
	}
	if frac >= 1 {
		return // the completion event is already due at this instant
	}
	if frac < 0 {
		frac = 0
	}
	r.iterTimer.Stop()
	r.iterBankedJ += r.iterExec.EnergyUpTo(elapsed)
	r.iterPhase = r.iterPhase.Scale(1 - frac)
	r.dev.RunInto(r.iterPhase, &r.iterExec)
	r.iterStart = now
	r.iterTimer = r.eng.AfterCancelable(r.iterExec.Duration, r.finishFn)
}

// startIteration forms and launches the next iteration, or parks the
// replica if there is nothing to do.
func (r *Replica) startIteration(now sim.Time) {
	for {
		promptToks, decodeSeqs, stride := r.formBatch(now)
		if promptToks == 0 && decodeSeqs == 0 {
			if len(r.running) > 0 {
				// Every running sequence is KV-blocked mid-prefill with no
				// decode work to free memory. Recompute the newest to make
				// progress; each preemption frees KV, so this terminates.
				if r.preemptNewest(now) {
					continue
				}
			}
			return
		}
		if promptToks == 0 && r.coalesce && r.waiting.Len() == 0 {
			r.runSpan(now, decodeSeqs, stride)
			return
		}
		r.runIteration(now, promptToks, decodeSeqs, stride)
		return
	}
}

// formBatch plans the next iteration: it guarantees KV for the decode
// steps (preempting newest-first under pressure), admits waiting sequences
// under a conservative full-context reservation check, then hands out
// prompt chunks within the token budget. All KV growth is reserved here,
// before the iteration runs.
func (r *Replica) formBatch(now sim.Time) (promptToks, decodeSeqs, stride int) {
	decodeSeqs, minRemaining, prefillPending := r.decodeState()

	// Guarantee one decode token per decoding sequence, recomputing the
	// newest sequences until the growth fits.
	for decodeSeqs > 0 && r.kvToks+decodeSeqs > r.kvCapToks {
		if !r.preemptNewest(now) {
			break
		}
		decodeSeqs, minRemaining, prefillPending = r.decodeState()
	}

	// Multi-step aggregation: only when the iteration would be pure decode
	// with nothing waiting, and never past a completion boundary or the KV
	// capacity.
	stride = 1
	if decodeSeqs > 0 && !prefillPending && r.waiting.Len() == 0 && r.cfg.DecodeStride > 1 {
		stride = r.cfg.DecodeStride
		if stride > minRemaining {
			stride = minRemaining
		}
		if fit := (r.kvCapToks - r.kvToks) / decodeSeqs; stride > fit {
			stride = fit
		}
		if stride < 1 {
			stride = 1
		}
	}

	// Reserve the decode growth.
	for _, s := range r.running {
		if s.prefilled >= s.prefillTarget {
			s.steps = stride
			r.reserveKV(s, stride)
		}
	}

	// Admit waiting sequences while their full remaining context fits on
	// top of everything already promised (reserved KV plus the un-prefilled
	// remainder of every running sequence). Conservative by design: an
	// admitted sequence can always finish its prefill without evicting
	// anyone.
	projected := r.kvToks
	for _, s := range r.running {
		projected += s.prefillTarget - s.prefilled
	}
	for r.waiting.Len() > 0 && len(r.running) < r.cfg.MaxBatchSize {
		cand := r.waiting.At(0)
		if projected+cand.prefillTarget > r.kvCapToks {
			break
		}
		projected += cand.prefillTarget
		r.waiting.PopFront()
		r.running = append(r.running, cand)
		r.closeQueueSpan(cand, now)
	}

	// Hand out prompt chunks within the remaining token budget, clipped to
	// the KV actually free right now (decode growth since admission can
	// have consumed the conservative estimate).
	budget := r.cfg.MaxBatchTokens - decodeSeqs
	for _, s := range r.running {
		if s.prefilled >= s.prefillTarget || budget <= 0 {
			continue
		}
		chunk := s.prefillTarget - s.prefilled
		if chunk > budget {
			chunk = budget
		}
		if free := r.kvCapToks - r.kvToks; chunk > free {
			chunk = free
		}
		if chunk <= 0 {
			continue
		}
		s.chunk = chunk
		r.reserveKV(s, chunk)
		promptToks += chunk
		budget -= chunk
	}

	if len(r.running) > r.stats.MaxRunning {
		r.stats.MaxRunning = len(r.running)
	}
	r.noteHighWater(now)
	return promptToks, decodeSeqs, stride
}

// decodeState counts decoding sequences, the smallest remaining output
// among them, and whether any running sequence still has prefill to do.
func (r *Replica) decodeState() (decodeSeqs, minRemaining int, prefillPending bool) {
	for _, s := range r.running {
		if s.prefilled < s.prefillTarget {
			prefillPending = true
			continue
		}
		rem := s.outputTarget() - s.decoded
		if decodeSeqs == 0 || rem < minRemaining {
			minRemaining = rem
		}
		decodeSeqs++
	}
	return decodeSeqs, minRemaining, prefillPending
}

// reserveKV books toks of KV growth for the sequence.
func (r *Replica) reserveKV(s *Seq, toks int) {
	if toks <= 0 {
		return
	}
	s.kvRes += toks
	r.kvToks += toks
	r.stats.KVReservedTokens += int64(toks)
}

// freeKV releases everything the sequence has reserved.
func (r *Replica) freeKV(s *Seq) {
	r.kvToks -= s.kvRes
	r.stats.KVFreedTokens += int64(s.kvRes)
	s.kvRes = 0
}

// preemptNewest evicts the most recently admitted sequence that holds KV,
// releasing its reservation and requeueing it at the head of the waiting
// queue for recompute (its new prefill target covers the prompt plus the
// tokens it had already generated). Returns false if no sequence holds KV.
func (r *Replica) preemptNewest(now sim.Time) bool {
	for i := len(r.running) - 1; i >= 0; i-- {
		s := r.running[i]
		if s.kvRes == 0 {
			continue
		}
		freedToks := s.kvRes
		freed := float64(s.kvRes) * float64(r.kvPerTok)
		r.freeKV(s)
		s.preempts++
		s.prefilled = 0
		s.kvTokens = 0
		s.chunk, s.steps = 0, 0
		s.prefillTarget = s.Req.Input + s.decoded
		if s.prefillTarget < 1 {
			s.prefillTarget = 1
		}
		r.running = append(r.running[:i], r.running[i+1:]...)
		r.waiting.PushFront(s)
		r.stats.Preemptions++
		r.preemptCtr.Inc()
		if r.tracer != nil {
			r.tracer.Emit(obs.Event{
				At: now, Kind: obs.KindPreempt, Server: int32(r.idx), Pool: r.pool,
				Value: freed, Reason: "kv-pressure",
			})
		}
		if s.tr != nil {
			r.flushDecodeSpan(s)
			sp := r.spanBase(s, obs.SpanPreempt)
			sp.Start, sp.End = now, now
			sp.Tokens = int32(freedToks)
			sp.Reason = "kv-pressure"
			r.spans.Emit(sp)
			s.tr.queueStart = now
			s.tr.queueOpen = true
		}
		return true
	}
	return false
}

// noteHighWater traces a new KV occupancy high water, quantized to 5% of
// capacity so the event stream stays bounded.
func (r *Replica) noteHighWater(now sim.Time) {
	frac := float64(r.kvToks) / float64(r.kvCapToks)
	if frac > r.stats.KVHighWaterFrac {
		r.stats.KVHighWaterFrac = frac
	}
	if frac < r.lastHW+0.05 {
		return
	}
	r.lastHW = frac
	r.stats.KVHighWaterEvents++
	r.kvGauge.Set(frac)
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindKVHighWater, Server: int32(r.idx), Pool: r.pool,
			Value: frac,
		})
	}
}

// synthDecodePhase synthesizes a pure-decode iteration of the running batch
// into one GPU phase: stride passes through the model, each decoding one
// token per sequence against its current KV length. Shared by the direct
// per-stride path and the span planner, so both time the identical phase.
func (r *Replica) synthDecodePhase(stride, decodeSeqs int) gpu.Phase {
	m, dt := r.cfg.Model, r.cfg.DType
	tp := float64(r.cfg.TensorParallel)

	var dFLOPs, bytes float64
	for _, s := range r.running {
		dFLOPs += m.DecodeSpanFLOPs(stride, s.kvTokens)
		bytes += m.DecodeSpanBytes(dt, stride, s.kvTokens)
	}
	bytes += m.WeightBytes(dt) * dt.MemAmplification() * float64(stride)

	tensorFrac := 0.9
	if dFLOPs > 0 {
		tensorFrac = (0.90 * dFLOPs) / dFLOPs
	}
	return gpu.Phase{
		Name:            "decode",
		DType:           dt,
		FLOPs:           dFLOPs / tp,
		MemBytes:        bytes / tp,
		TensorFrac:      tensorFrac,
		Efficiency:      0, // decode GEMMs: the slot model's token-phase default
		CommSeconds:     float64(stride) * plan.AllReduceSeconds(m, dt, r.cfg.TensorParallel, decodeSeqs, r.cfg.NVLinkGBps),
		OverheadSeconds: float64(stride) * plan.PassOverheadSeconds(m),
	}
}

// capped reports whether any management knob throttles the device, in which
// case settlement needs the DVFS-uncapped counterfactual baseline.
func (r *Replica) capped() bool {
	return r.dev.LockedClock() != 0 || r.dev.Brake() || r.dev.PowerCap() < r.tdpWatts
}

// runIteration synthesizes the planned batch into one GPU phase and runs
// it on the device, which applies clock locks, power caps, and the brake
// exactly as it does for slot-model phases.
func (r *Replica) runIteration(now sim.Time, promptToks, decodeSeqs, stride int) {
	var phase gpu.Phase
	if promptToks == 0 {
		// A multi-step decode iteration is stride passes, each streaming
		// the weights once.
		phase = r.synthDecodePhase(stride, decodeSeqs)
	} else {
		// A mixed or prefill iteration is one pass through the model.
		m, dt := r.cfg.Model, r.cfg.DType
		tp := float64(r.cfg.TensorParallel)
		tokensPerPass := promptToks + decodeSeqs

		var pFLOPs, dFLOPs, bytes float64
		for _, s := range r.running {
			if s.chunk > 0 {
				pFLOPs += m.PrefillChunkFLOPs(s.chunk, s.kvTokens)
				bytes += m.PrefillChunkBytes(dt, s.chunk, s.kvTokens)
			}
			if s.steps > 0 {
				dFLOPs += m.DecodeSpanFLOPs(s.steps, s.kvTokens)
				bytes += m.DecodeSpanBytes(dt, s.steps, s.kvTokens)
			}
		}
		flops := pFLOPs + dFLOPs
		bytes += m.WeightBytes(dt) * dt.MemAmplification()

		// The power split interpolates between the compute-bound prompt
		// spike and the memory-bound decode plateau by each side's share of
		// the math.
		tensorFrac := 0.9
		if flops > 0 {
			tensorFrac = (0.97*pFLOPs + 0.90*dFLOPs) / flops
		}
		name := "mixed"
		if decodeSeqs == 0 {
			name = "prefill"
		}
		phase = gpu.Phase{
			Name:            name,
			DType:           dt,
			FLOPs:           flops / tp,
			MemBytes:        bytes / tp,
			TensorFrac:      tensorFrac,
			Efficiency:      plan.BatchEfficiency(tokensPerPass),
			CommSeconds:     plan.AllReduceSeconds(m, dt, r.cfg.TensorParallel, tokensPerPass, r.cfg.NVLinkGBps),
			OverheadSeconds: plan.PassOverheadSeconds(m),
		}
	}
	r.dev.SetMemUsedGB((r.weightsPerGPU + r.KVReservedBytes()) / 1e9)
	r.dev.RunInto(phase, &r.iterExec)
	r.iterActive = true
	r.iterPhase = phase
	r.iterStart = now
	r.iterFormedAt = now
	r.iterBankedJ = 0
	// Cap-slowdown attribution baseline: when any knob throttles the device
	// at formation, also time the iteration's uncapped counterfactual.
	// Energy settles against it when the iteration finishes.
	if r.capped() {
		r.uncappedExecInto(phase, &r.baseExec)
		r.iterBaseSec = r.baseExec.Duration.Seconds()
		r.iterBaseJ = r.baseExec.Energy()
	} else {
		r.iterBaseSec = r.iterExec.Duration.Seconds()
		r.iterBaseJ = r.iterExec.Energy()
	}
	r.iterTimer = r.eng.AfterCancelable(r.iterExec.Duration, r.finishFn)

	r.stats.Batches++
	r.stats.PromptTokens += int64(promptToks)
	r.stats.DecodeTokens += int64(decodeSeqs * stride)
	r.batchCtr.Inc()
	if r.tracer != nil {
		r.tracer.Emit(obs.Event{
			At: now, Kind: obs.KindBatchForm, Server: int32(r.idx), Pool: r.pool,
			Value: float64(promptToks + decodeSeqs*stride), Reason: phase.Name,
		})
	}
}

// runSpan plans a coalesced decode span: starting from the batch formBatch
// just formed (segment 0, whose reservations are already real), it walks
// the per-stride scheduler's future iterations — same batch, growing KV —
// until a completion boundary, a KV-pressure crossing, or the planning
// horizon, and schedules a single engine event at the span's end. Planning
// runs the identical per-iteration arithmetic the per-stride path runs
// (same formation formulas, same device executions), so settlement later
// reproduces its results bit for bit. Arrivals, replans, and failures
// break the span; the segments already in the past settle, the current one
// materializes as a plain in-flight iteration, and the unreached tail is
// discarded.
func (r *Replica) runSpan(now sim.Time, decodeSeqs, stride int) {
	minRem := 0
	for _, s := range r.running {
		rem := s.outputTarget() - s.decoded
		if minRem == 0 || rem < minRem {
			minRem = rem
		}
	}

	capped := r.capped()
	kv := r.kvToks // segment 0's reservations included
	segStart := now
	st := stride
	rolled := 0
	nseg := 0
	for {
		if nseg == len(r.segBuf) {
			r.segBuf = append(r.segBuf, spanSeg{})
		}
		seg := &r.segBuf[nseg]
		nseg++
		seg.start = segStart
		seg.stride = st
		seg.kvAfter = kv
		seg.phase = r.synthDecodePhase(st, decodeSeqs)
		seg.memGB = (r.weightsPerGPU + float64(kv)*float64(r.kvPerTok)) / 1e9
		r.dev.SetMemUsedGB(seg.memGB)
		r.dev.RunInto(seg.phase, &seg.exec)
		if capped {
			r.uncappedExecInto(seg.phase, &r.baseExec)
			seg.baseSec = r.baseExec.Duration.Seconds()
			seg.baseJ = r.baseExec.Energy()
		} else {
			seg.baseSec = seg.exec.Duration.Seconds()
			seg.baseJ = seg.exec.Energy()
		}
		seg.end = segStart + seg.exec.Duration

		// Shadow-advance the per-sequence KV so the next segment's phase
		// sees the grown context; rolled backs out the whole advance below
		// (real growth happens at settlement).
		for _, s := range r.running {
			s.kvTokens += st
		}
		rolled += st
		minRem -= st
		if minRem == 0 || nseg >= maxSpanSegs {
			// A sequence completes at this segment's end (or the horizon is
			// reached): the span ends here and the real finishIteration
			// handles whatever follows.
			break
		}
		if kv+decodeSeqs > r.kvCapToks {
			// The next formation would preempt under KV pressure — stop;
			// the real formBatch after the span's end does it.
			break
		}
		// The next segment's formation, exactly as formBatch computes it
		// for a pure-decode batch with an empty waiting queue.
		st = 1
		if r.cfg.DecodeStride > 1 {
			st = r.cfg.DecodeStride
			if st > minRem {
				st = minRem
			}
			if fit := (r.kvCapToks - kv) / decodeSeqs; st > fit {
				st = fit
			}
			if st < 1 {
				st = 1
			}
		}
		kv += decodeSeqs * st
		segStart = seg.end
	}
	for _, s := range r.running {
		s.kvTokens -= rolled
	}

	r.span = r.segBuf[:nseg]
	r.spanSeqs = decodeSeqs
	r.spanFormed = 1 // segment 0's formation ran for real in formBatch
	r.spanLaunched = 0
	r.spanCursor = 0
	last := &r.span[nseg-1]
	r.spanTimer = r.eng.AfterCancelable(last.end-now, r.spanEndFn)
}

// settleSeg applies a fully elapsed span segment's deferred effects in
// order: formation (reservations, high-water note), launch (batch
// counters), and finish (energy settlement, token advances) — the exact
// operations, in the exact order, the per-stride scheduler performed at the
// segment's formation and finish instants.
func (r *Replica) settleSeg(i int) {
	seg := &r.span[i]
	if i >= r.spanFormed {
		for _, s := range r.running {
			s.steps = seg.stride
			r.reserveKV(s, seg.stride)
		}
		r.noteHighWater(seg.start)
		r.spanFormed = i + 1
	}
	if i >= r.spanLaunched {
		r.stats.Batches++
		r.stats.DecodeTokens += int64(r.spanSeqs * seg.stride)
		r.batchCtr.Inc()
		r.spanLaunched = i + 1
	}

	iterJ := seg.exec.Energy()
	r.stats.EnergyJ += iterJ
	capSec := seg.exec.Duration.Seconds() - seg.baseSec
	capJ := iterJ - seg.baseJ
	r.stats.CapExtraSec += capSec
	r.stats.CapDeltaJ += capJ
	totalToks := r.spanSeqs * seg.stride
	n := float64(totalToks)
	perTokJ := iterJ * r.scale / n
	perTokCapSec := capSec / n
	perTokCapJ := capJ * r.scale / n
	for _, s := range r.running {
		toks := seg.stride
		s.energyJ += perTokJ * float64(toks)
		s.capSec += perTokCapSec * float64(toks)
		s.capJ += perTokCapJ * float64(toks)
		s.decoded += seg.stride
		s.kvTokens += seg.stride
		s.steps = 0
		s.lastTokenAt = seg.end
	}
}

// materializeSeg turns a span segment into the plain in-flight iteration:
// deferred formation and launch effects are applied, and the iteration
// state is exactly what runIteration would have produced at seg.start. The
// segment's execution is swapped (not copied) into iterExec so both
// Segments backings keep being reused.
func (r *Replica) materializeSeg(i int, now sim.Time, withTimer bool) {
	seg := &r.span[i]
	if i >= r.spanFormed {
		for _, s := range r.running {
			s.steps = seg.stride
			r.reserveKV(s, seg.stride)
		}
		r.noteHighWater(seg.start)
		r.spanFormed = i + 1
	}
	if i >= r.spanLaunched {
		r.stats.Batches++
		r.stats.DecodeTokens += int64(r.spanSeqs * seg.stride)
		r.batchCtr.Inc()
		r.spanLaunched = i + 1
	}
	r.dev.SetMemUsedGB(seg.memGB)
	r.iterActive = true
	r.iterPhase = seg.phase
	r.iterExec, seg.exec = seg.exec, r.iterExec
	r.iterStart = seg.start
	r.iterFormedAt = seg.start
	r.iterBankedJ = 0
	r.iterBaseSec = seg.baseSec
	r.iterBaseJ = seg.baseJ
	if withTimer {
		r.iterTimer = r.eng.AfterCancelable(seg.end-now, r.finishFn)
	}
}

// spanEnd fires at the last span segment's finish: every earlier segment
// settles, the final one materializes, and the real finishIteration retires
// completed sequences and chains into the next iteration (or span) at the
// exact instant and state the per-stride scheduler would reach.
func (r *Replica) spanEnd(now sim.Time) {
	n := len(r.span)
	for i := 0; i < n-1; i++ {
		r.settleSeg(i)
	}
	r.materializeSeg(n-1, now, false)
	r.span = nil
	r.finishIteration(now)
}

// breakSpan interrupts an in-flight coalesced span at now: segments
// strictly in the past settle, the segment covering now materializes as
// the plain in-flight iteration (with its completion timer), and the
// planned tail is discarded. A no-op when no span is active. Breaking is
// trajectory-preserving: the replica's visible state and all future events
// are identical whether or not the span had been planned.
func (r *Replica) breakSpan(now sim.Time) {
	if len(r.span) == 0 {
		return
	}
	r.spanTimer.Stop()
	i := 0
	for ; i < len(r.span)-1 && r.span[i].end < now; i++ {
		r.settleSeg(i)
	}
	r.materializeSeg(i, now, true)
	r.span = nil
}

// uncappedExec times a phase with the device's clock lock, brake, and
// power cap all released — the DVFS counterfactual for cap attribution.
// Device knobs are restored before returning, so the run is observably
// pure.
func (r *Replica) uncappedExec(phase gpu.Phase) gpu.Exec {
	var e gpu.Exec
	r.uncappedExecInto(phase, &e)
	return e
}

// uncappedExecInto is uncappedExec into a caller-owned execution.
func (r *Replica) uncappedExecInto(phase gpu.Phase, e *gpu.Exec) {
	lock, brake, cap := r.dev.LockedClock(), r.dev.Brake(), r.dev.PowerCap()
	r.dev.LockClock(0)
	r.dev.SetBrake(false)
	r.dev.SetPowerCap(r.tdpWatts)
	r.dev.RunInto(phase, e)
	r.dev.LockClock(lock)
	r.dev.SetBrake(brake)
	r.dev.SetPowerCap(cap)
}

// finishIteration settles the iteration's energy (attributing it to the
// participating sequences by token-weighted share), applies the planned
// token advances, retires completed sequences, and chains into the next
// iteration.
func (r *Replica) finishIteration(now sim.Time) {
	r.iterActive = false

	// Settle energy and the cap counterfactual. On an uncapped iteration
	// that was never replanned both deltas are exactly zero: the actual
	// duration and energy are the very numbers the baseline recorded.
	iterJ := r.iterBankedJ + r.iterExec.Energy()
	r.stats.EnergyJ += iterJ
	capSec := (now - r.iterFormedAt).Seconds() - r.iterBaseSec
	capJ := iterJ - r.iterBaseJ
	r.stats.CapExtraSec += capSec
	r.stats.CapDeltaJ += capJ
	totalToks := 0
	for _, s := range r.running {
		totalToks += s.chunk + s.steps
	}
	var perTokJ, perTokCapSec, perTokCapJ float64
	if totalToks > 0 {
		n := float64(totalToks)
		perTokJ = iterJ * r.scale / n
		perTokCapSec = capSec / n
		perTokCapJ = capJ * r.scale / n
	}

	keep := r.running[:0]
	for _, s := range r.running {
		if toks := s.chunk + s.steps; toks > 0 {
			s.energyJ += perTokJ * float64(toks)
			s.capSec += perTokCapSec * float64(toks)
			s.capJ += perTokCapJ * float64(toks)
			if s.tr != nil {
				r.spanIteration(s, now, perTokJ, perTokCapSec, perTokCapJ)
			}
		}
		if s.chunk > 0 {
			s.prefilled += s.chunk
			s.kvTokens += s.chunk
			s.chunk = 0
			if s.prefilled >= s.prefillTarget {
				// The pass that consumed the last prompt chunk also sampled
				// an output token.
				s.decoded++
				if s.firstTokenAt < 0 {
					s.firstTokenAt = now
					if r.OnFirstToken != nil {
						r.OnFirstToken(s, now)
					}
				}
				s.lastTokenAt = now
			}
		}
		if s.steps > 0 {
			s.decoded += s.steps
			s.kvTokens += s.steps
			s.steps = 0
			s.lastTokenAt = now
		}
		if s.decoded >= s.outputTarget() {
			r.freeKV(s)
			r.stats.Completed++
			r.emitRootSpan(s, now, "")
			if r.OnComplete != nil {
				r.OnComplete(s, now)
			}
			r.recycleSeq(s)
			continue
		}
		keep = append(keep, s)
	}
	for i := len(keep); i < len(r.running); i++ {
		r.running[i] = nil
	}
	r.running = keep
	r.startIteration(now)
}

// spanBase returns a child span of the sequence's tree with the shared
// identity fields filled in. Callers must have checked s.tr != nil.
func (r *Replica) spanBase(s *Seq, kind obs.SpanKind) obs.Span {
	return obs.Span{
		Req: s.Req.ID, ID: s.tr.childID(), Parent: 1, Kind: kind,
		Server: int32(r.idx), Pool: r.pool, Class: s.Req.Class,
		Retry: int32(s.Req.Retry),
	}
}

// closeQueueSpan emits the sequence's open queue span ending now (a no-op
// when tracing is off or no queue span is open).
func (r *Replica) closeQueueSpan(s *Seq, now sim.Time) {
	if s.tr == nil || !s.tr.queueOpen {
		return
	}
	s.tr.queueOpen = false
	sp := r.spanBase(s, obs.SpanQueue)
	sp.Start, sp.End = s.tr.queueStart, now
	r.spans.Emit(sp)
}

// flushDecodeSpan emits the sequence's pending coalesced decode span.
func (r *Replica) flushDecodeSpan(s *Seq) {
	if s.tr == nil || !s.tr.hasPending {
		return
	}
	s.tr.hasPending = false
	r.spans.Emit(s.tr.pending)
}

// spanIteration records the settled iteration in the sequence's span tree:
// a prefill span per prompt chunk, and decode iterations coalesced into
// one span per uninterrupted run (back-to-back iterations chain at the
// same instant, so a long generation stays a single span instead of one
// per stride).
func (r *Replica) spanIteration(s *Seq, now sim.Time, perTokJ, perTokCapSec, perTokCapJ float64) {
	n := float64(s.chunk + s.steps)
	energy, capSec, capJ := perTokJ*n, perTokCapSec*n, perTokCapJ*n
	if s.chunk > 0 {
		r.flushDecodeSpan(s)
		sp := r.spanBase(s, obs.SpanPrefill)
		sp.Start, sp.End = r.iterFormedAt, now
		sp.Tokens = int32(s.chunk)
		sp.Recompute = s.preempts > 0
		sp.EnergyJ, sp.CapSec, sp.CapJ = energy, capSec, capJ
		r.spans.Emit(sp)
		return
	}
	if s.tr.hasPending && s.tr.pending.End == r.iterFormedAt {
		p := &s.tr.pending
		p.End = now
		p.Tokens += int32(s.steps)
		p.EnergyJ += energy
		p.CapSec += capSec
		p.CapJ += capJ
		return
	}
	r.flushDecodeSpan(s)
	sp := r.spanBase(s, obs.SpanDecode)
	sp.Start, sp.End = r.iterFormedAt, now
	sp.Tokens = int32(s.steps)
	sp.EnergyJ, sp.CapSec, sp.CapJ = energy, capSec, capJ
	s.tr.pending = sp
	s.tr.hasPending = true
}

// emitRootSpan closes the sequence's tree with its root request span,
// carrying the request-level attributions. reason is empty on completion
// and names the cause on drops.
func (r *Replica) emitRootSpan(s *Seq, now sim.Time, reason string) {
	if s.tr == nil {
		return
	}
	r.flushDecodeSpan(s)
	r.spans.Emit(obs.Span{
		Req: s.Req.ID, ID: 1, Kind: obs.SpanRequest,
		Start: s.Req.Arrival, End: now,
		Server: int32(r.idx), Pool: r.pool, Class: s.Req.Class,
		Tokens:   int32(s.decoded),
		Preempts: int32(s.preempts),
		EnergyJ:  s.energyJ, CapSec: s.capSec, CapJ: s.capJ,
		TTFTSec: s.TTFTSeconds(),
		Reason:  reason,
		Retry:   int32(s.Req.Retry),
		Session: s.Req.Session, Turn: int32(s.Req.Turn),
	})
	r.trFree = append(r.trFree, s.tr)
	s.tr = nil
}

// String describes the replica's instantaneous state (for debugging).
func (r *Replica) String() string {
	return fmt.Sprintf("replica %d: %d running, %d waiting, KV %.0f%%",
		r.idx, len(r.running), r.waiting.Len(), r.KVFrac()*100)
}
