package serve

import (
	"math"
	"reflect"
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/sim"
	"polca/internal/workload"
)

func bloom() llm.Model { return llm.MustByName("BLOOM-176B") }

func newReplica(t testing.TB, eng *sim.Engine, cfg Config, spec gpu.Spec) *Replica {
	t.Helper()
	r, err := NewReplica(eng, cfg, gpu.NewDevice(spec), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	spec := gpu.A100SXM80GB()
	base := Config{Model: bloom(), DType: llm.FP16}
	if err := base.Validate(spec); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative batch size", func(c *Config) { c.MaxBatchSize = -1 }},
		{"budget below batch", func(c *Config) { c.MaxBatchSize = 32; c.MaxBatchTokens = 16 }},
		{"bad mem util", func(c *Config) { c.GPUMemUtil = 1.5 }},
		{"bad queue cap", func(c *Config) { c.QueueCap = -2 }},
		{"bad stride", func(c *Config) { c.DecodeStride = -1 }},
		{"unknown router", func(c *Config) { c.Router = "nope" }},
		{"model too big", func(c *Config) { c.TensorParallel = 1 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(spec); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
}

func TestChunkedPrefill(t *testing.T) {
	eng := sim.New(1)
	rep := newReplica(t, eng, Config{Model: bloom(), DType: llm.FP16}, gpu.A100SXM80GB())
	var doneAt sim.Time = -1
	rep.OnComplete = func(s *Seq, now sim.Time) { doneAt = now }
	// A 5000-token prompt against the default 2048-token budget prefills
	// in chunks of 2048+2048+904; the last chunk samples the first output
	// token, leaving 3 decode steps (folded into one strided iteration).
	rep.Enqueue(0, workload.Request{ID: 1, Input: 5000, Output: 4})
	eng.RunUntil(time.Hour)

	st := rep.Stats()
	if doneAt < 0 || st.Completed != 1 {
		t.Fatalf("request did not complete: %+v", st)
	}
	if st.PromptTokens != 5000 {
		t.Errorf("PromptTokens = %d, want 5000", st.PromptTokens)
	}
	if st.DecodeTokens != 3 {
		t.Errorf("DecodeTokens = %d, want 3 (first token rides the prefill pass)", st.DecodeTokens)
	}
	if st.Batches != 4 {
		t.Errorf("Batches = %d, want 4 (3 prefill chunks + 1 strided decode)", st.Batches)
	}
	if st.KVReservedTokens != st.KVFreedTokens {
		t.Errorf("KV ledger leaked: reserved %d, freed %d", st.KVReservedTokens, st.KVFreedTokens)
	}
	if !rep.Idle() {
		t.Error("replica not idle after drain")
	}
}

func TestZeroOutputRequestSamplesOneToken(t *testing.T) {
	eng := sim.New(1)
	rep := newReplica(t, eng, Config{Model: bloom(), DType: llm.FP16}, gpu.A100SXM80GB())
	var done *Seq
	// The *Seq is only valid during the callback (the replica recycles
	// retired sequences), so retain a value copy.
	rep.OnComplete = func(s *Seq, now sim.Time) { cp := *s; done = &cp }
	rep.Enqueue(0, workload.Request{ID: 1, Input: 10, Output: 0})
	eng.RunUntil(time.Hour)
	if done == nil {
		t.Fatal("request did not complete")
	}
	if done.Decoded() != 1 {
		t.Errorf("decoded = %d, want 1", done.Decoded())
	}
	if ttft := done.TTFTSeconds(); ttft <= 0 {
		t.Errorf("TTFT = %v, want > 0", ttft)
	}
	if st := rep.Stats(); st.DecodeTokens != 0 || st.Batches != 1 {
		t.Errorf("stats = %+v, want a single prefill-only batch", st)
	}
}

func TestQueueCapSheds(t *testing.T) {
	eng := sim.New(1)
	rep := newReplica(t, eng, Config{Model: bloom(), DType: llm.FP16, QueueCap: 2}, gpu.A100SXM80GB())
	for i := 0; i < 3; i++ {
		if !rep.Enqueue(0, workload.Request{ID: int64(i), Input: 100, Output: 10}) {
			t.Fatalf("enqueue %d rejected below cap", i)
		}
	}
	// First request went straight into the running batch; two more fill the
	// waiting queue; the fourth must shed.
	if rep.Enqueue(0, workload.Request{ID: 3, Input: 100, Output: 10}) {
		t.Fatal("enqueue above cap accepted")
	}
	if st := rep.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

func TestFailDropsEverythingAndRevives(t *testing.T) {
	eng := sim.New(1)
	rep := newReplica(t, eng, Config{Model: bloom(), DType: llm.FP16}, gpu.A100SXM80GB())
	drops := map[int64]string{}
	rep.OnDrop = func(s *Seq, now sim.Time, reason string) { drops[s.Req.ID] = reason }
	for i := 0; i < 3; i++ {
		rep.Enqueue(0, workload.Request{ID: int64(i), Input: 500, Output: 50})
	}
	eng.Step() // finish one iteration so state is mid-flight
	rep.Fail(eng.Now())

	if len(drops) != 3 {
		t.Fatalf("dropped %d sequences, want 3", len(drops))
	}
	for id, reason := range drops {
		if reason != "node-death" {
			t.Errorf("request %d dropped with reason %q", id, reason)
		}
	}
	if rep.kvToks != 0 {
		t.Errorf("KV still reserved after Fail: %d tokens", rep.kvToks)
	}
	if st := rep.Stats(); st.KVReservedTokens != st.KVFreedTokens {
		t.Errorf("KV ledger leaked across Fail: reserved %d, freed %d", st.KVReservedTokens, st.KVFreedTokens)
	}
	if !rep.Idle() {
		t.Fatal("replica not idle after Fail")
	}
	if got, want := rep.PowerAt(eng.Now()), rep.dev.Spec().IdleWatts; got != want {
		t.Errorf("idle power = %v, want %v", got, want)
	}

	// The replica revives cold on the next arrival.
	completed := 0
	rep.OnComplete = func(s *Seq, now sim.Time) { completed++ }
	if !rep.Enqueue(eng.Now(), workload.Request{ID: 9, Input: 100, Output: 5}) {
		t.Fatal("enqueue after Fail rejected")
	}
	eng.RunUntil(eng.Now() + time.Hour)
	if completed != 1 {
		t.Errorf("completed = %d after revival, want 1", completed)
	}
}

// TestCalibrationSingleRequest is the slot-vs-serve anchor: a lone request
// scheduled iteration-by-iteration must land within a few percent of the
// slot model's aggregate plan for the same work. The residual divergence is
// structural, not a bug: (1) serve samples the first output token from the
// prefill pass, so it pays output−1 decode passes of weight streaming,
// all-reduce, and launch overhead where the slot token phase pays output;
// (2) serve's decode attention walks the exact growing KV length while the
// slot phase aggregates all steps at the mean length — identical total
// FLOPs/bytes (arithmetic series), but the phase split between
// compute-bound and memory-bound time differs slightly.
func TestCalibrationSingleRequest(t *testing.T) {
	m := bloom()
	const input, output = 1200, 160

	p, err := plan.NewInference(plan.InferenceConfig{
		Model: m, DType: llm.FP16, BatchSize: 1,
		InputTokens: input, OutputTokens: output,
	})
	if err != nil {
		t.Fatal(err)
	}
	slotDev := gpu.NewDevice(gpu.A100SXM80GB())
	slotDev.SetMemUsedGB(p.MemUsedGB)
	var slotSec, slotJ float64
	for _, ph := range p.Phases() {
		exec := slotDev.Run(ph)
		slotSec += exec.Duration.Seconds()
		slotJ += exec.Energy()
	}

	eng := sim.New(1)
	rep := newReplica(t, eng, Config{
		Model: m, DType: llm.FP16,
		MaxBatchSize: 1, MaxBatchTokens: 2048, DecodeStride: 1,
	}, gpu.A100SXM80GB())
	var doneAt sim.Time = -1
	rep.OnComplete = func(s *Seq, now sim.Time) { doneAt = now }
	rep.Enqueue(0, workload.Request{ID: 1, Input: input, Output: output})
	eng.RunUntil(time.Hour)
	if doneAt < 0 {
		t.Fatal("request did not complete")
	}
	st := rep.Stats()
	if st.Batches != output {
		t.Errorf("Batches = %d, want %d (1 prefill + output−1 decode)", st.Batches, output)
	}

	serveSec, serveJ := doneAt.Seconds(), st.EnergyJ
	durErr := math.Abs(serveSec-slotSec) / slotSec
	energyErr := math.Abs(serveJ-slotJ) / slotJ
	t.Logf("duration: slot %.3fs serve %.3fs (%.2f%%); energy/GPU: slot %.0fJ serve %.0fJ (%.2f%%)",
		slotSec, serveSec, 100*durErr, slotJ, serveJ, 100*energyErr)
	if durErr > 0.02 {
		t.Errorf("duration diverges %.1f%% from the slot plan (> 2%%)", 100*durErr)
	}
	if energyErr > 0.02 {
		t.Errorf("energy diverges %.1f%% from the slot plan (> 2%%)", 100*energyErr)
	}
}

// TestDecodeStridePreservesTiming checks the multi-step aggregation is
// cost-exact: folding 8 decode iterations into one strided pass must give
// the same generation timeline (modulo per-iteration nanosecond rounding)
// and the same token/KV accounting as single stepping.
func TestDecodeStridePreservesTiming(t *testing.T) {
	run := func(stride int) (sim.Time, Stats) {
		eng := sim.New(1)
		rep := newReplica(t, eng, Config{Model: bloom(), DType: llm.FP16, DecodeStride: stride}, gpu.A100SXM80GB())
		var doneAt sim.Time = -1
		rep.OnComplete = func(s *Seq, now sim.Time) { doneAt = now }
		rep.Enqueue(0, workload.Request{ID: 1, Input: 64, Output: 33})
		eng.RunUntil(time.Hour)
		return doneAt, rep.Stats()
	}
	t1, s1 := run(1)
	t8, s8 := run(8)
	if s1.Batches != 33 || s8.Batches != 5 {
		t.Errorf("batches = %d/%d, want 33 single-step, 5 strided", s1.Batches, s8.Batches)
	}
	if s1.DecodeTokens != s8.DecodeTokens || s1.PromptTokens != s8.PromptTokens {
		t.Errorf("token counts differ across strides: %+v vs %+v", s1, s8)
	}
	if s1.KVReservedTokens != s8.KVReservedTokens {
		t.Errorf("KV reservations differ across strides: %d vs %d", s1.KVReservedTokens, s8.KVReservedTokens)
	}
	if diff := (t1 - t8).Abs(); diff > time.Microsecond {
		t.Errorf("completion differs by %v across strides, want < 1µs", diff)
	}
}

// pressureConfig squeezes BLOOM-176B onto a shrunken-HBM A100 so a handful
// of mid-size requests oversubscribe the KV cache and force preemptions.
func pressureConfig() (Config, gpu.Spec) {
	spec := gpu.A100SXM80GB()
	spec.MemoryGB = 51 // ~1.9 GB of KV per GPU after weights: ~3786 tokens
	return Config{Model: bloom(), DType: llm.FP16, DecodeStride: 4}, spec
}

// TestKVPressureInvariants drives the scheduler into sustained KV pressure
// and samples the cache-accounting invariants in sim time: occupancy never
// exceeds capacity, the replica ledger always equals the per-sequence sum,
// waiting sequences hold nothing, and per-request KV grows monotonically
// except across a preemption reset. At drain, reserved == freed exactly.
func TestKVPressureInvariants(t *testing.T) {
	cfg, spec := pressureConfig()
	eng := sim.New(1)
	rep := newReplica(t, eng, cfg, spec)

	type snap struct{ kv, preempts int }
	last := map[int64]snap{}
	samples := 0
	eng.Every(10*time.Millisecond, func(now sim.Time) {
		samples++
		if rep.kvToks < 0 || rep.kvToks > rep.kvCapToks {
			t.Fatalf("t=%v: reserved KV %d outside [0, %d]", now, rep.kvToks, rep.kvCapToks)
		}
		sum := 0
		seen := map[int64]snap{}
		rep.Sequences(func(s *Seq) {
			sum += s.KVReserved()
			if s.KVReserved() < s.KVTokens() {
				t.Fatalf("t=%v: req %d reserved %d < materialized %d", now, s.Req.ID, s.KVReserved(), s.KVTokens())
			}
			cur := snap{kv: s.KVTokens(), preempts: s.Preempts()}
			if prev, ok := last[s.Req.ID]; ok && cur.preempts == prev.preempts && cur.kv < prev.kv {
				t.Fatalf("t=%v: req %d KV shrank %d → %d without a preemption", now, s.Req.ID, prev.kv, cur.kv)
			}
			seen[s.Req.ID] = cur
		})
		for i := 0; i < rep.waiting.Len(); i++ {
			s := rep.waiting.At(i)
			if s.KVReserved() != 0 {
				t.Fatalf("t=%v: waiting req %d holds %d KV tokens", now, s.Req.ID, s.KVReserved())
			}
		}
		if sum != rep.kvToks {
			t.Fatalf("t=%v: per-seq KV sum %d != replica ledger %d", now, sum, rep.kvToks)
		}
		last = seen
	})

	const n = 12
	completed := 0
	rep.OnComplete = func(s *Seq, now sim.Time) { completed++ }
	for i := 0; i < n; i++ {
		if !rep.Enqueue(0, workload.Request{ID: int64(i), Input: 600, Output: 300}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	eng.RunUntil(2 * time.Hour)

	st := rep.Stats()
	if completed != n || st.Completed != n {
		t.Fatalf("completed %d/%d under pressure: %+v", completed, n, st)
	}
	if st.Preemptions == 0 {
		t.Fatal("no preemptions — the scenario is not exercising KV pressure")
	}
	if st.KVReservedTokens != st.KVFreedTokens {
		t.Errorf("KV ledger leaked: reserved %d, freed %d", st.KVReservedTokens, st.KVFreedTokens)
	}
	if rep.kvToks != 0 || !rep.Idle() {
		t.Errorf("replica not drained: %d KV tokens, idle=%v", rep.kvToks, rep.Idle())
	}
	if st.KVHighWaterFrac < 0.8 {
		t.Errorf("KV high water %.2f, expected > 0.8 under pressure", st.KVHighWaterFrac)
	}
	if st.KVHighWaterEvents == 0 {
		t.Error("no high-water events recorded")
	}
	if samples == 0 {
		t.Fatal("invariant sampler never ran")
	}
	t.Logf("%d preemptions, high water %.0f%%, %d samples", st.Preemptions, 100*st.KVHighWaterFrac, samples)
}

// TestReplicaDeterminism reruns the preemption-heavy scenario and requires
// identical scheduler counters and per-request completion times — the
// scheduler draws no randomness, so any drift is a bug.
func TestReplicaDeterminism(t *testing.T) {
	run := func() (Stats, map[int64]sim.Time) {
		cfg, spec := pressureConfig()
		eng := sim.New(7)
		rep := newReplica(t, eng, cfg, spec)
		doneAt := map[int64]sim.Time{}
		rep.OnComplete = func(s *Seq, now sim.Time) { doneAt[s.Req.ID] = now }
		for i := 0; i < 12; i++ {
			rep.Enqueue(0, workload.Request{ID: int64(i), Input: 600, Output: 300})
		}
		eng.RunUntil(2 * time.Hour)
		return rep.Stats(), doneAt
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("completion times differ across identical runs")
	}
}

// TestNilObserverEmissionsAllocFree pins the disabled-observability fast
// path: with no observer on the engine, the scheduler's counter, gauge, and
// tracer touchpoints must not allocate (sweeps run thousands of replicas
// this way).
func TestNilObserverEmissionsAllocFree(t *testing.T) {
	eng := sim.New(1)
	rep := newReplica(t, eng, Config{Model: bloom(), DType: llm.FP16}, gpu.A100SXM80GB())
	if rep.tracer != nil {
		t.Fatal("engine without observer produced a tracer")
	}
	allocs := testing.AllocsPerRun(200, func() {
		rep.batchCtr.Inc()
		rep.preemptCtr.Inc()
		rep.kvGauge.Set(0.5)
	})
	if allocs != 0 {
		t.Errorf("nil-observer emissions allocate %.1f objects/op, want 0", allocs)
	}
}
