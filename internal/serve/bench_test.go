package serve

import (
	"testing"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/sim"
	"polca/internal/workload"
)

// BenchmarkScheduler measures the continuous-batching iteration loop
// end-to-end: one op enqueues a small request and drives the engine until
// the replica drains (a prefill pass plus one strided decode pass).
func BenchmarkScheduler(b *testing.B) {
	eng := sim.New(1)
	cfg := Config{Model: llm.MustByName("Llama2-13B"), DType: llm.FP16}
	rep, err := NewReplica(eng, cfg, gpu.NewDevice(gpu.A100SXM80GB()), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.Enqueue(eng.Now(), workload.Request{ID: int64(i), Arrival: eng.Now(), Input: 64, Output: 8})
		for !rep.Idle() {
			if !eng.Step() {
				b.Fatal("engine drained with work pending")
			}
		}
	}
	if rep.Stats().Completed != b.N {
		b.Fatalf("completed %d, want %d", rep.Stats().Completed, b.N)
	}
}

// BenchmarkServeTracerDisabled measures the scheduler's observability
// touchpoints with no observer attached — the sweep configuration, where
// thousands of replica runs must not pay for tracing. The B/op column is
// the contract: it must stay 0.
func BenchmarkServeTracerDisabled(b *testing.B) {
	eng := sim.New(1)
	cfg := Config{Model: llm.MustByName("Llama2-13B"), DType: llm.FP16}
	rep, err := NewReplica(eng, cfg, gpu.NewDevice(gpu.A100SXM80GB()), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if rep.tracer != nil {
		b.Fatal("engine without observer produced a tracer")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.batchCtr.Inc()
		rep.preemptCtr.Inc()
		rep.kvGauge.Set(0.5)
	}
}
