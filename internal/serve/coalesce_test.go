package serve

import (
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/obs"
	"polca/internal/sim"
	"polca/internal/workload"
)

// coalesceScenario scripts one replica workload plus mid-flight
// perturbations; the equivalence test replays it with coalescing on and off
// and requires the two runs to be indistinguishable to every observer.
type coalesceScenario struct {
	name    string
	cfg     Config
	spec    gpu.Spec
	horizon time.Duration
	// script installs arrivals and perturbations on the engine before the
	// run starts. Arrivals enqueue through rep; perturbations hit the
	// device and rep directly (Replan, Fail, mid-run probes).
	script func(eng *sim.Engine, rep *Replica, dev *gpu.Device)
}

// retired is a value snapshot of a released sequence, captured at its
// lifecycle callback — *Seq itself is recycled after the callback returns.
type retired struct {
	id      int64
	at      sim.Time
	reason  string
	decoded int
	pre     int
	energyJ float64
	capSec  float64
	capJ    float64
	ttft    float64
}

// coalesceTrace is everything externally observable about one run.
type coalesceTrace struct {
	retired []retired
	first   []retired // OnFirstToken observations
	power   []float64 // PowerAt sampled on an off-phase cadence
	kvFrac  []float64 // KVFrac sampled alongside power
	stats   Stats
	seqs    []retired // sequences still held at the horizon (none if drained)
}

// runCoalesceScenario executes the scenario and records its full trace.
func runCoalesceScenario(t *testing.T, sc coalesceScenario, noCoalesce bool) coalesceTrace {
	t.Helper()
	cfg := sc.cfg
	cfg.NoCoalesce = noCoalesce
	eng := sim.New(7)
	dev := gpu.NewDevice(sc.spec)
	rep, err := NewReplica(eng, cfg, dev, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var tr coalesceTrace
	snap := func(s *Seq, at sim.Time, reason string) retired {
		return retired{
			id: s.Req.ID, at: at, reason: reason,
			decoded: s.Decoded(), pre: s.Preempts(),
			energyJ: s.EnergyJ(), capSec: s.CapSlowdownSec(), capJ: s.CapDeltaJ(),
			ttft: s.TTFTSeconds(),
		}
	}
	rep.OnComplete = func(s *Seq, now sim.Time) { tr.retired = append(tr.retired, snap(s, now, "")) }
	rep.OnDrop = func(s *Seq, now sim.Time, reason string) { tr.retired = append(tr.retired, snap(s, now, reason)) }
	rep.OnFirstToken = func(s *Seq, now sim.Time) { tr.first = append(tr.first, snap(s, now, "")) }
	// 7 ms lands mid-iteration and mid-span almost always — the power and
	// KV reads must not disturb either path, and must agree exactly.
	eng.Every(7*time.Millisecond, func(now sim.Time) {
		tr.power = append(tr.power, rep.PowerAt(now))
		tr.kvFrac = append(tr.kvFrac, rep.KVFrac())
	})
	if sc.script != nil {
		sc.script(eng, rep, dev)
	}
	eng.RunUntil(sc.horizon)
	tr.stats = rep.Stats()
	rep.Sequences(func(s *Seq) { tr.seqs = append(tr.seqs, snap(s, eng.Now(), "held")) })
	return tr
}

// TestCoalescingMatchesPerStride is the tentpole's equivalence property:
// decode-span coalescing must reproduce the per-stride scheduler event for
// event — identical completion/drop instants and attributions, identical
// power and KV readings at arbitrary sample instants, identical counters —
// across cap replans, KV-pressure preemption, node death mid-decode, and
// queue-cap shedding.
func TestCoalescingMatchesPerStride(t *testing.T) {
	base := func() (Config, gpu.Spec) {
		return Config{Model: bloom(), DType: llm.FP16}, gpu.A100SXM80GB()
	}
	enqueueN := func(rep *Replica, n, input, output int) {
		for i := 0; i < n; i++ {
			rep.Enqueue(0, workload.Request{ID: int64(i), Input: input, Output: output, Class: "chat"})
		}
	}

	scenarios := []coalesceScenario{
		{
			name:    "steady-decode",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				enqueueN(rep, 8, 400, 600)
			},
		},
		{
			name:    "staggered-arrivals-break-spans",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				// Arrivals at prime-ish offsets land inside spans and force
				// breaks at uncorrelated instants.
				for i := 0; i < 16; i++ {
					i := i
					at := time.Duration(i) * 1731 * time.Millisecond
					eng.At(at, func(now sim.Time) {
						rep.Enqueue(now, workload.Request{ID: int64(i), Input: 300 + 50*i, Output: 200 + 30*i, Class: "chat"})
					})
				}
			},
		},
		{
			name:    "cap-replans-mid-span",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				enqueueN(rep, 8, 400, 600)
				dev.LockClock(1100)
				eng.At(5*time.Second, func(now sim.Time) { dev.LockClock(900); rep.Replan(now) })
				eng.At(9*time.Second, func(now sim.Time) { dev.SetBrake(true); rep.Replan(now) })
				eng.At(14*time.Second, func(now sim.Time) { dev.SetBrake(false); rep.Replan(now) })
				eng.At(21*time.Second, func(now sim.Time) { dev.SetPowerCap(300); rep.Replan(now) })
				eng.At(33*time.Second, func(now sim.Time) { dev.LockClock(0); rep.Replan(now) })
			},
		},
		{
			name:    "kv-pressure-preempts",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				enqueueN(rep, 12, 600, 300)
			},
		},
		{
			name:    "node-death-mid-decode",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				enqueueN(rep, 8, 400, 600)
				eng.At(31*time.Second, func(now sim.Time) { rep.Fail(now) })
				eng.At(40*time.Second, func(now sim.Time) {
					for i := 0; i < 4; i++ {
						rep.Enqueue(now, workload.Request{ID: int64(100 + i), Input: 200, Output: 150, Class: "chat"})
					}
				})
			},
		},
		{
			name:    "queue-cap-sheds",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				// QueueCap (below) is small; the burst must shed identically.
				for i := 0; i < 30; i++ {
					i := i
					eng.At(time.Duration(i)*200*time.Millisecond, func(now sim.Time) {
						rep.Enqueue(now, workload.Request{ID: int64(i), Input: 500, Output: 400, Class: "chat"})
					})
				}
			},
		},
		{
			name:    "mid-run-introspection",
			horizon: 2 * time.Hour,
			script: func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
				enqueueN(rep, 8, 400, 600)
				// Stats and Sequences settle in-flight spans; doing so at odd
				// instants must not change the trajectory.
				eng.Every(1303*time.Millisecond, func(now sim.Time) {
					_ = rep.Stats()
					rep.Sequences(func(*Seq) {})
				})
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg, spec := base()
			switch sc.name {
			case "kv-pressure-preempts":
				cfg, spec = pressureConfig()
				cfg.DecodeStride = 8
			case "queue-cap-sheds":
				cfg.QueueCap = 4
			}
			sc.cfg, sc.spec = cfg, spec

			a := runCoalesceScenario(t, sc, false) // coalescing on
			b := runCoalesceScenario(t, sc, true)  // per-stride

			if a.stats != b.stats {
				t.Errorf("stats differ:\ncoalesced: %+v\nper-stride: %+v", a.stats, b.stats)
			}
			diffRetired := func(kind string, xs, ys []retired) {
				if len(xs) != len(ys) {
					t.Fatalf("%s count: coalesced %d, per-stride %d", kind, len(xs), len(ys))
				}
				for i := range xs {
					if xs[i] != ys[i] {
						t.Errorf("%s[%d] differs:\ncoalesced: %+v\nper-stride: %+v", kind, i, xs[i], ys[i])
					}
				}
			}
			diffRetired("retired", a.retired, b.retired)
			diffRetired("first-token", a.first, b.first)
			diffRetired("held", a.seqs, b.seqs)
			if len(a.power) != len(b.power) {
				t.Fatalf("power samples: %d vs %d", len(a.power), len(b.power))
			}
			for i := range a.power {
				if a.power[i] != b.power[i] {
					t.Fatalf("power sample %d differs: %v vs %v", i, a.power[i], b.power[i])
				}
				if a.kvFrac[i] != b.kvFrac[i] {
					t.Fatalf("KV sample %d differs: %v vs %v", i, a.kvFrac[i], b.kvFrac[i])
				}
			}
		})
	}
}

// TestCoalesceGateRespectsObservers pins when coalescing may engage: never
// under NoCoalesce, and never while an iteration-granular observer (tracer
// or span sink) is attached.
func TestCoalesceGateRespectsObservers(t *testing.T) {
	cfg, spec := Config{Model: bloom(), DType: llm.FP16}, gpu.A100SXM80GB()
	mk := func(eng *sim.Engine, nc bool) *Replica {
		c := cfg
		c.NoCoalesce = nc
		rep, err := NewReplica(eng, c, gpu.NewDevice(spec), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := mk(sim.New(1), false); !rep.coalesce {
		t.Error("bare replica should coalesce")
	}
	if rep := mk(sim.New(1), true); rep.coalesce {
		t.Error("NoCoalesce replica must not coalesce")
	}
	for _, tc := range []struct {
		name string
		obs  *obs.Observer
	}{
		{"tracer", &obs.Observer{Tracer: obs.NewTracer()}},
		{"spans", &obs.Observer{Spans: obs.NewSpanTracer()}},
	} {
		eng := sim.New(1)
		eng.SetObserver(tc.obs)
		if rep := mk(eng, false); rep.coalesce {
			t.Errorf("replica with %s attached must not coalesce", tc.name)
		}
	}
}
