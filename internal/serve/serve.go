// Package serve is the request-level inference serving subsystem: a
// vLLM-style continuous-batching scheduler that runs on the sim engine and
// drives the llm/gpu analytical models at iteration granularity.
//
// The slot model in internal/cluster dispatches whole requests into
// per-server slots with precomputed mean service times — good enough for
// the paper's row-level power envelopes, but blind to the mechanism
// production serving stacks actually run: every iteration interleaves
// prompt-chunk prefill with one decode step per running sequence, so the
// power signal POLCA caps against is a mix of the compute-bound prompt
// spike and the memory-bound decode plateau, shifting with batch
// composition. This package models that mechanism:
//
//   - Replica is one tensor-parallel serving instance (one server in the
//     row). Its iteration loop admits waiting prompts up to a token budget
//     (chunked prefill), decodes the running batch one step per iteration,
//     tracks per-request KV-cache bytes through the llm attention
//     arithmetic, and preempts-with-recompute when HBM fills.
//   - Each iteration is synthesized into one gpu.Phase from its exact
//     prompt/decode token mix and run through gpu.Device.Run, so mixed
//     batches land between the pure prompt spike and the pure decode
//     plateau, and OOB frequency caps, power caps, and the brake throttle
//     iterations exactly as they throttle slot-model phases.
//   - Router spreads arrivals across replicas under pluggable policies
//     (round-robin, least-queue, least-KV, power-aware).
//
// Everything is deterministic: the scheduler draws no randomness, ties
// break on lowest replica index, and all timing flows through the engine,
// so reruns with the same seed are byte-identical.
package serve

import (
	"fmt"

	"polca/internal/gpu"
	"polca/internal/llm"
)

// Config shapes one serving replica. The zero value is not valid; use
// DefaultConfig or fill Model/DType (defaults apply via NewReplica).
type Config struct {
	Model llm.Model
	DType llm.DType

	// TensorParallel is the GPU count serving the model (0 = the model's
	// catalog default). The replica models one tensor-parallel group; every
	// GPU in it executes identical phases.
	TensorParallel int

	// MaxBatchSize caps concurrent running sequences (default 32).
	MaxBatchSize int

	// MaxBatchTokens is the per-iteration token budget shared by prompt
	// chunks and decode steps (default 2048). Prompts longer than the
	// budget prefill across several iterations (chunked prefill).
	MaxBatchTokens int

	// GPUMemUtil is the fraction of HBM the scheduler may use for weights
	// plus KV cache (default 0.90, vLLM's gpu_memory_utilization).
	GPUMemUtil float64

	// QueueCap bounds the per-replica waiting queue; arrivals beyond it are
	// shed (default 64).
	QueueCap int

	// DecodeStride aggregates up to this many consecutive decode-only
	// iterations into one simulated step when no prefill work is pending
	// (default 8, vLLM's multi-step scheduling). The per-token cost stays
	// exact — DecodeSpanFLOPs/Bytes keep the growing-KV arithmetic — but
	// the event count drops by the stride. Set 1 for strictly one step per
	// iteration (the calibration tests do).
	DecodeStride int

	// NVLinkGBps is the tensor-parallel interconnect bandwidth (0 = the
	// A100 default, matching internal/plan).
	NVLinkGBps float64

	// NoCoalesce disables decode-span coalescing, forcing one engine event
	// per iteration even on stable pure-decode stretches. Coalescing never
	// changes results — the equivalence property tests pin that — so the
	// knob exists for those tests and for debugging, not for tuning.
	// Coalescing also turns itself off while an event tracer or span tracer
	// is attached, since both observe individual iterations.
	NoCoalesce bool

	// Router names the routing policy used when the replica pool routes
	// arrivals (default "least-queue"): one of RouterNames.
	Router string
}

// DefaultConfig returns the standard serving configuration for a model.
func DefaultConfig(m llm.Model, dt llm.DType) Config {
	return Config{Model: m, DType: dt}.WithDefaults()
}

// WithDefaults fills zero fields with their documented defaults.
func (c Config) WithDefaults() Config {
	if c.TensorParallel == 0 {
		c.TensorParallel = c.Model.InferenceGPUs
	}
	if c.MaxBatchSize == 0 {
		c.MaxBatchSize = 32
	}
	if c.MaxBatchTokens == 0 {
		c.MaxBatchTokens = 2048
	}
	if c.GPUMemUtil == 0 {
		c.GPUMemUtil = 0.90
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.DecodeStride == 0 {
		c.DecodeStride = 8
	}
	if c.Router == "" {
		c.Router = "least-queue"
	}
	return c
}

// Validate checks the configuration against the GPU it will run on: the
// model must fit in HBM with room for at least one full iteration budget of
// KV cache, otherwise the scheduler would thrash or deadlock.
func (c Config) Validate(spec gpu.Spec) error {
	c = c.WithDefaults()
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.MaxBatchSize < 1:
		return fmt.Errorf("serve: bad max batch size %d", c.MaxBatchSize)
	case c.MaxBatchTokens < c.MaxBatchSize:
		return fmt.Errorf("serve: token budget %d below batch size %d", c.MaxBatchTokens, c.MaxBatchSize)
	case c.GPUMemUtil <= 0 || c.GPUMemUtil > 1:
		return fmt.Errorf("serve: bad GPU memory utilization %v", c.GPUMemUtil)
	case c.QueueCap < 1:
		return fmt.Errorf("serve: bad queue cap %d", c.QueueCap)
	case c.DecodeStride < 1:
		return fmt.Errorf("serve: bad decode stride %d", c.DecodeStride)
	}
	if _, err := NewRouter(c.Router); err != nil {
		return err
	}
	kvCap := c.kvCapacityBytes(spec)
	if minKV := c.kvBytesPerToken() * float64(c.MaxBatchTokens); kvCap < minKV {
		return fmt.Errorf("serve: %s at %s on %.0f GB leaves %.1f GB for KV, below one iteration budget (%.1f GB)",
			c.Model.Name, c.DType, spec.MemoryGB, kvCap/1e9, minKV/1e9)
	}
	return nil
}

// kvBytesPerToken is the per-GPU KV-cache growth per token.
func (c Config) kvBytesPerToken() float64 {
	return c.Model.KVBytesPerToken(c.DType) / float64(c.TensorParallel)
}

// kvCapacityBytes is the per-GPU HBM available for KV cache after weights.
func (c Config) kvCapacityBytes(spec gpu.Spec) float64 {
	return spec.MemoryGB*1e9*c.GPUMemUtil - c.Model.WeightBytes(c.DType)/float64(c.TensorParallel)
}
