package serve

// seqDeque is a ring-buffer double-ended queue of sequences. The waiting
// queue needs O(1) at both ends: arrivals push back, admission pops front,
// and preemption-for-recompute pushes front — the last two were an
// append-shift and a copy-shift on a plain slice, which leaked capacity and
// dominated the scheduler's steady-state allocations.
type seqDeque struct {
	buf  []*Seq
	head int
	n    int
}

// Len returns the number of queued sequences.
func (d *seqDeque) Len() int { return d.n }

// At returns the i-th sequence from the front without removing it.
func (d *seqDeque) At(i int) *Seq {
	return d.buf[(d.head+i)%len(d.buf)]
}

// PushBack appends a sequence at the tail.
func (d *seqDeque) PushBack(s *Seq) {
	d.grow()
	d.buf[(d.head+d.n)%len(d.buf)] = s
	d.n++
}

// PushFront prepends a sequence at the head (preemption requeues here so
// the evicted sequence is readmitted first).
func (d *seqDeque) PushFront(s *Seq) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = s
	d.n++
}

// PopFront removes and returns the head sequence.
func (d *seqDeque) PopFront() *Seq {
	s := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return s
}

// Clear empties the deque, nilling entries so retired sequences are not
// pinned by the buffer.
func (d *seqDeque) Clear() {
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)%len(d.buf)] = nil
	}
	d.head, d.n = 0, 0
}

// grow doubles the buffer when full (minimum 8), unwrapping the ring.
func (d *seqDeque) grow() {
	if d.n < len(d.buf) {
		return
	}
	next := make([]*Seq, max(8, 2*len(d.buf)))
	for i := 0; i < d.n; i++ {
		next[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf, d.head = next, 0
}
