package serve

import (
	"math"
	"testing"
	"time"

	"polca/internal/gpu"
	"polca/internal/obs"
	"polca/internal/sim"
	"polca/internal/workload"
)

// energyRun drives the KV-pressure scenario (preemptions guaranteed) on a
// replica whose device is manipulated by shape, collecting every sequence
// the replica ever released. midCheck, if non-nil, runs at the scenario's
// half-way point with the replica still mid-flight.
func energyRun(t *testing.T, shape func(eng *sim.Engine, rep *Replica, dev *gpu.Device),
	midCheck func(rep *Replica, released []*Seq)) (*Replica, []*Seq) {
	t.Helper()
	cfg, spec := pressureConfig()
	eng := sim.New(3)
	eng.SetObserver(&obs.Observer{Spans: obs.NewSpanTracer()})
	dev := gpu.NewDevice(spec)
	rep, err := NewReplica(eng, cfg, dev, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var done []*Seq
	// Retired *Seq values are recycled after the callback returns; keep
	// value copies.
	keep := func(s *Seq) { cp := *s; done = append(done, &cp) }
	rep.OnComplete = func(s *Seq, now sim.Time) { keep(s) }
	rep.OnDrop = func(s *Seq, now sim.Time, reason string) { keep(s) }
	for i := 0; i < 12; i++ {
		if !rep.Enqueue(0, workload.Request{ID: int64(i), Input: 600, Output: 300, Class: "chat"}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if shape != nil {
		shape(eng, rep, dev)
	}
	if midCheck != nil {
		eng.RunUntil(30 * time.Second)
		midCheck(rep, done)
	}
	eng.RunUntil(2 * time.Hour)
	if !rep.Idle() {
		t.Fatal("replica did not drain")
	}
	return rep, done
}

// relDiff returns |a-b| / max(|a|,|b|).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// attributedSum sums the group-scale energy attributed to every sequence
// the replica released plus every sequence it still holds.
func attributedSum(rep *Replica, released []*Seq) (j, capSec, capJ float64) {
	for _, s := range released {
		j += s.EnergyJ()
		capSec += s.CapSlowdownSec()
		capJ += s.CapDeltaJ()
	}
	rep.Sequences(func(s *Seq) {
		j += s.EnergyJ()
		capSec += s.CapSlowdownSec()
		capJ += s.CapDeltaJ()
	})
	return j, capSec, capJ
}

// TestEnergyConservationNoCap checks the core attribution invariant on an
// uncapped run with forced preemptions: the per-request energies sum to the
// replica's integrated energy (tensor-parallel group scale) exactly at
// drain, and within 0.1% at an arbitrary mid-run instant; every cap
// counterfactual delta is exactly zero.
func TestEnergyConservationNoCap(t *testing.T) {
	rep, done := energyRun(t, nil, func(rep *Replica, released []*Seq) {
		attr, _, _ := attributedSum(rep, released)
		settled := rep.scale * rep.stats.EnergyJ
		if settled <= 0 {
			t.Fatal("no energy settled by the mid-run checkpoint")
		}
		if rd := relDiff(attr, settled); rd > 0.001 {
			t.Errorf("mid-run: attributed %.1f J vs settled %.1f J (rel %.2e > 0.1%%)", attr, settled, rd)
		}
	})

	st := rep.Stats()
	if st.Preemptions == 0 {
		t.Fatal("scenario produced no preemptions — not the stress case")
	}
	attr, capSec, capJ := attributedSum(rep, done)
	want := rep.scale * st.EnergyJ
	if want <= 0 {
		t.Fatalf("replica integrated no energy: %+v", st)
	}
	if rd := relDiff(attr, want); rd > 1e-9 {
		t.Errorf("at drain: attributed %.3f J vs integrated %.3f J (rel %.2e)", attr, want, rd)
	}
	// An uncapped, never-replanned run computes the counterfactual from the
	// identical execution, so the deltas are exactly zero — not just small.
	if capSec != 0 || capJ != 0 || st.CapExtraSec != 0 || st.CapDeltaJ != 0 {
		t.Errorf("uncapped run has nonzero cap deltas: seq (%g s, %g J), stats (%g s, %g J)",
			capSec, capJ, st.CapExtraSec, st.CapDeltaJ)
	}
}

// TestEnergyConservationCapped repeats the invariant with the POLCA-style
// knobs exercised: the device starts clock-locked, the lock retargets
// mid-run with a Replan (mid-iteration energy banking), and the brake
// engages for a window. Attribution must still sum exactly, and the cap
// counterfactual must show a real slowdown.
func TestEnergyConservationCapped(t *testing.T) {
	rep, done := energyRun(t, func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
		dev.LockClock(1100)
		eng.At(20*time.Second, func(now sim.Time) {
			dev.LockClock(900)
			rep.Replan(now)
		})
		eng.At(40*time.Second, func(now sim.Time) {
			dev.SetBrake(true)
			rep.Replan(now)
		})
		eng.At(60*time.Second, func(now sim.Time) {
			dev.SetBrake(false)
			dev.LockClock(1100)
			rep.Replan(now)
		})
	}, nil)

	st := rep.Stats()
	if st.Preemptions == 0 {
		t.Fatal("scenario produced no preemptions — not the stress case")
	}
	attr, capSec, capJ := attributedSum(rep, done)
	want := rep.scale * st.EnergyJ
	if rd := relDiff(attr, want); rd > 1e-9 {
		t.Errorf("at drain: attributed %.3f J vs integrated %.3f J (rel %.2e)", attr, want, rd)
	}
	if st.CapExtraSec <= 0 {
		t.Errorf("clock-locked run shows no extra seconds vs uncapped: %g", st.CapExtraSec)
	}
	if rd := relDiff(capSec, st.CapExtraSec); rd > 1e-9 {
		t.Errorf("cap seconds: per-seq sum %g vs stats %g", capSec, st.CapExtraSec)
	}
	if rd := relDiff(capJ, rep.scale*st.CapDeltaJ); rd > 1e-9 {
		t.Errorf("cap joules: per-seq sum %g vs stats %g", capJ, rep.scale*st.CapDeltaJ)
	}
}

// TestEnergyConservationAcrossFail kills the replica mid-iteration: the
// cancelled iteration's consumed energy must be settled and attributed, so
// the invariant holds even though every request died.
func TestEnergyConservationAcrossFail(t *testing.T) {
	cfg, spec := pressureConfig()
	eng := sim.New(3)
	dev := gpu.NewDevice(spec)
	rep, err := NewReplica(eng, cfg, dev, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var done []*Seq
	keep := func(s *Seq) { cp := *s; done = append(done, &cp) }
	rep.OnComplete = func(s *Seq, now sim.Time) { keep(s) }
	rep.OnDrop = func(s *Seq, now sim.Time, reason string) { keep(s) }
	for i := 0; i < 12; i++ {
		rep.Enqueue(0, workload.Request{ID: int64(i), Input: 600, Output: 300})
	}
	eng.RunUntil(20 * time.Second)
	if rep.Idle() {
		t.Fatal("replica drained before the failure point")
	}
	rep.Fail(eng.Now())

	st := rep.Stats()
	if st.EnergyJ <= 0 {
		t.Fatal("no energy settled before the failure")
	}
	attr, _, _ := attributedSum(rep, done)
	if rd := relDiff(attr, rep.scale*st.EnergyJ); rd > 1e-9 {
		t.Errorf("after Fail: attributed %.3f J vs integrated %.3f J (rel %.2e)",
			attr, rep.scale*st.EnergyJ, rd)
	}
}

// TestSpanTreeStructure validates the span trees the capped pressure run
// emits: one root per request, children pointing at the root, preempt
// markers paired with recompute prefills, and per-request child energies
// summing to the root's attribution (which in turn conserves).
func TestSpanTreeStructure(t *testing.T) {
	rep, done := energyRun(t, func(eng *sim.Engine, rep *Replica, dev *gpu.Device) {
		dev.LockClock(1000)
	}, nil)
	spans := rep.spans.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}

	byReq := map[int64][]obs.Span{}
	for _, sp := range spans {
		byReq[sp.Req] = append(byReq[sp.Req], sp)
	}
	if len(byReq) != 12 {
		t.Fatalf("spans cover %d requests, want 12", len(byReq))
	}
	var rootJ float64
	preempts := 0
	for req, tree := range byReq {
		var root *obs.Span
		var childJ, childCapS float64
		ids := map[int32]bool{}
		for i := range tree {
			sp := tree[i]
			if ids[sp.ID] {
				t.Fatalf("req %d: duplicate span ID %d", req, sp.ID)
			}
			ids[sp.ID] = true
			if sp.Kind == obs.SpanRequest {
				if root != nil {
					t.Fatalf("req %d: two root spans", req)
				}
				root = &tree[i]
				continue
			}
			if sp.Parent != 1 {
				t.Errorf("req %d: child span %d has parent %d, want 1", req, sp.ID, sp.Parent)
			}
			if sp.End < sp.Start {
				t.Errorf("req %d: span %d ends before it starts", req, sp.ID)
			}
			childJ += sp.EnergyJ
			childCapS += sp.CapSec
			switch sp.Kind {
			case obs.SpanPreempt:
				preempts++
				if sp.Start != sp.End {
					t.Errorf("req %d: preempt span has nonzero duration", req)
				}
			case obs.SpanPrefill, obs.SpanDecode:
				if sp.Tokens <= 0 {
					t.Errorf("req %d: %s span carries no tokens", req, sp.Kind)
				}
			}
		}
		if root == nil {
			t.Fatalf("req %d: no root span", req)
		}
		if root.ID != 1 || root.Parent != 0 {
			t.Errorf("req %d: root is (id %d, parent %d), want (1, 0)", req, root.ID, root.Parent)
		}
		if root.TTFTSec <= 0 {
			t.Errorf("req %d: root TTFT %g, want > 0", req, root.TTFTSec)
		}
		if rd := relDiff(childJ, root.EnergyJ); rd > 1e-9 {
			t.Errorf("req %d: child energies %.3f J vs root %.3f J", req, childJ, root.EnergyJ)
		}
		if rd := relDiff(childCapS, root.CapSec); rd > 1e-9 {
			t.Errorf("req %d: child cap seconds %g vs root %g", req, childCapS, root.CapSec)
		}
		if int32(root.Preempts) > 0 {
			recompute := false
			for _, sp := range tree {
				if sp.Kind == obs.SpanPrefill && sp.Recompute {
					recompute = true
				}
			}
			if !recompute {
				t.Errorf("req %d: %d preempts but no recompute prefill span", req, root.Preempts)
			}
		}
		rootJ += root.EnergyJ
	}
	st := rep.Stats()
	if preempts != st.Preemptions {
		t.Errorf("preempt spans %d != Stats.Preemptions %d", preempts, st.Preemptions)
	}
	if rd := relDiff(rootJ, rep.scale*st.EnergyJ); rd > 1e-9 {
		t.Errorf("root span energies %.3f J vs integrated %.3f J (rel %.2e)",
			rootJ, rep.scale*st.EnergyJ, rd)
	}
	// The released sequences and the roots must agree request by request.
	for _, s := range done {
		for _, sp := range byReq[s.Req.ID] {
			if sp.Kind == obs.SpanRequest && sp.EnergyJ != s.EnergyJ() {
				t.Errorf("req %d: root span %.3f J != Seq %.3f J", s.Req.ID, sp.EnergyJ, s.EnergyJ())
			}
		}
	}
}

// TestSpansOffAttributionStillOn pins the gating contract: with no span
// tracer the replica emits nothing, but energy attribution (which the serve
// report and figserve need) still runs and conserves.
func TestSpansOffAttributionStillOn(t *testing.T) {
	cfg, spec := pressureConfig()
	eng := sim.New(3)
	rep, err := NewReplica(eng, cfg, gpu.NewDevice(spec), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.spans != nil {
		t.Fatal("replica without observer has a span tracer")
	}
	var done []*Seq
	rep.OnComplete = func(s *Seq, now sim.Time) { cp := *s; done = append(done, &cp) }
	for i := 0; i < 12; i++ {
		rep.Enqueue(0, workload.Request{ID: int64(i), Input: 600, Output: 300})
	}
	eng.RunUntil(2 * time.Hour)
	attr, _, _ := attributedSum(rep, done)
	if rd := relDiff(attr, rep.scale*rep.stats.EnergyJ); rd > 1e-9 {
		t.Errorf("attribution drifted with spans off: %.3f vs %.3f", attr, rep.scale*rep.stats.EnergyJ)
	}
	for _, s := range done {
		if s.tr != nil {
			t.Fatal("sequence carries span state with tracing off")
		}
	}
}
