package serve

import (
	"testing"

	"polca/internal/workload"
)

// fakeReplica builds a bare replica with the given load and KV occupancy;
// the routing policies read nothing else.
func fakeReplica(load, kvToks, kvCap int) *Replica {
	r := &Replica{kvToks: kvToks, kvCapToks: kvCap}
	for i := 0; i < load; i++ {
		r.waiting.PushBack(&Seq{})
	}
	return r
}

func eps(reps ...*Replica) []Endpoint {
	out := make([]Endpoint, len(reps))
	for i, r := range reps {
		out[i] = Endpoint{Rep: r}
		out[i].Snapshot()
	}
	return out
}

// TestRoutersPickFromSnapshotOnly drives every router over endpoints with
// nil Rep: policies must decide from the value fields alone, which is what
// lets polca-replay re-route recorded candidate snapshots offline.
func TestRoutersPickFromSnapshotOnly(t *testing.T) {
	e := []Endpoint{
		{Load: 3, KVFrac: 0.9},
		{Load: 1, KVFrac: 0.1, CappedMHz: 1110},
		{Load: 2, KVFrac: 0.5},
	}
	req := workload.Request{Priority: workload.Low, Session: 11}
	for _, name := range RouterNames() {
		rt, _ := NewRouter(name)
		if got := rt.Pick(e, req); got < 0 || got >= len(e) {
			t.Errorf("%s.Pick(snapshot) = %d, want a valid index", name, got)
		}
	}
}

func TestRouterNamesRoundTrip(t *testing.T) {
	for _, name := range RouterNames() {
		rt, err := NewRouter(name)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
		if rt.Name() != name {
			t.Errorf("NewRouter(%q).Name() = %q", name, rt.Name())
		}
	}
	if _, err := NewRouter("totally-bogus"); err == nil {
		t.Error("unknown router accepted")
	}
}

func TestRoutersEmptyEndpoints(t *testing.T) {
	for _, name := range RouterNames() {
		rt, _ := NewRouter(name)
		if got := rt.Pick(nil, workload.Request{}); got != -1 {
			t.Errorf("%s.Pick(empty) = %d, want -1", name, got)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rt, _ := NewRouter("round-robin")
	e := eps(fakeReplica(9, 0, 1), fakeReplica(0, 0, 1), fakeReplica(5, 0, 1))
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rt.Pick(e, workload.Request{}); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastQueuePicksMinLoadLowestIndex(t *testing.T) {
	rt, _ := NewRouter("least-queue")
	e := eps(fakeReplica(3, 0, 1), fakeReplica(1, 0, 1), fakeReplica(1, 0, 1))
	if got := rt.Pick(e, workload.Request{}); got != 1 {
		t.Errorf("pick = %d, want 1 (lowest index among ties)", got)
	}
}

func TestLeastKVPicksEmptiestCache(t *testing.T) {
	rt, _ := NewRouter("least-kv")
	e := eps(fakeReplica(0, 5, 10), fakeReplica(0, 2, 10), fakeReplica(0, 2, 10))
	if got := rt.Pick(e, workload.Request{}); got != 1 {
		t.Errorf("pick = %d, want 1 (least KV, lowest index among ties)", got)
	}
}

func TestPowerAwareSteering(t *testing.T) {
	rt, _ := NewRouter("power-aware")
	// Replica 0: uncapped, idle. Replicas 1, 2: frequency-capped, with
	// replica 2 less loaded.
	e := []Endpoint{
		{Rep: fakeReplica(0, 0, 1)},
		{Rep: fakeReplica(5, 0, 1), CappedMHz: 1200},
		{Rep: fakeReplica(1, 0, 1), CappedMHz: 1200},
	}
	for i := range e {
		e[i].Snapshot()
	}
	low := workload.Request{Priority: workload.Low}
	high := workload.Request{Priority: workload.High}
	if got := rt.Pick(e, low); got != 2 {
		t.Errorf("low-priority pick = %d, want 2 (least-loaded capped)", got)
	}
	if got := rt.Pick(e, high); got != 0 {
		t.Errorf("high-priority pick = %d, want 0 (uncapped)", got)
	}

	// No capped replica at all: low priority falls back to least-queue
	// across everyone.
	uncapped := eps(fakeReplica(4, 0, 1), fakeReplica(2, 0, 1))
	if got := rt.Pick(uncapped, low); got != 1 {
		t.Errorf("fallback pick = %d, want 1", got)
	}
}
