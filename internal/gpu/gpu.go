// Package gpu models an NVIDIA A100-class datacenter GPU at the level of
// detail the paper's characterization needs: a roofline performance model
// (tensor-core math throughput vs. HBM bandwidth), a DVFS power model
// (dynamic power scales superlinearly with SM clock), and the three power
// management knobs the paper studies — in-band frequency locking, reactive
// power capping, and the out-of-band power brake.
//
// The model is analytical, not cycle-accurate. What must be faithful, and
// is validated by this package's tests, is the *shape* of power over time:
// compute-dense phases draw power at or transiently above TDP, memory-bound
// phases draw a stable ~60-75% of TDP, power capping clips peaks reactively
// (spikes shorter than the limiter's reaction window still overshoot,
// Figure 9), and frequency locking trades a superlinear amount of power for
// a sublinear amount of performance (Figure 10).
package gpu

import (
	"fmt"
	"math"
	"time"

	"polca/internal/llm"
)

// Spec describes a GPU SKU. All power figures are per GPU.
type Spec struct {
	Name string

	TDPWatts  float64 // board power limit the default cap sits at
	IdleWatts float64 // power drawn with clocks idling

	MaxSMClockMHz   float64 // boost clock (100% performance reference)
	BaseSMClockMHz  float64 // base clock (paper: 1275 MHz on A100)
	MinSMClockMHz   float64 // lowest lockable clock
	BrakeSMClockMHz float64 // clock forced by the OOB power brake (Table 5: 288 MHz)

	MemoryGB            float64
	MemBandwidthGBps    float64       // HBM bandwidth; independent of SM clock domain
	NVLinkGBps          float64       // per-GPU interconnect bandwidth
	TensorFP16TFLOPS    float64       // peak dense FP16 tensor-core throughput
	TensorFP8TFLOPS     float64       // peak dense FP8 throughput (0 = unsupported)
	FP32TFLOPS          float64       // peak non-tensor FP32 throughput
	TensorINT8TOPS      float64       // peak INT8 tensor throughput
	DVFSAlpha           float64       // dynamic power ∝ (f/fmax)^alpha (V tracks f)
	TensorWatts         float64       // dynamic power of fully-busy tensor pipes at fmax
	SMWatts             float64       // dynamic power of non-tensor SM activity at fmax
	ClockWatts          float64       // clock-tree/uncore dynamic power while any engine is busy
	MemWatts            float64       // dynamic power of fully-busy HBM interface
	CapReactionInterval time.Duration // reactive power-limiter response time
}

// A100SXM80GB returns the spec of the NVIDIA A100-SXM4-80GB used for the
// paper's inference characterization.
func A100SXM80GB() Spec {
	return Spec{
		Name:                "A100-SXM4-80GB",
		TDPWatts:            400,
		IdleWatts:           82,
		MaxSMClockMHz:       1410,
		BaseSMClockMHz:      1275,
		MinSMClockMHz:       210,
		BrakeSMClockMHz:     288,
		MemoryGB:            80,
		MemBandwidthGBps:    2039,
		NVLinkGBps:          600,
		TensorFP16TFLOPS:    312,
		FP32TFLOPS:          19.5,
		TensorINT8TOPS:      624,
		DVFSAlpha:           2.2,
		TensorWatts:         320,
		SMWatts:             120,
		ClockWatts:          60,
		MemWatts:            140,
		CapReactionInterval: 100 * time.Millisecond,
	}
}

// H100SXM80GB returns the spec of an NVIDIA H100-SXM5-80GB, the next
// generation the paper's discussion anticipates (DGX-H100: 8U, 10.2 kW,
// §6.7; FP8 transformer engine, §4.2). Numbers follow the public SXM5
// datasheet; power-split coefficients are scaled from the A100 model.
func H100SXM80GB() Spec {
	return Spec{
		Name:                "H100-SXM5-80GB",
		TDPWatts:            700,
		IdleWatts:           105,
		MaxSMClockMHz:       1980,
		BaseSMClockMHz:      1590,
		MinSMClockMHz:       210,
		BrakeSMClockMHz:     396,
		MemoryGB:            80,
		MemBandwidthGBps:    3350,
		NVLinkGBps:          900,
		TensorFP16TFLOPS:    989,
		TensorFP8TFLOPS:     1979,
		FP32TFLOPS:          67,
		TensorINT8TOPS:      1979,
		DVFSAlpha:           2.2,
		TensorWatts:         560,
		SMWatts:             190,
		ClockWatts:          100,
		MemWatts:            240,
		CapReactionInterval: 100 * time.Millisecond,
	}
}

// A100SXM40GB returns the spec of the NVIDIA A100-SXM4-40GB used for the
// paper's training characterization.
func A100SXM40GB() Spec {
	s := A100SXM80GB()
	s.Name = "A100-SXM4-40GB"
	s.MemoryGB = 40
	s.MemBandwidthGBps = 1555
	return s
}

// PeakFLOPS returns the peak math throughput (FLOP/s) for a datatype,
// before kernel efficiency.
func (s Spec) PeakFLOPS(dt llm.DType) float64 {
	switch dt {
	case llm.FP16:
		return s.TensorFP16TFLOPS * 1e12
	case llm.INT8:
		return s.TensorINT8TOPS * 1e12
	case llm.FP8:
		if s.TensorFP8TFLOPS > 0 {
			return s.TensorFP8TFLOPS * 1e12
		}
		// Pre-Hopper GPUs run FP8 weights through FP16 pipes.
		return s.TensorFP16TFLOPS * 1e12
	case llm.FP32:
		return s.FP32TFLOPS * 1e12
	}
	return s.FP32TFLOPS * 1e12
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.TDPWatts <= 0 || s.IdleWatts <= 0 || s.IdleWatts >= s.TDPWatts:
		return fmt.Errorf("gpu: %s: bad power envelope", s.Name)
	case s.MaxSMClockMHz <= 0 || s.MinSMClockMHz <= 0 || s.MinSMClockMHz > s.MaxSMClockMHz:
		return fmt.Errorf("gpu: %s: bad clock range", s.Name)
	case s.BaseSMClockMHz < s.MinSMClockMHz || s.BaseSMClockMHz > s.MaxSMClockMHz:
		return fmt.Errorf("gpu: %s: base clock outside range", s.Name)
	case s.MemBandwidthGBps <= 0 || s.TensorFP16TFLOPS <= 0:
		return fmt.Errorf("gpu: %s: bad throughput", s.Name)
	case s.DVFSAlpha < 1:
		return fmt.Errorf("gpu: %s: DVFS alpha < 1", s.Name)
	}
	return nil
}

// Phase is a unit of GPU work with homogeneous behaviour: a prompt pass, a
// single token-sampling step (or a run of identical steps), a training
// forward/backward pass, or a synchronization interval. Costs are per GPU
// (the caller divides model-level costs by the parallel degree).
type Phase struct {
	Name  string
	DType llm.DType

	FLOPs    float64 // math work on this GPU
	MemBytes float64 // HBM traffic on this GPU
	// TensorFrac is the fraction of math work that runs on tensor cores
	// (the rest is scalar/vector SM work). It shapes the power split, not
	// the timing. Prompt/GEMM phases ≈ 1.
	TensorFrac float64
	// Efficiency derates the achieved math throughput below the datatype's
	// kernel efficiency (small kernels, low occupancy). Zero means 1.0.
	// Lower efficiency lengthens the phase and proportionally idles the
	// tensor pipes, lowering instantaneous power — this is why RoBERTa's
	// training iterations stay below TDP in Figure 4 while GPT-NeoX's
	// exceed it.
	Efficiency float64

	// CommSeconds is interconnect time that neither SM nor HBM can hide
	// (all-reduce latency, pipeline bubbles). It does not scale with clock.
	CommSeconds float64
	// OverheadSeconds is kernel-launch and small-op time measured at max
	// clock; it scales inversely with the SM clock ratio.
	OverheadSeconds float64
}

// Counters is the set of DCGM-style performance counters the paper profiles
// (Figure 7). Each is a 0..1 activity fraction except PowerWatts.
type Counters struct {
	PowerWatts     float64
	GPUUtil        float64 // any engine busy
	MemUtil        float64 // memory *capacity* in use fraction
	SMActivity     float64
	TensorActivity float64
	MemActivity    float64 // memory *bandwidth* activity
	PCIeTXMBps     float64
	PCIeRXMBps     float64
}

// Segment is a stretch of simulated execution with constant behaviour.
type Segment struct {
	Duration time.Duration
	Counters Counters
}

// Exec is the result of running a phase: a piecewise-constant power/counter
// timeline plus the total elapsed time.
type Exec struct {
	Segments []Segment
	Duration time.Duration
}

// Device is a stateful GPU with its management knobs. Device is not
// safe for concurrent use; in the simulator each device is owned by its
// server's event handlers.
type Device struct {
	spec Spec

	lockedClockMHz float64 // 0 = unlocked (boost to max)
	powerCapWatts  float64
	brake          bool

	memUsedGB float64 // resident model weights+KV, for the MemUtil counter

	// Manufacturing variation (silicon lottery): multipliers on dynamic
	// power and achieved throughput, 1.0 by default. Large fleets show a
	// few percent of both (the paper cites characterizations of A100
	// variability).
	powerVar float64
	perfVar  float64
}

// NewDevice returns a Device with default settings: unlocked clocks and the
// power cap at TDP.
func NewDevice(spec Spec) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Device{spec: spec, powerCapWatts: spec.TDPWatts, powerVar: 1, perfVar: 1}
}

// SetVariation sets the device's silicon-lottery multipliers: power scales
// dynamic power draw, perf scales achieved math throughput. Both are
// clamped to ±10% around nominal. Fleet models draw these per device to
// reproduce the per-server scatter of Figure 11.
func (d *Device) SetVariation(power, perf float64) {
	clamp := func(x float64) float64 {
		return math.Min(math.Max(x, 0.9), 1.1)
	}
	d.powerVar = clamp(power)
	d.perfVar = clamp(perf)
}

// Variation returns the device's power and performance multipliers.
func (d *Device) Variation() (power, perf float64) { return d.powerVar, d.perfVar }

// Spec returns the device's SKU description.
func (d *Device) Spec() Spec { return d.spec }

// LockClock locks the SM clock to mhz (clamped to the spec's range),
// emulating `nvidia-smi -lgc`. Passing 0 unlocks.
func (d *Device) LockClock(mhz float64) {
	if mhz == 0 {
		d.lockedClockMHz = 0
		return
	}
	d.lockedClockMHz = math.Min(math.Max(mhz, d.spec.MinSMClockMHz), d.spec.MaxSMClockMHz)
}

// LockedClock returns the locked SM clock in MHz, or 0 if unlocked.
func (d *Device) LockedClock() float64 { return d.lockedClockMHz }

// SetPowerCap sets the reactive power limit in watts, emulating
// `nvidia-smi -pl`. Values are clamped to [idle+10%, TDP].
func (d *Device) SetPowerCap(watts float64) {
	lo := d.spec.IdleWatts * 1.1
	d.powerCapWatts = math.Min(math.Max(watts, lo), d.spec.TDPWatts)
}

// PowerCap returns the current power cap in watts.
func (d *Device) PowerCap() float64 { return d.powerCapWatts }

// SetBrake engages or releases the OOB power brake, which forces the SM
// clock to the spec's brake clock regardless of other settings.
func (d *Device) SetBrake(on bool) { d.brake = on }

// Brake reports whether the power brake is engaged.
func (d *Device) Brake() bool { return d.brake }

// SetMemUsedGB records resident memory for the MemUtil counter.
func (d *Device) SetMemUsedGB(gb float64) {
	d.memUsedGB = math.Min(math.Max(gb, 0), d.spec.MemoryGB)
}

// clockCeilingMHz returns the highest SM clock currently allowed by the
// lock and brake settings (the power cap throttles reactively, below).
func (d *Device) clockCeilingMHz() float64 {
	c := d.spec.MaxSMClockMHz
	if d.lockedClockMHz > 0 {
		c = d.lockedClockMHz
	}
	if d.brake {
		c = math.Min(c, d.spec.BrakeSMClockMHz)
	}
	return c
}

// effFactor returns the phase's occupancy derate (1.0 when unset).
func (p Phase) effFactor() float64 {
	if p.Efficiency <= 0 || p.Efficiency > 1 {
		return 1
	}
	return p.Efficiency
}

// phaseTiming computes the roofline timing of a phase at a clock ratio.
func (d *Device) phaseTiming(p *Phase, ratio float64) (total, tc, tm float64) {
	eff := p.DType.KernelEfficiency() * p.effFactor()
	flops := d.spec.PeakFLOPS(p.DType) * eff * ratio * d.perfVar
	tc = 0.0
	if flops > 0 {
		tc = p.FLOPs / flops
	}
	tm = p.MemBytes / (d.spec.MemBandwidthGBps * 1e9)
	busy := max(tc, tm)
	total = busy + p.CommSeconds + p.OverheadSeconds/ratio
	return total, tc, tm
}

// countersAt derives the counter values for a phase executing at a clock
// ratio, given its timing decomposition.
func (d *Device) countersAt(p *Phase, ratio, total, tc, tm float64) Counters {
	if total <= 0 {
		return d.idleCounters()
	}
	overhead := p.OverheadSeconds / ratio
	// tc is already inflated by low occupancy; the tensor pipes are only
	// effFactor-busy during it, so instantaneous power scales back down.
	tensorAct := tc * p.TensorFrac * p.effFactor() / total
	smAct := (tc + overhead) / total
	memAct := tm / total
	clamp01 := func(x float64) float64 { return min(max(x, 0), 1) }
	tensorAct, smAct, memAct = clamp01(tensorAct), clamp01(smAct), clamp01(memAct)
	util := clamp01((max(tc, tm) + overhead) / total)

	dyn := math.Pow(ratio, d.spec.DVFSAlpha) * d.powerVar
	power := d.spec.IdleWatts +
		dyn*(d.spec.TensorWatts*tensorAct+d.spec.SMWatts*max(smAct-tensorAct, 0)+d.spec.ClockWatts*util) +
		d.spec.MemWatts*memAct*d.powerVar
	return Counters{
		PowerWatts:     power,
		GPUUtil:        util,
		MemUtil:        d.memUsedGB / d.spec.MemoryGB,
		SMActivity:     smAct,
		TensorActivity: tensorAct,
		MemActivity:    memAct,
		PCIeTXMBps:     150 * util,
		PCIeRXMBps:     180 * util,
	}
}

// idleCounters returns the counter set for an idle device.
func (d *Device) idleCounters() Counters {
	return Counters{PowerWatts: d.spec.IdleWatts, MemUtil: d.memUsedGB / d.spec.MemoryGB}
}

// Idle returns an Exec representing d idling for the given duration.
func (d *Device) Idle(dur time.Duration) Exec {
	return Exec{
		Segments: []Segment{{Duration: dur, Counters: d.idleCounters()}},
		Duration: dur,
	}
}

// throttleRatioFor returns the largest clock ratio <= maxRatio at which the
// phase's steady-state power respects the cap. The solution accounts for
// activity fractions changing as the clock drops (a memory-bound phase
// becomes no less memory-bound at lower clocks), solved by bisection.
func (d *Device) throttleRatioFor(p *Phase, maxRatio float64) float64 {
	lo := d.spec.MinSMClockMHz / d.spec.MaxSMClockMHz
	hi := maxRatio
	powerAt := func(r float64) float64 {
		total, tc, tm := d.phaseTiming(p, r)
		return d.countersAt(p, r, total, tc, tm).PowerWatts
	}
	if powerAt(hi) <= d.powerCapWatts {
		return hi
	}
	if powerAt(lo) > d.powerCapWatts {
		return lo
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if powerAt(mid) > d.powerCapWatts {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// Run executes a phase under the device's current knob settings and returns
// its piecewise-constant power timeline.
//
// The reactive power limiter is modelled as in Figure 9: for the first
// CapReactionInterval of a phase the device runs at the clock ceiling, so
// instantaneous power may overshoot the cap; after the reaction interval
// the limiter settles the clock at the highest value that respects the cap
// (extending the phase's duration accordingly). Frequency locks and the
// power brake bound the clock from the start and never overshoot.
func (d *Device) Run(p Phase) Exec {
	var e Exec
	d.RunInto(p, &e)
	return e
}

// RunInto is Run with a caller-owned result: the previous contents of e are
// discarded and its Segments backing array is reused, so steady-state
// callers (the serving scheduler times millions of iterations) pay no
// allocation once the buffer has warmed up.
func (d *Device) RunInto(p Phase, e *Exec) {
	if p.FLOPs < 0 || p.MemBytes < 0 || p.CommSeconds < 0 || p.OverheadSeconds < 0 {
		panic(fmt.Sprintf("gpu: negative work in phase %q", p.Name))
	}
	e.Segments = e.Segments[:0]
	e.Duration = 0
	maxRatio := d.clockCeilingMHz() / d.spec.MaxSMClockMHz

	fullTotal, tc, tm := d.phaseTiming(&p, maxRatio)
	if fullTotal <= 0 {
		return
	}
	full := d.countersAt(&p, maxRatio, fullTotal, tc, tm)

	if full.PowerWatts <= d.powerCapWatts+1e-9 {
		dur := secToDur(fullTotal)
		e.Segments = append(e.Segments, Segment{Duration: dur, Counters: full})
		e.Duration = dur
		return
	}

	// Cap violated: overshoot segment, then throttled remainder.
	throttled := d.throttleRatioFor(&p, maxRatio)
	react := d.spec.CapReactionInterval.Seconds()
	if fullTotal <= react {
		// Spike shorter than the limiter's reaction: full overshoot.
		dur := secToDur(fullTotal)
		e.Segments = append(e.Segments, Segment{Duration: dur, Counters: full})
		e.Duration = dur
		return
	}
	doneFrac := react / fullTotal // fraction of work done before throttling
	rest := p.Scale(1 - doneFrac)
	restTotal, rtc, rtm := d.phaseTiming(&rest, throttled)
	restCtr := d.countersAt(&rest, throttled, restTotal, rtc, rtm)
	e.Segments = append(e.Segments,
		Segment{Duration: secToDur(react), Counters: full},
		Segment{Duration: secToDur(restTotal), Counters: restCtr},
	)
	e.Duration = e.Segments[0].Duration + e.Segments[1].Duration
}

// Scale returns a copy of the phase with all work multiplied by frac. The
// cluster simulator uses it to re-plan the remainder of an in-flight phase
// when a management action changes the device's clocks mid-execution.
func (p Phase) Scale(frac float64) Phase {
	q := p
	q.FLOPs *= frac
	q.MemBytes *= frac
	q.CommSeconds *= frac
	q.OverheadSeconds *= frac
	return q
}

// secToDur converts seconds to a time.Duration, saturating at MaxInt64.
func secToDur(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	ns := s * 1e9
	if ns > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ns)
}

// PeakPower returns the instantaneous power the device would draw running
// the phase at its current clock ceiling, ignoring the power cap (i.e. the
// height of the initial spike).
func (d *Device) PeakPower(p Phase) float64 {
	maxRatio := d.clockCeilingMHz() / d.spec.MaxSMClockMHz
	total, tc, tm := d.phaseTiming(&p, maxRatio)
	if total <= 0 {
		return d.spec.IdleWatts
	}
	return d.countersAt(&p, maxRatio, total, tc, tm).PowerWatts
}

// MeanPower returns the time-weighted mean power of an Exec.
func (e Exec) MeanPower() float64 {
	if e.Duration <= 0 {
		return 0
	}
	var wsum float64
	for _, s := range e.Segments {
		wsum += s.Counters.PowerWatts * s.Duration.Seconds()
	}
	return wsum / e.Duration.Seconds()
}

// PeakPower returns the maximum segment power of an Exec.
func (e Exec) PeakPower() float64 {
	peak := 0.0
	for _, s := range e.Segments {
		if s.Counters.PowerWatts > peak {
			peak = s.Counters.PowerWatts
		}
	}
	return peak
}

// CountersAt returns the counters in effect at the given offset into the
// execution (the last segment's counters at or past the end; zero Counters
// for an empty exec).
func (e Exec) CountersAt(offset time.Duration) Counters {
	if len(e.Segments) == 0 {
		return Counters{}
	}
	var at time.Duration
	for _, s := range e.Segments {
		at += s.Duration
		if offset < at {
			return s.Counters
		}
	}
	return e.Segments[len(e.Segments)-1].Counters
}

// PowerAt returns the instantaneous power at the given offset into the
// execution.
func (e Exec) PowerAt(offset time.Duration) float64 {
	return e.CountersAt(offset).PowerWatts
}

// Energy returns the energy of an Exec in joules.
func (e Exec) Energy() float64 {
	var j float64
	for _, s := range e.Segments {
		j += s.Counters.PowerWatts * s.Duration.Seconds()
	}
	return j
}

// EnergyUpTo returns the energy of the execution's first offset of runtime
// in joules (the whole-exec energy at or past the end). The serving
// backend uses it to settle the consumed share of an iteration that is
// re-planned mid-flight or cancelled by a node death.
func (e Exec) EnergyUpTo(offset time.Duration) float64 {
	if offset >= e.Duration {
		return e.Energy()
	}
	var j float64
	var at time.Duration
	for _, s := range e.Segments {
		if offset <= at {
			break
		}
		d := s.Duration
		if at+d > offset {
			d = offset - at
		}
		j += s.Counters.PowerWatts * d.Seconds()
		at += s.Duration
	}
	return j
}
