package gpu_test

import (
	"fmt"

	"polca/internal/gpu"
	"polca/internal/llm"
)

// ExampleDevice_Run demonstrates the two-phase power signature at the heart
// of the paper: a compute-dense prompt phase at/above TDP followed by a
// memory-bound token phase at much lower power.
func ExampleDevice_Run() {
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	prompt := gpu.Phase{Name: "prompt", DType: llm.FP16, FLOPs: 3e14, MemBytes: 5e10, TensorFrac: 1}
	token := gpu.Phase{Name: "token", DType: llm.FP16, FLOPs: 5e12, MemBytes: 2e12, TensorFrac: 1, OverheadSeconds: 0.15}

	pe := dev.Run(prompt)
	te := dev.Run(token)
	fmt.Printf("prompt at/above TDP: %v\n", pe.PeakPower() >= dev.Spec().TDPWatts)
	fmt.Printf("token well below TDP: %v\n", te.MeanPower() < 0.8*dev.Spec().TDPWatts)
	fmt.Printf("token phase longer: %v\n", te.Duration > pe.Duration)
	// Output:
	// prompt at/above TDP: true
	// token well below TDP: true
	// token phase longer: true
}

// ExampleDevice_LockClock shows the superlinear frequency-locking trade-off
// (Insight 7): a ~21% clock reduction reclaims far more power than it costs
// in time on a compute-bound phase.
func ExampleDevice_LockClock() {
	work := gpu.Phase{Name: "gemm", DType: llm.FP16, FLOPs: 3e14, TensorFrac: 1}
	base := gpu.NewDevice(gpu.A100SXM80GB()).Run(work)

	locked := gpu.NewDevice(gpu.A100SXM80GB())
	locked.LockClock(1110)
	le := locked.Run(work)

	powerSaved := 1 - le.PeakPower()/base.PeakPower()
	perfLost := 1 - base.Duration.Seconds()/le.Duration.Seconds()
	fmt.Printf("superlinear: %v\n", powerSaved > perfLost)
	// Output:
	// superlinear: true
}
