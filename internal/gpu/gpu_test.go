package gpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"polca/internal/llm"
)

// computePhase is a BLOOM-like prompt: heavily tensor-bound.
func computePhase() Phase {
	return Phase{
		Name:       "prompt",
		DType:      llm.FP16,
		FLOPs:      3e14, // ~1s of tensor work on an A100
		MemBytes:   5e10,
		TensorFrac: 1,
	}
}

// memoryPhase is a token-sampling run: memory-bandwidth-bound.
func memoryPhase() Phase {
	return Phase{
		Name:            "token",
		DType:           llm.FP16,
		FLOPs:           5e12,
		MemBytes:        2e12, // ~1s of HBM streaming
		TensorFrac:      1,
		OverheadSeconds: 0.15,
	}
}

func TestSpecsValidate(t *testing.T) {
	for _, s := range []Spec{A100SXM80GB(), A100SXM40GB()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := A100SXM80GB()
	bad.IdleWatts = 500
	if bad.Validate() == nil {
		t.Error("idle above TDP should fail validation")
	}
	bad = A100SXM80GB()
	bad.BaseSMClockMHz = 10
	if bad.Validate() == nil {
		t.Error("base clock below min should fail validation")
	}
}

func TestPeakFLOPSOrdering(t *testing.T) {
	s := A100SXM80GB()
	if !(s.PeakFLOPS(llm.INT8) > s.PeakFLOPS(llm.FP16) && s.PeakFLOPS(llm.FP16) > s.PeakFLOPS(llm.FP32)) {
		t.Error("throughput ordering INT8 > FP16 > FP32 violated")
	}
}

func TestComputePhaseReachesTDP(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	p := d.PeakPower(computePhase())
	tdp := d.Spec().TDPWatts
	if p < tdp {
		t.Errorf("compute-dense peak %v below TDP %v (paper: prompt spikes reach/exceed TDP)", p, tdp)
	}
	if p > 1.25*tdp {
		t.Errorf("peak %v unrealistically above TDP", p)
	}
}

func TestMemoryPhaseDrawsLowerStablePower(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	p := d.PeakPower(memoryPhase())
	tdp := d.Spec().TDPWatts
	if p < 0.5*tdp || p > 0.85*tdp {
		t.Errorf("token-phase power %.0f W = %.2f TDP, want 0.5-0.85 TDP (Figure 6)", p, p/tdp)
	}
}

func TestIdlePower(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	e := d.Idle(time.Second)
	if e.MeanPower() != d.Spec().IdleWatts {
		t.Errorf("idle power = %v", e.MeanPower())
	}
	if e.Duration != time.Second {
		t.Errorf("idle duration = %v", e.Duration)
	}
}

func TestFrequencyLockReducesPowerSuperlinearly(t *testing.T) {
	// Figure 10: peak power reduction substantially exceeds performance
	// reduction for a mixed workload when locking frequency.
	spec := A100SXM80GB()
	d := NewDevice(spec)
	base := d.Run(computePhase())
	d.LockClock(1110)
	locked := d.Run(computePhase())
	powerDrop := 1 - locked.PeakPower()/base.PeakPower()
	perfDrop := 1 - base.Duration.Seconds()/locked.Duration.Seconds()
	if powerDrop <= 0 {
		t.Fatal("locking the clock did not reduce power")
	}
	if powerDrop <= perfDrop {
		t.Errorf("power drop %.2f should exceed perf drop %.2f for compute phase at this DVFS point", powerDrop, perfDrop)
	}
}

func TestMemoryBoundPhaseInsensitiveToClock(t *testing.T) {
	// Token phases are memory-bound: a ~7% clock reduction must cost <2%
	// performance (Figure 10c) while still saving dynamic power.
	d := NewDevice(A100SXM80GB())
	base := d.Run(memoryPhase())
	d.LockClock(1305)
	locked := d.Run(memoryPhase())
	slowdown := locked.Duration.Seconds()/base.Duration.Seconds() - 1
	if slowdown > 0.02 {
		t.Errorf("memory-bound slowdown at 1305 MHz = %.3f, want < 0.02", slowdown)
	}
	if locked.MeanPower() >= base.MeanPower() {
		t.Error("lower clock should save some power even when memory bound")
	}
}

func TestClockLockClamping(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	d.LockClock(50)
	if got := d.LockedClock(); got != d.Spec().MinSMClockMHz {
		t.Errorf("lock clamped to %v, want min %v", got, d.Spec().MinSMClockMHz)
	}
	d.LockClock(9999)
	if got := d.LockedClock(); got != d.Spec().MaxSMClockMHz {
		t.Errorf("lock clamped to %v, want max %v", got, d.Spec().MaxSMClockMHz)
	}
	d.LockClock(0)
	if d.LockedClock() != 0 {
		t.Error("unlock failed")
	}
}

func TestPowerCapClipsSteadyState(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	d.SetPowerCap(325)
	e := d.Run(computePhase())
	if len(e.Segments) != 2 {
		t.Fatalf("capped compute phase should have overshoot+throttled segments, got %d", len(e.Segments))
	}
	if over := e.Segments[0].Counters.PowerWatts; over <= 325 {
		t.Errorf("overshoot segment %v W should exceed the cap (reactive limiter, Figure 9)", over)
	}
	if e.Segments[0].Duration != d.Spec().CapReactionInterval {
		t.Errorf("overshoot lasts %v, want reaction interval %v", e.Segments[0].Duration, d.Spec().CapReactionInterval)
	}
	if steady := e.Segments[1].Counters.PowerWatts; steady > 325+1 {
		t.Errorf("throttled segment %v W exceeds cap", steady)
	}
	// Capping must cost performance on a compute-bound phase.
	uncapped := NewDevice(A100SXM80GB()).Run(computePhase())
	if e.Duration <= uncapped.Duration {
		t.Error("capped run should be slower than uncapped")
	}
}

func TestShortSpikeEscapesReactiveCap(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	d.SetPowerCap(300)
	spike := computePhase()
	spike.FLOPs = 1e13 // ~35 ms, shorter than the 100 ms reaction window
	e := d.Run(spike)
	if len(e.Segments) != 1 {
		t.Fatalf("short spike should not be split, got %d segments", len(e.Segments))
	}
	if e.Segments[0].Counters.PowerWatts <= 300 {
		t.Error("short spike should overshoot the reactive cap (Figure 9)")
	}
}

func TestFrequencyLockNeverOvershoots(t *testing.T) {
	// Unlike capping, a frequency lock bounds power from the first instant.
	d := NewDevice(A100SXM80GB())
	d.LockClock(1110)
	e := d.Run(computePhase())
	capRef := NewDevice(A100SXM80GB()).PeakPower(computePhase())
	if e.PeakPower() >= capRef {
		t.Error("locked run should start below unlocked peak")
	}
	for _, s := range e.Segments {
		if s.Counters.PowerWatts > e.Segments[0].Counters.PowerWatts+1e-9 {
			t.Error("locked run power should be flat-or-falling")
		}
	}
}

func TestPowerBrake(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	d.SetBrake(true)
	e := d.Run(computePhase())
	nob := NewDevice(A100SXM80GB()).Run(computePhase())
	if e.PeakPower() > 0.45*d.Spec().TDPWatts {
		t.Errorf("braked power %v W too high; brake should reclaim substantial power", e.PeakPower())
	}
	if e.Duration < 3*nob.Duration {
		t.Errorf("brake at 288 MHz should slow compute drastically: %v vs %v", e.Duration, nob.Duration)
	}
	d.SetBrake(false)
	if d.Brake() {
		t.Error("brake release failed")
	}
}

func TestCapClamping(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	d.SetPowerCap(10)
	if d.PowerCap() <= d.Spec().IdleWatts {
		t.Errorf("cap clamped to %v, should stay above idle", d.PowerCap())
	}
	d.SetPowerCap(9999)
	if d.PowerCap() != d.Spec().TDPWatts {
		t.Errorf("cap clamped to %v, want TDP", d.PowerCap())
	}
}

func TestCountersCorrelateWithPhases(t *testing.T) {
	// Figure 7: prompt-phase power rides on SM/tensor activity; token-phase
	// on memory activity.
	d := NewDevice(A100SXM80GB())
	prompt := d.Run(computePhase()).Segments[0].Counters
	token := d.Run(memoryPhase()).Segments[0].Counters
	if prompt.TensorActivity < 0.8 {
		t.Errorf("prompt tensor activity = %v, want high", prompt.TensorActivity)
	}
	if prompt.MemActivity > 0.3 {
		t.Errorf("prompt memory activity = %v, want low", prompt.MemActivity)
	}
	if token.MemActivity < 0.7 {
		t.Errorf("token memory activity = %v, want high", token.MemActivity)
	}
	if token.TensorActivity > 0.3 {
		t.Errorf("token tensor activity = %v, want low", token.TensorActivity)
	}
}

func TestMemUtilCounter(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	d.SetMemUsedGB(40)
	if got := d.Idle(time.Second).Segments[0].Counters.MemUtil; got != 0.5 {
		t.Errorf("MemUtil = %v, want 0.5", got)
	}
	d.SetMemUsedGB(500)
	if got := d.Idle(time.Second).Segments[0].Counters.MemUtil; got != 1 {
		t.Errorf("MemUtil clamped = %v, want 1", got)
	}
	d.SetMemUsedGB(-3)
	if got := d.Idle(time.Second).Segments[0].Counters.MemUtil; got != 0 {
		t.Errorf("MemUtil clamped = %v, want 0", got)
	}
}

func TestExecAggregates(t *testing.T) {
	e := Exec{
		Segments: []Segment{
			{Duration: time.Second, Counters: Counters{PowerWatts: 100}},
			{Duration: 3 * time.Second, Counters: Counters{PowerWatts: 200}},
		},
		Duration: 4 * time.Second,
	}
	if got := e.MeanPower(); got != 175 {
		t.Errorf("MeanPower = %v, want 175", got)
	}
	if got := e.PeakPower(); got != 200 {
		t.Errorf("PeakPower = %v, want 200", got)
	}
	if got := e.Energy(); got != 700 {
		t.Errorf("Energy = %v, want 700", got)
	}
	if (Exec{}).MeanPower() != 0 {
		t.Error("empty exec mean should be 0")
	}
}

func TestRunNegativeWorkPanics(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	defer func() {
		if recover() == nil {
			t.Error("negative FLOPs should panic")
		}
	}()
	d.Run(Phase{FLOPs: -1})
}

func TestEmptyPhase(t *testing.T) {
	d := NewDevice(A100SXM80GB())
	e := d.Run(Phase{Name: "noop", DType: llm.FP16})
	if e.Duration != 0 || len(e.Segments) != 0 {
		t.Errorf("empty phase should be instantaneous: %+v", e)
	}
}

// Property: duration is non-increasing in clock and power is non-decreasing
// in clock, for arbitrary phases.
func TestClockMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		p := Phase{
			Name:            "rand",
			DType:           llm.FP16,
			FLOPs:           rng.Float64() * 1e14,
			MemBytes:        rng.Float64() * 1e12,
			TensorFrac:      rng.Float64(),
			CommSeconds:     rng.Float64() * 0.1,
			OverheadSeconds: rng.Float64() * 0.1,
		}
		if p.FLOPs == 0 && p.MemBytes == 0 {
			return true
		}
		clocks := []float64{600, 900, 1110, 1275, 1410}
		var lastDur = math.Inf(1)
		var lastPeak float64
		for _, c := range clocks {
			d := NewDevice(A100SXM80GB())
			d.LockClock(c)
			e := d.Run(p)
			if e.Duration.Seconds() > lastDur+1e-9 {
				return false
			}
			if e.PeakPower() < lastPeak-1e-9 {
				return false
			}
			lastDur = e.Duration.Seconds()
			lastPeak = e.PeakPower()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: energy is conserved across capping — work done is identical, so
// a capped run must not consume more energy than an uncapped one (lower
// voltage/frequency is strictly more efficient in this model).
func TestCappingSavesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := func(seed int64) bool {
		p := Phase{
			Name:       "rand",
			DType:      llm.FP16,
			FLOPs:      1e13 + rng.Float64()*3e14,
			MemBytes:   rng.Float64() * 1e11,
			TensorFrac: 1,
		}
		un := NewDevice(A100SXM80GB()).Run(p)
		capped := NewDevice(A100SXM80GB())
		capped.SetPowerCap(300 + rng.Float64()*80)
		ce := capped.Run(p)
		return ce.Energy() <= un.Energy()*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBaseClockIs1275(t *testing.T) {
	// POLCA's T1 action locks low-priority GPUs to the A100 base frequency.
	if A100SXM80GB().BaseSMClockMHz != 1275 {
		t.Error("A100 base clock must be 1275 MHz (paper §6.3)")
	}
	if A100SXM80GB().BrakeSMClockMHz != 288 {
		t.Error("A100 power brake clock must be 288 MHz (Table 5)")
	}
}

func TestDeviceVariation(t *testing.T) {
	hot := NewDevice(A100SXM80GB())
	hot.SetVariation(1.08, 0.95)
	if pw, pf := hot.Variation(); pw != 1.08 || pf != 0.95 {
		t.Errorf("Variation = %v/%v", pw, pf)
	}
	nominal := NewDevice(A100SXM80GB())
	p := computePhase()
	he := hot.Run(p)
	ne := nominal.Run(p)
	if he.PeakPower() <= ne.PeakPower() {
		t.Error("hot silicon should draw more power")
	}
	if he.Duration <= ne.Duration {
		t.Error("slow silicon should take longer")
	}
	// Clamping to ±10%.
	hot.SetVariation(2.0, 0.1)
	if pw, pf := hot.Variation(); pw != 1.1 || pf != 0.9 {
		t.Errorf("clamped Variation = %v/%v, want 1.1/0.9", pw, pf)
	}
	// Idle power is unaffected by variation (leakage modelled nominal).
	if hot.Idle(time.Second).MeanPower() != nominal.Idle(time.Second).MeanPower() {
		t.Error("variation should not change idle power")
	}
}
