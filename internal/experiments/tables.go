package experiments

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/llm"
	"polca/internal/polca"
	"polca/internal/telemetry"
	"polca/internal/workload"
)

func init() {
	register("tab1", "Table 1: Power monitoring interfaces in an LLM cluster", runTable1)
	register("tab2", "Table 2: Row-level parameters", runTable2)
	register("tab3", "Table 3: Characterized LLM workloads", runTable3)
	register("tab5", "Table 5: Power modes for low/high priority workloads", runTable5)
	register("tab6", "Table 6: Workload distribution and SLOs", runTable6)
}

func runTable1(o Options) (Result, error) {
	rows := telemetry.Table1()
	var cells [][]string
	for _, r := range rows {
		rel := "yes"
		if !r.Reliable {
			rel = "no (silent failures)"
		}
		cells = append(cells, []string{r.Name, r.Granularity, r.Path.String(), r.Interval.String(), rel})
	}
	return Result{
		Text: table([]string{"Mechanism", "Granularity", "Path", "Interval", "Reliable"}, cells),
		Data: rows,
	}, nil
}

func runTable2(o Options) (Result, error) {
	cfg := cluster.Production()
	cells := [][]string{
		{"Number of servers", fmt.Sprintf("%d", cfg.BaseServers)},
		{"Server type", "DGX-A100"},
		{"Power telemetry delay", cfg.TelemetryInterval.String()},
		{"Power brake latency", cfg.BrakeLatency.String()},
		{"OOB control latency", cfg.OOBLatency.String()},
	}
	return Result{
		Text: table([]string{"Parameter", "Value"}, cells),
		Data: cfg,
	}, nil
}

func runTable3(o Options) (Result, error) {
	var cells [][]string
	for _, m := range llm.Catalog() {
		params := fmt.Sprintf("%.0fM", float64(m.Params)/1e6)
		if m.Params >= 1e9 {
			params = fmt.Sprintf("%.0fB", float64(m.Params)/1e9)
		}
		cells = append(cells, []string{m.Arch.String(), m.Name, params, fmt.Sprintf("%d", m.InferenceGPUs)})
	}
	return Result{
		Text: table([]string{"Category", "Model", "#Params", "#Inference GPUs"}, cells),
		Data: llm.Catalog(),
	}, nil
}

func runTable5(o Options) (Result, error) {
	cfg := polca.DefaultConfig()
	cells := [][]string{
		{"Uncapped", "Uncapped", "Uncapped"},
		{fmt.Sprintf("Threshold T1 (%.0f%%)", cfg.T1*100), fmt.Sprintf("Frequency capped (%.0f MHz)", cfg.LPBaseMHz), "Uncapped"},
		{fmt.Sprintf("Threshold T2 (%.0f%%)", cfg.T2*100), fmt.Sprintf("Frequency capped (%.0f MHz)", cfg.LPDeepMHz), fmt.Sprintf("Frequency capped (%.0f MHz)", cfg.HPCapMHz)},
		{"Power brake", "Frequency capped (288 MHz)", "Frequency capped (288 MHz)"},
	}
	return Result{
		Text: table([]string{"Mode", "Low Priority", "High Priority"}, cells),
		Data: cfg,
	}, nil
}

func runTable6(o Options) (Result, error) {
	classes := workload.Table6()
	var cells [][]string
	for _, c := range classes {
		pri := "50:50"
		switch c.LowShare {
		case 1:
			pri = "Low"
		case 0:
			pri = "High"
		}
		cells = append(cells, []string{
			c.Name,
			fmt.Sprintf("%d-%d", c.PromptMin, c.PromptMax),
			fmt.Sprintf("%d-%d", c.OutputMin, c.OutputMax),
			pct(c.Share),
			pri,
		})
	}
	text := table([]string{"Workload", "Prompt size", "Output size", "Ratio", "Priority"}, cells)
	slos := workload.SLOs()
	text += "\nSLOs (latency impact bounds):\n" + table(
		[]string{"Metric", "High priority", "Low priority"},
		[][]string{
			{"P50 latency impact", "< " + pct(slos[workload.High].P50Impact), "< " + pct(slos[workload.Low].P50Impact)},
			{"P99 latency impact", "< " + pct(slos[workload.High].P99Impact), "< " + pct(slos[workload.Low].P99Impact)},
			{"Number of power brakes", "0", "0"},
		})
	return Result{Text: text, Data: classes}, nil
}

// horizonFromDays converts a day count to a duration.
func horizonFromDays(days int) time.Duration {
	return time.Duration(days) * 24 * time.Hour
}
