package experiments

import (
	"strings"
	"testing"

	"polca/internal/workload"
)

func quick(t *testing.T, id string) Result {
	t.Helper()
	res, err := Run(id, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "" {
		t.Fatalf("%s: empty rendering", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6",
		"fit", "fig13", "fig14", "fig15a", "fig15b", "fig16", "fig17", "fig18",
		"ext-dtype", "ext-phase", "ext-split", "ext-aware", "ext-swing",
		"ext-hysteresis", "ext-oob", "ext-batch", "ext-seeds", "ext-h100",
		"ext-train-oversub", "ext-ladder", "figfault", "figserve",
		"figservefault", "figscenario", "figregret",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", QuickOptions()); err == nil {
		t.Error("want error for unknown id")
	}
	if _, err := Title("fig99"); err == nil {
		t.Error("want error for unknown title")
	}
	if title, err := Title("fig4"); err != nil || !strings.Contains(title, "Figure 4") {
		t.Errorf("Title(fig4) = %q, %v", title, err)
	}
}

func TestFig3Shares(t *testing.T) {
	res := quick(t, "fig3")
	rows := res.Data.([]Fig3Row)
	var total float64
	var gpuShare, fanShare float64
	for _, r := range rows {
		total += r.Provisioned
		if r.Component == "gpus" {
			gpuShare = r.Share
		}
		if r.Component == "fans" {
			fanShare = r.Share
		}
	}
	if gpuShare < 0.45 || gpuShare > 0.55 {
		t.Errorf("GPU share = %v, want ~0.5", gpuShare)
	}
	if fanShare < 0.2 || fanShare > 0.3 {
		t.Errorf("fan share = %v, want ~0.25", fanShare)
	}
	if total > 6500 {
		t.Errorf("breakdown exceeds rated power: %v", total)
	}
}

func TestFig4Shapes(t *testing.T) {
	res := quick(t, "fig4")
	rows := res.Data.([]Fig4Row)
	byKey := map[string]Fig4Row{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Knob] = r
	}
	// Capping clips peaks without depressing troughs (Insight 3).
	for _, m := range []string{"GPT-NeoX-20B", "Flan-T5-XXL-11B", "RoBERTa-355M"} {
		base := byKey[m+"/No cap"]
		capped := byKey[m+"/325W cap"]
		locked := byKey[m+"/1.1GHz"]
		if capped.PeakTDP >= base.PeakTDP {
			t.Errorf("%s: cap did not clip peak", m)
		}
		if capped.TroughTDP < base.TroughTDP-0.02 {
			t.Errorf("%s: cap depressed trough (%v -> %v)", m, base.TroughTDP, capped.TroughTDP)
		}
		if locked.PeakTDP >= base.PeakTDP || locked.IterSec <= base.IterSec {
			t.Errorf("%s: lock should lower power and slow iterations", m)
		}
	}
	// Figure 4's trough ordering: RoBERTa ~0.75, NeoX ~0.5, FlanT5 ~0.2.
	if !(byKey["RoBERTa-355M/No cap"].TroughTDP > byKey["GPT-NeoX-20B/No cap"].TroughTDP &&
		byKey["GPT-NeoX-20B/No cap"].TroughTDP > byKey["Flan-T5-XXL-11B/No cap"].TroughTDP) {
		t.Error("trough depth ordering violated")
	}
	// Peaks reach TDP except RoBERTa (Insight 1).
	if byKey["RoBERTa-355M/No cap"].PeakTDP >= 1 {
		t.Error("RoBERTa should stay below TDP")
	}
	if byKey["GPT-NeoX-20B/No cap"].PeakTDP < 0.99 {
		t.Error("GPT-NeoX should reach TDP")
	}
	// Series present.
	for _, r := range rows {
		if r.Series.Len() == 0 {
			t.Fatalf("missing series for %s/%s", r.Model, r.Knob)
		}
	}
}

func TestFig5Superlinear(t *testing.T) {
	res := quick(t, "fig5")
	rows := res.Data.([]Fig5Row)
	for _, r := range rows {
		if !strings.Contains(r.Knob, "GHz") {
			continue
		}
		if r.PeakPowerReduction < r.PerfReduction-0.02 {
			t.Errorf("%s %s: power reduction %.3f below perf reduction %.3f",
				r.Model, r.Knob, r.PeakPowerReduction, r.PerfReduction)
		}
	}
}

func TestFig6TwoPhases(t *testing.T) {
	res := quick(t, "fig6")
	rows := res.Data.([]Fig6Row)
	if len(rows) != 5 {
		t.Fatalf("models = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.PromptPeak < 1.0 {
			t.Errorf("%s: prompt peak %.2f below TDP", r.Model, r.PromptPeak)
		}
		if r.TokenMean < 0.55 || r.TokenMean > 0.8 {
			t.Errorf("%s: token mean %.2f outside plateau band", r.Model, r.TokenMean)
		}
		if r.Series.Len() == 0 {
			t.Errorf("%s: no series", r.Model)
		}
	}
}

func TestFig7Correlations(t *testing.T) {
	res := quick(t, "fig7")
	data := res.Data.(Fig7Data)
	pSM, err := data.Prompt.At("power", "sm_activity")
	if err != nil {
		t.Fatal(err)
	}
	pMem, _ := data.Prompt.At("power", "mem_activity")
	if pSM < 0.5 {
		t.Errorf("prompt power~sm = %.2f, want strong", pSM)
	}
	if pMem > 0 {
		t.Errorf("prompt power~mem = %.2f, want negative", pMem)
	}
	tTensor, _ := data.Token.At("power", "tensor_activity")
	if tTensor > 0.6 {
		t.Errorf("token power~tensor = %.2f, want weak", tTensor)
	}
}

func TestFig8Trends(t *testing.T) {
	res := quick(t, "fig8")
	rows := res.Data.([]Fig8Row)
	type key struct{ model, dim string }
	series := map[key][]Fig8Row{}
	for _, r := range rows {
		k := key{r.Model, r.Dimension}
		series[k] = append(series[k], r)
	}
	for k, rs := range series {
		switch k.dim {
		case "input":
			if rs[len(rs)-1].PeakTDP <= rs[0].PeakTDP {
				t.Errorf("%s: peak power flat across inputs", k.model)
			}
		case "output":
			first, last := rs[0], rs[len(rs)-1]
			ratio := last.Latency / first.Latency
			want := float64(last.Value) / float64(first.Value)
			if ratio < want*0.7 || ratio > want*1.3 {
				t.Errorf("%s: latency ratio %.2f for output ratio %.2f (want ~linear)", k.model, ratio, want)
			}
			if last.PeakTDP != first.PeakTDP {
				t.Errorf("%s: output size changed peak power", k.model)
			}
		}
	}
}

func TestFig9ReactiveOvershoot(t *testing.T) {
	res := quick(t, "fig9")
	rows := res.Data.([]Fig9Row)
	byKnob := map[string]Fig9Row{}
	for _, r := range rows {
		byKnob[r.Knob] = r
	}
	// Reactive cap: prompt spikes still exceed the 325 W (0.81 TDP) level.
	if byKnob["325W cap"].PeakTDP <= 0.82 {
		t.Error("capped peak should overshoot (reactive limiter)")
	}
	// Frequency lock caps power from the start.
	if byKnob["1.1GHz"].PeakTDP >= byKnob["No cap"].PeakTDP {
		t.Error("lock should reduce the recorded peak")
	}
	if byKnob["1.1GHz"].LatencySec <= byKnob["No cap"].LatencySec {
		t.Error("lock should slow execution")
	}
}

func TestFig10Sweep(t *testing.T) {
	res := quick(t, "fig10")
	rows := res.Data.([]Fig10Row)
	// At 1100 MHz every subject reclaims far more power than it loses.
	n := 0
	for _, r := range rows {
		if r.ClockMHz != 1100 {
			continue
		}
		n++
		if r.PeakPowerReduction < 0.10 {
			t.Errorf("%s: only %.3f power reclaimed at 1.1GHz", r.Subject, r.PeakPowerReduction)
		}
		if r.PerfReduction > 0.12 {
			t.Errorf("%s: %.3f perf lost at 1.1GHz, want small", r.Subject, r.PerfReduction)
		}
	}
	if n < 9 { // 5 models + 4 BLOOM configs
		t.Errorf("sweep subjects at 1100 MHz = %d, want 9", n)
	}
}

func TestFig11Fleet(t *testing.T) {
	res := quick(t, "fig11")
	data := res.Data.(Fig11Data)
	if data.MeanGPUShare < 0.5 || data.MeanGPUShare > 0.7 {
		t.Errorf("GPU share of server power = %.2f, want ~0.6 (Figure 11)", data.MeanGPUShare)
	}
	if data.Correlation < 0.9 {
		t.Errorf("corr(GPU peak, server peak) = %.2f, want high", data.Correlation)
	}
	// GPU peak range narrower than server peak range relative to scale is a
	// paper observation; at least require plausible normalized values.
	for _, r := range data.Rows {
		if r.GPUPeakTDP < 0.5 || r.GPUPeakTDP > 1.3 {
			t.Errorf("server %d GPU peak = %.2f, implausible", r.Server, r.GPUPeakTDP)
		}
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"tab1", "tab2", "tab3", "tab5", "tab6"} {
		res := quick(t, id)
		if len(res.Text) < 50 {
			t.Errorf("%s: suspiciously short rendering", id)
		}
	}
}

func TestTab4ClusterContrast(t *testing.T) {
	res := quick(t, "tab4")
	data := res.Data.(Table4Data)
	if data.Training.PeakUtilization <= data.Inference.PeakUtilization {
		t.Error("training peak utilization should exceed inference (Table 4)")
	}
	if data.Training.MaxSpike2s < 2*data.Inference.MaxSpike2s {
		t.Errorf("training 2s spike %.3f should dwarf inference %.3f",
			data.Training.MaxSpike2s, data.Inference.MaxSpike2s)
	}
	trainHeadroom := 1 - data.Training.PeakUtilization
	inferHeadroom := 1 - data.Inference.PeakUtilization
	if inferHeadroom < 2*trainHeadroom {
		t.Errorf("inference headroom %.3f should dwarf training %.3f (Insight 9)",
			inferHeadroom, trainHeadroom)
	}
}

func TestFitMAPE(t *testing.T) {
	res := quick(t, "fit")
	data := res.Data.(FitData)
	if data.SimMAPE > 0.05 {
		t.Errorf("end-to-end MAPE = %.4f, want small (paper: <= 0.03 at full scale)", data.SimMAPE)
	}
	if data.ModelMAPE > 0.03 {
		t.Errorf("analytic MAPE = %.4f", data.ModelMAPE)
	}
	if data.Trained.Validate() != nil {
		t.Error("trained thresholds invalid")
	}
}

func TestClusterExperimentsQuick(t *testing.T) {
	// Quick-mode smoke + weak invariants; paper-scale assertions live in
	// EXPERIMENTS.md generated from default options.
	res := quick(t, "fig13")
	d13 := res.Data.(Fig13Data)
	if len(d13.Points) == 0 {
		t.Fatal("no fig13 points")
	}
	for _, p := range d13.Points {
		for _, pri := range []workload.Priority{workload.Low, workload.High} {
			if p.NormP50[pri] <= 0 || p.NormP99[pri] <= 0 {
				t.Fatalf("non-positive normalized latency at %+v", p)
			}
		}
	}

	res = quick(t, "fig14")
	d14 := res.Data.([]Fig14Point)
	if d14[0].NormThroughput[workload.Low] != 1 {
		t.Error("baseline throughput not normalized to 1")
	}

	res = quick(t, "fig15a")
	d15a := res.Data.([]Fig15aPoint)
	if len(d15a) < 2 {
		t.Fatal("fig15a too few points")
	}

	res = quick(t, "fig15b")
	d15b := res.Data.([]Fig15bPoint)
	if len(d15b) < 2 {
		t.Fatal("fig15b too few points")
	}

	res = quick(t, "fig16")
	d16 := res.Data.(Fig16Data)
	if d16.Oversub.Mean() <= d16.Default.Mean() {
		t.Error("+30% servers should raise utilization (Figure 16)")
	}
	if d16.Default5m.Peak() > d16.DefaultPeak2s {
		t.Error("5-min averaging should not raise the peak")
	}

	res = quick(t, "fig17")
	d17 := res.Data.([]Fig17Row)
	if len(d17) != 8 {
		t.Fatalf("fig17 rows = %d, want 8 (4 policies x 2 intensities)", len(d17))
	}
	// POLCA at default intensity is the normalization reference.
	if d17[0].Policy != "POLCA" || d17[0].NormP50[workload.Low] != 1 {
		t.Error("fig17 normalization reference wrong")
	}

	res = quick(t, "fig18")
	d18 := res.Data.([]Fig17Row)
	// +5% intensity can only increase brake pressure for a given policy.
	byPolicy := map[string][2]int{}
	for _, r := range d18 {
		v := byPolicy[r.Policy]
		if r.Intensity > 1 {
			v[1] = r.Brakes
		} else {
			v[0] = r.Brakes
		}
		byPolicy[r.Policy] = v
	}
	for p, v := range byPolicy {
		if v[1] < v[0] {
			t.Errorf("%s: +5%% intensity reduced brakes (%d -> %d)", p, v[0], v[1])
		}
	}
}

// TestFigRegretQuick pins the extension's invariants: the recorded day
// replays against its own configuration with zero divergence (the log is
// complete), no-cap genuinely diverges from a capping day and the
// divergence is priced, and every registered router policy covers every
// recorded pick.
func TestFigRegretQuick(t *testing.T) {
	res := quick(t, "figregret")
	data := res.Data.(FigRegretData)
	if data.Ticks == 0 || data.Routes == 0 {
		t.Fatalf("recorded day holds %d ticks, %d routes; the replay is vacuous", data.Ticks, data.Routes)
	}
	if data.SelfDiverged != 0 || data.RouteSelfDiverged != 0 {
		t.Fatalf("self replay diverged (%d ticks, %d routes): the log does not carry the policy's full input",
			data.SelfDiverged, data.RouteSelfDiverged)
	}
	byPolicy := map[string]FigRegretPolicyRow{}
	for _, r := range data.Policies {
		byPolicy[r.Policy] = r
		if r.Ticks != data.Ticks {
			t.Errorf("%s evaluated %d/%d ticks", r.Policy, r.Ticks, data.Ticks)
		}
	}
	if byPolicy["deployed"].Diverged != 0 {
		t.Error("deployed alternate diverged from its own log")
	}
	nocap := byPolicy["nocap"]
	if nocap.Diverged == 0 {
		t.Error("no-cap never diverged from a capping day")
	}
	if nocap.HeadroomKJ+nocap.SavedKJ == 0 {
		t.Error("no-cap divergence carries no priced regret")
	}
	if len(data.Routers) == 0 {
		t.Fatal("no router rows")
	}
	for _, r := range data.Routers {
		if r.Routes != data.Routes {
			t.Errorf("router %s covered %d/%d picks", r.Router, r.Routes, data.Routes)
		}
		if r.Router == "round-robin" && r.Diverged != 0 {
			t.Errorf("deployed router diverged on %d picks", r.Diverged)
		}
	}
}

func TestRunAllQuickAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	a, err := Run("fig6", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig6", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("experiment not deterministic")
	}
}
