package experiments

import (
	"strings"
	"testing"
)

// TestParallelMatchesSerial runs sweep experiments with a cold cache on the
// serial path and again on the worker pool, and requires byte-identical
// renderings: every simulation owns a private engine seeded from
// Options.Seed, so execution order must not leak into results.
func TestParallelMatchesSerial(t *testing.T) {
	for _, id := range []string{"fig13", "fig17"} {
		resetEvalCache()
		so := QuickOptions()
		so.Parallel = 1
		serial, err := Run(id, so)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}

		resetEvalCache()
		po := QuickOptions()
		po.Parallel = 4
		par, err := Run(id, po)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if serial.Text != par.Text {
			t.Errorf("%s: parallel rendering differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", id, serial.Text, par.Text)
		}
	}
}

// TestSimulateRowsDedup hands the pool eight copies of one spec; the
// singleflight cache must run the simulation once and share the pointer.
func TestSimulateRowsDedup(t *testing.T) {
	resetEvalCache()
	o := QuickOptions().normalize()
	o.Parallel = 8
	spec := rowSpec{policy: "nocap", added: 0, intensity: 1, days: 1}
	specs := make([]rowSpec, 8)
	for i := range specs {
		specs[i] = spec
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if m == nil {
			t.Fatalf("specs[%d] returned nil metrics", i)
		}
		if m != ms[0] {
			t.Errorf("specs[%d] not deduplicated: distinct metrics for identical specs", i)
		}
	}
}

// TestRunAllParallelMatchesSerial compares the full quick suite, stream and
// structured results, between the serial and the parallel executor.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice with a cold cache")
	}
	resetEvalCache()
	so := QuickOptions()
	so.Parallel = 1
	var serialStream strings.Builder
	serial, err := RunAll(so, &serialStream)
	if err != nil {
		t.Fatal(err)
	}

	resetEvalCache()
	po := QuickOptions()
	po.Parallel = 4
	var parStream strings.Builder
	par, err := RunAll(po, &parStream)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].ID != par[i].ID {
			t.Errorf("result %d: order differs (%s vs %s)", i, serial[i].ID, par[i].ID)
		}
		if serial[i].Text != par[i].Text {
			t.Errorf("%s: parallel Result.Text differs from serial", serial[i].ID)
		}
	}
	if serialStream.String() != parStream.String() {
		t.Error("RunAll stream not byte-identical between serial and parallel")
	}
}
