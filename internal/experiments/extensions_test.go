package experiments

import (
	"testing"
	"time"
)

func TestExtDtype(t *testing.T) {
	res := quick(t, "ext-dtype")
	rows := res.Data.([]DtypeRow)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 models x 3 datatypes)", len(rows))
	}
	byKey := map[string]DtypeRow{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.DType] = r
	}
	// §4.2: FP16 is fastest; FP32 and INT8 are slower.
	for _, m := range []string{"Llama2-13B", "Llama2-70B"} {
		if byKey[m+"/fp16"].Latency >= byKey[m+"/fp32"].Latency {
			t.Errorf("%s: FP16 not faster than FP32", m)
		}
		if byKey[m+"/fp16"].Latency >= byKey[m+"/int8"].Latency {
			t.Errorf("%s: FP16 not faster than INT8", m)
		}
	}
	// Quantization frees GPUs for the 70B model (4 -> 2), halving fleet
	// power (Insight 6).
	if byKey["Llama2-70B/fp32"].GPUs != 4 || byKey["Llama2-70B/fp16"].GPUs != 2 {
		t.Error("70B GPU counts wrong")
	}
	if byKey["Llama2-70B/fp16"].FleetW >= byKey["Llama2-70B/fp32"].FleetW {
		t.Error("fewer GPUs should draw less fleet power (Insight 6)")
	}
	// 13B fits one GPU at every datatype.
	for _, dt := range []string{"fp32", "fp16", "int8"} {
		if byKey["Llama2-13B/"+dt].GPUs != 1 {
			t.Errorf("13B at %s should fit one GPU", dt)
		}
	}
}

func TestExtPhase(t *testing.T) {
	res := quick(t, "ext-phase")
	rows := res.Data.([]PhaseRow)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 models", len(rows))
	}
	for _, r := range rows {
		c := r.Comparison
		if c.PhaseAwareSavings < 0.05 {
			t.Errorf("%s: savings %.3f too small", r.Model, c.PhaseAwareSavings)
		}
		if c.PhaseAware.Latency > c.UniformLow.Latency {
			t.Errorf("%s: phase-aware slower than uniform lock", r.Model)
		}
	}
}

func TestExtSplit(t *testing.T) {
	res := quick(t, "ext-split")
	rows := res.Data.([]SplitRow)
	for _, r := range rows {
		rep := r.Report
		if rep.PoolRatio <= 1 {
			t.Errorf("%s: token pool should dominate (ratio %.1f)", r.Model, rep.PoolRatio)
		}
		if rep.LatencyOverhead > 0.10 {
			t.Errorf("%s: latency overhead %.3f too large", r.Model, rep.LatencyOverhead)
		}
		if rep.PowerSavings <= 0 {
			t.Errorf("%s: no fleet power savings", r.Model)
		}
	}
}

func TestExtAware(t *testing.T) {
	res := quick(t, "ext-aware")
	data := res.Data.(AwareData)
	// The planned LP deep cap must be at least as deep as the static one.
	if data.PlannedFreqs[1] > data.StaticFreqs[1] {
		t.Errorf("planned LP deep %v shallower than static %v", data.PlannedFreqs[1], data.StaticFreqs[1])
	}
	if data.Static.PeakUtil <= 0 || data.Aware.PeakUtil <= 0 {
		t.Fatal("missing metrics")
	}
}

func TestExtSwing(t *testing.T) {
	res := quick(t, "ext-swing")
	rows := res.Data.([]SwingRow)
	byName := map[string]SwingRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	base := byName["baseline (synchronous)"].Summary
	over := byName["overlapped comm + lazy updates"].Summary
	lock := byName["row frequency lock 1.1GHz"].Summary
	capd := byName["row power cap 325W"].Summary
	// §5.1: overlapping computation and communication smooths the swings.
	if over.MaxSpike2s > 0.5*base.MaxSpike2s {
		t.Errorf("overlap barely helped: %.3f vs %.3f", over.MaxSpike2s, base.MaxSpike2s)
	}
	// Frequency locking reduces both peak and swing, at a throughput cost
	// not visible here.
	if lock.PeakUtilization >= base.PeakUtilization || lock.MaxSpike2s >= base.MaxSpike2s {
		t.Error("frequency lock did not reduce peak/swing")
	}
	// Capping clips peaks.
	if capd.PeakUtilization >= base.PeakUtilization {
		t.Error("capping did not clip the training peak")
	}
}

func TestExtHysteresis(t *testing.T) {
	res := quick(t, "ext-hysteresis")
	rows := res.Data.([]HysteresisRow)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Thinner margins flap more: strictly more OOB commands than the
	// widest margin.
	if rows[0].LockCommands <= rows[len(rows)-1].LockCommands {
		t.Errorf("thin margin (%d cmds) should out-traffic wide margin (%d cmds)",
			rows[0].LockCommands, rows[len(rows)-1].LockCommands)
	}
}

func TestExtOOB(t *testing.T) {
	res := quick(t, "ext-oob")
	rows := res.Data.([]OOBRow)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Faster actuation permits a higher trained T2 and fewer brakes.
	if !(rows[0].SafeT2 > rows[1].SafeT2 && rows[1].SafeT2 > rows[2].SafeT2) {
		t.Errorf("trainable T2 not monotone in OOB latency: %+v", rows)
	}
	if rows[0].Latency != 5*time.Second {
		t.Error("latency order wrong")
	}
	if rows[0].Brakes > rows[2].Brakes {
		t.Errorf("faster OOB should not brake more: %d vs %d", rows[0].Brakes, rows[2].Brakes)
	}
}

func TestExtBatch(t *testing.T) {
	res := quick(t, "ext-batch")
	data := res.Data.(BatchData)
	if len(data.Rows) < 3 {
		t.Fatalf("rows = %d", len(data.Rows))
	}
	// Throughput and efficiency grow with batch; peak power grows too.
	first, last := data.Rows[0], data.Rows[len(data.Rows)-1]
	if last.TokensSec <= first.TokensSec || last.TokensPerKJ <= first.TokensPerKJ {
		t.Error("batching should raise throughput and efficiency")
	}
	if last.PeakTDP <= first.PeakTDP {
		t.Error("batching should raise peak power (the knob's cost)")
	}
	if data.BestUnbounded < data.BestUnderBudget {
		t.Error("unconstrained best cannot be smaller than budgeted best")
	}
}

func TestExtSeeds(t *testing.T) {
	res := quick(t, "ext-seeds")
	rows := res.Data.([]SeedRow)
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PeakUtil <= 0 || r.LPp99 <= 0 {
			t.Errorf("seed %d: implausible metrics %+v", r.Seed, r)
		}
	}
}

func TestExtH100(t *testing.T) {
	res := quick(t, "ext-h100")
	rows := res.Data.([]H100Row)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	a100, h100fp16, h100fp8 := rows[0], rows[1], rows[2]
	if h100fp16.TokensSec <= a100.TokensSec {
		t.Error("H100 should outpace A100 (3.3 TB/s HBM3)")
	}
	if h100fp8.GPUs != 4 {
		t.Errorf("FP8 should halve the GPU count: %d", h100fp8.GPUs)
	}
	if h100fp8.TokensPerKJ <= h100fp16.TokensPerKJ {
		t.Error("FP8 on half the GPUs should be more energy efficient")
	}
	if h100fp8.FleetPeakW >= h100fp16.FleetPeakW {
		t.Error("FP8 fleet peak should be lower (fewer GPUs)")
	}
}

func TestExtTrainOversub(t *testing.T) {
	res := quick(t, "ext-train-oversub")
	rows := res.Data.([]TrainOversubRow)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At +0% the row fits its budget without meaningful capping.
	if rows[0].OverBudget > 0.01 {
		t.Errorf("baseline training row over budget %.3f of the time", rows[0].OverBudget)
	}
	// Oversubscription monotonically worsens the overload and the
	// required capping gets deeper (the §5.1 argument).
	for i := 1; i < len(rows); i++ {
		if rows[i].OverBudget < rows[i-1].OverBudget {
			t.Errorf("over-budget fraction not monotone: %+v", rows)
		}
	}
	last := rows[len(rows)-1]
	if last.OverBudget < 0.3 {
		t.Errorf("+30%% training row should be over budget much of the time: %.3f", last.OverBudget)
	}
	if last.CapWatts > 0 && last.Slowdown < 0.08 {
		t.Errorf("+30%% training slowdown %.3f implausibly small", last.Slowdown)
	}
}

func TestExtLadder(t *testing.T) {
	res := quick(t, "ext-ladder")
	rows := res.Data.([]LadderRow)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PeakUtil <= 0 || r.LPp99 <= 0 {
			t.Errorf("%s: implausible metrics %+v", r.Policy, r)
		}
	}
}
