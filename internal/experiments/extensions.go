package experiments

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/disagg"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/polca"
	"polca/internal/profiler"
	"polca/internal/sim"
	"polca/internal/trace"
	"polca/internal/workload"
)

func init() {
	register("ext-dtype", "§4.2: Datatype (quantization) impact on power and performance", runExtDtype)
	register("ext-phase", "§5.2: Phase-aware frequency scaling", runExtPhase)
	register("ext-split", "§5.2: Prompt/token disaggregation (phase splitting)", runExtSplit)
	register("ext-aware", "§6.7: Workload-aware POLCA frequencies", runExtAware)
	register("ext-swing", "§5.1: Mitigating training power swings", runExtSwing)
	register("ext-hysteresis", "Ablation: POLCA uncap-margin (hysteresis) sweep", runExtHysteresis)
	register("ext-oob", "Ablation: OOB actuation latency sensitivity", runExtOOB)
}

// --- §4.2 datatypes ---

// DtypeRow is one (model, datatype) measurement.
type DtypeRow struct {
	Model   string
	DType   string
	GPUs    int
	PeakTDP float64 // per GPU
	Latency float64 // seconds
	FleetW  float64 // peak power across all serving GPUs
	EnergyJ float64 // per request across all GPUs
}

func runExtDtype(o Options) (Result, error) {
	models := []string{"Llama2-13B", "Llama2-70B"}
	var rows []DtypeRow
	for _, name := range models {
		m := llm.MustByName(name)
		for _, dt := range []llm.DType{llm.FP32, llm.FP16, llm.INT8} {
			tp := plan.GPUsForDType(m, dt, 80)
			if name == "Llama2-70B" && dt == llm.INT8 {
				tp = 2 // paper footnote: activations/KV preclude one GPU
			}
			cfg := plan.InferenceConfig{Model: m, DType: dt, TensorParallel: tp, BatchSize: 1, InputTokens: 1024, OutputTokens: 128}
			mm, err := profiler.MeasureInference(cfg, profiler.Knob{})
			if err != nil {
				return Result{}, err
			}
			tdp := 400.0
			rows = append(rows, DtypeRow{
				Model: name, DType: dt.String(), GPUs: tp,
				PeakTDP: mm.PeakTDP,
				Latency: mm.Latency.Seconds(),
				FleetW:  mm.PeakTDP * tdp * float64(tp),
				EnergyJ: mm.MeanTDP * tdp * float64(tp) * mm.Latency.Seconds(),
			})
		}
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Model, r.DType, fmt.Sprintf("%d", r.GPUs), f2(r.PeakTDP),
			f2(r.Latency), fmt.Sprintf("%.0f", r.FleetW), fmt.Sprintf("%.0f", r.EnergyJ),
		})
	}
	return Result{
		Text: table([]string{"Model", "DType", "GPUs", "Peak/TDP (per GPU)", "Latency (s)", "Fleet peak (W)", "Energy (J)"}, cells),
		Data: rows,
	}, nil
}

// --- §5.2 phase-aware scaling ---

// PhaseRow is one model's phase-aware comparison.
type PhaseRow struct {
	Model      string
	Comparison disagg.PhaseComparison
}

func runExtPhase(o Options) (Result, error) {
	var rows []PhaseRow
	for _, m := range llm.InferenceModels() {
		cfg := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 512}
		cmp, err := disagg.ComparePhaseAware(cfg, 1110)
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, PhaseRow{Model: m.Name, Comparison: cmp})
	}
	var cells [][]string
	for _, r := range rows {
		c := r.Comparison
		cells = append(cells, []string{
			r.Model,
			pct(c.PhaseAwareSavings),
			pct(c.PhaseAwareSlowdown),
			pct(float64(c.UniformLow.Latency)/float64(c.Baseline.Latency) - 1),
			pct(c.RecoveredLatency),
		})
	}
	return Result{
		Text: table([]string{"Model", "Mean power saved", "Phase-aware slowdown", "Uniform-lock slowdown", "Slowdown recovered"}, cells),
		Data: rows,
	}, nil
}

// --- §5.2 disaggregation ---

// SplitRow is one disaggregation analysis.
type SplitRow struct {
	Model  string
	Report disagg.SplitReport
}

func runExtSplit(o Options) (Result, error) {
	var rows []SplitRow
	for _, name := range []string{"Llama2-70B", "BLOOM-176B"} {
		cfg := disagg.SplitConfig{
			Workload: plan.InferenceConfig{
				Model: llm.MustByName(name), DType: llm.FP16,
				BatchSize: 1, InputTokens: 2048, OutputTokens: 512,
			},
			TokenClockMHz:    1110,
			InterconnectGBps: 25,
		}
		rep, err := disagg.EvaluateSplit(cfg)
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, SplitRow{Model: name, Report: rep})
	}
	var cells [][]string
	for _, r := range rows {
		rep := r.Report
		cells = append(cells, []string{
			r.Model,
			fmt.Sprintf("1:%.1f", rep.PoolRatio),
			fmt.Sprintf("%.0f ms", rep.TransferSeconds*1000),
			pct(rep.LatencyOverhead),
			pct(rep.PowerSavings),
		})
	}
	return Result{
		Text: table([]string{"Model", "Prompt:token pool", "KV handoff", "Latency overhead", "Fleet power saved"}, cells),
		Data: rows,
	}, nil
}

// --- §6.7 workload-aware POLCA ---

// AwareSummary condenses one policy's run for the comparison.
type AwareSummary struct {
	PeakUtil float64
	MeanUtil float64
	Brakes   int
	LPp99    float64
	HPp99    float64
}

// AwareData compares the static and workload-aware policies on the row.
type AwareData struct {
	StaticFreqs  [3]float64
	PlannedFreqs [3]float64
	Static       AwareSummary
	Aware        AwareSummary
}

func runExtAware(o Options) (Result, error) {
	aware, err := polca.NewWorkloadAware(polca.DefaultConfig(),
		llm.MustByName("BLOOM-176B"), llm.FP16, workload.Table6())
	if err != nil {
		return Result{}, err
	}
	days := o.SweepDays

	runWith := func(ctrl cluster.Controller) (*cluster.Metrics, error) {
		cfg := cluster.Production()
		cfg.BaseServers = o.RowServers
		cfg.AddedFraction = 0.30
		cfg.Seed = o.Seed
		ref := trace.ProductionInference().Reference(horizonFromDays(days), newSeededRand(o.Seed, "ref"))
		arr, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
		if err != nil {
			return nil, err
		}
		eng := sim.New(o.Seed)
		row, err := cluster.NewRow(eng, cfg, ctrl)
		if err != nil {
			return nil, err
		}
		return row.Run(arr.Scale(1.30)), nil
	}
	static, err := runWith(polca.New(polca.DefaultConfig()))
	if err != nil {
		return Result{}, err
	}
	awareM, err := runWith(aware)
	if err != nil {
		return Result{}, err
	}
	def := polca.DefaultConfig()
	lpB, lpD, hp := aware.Frequencies()
	summarize := func(m *cluster.Metrics) AwareSummary {
		return AwareSummary{
			PeakUtil: m.Util.Peak(), MeanUtil: m.Util.Mean(), Brakes: m.BrakeEvents,
			LPp99: latp(m, workload.Low, 99), HPp99: latp(m, workload.High, 99),
		}
	}
	data := AwareData{
		StaticFreqs:  [3]float64{def.LPBaseMHz, def.LPDeepMHz, def.HPCapMHz},
		PlannedFreqs: [3]float64{lpB, lpD, hp},
		Static:       summarize(static),
		Aware:        summarize(awareM),
	}
	row := func(name string, m *cluster.Metrics) []string {
		return []string{
			name, pct(m.Util.Peak()), pct(m.Util.Mean()), fmt.Sprintf("%d", m.BrakeEvents),
			f2(latp(m, workload.Low, 99)), f2(latp(m, workload.High, 99)),
		}
	}
	text := fmt.Sprintf("Static Table 5 frequencies:   T1=%.0f T2lp=%.0f T2hp=%.0f MHz\n", data.StaticFreqs[0], data.StaticFreqs[1], data.StaticFreqs[2]) +
		fmt.Sprintf("Workload-aware planned:       T1=%.0f T2lp=%.0f T2hp=%.0f MHz\n\n", lpB, lpD, hp) +
		table([]string{"Policy", "Peak util", "Mean util", "Brakes", "LP p99 (s)", "HP p99 (s)"},
			[][]string{row("POLCA (static)", static), row("POLCA (workload-aware)", awareM)})
	return Result{Text: text, Data: data}, nil
}

// --- §5.1 training swing mitigation ---

// SwingRow is one mitigation strategy's outcome.
type SwingRow struct {
	Strategy string
	Summary  cluster.ClusterComparison
}

func runExtSwing(o Options) (Result, error) {
	horizon := 2 * time.Hour
	if o.Quick {
		horizon = 30 * time.Minute
	}
	base := cluster.ProductionTraining()

	// Overlapped communication: lazy weight updates keep GPUs busier
	// through synchronization (higher SyncOverlap, shorter sync).
	overlapped := cluster.ProductionTraining()
	for i := range overlapped.Jobs {
		p := &overlapped.Jobs[i].Profile
		p.SyncOverlap = 0.75
		p.SyncSeconds *= 0.5
	}

	// Frequency locking the whole row (the §5.1 blunt instrument).
	locked := cluster.ProductionTraining()
	locked.LockClockMHz = 1100

	// Power capping (clips the peaks, Insight 3).
	capped := cluster.ProductionTraining()
	capped.PowerCapWatts = 325

	strategies := []struct {
		name string
		cfg  cluster.TrainingRowConfig
	}{
		{"baseline (synchronous)", base},
		{"overlapped comm + lazy updates", overlapped},
		{"row frequency lock 1.1GHz", locked},
		{"row power cap 325W", capped},
	}
	var rows []SwingRow
	for _, s := range strategies {
		util, err := cluster.SimulateTraining(s.cfg, horizon, newSeededRand(o.Seed, "swing/"+s.name))
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, SwingRow{Strategy: s.name, Summary: cluster.SummarizeUtilization(s.name, util)})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Strategy, pct(r.Summary.PeakUtilization), pct(r.Summary.MeanUtilization), pct(r.Summary.MaxSpike2s),
		})
	}
	return Result{
		Text: table([]string{"Strategy", "Peak util", "Mean util", "Max 2s swing"}, cells),
		Data: rows,
	}, nil
}

// --- ablations ---

// HysteresisRow is one uncap-margin setting's outcome.
type HysteresisRow struct {
	Margin       float64
	LockCommands int
	Brakes       int
	PeakUtil     float64
}

func runExtHysteresis(o Options) (Result, error) {
	margins := []float64{0.01, 0.05, 0.10}
	var rows []HysteresisRow
	for _, margin := range margins {
		cfg := polca.DefaultConfig()
		cfg.UncapMargin = margin
		m, err := simulateRowWith(o, cfg, 0.30, o.SweepDays)
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, HysteresisRow{
			Margin: margin, LockCommands: m.LockCommands,
			Brakes: m.BrakeEvents, PeakUtil: m.Util.Peak(),
		})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			pct(r.Margin), fmt.Sprintf("%d", r.LockCommands), fmt.Sprintf("%d", r.Brakes), pct(r.PeakUtil),
		})
	}
	text := table([]string{"Uncap margin", "OOB commands", "Brakes", "Peak util"}, cells) +
		"\nA thin margin flaps between capping and uncapping (more OOB traffic);\nthe paper selects 5% from such sweeps (§6.3).\n"
	return Result{Text: text, Data: rows}, nil
}

// OOBRow is one actuation-latency setting's outcome.
type OOBRow struct {
	Latency  time.Duration
	Brakes   int
	PeakUtil float64
	// SafeT2 is the threshold the training procedure would pick at this
	// latency: faster actuation permits a higher T2 (§5's call for better
	// OOB interfaces).
	SafeT2 float64
}

func runExtOOB(o Options) (Result, error) {
	latencies := []time.Duration{5 * time.Second, 40 * time.Second, 80 * time.Second}
	ref := trace.ProductionInference().Reference(horizonFromDays(o.TrainDays), newSeededRand(o.Seed, "ref"))
	var rows []OOBRow
	for _, lat := range latencies {
		cfg := cluster.Production()
		cfg.BaseServers = o.RowServers
		cfg.AddedFraction = 0.30
		cfg.OOBLatency = lat
		cfg.Seed = o.Seed
		arr, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
		if err != nil {
			return Result{}, err
		}
		horizon := horizonFromDays(o.SweepDays)
		full := trace.ProductionInference().Reference(horizon, newSeededRand(o.Seed, "ref"))
		arr, err = trace.FitArrivals(full, cfg.Shape(), 5*time.Minute)
		if err != nil {
			return Result{}, err
		}
		eng := sim.New(o.Seed)
		row, err := cluster.NewRow(eng, cfg, polca.New(polca.DefaultConfig()))
		if err != nil {
			return Result{}, err
		}
		m := row.Run(arr.Scale(1.30))
		rows = append(rows, OOBRow{
			Latency: lat, Brakes: m.BrakeEvents, PeakUtil: m.Util.Peak(),
			SafeT2: polca.TrainThresholds(ref, cfg.BrakeUtil, lat).T2,
		})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Latency.String(), fmt.Sprintf("%d", r.Brakes), pct(r.PeakUtil), pct(r.SafeT2),
		})
	}
	text := table([]string{"OOB latency", "Brakes", "Peak util", "Trainable T2"}, cells) +
		"\nFaster, standardized OOB interfaces (§5) raise the safe T2 and shrink\nthe window in which power can run away before a cap lands.\n"
	return Result{Text: text, Data: rows}, nil
}

// simulateRowWith runs the row with a custom POLCA config at the given
// oversubscription.
func simulateRowWith(o Options, pc polca.Config, added float64, days int) (*cluster.Metrics, error) {
	cfg := cluster.Production()
	cfg.BaseServers = o.RowServers
	cfg.AddedFraction = added
	cfg.Seed = o.Seed
	ref := trace.ProductionInference().Reference(horizonFromDays(days), newSeededRand(o.Seed, "ref"))
	arr, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
	if err != nil {
		return nil, err
	}
	eng := sim.New(o.Seed)
	row, err := cluster.NewRow(eng, cfg, polca.New(pc))
	if err != nil {
		return nil, err
	}
	return row.Run(arr.Scale(1 + added)), nil
}
