package experiments

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/profiler"
	"polca/internal/workload"
)

func init() {
	register("ext-batch", "Insight 5: batching as a power management knob", runExtBatch)
	register("ext-seeds", "Robustness: POLCA at +30% across seeds", runExtSeeds)
}

// BatchRow is one batch-size operating point.
type BatchRow struct {
	Batch     int
	PeakTDP   float64
	TokensSec float64 // aggregate generated tokens per second
	// TokensPerKJ is the energy efficiency (tokens per kilojoule).
	TokensPerKJ float64
}

// BatchData is the sweep plus the chosen operating points.
type BatchData struct {
	Rows []BatchRow
	// BestUnderBudget is the highest-throughput batch whose peak power
	// stays under the budget (here: TDP, i.e. no overshoot headroom).
	BestUnderBudget int
	// BestUnbounded is the highest-throughput batch overall.
	BestUnbounded int
}

func runExtBatch(o Options) (Result, error) {
	batches := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		batches = []int{1, 4, 16}
	}
	bloom := llm.MustByName("BLOOM-176B")
	var data BatchData
	bestBudget, bestAll := -1.0, -1.0
	for _, b := range batches {
		cfg := plan.InferenceConfig{Model: bloom, DType: llm.FP16, BatchSize: b, InputTokens: 1024, OutputTokens: 256}
		m, err := profiler.MeasureInference(cfg, profiler.Knob{})
		if err != nil {
			return Result{}, err
		}
		tokens := float64(b) * 256
		tps := tokens / m.Latency.Seconds()
		energyKJ := m.MeanTDP * 400 * m.Latency.Seconds() / 1000
		row := BatchRow{Batch: b, PeakTDP: m.PeakTDP, TokensSec: tps, TokensPerKJ: tokens / energyKJ}
		data.Rows = append(data.Rows, row)
		if tps > bestAll {
			bestAll = tps
			data.BestUnbounded = b
		}
		if m.PeakTDP <= 1.0 && tps > bestBudget {
			bestBudget = tps
			data.BestUnderBudget = b
		}
	}
	var cells [][]string
	for _, r := range data.Rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Batch), f2(r.PeakTDP), fmt.Sprintf("%.1f", r.TokensSec), fmt.Sprintf("%.0f", r.TokensPerKJ),
		})
	}
	text := table([]string{"Batch", "Peak/TDP", "Tokens/s", "Tokens/kJ"}, cells)
	text += fmt.Sprintf("\nBatching trades peak power for throughput and efficiency (Insight 5):\n"+
		"  best batch under a TDP peak-power budget: %d\n"+
		"  best batch unconstrained:                 %d\n",
		data.BestUnderBudget, data.BestUnbounded)
	return Result{Text: text, Data: data}, nil
}

// SeedRow is one seed's +30% POLCA outcome.
type SeedRow struct {
	Seed     int64
	Brakes   int
	PeakUtil float64
	LPp99    float64
	HPp99    float64
}

func runExtSeeds(o Options) (Result, error) {
	seeds := []int64{1, 2, 3, 4, 5}
	if o.Quick {
		seeds = []int64{1, 2}
	}
	var rows []SeedRow
	for _, seed := range seeds {
		so := o
		so.Seed = seed
		m, err := simulateRow(so, rowSpec{policy: "polca", added: 0.30, intensity: 1, days: o.SweepDays})
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, SeedRow{
			Seed: seed, Brakes: m.BrakeEvents, PeakUtil: m.Util.Peak(),
			LPp99: latp(m, workload.Low, 99), HPp99: latp(m, workload.High, 99),
		})
	}
	var cells [][]string
	zeroBrakes := 0
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Seed), fmt.Sprintf("%d", r.Brakes), pct(r.PeakUtil),
			fmt.Sprintf("%.1f", r.LPp99), fmt.Sprintf("%.1f", r.HPp99),
		})
		if r.Brakes == 0 {
			zeroBrakes++
		}
	}
	text := table([]string{"Seed", "Brakes", "Peak util", "LP p99 (s)", "HP p99 (s)"}, cells)
	text += fmt.Sprintf("\n%d/%d seeds complete +30%% oversubscription without a power brake.\n", zeroBrakes, len(rows))
	return Result{Text: text, Data: rows}, nil
}

func init() {
	register("ext-h100", "§4.2/§6.7 forward look: H100 with the FP8 transformer engine", runExtH100)
}

// H100Row is one (GPU generation, datatype) serving point for BLOOM-176B.
type H100Row struct {
	GPU           string
	DType         string
	GPUs          int
	Latency       float64
	TokensSec     float64
	FleetPeakW    float64
	TokensPerKJ   float64
	ServerRatedKW float64
}

func runExtH100(o Options) (Result, error) {
	bloom := llm.MustByName("BLOOM-176B")
	points := []struct {
		spec  gpu.Spec
		dt    llm.DType
		tp    int
		rated float64
	}{
		{gpu.A100SXM80GB(), llm.FP16, 8, 6.5},  // the paper's deployment
		{gpu.H100SXM80GB(), llm.FP16, 8, 10.2}, // same sharding, Hopper
		{gpu.H100SXM80GB(), llm.FP8, 4, 10.2},  // FP8 halves the footprint
	}
	var rows []H100Row
	for _, pt := range points {
		cfg := plan.InferenceConfig{
			Model: bloom, DType: pt.dt, TensorParallel: pt.tp,
			BatchSize: 1, InputTokens: 2048, OutputTokens: 256,
			NVLinkGBps: pt.spec.NVLinkGBps,
		}
		m, err := profiler.MeasureInferenceOn(pt.spec, cfg, profiler.Knob{})
		if err != nil {
			return Result{}, err
		}
		tokens := 256.0
		energyKJ := m.MeanTDP * pt.spec.TDPWatts * float64(pt.tp) * m.Latency.Seconds() / 1000
		rows = append(rows, H100Row{
			GPU: pt.spec.Name, DType: pt.dt.String(), GPUs: pt.tp,
			Latency:       m.Latency.Seconds(),
			TokensSec:     m.TokensSec,
			FleetPeakW:    m.PeakTDP * pt.spec.TDPWatts * float64(pt.tp),
			TokensPerKJ:   tokens / energyKJ,
			ServerRatedKW: pt.rated,
		})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.GPU, r.DType, fmt.Sprintf("%d", r.GPUs), f2(r.Latency),
			fmt.Sprintf("%.1f", r.TokensSec), fmt.Sprintf("%.0f", r.FleetPeakW),
			fmt.Sprintf("%.0f", r.TokensPerKJ),
		})
	}
	text := table([]string{"GPU", "DType", "GPUs", "Latency (s)", "Tokens/s", "Fleet peak (W)", "Tokens/kJ"}, cells)
	text += "\nDGX-H100 racks are denser (8U, 10.2 kW vs 6U, 6.5 kW, §6.7): per-request\n" +
		"power rises even as FP8 halves the GPU count — power, not space, stays\n" +
		"the binding constraint, and POLCA-style oversubscription matters more.\n"
	return Result{Text: text, Data: rows}, nil
}

func init() {
	register("ext-train-oversub", "§5.1: Why training clusters resist power oversubscription", runExtTrainOversub)
}

// TrainOversubRow is one training-row oversubscription point.
type TrainOversubRow struct {
	Added        float64
	UncappedPeak float64 // fraction of the tightened budget
	OverBudget   float64 // fraction of samples above the budget, uncapped
	CapWatts     float64 // smallest per-GPU cap that fits the budget (0 = none found)
	Slowdown     float64 // mean training-iteration stretch under that cap
}

func runExtTrainOversub(o Options) (Result, error) {
	horizon := time.Hour
	if o.Quick {
		horizon = 20 * time.Minute
	}
	addeds := []float64{0, 0.10, 0.20, 0.30}
	caps := []float64{400, 360, 325, 290, 260, 230}
	var rows []TrainOversubRow
	for _, added := range addeds {
		// More servers under the same budget = a tighter per-server slice.
		base := cluster.ProductionTraining()
		base.ProvisionedPerServerWatts /= 1 + added

		util, err := cluster.SimulateTraining(base, horizon, newSeededRand(o.Seed, fmt.Sprintf("to/%v", added)))
		if err != nil {
			return Result{}, err
		}
		over := 0
		for _, u := range util.Values {
			if u > 1 {
				over++
			}
		}
		row := TrainOversubRow{
			Added:        added,
			UncappedPeak: util.Peak(),
			OverBudget:   float64(over) / float64(util.Len()),
		}
		// Smallest cap that keeps the row inside its budget.
		for _, cap := range caps {
			capped := base
			capped.PowerCapWatts = cap
			cu, err := cluster.SimulateTraining(capped, horizon/2, newSeededRand(o.Seed, fmt.Sprintf("toc/%v/%v", added, cap)))
			if err != nil {
				return Result{}, err
			}
			if cu.Peak() <= 1.0 {
				row.CapWatts = cap
				row.Slowdown = trainingSlowdownAt(cap)
				break
			}
		}
		rows = append(rows, row)
	}
	var cells [][]string
	for _, r := range rows {
		capStr := "none fits"
		if r.CapWatts > 0 {
			capStr = fmt.Sprintf("%.0f W", r.CapWatts)
		}
		cells = append(cells, []string{
			pct(r.Added), pct(r.UncappedPeak), pct(r.OverBudget), capStr, pct(r.Slowdown),
		})
	}
	text := table([]string{"Added", "Uncapped peak", "Time over budget", "Required cap", "Training slowdown"}, cells)
	text += "\nEvery added server pushes the whole training row into sustained\n" +
		"power-capped operation (§5.1) — unlike inference, there is no\n" +
		"statistical multiplexing to absorb it, so the provisioned compute\n" +
		"is simply wasted.\n"
	return Result{Text: text, Data: rows}, nil
}

// trainingSlowdownAt measures the mean iteration stretch of the three
// training profiles under a per-GPU power cap.
func trainingSlowdownAt(capWatts float64) float64 {
	var sum float64
	var n int
	for _, cfg := range plan.TrainingProfiles() {
		base, err := profiler.RunTraining(cfg, profiler.Knob{}, 2)
		if err != nil {
			continue
		}
		capped, err := profiler.RunTraining(cfg, profiler.Knob{PowerCapWatts: capWatts}, 2)
		if err != nil {
			continue
		}
		sum += capped.IterSeconds/base.IterSeconds - 1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func init() {
	register("ext-ladder", "§6.3 extension: a finer three-rung capping ladder", runExtLadder)
}

// LadderRow compares a policy variant at +30% oversubscription.
type LadderRow struct {
	Policy   string
	Brakes   int
	PeakUtil float64
	MeanUtil float64
	LPp99    float64
	HPp99    float64
	Commands int
}

func runExtLadder(o Options) (Result, error) {
	variants := []struct{ id, label string }{
		{"polca", "dual-threshold (paper)"},
		{"ladder3", "three-rung ladder"},
	}
	var rows []LadderRow
	for _, v := range variants {
		m, err := simulateRow(o, rowSpec{policy: v.id, added: 0.30, intensity: 1, days: o.SweepDays})
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, LadderRow{
			Policy: v.label, Brakes: m.BrakeEvents,
			PeakUtil: m.Util.Peak(), MeanUtil: m.Util.Mean(),
			LPp99: latp(m, workload.Low, 99), HPp99: latp(m, workload.High, 99),
			Commands: m.LockCommands,
		})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy, fmt.Sprintf("%d", r.Brakes), pct(r.PeakUtil), pct(r.MeanUtil),
			f2(r.LPp99), f2(r.HPp99), fmt.Sprintf("%d", r.Commands),
		})
	}
	text := table([]string{"Policy", "Brakes", "Peak util", "Mean util", "LP p99 (s)", "HP p99 (s)", "OOB cmds"}, cells)
	text += "\nA finer ladder engages earlier with gentler caps (§6.3's 'easily\n" +
		"extended to support more priorities'), trading more OOB actuation\n" +
		"traffic for smoother escalation.\n"
	return Result{Text: text, Data: rows}, nil
}
