package experiments

import (
	"fmt"
	"strings"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/stats"
	"polca/internal/workload"
)

func init() {
	register("figserve", "Extension: slot vs request-level serving — power shape, token latencies, threshold sensitivity", runFigServe)
}

// FigServePower summarizes one run's power distribution.
type FigServePower struct {
	Backend string // "slot" or "serve"
	Policy  string
	Mean    float64
	P50     float64
	P90     float64
	P99     float64
	Peak2s  float64
	Brakes  int
}

// FigServeClass is one Table 6 class's token latencies and energy cost
// under the serving backend.
type FigServeClass struct {
	Class         string
	TTFTp99NoCap  float64
	TTFTp99POLCA  float64
	TBTp99NoCapMS float64
	TBTp99POLCAMS float64
	JPerTokNoCap  float64
	JPerTokPOLCA  float64
}

// FigServeSense is one POLCA threshold combination's serve-mode outcome.
type FigServeSense struct {
	T1, T2      float64
	Brakes      int
	Preemptions int
	TTFTp99     float64 // aggregate across classes
}

// FigServeData carries the whole comparison.
type FigServeData struct {
	Power       []FigServePower
	Classes     []FigServeClass
	Preemptions int // serve/POLCA run, default thresholds
	Batches     int
	KVHighWater float64
	Sensitivity []FigServeSense
}

// runFigServe compares the slot model against the request-level serving
// backend under the same arrivals: the power distribution each exposes to
// POLCA, the token-level latencies (TTFT/TBT) only the serving backend can
// measure, and how sensitive those latencies are to the capping thresholds.
func runFigServe(o Options) (Result, error) {
	const router = "least-queue"
	base := rowSpec{added: 0.30, intensity: 1, days: o.SweepDays}
	slotNoCap, slotPOLCA, srvNoCap, srvPOLCA := base, base, base, base
	slotNoCap.policy, slotPOLCA.policy = "nocap", "polca"
	srvNoCap.policy, srvPOLCA.policy = "nocap", "polca"
	srvNoCap.serveRouter, srvPOLCA.serveRouter = router, router
	specs := []rowSpec{slotNoCap, slotPOLCA, srvNoCap, srvPOLCA}

	combos := [][2]float64{{0.75, 0.85}, {0.85, 0.95}}
	if o.Quick {
		combos = nil
	}
	for _, c := range combos {
		s := srvPOLCA
		s.t1, s.t2 = c[0], c[1]
		specs = append(specs, s)
	}

	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}

	data := FigServeData{}
	backends := []string{"slot", "slot", "serve", "serve"}
	policies := []string{"No-cap", "POLCA", "No-cap", "POLCA"}
	for i := 0; i < 4; i++ {
		u := ms[i].Util.Values
		data.Power = append(data.Power, FigServePower{
			Backend: backends[i], Policy: policies[i],
			Mean: ms[i].Util.Mean(),
			P50:  stats.Percentile(u, 50), P90: stats.Percentile(u, 90),
			P99: stats.Percentile(u, 99), Peak2s: ms[i].Util.Peak(),
			Brakes: ms[i].BrakeEvents,
		})
	}

	nc, pc := ms[2], ms[3]
	for _, name := range workload.Names(nc.Config.Classes) {
		data.Classes = append(data.Classes, FigServeClass{
			Class:         name,
			TTFTp99NoCap:  nc.TTFT[name].Percentile(99),
			TTFTp99POLCA:  pc.TTFT[name].Percentile(99),
			TBTp99NoCapMS: nc.TBT[name].Percentile(99) * 1000,
			TBTp99POLCAMS: pc.TBT[name].Percentile(99) * 1000,
			JPerTokNoCap:  classJPerTok(nc, name),
			JPerTokPOLCA:  classJPerTok(pc, name),
		})
	}
	data.Preemptions = pc.Serve.Preemptions
	data.Batches = pc.Serve.Batches
	data.KVHighWater = pc.Serve.KVHighWaterFrac

	for i, c := range combos {
		m := ms[4+i]
		data.Sensitivity = append(data.Sensitivity, FigServeSense{
			T1: c[0], T2: c[1], Brakes: m.BrakeEvents,
			Preemptions: m.Serve.Preemptions, TTFTp99: aggTTFTp99(m),
		})
	}
	// Include the default combo so the sensitivity table is self-contained.
	if len(combos) > 0 {
		data.Sensitivity = append([]FigServeSense{{
			T1: 0.80, T2: 0.89, Brakes: pc.BrakeEvents,
			Preemptions: pc.Serve.Preemptions, TTFTp99: aggTTFTp99(pc),
		}}, data.Sensitivity...)
	}

	var b strings.Builder
	var powerCells [][]string
	for _, p := range data.Power {
		powerCells = append(powerCells, []string{
			p.Backend, p.Policy, pct(p.Mean), pct(p.P50), pct(p.P90), pct(p.P99), pct(p.Peak2s),
			fmt.Sprintf("%d", p.Brakes),
		})
	}
	b.WriteString("Power utilization distribution (same arrivals, +30% servers):\n")
	b.WriteString(table([]string{"Backend", "Policy", "mean", "p50", "p90", "p99", "peak(2s)", "Brakes"}, powerCells))

	b.WriteString("\nToken latencies and energy under the serving backend (per Table 6 class):\n")
	var classCells [][]string
	for _, c := range data.Classes {
		classCells = append(classCells, []string{
			c.Class,
			fmt.Sprintf("%.2f", c.TTFTp99NoCap), fmt.Sprintf("%.2f", c.TTFTp99POLCA),
			fmt.Sprintf("%.1f", c.TBTp99NoCapMS), fmt.Sprintf("%.1f", c.TBTp99POLCAMS),
			fmt.Sprintf("%.1f", c.JPerTokNoCap), fmt.Sprintf("%.1f", c.JPerTokPOLCA),
		})
	}
	b.WriteString(table([]string{"Class", "TTFT p99 nocap (s)", "TTFT p99 polca (s)", "TBT p99 nocap (ms)", "TBT p99 polca (ms)", "J/tok nocap", "J/tok polca"}, classCells))
	fmt.Fprintf(&b, "\nServe/POLCA scheduler: %d batches, %d preemptions, KV high water %s\n",
		data.Batches, data.Preemptions, pct(data.KVHighWater))

	if len(data.Sensitivity) > 0 {
		b.WriteString("\nPOLCA threshold sensitivity (serving backend):\n")
		var sCells [][]string
		for _, s := range data.Sensitivity {
			sCells = append(sCells, []string{
				comboKey(s.T1, s.T2), fmt.Sprintf("%d", s.Brakes),
				fmt.Sprintf("%d", s.Preemptions), fmt.Sprintf("%.2f", s.TTFTp99),
			})
		}
		b.WriteString(table([]string{"T1-T2", "Brakes", "Preemptions", "TTFT p99 (s)"}, sCells))
	}
	return Result{Text: b.String(), Data: data}, nil
}

// aggTTFTp99 returns the p99 TTFT across every class, merging the
// per-class sketches in stable class order.
func aggTTFTp99(m *cluster.Metrics) float64 {
	agg := obs.NewDigest(obs.DefaultCompression)
	for _, name := range workload.Names(m.Config.Classes) {
		agg.Merge(m.TTFT[name])
	}
	return agg.Percentile(99)
}

// classJPerTok returns the class's attributed joules per generated token.
func classJPerTok(m *cluster.Metrics, class string) float64 {
	if t := m.ClassTokens[class]; t > 0 {
		return m.ClassEnergyJ[class] / float64(t)
	}
	return 0
}
