package experiments

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/workload"
)

func init() {
	register("figfault", "Fault injection: safety and degradation across policies", runFigFault)
}

// FigFaultRow is one (policy, fault intensity) outcome of the chaos sweep.
type FigFaultRow struct {
	Policy    string
	Intensity float64 // fault-scenario scale factor (0 = fault-free)

	// Safety: time the row's physical power spent above the brake
	// threshold, and the single worst excursion. The breaker's trip curve
	// cares about the excursion length; the brake + policy must bound it.
	BreachSeconds    float64
	MaxBreachSeconds float64
	Brakes           int

	// Degradation machinery engagement.
	Watchdog         int // row deadman engagements
	Retries          int // OOB re-issues after failures
	RetriesExhausted int // targets abandoned after the retry budget
	StaleDrops       int // superseded in-flight commands dropped
	NodeDeaths       int
	Injected         faults.Counts

	// Performance: p99 latency normalized to the same policy fault-free.
	NormP99 map[workload.Priority]float64
}

// faultScenario is the mixed chaos scenario at intensity 1, with windows
// placed as fractions of the horizon so the same scenario scales from a
// quick one-day run to a multi-week sweep: background telemetry dropout
// and spikes, a frozen sensor, a telemetry blackout, a controller crash,
// missed ticks, an OOB burst-failure window with inflated latency, a
// two-server kill window, and two stragglers.
func faultScenario(horizon time.Duration) faults.Spec {
	frac := func(f float64) time.Duration {
		return (time.Duration(float64(horizon) * f)).Round(time.Second)
	}
	return faults.Spec{
		DropProb:  0.05,
		SpikeProb: 0.02, SpikeMag: 0.5,
		Stuck:        []faults.Window{{Start: frac(0.25), Dur: frac(0.02)}},
		Blackout:     []faults.Window{{Start: frac(0.40), Dur: frac(0.01)}},
		Crashes:      []faults.Crash{{At: frac(0.30), Epochs: 20}},
		MissProb:     0.02,
		Burst:        []faults.Window{{Start: frac(0.55), Dur: frac(0.04)}},
		LatencyScale: 1.5,
		Kills:        []faults.Kill{{Servers: 2, Window: faults.Window{Start: frac(0.70), Dur: frac(0.04)}}},
		Stragglers:   2, StragglerFactor: 1.5,
	}
}

func runFigFault(o Options) (Result, error) {
	horizon := horizonFromDays(o.SweepDays)
	scenario := faultScenario(horizon)
	if o.Faults != "" {
		custom, err := faults.Parse(o.Faults)
		if err != nil {
			return Result{}, err
		}
		scenario = custom
	}
	intensities := []float64{0, 0.5, 1}
	if o.Quick {
		intensities = []float64{0, 1}
	}

	// Three policies: the uncontrolled baseline, the paper's POLCA as-is,
	// and POLCA hardened with every degradation path this PR adds (telemetry
	// guard, row watchdog, bounded OOB retries with backoff).
	type policy struct {
		name string
		spec func(s rowSpec) rowSpec
	}
	policies := []policy{
		{"No-cap", func(s rowSpec) rowSpec { s.policy = "nocap"; return s }},
		{"POLCA", func(s rowSpec) rowSpec { s.policy = "polca"; return s }},
		{"POLCA-hardened", func(s rowSpec) rowSpec {
			s.policy = "polca"
			s.guard = true
			s.watchdog = 5
			s.retryBudget = 8
			s.retryBackoff = 4 * time.Second
			s.dropStale = true
			return s
		}},
	}

	specs := make([]rowSpec, 0, len(policies)*len(intensities))
	for _, p := range policies {
		for _, fi := range intensities {
			s := p.spec(rowSpec{added: 0.30, intensity: 1, days: o.SweepDays})
			// Canonical DSL form so the cache key and provenance are stable;
			// Scale(0) collapses to the zero spec and the empty string.
			s.faults = scenario.Scale(fi).String()
			specs = append(specs, s)
		}
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}

	var rows []FigFaultRow
	for pi, p := range policies {
		var base *cluster.Metrics
		for ii, fi := range intensities {
			m := ms[pi*len(intensities)+ii]
			if fi == 0 {
				base = m
			}
			row := FigFaultRow{
				Policy:           p.name,
				Intensity:        fi,
				BreachSeconds:    m.Util.TimeAbove(m.Config.BrakeUtil).Seconds(),
				MaxBreachSeconds: m.Util.LongestRunAbove(m.Config.BrakeUtil).Seconds(),
				Brakes:           m.BrakeEvents,
				Watchdog:         m.WatchdogEngagements,
				Retries:          m.OOBRetries,
				RetriesExhausted: m.OOBRetriesExhausted,
				StaleDrops:       m.StaleOOBDrops,
				NodeDeaths:       m.NodeDeaths,
				Injected:         m.Faults,
				NormP99:          map[workload.Priority]float64{},
			}
			for _, pri := range []workload.Priority{workload.Low, workload.High} {
				row.NormP99[pri] = latp(m, pri, 99) / latp(base, pri, 99)
			}
			rows = append(rows, row)
		}
	}

	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Policy, fmt.Sprintf("%.1f", r.Intensity),
			fmt.Sprintf("%.0f", r.BreachSeconds), fmt.Sprintf("%.0f", r.MaxBreachSeconds),
			fmt.Sprintf("%d", r.Brakes), fmt.Sprintf("%d", r.Watchdog),
			fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.NodeDeaths),
			f3(r.NormP99[workload.Low]), f3(r.NormP99[workload.High]),
		})
	}
	text := table([]string{"Policy", "Faults", "Breach(s)", "MaxBreach(s)", "Brakes", "Watchdog", "Retries", "Deaths", "LP p99", "HP p99"}, cells)
	text += fmt.Sprintf("\nScenario at intensity 1: %s\n", scenario.String())
	text += "Breach(s): total time the row's physical power exceeded the brake threshold.\n" +
		"Latencies are normalized to the same policy with faults disabled.\n"
	return Result{Text: text, Data: rows}, nil
}
