package experiments

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/workload"
)

func init() {
	register("figservefault", "Serve-mode fault tolerance: goodput and SLO attainment under chaos", runFigServeFault)
}

// FigServeFaultRow is one (scenario, policy) outcome of the serve-mode
// chaos sweep.
type FigServeFaultRow struct {
	Scenario string
	Policy   string

	// Goodput: requests that completed, and per-class SLO attainment for
	// the critical interactive class (chat), both as fractions of first
	// admissions.
	Arrived     int
	Completed   int
	GoodputFrac float64
	ChatSLOFrac float64

	// Fault-tolerance machinery engagement.
	Retries        int // failover requeues
	RetryExhausted int // requests dropped after the retry budget
	ClassSheds     int // SLO-class-aware admission sheds
	CircuitOpens   int
	NodeDrains     int
	NodeDeaths     int
	Watchdog       int

	// Safety: the single worst excursion above the brake threshold, and
	// the bound the brake contract promises (BrakeLatency + BrakeHold +
	// two telemetry ticks). SafetyOK reports MaxBreach <= Bound.
	MaxBreachSeconds float64
	BoundSeconds     float64
	SafetyOK         bool
	Brakes           int
}

// serveFaultScenarios are the chaos scenarios the serve-mode sweep runs,
// with windows placed as fractions of the horizon. Each isolates one
// failure family so the table attributes degradation to its cause:
// node-death kills servers (and drains two more for maintenance),
// oob-burst makes actuation fail and lag, crash freezes the controller,
// and blackout silences telemetry row-wide.
func serveFaultScenarios(horizon time.Duration) []struct {
	Name string
	Spec faults.Spec
} {
	frac := func(f float64) time.Duration {
		return (time.Duration(float64(horizon) * f)).Round(time.Second)
	}
	return []struct {
		Name string
		Spec faults.Spec
	}{
		{"node-death", faults.Spec{
			Kills:  []faults.Kill{{Servers: 4, Window: faults.Window{Start: frac(0.30), Dur: frac(0.10)}}},
			Drains: []faults.Kill{{Servers: 2, Window: faults.Window{Start: frac(0.60), Dur: frac(0.05)}}},
		}},
		{"oob-burst", faults.Spec{
			Burst:        []faults.Window{{Start: frac(0.40), Dur: frac(0.10)}},
			LatencyScale: 2,
		}},
		{"crash", faults.Spec{
			Crashes:  []faults.Crash{{At: frac(0.35), Epochs: 40}},
			MissProb: 0.02,
		}},
		{"blackout", faults.Spec{
			DropProb: 0.05,
			Blackout: []faults.Window{{Start: frac(0.45), Dur: frac(0.03)}},
		}},
	}
}

func runFigServeFault(o Options) (Result, error) {
	horizon := horizonFromDays(o.SweepDays)
	scenarios := serveFaultScenarios(horizon)
	if o.Quick {
		scenarios = scenarios[:2] // node-death + oob-burst
	}

	// Three policies on the serving backend: the uncontrolled baseline,
	// the paper's POLCA with the drop-only serving engine, and POLCA
	// hardened with the full degradation ladder — the PR 3 controller
	// hardening plus serve-mode failover, class shedding, circuit
	// breaking, and watchdog drain.
	type policy struct {
		name string
		spec func(s rowSpec) rowSpec
	}
	policies := []policy{
		{"No-cap", func(s rowSpec) rowSpec { s.policy = "nocap"; return s }},
		{"POLCA", func(s rowSpec) rowSpec { s.policy = "polca"; return s }},
		{"POLCA-hardened", func(s rowSpec) rowSpec {
			s.policy = "polca"
			s.guard = true
			s.watchdog = 5
			s.retryBudget = 8
			s.retryBackoff = 4 * time.Second
			s.dropStale = true
			s.serveRetries = 3
			s.serveClassShed = true
			s.serveCircuit = 10
			s.wdDrain = true
			return s
		}},
	}

	specs := make([]rowSpec, 0, len(policies)*len(scenarios))
	for _, p := range policies {
		for _, sc := range scenarios {
			s := p.spec(rowSpec{added: 0.30, intensity: 1, days: o.SweepDays, serveRouter: "least-queue"})
			s.faults = sc.Spec.String()
			specs = append(specs, s)
		}
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}

	var rows []FigServeFaultRow
	for pi, p := range policies {
		for si, sc := range scenarios {
			m := ms[pi*len(scenarios)+si]
			rows = append(rows, serveFaultRow(sc.Name, p.name, m))
		}
	}

	var cells [][]string
	for _, r := range rows {
		safety := "ok"
		if !r.SafetyOK {
			safety = "VIOLATED"
		}
		cells = append(cells, []string{
			r.Scenario, r.Policy,
			pct(r.GoodputFrac), pct(r.ChatSLOFrac),
			fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.RetryExhausted),
			fmt.Sprintf("%d", r.ClassSheds), fmt.Sprintf("%d", r.NodeDrains),
			fmt.Sprintf("%.0f/%.0f", r.MaxBreachSeconds, r.BoundSeconds), safety,
			fmt.Sprintf("%d", r.Brakes), fmt.Sprintf("%d", r.NodeDeaths),
		})
	}
	text := table([]string{"Scenario", "Policy", "Goodput", "Chat SLO", "Retries", "Exhaust", "Sheds", "Drains", "Breach/Bound(s)", "Safety", "Brakes", "Deaths"}, cells)
	text += "\nGoodput: completed requests / first admissions (retries are not double-counted).\n" +
		"Chat SLO: critical-class requests whose first token met the TTFT SLO.\n" +
		"Safety bound: BrakeLatency + BrakeHold + two telemetry ticks on the worst breach.\n"
	return Result{Text: text, Data: rows}, nil
}

// serveFaultRow distills one serve-mode chaos run into a table row.
func serveFaultRow(scenario, policy string, m *cluster.Metrics) FigServeFaultRow {
	arrived, sheds := 0, 0
	for _, v := range m.ClassArrived {
		arrived += v
	}
	for _, v := range m.ClassShed {
		sheds += v
	}
	completed := m.Completed[workload.Low] + m.Completed[workload.High]
	chatFrac := 0.0
	if a := m.ClassArrived["chat"]; a > 0 {
		chatFrac = float64(m.ClassSLOOK["chat"]) / float64(a)
	}
	goodput := 0.0
	if arrived > 0 {
		goodput = float64(completed) / float64(arrived)
	}
	bound := (m.Config.BrakeLatency + m.Config.BrakeHold + 2*m.Config.TelemetryInterval).Seconds()
	breach := m.Util.LongestRunAbove(m.Config.BrakeUtil).Seconds()
	return FigServeFaultRow{
		Scenario: scenario, Policy: policy,
		Arrived: arrived, Completed: completed,
		GoodputFrac: goodput, ChatSLOFrac: chatFrac,
		Retries: m.ServeRetries, RetryExhausted: m.ServeRetryExhausted,
		ClassSheds: sheds, CircuitOpens: m.CircuitOpens,
		NodeDrains: m.NodeDrains, NodeDeaths: m.NodeDeaths,
		Watchdog:         m.WatchdogEngagements,
		MaxBreachSeconds: breach, BoundSeconds: bound,
		SafetyOK: breach <= bound, Brakes: m.BrakeEvents,
	}
}
