package experiments

import (
	"fmt"
	"sync"

	"polca/internal/cluster"
)

// evalCall is one in-flight or completed row simulation. Callers wait on
// done before reading m/err, which gives the cache singleflight semantics:
// concurrent requests for the same spec run the simulation once and share
// the result.
type evalCall struct {
	done chan struct{}
	m    *cluster.Metrics
	err  error
}

var (
	evalMu    sync.Mutex
	evalCache = map[string]*evalCall{}
)

// resetEvalCache drops all cached simulations; tests use it to force a
// cold-cache comparison between serial and parallel execution.
func resetEvalCache() {
	evalMu.Lock()
	evalCache = map[string]*evalCall{}
	evalMu.Unlock()
}

// simulateRow runs (or returns the cached result of) one row simulation.
// Concurrent callers with the same spec block on the first caller's run.
func simulateRow(o Options, s rowSpec) (*cluster.Metrics, error) {
	key := fmt.Sprintf("%d/%d/%+v", o.Seed, o.RowServers, s)
	evalMu.Lock()
	if c, ok := evalCache[key]; ok {
		evalMu.Unlock()
		<-c.done
		return c.m, c.err
	}
	c := &evalCall{done: make(chan struct{})}
	evalCache[key] = c
	evalMu.Unlock()

	c.m, c.err = runRowSpec(o, s)
	if c.err != nil {
		// Keep failures out of the cache so a later attempt can retry.
		evalMu.Lock()
		delete(evalCache, key)
		evalMu.Unlock()
	}
	close(c.done)
	return c.m, c.err
}

// simulateRows runs one simulation per spec on a worker pool bounded by
// o.Parallel (default GOMAXPROCS) and returns metrics in spec order, so
// sweep results are independent of completion order. Duplicate specs —
// within the batch or across concurrently running experiments — are
// deduplicated by simulateRow's singleflight cache.
func simulateRows(o Options, specs []rowSpec) ([]*cluster.Metrics, error) {
	out := make([]*cluster.Metrics, len(specs))
	workers := o.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			m, err := simulateRow(o, s)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}
	errs := make([]error, len(specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = simulateRow(o, specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
