package experiments

import (
	"fmt"
	"sync"
	"time"

	"polca/internal/cluster"
	"polca/internal/obs"
)

// evalCall is one in-flight or completed row simulation. Callers wait on
// done before reading m/err, which gives the cache singleflight semantics:
// concurrent requests for the same spec run the simulation once and share
// the result.
type evalCall struct {
	done chan struct{}
	m    *cluster.Metrics
	err  error
}

var (
	evalMu    sync.Mutex
	evalCache = map[string]*evalCall{}
)

// resetEvalCache drops all cached simulations; tests use it to force a
// cold-cache comparison between serial and parallel execution.
func resetEvalCache() {
	evalMu.Lock()
	evalCache = map[string]*evalCall{}
	evalMu.Unlock()
}

// specLabel names a grid point for progress tracking and grid events.
func specLabel(s rowSpec) string {
	l := fmt.Sprintf("%s added=%g int=%g lp=%g d=%d mhz=%g t=%g/%g",
		s.policy, s.added, s.intensity, s.lpFrac, s.days, s.lpBaseMHz, s.t1, s.t2)
	if s.serveRouter != "" {
		l += " serve=" + s.serveRouter
	}
	if s.serveRetries > 0 {
		l += fmt.Sprintf(" retries=%d", s.serveRetries)
	}
	if s.serveClassShed {
		l += " classshed"
	}
	if s.serveCircuit > 0 {
		l += fmt.Sprintf(" circuit=%d", s.serveCircuit)
	}
	if s.wdDrain {
		l += " wddrain"
	}
	if s.scenario != "" {
		l += " scen=" + s.scenario
	}
	return l
}

// simulateRowCached runs (or returns the cached result of) one row
// simulation, reporting whether the result came from the cache — waiters
// that piggyback on another caller's in-flight run count as cached, since
// they did not pay for a simulation. Concurrent callers with the same spec
// block on the first caller's run.
func simulateRowCached(o Options, s rowSpec) (*cluster.Metrics, bool, error) {
	// The key deliberately covers only the inputs that shape the
	// simulation; observability fields must never split the cache.
	key := fmt.Sprintf("%d/%d/%+v", o.Seed, o.RowServers, s)
	evalMu.Lock()
	if c, ok := evalCache[key]; ok {
		evalMu.Unlock()
		<-c.done
		return c.m, true, c.err
	}
	c := &evalCall{done: make(chan struct{})}
	evalCache[key] = c
	evalMu.Unlock()

	c.m, c.err = runRowSpec(o, s)
	if c.err != nil {
		// Keep failures out of the cache so a later attempt can retry.
		evalMu.Lock()
		delete(evalCache, key)
		evalMu.Unlock()
	}
	close(c.done)
	return c.m, false, c.err
}

// simulateRow is simulateRowCached for callers that don't care about cache
// provenance.
func simulateRow(o Options, s rowSpec) (*cluster.Metrics, error) {
	m, _, err := simulateRowCached(o, s)
	return m, err
}

// simulateTracked wraps one grid-point simulation with progress tracking,
// sweep counters, and grid.start/grid.done trace events. All of it is
// wall-clock observability metadata — nothing here can reach simulation
// state.
func simulateTracked(o Options, s rowSpec) (*cluster.Metrics, error) {
	if o.Obs == nil && o.Progress == nil {
		return simulateRow(o, s)
	}
	label := specLabel(s)
	started := time.Now()
	o.Progress.Start(label)
	o.Obs.Emit(obs.Event{Kind: obs.KindGridStart, Server: -1, Pool: obs.PoolNone, Label: label})
	m, cached, err := simulateRowCached(o, s)
	elapsed := time.Since(started)
	o.Progress.Done(label, cached)
	o.Obs.Counter("sweep_points_total").Inc()
	if cached {
		o.Obs.Counter("sweep_cache_hits_total").Inc()
	}
	o.Obs.Emit(obs.Event{
		Kind: obs.KindGridDone, Server: -1, Pool: obs.PoolNone,
		Label: label, Value: elapsed.Seconds(),
	})
	return m, err
}

// simulateRows runs one simulation per spec on a worker pool bounded by
// o.Parallel (default GOMAXPROCS) and returns metrics in spec order, so
// sweep results are independent of completion order. Duplicate specs —
// within the batch or across concurrently running experiments — are
// deduplicated by simulateRow's singleflight cache.
func simulateRows(o Options, specs []rowSpec) ([]*cluster.Metrics, error) {
	o.Progress.AddTotal(len(specs))
	out := make([]*cluster.Metrics, len(specs))
	workers := o.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			m, err := simulateTracked(o, s)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}
	errs := make([]error, len(specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = simulateTracked(o, specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
