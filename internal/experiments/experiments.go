// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is registered under the paper's artifact ID
// (fig4, tab4, fig17, ...), runs the relevant simulation or profiling
// harness, and renders its results as text tables whose rows mirror what
// the paper reports. The cmd/polca-experiments binary and bench_test.go
// both drive this registry.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"polca/internal/obs"
)

// Options scales experiments between quick smoke runs and full,
// paper-scale reproductions.
type Options struct {
	// Seed drives all randomness; equal seeds give identical results.
	Seed int64
	// TrainDays is the policy-training slice of the trace (paper: 1 week).
	TrainDays int
	// EvalDays is the evaluation slice (paper: 5 weeks for §6.6).
	EvalDays int
	// SweepDays is the horizon for parameter sweeps (paper: 1 week, §6.5).
	SweepDays int
	// RowServers is the base row size (Table 2: 40).
	RowServers int
	// Quick reduces sweep densities and horizons for tests.
	Quick bool
	// Parallel bounds how many simulations (and, in RunAll, experiments)
	// run concurrently. 0 means GOMAXPROCS; 1 forces the serial path.
	// Results are identical at any setting: every simulation owns a private
	// sim.Engine seeded from Seed, and sweeps assemble their outputs in
	// spec order.
	Parallel int

	// Obs, when non-nil, receives sweep-level events (grid.start/grid.done)
	// and aggregates engine/row metrics across every simulation the
	// experiments run. Observation never changes results: output is
	// byte-identical with or without it (TestObsDoesNotPerturbResults).
	Obs *obs.Observer
	// Progress, when non-nil, tracks grid points through the sweep executor
	// for the -v log and the /progress endpoint.
	Progress *obs.Progress

	// Faults, when non-empty, replaces the figfault experiment's built-in
	// intensity-1 chaos scenario with this faults-package DSL spec. Other
	// experiments ignore it: the paper figures run fault-free.
	Faults string

	// Scenario, when non-empty, restricts the figscenario experiment to one
	// workload scenario (a builtin name or a .scn file path) instead of
	// sweeping the committed library. Other experiments ignore it: the
	// paper figures run the Table 6 mix.
	Scenario string
}

// DefaultOptions mirrors the paper's evaluation scale.
func DefaultOptions() Options {
	return Options{Seed: 1, TrainDays: 7, EvalDays: 35, SweepDays: 7, RowServers: 40}
}

// QuickOptions returns a scaled-down configuration suitable for tests.
func QuickOptions() Options {
	return Options{Seed: 1, TrainDays: 1, EvalDays: 1, SweepDays: 1, RowServers: 12, Quick: true}
}

// normalize fills zero fields from defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.TrainDays <= 0 {
		o.TrainDays = d.TrainDays
	}
	if o.EvalDays <= 0 {
		o.EvalDays = d.EvalDays
	}
	if o.SweepDays <= 0 {
		o.SweepDays = d.SweepDays
	}
	if o.RowServers <= 0 {
		o.RowServers = d.RowServers
	}
	return o
}

// workers resolves Parallel to a concrete worker count.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one reproduced artifact.
type Result struct {
	ID    string
	Title string
	// Text is the rendered artifact (tables, matrices, summaries).
	Text string
	// Data holds the experiment's typed payload for programmatic checks.
	Data any
}

// Runner produces a Result for the given options.
type Runner func(Options) (Result, error)

// entry is a registered experiment.
type entry struct {
	id    string
	title string
	run   Runner
}

var registry []entry

// register adds an experiment; called from init functions in this package.
func register(id, title string, run Runner) {
	registry = append(registry, entry{id: id, title: title, run: run})
}

// IDs returns the registered experiment IDs in registration (paper) order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.id)
	}
	return out
}

// Title returns the experiment's title.
func Title(id string) (string, error) {
	for _, e := range registry {
		if e.id == id {
			return e.title, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown id %q", id)
}

// Run executes one experiment by ID.
func Run(id string, o Options) (Result, error) {
	o = o.normalize()
	for _, e := range registry {
		if e.id == id {
			res, err := e.run(o)
			if err != nil {
				return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
			}
			res.ID = e.id
			res.Title = e.title
			return res, nil
		}
	}
	ids := IDs()
	sort.Strings(ids)
	return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAll executes every registered experiment, streaming rendered results
// to w in registration (paper) order, and returns the structured results.
//
// Experiments run concurrently, bounded by o.Parallel workers; artifacts
// that share row simulations (fig17/fig18) deduplicate through the
// singleflight simulation cache, so no spec is simulated twice. The stream
// and the returned results are byte-identical to a serial run. On error the
// results completed before the failing artifact are returned; experiments
// already in flight finish in the background.
func RunAll(o Options, w io.Writer) ([]Result, error) {
	o = o.normalize()
	workers := o.workers()
	if workers > len(registry) {
		workers = len(registry)
	}
	type slot struct {
		res  Result
		err  error
		done chan struct{}
	}
	slots := make([]*slot, len(registry))
	sem := make(chan struct{}, workers)
	for i := range registry {
		s := &slot{done: make(chan struct{})}
		slots[i] = s
		go func(id string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			s.res, s.err = Run(id, o)
			close(s.done)
		}(registry[i].id)
	}
	var out []Result
	for _, s := range slots {
		<-s.done
		if s.err != nil {
			return out, s.err
		}
		out = append(out, s.res)
		if w != nil {
			fmt.Fprintf(w, "== %s: %s ==\n%s\n", s.res.ID, s.res.Title, s.res.Text)
		}
	}
	return out, nil
}

// table renders rows of columns with aligned widths.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// f2, f3, pct format numbers the way the paper's tables do.
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
