package experiments

import (
	"testing"

	"polca/internal/obs"
)

// TestObsDoesNotPerturbResults locks the tentpole contract at the
// experiment level: attaching a full observer (tracer + metrics + spans +
// progress) to a sweep must leave the rendered output byte-identical to an
// uninstrumented cold-cache run.
func TestObsDoesNotPerturbResults(t *testing.T) {
	for _, id := range []string{"fig13", "fig17"} {
		resetEvalCache()
		plain, err := Run(id, QuickOptions())
		if err != nil {
			t.Fatalf("%s plain: %v", id, err)
		}

		resetEvalCache()
		oo := QuickOptions()
		oo.Obs = &obs.Observer{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry(), Spans: obs.NewSpanTracer()}
		oo.Progress = obs.NewProgress(0)
		observed, err := Run(id, oo)
		if err != nil {
			t.Fatalf("%s observed: %v", id, err)
		}
		if plain.Text != observed.Text {
			t.Errorf("%s: output differs with observability enabled\n--- plain ---\n%s\n--- observed ---\n%s",
				id, plain.Text, observed.Text)
		}

		// The instrumentation itself must have fired: grid events, sweep
		// counters, progress accounting, and engine metrics.
		starts := oo.Obs.Tracer.CountKind(obs.KindGridStart)
		dones := oo.Obs.Tracer.CountKind(obs.KindGridDone)
		if starts == 0 || starts != dones {
			t.Errorf("%s: grid events start=%d done=%d", id, starts, dones)
		}
		snap := oo.Obs.Metrics.Snapshot()
		if snap.Counters["sweep_points_total"] != int64(dones) {
			t.Errorf("%s: sweep_points_total = %d, want %d", id, snap.Counters["sweep_points_total"], dones)
		}
		if snap.Counters["sim_events_dispatched_total"] == 0 {
			t.Errorf("%s: engine metrics did not flow through MetricsOnly observer", id)
		}
		ps := oo.Progress.Snapshot()
		if ps.Done != dones || ps.Total < ps.Done || len(ps.InFlight) != 0 {
			t.Errorf("%s: progress snapshot %+v inconsistent with %d grid points", id, ps, dones)
		}
	}
}

// TestSweepCacheHitsCounted re-runs a sweep warm and checks the cache-hit
// counter and the cached flag in progress accounting.
func TestSweepCacheHitsCounted(t *testing.T) {
	resetEvalCache()
	o := QuickOptions().normalize()
	spec := rowSpec{policy: "nocap", added: 0, intensity: 1, days: 1}
	oObs := &obs.Observer{Metrics: obs.NewRegistry()}
	o.Obs = oObs
	o.Progress = obs.NewProgress(0)
	if _, err := simulateRows(o, []rowSpec{spec, spec}); err != nil {
		t.Fatal(err)
	}
	if _, err := simulateRows(o, []rowSpec{spec}); err != nil {
		t.Fatal(err)
	}
	snap := oObs.Metrics.Snapshot()
	if snap.Counters["sweep_points_total"] != 3 {
		t.Fatalf("sweep_points_total = %d, want 3", snap.Counters["sweep_points_total"])
	}
	// Of the three requests for one spec, exactly one paid for a simulation.
	if snap.Counters["sweep_cache_hits_total"] != 2 {
		t.Fatalf("sweep_cache_hits_total = %d, want 2", snap.Counters["sweep_cache_hits_total"])
	}
	ps := o.Progress.Snapshot()
	if ps.Total != 3 || ps.Done != 3 || ps.Cached != 2 {
		t.Fatalf("progress snapshot %+v, want total=3 done=3 cached=2", ps)
	}
}
