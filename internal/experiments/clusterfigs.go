package experiments

import (
	"fmt"
	"strings"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/polca"
	"polca/internal/render"
	"polca/internal/scenario"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/stats"
	"polca/internal/trace"
	"polca/internal/workload"
)

func init() {
	register("fit", "§6.4: Synthetic trace fit (MAPE) and trained thresholds", runFit)
	register("tab4", "Table 4: LLM cluster power usage in production", runTable4)
	register("fig13", "Figure 13: Threshold space search", runFig13)
	register("fig14", "Figure 14: Server throughput under POLCA", runFig14)
	register("fig15a", "Figure 15a: T1 capping frequency sweep", runFig15a)
	register("fig15b", "Figure 15b: Impact of the low-priority server fraction", runFig15b)
	register("fig16", "Figure 16: Row power utilization, default vs +30% servers", runFig16)
	register("fig17", "Figure 17: Policy comparison at 30% oversubscription", runFig17)
	register("fig18", "Figure 18: Power brake events per policy", runFig18)
}

// rowSpec identifies one cluster simulation for caching.
type rowSpec struct {
	policy    string
	added     float64
	intensity float64
	lpFrac    float64
	days      int
	lpBaseMHz float64 // 0 = policy default
	t1, t2    float64 // 0 = policy default

	// Fault-experiment knobs (figfault); all zero for the paper figures,
	// which keeps those rows byte-identical to the fault-free simulator.
	faults       string        // canonical faults.Spec DSL, "" = none
	guard        bool          // wrap the policy in the telemetry Guard
	watchdog     int           // row deadman epochs, 0 = disabled
	retryBudget  int           // bounded OOB retries, 0 = unlimited
	retryBackoff time.Duration // OOB retry backoff, 0 = next tick
	dropStale    bool          // drop superseded in-flight OOB commands

	// serveRouter, when non-empty, switches the row to the request-level
	// serving backend with this routing policy (figserve); "" keeps the
	// slot model, leaving every paper figure byte-identical.
	serveRouter string

	// Serve-mode fault-tolerance knobs (figservefault); all zero for the
	// other serve experiments, which keeps their rows byte-identical to
	// the drop-only serving backend.
	serveRetries      int           // failover requeue budget, 0 = drop-only
	serveRetryBackoff time.Duration // base failover backoff, 0 = telemetry interval
	serveClassShed    bool          // SLO-class-aware shedding under emergencies
	serveCircuit      int           // per-replica circuit-breaker shed threshold
	wdDrain           bool          // engaged watchdog drains serve replicas

	// Scenario knob (figscenario): a workload scenario name or .scn path
	// that replaces the fitted Table 6 arrivals with generated cohort
	// traffic (classes, shed ranks, and the request trace all come from the
	// scenario). "" keeps every other experiment on the legacy path.
	scenario string
}

// buildController instantiates the policy named in the spec.
func buildController(s rowSpec) cluster.Controller {
	ctrl := buildBaseController(s)
	if s.guard {
		return polca.NewGuard(ctrl, polca.DefaultGuardConfig())
	}
	return ctrl
}

func buildBaseController(s rowSpec) cluster.Controller {
	switch s.policy {
	case "polca":
		cfg := polca.DefaultConfig()
		if s.t1 > 0 {
			cfg.T1, cfg.T2 = s.t1, s.t2
		}
		if s.lpBaseMHz > 0 {
			cfg.LPBaseMHz = s.lpBaseMHz
		}
		return polca.New(cfg)
	case "1tl":
		return polca.NewSingleThresholdLowPri()
	case "1ta":
		return polca.NewSingleThresholdAll()
	case "nocap":
		return polca.NoCap{}
	case "ladder3":
		ladder, err := polca.NewLadder("3-rung", []polca.Rung{
			{Trigger: 0.76, Margin: 0.05, Pool: workload.Low, LockMHz: 1335},
			{Trigger: 0.83, Margin: 0.05, Pool: workload.Low, LockMHz: 1200},
			{Trigger: 0.89, Margin: 0.05, Pool: workload.Low, LockMHz: 1050},
			{Trigger: 0.89, Margin: 0.05, Pool: workload.High, LockMHz: 1305, Delay: 1},
		})
		if err != nil {
			panic(err)
		}
		return ladder
	}
	panic("experiments: unknown policy " + s.policy)
}

// runRowSpec executes one row simulation on a private engine; simulateRow
// (parallel.go) wraps it with the singleflight cache.
func runRowSpec(o Options, s rowSpec) (*cluster.Metrics, error) {
	cfg := cluster.Production()
	cfg.BaseServers = o.RowServers
	cfg.AddedFraction = s.added
	cfg.PowerIntensity = s.intensity
	if s.lpFrac > 0 {
		cfg.LowPriorityFraction = s.lpFrac
	}
	cfg.Seed = o.Seed
	if s.faults != "" {
		fs, err := faults.Parse(s.faults)
		if err != nil {
			return nil, err
		}
		cfg.Faults = fs
	}
	cfg.WatchdogEpochs = s.watchdog
	cfg.OOBRetryBudget = s.retryBudget
	cfg.OOBRetryBackoff = s.retryBackoff
	cfg.DropStaleOOB = s.dropStale
	if s.serveRouter != "" {
		cfg.Serve = &serve.Config{Router: s.serveRouter}
	}
	cfg.ServeRetries = s.serveRetries
	cfg.ServeRetryBackoff = s.serveRetryBackoff
	cfg.ServeClassShed = s.serveClassShed
	cfg.ServeCircuitSheds = s.serveCircuit
	cfg.WatchdogDrain = s.wdDrain

	if s.scenario != "" {
		spec, err := scenario.Load(s.scenario)
		if err != nil {
			return nil, err
		}
		// The cohorts' analytic moments become the class table admission
		// plans on, and their SLO classes pin the serve-mode shed ranks.
		cfg.Classes = spec.Classes()
		cfg.ShedRanks = spec.ShedRanks()
		eng := sim.New(o.Seed)
		eng.SetObserver(o.Obs.MetricsOnly())
		row, err := cluster.NewRow(eng, cfg, buildController(s))
		if err != nil {
			return nil, err
		}
		horizon := horizonFromDays(s.days)
		// Generation draws on the engine's named scenario streams, so every
		// policy arm of a sweep sees the identical request trace.
		reqs, err := scenario.Generate(spec, horizon, float64(cfg.Servers())/float64(spec.Basis), eng.Rand)
		if err != nil {
			return nil, err
		}
		return row.RunRequests(reqs, horizon), nil
	}

	// The trace is fitted against the *profiled* workload (intensity 1):
	// POLCA's operators sized the policy before workloads drifted.
	fitCfg := cfg
	fitCfg.PowerIntensity = 1
	ref := trace.ProductionInference().Reference(horizonFromDays(s.days), newSeededRand(o.Seed, "ref"))
	plan, err := trace.FitArrivals(ref, fitCfg.Shape(), 5*time.Minute)
	if err != nil {
		return nil, err
	}
	plan = plan.Scale(1 + s.added)

	eng := sim.New(o.Seed)
	// Metrics only: per-request trace events from dozens of grid points
	// would flood a sweep-level trace, but aggregate counters stay useful.
	eng.SetObserver(o.Obs.MetricsOnly())
	row, err := cluster.NewRow(eng, cfg, buildController(s))
	if err != nil {
		return nil, err
	}
	return row.Run(plan), nil
}

// latp returns the given percentile of the run's latencies for a priority.
func latp(m *cluster.Metrics, pri workload.Priority, p float64) float64 {
	return stats.Percentile(m.LatencySec[pri], p)
}

// --- §6.4 fit ---

// FitData reports the synthetic-trace validation.
type FitData struct {
	// ModelMAPE is the analytic check: the plan's predicted utilization vs
	// the reference (small by construction).
	ModelMAPE float64
	// SimMAPE is the paper's end-to-end criterion: the *simulated* row
	// power timeseries vs the reference it was fitted to, at 5-minute
	// granularity (§6.4 accepts <= 3%).
	SimMAPE    float64
	Trained    polca.Config
	MaxRise40s float64
}

func runFit(o Options) (Result, error) {
	cfg := cluster.Production()
	cfg.BaseServers = o.RowServers
	ref := trace.ProductionInference().Reference(horizonFromDays(o.TrainDays), newSeededRand(o.Seed, "ref"))
	plan, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
	if err != nil {
		return Result{}, err
	}
	modelMAPE, err := trace.ValidateFit(ref, plan, cfg.Shape())
	if err != nil {
		return Result{}, err
	}

	// End-to-end: replay the fitted trace through the simulator and
	// compare the resulting power series against the reference.
	m, err := simulateRow(o, rowSpec{policy: "nocap", added: 0, intensity: 1, days: o.TrainDays})
	if err != nil {
		return Result{}, err
	}
	bucket := 5 * time.Minute
	simSeries := m.Util.Downsample(bucket)
	refSeries := ref.Downsample(bucket)
	n := simSeries.Len()
	if refSeries.Len() < n {
		n = refSeries.Len()
	}
	simMAPE, err := stats.MAPE(refSeries.Values[:n], simSeries.Values[:n])
	if err != nil {
		return Result{}, err
	}

	trained := polca.TrainThresholds(ref, cfg.BrakeUtil, cfg.OOBLatency)
	data := FitData{ModelMAPE: modelMAPE, SimMAPE: simMAPE, Trained: trained, MaxRise40s: ref.MaxRise(40 * time.Second)}
	text := fmt.Sprintf("Analytic fit MAPE (plan vs reference):          %s\n", pct(modelMAPE)) +
		fmt.Sprintf("End-to-end MAPE (simulated power vs reference): %s (paper accepts <= 3%%)\n", pct(simMAPE)) +
		fmt.Sprintf("Max reference rise in 40s (OOB latency): %s\n", pct(data.MaxRise40s)) +
		fmt.Sprintf("Trained thresholds from first %d day(s): T1=%s T2=%s\n", o.TrainDays, pct(trained.T1), pct(trained.T2))
	return Result{Text: text, Data: data}, nil
}

// --- Table 4 ---

// Table4Data holds both cluster comparisons.
type Table4Data struct {
	Training  cluster.ClusterComparison
	Inference cluster.ClusterComparison
}

func runTable4(o Options) (Result, error) {
	trainDays := 1
	trainUtil, err := cluster.SimulateTraining(cluster.ProductionTraining(), horizonFromDays(trainDays), newSeededRand(o.Seed, "train-row"))
	if err != nil {
		return Result{}, err
	}
	m, err := simulateRow(o, rowSpec{policy: "nocap", added: 0, intensity: 1, days: o.SweepDays})
	if err != nil {
		return Result{}, err
	}
	data := Table4Data{
		Training:  cluster.SummarizeUtilization("training", trainUtil),
		Inference: cluster.SummarizeUtilization("inference", m.Util),
	}
	cells := [][]string{
		{"Peak power utilization", pct(data.Training.PeakUtilization), pct(data.Inference.PeakUtilization)},
		{"Mean power utilization", pct(data.Training.MeanUtilization), pct(data.Inference.MeanUtilization)},
		{"Max. power spike in 2s", pct(data.Training.MaxSpike2s), pct(data.Inference.MaxSpike2s)},
		{"Max. power spike in 40s", pct(data.Training.MaxSpike40s), pct(data.Inference.MaxSpike40s)},
		{"Power headroom", pct(1 - data.Training.PeakUtilization), pct(1 - data.Inference.PeakUtilization)},
	}
	return Result{Text: table([]string{"Metric", "Training", "Inference"}, cells), Data: data}, nil
}

// --- Figure 13 ---

// Fig13Point is one (threshold combo, added fraction) outcome.
type Fig13Point struct {
	T1, T2  float64
	Added   float64
	Brakes  int
	NormP50 map[workload.Priority]float64
	NormP99 map[workload.Priority]float64
}

// Fig13Data carries the sweep plus the derived safe-added frontier.
type Fig13Data struct {
	Points []Fig13Point
	// MaxSafeAdded is the largest tested added-fraction with zero brakes
	// per combo, keyed "75-85" style.
	MaxSafeAdded map[string]float64
}

func comboKey(t1, t2 float64) string {
	return fmt.Sprintf("%.0f-%.0f", t1*100, t2*100)
}

func runFig13(o Options) (Result, error) {
	combos := [][2]float64{{0.75, 0.85}, {0.80, 0.89}, {0.85, 0.95}}
	added := []float64{0, 0.10, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50}
	if o.Quick {
		added = []float64{0, 0.30}
	}
	specs := make([]rowSpec, 0, len(combos)*len(added))
	for _, c := range combos {
		for _, a := range added {
			specs = append(specs, rowSpec{policy: "polca", t1: c[0], t2: c[1], added: a, intensity: 1, days: o.SweepDays})
		}
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}
	data := Fig13Data{MaxSafeAdded: map[string]float64{}}
	for ci, c := range combos {
		var base *cluster.Metrics
		for ai, a := range added {
			m := ms[ci*len(added)+ai]
			if a == 0 {
				base = m
			}
			pt := Fig13Point{
				T1: c[0], T2: c[1], Added: a, Brakes: m.BrakeEvents,
				NormP50: map[workload.Priority]float64{},
				NormP99: map[workload.Priority]float64{},
			}
			for _, pri := range []workload.Priority{workload.Low, workload.High} {
				pt.NormP50[pri] = latp(m, pri, 50) / latp(base, pri, 50)
				pt.NormP99[pri] = latp(m, pri, 99) / latp(base, pri, 99)
			}
			data.Points = append(data.Points, pt)
			if m.BrakeEvents == 0 {
				key := comboKey(c[0], c[1])
				if a > data.MaxSafeAdded[key] {
					data.MaxSafeAdded[key] = a
				}
			}
		}
	}
	var cells [][]string
	for _, p := range data.Points {
		cells = append(cells, []string{
			comboKey(p.T1, p.T2), pct(p.Added), fmt.Sprintf("%d", p.Brakes),
			f3(p.NormP50[workload.Low]), f3(p.NormP99[workload.Low]),
			f3(p.NormP50[workload.High]), f3(p.NormP99[workload.High]),
		})
	}
	text := table([]string{"T1-T2", "Added", "Brakes", "LP p50", "LP p99", "HP p50", "HP p99"}, cells)
	text += "\nMax added servers without power brakes:\n"
	for _, c := range combos {
		key := comboKey(c[0], c[1])
		text += fmt.Sprintf("  %s: %s\n", key, pct(data.MaxSafeAdded[key]))
	}
	return Result{Text: text, Data: data}, nil
}

// --- Figure 14 ---

// Fig14Point is throughput at one added fraction.
type Fig14Point struct {
	Added          float64
	NormThroughput map[workload.Priority]float64
}

func runFig14(o Options) (Result, error) {
	added := []float64{0, 0.10, 0.20, 0.30, 0.40, 0.50}
	if o.Quick {
		added = []float64{0, 0.30}
	}
	specs := make([]rowSpec, 0, len(added))
	for _, a := range added {
		specs = append(specs, rowSpec{policy: "polca", added: a, intensity: 1, days: o.SweepDays})
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}
	var pts []Fig14Point
	var basePerServer map[workload.Priority]float64
	for i, a := range added {
		m := ms[i]
		perServer := map[workload.Priority]float64{}
		lp := m.Config.LowPriorityFraction
		total := m.Config.Servers()
		poolN := map[workload.Priority]int{
			workload.Low:  int(float64(total)*lp + 0.5),
			workload.High: total - int(float64(total)*lp+0.5),
		}
		for _, pri := range []workload.Priority{workload.Low, workload.High} {
			perServer[pri] = m.Throughput(pri, poolN[pri])
		}
		if a == 0 {
			basePerServer = perServer
		}
		pt := Fig14Point{Added: a, NormThroughput: map[workload.Priority]float64{}}
		for pri, v := range perServer {
			pt.NormThroughput[pri] = v / basePerServer[pri]
		}
		pts = append(pts, pt)
	}
	var cells [][]string
	for _, p := range pts {
		cells = append(cells, []string{pct(p.Added), f3(p.NormThroughput[workload.Low]), f3(p.NormThroughput[workload.High])})
	}
	return Result{
		Text: table([]string{"Added", "LP throughput", "HP throughput"}, cells),
		Data: pts,
	}, nil
}

// --- Figure 15a ---

// Fig15aPoint is the latency impact of one T1 capping frequency.
type Fig15aPoint struct {
	LPBaseMHz float64
	NormP50   map[workload.Priority]float64
	NormP99   map[workload.Priority]float64
}

func runFig15a(o Options) (Result, error) {
	freqs := []float64{1335, 1275, 1215, 1155}
	if o.Quick {
		freqs = []float64{1275, 1155}
	}
	specs := []rowSpec{{policy: "nocap", added: 0.30, intensity: 1, days: o.SweepDays}}
	for _, f := range freqs {
		specs = append(specs, rowSpec{policy: "polca", lpBaseMHz: f, added: 0.30, intensity: 1, days: o.SweepDays})
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}
	base := ms[0]
	var pts []Fig15aPoint
	for i, f := range freqs {
		m := ms[i+1]
		pt := Fig15aPoint{LPBaseMHz: f, NormP50: map[workload.Priority]float64{}, NormP99: map[workload.Priority]float64{}}
		for _, pri := range []workload.Priority{workload.Low, workload.High} {
			pt.NormP50[pri] = latp(m, pri, 50) / latp(base, pri, 50)
			pt.NormP99[pri] = latp(m, pri, 99) / latp(base, pri, 99)
		}
		pts = append(pts, pt)
	}
	var cells [][]string
	for _, p := range pts {
		cells = append(cells, []string{
			fmt.Sprintf("%.0f", p.LPBaseMHz),
			f3(p.NormP50[workload.Low]), f3(p.NormP99[workload.Low]),
			f3(p.NormP50[workload.High]), f3(p.NormP99[workload.High]),
		})
	}
	return Result{
		Text: table([]string{"T1 freq (MHz)", "LP p50", "LP p99", "HP p50", "HP p99"}, cells),
		Data: pts,
	}, nil
}

// --- Figure 15b ---

// Fig15bPoint is the latency impact at one low-priority server share.
type Fig15bPoint struct {
	LPFraction float64
	Brakes     int
	NormP50    map[workload.Priority]float64
	NormP99    map[workload.Priority]float64
}

func runFig15b(o Options) (Result, error) {
	fracs := []float64{0.25, 0.50, 0.75}
	if o.Quick {
		fracs = []float64{0.25, 0.75}
	}
	specs := make([]rowSpec, 0, 2*len(fracs))
	for _, lp := range fracs {
		specs = append(specs,
			rowSpec{policy: "polca", added: 0, intensity: 1, lpFrac: lp, days: o.SweepDays},
			rowSpec{policy: "polca", added: 0.30, intensity: 1, lpFrac: lp, days: o.SweepDays})
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}
	var pts []Fig15bPoint
	for i, lp := range fracs {
		base, m := ms[2*i], ms[2*i+1]
		pt := Fig15bPoint{LPFraction: lp, Brakes: m.BrakeEvents, NormP50: map[workload.Priority]float64{}, NormP99: map[workload.Priority]float64{}}
		for _, pri := range []workload.Priority{workload.Low, workload.High} {
			pt.NormP50[pri] = latp(m, pri, 50) / latp(base, pri, 50)
			pt.NormP99[pri] = latp(m, pri, 99) / latp(base, pri, 99)
		}
		pts = append(pts, pt)
	}
	var cells [][]string
	for _, p := range pts {
		cells = append(cells, []string{
			pct(p.LPFraction), fmt.Sprintf("%d", p.Brakes),
			f3(p.NormP50[workload.Low]), f3(p.NormP99[workload.Low]),
			f3(p.NormP50[workload.High]), f3(p.NormP99[workload.High]),
		})
	}
	return Result{
		Text: table([]string{"LP servers", "Brakes", "LP p50", "LP p99", "HP p50", "HP p99"}, cells),
		Data: pts,
	}, nil
}

// --- Figure 16 ---

// Fig16Data holds both utilization series, downsampled to one minute for
// storage (the raw 2 s series of a 5-week run is ~1.5M samples), plus the
// 5-minute views the paper plots and the raw-resolution headline numbers.
type Fig16Data struct {
	Default   stats.Series // 1-minute means
	Oversub   stats.Series
	Default5m stats.Series
	Oversub5m stats.Series
	// Peak2s are the raw 2 s-resolution peaks of each series.
	DefaultPeak2s float64
	OversubPeak2s float64
}

func runFig16(o Options) (Result, error) {
	ms, err := simulateRows(o, []rowSpec{
		{policy: "polca", added: 0, intensity: 1, days: o.EvalDays},
		{policy: "polca", added: 0.30, intensity: 1, days: o.EvalDays},
	})
	if err != nil {
		return Result{}, err
	}
	base, over := ms[0], ms[1]
	data := Fig16Data{
		Default:       base.Util.Downsample(time.Minute),
		Oversub:       over.Util.Downsample(time.Minute),
		Default5m:     base.Util.Downsample(5 * time.Minute),
		Oversub5m:     over.Util.Downsample(5 * time.Minute),
		DefaultPeak2s: base.Util.Peak(),
		OversubPeak2s: over.Util.Peak(),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "Series", "mean", "peak(2s)", "peak(5min)")
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "default servers", pct(data.Default.Mean()), pct(data.DefaultPeak2s), pct(data.Default5m.Peak()))
	fmt.Fprintf(&b, "%-26s %10s %10s %10s\n", "30% more servers", pct(data.Oversub.Mean()), pct(data.OversubPeak2s), pct(data.Oversub5m.Peak()))
	fmt.Fprintf(&b, "\n%s\n", render.Lines(map[string]stats.Series{
		"default":      data.Default5m,
		"+30% servers": data.Oversub5m,
	}, render.ChartOptions{
		Title: "Row power utilization (5-minute averages)",
		YMin:  0.3, YMax: 1.05, Height: 10, YLabel: "fraction of provisioned power",
	}))
	fmt.Fprintf(&b, "Daily peak utilization (5-min averages):\n")
	days := int(data.Default5m.Duration() / (24 * time.Hour))
	for d := 0; d < days; d++ {
		from := time.Duration(d) * 24 * time.Hour
		to := from + 24*time.Hour
		fmt.Fprintf(&b, "  day %2d: default %s, +30%% %s\n", d+1,
			pct(data.Default5m.Slice(from, to).Peak()), pct(data.Oversub5m.Slice(from, to).Peak()))
	}
	return Result{Text: b.String(), Data: data}, nil
}

// --- Figures 17 & 18 ---

// Fig17Row is one policy's normalized latency metrics (POLCA at default
// intensity = 1.0).
type Fig17Row struct {
	Policy    string
	Intensity float64
	Brakes    int
	NormP50   map[workload.Priority]float64
	NormP99   map[workload.Priority]float64
	NormMax   map[workload.Priority]float64
}

// fig17Rows runs the four policies at both intensities (shared by fig17
// and fig18 through the simulation cache).
func fig17Rows(o Options) ([]Fig17Row, error) {
	policies := []string{"polca", "1tl", "1ta", "nocap"}
	names := map[string]string{"polca": "POLCA", "1tl": "1-Thresh-Low-Pri", "1ta": "1-Thresh-All", "nocap": "No-cap"}
	intensities := []float64{1.0, 1.05}
	specs := make([]rowSpec, 0, len(intensities)*len(policies))
	for _, in := range intensities {
		for _, p := range policies {
			specs = append(specs, rowSpec{policy: p, added: 0.30, intensity: in, days: o.EvalDays})
		}
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return nil, err
	}
	var ref *cluster.Metrics
	var rows []Fig17Row
	for ii, in := range intensities {
		for pi, p := range policies {
			m := ms[ii*len(policies)+pi]
			if p == "polca" && in == 1.0 {
				ref = m
			}
			row := Fig17Row{
				Policy: names[p], Intensity: in, Brakes: m.BrakeEvents,
				NormP50: map[workload.Priority]float64{},
				NormP99: map[workload.Priority]float64{},
				NormMax: map[workload.Priority]float64{},
			}
			for _, pri := range []workload.Priority{workload.Low, workload.High} {
				row.NormP50[pri] = latp(m, pri, 50) / latp(ref, pri, 50)
				row.NormP99[pri] = latp(m, pri, 99) / latp(ref, pri, 99)
				row.NormMax[pri] = latp(m, pri, 100) / latp(ref, pri, 100)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFig17(o Options) (Result, error) {
	rows, err := fig17Rows(o)
	if err != nil {
		return Result{}, err
	}
	var cells [][]string
	for _, r := range rows {
		label := r.Policy
		if r.Intensity > 1 {
			label += fmt.Sprintf("+%.0f%%", (r.Intensity-1)*100)
		}
		cells = append(cells, []string{
			label,
			f3(r.NormP50[workload.Low]), f3(r.NormP50[workload.High]),
			f3(r.NormP99[workload.Low]), f3(r.NormP99[workload.High]),
			f3(r.NormMax[workload.Low]), f3(r.NormMax[workload.High]),
		})
	}
	text := table([]string{"Policy", "LP p50", "HP p50", "LP p99", "HP p99", "LP max", "HP max"}, cells)
	var bars []render.Bar
	for _, r := range rows {
		label := r.Policy
		if r.Intensity > 1 {
			label += "+5%"
		}
		bars = append(bars, render.Bar{Label: label, Value: r.NormP99[workload.Low]})
	}
	text += "\n" + render.Bars(bars, render.BarOptions{
		Title: "Low-priority p99 latency (normalized to POLCA; lower is better)", Reference: 1.0,
	})
	return Result{Text: text, Data: rows}, nil
}

func runFig18(o Options) (Result, error) {
	rows, err := fig17Rows(o)
	if err != nil {
		return Result{}, err
	}
	var cells [][]string
	for _, r := range rows {
		label := r.Policy
		if r.Intensity > 1 {
			label += fmt.Sprintf("+%.0f%%", (r.Intensity-1)*100)
		}
		cells = append(cells, []string{label, fmt.Sprintf("%d", r.Brakes)})
	}
	text := table([]string{"Policy", "Power brake events"}, cells)
	var bars []render.Bar
	for _, r := range rows {
		label := r.Policy
		if r.Intensity > 1 {
			label += "+5%"
		}
		bars = append(bars, render.Bar{Label: label, Value: float64(r.Brakes)})
	}
	text += "\n" + render.Bars(bars, render.BarOptions{
		Title: "Power brake events (log scale; lower is better)", Log: true, Format: "%.0f",
	})
	return Result{Text: text, Data: rows}, nil
}
