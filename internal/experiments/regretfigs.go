package experiments

import (
	"fmt"
	"strings"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/replay"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/trace"
)

func init() {
	register("figregret", "Extension: counterfactual replay of a recorded POLCA serve day with per-decision regret", runFigRegret)
}

// FigRegretPolicyRow is one alternate cap policy replayed over the
// recorded day.
type FigRegretPolicyRow struct {
	Policy   string
	Diverged int
	Ticks    int
	// HeadroomKJ is energy the deployed config left unreclaimed vs this
	// alternate on safe ticks; SavedKJ is energy this alternate would have
	// reclaimed by capping deeper; LatencyS is busy-server execution
	// seconds the deployed config burned relative to this alternate
	// (negative = the alternate would have burned more).
	HeadroomKJ float64
	SavedKJ    float64
	LatencyS   float64
	BrakeRisk  int
	PerReqJ    float64
}

// FigRegretRouterRow is one router policy replayed over the recorded
// candidate snapshots.
type FigRegretRouterRow struct {
	Router      string
	Diverged    int
	Routes      int
	ExcessLoad  float64
	MeanKV      float64
	CappedPicks int
}

// FigRegretData carries the replayed day.
type FigRegretData struct {
	Ticks, Routes int
	// SelfDiverged and RouteSelfDiverged must be zero: the deployed
	// configuration replayed against its own log reproduces every decision.
	SelfDiverged      int
	RouteSelfDiverged int
	Policies          []FigRegretPolicyRow
	Routers           []FigRegretRouterRow
}

// runFigRegret records one POLCA serve-mode day (guard, watchdog, and a
// chaos scenario armed, so the log holds capped ticks, outage epochs, and
// watchdog engagement) with the decision recorder attached, then replays
// the log — no re-simulation — against the standard alternates, a T1/T2
// threshold sweep, and every registered router policy, pricing where the
// deployed configuration left headroom unreclaimed or burned latency.
func runFigRegret(o Options) (Result, error) {
	horizon := horizonFromDays(1)
	faultSpec := "tdrop=0.1,crash=6h+45,kill=2@8h+1h"
	if o.Quick {
		horizon = 3 * time.Hour
		faultSpec = "tdrop=0.1,crash=30m+45,kill=1@90m+30m"
	}

	cfg := cluster.Production()
	cfg.BaseServers = o.RowServers
	cfg.AddedFraction = 0.30
	cfg.Seed = o.Seed
	// Round-robin is the stateful baseline: its replays prove cursor
	// reproduction, and the router comparison shows what queue- and
	// KV-aware placement would have picked on the same snapshots.
	cfg.Serve = &serve.Config{Router: "round-robin"}
	fs, err := faults.Parse(faultSpec)
	if err != nil {
		return Result{}, err
	}
	cfg.Faults = fs
	cfg.WatchdogEpochs = 5
	cfg.OOBRetryBudget = 8
	cfg.OOBRetryBackoff = 4 * time.Second
	cfg.DropStaleOOB = true
	cfg.ServeRetries = 3
	cfg.ServeRetryBackoff = 2 * time.Second

	ctrl := polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
	pspec, gspec, err := polca.DescribeController(ctrl)
	if err != nil {
		return Result{}, err
	}
	rec := obs.NewDecisionRecorder()
	rec.UpdateMeta(func(m *obs.DecisionMeta) {
		m.Spec, m.Guard, m.Seed = pspec, gspec, cfg.Seed
	})
	eng := sim.New(o.Seed)
	// The decision recorder must ride the observer, so this run bypasses
	// the sweep cache (which strips observers down to metrics).
	eng.SetObserver(&obs.Observer{Decisions: rec})
	row, err := cluster.NewRow(eng, cfg, ctrl)
	if err != nil {
		return Result{}, err
	}

	fitCfg := cfg
	fitCfg.PowerIntensity = 1
	ref := trace.ProductionInference().Reference(horizon, newSeededRand(o.Seed, "ref"))
	plan, err := trace.FitArrivals(ref, fitCfg.Shape(), 5*time.Minute)
	if err != nil {
		return Result{}, err
	}
	row.Run(plan.Scale(1 + cfg.AddedFraction))

	// Round-trip through the wire format: the experiment replays exactly
	// what polca-replay would read, not the in-memory recorder state.
	var buf strings.Builder
	if err := rec.WriteJSONL(&buf); err != nil {
		return Result{}, err
	}
	l, err := replay.Load(strings.NewReader(buf.String()))
	if err != nil {
		return Result{}, err
	}

	data := FigRegretData{Ticks: l.Ticks(), Routes: l.Routes()}
	data.SelfDiverged, _, err = replay.SelfCheck(l)
	if err != nil {
		return Result{}, err
	}
	_, selfRoutes, err := replay.ReplayRoutes(l, l.Meta.Router)
	if err != nil {
		return Result{}, err
	}
	data.RouteSelfDiverged = selfRoutes.Diverged

	prof, err := replay.NewProfiler(l.Meta)
	if err != nil {
		return Result{}, err
	}
	alts, err := replay.Alternates(l)
	if err != nil {
		return Result{}, err
	}
	alts = append(alts, replay.ThresholdGrid(l, []float64{-0.05, 0, 0.05})...)
	for _, a := range alts {
		s := replay.Evaluate(l, a.Name, a.Ctrl, prof, 0)
		data.Policies = append(data.Policies, FigRegretPolicyRow{
			Policy: s.Name, Diverged: s.Diverged, Ticks: s.Ticks,
			HeadroomKJ: s.HeadroomJ / 1e3, SavedKJ: s.SavedJ / 1e3,
			LatencyS: s.LatencyS, BrakeRisk: s.BrakeRiskTicks, PerReqJ: s.EnergyPerReqJ,
		})
	}
	for _, name := range serve.RouterNames() {
		_, sum, err := replay.ReplayRoutes(l, name)
		if err != nil {
			return Result{}, err
		}
		data.Routers = append(data.Routers, FigRegretRouterRow{
			Router: sum.Name, Diverged: sum.Diverged, Routes: sum.Routes,
			ExcessLoad: sum.MeanExcessLoad, MeanKV: sum.MeanChosenKV,
			CappedPicks: sum.CappedPicks,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Recorded day: %s over %s, %d controller ticks, %d router picks (faults: %s)\n",
		l.Meta.Policy, horizon, data.Ticks, data.Routes, faultSpec)
	fmt.Fprintf(&b, "Self-replay fidelity: %d/%d ticks and %d/%d picks reproduce the recorded decisions\n\n",
		data.Ticks-data.SelfDiverged, data.Ticks, data.Routes-data.RouteSelfDiverged, data.Routes)
	b.WriteString("Counterfactual cap policies (priced on recorded snapshots; positive latency = deployed ran slower):\n")
	var cells [][]string
	for _, r := range data.Policies {
		cells = append(cells, []string{
			r.Policy, fmt.Sprintf("%d/%d", r.Diverged, r.Ticks),
			f2(r.HeadroomKJ), f2(r.SavedKJ), fmt.Sprintf("%.1f", r.LatencyS),
			fmt.Sprintf("%d", r.BrakeRisk), fmt.Sprintf("%.1f", r.PerReqJ),
		})
	}
	b.WriteString(table([]string{
		"policy", "diverged", "headroom kJ", "saved kJ", "latency s", "brake-risk", "J/req",
	}, cells))
	b.WriteString("\nRouter policies over recorded candidate snapshots:\n")
	cells = cells[:0]
	for _, r := range data.Routers {
		name := r.Router
		if name == l.Meta.Router {
			name += " (deployed)"
		}
		cells = append(cells, []string{
			name, fmt.Sprintf("%d/%d", r.Diverged, r.Routes),
			f2(r.ExcessLoad), f2(r.MeanKV), fmt.Sprintf("%d", r.CappedPicks),
		})
	}
	b.WriteString(table([]string{
		"router", "diverged", "excess load", "mean KV", "capped picks",
	}, cells))
	b.WriteString("\nheadroom = energy the deployed config refused while the row had safe margin;\nsaved = energy the alternate would have reclaimed capping deeper; brake-risk =\nticks where reclaiming the headroom risks tripping the brake the deployed\nconfig respected.\n")
	return Result{Text: b.String(), Data: data}, nil
}
