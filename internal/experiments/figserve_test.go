package experiments

import (
	"testing"

	"polca/internal/workload"
)

func TestFigServe(t *testing.T) {
	res := quick(t, "figserve")
	data := res.Data.(FigServeData)

	if len(data.Power) != 4 {
		t.Fatalf("power rows = %d, want 4 (2 backends x 2 policies)", len(data.Power))
	}
	for i, want := range []struct{ backend, policy string }{
		{"slot", "No-cap"}, {"slot", "POLCA"}, {"serve", "No-cap"}, {"serve", "POLCA"},
	} {
		p := data.Power[i]
		if p.Backend != want.backend || p.Policy != want.policy {
			t.Errorf("power row %d = %s/%s, want %s/%s", i, p.Backend, p.Policy, want.backend, want.policy)
		}
		if p.Mean <= 0 || p.P99 < p.P50 || p.Peak2s < p.P99 {
			t.Errorf("power row %d distribution inconsistent: %+v", i, p)
		}
	}

	classes := workload.Names(workload.Table6())
	if len(data.Classes) != len(classes) {
		t.Fatalf("class rows = %d, want %d", len(data.Classes), len(classes))
	}
	for i, c := range data.Classes {
		if c.Class != classes[i] {
			t.Errorf("class row %d = %s, want %s", i, c.Class, classes[i])
		}
		if c.TTFTp99NoCap <= 0 || c.TBTp99NoCapMS <= 0 {
			t.Errorf("class %s has empty token latencies: %+v", c.Class, c)
		}
	}
	if data.Batches == 0 {
		t.Error("serve run formed no batches")
	}
	if data.KVHighWater <= 0 || data.KVHighWater > 1 {
		t.Errorf("KV high water = %v, want (0, 1]", data.KVHighWater)
	}
	// Quick mode skips the threshold sweep entirely (including the default
	// combo, which is only prepended when the sweep runs).
	if len(data.Sensitivity) != 0 {
		t.Errorf("quick mode ran the threshold sweep: %+v", data.Sensitivity)
	}
}

// TestFigServeDeterministic reruns figserve with a cold simulation cache
// and requires the identical rendering — the serve backend must not leak
// map-iteration or scheduling nondeterminism into the figure.
func TestFigServeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two cold figserve runs")
	}
	a := quick(t, "figserve")
	resetEvalCache()
	b := quick(t, "figserve")
	if a.Text != b.Text {
		t.Errorf("figserve renders differ across cold-cache reruns:\n%s\n---\n%s", a.Text, b.Text)
	}
}
