package experiments

import (
	"fmt"
	"strings"
	"time"

	"polca/internal/cluster"
	"polca/internal/scenario"
	"polca/internal/stats"
	"polca/internal/workload"
)

func init() {
	register("figscenario", "Extension: workload scenario library under No-cap vs POLCA (serving backend)", runFigScenario)
}

// FigScenarioRow is one scenario x policy outcome on the serving backend.
type FigScenarioRow struct {
	Scenario  string
	Policy    string
	Requests  int
	MeanUtil  float64
	PeakUtil  float64
	MaxRise2s float64
	Brakes    int
	Caps      int // OOB cap commands issued
	TTFTp99   float64
	// Attain is the aggregate SLO attainment (first token within the TTFT
	// SLO, over first admissions); WorstClass/WorstAttain single out the
	// cohort that suffers most, and Jain is the fairness index of the
	// per-class attainment fractions (1 = every class equally served).
	Attain      float64
	WorstClass  string
	WorstAttain float64
	Jain        float64
}

// FigScenarioData carries the sweep.
type FigScenarioData struct {
	Rows []FigScenarioRow
}

// runFigScenario sweeps the committed scenario library (or the single
// scenario named by Options.Scenario) under No-cap and POLCA on the
// request-level serving backend: does the power story the paper tells on
// the Table 6 mix survive diverse traffic — bursty multi-turn chat, launch
// ramps, press spikes — and who pays for the caps when it is enforced?
func runFigScenario(o Options) (Result, error) {
	names := scenario.Names()
	if o.Quick {
		names = []string{"chatbot", "launch-day"}
	}
	if o.Scenario != "" {
		names = []string{o.Scenario}
	}

	var specs []rowSpec
	for _, n := range names {
		for _, pol := range []string{"nocap", "polca"} {
			specs = append(specs, rowSpec{
				policy: pol, added: 0.30, intensity: 1, days: o.SweepDays,
				serveRouter: "session-affinity", scenario: n,
			})
		}
	}
	ms, err := simulateRows(o, specs)
	if err != nil {
		return Result{}, err
	}

	data := FigScenarioData{}
	for i, s := range specs {
		m := ms[i]
		row := FigScenarioRow{
			Scenario: s.scenario, Policy: map[string]string{"nocap": "No-cap", "polca": "POLCA"}[s.policy],
			Requests:  m.Completed[workload.Low] + m.Completed[workload.High],
			MeanUtil:  m.Util.Mean(),
			PeakUtil:  m.Util.Peak(),
			MaxRise2s: m.Util.MaxRise(2 * time.Second),
			Brakes:    m.BrakeEvents,
			Caps:      m.LockCommands,
			TTFTp99:   aggTTFTp99(m),
		}
		row.Attain, row.WorstClass, row.WorstAttain, row.Jain = classAttainment(m)
		data.Rows = append(data.Rows, row)
	}

	var b strings.Builder
	b.WriteString("Scenario library on the serving backend (+30% servers, session-affinity router):\n")
	var cells [][]string
	for _, r := range data.Rows {
		cells = append(cells, []string{
			r.Scenario, r.Policy, fmt.Sprintf("%d", r.Requests),
			pct(r.MeanUtil), pct(r.PeakUtil), pct(r.MaxRise2s),
			fmt.Sprintf("%d", r.Brakes), fmt.Sprintf("%d", r.Caps),
			f2(r.TTFTp99), pct(r.Attain),
			fmt.Sprintf("%s %s", r.WorstClass, pct(r.WorstAttain)),
			f3(r.Jain),
		})
	}
	b.WriteString(table([]string{
		"Scenario", "Policy", "Requests", "mean util", "peak", "rise(2s)",
		"Brakes", "Caps", "TTFT p99 (s)", "SLO attain", "worst class", "Jain",
	}, cells))
	b.WriteString("\nSLO attainment = first token within the TTFT SLO over first admissions;\nJain = fairness index of per-class attainment (1.0 = classes suffer equally).\n")
	return Result{Text: b.String(), Data: data}, nil
}

// classAttainment folds the per-class SLO counters into the aggregate
// attainment, the worst-served class, and the Jain fairness index of the
// per-class attainment fractions.
func classAttainment(m *cluster.Metrics) (agg float64, worst string, worstAttain float64, jain float64) {
	var okSum, arrSum int
	var fracs []float64
	worstAttain = 1
	for _, name := range workload.Names(m.Config.Classes) {
		arrived := m.ClassArrived[name]
		if arrived == 0 {
			continue
		}
		frac := float64(m.ClassSLOOK[name]) / float64(arrived)
		okSum += m.ClassSLOOK[name]
		arrSum += arrived
		fracs = append(fracs, frac)
		if worst == "" || frac < worstAttain {
			worst, worstAttain = name, frac
		}
	}
	if arrSum > 0 {
		agg = float64(okSum) / float64(arrSum)
	}
	return agg, worst, worstAttain, stats.Jain(fracs)
}
