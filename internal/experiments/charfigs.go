package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/profiler"
	"polca/internal/render"
	"polca/internal/server"
	"polca/internal/stats"
)

// newSeededRand derives a deterministic stream from the option seed and a
// per-experiment name.
func newSeededRand(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func init() {
	register("fig3", "Figure 3: Provisioned power breakdown (8xA100-80GB server)", runFig3)
	register("fig4", "Figure 4: Training power timeseries under capping knobs", runFig4)
	register("fig5", "Figure 5: Peak power vs performance reduction (training)", runFig5)
	register("fig6", "Figure 6: GPU power timeseries for inference models", runFig6)
	register("fig7", "Figure 7: GPU counter correlations (BLOOM prompt vs token)", runFig7)
	register("fig8", "Figure 8: Power and latency vs input/batch/output sizes", runFig8)
	register("fig9", "Figure 9: Capping and locking on BLOOM inference", runFig9)
	register("fig10", "Figure 10: Peak power vs performance across SM frequencies", runFig10)
	register("fig11", "Figure 11: Server vs GPU peak power in a production fleet", runFig11)
}

// --- Figure 3 ---

// Fig3Row is one component of the provisioning breakdown.
type Fig3Row struct {
	Component   string
	Provisioned float64
	Share       float64
}

func runFig3(o Options) (Result, error) {
	spec := server.DGXA100(gpu.A100SXM80GB())
	var rows []Fig3Row
	rows = append(rows, Fig3Row{
		Component:   "gpus",
		Provisioned: spec.GPUProvisionedWatts(),
		Share:       spec.GPUProvisionedWatts() / spec.ProvisionedWatts,
	})
	for _, c := range spec.Components {
		rows = append(rows, Fig3Row{Component: c.Name, Provisioned: c.ProvisionedWatts, Share: c.ProvisionedWatts / spec.ProvisionedWatts})
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Component, fmt.Sprintf("%.0f W", r.Provisioned), pct(r.Share)})
	}
	text := fmt.Sprintf("%s rated power: %.0f W\n", spec.Name, spec.ProvisionedWatts) +
		table([]string{"Component", "Provisioned", "Share"}, cells)
	return Result{Text: text, Data: rows}, nil
}

// --- Figure 4 ---

// Fig4Row summarizes one training timeseries.
type Fig4Row struct {
	Model     string
	Knob      string
	PeakTDP   float64 // sustained peak / TDP
	TroughTDP float64 // sync-phase trough / TDP
	IterSec   float64
	Series    stats.Series // 100 ms power samples, normalized to TDP
}

func runFig4(o Options) (Result, error) {
	iters := 5
	if o.Quick {
		iters = 2
	}
	knobs := []profiler.Knob{{}, {PowerCapWatts: 325}, {LockClockMHz: 1100}}
	var rows []Fig4Row
	for _, cfg := range plan.TrainingProfiles() {
		for _, k := range knobs {
			run, err := profiler.RunTraining(cfg, k, iters)
			if err != nil {
				return Result{}, err
			}
			tdp := run.Spec.TDPWatts
			series := run.Timeline.SampleInstant(profiler.DCGMInterval, func(c gpu.Counters) float64 {
				return c.PowerWatts / tdp
			})
			rows = append(rows, Fig4Row{
				Model:     cfg.Model.Name,
				Knob:      k.String(),
				PeakTDP:   run.PeakWatts / tdp,
				TroughTDP: run.TroughWatts / tdp,
				IterSec:   run.IterSeconds,
				Series:    series,
			})
		}
	}
	var cells [][]string
	charts := map[string]stats.Series{}
	for _, r := range rows {
		cells = append(cells, []string{r.Model, r.Knob, f2(r.PeakTDP), f2(r.TroughTDP), f2(r.IterSec)})
		if r.Model == "GPT-NeoX-20B" {
			charts[r.Knob] = r.Series
		}
	}
	text := table([]string{"Model", "Knob", "Peak/TDP", "Trough/TDP", "Iter (s)"}, cells)
	text += "\n" + render.Lines(charts, render.ChartOptions{
		Title: "GPT-NeoX-20B training power (normalized to TDP)",
		YMin:  0, YMax: 1.2, Height: 10, YLabel: "power / TDP",
	})
	return Result{Text: text, Data: rows}, nil
}

// --- Figure 5 ---

// Fig5Row is one sweep point for one model.
type Fig5Row struct {
	Model              string
	Knob               string
	PeakPowerReduction float64
	PerfReduction      float64
}

func runFig5(o Options) (Result, error) {
	clocks := []float64{1400, 1350, 1300, 1250, 1200, 1150, 1100}
	caps := []float64{400, 380, 360, 340, 325, 310, 300}
	if o.Quick {
		clocks = []float64{1400, 1250, 1100}
		caps = []float64{400, 350, 300}
	}
	var rows []Fig5Row
	for _, cfg := range plan.TrainingProfiles() {
		fs, err := profiler.TrainingFrequencySweep(cfg, clocks)
		if err != nil {
			return Result{}, err
		}
		for _, p := range fs {
			rows = append(rows, Fig5Row{Model: cfg.Model.Name, Knob: p.Knob.String(), PeakPowerReduction: p.PeakPowerReduction, PerfReduction: p.PerfReduction})
		}
		ps, err := profiler.TrainingPowerCapSweep(cfg, caps)
		if err != nil {
			return Result{}, err
		}
		for _, p := range ps {
			rows = append(rows, Fig5Row{Model: cfg.Model.Name, Knob: p.Knob.String(), PeakPowerReduction: p.PeakPowerReduction, PerfReduction: p.PerfReduction})
		}
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Model, r.Knob, pct(r.PeakPowerReduction), pct(r.PerfReduction)})
	}
	return Result{
		Text: table([]string{"Model", "Knob", "Peak power reduction", "Perf reduction"}, cells),
		Data: rows,
	}, nil
}

// --- Figure 6 ---

// Fig6Row summarizes one model's inference power timeseries.
type Fig6Row struct {
	Model      string
	PromptPeak float64 // /TDP
	TokenMean  float64 // /TDP
	RequestSec float64
	Series     stats.Series
}

func runFig6(o Options) (Result, error) {
	requests := 3
	var rows []Fig6Row
	for _, m := range llm.InferenceModels() {
		cfg := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 256}
		run, err := profiler.RunInference(cfg, profiler.Knob{}, 1, requests, 500*time.Millisecond)
		if err != nil {
			return Result{}, err
		}
		tdp := run.Spec.TDPWatts
		var promptPeak, tokenSum, tokenDur float64
		for _, sp := range run.Spans {
			sub := run.Timeline.MeanBetween(sp.From, sp.To, func(c gpu.Counters) float64 { return c.PowerWatts })
			if sp.Name == "prompt" {
				if p := run.Timeline.At(sp.From).PowerWatts; p > promptPeak {
					promptPeak = p
				}
				_ = sub
			} else {
				tokenSum += sub * (sp.To - sp.From).Seconds()
				tokenDur += (sp.To - sp.From).Seconds()
			}
		}
		tokenMean := 0.0
		if tokenDur > 0 {
			tokenMean = tokenSum / tokenDur
		}
		rows = append(rows, Fig6Row{
			Model:      m.Name,
			PromptPeak: promptPeak / tdp,
			TokenMean:  tokenMean / tdp,
			RequestSec: run.MeanLatency().Seconds(),
			Series:     run.PowerSeries(),
		})
	}
	var cells [][]string
	var bloomSeries stats.Series
	tdp := gpu.A100SXM80GB().TDPWatts
	for _, r := range rows {
		cells = append(cells, []string{r.Model, f2(r.PromptPeak), f2(r.TokenMean), f2(r.RequestSec)})
		if r.Model == "BLOOM-176B" {
			bloomSeries = stats.Series{Step: r.Series.Step, Values: stats.Normalize(r.Series.Values, tdp)}
		}
	}
	text := table([]string{"Model", "Prompt peak/TDP", "Token mean/TDP", "Request (s)"}, cells)
	text += "\n" + render.Lines(map[string]stats.Series{"BLOOM-176B": bloomSeries}, render.ChartOptions{
		Title: "BLOOM-176B inference power: prompt spikes + token plateaus",
		YMin:  0, YMax: 1.2, Height: 10, YLabel: "power / TDP",
	})
	return Result{Text: text, Data: rows}, nil
}

// --- Figure 7 ---

// Fig7Data holds the two correlation matrices.
type Fig7Data struct {
	Prompt profiler.CorrMatrix
	Token  profiler.CorrMatrix
}

func renderMatrix(m profiler.CorrMatrix, title string) string {
	return render.Heatmap(m.Labels, m.R, title)
}

func runFig7(o Options) (Result, error) {
	cfg := plan.InferenceConfig{Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16, BatchSize: 1, InputTokens: 4096, OutputTokens: 64}
	prompt, token, err := profiler.CounterCorrelations(cfg, 3, o.Seed)
	if err != nil {
		return Result{}, err
	}
	text := renderMatrix(prompt, "Prompt phase") + "\n" + renderMatrix(token, "Token phase")
	return Result{Text: text, Data: Fig7Data{Prompt: prompt, Token: token}}, nil
}

// --- Figure 8 ---

// Fig8Row is one (model, knob-dimension, value) measurement.
type Fig8Row struct {
	Model     string
	Dimension string // "input", "batch", "output"
	Value     int
	PeakTDP   float64
	MeanTDP   float64
	Latency   float64 // seconds
}

func runFig8(o Options) (Result, error) {
	inputs := []int{256, 512, 1024, 2048, 4096, 8192}
	batches := []int{1, 2, 4, 8, 16}
	outputs := []int{128, 256, 512, 1024, 2048, 4096}
	if o.Quick {
		inputs = []int{256, 2048, 8192}
		batches = []int{1, 16}
		outputs = []int{128, 1024}
	}
	var rows []Fig8Row
	for _, m := range llm.InferenceModels() {
		base := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: 1024, OutputTokens: 256}
		for _, in := range inputs {
			cfg := base
			cfg.InputTokens = in
			mm, err := profiler.MeasureInference(cfg, profiler.Knob{})
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, Fig8Row{Model: m.Name, Dimension: "input", Value: in, PeakTDP: mm.PeakTDP, MeanTDP: mm.MeanTDP, Latency: mm.Latency.Seconds()})
		}
		for _, b := range batches {
			cfg := base
			cfg.BatchSize = b
			cfg.InputTokens = 512
			mm, err := profiler.MeasureInference(cfg, profiler.Knob{})
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, Fig8Row{Model: m.Name, Dimension: "batch", Value: b, PeakTDP: mm.PeakTDP, MeanTDP: mm.MeanTDP, Latency: mm.Latency.Seconds()})
		}
		for _, out := range outputs {
			cfg := base
			cfg.OutputTokens = out
			mm, err := profiler.MeasureInference(cfg, profiler.Knob{})
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, Fig8Row{Model: m.Name, Dimension: "output", Value: out, PeakTDP: mm.PeakTDP, MeanTDP: mm.MeanTDP, Latency: mm.Latency.Seconds()})
		}
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Model, r.Dimension, fmt.Sprintf("%d", r.Value), f2(r.PeakTDP), f2(r.MeanTDP), f2(r.Latency)})
	}
	return Result{
		Text: table([]string{"Model", "Dim", "Value", "Peak/TDP", "Mean/TDP", "Latency (s)"}, cells),
		Data: rows,
	}, nil
}

// --- Figure 9 ---

// Fig9Row summarizes BLOOM inference under one knob.
type Fig9Row struct {
	Knob       string
	PeakTDP    float64 // recorded peak including reactive overshoot
	MeanTDP    float64
	LatencySec float64
	Series     stats.Series
}

func runFig9(o Options) (Result, error) {
	cfg := plan.InferenceConfig{Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16, BatchSize: 1, InputTokens: 8192, OutputTokens: 128}
	knobs := []profiler.Knob{{}, {PowerCapWatts: 325}, {LockClockMHz: 1100}}
	var rows []Fig9Row
	for _, k := range knobs {
		run, err := profiler.RunInference(cfg, k, 1, 3, 500*time.Millisecond)
		if err != nil {
			return Result{}, err
		}
		tdp := run.Spec.TDPWatts
		s := run.PowerSeries()
		rows = append(rows, Fig9Row{
			Knob:       k.String(),
			PeakTDP:    s.Peak() / tdp,
			MeanTDP:    s.Mean() / tdp,
			LatencySec: run.MeanLatency().Seconds(),
			Series:     s,
		})
	}
	var cells [][]string
	charts := map[string]stats.Series{}
	tdp := gpu.A100SXM80GB().TDPWatts
	for _, r := range rows {
		cells = append(cells, []string{r.Knob, f2(r.PeakTDP), f2(r.MeanTDP), f2(r.LatencySec)})
		charts[r.Knob] = stats.Series{Step: r.Series.Step, Values: stats.Normalize(r.Series.Values, tdp)}
	}
	text := table([]string{"Knob", "Peak/TDP", "Mean/TDP", "Latency (s)"}, cells)
	text += "\n" + render.Lines(charts, render.ChartOptions{
		Title: "BLOOM-176B inference under capping knobs (input=8192, output=128)",
		YMin:  0, YMax: 1.2, Height: 10, YLabel: "power / TDP",
	})
	return Result{Text: text, Data: rows}, nil
}

// --- Figure 10 ---

// Fig10Row is one frequency sweep point.
type Fig10Row struct {
	Subject            string // model name or BLOOM config label
	ClockMHz           float64
	PeakPowerReduction float64
	PerfReduction      float64
	PeakTDP            float64
}

func runFig10(o Options) (Result, error) {
	clocks := []float64{1410, 1350, 1300, 1250, 1200, 1150, 1100}
	if o.Quick {
		clocks = []float64{1410, 1250, 1100}
	}
	var rows []Fig10Row
	// (a) All models at a common configuration.
	for _, m := range llm.InferenceModels() {
		cfg := plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 256}
		pts, err := profiler.FrequencySweep(cfg, clocks)
		if err != nil {
			return Result{}, err
		}
		for _, p := range pts {
			rows = append(rows, Fig10Row{Subject: m.Name, ClockMHz: p.Knob.LockClockMHz, PeakPowerReduction: p.PeakPowerReduction, PerfReduction: p.PerfReduction, PeakTDP: p.PeakTDP})
		}
	}
	// (b) BLOOM across batch/input configurations.
	bloom := llm.MustByName("BLOOM-176B")
	configs := []struct {
		label string
		b, i  int
	}{
		{"b=1 i=512", 1, 512}, {"b=1 i=2048", 1, 2048}, {"b=1 i=8192", 1, 8192}, {"b=16 i=512", 16, 512},
	}
	for _, c := range configs {
		cfg := plan.InferenceConfig{Model: bloom, DType: llm.FP16, BatchSize: c.b, InputTokens: c.i, OutputTokens: 256}
		pts, err := profiler.FrequencySweep(cfg, clocks)
		if err != nil {
			return Result{}, err
		}
		for _, p := range pts {
			rows = append(rows, Fig10Row{Subject: "BLOOM " + c.label, ClockMHz: p.Knob.LockClockMHz, PeakPowerReduction: p.PeakPowerReduction, PerfReduction: p.PerfReduction, PeakTDP: p.PeakTDP})
		}
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Subject, fmt.Sprintf("%.0f", r.ClockMHz), pct(r.PeakPowerReduction), pct(r.PerfReduction)})
	}
	return Result{
		Text: table([]string{"Subject", "SM MHz", "Peak power reduction", "Perf reduction"}, cells),
		Data: rows,
	}, nil
}

// --- Figure 11 ---

// Fig11Row is one fleet server's peak readings.
type Fig11Row struct {
	Server        int
	GPUPeakTDP    float64 // aggregate GPU peak power / aggregate GPU TDP
	ServerPeakTDP float64 // server peak power / provisioned server power
	GPUShare      float64 // GPU power share of server power
}

// Fig11Data carries the rows plus fleet-level statistics.
type Fig11Data struct {
	Rows         []Fig11Row
	MeanGPUShare float64
	Correlation  float64
}

func runFig11(o Options) (Result, error) {
	fleet := 64
	if o.Quick {
		fleet = 16
	}
	spec := server.DGXA100(gpu.A100SXM80GB())
	srv := server.New(0, spec)
	rng := newSeededRand(o.Seed, "fig11")
	classes := []plan.InferenceConfig{}
	for _, m := range llm.InferenceModels() {
		classes = append(classes, plan.InferenceConfig{Model: m, DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 256})
	}
	var rows []Fig11Row
	var gpuPeaks, srvPeaks []float64
	gpuTDP := spec.GPUProvisionedWatts()
	for i := 0; i < fleet; i++ {
		cfg := classes[rng.Intn(len(classes))]
		cfg.InputTokens = 512 + rng.Intn(7680)
		cfg.BatchSize = 1 + rng.Intn(8)
		p, err := plan.NewInference(cfg)
		if err != nil {
			return Result{}, err
		}
		// Each server's GPUs draw the silicon lottery (±4% power, ±2% perf).
		dev := gpu.NewDevice(spec.GPU)
		dev.SetVariation(1+rng.NormFloat64()*0.04, 1+rng.NormFloat64()*0.02)
		peakGPU := dev.PeakPower(p.Prompt) * float64(spec.GPUCount)
		serverPeak := srv.PowerFromGPUs(peakGPU)
		rows = append(rows, Fig11Row{
			Server:        i,
			GPUPeakTDP:    peakGPU / gpuTDP,
			ServerPeakTDP: serverPeak / spec.ProvisionedWatts,
			GPUShare:      peakGPU / serverPeak,
		})
		gpuPeaks = append(gpuPeaks, peakGPU)
		srvPeaks = append(srvPeaks, serverPeak)
	}
	corr, err := stats.Pearson(gpuPeaks, srvPeaks)
	if err != nil {
		corr = 0
	}
	var shareSum float64
	for _, r := range rows {
		shareSum += r.GPUShare
	}
	data := Fig11Data{Rows: rows, MeanGPUShare: shareSum / float64(len(rows)), Correlation: corr}
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet of %d servers: mean GPU share of server power = %s, corr(GPU peak, server peak) = %s\n",
		fleet, pct(data.MeanGPUShare), f3(data.Correlation))
	fmt.Fprintf(&b, "GPU peak/TDP range: %s..%s; server peak/provisioned range: %s..%s\n",
		f2(minOf(rows, func(r Fig11Row) float64 { return r.GPUPeakTDP })),
		f2(maxOf(rows, func(r Fig11Row) float64 { return r.GPUPeakTDP })),
		f2(minOf(rows, func(r Fig11Row) float64 { return r.ServerPeakTDP })),
		f2(maxOf(rows, func(r Fig11Row) float64 { return r.ServerPeakTDP })))
	return Result{Text: b.String(), Data: data}, nil
}

func minOf[T any](xs []T, f func(T) float64) float64 {
	m := f(xs[0])
	for _, x := range xs[1:] {
		if v := f(x); v < m {
			m = v
		}
	}
	return m
}

func maxOf[T any](xs []T, f func(T) float64) float64 {
	m := f(xs[0])
	for _, x := range xs[1:] {
		if v := f(x); v > m {
			m = v
		}
	}
	return m
}
