package replay

import (
	"fmt"
	"sort"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/obs"
	"polca/internal/plan"
	"polca/internal/polca"
	"polca/internal/workload"
)

// Profiler converts a pool lock into execution-time and busy-power factors
// relative to uncapped, using the same inference cost model the simulation
// runs on (share-weighted over the priority's class mix). Factors are
// memoized per (priority, lock) — the replay grid revisits a handful of
// clocks thousands of times.
type Profiler struct {
	model   llm.Model
	dt      llm.DType
	classes []workload.Class
	memo    map[profKey][2]float64 // time factor, power factor
}

type profKey struct {
	pri  workload.Priority
	lock float64
}

// NewProfiler builds a profiler from the log header: the recorded model
// and dtype when present, the Production defaults otherwise. The class mix
// is the Table 6 production mix — the header does not carry classes, so
// scenario-specific mixes profile approximately.
func NewProfiler(meta obs.DecisionMeta) (*Profiler, error) {
	model := cluster.Production().Model
	if meta.Model != "" {
		m, err := llm.ByName(meta.Model)
		if err != nil {
			return nil, fmt.Errorf("replay: header model: %w", err)
		}
		model = m
	}
	dt := llm.FP16
	switch meta.DType {
	case "", "fp16":
	case "fp32":
		dt = llm.FP32
	case "int8":
		dt = llm.INT8
	case "fp8":
		dt = llm.FP8
	default:
		return nil, fmt.Errorf("replay: header dtype %q unknown", meta.DType)
	}
	return &Profiler{
		model:   model,
		dt:      dt,
		classes: workload.Table6(),
		memo:    map[profKey][2]float64{},
	}, nil
}

// Factors returns (timeFactor, powerFactor) for running the priority's mix
// at the given lock: both 1.0 uncapped, timeFactor > 1 and powerFactor < 1
// under a cap.
func (p *Profiler) Factors(pri workload.Priority, lockMHz float64) (tf, pf float64) {
	key := profKey{pri, lockMHz}
	if v, ok := p.memo[key]; ok {
		return v[0], v[1]
	}
	baseT, baseP := p.mixCost(pri, 0)
	t, w := p.mixCost(pri, lockMHz)
	tf, pf = t/baseT, w/baseP
	p.memo[key] = [2]float64{tf, pf}
	return tf, pf
}

// mixCost is the share-weighted mean execution time and mean busy GPU
// power of the priority's class mix under the lock (0 = boost) — the same
// construction polca's workload-aware frequency planner profiles with.
func (p *Profiler) mixCost(pri workload.Priority, lockMHz float64) (seconds, watts float64) {
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	dev.LockClock(lockMHz)
	var wsum, tsum, esum float64
	for _, cl := range p.classes {
		w := cl.Share * cl.LowShare
		if pri == workload.High {
			w = cl.Share * (1 - cl.LowShare)
		}
		if w <= 0 {
			continue
		}
		pl, err := plan.NewInference(plan.InferenceConfig{
			Model: p.model, DType: p.dt, BatchSize: 1,
			InputTokens:  (cl.PromptMin + cl.PromptMax) / 2,
			OutputTokens: (cl.OutputMin + cl.OutputMax) / 2,
		})
		if err != nil {
			// The model/dtype validated at construction; a class that cannot
			// plan contributes nothing rather than failing every factor call.
			continue
		}
		var dur time.Duration
		var energy float64
		for _, ph := range pl.Phases() {
			e := dev.Run(ph)
			dur += e.Duration
			energy += e.Energy()
		}
		wsum += w
		tsum += w * dur.Seconds()
		esum += w * energy / dur.Seconds()
	}
	if wsum == 0 {
		return 1, 1
	}
	return tsum / wsum, esum / wsum
}

// TickRegret prices one diverged tick: what the alternate's locks would
// have cost or reclaimed relative to the deployed decision, estimated from
// the recorded busy/power snapshot — no re-simulation.
type TickRegret struct {
	Seq          uint64
	At           time.Duration
	RecLP, RecHP float64 // deployed locks (0 = uncap)
	AltLP, AltHP float64 // alternate locks
	// DeltaW is the estimated row power change under the alternate
	// (positive = alternate runs hotter, i.e. the deployed config capped
	// harder than the alternate would have).
	DeltaW float64
	// HeadroomJ is energy the deployed config refused while the row had
	// safe headroom: DeltaW ×(telemetry interval) on ticks where the
	// alternate runs hotter without estimated brake risk.
	HeadroomJ float64
	// LatencyS is busy-server execution seconds the deployed config burned
	// relative to the alternate (positive = deployed was slower; negative =
	// the alternate would have been).
	LatencyS float64
	// SavedJ is energy the alternate would have reclaimed on ticks where
	// it caps deeper than the deployed config did.
	SavedJ float64
	// BrakeRisk marks ticks where the alternate's extra power pushes the
	// estimated utilization to the brake threshold: reclaiming that
	// headroom risks tripping the breaker the deployed config respected.
	BrakeRisk bool
}

// Score is the tick's regret magnitude used for top-K ranking: joules of
// headroom left plus joules the alternate would have saved, so both
// directions of divergence rank.
func (t TickRegret) Score() float64 { return t.HeadroomJ + t.SavedJ }

// PolicySummary aggregates one alternate cap policy's replay.
type PolicySummary struct {
	Name     string
	Ticks    int
	Diverged int
	// HeadroomJ totals energy the deployed config left unreclaimed vs this
	// alternate on safe ticks; SavedJ totals energy this alternate would
	// have reclaimed by capping deeper; LatencyS totals execution seconds
	// the deployed config burned relative to this alternate (negative =
	// this alternate would have burned more).
	HeadroomJ      float64
	SavedJ         float64
	LatencyS       float64
	BrakeRiskTicks int
	// EnergyPerReqJ is HeadroomJ+SavedJ spread over the log's route count
	// (serve mode) — a per-request scale for the divergence. Zero when the
	// log has no routes.
	EnergyPerReqJ float64
	// TopRegret holds the K highest-scoring diverged ticks, descending.
	TopRegret []TickRegret
}

// Evaluate replays the log against one alternate cap policy and prices
// every diverged tick. topK bounds the per-policy regret table (0 keeps
// every diverged tick).
func Evaluate(l *Log, name string, ctrl cluster.Controller, prof *Profiler, topK int) *PolicySummary {
	outs := ReplayCaps(l, ctrl)
	sum := &PolicySummary{Name: name, Ticks: len(outs)}
	var regrets []TickRegret
	ti := 0
	for _, d := range l.Decisions {
		if d.Kind != obs.DecTick {
			continue
		}
		o := outs[ti]
		ti++
		if !o.Diverged {
			continue
		}
		sum.Diverged++
		r := TickRegret{
			Seq: d.Seq, At: d.At,
			RecLP: d.LPDesiredMHz, RecHP: d.HPDesiredMHz,
			AltLP: o.LPMHz, AltHP: o.HPMHz,
		}
		step := (l.Meta.BusyServerW - l.Meta.IdleServerW)
		for _, pri := range []workload.Priority{workload.Low, workload.High} {
			busy, rec, alt := float64(d.LPBusy), d.LPDesiredMHz, o.LPMHz
			if pri == workload.High {
				busy, rec, alt = float64(d.HPBusy), d.HPDesiredMHz, o.HPMHz
			}
			if busy == 0 || rec == alt {
				continue
			}
			tfRec, pfRec := prof.Factors(pri, rec)
			tfAlt, pfAlt := prof.Factors(pri, alt)
			r.DeltaW += busy * step * (pfAlt - pfRec)
			r.LatencyS += busy * (tfRec - tfAlt) * l.Meta.TelemetrySec
		}
		if l.Meta.ProvisionedW > 0 {
			estUtil := d.TrueUtil + r.DeltaW/l.Meta.ProvisionedW
			r.BrakeRisk = r.DeltaW > 0 && estUtil >= l.Meta.BrakeUtil
		}
		switch {
		case r.DeltaW > 0 && !r.BrakeRisk:
			r.HeadroomJ = r.DeltaW * l.Meta.TelemetrySec
		case r.DeltaW < 0:
			r.SavedJ = -r.DeltaW * l.Meta.TelemetrySec
		}
		if r.BrakeRisk {
			sum.BrakeRiskTicks++
		}
		sum.HeadroomJ += r.HeadroomJ
		sum.SavedJ += r.SavedJ
		sum.LatencyS += r.LatencyS
		regrets = append(regrets, r)
	}
	sort.Slice(regrets, func(i, j int) bool {
		if regrets[i].Score() != regrets[j].Score() {
			return regrets[i].Score() > regrets[j].Score()
		}
		return regrets[i].Seq < regrets[j].Seq
	})
	if topK > 0 && len(regrets) > topK {
		regrets = regrets[:topK]
	}
	sum.TopRegret = regrets
	if n := l.Routes(); n > 0 {
		sum.EnergyPerReqJ = (sum.HeadroomJ + sum.SavedJ) / float64(n)
	}
	return sum
}

// NamedPolicy pairs an alternate controller with its display name.
type NamedPolicy struct {
	Name string
	Ctrl cluster.Controller
}

// Alternates builds the standard comparison set for a log: the deployed
// configuration itself (the fidelity anchor), the single-threshold
// variants, the ladder equivalent of the deployed thresholds when the
// deployed policy is POLCA, and no-cap. Guard wrapping follows the
// deployed run: alternates face the same telemetry faults the log records.
func Alternates(l *Log) ([]NamedPolicy, error) {
	deployed, err := DeployedController(l)
	if err != nil {
		return nil, err
	}
	out := []NamedPolicy{{Name: "deployed", Ctrl: deployed}}
	add := func(name string, spec obs.PolicySpec) {
		ctrl, err := polca.ControllerFromSpec(spec, l.Meta.Guard)
		if err == nil {
			out = append(out, NamedPolicy{Name: name, Ctrl: ctrl})
		}
	}
	add("1t-lowpri", obs.PolicySpec{Kind: "1t", Threshold: 0.89, Margin: 0.05, LockMHz: 1110})
	add("1t-all", obs.PolicySpec{Kind: "1t", Threshold: 0.89, Margin: 0.05, LockMHz: 1110, All: true})
	add("nocap", obs.PolicySpec{Kind: "nocap"})
	if l.Meta.Spec.Kind == "polca" {
		if ladder, err := polca.FromConfig(specConfig(l.Meta.Spec)); err == nil {
			var ctrl cluster.Controller = ladder
			if l.Meta.Guard != nil {
				if spec, _, err := polca.DescribeController(ladder); err == nil {
					if wrapped, err := polca.ControllerFromSpec(spec, l.Meta.Guard); err == nil {
						ctrl = wrapped
					}
				}
			}
			out = append(out, NamedPolicy{Name: "ladder", Ctrl: ctrl})
		}
	}
	return out, nil
}

// ThresholdGrid builds POLCA variants sweeping T1 and T2 around the
// deployed thresholds by the given offsets; variants whose thresholds
// fall outside (0,1) or invert are skipped. Non-POLCA logs get no grid.
func ThresholdGrid(l *Log, offsets []float64) []NamedPolicy {
	if l.Meta.Spec.Kind != "polca" {
		return nil
	}
	base := specConfig(l.Meta.Spec)
	var out []NamedPolicy
	for _, d1 := range offsets {
		for _, d2 := range offsets {
			cfg := base
			cfg.T1 += d1
			cfg.T2 += d2
			if cfg.T1 == base.T1 && cfg.T2 == base.T2 {
				continue
			}
			if cfg.Validate() != nil {
				continue
			}
			var ctrl cluster.Controller = polca.New(cfg)
			if l.Meta.Guard != nil {
				spec, _, err := polca.DescribeController(ctrl)
				if err != nil {
					continue
				}
				wrapped, err := polca.ControllerFromSpec(spec, l.Meta.Guard)
				if err != nil {
					continue
				}
				ctrl = wrapped
			}
			out = append(out, NamedPolicy{
				Name: fmt.Sprintf("T1=%.2f,T2=%.2f", cfg.T1, cfg.T2),
				Ctrl: ctrl,
			})
		}
	}
	return out
}

// specConfig converts a polca-kind PolicySpec back to its Config.
func specConfig(s obs.PolicySpec) polca.Config {
	return polca.Config{
		T1: s.T1, T2: s.T2, UncapMargin: s.UncapMargin,
		LPBaseMHz: s.LPBaseMHz, LPDeepMHz: s.LPDeepMHz, HPCapMHz: s.HPCapMHz,
	}
}
