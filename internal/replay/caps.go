package replay

import (
	"fmt"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/workload"
)

// fakeAct is the offline actuator: it holds the desired pool locks an
// alternate controller asserts, exactly as the row's desired-lock state
// would, with no OOB pipeline behind it. Observer() is nil — every policy
// treats observation as optional — so replaying emits nothing.
type fakeAct struct {
	locks [2]float64
	spec  gpu.Spec
}

func (a *fakeAct) SetPoolLock(p workload.Priority, mhz float64) { a.locks[p] = mhz }
func (a *fakeAct) PoolLock(p workload.Priority) float64         { return a.locks[p] }
func (a *fakeAct) GPUSpec() gpu.Spec                            { return a.spec }
func (a *fakeAct) Observer() *obs.Observer                      { return nil }

var _ cluster.Actuator = (*fakeAct)(nil)

// TickOutcome is what an alternate cap policy decided on one recorded tick.
type TickOutcome struct {
	Seq   uint64
	At    time.Duration
	LPMHz float64 // desired low-pool lock after the tick (0 = uncap)
	HPMHz float64
	// Diverged marks the tick's locks differing from the recorded run's.
	Diverged bool
}

// ReplayCaps drives a controller over the recorded tick stream, mirroring
// the row's epoch semantics exactly: crashed and missed epochs are
// controller silence (counting toward the deadman watchdog), recovery
// resets restartable controllers cold, lost readings go to loss-aware
// controllers as OnTelemetryLoss (contact) and count as silence otherwise,
// and delivered readings reach OnTelemetry. Route decisions are skipped.
// The returned outcomes align 1:1 with the log's tick decisions.
func ReplayCaps(l *Log, ctrl cluster.Controller) []TickOutcome {
	act := &fakeAct{spec: gpu.A100SXM80GB()}
	silent := 0
	wdEngaged := false
	contact := func() {
		silent = 0
		wdEngaged = false
	}
	silentEpoch := func() {
		silent++
		if l.Meta.WatchdogEpochs <= 0 || wdEngaged || silent < l.Meta.WatchdogEpochs {
			return
		}
		wdEngaged = true
		act.SetPoolLock(workload.Low, l.Meta.WatchdogLPMHz)
		act.SetPoolLock(workload.High, l.Meta.WatchdogHPMHz)
	}
	out := make([]TickOutcome, 0, l.Ticks())
	for _, d := range l.Decisions {
		if d.Kind != obs.DecTick {
			continue
		}
		now := d.At // sim.Time is a time.Duration alias
		if d.Reset {
			if rs, ok := ctrl.(cluster.Restartable); ok {
				rs.Reset()
			}
		}
		switch {
		case d.Down, d.Missed:
			silentEpoch()
		case d.Lost:
			if la, aware := ctrl.(cluster.TelemetryLossAware); aware {
				contact()
				la.OnTelemetryLoss(now, act)
			} else {
				silentEpoch()
			}
		case d.Delivered:
			contact()
			ctrl.OnTelemetry(now, d.Reading, act)
		default:
			// A tick with no epoch flag cannot be produced by the recorder;
			// treat it as silence rather than inventing a reading.
			silentEpoch()
		}
		out = append(out, TickOutcome{
			Seq:      d.Seq,
			At:       d.At,
			LPMHz:    act.locks[workload.Low],
			HPMHz:    act.locks[workload.High],
			Diverged: act.locks[workload.Low] != d.LPDesiredMHz || act.locks[workload.High] != d.HPDesiredMHz,
		})
	}
	return out
}

// DeployedController rebuilds the controller the log's run deployed, from
// the header's policy spec (guard-wrapped when the run guarded).
func DeployedController(l *Log) (cluster.Controller, error) {
	return polca.ControllerFromSpec(l.Meta.Spec, l.Meta.Guard)
}

// SelfCheck replays the log against its own recorded configuration and
// reports how many tick decisions diverged. Zero is the replay-fidelity
// contract: a decision log carries everything the deployed policy acted
// on, so re-running it must reproduce the run's every action.
func SelfCheck(l *Log) (diverged, ticks int, err error) {
	ctrl, err := DeployedController(l)
	if err != nil {
		return 0, 0, fmt.Errorf("replay: rebuild deployed policy: %w", err)
	}
	outs := ReplayCaps(l, ctrl)
	for _, o := range outs {
		if o.Diverged {
			diverged++
		}
	}
	return diverged, len(outs), nil
}
