package replay

import (
	"time"

	"polca/internal/obs"
	"polca/internal/serve"
	"polca/internal/workload"
)

// RouteOutcome is what an alternate router decided on one recorded pick.
type RouteOutcome struct {
	Seq    uint64
	At     time.Duration
	Chosen int32 // index into the recorded candidate set (-1 = none)
	// Diverged marks the pick differing from the recorded run's.
	Diverged bool
	// ChosenLoad and BestLoad are the picked replica's queued+running load
	// and the minimum load available in the snapshot, the router-quality
	// axis the summary aggregates.
	ChosenLoad int32
	BestLoad   int32
	// ChosenKV is the picked replica's KV-cache occupancy fraction.
	ChosenKV float64
}

// RouterSummary aggregates one router policy's replayed picks.
type RouterSummary struct {
	Name     string
	Routes   int
	Diverged int
	// MeanExcessLoad is the mean of (chosen load − best available load):
	// zero for a perfect queue balancer, higher when the policy trades
	// balance for affinity or power placement.
	MeanExcessLoad float64
	// MeanChosenKV is the mean KV occupancy of the picked replica.
	MeanChosenKV float64
	// CappedPicks counts picks that landed on a frequency-capped replica.
	CappedPicks int
}

// ReplayRoutes re-runs the log's route decisions through a fresh instance
// of the named router policy, feeding it the recorded candidate snapshots
// in record order. The live row keeps one router instance per priority
// pool (the two streams interleave in the log), so the replay does too —
// that is what makes stateful policies like round-robin reproduce their
// recorded cursor exactly.
func ReplayRoutes(l *Log, name string) ([]RouteOutcome, *RouterSummary, error) {
	routers := map[workload.Priority]serve.Router{}
	for _, p := range []workload.Priority{workload.Low, workload.High} {
		rt, err := serve.NewRouter(name)
		if err != nil {
			return nil, nil, err
		}
		routers[p] = rt
	}
	outs := make([]RouteOutcome, 0, l.Routes())
	sum := &RouterSummary{Name: name}
	var eps []serve.Endpoint
	for _, d := range l.Decisions {
		if d.Kind != obs.DecRoute {
			continue
		}
		cands := d.Candidates(l.Cands)
		eps = eps[:0]
		for _, c := range cands {
			eps = append(eps, serve.Endpoint{
				Load:      int(c.Load),
				KVFrac:    c.KVFrac,
				CappedMHz: c.CappedMHz,
			})
		}
		req := workload.Request{
			ID:          d.ReqID,
			Class:       d.Class,
			Priority:    workload.Priority(d.Pri),
			Retry:       int(d.Retry),
			Session:     d.Session,
			PrefixGroup: d.Prefix,
		}
		pick := routers[req.Priority].Pick(eps, req)
		o := RouteOutcome{
			Seq:      d.Seq,
			At:       d.At,
			Chosen:   int32(pick),
			Diverged: int32(pick) != d.Chosen,
		}
		if pick >= 0 {
			o.ChosenLoad = cands[pick].Load
			o.BestLoad = cands[pick].Load
			for _, c := range cands {
				if c.Load < o.BestLoad {
					o.BestLoad = c.Load
				}
			}
			o.ChosenKV = cands[pick].KVFrac
			sum.MeanExcessLoad += float64(o.ChosenLoad - o.BestLoad)
			sum.MeanChosenKV += o.ChosenKV
			if cands[pick].CappedMHz > 0 {
				sum.CappedPicks++
			}
		}
		if o.Diverged {
			sum.Diverged++
		}
		sum.Routes++
		outs = append(outs, o)
	}
	if sum.Routes > 0 {
		sum.MeanExcessLoad /= float64(sum.Routes)
		sum.MeanChosenKV /= float64(sum.Routes)
	}
	return outs, sum, nil
}
