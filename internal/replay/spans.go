package replay

import (
	"os"

	"polca/internal/obs"
)

// SpanStats aggregates a recorded run's request spans into the per-request
// scale factors the regret report uses: how much cap-induced slowdown and
// TTFT the deployed run actually charged each request (PR 5's attribution),
// against which a replay's estimated latency deltas can be read.
type SpanStats struct {
	// Requests counts root request spans (failover attempts folded: only
	// the final attempt of each request id counts).
	Requests int
	// MeanTTFTSec is the mean recorded time-to-first-token.
	MeanTTFTSec float64
	// TotalCapSec is the recorded cap-attributed slowdown summed over
	// requests; MeanCapSec is the per-request mean.
	TotalCapSec float64
	MeanCapSec  float64
	// TotalEnergyJ is the recorded GPU energy summed over requests;
	// MeanEnergyJ is the per-request mean.
	TotalEnergyJ float64
	MeanEnergyJ  float64
}

// LoadSpanStats streams a span trace (polca-sim -spans output) and folds
// it into SpanStats. Only root request spans contribute; for failed-over
// requests the highest-retry attempt wins, matching polca-analyze.
func LoadSpanStats(path string) (*SpanStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type reqAgg struct {
		retry   int32
		ttft    float64
		capSec  float64
		energyJ float64
	}
	reqs := map[int64]reqAgg{}
	err = obs.ScanSpans(f, nil, func(sp obs.Span) error {
		if sp.Kind != obs.SpanRequest {
			return nil
		}
		if prev, ok := reqs[sp.Req]; ok && prev.retry >= sp.Retry {
			return nil
		}
		reqs[sp.Req] = reqAgg{retry: sp.Retry, ttft: sp.TTFTSec, capSec: sp.CapSec, energyJ: sp.EnergyJ}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st := &SpanStats{Requests: len(reqs)}
	for _, a := range reqs {
		st.MeanTTFTSec += a.ttft
		st.TotalCapSec += a.capSec
		st.TotalEnergyJ += a.energyJ
	}
	if st.Requests > 0 {
		n := float64(st.Requests)
		st.MeanTTFTSec /= n
		st.MeanCapSec = st.TotalCapSec / n
		st.MeanEnergyJ = st.TotalEnergyJ / n
	}
	return st, nil
}
