// Package replay re-evaluates recorded power-management decisions against
// alternate policy configurations, purely from the input snapshots the
// decision log carries — no re-simulation. Each recorded controller tick
// holds exactly what the deployed policy saw (the delivered reading or the
// outage that replaced it, the guard/watchdog/brake state, the busy/power
// load per pool), so any alternate cap policy can be asked "what would you
// have done here?" and the divergence priced into regret: headroom the
// deployed config left unreclaimed, latency it burned capping deeper than
// the alternate, and the brake risk the alternate would have taken on.
// Route decisions replay the same way against any router policy, over the
// recorded per-replica queue/KV/cap candidate snapshots.
package replay

import (
	"fmt"
	"io"
	"os"

	"polca/internal/obs"
)

// Log is a fully loaded decision log: the header, the decisions in record
// order, and the candidate arena route decisions index into.
type Log struct {
	Meta      obs.DecisionMeta
	Decisions []obs.Decision
	Cands     []obs.RouteCandidate
	// Comments holds `#` provenance lines found before or between records.
	Comments []string
}

// Load reads a decision log written by obs.(*DecisionRecorder).WriteJSONL.
// The scanner's gap detection applies: a truncated or spliced log fails
// with the offending line number rather than replaying silently short.
func Load(r io.Reader) (*Log, error) {
	l := &Log{}
	meta, err := obs.ScanDecisions(r,
		func(line string) { l.Comments = append(l.Comments, line) },
		func(d obs.Decision, cands []obs.RouteCandidate) error {
			if d.Kind == obs.DecRoute {
				d.EpOff = int32(len(l.Cands))
				d.EpLen = int32(len(cands))
				l.Cands = append(l.Cands, cands...)
			}
			l.Decisions = append(l.Decisions, d)
			return nil
		})
	if err != nil {
		return nil, err
	}
	l.Meta = meta
	return l, nil
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// Ticks counts the controller-tick decisions in the log.
func (l *Log) Ticks() int { return l.count(obs.DecTick) }

// Routes counts the route decisions in the log.
func (l *Log) Routes() int { return l.count(obs.DecRoute) }

func (l *Log) count(k obs.DecisionKind) int {
	n := 0
	for _, d := range l.Decisions {
		if d.Kind == k {
			n++
		}
	}
	return n
}
