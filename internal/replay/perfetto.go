package replay

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"polca/internal/obs"
)

// WritePerfetto renders the summaries' top-regret ticks as a Chrome
// trace-event JSON file: one track per alternate policy, one duration slice
// per high-regret telemetry interval, carrying the priced regret in args.
// Loaded next to the run's span trace in ui.perfetto.dev, the slices
// annotate exactly where the deployed configuration left headroom or
// burned latency.
func WritePerfetto(w io.Writer, meta obs.DecisionMeta, sums []*PolicySummary) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(row string) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.WriteString(row)
		return err
	}
	if err := emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"polca-replay regret"}}`); err != nil {
		return err
	}
	durUS := int64(meta.TelemetrySec * 1e6)
	if durUS <= 0 {
		durUS = 2e6
	}
	for tid, s := range sums {
		if err := emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tid+1, jsonString("vs "+s.Name))); err != nil {
			return err
		}
		for _, r := range s.TopRegret {
			label := "headroom-left"
			if r.SavedJ > 0 {
				label = "energy-unsaved"
			}
			if r.BrakeRisk {
				label = "brake-risk"
			}
			row := fmt.Sprintf(
				`{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"args":{"seq":%d,"headroom_j":%s,"saved_j":%s,"latency_s":%s,"rec_lp_mhz":%s,"rec_hp_mhz":%s,"alt_lp_mhz":%s,"alt_hp_mhz":%s}}`,
				jsonString(label), tid+1, r.At.Microseconds(), durUS, r.Seq,
				jsonFloat(r.HeadroomJ), jsonFloat(r.SavedJ), jsonFloat(r.LatencyS),
				jsonFloat(r.RecLP), jsonFloat(r.RecHP), jsonFloat(r.AltLP), jsonFloat(r.AltHP))
			if err := emit(row); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
