package replay_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/faults"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/replay"
	"polca/internal/serve"
	"polca/internal/sim"
	"polca/internal/trace"
	"polca/internal/workload"
)

// recordedDay runs a faulted serve-mode day (telemetry dropout, a
// controller crash long enough to engage the watchdog, a node death) with
// the decision recorder attached, and returns the written log. The router
// is round-robin — the stateful policy — so route fidelity checks cursor
// reproduction, not just snapshot arithmetic.
func recordedDay(t *testing.T, horizon time.Duration) *replay.Log {
	t.Helper()
	cfg := cluster.Production()
	cfg.BaseServers = 8
	cfg.AddedFraction = 0.30
	cfg.BrakeUtil = 0.90
	cfg.BrakeReleaseUtil = 0.80
	cfg.Serve = &serve.Config{Router: "round-robin"}
	spec, err := faults.Parse("tdrop=0.15,crash=2m+45,kill=1@6m+1m")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = spec
	cfg.WatchdogEpochs = 5
	cfg.OOBRetryBudget = 8
	cfg.OOBRetryBackoff = 4 * time.Second
	cfg.DropStaleOOB = true
	cfg.ServeRetries = 3
	cfg.ServeRetryBackoff = 2 * time.Second

	ctrl := polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
	pspec, gspec, err := polca.DescribeController(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewDecisionRecorder()
	rec.UpdateMeta(func(m *obs.DecisionMeta) {
		m.Spec, m.Guard, m.Seed = pspec, gspec, cfg.Seed
	})
	eng := sim.New(cfg.Seed)
	eng.SetObserver(&obs.Observer{Decisions: rec})
	row := cluster.MustRow(eng, cfg, ctrl)

	shape := cfg.Shape()
	rate := 0.95 * float64(cfg.Servers()) / shape.MeanServiceSec
	rates := make([]float64, int(horizon/time.Minute))
	for i := range rates {
		rates[i] = rate
	}
	row.Run(trace.RatePlan{Bucket: time.Minute, Rates: rates, Shape: 32})

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := replay.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSelfReplayFidelity is the acceptance anchor: replaying a recorded
// faulted serve-mode day against its own configuration must reproduce the
// recorded action for 100% of decisions — every cap tick and every router
// pick. Nothing less proves the log carries the policy's full input.
func TestSelfReplayFidelity(t *testing.T) {
	horizon := 24 * time.Hour
	if testing.Short() {
		horizon = 20 * time.Minute
	}
	l := recordedDay(t, horizon)
	if l.Ticks() == 0 || l.Routes() == 0 {
		t.Fatalf("log has %d ticks, %d routes; the fidelity check is vacuous", l.Ticks(), l.Routes())
	}

	diverged, ticks, err := replay.SelfCheck(l)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != l.Ticks() {
		t.Fatalf("self-check covered %d ticks, log has %d", ticks, l.Ticks())
	}
	if diverged != 0 {
		t.Fatalf("self replay diverged on %d/%d ticks; the log does not carry the policy's full input", diverged, ticks)
	}

	outs, sum, err := replay.ReplayRoutes(l, l.Meta.Router)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != l.Routes() {
		t.Fatalf("route replay covered %d picks, log has %d", len(outs), l.Routes())
	}
	if sum.Diverged != 0 {
		t.Fatalf("self route replay diverged on %d/%d picks", sum.Diverged, sum.Routes)
	}
}

// TestAlternatesDivergeAndPrice: the alternate set must contain policies
// that genuinely diverge from the deployed run, and the regret model must
// price the divergence — no-cap leaves headroom claims on a run where the
// deployed policy capped.
func TestAlternatesDivergeAndPrice(t *testing.T) {
	l := recordedDay(t, 30*time.Minute)
	prof, err := replay.NewProfiler(l.Meta)
	if err != nil {
		t.Fatal(err)
	}
	alts, err := replay.Alternates(l)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	var nocap *replay.PolicySummary
	for _, a := range alts {
		names[a.Name] = true
		s := replay.Evaluate(l, a.Name, a.Ctrl, prof, 10)
		if s.Ticks != l.Ticks() {
			t.Fatalf("%s: evaluated %d ticks, log has %d", a.Name, s.Ticks, l.Ticks())
		}
		if a.Name == "deployed" && s.Diverged != 0 {
			t.Fatalf("deployed alternate diverged on %d ticks", s.Diverged)
		}
		if a.Name == "nocap" {
			nocap = s
		}
		if len(s.TopRegret) > 10 {
			t.Fatalf("%s: top-K regret table has %d entries", a.Name, len(s.TopRegret))
		}
		for i := 1; i < len(s.TopRegret); i++ {
			if s.TopRegret[i].Score() > s.TopRegret[i-1].Score() {
				t.Fatalf("%s: regret table not sorted at %d", a.Name, i)
			}
		}
	}
	for _, want := range []string{"deployed", "1t-lowpri", "1t-all", "nocap", "ladder"} {
		if !names[want] {
			t.Errorf("alternate set missing %q", want)
		}
	}
	if nocap == nil || nocap.Diverged == 0 {
		t.Fatal("no-cap never diverged from a capping run")
	}
	if nocap.HeadroomJ+nocap.SavedJ == 0 {
		t.Error("no-cap divergence carries no priced regret")
	}
	if nocap.HeadroomJ > 0 && nocap.LatencyS <= 0 {
		t.Error("headroom left implies the deployed config was capping, which must show as latency burned")
	}

	grid := replay.ThresholdGrid(l, []float64{-0.05, 0, 0.05})
	if len(grid) == 0 {
		t.Fatal("threshold grid is empty for a POLCA log")
	}
	for _, g := range grid {
		if !strings.Contains(g.Name, "T1=") {
			t.Fatalf("grid name %q does not carry thresholds", g.Name)
		}
	}
}

// TestRouterReplayAllPolicies: every registered router must replay over
// the recorded candidate snapshots, and the deployed router must be the
// only one guaranteed divergence-free.
func TestRouterReplayAllPolicies(t *testing.T) {
	l := recordedDay(t, 20*time.Minute)
	anyDiverged := false
	for _, name := range serve.RouterNames() {
		outs, sum, err := replay.ReplayRoutes(l, name)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Routes != l.Routes() || len(outs) != l.Routes() {
			t.Fatalf("%s: covered %d/%d routes", name, sum.Routes, l.Routes())
		}
		if name == l.Meta.Router {
			if sum.Diverged != 0 {
				t.Fatalf("deployed router %s diverged on %d picks", name, sum.Diverged)
			}
		} else if sum.Diverged > 0 {
			anyDiverged = true
		}
		if sum.MeanExcessLoad < 0 {
			t.Fatalf("%s: negative mean excess load", name)
		}
	}
	if !anyDiverged {
		t.Error("no alternate router ever diverged; the comparison is vacuous")
	}
	if _, _, err := replay.ReplayRoutes(l, "bogus"); err == nil {
		t.Error("unknown router accepted")
	}
}

// TestProfilerFactors: capping must slow execution and save busy power,
// uncapped must be the identity, and memoization must be stable.
func TestProfilerFactors(t *testing.T) {
	prof, err := replay.NewProfiler(obs.DecisionMeta{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pri := range []workload.Priority{workload.Low, workload.High} {
		tf0, pf0 := prof.Factors(pri, 0)
		if tf0 != 1 || pf0 != 1 {
			t.Fatalf("uncapped factors = %v/%v, want 1/1", tf0, pf0)
		}
		tf, pf := prof.Factors(pri, 1110)
		if tf <= 1 {
			t.Errorf("%v: capping at 1110 MHz must slow execution, tf=%v", pri, tf)
		}
		if pf >= 1 {
			t.Errorf("%v: capping at 1110 MHz must save busy power, pf=%v", pri, pf)
		}
		tf2, pf2 := prof.Factors(pri, 1110)
		if tf2 != tf || pf2 != pf {
			t.Error("memoized factors differ from first computation")
		}
		deepTF, deepPF := prof.Factors(pri, 990)
		if deepTF <= tf || deepPF >= pf {
			t.Errorf("%v: deeper cap must slow more (%v vs %v) and save more (%v vs %v)",
				pri, deepTF, tf, deepPF, pf)
		}
	}
	if _, err := replay.NewProfiler(obs.DecisionMeta{Model: "no-such-model"}); err == nil {
		t.Error("unknown header model accepted")
	}
	if _, err := replay.NewProfiler(obs.DecisionMeta{DType: "fp7"}); err == nil {
		t.Error("unknown header dtype accepted")
	}
}

// TestPerfettoAnnotation: the regret track must be valid Chrome trace JSON
// with one duration slice per top-regret tick plus track metadata.
func TestPerfettoAnnotation(t *testing.T) {
	sums := []*replay.PolicySummary{{
		Name: "nocap",
		TopRegret: []replay.TickRegret{
			{Seq: 7, At: 10 * time.Second, RecLP: 1110, AltLP: 0, HeadroomJ: 900, LatencyS: 1.5},
			{Seq: 9, At: 30 * time.Second, RecLP: 1110, AltLP: 0, SavedJ: 400, BrakeRisk: true},
		},
	}}
	var buf bytes.Buffer
	if err := replay.WritePerfetto(&buf, obs.DecisionMeta{TelemetrySec: 2}, sums); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["dur"].(float64) != 2e6 {
				t.Errorf("slice duration %v µs, want telemetry interval", ev["dur"])
			}
		case "M":
			meta++
		}
	}
	if slices != 2 {
		t.Errorf("%d slices, want 2", slices)
	}
	if meta < 2 {
		t.Errorf("%d metadata rows, want process + track names", meta)
	}
	if !strings.Contains(buf.String(), "brake-risk") {
		t.Error("brake-risk tick not labelled")
	}
}

// TestLoadRejectsTruncation: a log cut mid-stream must fail loudly.
func TestLoadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"schema":"polca-decisions/v2","policy":"x","spec":{"kind":"nocap"},"telemetry_s":2,"servers":1,"lp_servers":1,"provisioned_w":1,"brake_util":1,"brake_release_util":1,"idle_server_w":1,"busy_server_w":1}` + "\n")
	buf.WriteString(`{"seq":1,"t_us":0,"kind":"tick","true_util":0.5,"lp_mhz":0,"hp_mhz":0}` + "\n")
	buf.WriteString(`{"seq":3,"t_us":4000000,"kind":"tick","true_util":0.5,"lp_mhz":0,"hp_mhz":0}` + "\n")
	if _, err := replay.Load(&buf); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not detected: %v", err)
	}
}
