package llm

import (
	"math"
	"testing"
)

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestPrefillChunkAdditivity pins the property continuous batching relies
// on: splitting a prompt into chunks never changes the total prefill cost.
func TestPrefillChunkAdditivity(t *testing.T) {
	for _, m := range Catalog() {
		for _, split := range [][2]int{{1, 1}, {100, 300}, {2048, 904}, {17, 4000}} {
			a, b := split[0], split[1]
			whole := m.PrefillChunkFLOPs(a+b, 0)
			parts := m.PrefillChunkFLOPs(a, 0) + m.PrefillChunkFLOPs(b, a)
			if !relClose(whole, parts) {
				t.Errorf("%s: chunk FLOPs %d+%d = %g, whole = %g", m.Name, a, b, parts, whole)
			}
			// Bytes are additive except for one real cost of chunking:
			// the second chunk re-reads the first chunk's KV cache.
			wholeB := m.PrefillChunkBytes(FP16, a+b, 0) + m.KVBytesPerToken(FP16)*float64(a)
			partsB := m.PrefillChunkBytes(FP16, a, 0) + m.PrefillChunkBytes(FP16, b, a)
			if !relClose(wholeB, partsB) {
				t.Errorf("%s: chunk bytes %d+%d = %g, whole+reread = %g", m.Name, a, b, partsB, wholeB)
			}
		}
	}
}

// TestDecodeSpanMatchesSingleSteps pins the multi-step aggregation: a span
// of s decode steps costs exactly the sum of s single steps over the
// growing KV cache, in both FLOPs and bytes (beyond the per-pass weight
// stream, which the span caller pays separately).
func TestDecodeSpanMatchesSingleSteps(t *testing.T) {
	for _, m := range Catalog() {
		for _, c := range []struct{ steps, kv int }{{1, 0}, {8, 64}, {33, 1200}, {300, 5}} {
			var sum float64
			var sumB float64
			for i := 0; i < c.steps; i++ {
				sum += m.DecodeSpanFLOPs(1, c.kv+i)
				sumB += m.DecodeSpanBytes(FP16, 1, c.kv+i)
			}
			if span := m.DecodeSpanFLOPs(c.steps, c.kv); !relClose(span, sum) {
				t.Errorf("%s: span FLOPs(%d,%d) = %g, step sum = %g", m.Name, c.steps, c.kv, span, sum)
			}
			if span := m.DecodeSpanBytes(FP16, c.steps, c.kv); !relClose(span, sumB) {
				t.Errorf("%s: span bytes(%d,%d) = %g, step sum = %g", m.Name, c.steps, c.kv, span, sumB)
			}
		}
	}
}

// TestPrefillChunkMatchesPromptFLOPs checks the chunk arithmetic reduces to
// the slot model's prompt cost for a full-prompt chunk: exactly when every
// head carries KV (the causal halving is the same constant), and never
// above it under grouped-query attention.
func TestPrefillChunkMatchesPromptFLOPs(t *testing.T) {
	bloom := MustByName("BLOOM-176B") // KVHeads == 0: full multi-head KV
	for _, n := range []int{1, 400, 2048} {
		if got, want := bloom.PrefillChunkFLOPs(n, 0), bloom.PromptFLOPs(1, n); !relClose(got, want) {
			t.Errorf("BLOOM chunk(%d, 0) = %g, PromptFLOPs = %g", n, got, want)
		}
	}
	gqa := MustByName("Llama2-70B") // KVHeads 8 of 64
	if got, want := gqa.PrefillChunkFLOPs(2048, 0), gqa.PromptFLOPs(1, 2048); got > want {
		t.Errorf("Llama2-70B chunk attention %g exceeds full multi-head prompt cost %g", got, want)
	}
}
