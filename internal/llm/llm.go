// Package llm models the large language models characterized in the paper
// (Table 3) from first principles: parameter counts, architecture shapes,
// and the floating-point and memory-traffic cost of the prompt-processing
// and token-sampling phases of inference, as well as training iterations.
//
// The paper's central characterization facts fall out of this arithmetic:
//
//   - Prompt processing runs over the whole input in parallel, so its cost
//     is dominated by FLOPs (≈ 2·params per input token) — compute bound.
//   - Token sampling generates one token at a time and must stream the full
//     model weights (plus KV cache) from HBM for every step — memory bound,
//     hence the lower, stable power draw of the token phase.
//   - Training does a forward and backward pass (≈ 6·params FLOPs per
//     token) punctuated by gradient synchronization, which produces the
//     paper's per-iteration power swings.
package llm

import (
	"fmt"
	"sort"
)

// Arch is the transformer architecture family (paper §2).
type Arch int

const (
	// Encoder models (e.g. RoBERTa) contextualize the whole input in one
	// bidirectional pass; inference has no token-sampling phase.
	Encoder Arch = iota
	// Decoder models (e.g. GPT, BLOOM, Llama2) generate autoregressively:
	// a prompt phase followed by sequential token sampling.
	Decoder
	// EncoderDecoder models (e.g. Flan-T5) encode the input once, then
	// decode autoregressively.
	EncoderDecoder
)

// String returns the architecture name.
func (a Arch) String() string {
	switch a {
	case Encoder:
		return "encoder"
	case Decoder:
		return "decoder"
	case EncoderDecoder:
		return "encoder-decoder"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// DType is a numeric datatype for model weights (paper §4.2, "Impact of
// datatypes").
type DType int

const (
	FP32 DType = iota
	FP16
	INT8
	// FP8 is the H100-generation datatype the paper flags as a
	// forward-looking trade-off ("the FP8 engine in NVIDIA H100 could
	// further impact these trade-offs", §4.2).
	FP8
)

// Bytes returns the storage size of one element.
func (d DType) Bytes() float64 {
	switch d {
	case FP32:
		return 4
	case FP16:
		return 2
	case INT8, FP8:
		return 1
	}
	return 4
}

// String returns the datatype name.
func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	case FP8:
		return "fp8"
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// KernelEfficiency returns the fraction of peak math throughput that
// kernels for this datatype typically achieve. FP16 uses highly optimized
// tensor-core kernels; INT8 (bitsandbytes-style) pays for quantize/
// dequantize steps and less-tuned kernels, which the paper observes as
// slower execution despite the smaller footprint.
func (d DType) KernelEfficiency() float64 {
	switch d {
	case FP32:
		return 0.75
	case FP16:
		return 0.95
	case INT8:
		return 0.2
	case FP8:
		// Native transformer-engine support: no dequantization tax.
		return 0.9
	}
	return 0.75
}

// MemAmplification returns the factor by which weight-streaming traffic is
// inflated for this datatype. INT8 (bitsandbytes-style) dequantizes weights
// to half precision on the fly, reading the quantized weights and spilling
// dequantized tiles, so its effective traffic exceeds its storage size —
// this is why the paper finds INT8 *slower* than FP16 despite the smaller
// footprint.
func (d DType) MemAmplification() float64 {
	if d == INT8 {
		return 2.2
	}
	return 1
}

// Model describes one LLM from the paper's workload table.
type Model struct {
	Name   string
	Arch   Arch
	Params int64 // total parameter count

	// Architecture shape, used for attention and KV-cache arithmetic.
	Layers int // transformer blocks (encoder+decoder blocks for enc-dec)
	Hidden int // model (embedding) dimension
	Heads  int // attention heads
	// KVHeads is the number of key/value heads (grouped-query attention).
	// Zero means full multi-head attention (KVHeads == Heads).
	KVHeads int

	// InferenceGPUs is the number of A100-80GB GPUs the paper uses to serve
	// the model (Table 3), i.e. the tensor-parallel degree at FP16.
	InferenceGPUs int

	// InferenceOnly marks models the paper characterizes only for inference
	// (Llama2, OPT, BLOOM; Table 3 asterisks).
	InferenceOnly bool
}

// kvHeads returns the effective number of KV heads.
func (m Model) kvHeads() int {
	if m.KVHeads > 0 {
		return m.KVHeads
	}
	return m.Heads
}

// Validate reports whether the model description is internally consistent.
func (m Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("llm: model has no name")
	case m.Params <= 0:
		return fmt.Errorf("llm: %s: non-positive params", m.Name)
	case m.Layers <= 0 || m.Hidden <= 0 || m.Heads <= 0:
		return fmt.Errorf("llm: %s: incomplete architecture shape", m.Name)
	case m.Hidden%m.Heads != 0:
		return fmt.Errorf("llm: %s: hidden %d not divisible by heads %d", m.Name, m.Hidden, m.Heads)
	case m.InferenceGPUs <= 0:
		return fmt.Errorf("llm: %s: non-positive inference GPU count", m.Name)
	case m.kvHeads() > m.Heads || m.Heads%m.kvHeads() != 0:
		return fmt.Errorf("llm: %s: invalid KV head count %d", m.Name, m.KVHeads)
	}
	return nil
}

// WeightBytes returns the size of the model weights in bytes at the given
// datatype.
func (m Model) WeightBytes(dt DType) float64 {
	return float64(m.Params) * dt.Bytes()
}

// KVBytesPerToken returns the KV-cache growth per generated or cached token
// per sequence, in bytes: two tensors (K and V) of kv-head width per layer.
func (m Model) KVBytesPerToken(dt DType) float64 {
	kvWidth := float64(m.Hidden) * float64(m.kvHeads()) / float64(m.Heads)
	return 2 * float64(m.Layers) * kvWidth * dt.Bytes()
}

// PromptFLOPs returns the total floating-point work of processing a prompt
// of inputLen tokens at the given batch size: the standard 2·params
// per-token matmul cost plus the quadratic attention-score term
// (2·2·layers·inputLen²·hidden per sequence, causal-masked halving folded
// into the constant).
func (m Model) PromptFLOPs(batch, inputLen int) float64 {
	if batch <= 0 || inputLen <= 0 {
		return 0
	}
	tokens := float64(batch) * float64(inputLen)
	linear := 2 * float64(m.Params) * tokens
	attn := 2 * float64(m.Layers) * float64(inputLen) * float64(m.Hidden) * tokens
	return linear + attn
}

// TokenStepFLOPs returns the floating-point work of sampling one token for
// each sequence in the batch, with kvLen tokens already in the KV cache:
// 2·params per token plus attention against the cache.
func (m Model) TokenStepFLOPs(batch, kvLen int) float64 {
	if batch <= 0 {
		return 0
	}
	b := float64(batch)
	linear := 2 * float64(m.Params) * b
	attn := 4 * float64(m.Layers) * float64(kvLen) * float64(m.Hidden) * b * float64(m.kvHeads()) / float64(m.Heads)
	return linear + attn
}

// PromptBytes returns the HBM traffic of the prompt phase: weights are read
// once (they are amortized across all input tokens) plus activation
// traffic proportional to tokens.
func (m Model) PromptBytes(dt DType, batch, inputLen int) float64 {
	if batch <= 0 || inputLen <= 0 {
		return 0
	}
	tokens := float64(batch) * float64(inputLen)
	activations := 12 * float64(m.Layers) * float64(m.Hidden) * dt.Bytes() * tokens
	return m.WeightBytes(dt)*dt.MemAmplification() + activations
}

// TokenStepBytes returns the HBM traffic of one token-sampling step: the
// entire weight matrix is streamed once per step (this is what makes the
// token phase memory-bandwidth bound) plus the KV cache read for every
// sequence in the batch.
func (m Model) TokenStepBytes(dt DType, batch, kvLen int) float64 {
	if batch <= 0 {
		return 0
	}
	kv := m.KVBytesPerToken(dt) * float64(kvLen) * float64(batch)
	return m.WeightBytes(dt)*dt.MemAmplification() + kv
}

// PrefillChunkFLOPs returns the floating-point work of prefilling a chunk
// of chunk prompt tokens for one sequence whose KV cache already holds ctx
// tokens (chunked prefill, as continuous-batching schedulers run it):
// 2·params per chunk token plus attention of each chunk token against the
// prior context and the causally-preceding chunk tokens. At ctx == 0 with a
// full-prompt chunk it reproduces PromptFLOPs exactly (modulo the KV-head
// fraction, which PromptFLOPs folds into its constant), so chunking a
// prompt never changes its total attention FLOPs.
func (m Model) PrefillChunkFLOPs(chunk, ctx int) float64 {
	if chunk <= 0 {
		return 0
	}
	c, k := float64(chunk), float64(ctx)
	linear := 2 * float64(m.Params) * c
	pairs := c*k + c*c/2
	attn := 4 * float64(m.Layers) * float64(m.Hidden) * pairs * float64(m.kvHeads()) / float64(m.Heads)
	return linear + attn
}

// PrefillChunkBytes returns the HBM traffic of one prefill chunk beyond the
// per-iteration weight stream (which a continuous-batching scheduler pays
// once per iteration, not once per sequence): activation traffic for the
// chunk tokens, the KV write for the chunk, and one read of the prior
// context's KV cache.
func (m Model) PrefillChunkBytes(dt DType, chunk, ctx int) float64 {
	if chunk <= 0 {
		return 0
	}
	c := float64(chunk)
	activations := 12 * float64(m.Layers) * float64(m.Hidden) * dt.Bytes() * c
	kv := m.KVBytesPerToken(dt) * (c + float64(ctx))
	return activations + kv
}

// DecodeSpanFLOPs returns the floating-point work of decoding steps
// consecutive tokens for one sequence whose KV cache holds kvStart tokens
// at the first step and grows by one per step. It is the closed form of
// summing TokenStepFLOPs(1, kvStart+i) for i in [0, steps); schedulers that
// aggregate several identical decode steps into one simulated iteration use
// it to keep the exact per-step attention cost.
func (m Model) DecodeSpanFLOPs(steps, kvStart int) float64 {
	if steps <= 0 {
		return 0
	}
	s, k := float64(steps), float64(kvStart)
	linear := 2 * float64(m.Params) * s
	pairs := s*k + s*(s-1)/2
	attn := 4 * float64(m.Layers) * float64(m.Hidden) * pairs * float64(m.kvHeads()) / float64(m.Heads)
	return linear + attn
}

// DecodeSpanBytes returns the HBM traffic of the same decode span beyond
// the per-iteration weight stream: the KV cache read per step (growing by
// one token per step), the KV write of each new token, and the single-token
// activation traffic per step.
func (m Model) DecodeSpanBytes(dt DType, steps, kvStart int) float64 {
	if steps <= 0 {
		return 0
	}
	s, k := float64(steps), float64(kvStart)
	activations := 12 * float64(m.Layers) * float64(m.Hidden) * dt.Bytes() * s
	kvRead := m.KVBytesPerToken(dt) * (s*k + s*(s-1)/2)
	kvWrite := m.KVBytesPerToken(dt) * s
	return activations + kvRead + kvWrite
}

// TrainStepFLOPs returns the floating-point work of one training iteration
// on tokens = batch·seqLen: forward (2·params) plus backward (4·params) per
// token, plus the attention terms for both directions.
func (m Model) TrainStepFLOPs(batch, seqLen int) float64 {
	if batch <= 0 || seqLen <= 0 {
		return 0
	}
	tokens := float64(batch) * float64(seqLen)
	linear := 6 * float64(m.Params) * tokens
	attn := 6 * float64(m.Layers) * float64(seqLen) * float64(m.Hidden) * tokens
	return linear + attn
}

// GradientBytes returns the bytes exchanged per GPU in an all-reduce of the
// model gradients at the given data-parallel degree (ring all-reduce moves
// ~2·bytes·(n-1)/n per participant).
func (m Model) GradientBytes(dt DType, dataParallel int) float64 {
	if dataParallel <= 1 {
		return 0
	}
	n := float64(dataParallel)
	return 2 * m.WeightBytes(dt) * (n - 1) / n
}

// Catalog returns the models characterized in the paper (Table 3), in a
// stable order. Architecture shapes follow the published model cards.
func Catalog() []Model {
	models := []Model{
		{Name: "RoBERTa-355M", Arch: Encoder, Params: 355e6, Layers: 24, Hidden: 1024, Heads: 16, InferenceGPUs: 1},
		{Name: "Flan-T5-XXL-11B", Arch: EncoderDecoder, Params: 11e9, Layers: 48, Hidden: 4096, Heads: 64, InferenceGPUs: 1},
		{Name: "Llama2-13B", Arch: Decoder, Params: 13e9, Layers: 40, Hidden: 5120, Heads: 40, InferenceGPUs: 1, InferenceOnly: true},
		{Name: "GPT-NeoX-20B", Arch: Decoder, Params: 20e9, Layers: 44, Hidden: 6144, Heads: 64, InferenceGPUs: 2},
		{Name: "OPT-30B", Arch: Decoder, Params: 30e9, Layers: 48, Hidden: 7168, Heads: 56, InferenceGPUs: 4, InferenceOnly: true},
		{Name: "Llama2-70B", Arch: Decoder, Params: 70e9, Layers: 80, Hidden: 8192, Heads: 64, KVHeads: 8, InferenceGPUs: 4, InferenceOnly: true},
		{Name: "BLOOM-176B", Arch: Decoder, Params: 176e9, Layers: 70, Hidden: 14336, Heads: 112, InferenceGPUs: 8, InferenceOnly: true},
	}
	return models
}

// ByName returns the catalog model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	names := make([]string, 0, 8)
	for _, m := range Catalog() {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return Model{}, fmt.Errorf("llm: unknown model %q (have %v)", name, names)
}

// MustByName is ByName but panics on error; for use in examples and tests.
func MustByName(name string) Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// InferenceModels returns the catalog subset the paper profiles for
// generative inference timeseries (Figure 6): Flan-T5, GPT-NeoX, OPT,
// Llama2-70B, BLOOM.
func InferenceModels() []Model {
	var out []Model
	for _, m := range Catalog() {
		switch m.Name {
		case "Flan-T5-XXL-11B", "GPT-NeoX-20B", "OPT-30B", "Llama2-70B", "BLOOM-176B":
			out = append(out, m)
		}
	}
	return out
}

// TrainingModels returns the catalog subset the paper fine-tunes for the
// training characterization (Figure 4): RoBERTa, GPT-NeoX, Flan-T5.
func TrainingModels() []Model {
	var out []Model
	for _, m := range Catalog() {
		switch m.Name {
		case "RoBERTa-355M", "GPT-NeoX-20B", "Flan-T5-XXL-11B":
			out = append(out, m)
		}
	}
	return out
}
