package llm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogMatchesTable3(t *testing.T) {
	// Table 3 of the paper: model -> (#params, #inference GPUs).
	want := map[string]struct {
		params float64
		gpus   int
	}{
		"RoBERTa-355M":    {355e6, 1},
		"Llama2-13B":      {13e9, 1},
		"GPT-NeoX-20B":    {20e9, 2},
		"OPT-30B":         {30e9, 4},
		"Llama2-70B":      {70e9, 4},
		"BLOOM-176B":      {176e9, 8},
		"Flan-T5-XXL-11B": {11e9, 1},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d models, want %d", len(cat), len(want))
	}
	for _, m := range cat {
		w, ok := want[m.Name]
		if !ok {
			t.Errorf("unexpected model %s", m.Name)
			continue
		}
		if float64(m.Params) != w.params {
			t.Errorf("%s params = %d, want %g", m.Name, m.Params, w.params)
		}
		if m.InferenceGPUs != w.gpus {
			t.Errorf("%s gpus = %d, want %d", m.Name, m.InferenceGPUs, w.gpus)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestCatalogArchitectures(t *testing.T) {
	archs := map[string]Arch{
		"RoBERTa-355M":    Encoder,
		"Flan-T5-XXL-11B": EncoderDecoder,
		"Llama2-13B":      Decoder,
		"GPT-NeoX-20B":    Decoder,
		"OPT-30B":         Decoder,
		"Llama2-70B":      Decoder,
		"BLOOM-176B":      Decoder,
	}
	for name, arch := range archs {
		if m := MustByName(name); m.Arch != arch {
			t.Errorf("%s arch = %v, want %v", name, m.Arch, arch)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("BLOOM-176B"); err != nil {
		t.Errorf("ByName known model: %v", err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("ByName unknown model: want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName unknown: want panic")
		}
	}()
	MustByName("nope")
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{},
		{Name: "x", Params: -1, Layers: 1, Hidden: 8, Heads: 2, InferenceGPUs: 1},
		{Name: "x", Params: 1, Layers: 0, Hidden: 8, Heads: 2, InferenceGPUs: 1},
		{Name: "x", Params: 1, Layers: 1, Hidden: 9, Heads: 2, InferenceGPUs: 1},
		{Name: "x", Params: 1, Layers: 1, Hidden: 8, Heads: 2, InferenceGPUs: 0},
		{Name: "x", Params: 1, Layers: 1, Hidden: 8, Heads: 4, KVHeads: 3, InferenceGPUs: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: want error for %+v", i, m)
		}
	}
}

func TestDTypeBytes(t *testing.T) {
	if FP32.Bytes() != 4 || FP16.Bytes() != 2 || INT8.Bytes() != 1 {
		t.Error("datatype sizes wrong")
	}
	if FP16.KernelEfficiency() <= FP32.KernelEfficiency() {
		t.Error("FP16 kernels should beat FP32 (paper §4.2)")
	}
	if INT8.KernelEfficiency() >= FP16.KernelEfficiency() {
		t.Error("INT8 kernels should be slower than FP16 (paper §4.2)")
	}
}

func TestWeightBytesScalesWithDType(t *testing.T) {
	m := MustByName("Llama2-70B")
	if m.WeightBytes(FP32) != 2*m.WeightBytes(FP16) {
		t.Error("FP32 weights should be 2x FP16")
	}
	if m.WeightBytes(FP16) != 2*m.WeightBytes(INT8) {
		t.Error("FP16 weights should be 2x INT8")
	}
	// 70B at FP16 = 140 GB: needs 2 GPUs' worth of 80 GB memory, per paper.
	if gb := m.WeightBytes(FP16) / 1e9; gb < 130 || gb > 150 {
		t.Errorf("Llama2-70B FP16 = %.0f GB, want ~140", gb)
	}
}

func TestPromptFLOPsDominatedByLinearTerm(t *testing.T) {
	m := MustByName("BLOOM-176B")
	f := m.PromptFLOPs(1, 2048)
	approx := 2 * float64(m.Params) * 2048
	if f < approx {
		t.Errorf("prompt FLOPs %g below linear floor %g", f, approx)
	}
	if f > 2*approx {
		t.Errorf("attention term dominates at 2048 tokens: %g vs %g", f, approx)
	}
}

func TestTokenStepIsMemoryBound(t *testing.T) {
	// Arithmetic intensity (FLOPs/byte) of a token step at batch 1 must be
	// far below the A100 ridge point (~200 FLOPs/byte at FP16), while the
	// prompt phase at large input must be far above it. This is the root
	// cause of the paper's two-phase power signature.
	for _, m := range InferenceModels() {
		tokenAI := m.TokenStepFLOPs(1, 512) / m.TokenStepBytes(FP16, 1, 512)
		promptAI := m.PromptFLOPs(1, 2048) / m.PromptBytes(FP16, 1, 2048)
		if tokenAI > 20 {
			t.Errorf("%s token-phase arithmetic intensity %.1f too high", m.Name, tokenAI)
		}
		if promptAI < 100 {
			t.Errorf("%s prompt-phase arithmetic intensity %.1f too low", m.Name, promptAI)
		}
		if promptAI < 10*tokenAI {
			t.Errorf("%s: prompt AI %.1f not >> token AI %.1f", m.Name, promptAI, tokenAI)
		}
	}
}

func TestFLOPsMonotonicity(t *testing.T) {
	m := MustByName("GPT-NeoX-20B")
	f := func(a, b uint8) bool {
		b1, b2 := int(a%16)+1, int(b%16)+1
		i1, i2 := (int(a)%32+1)*64, (int(b)%32+1)*64
		if b1 <= b2 && i1 <= i2 {
			if m.PromptFLOPs(b1, i1) > m.PromptFLOPs(b2, i2) {
				return false
			}
			if m.TokenStepFLOPs(b1, i1) > m.TokenStepFLOPs(b2, i2) {
				return false
			}
			if m.TokenStepBytes(FP16, b1, i1) > m.TokenStepBytes(FP16, b2, i2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	m := MustByName("OPT-30B")
	if m.PromptFLOPs(0, 100) != 0 || m.PromptFLOPs(1, 0) != 0 {
		t.Error("zero batch/input should cost nothing")
	}
	if m.TokenStepFLOPs(0, 5) != 0 {
		t.Error("zero batch token step should cost nothing")
	}
	if m.PromptBytes(FP16, 0, 10) != 0 || m.TokenStepBytes(FP16, -1, 0) != 0 {
		t.Error("non-positive batch byte traffic should be zero")
	}
	if m.TrainStepFLOPs(0, 1) != 0 || m.TrainStepFLOPs(1, 0) != 0 {
		t.Error("degenerate training step should cost nothing")
	}
}

func TestTrainVsInferenceCost(t *testing.T) {
	m := MustByName("RoBERTa-355M")
	train := m.TrainStepFLOPs(8, 512)
	infer := m.PromptFLOPs(8, 512)
	if ratio := train / infer; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("train/infer FLOP ratio = %.2f, want ~3 (fwd+bwd)", ratio)
	}
}

func TestGradientBytes(t *testing.T) {
	m := MustByName("RoBERTa-355M")
	if m.GradientBytes(FP16, 1) != 0 {
		t.Error("no all-reduce needed at data-parallel 1")
	}
	g2 := m.GradientBytes(FP16, 2)
	g8 := m.GradientBytes(FP16, 8)
	if g2 <= 0 || g8 <= g2 {
		t.Errorf("gradient traffic should grow with parallel degree: %g, %g", g2, g8)
	}
	if g8 >= 2*m.WeightBytes(FP16) {
		t.Errorf("ring all-reduce bound exceeded: %g", g8)
	}
}

func TestKVCacheGQA(t *testing.T) {
	llama := MustByName("Llama2-70B") // 8 KV heads of 64
	bloom := MustByName("BLOOM-176B") // full MHA
	lr := llama.KVBytesPerToken(FP16) / (2 * float64(llama.Layers) * float64(llama.Hidden) * 2)
	if lr >= 1 {
		t.Errorf("GQA should shrink KV cache, ratio = %v", lr)
	}
	br := bloom.KVBytesPerToken(FP16) / (2 * float64(bloom.Layers) * float64(bloom.Hidden) * 2)
	if br != 1 {
		t.Errorf("MHA KV ratio = %v, want 1", br)
	}
}

func TestArchAndDTypeStrings(t *testing.T) {
	if Encoder.String() != "encoder" || Decoder.String() != "decoder" || EncoderDecoder.String() != "encoder-decoder" {
		t.Error("arch strings wrong")
	}
	if Arch(99).String() == "" || DType(99).String() == "" {
		t.Error("out-of-range strings empty")
	}
	if FP32.String() != "fp32" || FP16.String() != "fp16" || INT8.String() != "int8" {
		t.Error("dtype strings wrong")
	}
}

func TestModelSubsets(t *testing.T) {
	if n := len(InferenceModels()); n != 5 {
		t.Errorf("inference models = %d, want 5 (Figure 6)", n)
	}
	if n := len(TrainingModels()); n != 3 {
		t.Errorf("training models = %d, want 3 (Figure 4)", n)
	}
}
