package insights

import (
	"strings"
	"testing"
)

func TestVerifyAllInsightsHold(t *testing.T) {
	checks, err := VerifyAll(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != Count {
		t.Fatalf("checks = %d, want %d", len(checks), Count)
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("insight %d does not hold: %s\n  evidence: %s", c.ID, c.Statement, c.Evidence)
		}
		if c.Evidence == "" || c.Statement == "" {
			t.Errorf("insight %d missing statement/evidence", c.ID)
		}
	}
	if !AllHold(checks) {
		t.Error("AllHold disagrees with individual checks")
	}
}

func TestVerifyBounds(t *testing.T) {
	if _, err := Verify(0, 1); err == nil {
		t.Error("insight 0 should error")
	}
	if _, err := Verify(10, 1); err == nil {
		t.Error("insight 10 should error")
	}
}

func TestRender(t *testing.T) {
	checks := []Check{
		{ID: 1, Statement: "s", Holds: true, Evidence: "e"},
		{ID: 2, Statement: "t", Holds: false, Evidence: "f"},
	}
	out := Render(checks)
	if !strings.Contains(out, "✅ Insight 1") || !strings.Contains(out, "❌ Insight 2") {
		t.Errorf("render wrong:\n%s", out)
	}
	if AllHold(checks) {
		t.Error("AllHold should be false with a failing check")
	}
	if AllHold(checks[:1]) {
		t.Error("AllHold should require the full count")
	}
}
