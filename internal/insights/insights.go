// Package insights verifies the paper's nine numbered insights against the
// reproduction's own models and simulators. Each insight is a checkable
// proposition: Verify runs the relevant measurement and reports whether it
// holds, with the quantitative evidence.
//
// The suite doubles as the repository's highest-level integration test: if
// a model change breaks the physics an insight rests on, the corresponding
// check fails.
package insights

import (
	"fmt"
	"math/rand"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/llm"
	"polca/internal/plan"
	"polca/internal/profiler"
	"polca/internal/server"
	"polca/internal/sim"
	"polca/internal/trace"
	"polca/internal/workload"
)

// Check is the outcome of verifying one insight.
type Check struct {
	ID        int
	Statement string // the paper's insight, abridged
	Holds     bool
	Evidence  string
}

// Count is the number of insights in the paper.
const Count = 9

// Verify checks insight n (1-9) with randomness derived from seed.
func Verify(n int, seed int64) (Check, error) {
	switch n {
	case 1:
		return insight1()
	case 2:
		return insight2()
	case 3:
		return insight3()
	case 4:
		return insight4()
	case 5:
		return insight5()
	case 6:
		return insight6()
	case 7:
		return insight7()
	case 8:
		return insight8()
	case 9:
		return insight9(seed)
	}
	return Check{}, fmt.Errorf("insights: no insight %d (have 1-%d)", n, Count)
}

// VerifyAll checks every insight.
func VerifyAll(seed int64) ([]Check, error) {
	out := make([]Check, 0, Count)
	for n := 1; n <= Count; n++ {
		c, err := Verify(n, seed)
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
	return out, nil
}

func insight1() (Check, error) {
	c := Check{ID: 1, Statement: "Peak power in LLM training iterations often reaches or exceeds GPU TDP"}
	reached := 0
	peaks := ""
	for _, cfg := range plan.TrainingProfiles() {
		run, err := profiler.RunTraining(cfg, profiler.Knob{}, 2)
		if err != nil {
			return c, err
		}
		r := run.PeakWatts / run.Spec.TDPWatts
		peaks += fmt.Sprintf("%s %.2f×TDP; ", cfg.Model.Name, r)
		if r >= 0.99 {
			reached++
		}
	}
	c.Holds = reached >= 2 // all but the small encoder model
	c.Evidence = peaks
	return c, nil
}

func insight2() (Check, error) {
	c := Check{ID: 2, Statement: "Large coordinated power swings are common in LLM training"}
	util, err := cluster.SimulateTraining(cluster.ProductionTraining(), 30*time.Minute, rand.New(rand.NewSource(2)))
	if err != nil {
		return c, err
	}
	swing := util.MaxRise(2 * time.Second)
	c.Holds = swing >= 0.2
	c.Evidence = fmt.Sprintf("row power swings %.1f%% of provisioned capacity within 2s", swing*100)
	return c, nil
}

func insight3() (Check, error) {
	c := Check{ID: 3, Statement: "Power capping clips training peaks without lowering troughs; frequency locking lowers overall power"}
	cfg := plan.TrainingProfiles()[1] // GPT-NeoX
	base, err := profiler.RunTraining(cfg, profiler.Knob{}, 2)
	if err != nil {
		return c, err
	}
	capped, err := profiler.RunTraining(cfg, profiler.Knob{PowerCapWatts: 325}, 2)
	if err != nil {
		return c, err
	}
	locked, err := profiler.RunTraining(cfg, profiler.Knob{LockClockMHz: 1100}, 2)
	if err != nil {
		return c, err
	}
	capClips := capped.PeakWatts < base.PeakWatts && capped.TroughWatts > base.TroughWatts-5
	lockLowers := locked.PeakWatts < base.PeakWatts && locked.TroughWatts < base.TroughWatts+5
	c.Holds = capClips && lockLowers
	c.Evidence = fmt.Sprintf("peak/trough W — base %.0f/%.0f, capped %.0f/%.0f, locked %.0f/%.0f",
		base.PeakWatts, base.TroughWatts, capped.PeakWatts, capped.TroughWatts, locked.PeakWatts, locked.TroughWatts)
	return c, nil
}

func insight4() (Check, error) {
	c := Check{ID: 4, Statement: "Inference has brief prompt phases at/above TDP and longer token phases at lower power"}
	cfg := plan.InferenceConfig{Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16, BatchSize: 1, InputTokens: 2048, OutputTokens: 256}
	p, err := plan.NewInference(cfg)
	if err != nil {
		return c, err
	}
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	pe := dev.Run(p.Prompt)
	te := dev.Run(p.Token)
	tdp := dev.Spec().TDPWatts
	c.Holds = pe.PeakPower() >= tdp && te.MeanPower() < 0.8*tdp && te.Duration > 3*pe.Duration
	c.Evidence = fmt.Sprintf("prompt %.2f×TDP for %.2fs; token %.2f×TDP for %.2fs",
		pe.PeakPower()/tdp, pe.Duration.Seconds(), te.MeanPower()/tdp, te.Duration.Seconds())
	return c, nil
}

func insight5() (Check, error) {
	c := Check{ID: 5, Statement: "Peak/mean inference power depend on input and batch size; latency depends on output size"}
	bloom := llm.MustByName("BLOOM-176B")
	mk := func(b, in, out int) profiler.Measurement {
		m, _ := profiler.MeasureInference(plan.InferenceConfig{
			Model: bloom, DType: llm.FP16, BatchSize: b, InputTokens: in, OutputTokens: out}, profiler.Knob{})
		return m
	}
	small := mk(1, 256, 256)
	bigIn := mk(1, 8192, 256)
	bigBatch := mk(8, 256, 256)
	longOut := mk(1, 256, 1024)
	powerKnobs := bigIn.PeakTDP > small.PeakTDP+0.05 && bigBatch.PeakTDP > small.PeakTDP+0.05
	latencyKnob := longOut.Latency > 3*small.Latency &&
		longOut.PeakTDP < small.PeakTDP+0.02
	c.Holds = powerKnobs && latencyKnob
	c.Evidence = fmt.Sprintf("peak×TDP: base %.2f, input×32 %.2f, batch×8 %.2f; latency: base %.1fs, output×4 %.1fs",
		small.PeakTDP, bigIn.PeakTDP, bigBatch.PeakTDP, small.Latency.Seconds(), longOut.Latency.Seconds())
	return c, nil
}

func insight6() (Check, error) {
	c := Check{ID: 6, Statement: "Quantization reduces model size and power but keeps the prompt/token phase difference"}
	m := llm.MustByName("Llama2-70B")
	fp32GPUs := plan.GPUsForDType(m, llm.FP32, 80)
	fp16GPUs := plan.GPUsForDType(m, llm.FP16, 80)
	p, err := plan.NewInference(plan.InferenceConfig{
		Model: m, DType: llm.INT8, TensorParallel: 2, BatchSize: 1, InputTokens: 2048, OutputTokens: 128})
	if err != nil {
		return c, err
	}
	dev := gpu.NewDevice(gpu.A100SXM80GB())
	pe := dev.Run(p.Prompt)
	te := dev.Run(p.Token)
	phasesPersist := pe.PeakPower() > 1.2*te.MeanPower()
	c.Holds = fp16GPUs < fp32GPUs && phasesPersist
	c.Evidence = fmt.Sprintf("GPUs: FP32 %d vs FP16 %d; INT8 prompt %.0fW vs token %.0fW",
		fp32GPUs, fp16GPUs, pe.PeakPower(), te.MeanPower())
	return c, nil
}

func insight7() (Check, error) {
	c := Check{ID: 7, Statement: "Power capping is reactive (overshoots prompt spikes); frequency locking reclaims power reliably with minimal performance loss"}
	cfg := plan.InferenceConfig{Model: llm.MustByName("BLOOM-176B"), DType: llm.FP16, BatchSize: 1, InputTokens: 8192, OutputTokens: 128}
	capped, err := profiler.MeasureInference(cfg, profiler.Knob{PowerCapWatts: 325})
	if err != nil {
		return c, err
	}
	pts, err := profiler.FrequencySweep(cfg, []float64{1110})
	if err != nil {
		return c, err
	}
	lock := pts[0]
	overshoots := capped.PeakTDP > 325.0/400+0.05
	superlinear := lock.PeakPowerReduction > 2*lock.PerfReduction && lock.PeakPowerReduction > 0.1
	c.Holds = overshoots && superlinear
	c.Evidence = fmt.Sprintf("capped peak %.2f×TDP (cap at 0.81); 1.1GHz lock reclaims %.1f%% for %.1f%% perf",
		capped.PeakTDP, lock.PeakPowerReduction*100, lock.PerfReduction*100)
	return c, nil
}

func insight8() (Check, error) {
	c := Check{ID: 8, Statement: "GPUs are the majority of the variable portion of server power"}
	srv := server.New(0, server.DGXA100(gpu.A100SXM80GB()))
	idleGPU := srv.GPUIdleWatts()
	busyGPU := 8 * 400.0
	deltaServer := srv.PowerFromGPUs(busyGPU) - srv.PowerFromGPUs(idleGPU)
	deltaGPU := busyGPU - idleGPU
	share := deltaGPU / deltaServer
	c.Holds = share > 0.5
	c.Evidence = fmt.Sprintf("GPUs contribute %.0f%% of the idle-to-busy server power swing (%.0f of %.0f W)",
		share*100, deltaGPU, deltaServer)
	return c, nil
}

func insight9(seed int64) (Check, error) {
	c := Check{ID: 9, Statement: "Inference clusters offer far more power headroom than training clusters (statistical multiplexing)"}
	trainUtil, err := cluster.SimulateTraining(cluster.ProductionTraining(), 30*time.Minute, rand.New(rand.NewSource(seed)))
	if err != nil {
		return c, err
	}
	trainPeak := trainUtil.Peak()

	cfg := cluster.Production()
	cfg.BaseServers = 16
	cfg.Seed = seed
	eng := sim.New(seed)
	horizon := 6 * time.Hour
	ref := trace.ProductionInference().Reference(horizon, eng.Rand("reference"))
	arr, err := trace.FitArrivals(ref, cfg.Shape(), 5*time.Minute)
	if err != nil {
		return c, err
	}
	row, err := cluster.NewRow(eng, cfg, noCap{})
	if err != nil {
		return c, err
	}
	m := row.Run(arr)
	inferPeak := m.Util.Peak()

	trainHeadroom := 1 - trainPeak
	inferHeadroom := 1 - inferPeak
	c.Holds = inferHeadroom > 2*trainHeadroom && trainHeadroom < 0.1
	c.Evidence = fmt.Sprintf("peak utilization: training %.1f%% (headroom %.1f%%) vs inference %.1f%% (headroom %.1f%%)",
		trainPeak*100, trainHeadroom*100, inferPeak*100, inferHeadroom*100)
	return c, nil
}

// noCap is a local uncontrolled policy (avoids importing polca, which
// would be a dependency cycle risk for future polca->insights tests).
type noCap struct{}

func (noCap) Name() string { return "no-cap" }
func (noCap) OnTelemetry(now sim.Time, util float64, act cluster.Actuator) {
	act.SetPoolLock(workload.Low, 0)
	act.SetPoolLock(workload.High, 0)
}

// Render formats checks as a report table.
func Render(checks []Check) string {
	out := ""
	for _, c := range checks {
		mark := "✅"
		if !c.Holds {
			mark = "❌"
		}
		out += fmt.Sprintf("%s Insight %d: %s\n     %s\n", mark, c.ID, c.Statement, c.Evidence)
	}
	return out
}

// AllHold reports whether every check passed.
func AllHold(checks []Check) bool {
	for _, c := range checks {
		if !c.Holds {
			return false
		}
	}
	return len(checks) == Count
}
