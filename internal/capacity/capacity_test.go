package capacity

import (
	"math/rand"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/server"
	"polca/internal/stats"
	"polca/internal/trace"
)

func prodTrace(t *testing.T) stats.Series {
	t.Helper()
	return trace.ProductionInference().Reference(7*24*time.Hour, rand.New(rand.NewSource(11)))
}

func TestDerating(t *testing.T) {
	d := DeratingFor(server.DGXA100(gpu.A100SXM80GB()))
	if d.RatedWatts != 6500 {
		t.Errorf("rated = %v", d.RatedWatts)
	}
	// §5: up to ~800 W reclaimable per server.
	if d.Reclaimable < 500 || d.Reclaimable > 1000 {
		t.Errorf("reclaimable = %v W, want ~600-800", d.Reclaimable)
	}
	if d.PeakWatts+d.Reclaimable != d.RatedWatts {
		t.Error("derating arithmetic inconsistent")
	}
}

func TestAnalyzeHeadroom(t *testing.T) {
	ref := prodTrace(t)
	h := AnalyzeHeadroom(ref, 40*time.Second)
	// Table 4 inference shape: ~20+ points of headroom, modest 40s spikes.
	if h.Available < 0.15 {
		t.Errorf("available headroom = %.3f, want substantial", h.Available)
	}
	if h.PeakUtil+h.Available != 1 {
		t.Error("headroom arithmetic inconsistent")
	}
	if h.Spike40s <= 0 || h.Spike40s > 0.3 {
		t.Errorf("40s spike = %.3f, implausible", h.Spike40s)
	}
	if h.MeanUtil >= h.PeakUtil {
		t.Error("mean above peak")
	}
}

func TestCappedBusyWatts(t *testing.T) {
	cfg := cluster.Production()
	capped := CappedBusyWatts(cfg)
	base := cfg.BusyServerWatts()
	if capped >= base {
		t.Errorf("capping should reduce busy power: %v vs %v", capped, base)
	}
	// The reduction is bounded by the dynamic share.
	if capped < 0.8*base {
		t.Errorf("capped busy power %v implausibly low vs %v", capped, base)
	}
	if capped <= cfg.IdleServerWatts() {
		t.Error("capped busy power below idle")
	}
}

func TestPlanRow(t *testing.T) {
	cfg := cluster.Production()
	plan, err := PlanRow(cfg, prodTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's validated operating point is 30-35% more servers; the
	// analytic estimate should land in that neighbourhood.
	if plan.AddedFraction < 0.2 || plan.AddedFraction > 0.5 {
		t.Errorf("estimated added fraction = %.2f, want ~0.3", plan.AddedFraction)
	}
	if plan.MaxServers <= cfg.BaseServers {
		t.Error("plan gained no servers")
	}
	if plan.Thresholds.Validate() != nil {
		t.Error("trained thresholds invalid")
	}
	if plan.CappedBusyWatts >= plan.UncappedBusyWatts {
		t.Error("plan's capped power not below uncapped")
	}
}

func TestPlanRowErrors(t *testing.T) {
	if _, err := PlanRow(cluster.RowConfig{}, prodTrace(t)); err == nil {
		t.Error("want error for invalid config")
	}
	if _, err := PlanRow(cluster.Production(), stats.Series{}); err == nil {
		t.Error("want error for empty trace")
	}
}

func TestPlanFloorCapacity(t *testing.T) {
	top := cluster.ProductionTopology()
	floor, err := PlanFloorCapacity(top, cluster.Production(), prodTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if floor.FloorPlan.GainedServers <= 0 {
		t.Error("floor plan gained nothing")
	}
	// §6.7: cooling is not the binding constraint at these levels.
	if floor.CoolingHeadroom < 0.2 {
		t.Errorf("cooling headroom = %.2f, want comfortable", floor.CoolingHeadroom)
	}
	if _, err := PlanFloorCapacity(cluster.Topology{}, cluster.Production(), prodTrace(t)); err == nil {
		t.Error("want error for invalid topology")
	}
}
