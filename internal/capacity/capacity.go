// Package capacity implements the provisioning analyses of the paper's §5:
// derating GPU servers from nameplate ratings to realistic peaks, measuring
// the power headroom of a historical trace, and estimating how many
// additional servers a fixed row budget can host once a POLCA-style capping
// policy guards the peaks.
//
// These are planning estimates: they size a deployment analytically, and
// the cluster simulator validates the chosen point (the paper's own flow —
// analyze the trace, pick thresholds, then simulate §6.5's sweeps).
package capacity

import (
	"fmt"
	"math"
	"time"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/polca"
	"polca/internal/server"
	"polca/internal/stats"
)

// Derating reports the gap between a server's nameplate rating and its
// realistic peak draw (§5: "we could derate the power provisioned per
// server by up to 800 W").
type Derating struct {
	Server      string
	RatedWatts  float64
	PeakWatts   float64
	Reclaimable float64
}

// DeratingFor analyzes a server spec.
func DeratingFor(spec server.Spec) Derating {
	srv := server.New(0, spec)
	peak := srv.PeakWatts()
	return Derating{
		Server:      spec.Name,
		RatedWatts:  spec.ProvisionedWatts,
		PeakWatts:   peak,
		Reclaimable: spec.ProvisionedWatts - peak,
	}
}

// Headroom summarizes a row utilization trace for planning.
type Headroom struct {
	PeakUtil float64
	MeanUtil float64
	// Spike40s is the worst power rise within the OOB actuation latency —
	// the blind spot any capping policy must budget for.
	Spike40s float64
	// Available is the planning headroom: distance from the observed peak
	// to full budget.
	Available float64
}

// AnalyzeHeadroom summarizes a utilization series.
func AnalyzeHeadroom(util stats.Series, oobLatency time.Duration) Headroom {
	return Headroom{
		PeakUtil:  util.Peak(),
		MeanUtil:  util.Mean(),
		Spike40s:  util.MaxRise(oobLatency),
		Available: 1 - util.Peak(),
	}
}

// Plan is an analytic oversubscription estimate for one row.
type Plan struct {
	// Thresholds trained from the trace (§6.3).
	Thresholds polca.Config
	// CappedBusyWatts is the mean busy-server power with the row under the
	// Table 5 T2 caps.
	CappedBusyWatts float64
	// UncappedBusyWatts is the profiled busy-server power.
	UncappedBusyWatts float64
	// MaxServers is the estimated server count the budget hosts with the
	// capping policy holding the peak at T2.
	MaxServers int
	// AddedFraction is the estimated safe oversubscription level.
	AddedFraction float64
}

// PlanRow derives the §5/§6.3 planning estimate for a row from a
// historical utilization trace: train thresholds, estimate capped busy
// power, and size the fleet so the capped peak lands at the trained T2
// (the level the threshold training budgeted for stochastic peaks plus the
// OOB blind spot).
func PlanRow(cfg cluster.RowConfig, util stats.Series) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	if util.Len() < 2 {
		return Plan{}, fmt.Errorf("capacity: trace too short")
	}
	trained := polca.TrainThresholds(util, cfg.BrakeUtil, cfg.OOBLatency)
	shape := cfg.Shape()
	capped := CappedBusyWatts(cfg)

	busyAtPeak := shape.BusyFraction(util.Peak())
	perServerPeak := busyAtPeak*capped + (1-busyAtPeak)*shape.IdleServerWatts
	if perServerPeak <= 0 {
		return Plan{}, fmt.Errorf("capacity: degenerate power model")
	}
	maxServers := int(trained.T2 * shape.ProvisionedWatts / perServerPeak)
	if maxServers < cfg.BaseServers {
		maxServers = cfg.BaseServers
	}
	return Plan{
		Thresholds:        trained,
		CappedBusyWatts:   capped,
		UncappedBusyWatts: shape.BusyServerWatts,
		MaxServers:        maxServers,
		AddedFraction:     float64(maxServers)/float64(cfg.BaseServers) - 1,
	}, nil
}

// CappedBusyWatts estimates mean busy-server power with the row under the
// Table 5 T2 caps (low priority at 1110 MHz, high priority at 1305 MHz).
// The DVFS-scaled share of busy GPU power shrinks with the clock ratio;
// the memory-bound share does not.
func CappedBusyWatts(cfg cluster.RowConfig) float64 {
	base := cfg.BusyServerWatts()
	idle := cfg.IdleServerWatts()
	spec := gpu.A100SXM80GB()
	def := polca.DefaultConfig()
	ratio := (def.LPDeepMHz*cfg.LowPriorityFraction + def.HPCapMHz*(1-cfg.LowPriorityFraction)) / spec.MaxSMClockMHz
	const dynShare = 0.45 // clock-scaled share of busy power above idle
	delta := (base - idle) * dynShare * (1 - math.Pow(ratio, spec.DVFSAlpha))
	return base - delta
}

// Floor combines a row plan with the Figure 2 topology into a
// datacenter-level estimate.
type Floor struct {
	Plan      Plan
	FloorPlan cluster.FloorPlan
	// CoolingHeadroom at the rack level for the realistic server peak.
	CoolingHeadroom float64
}

// PlanFloorCapacity sizes every row of the topology at the analytic
// oversubscription level, checking §6.7's cooling constraint.
func PlanFloorCapacity(top cluster.Topology, cfg cluster.RowConfig, util stats.Series) (Floor, error) {
	plan, err := PlanRow(cfg, util)
	if err != nil {
		return Floor{}, err
	}
	fp, err := cluster.PlanFloor(top, math.Min(plan.AddedFraction, 1))
	if err != nil {
		return Floor{}, err
	}
	srv := server.New(0, server.DGXA100(gpu.A100SXM80GB()))
	return Floor{
		Plan:            plan,
		FloorPlan:       fp,
		CoolingHeadroom: top.CoolingHeadroom(srv.PeakWatts()),
	}, nil
}
