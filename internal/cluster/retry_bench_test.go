package cluster

// White-box benchmark for the serve-mode failover hot path: the retry
// min-heap's push/pop cycle. The heap stores entries by value in a reused
// backing array, so once the array has grown to the steady-state depth the
// cycle must allocate nothing — a requeue storm during a node-death window
// runs inside the simulator's event loop, and an allocation per retry
// would dominate the run. Gated at 0 allocs/op by `polca-bench
// -zero-alloc` in the bench-smoke target.

import (
	"testing"
	"time"

	"polca/internal/sim"
	"polca/internal/workload"
)

func BenchmarkRetryQueue(b *testing.B) {
	const depth = 64 // a hot row's worth of simultaneously backed-off retries
	var q retryQueue
	var seq uint64
	req := workload.Request{Priority: workload.Low, Class: "chat", Input: 512, Output: 128}
	push := func(due sim.Time) {
		seq++
		q.push(retryEntry{due: due, seq: seq, req: req})
	}
	// Pre-grow the backing array to steady state, with adversarial due
	// times so sift-up and sift-down both do real work.
	for i := 0; i < depth; i++ {
		push(sim.Time((depth - i) * int(time.Second)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		// Re-insert with the deterministic exponential backoff the requeue
		// path computes: base × 2^(attempt-1), shift capped at 6.
		e.req.Retry++
		shift := e.req.Retry - 1
		if shift > 6 {
			shift = 6
		}
		push(e.due + sim.Time(time.Second)<<shift)
	}
	if q.len() != depth {
		b.Fatalf("heap depth drifted: %d != %d", q.len(), depth)
	}
}
