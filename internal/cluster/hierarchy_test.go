package cluster_test

import (
	"strings"
	"testing"

	"polca/internal/cluster"
	"polca/internal/gpu"
	"polca/internal/server"
)

func TestTopologyArithmetic(t *testing.T) {
	top := cluster.ProductionTopology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.ServersPerRow() != 40 {
		t.Errorf("servers per row = %d, want 40 (Table 2)", top.ServersPerRow())
	}
	if top.Servers() != 400 {
		t.Errorf("floor servers = %d, want 400", top.Servers())
	}
	if top.RowBudgetWatts() != 40*4600 {
		t.Errorf("row budget = %v", top.RowBudgetWatts())
	}
	if top.RackBudgetWatts() != 4*4600 {
		t.Errorf("rack budget = %v", top.RackBudgetWatts())
	}
	if top.FloorBudgetWatts() != 10*40*4600 {
		t.Errorf("floor budget = %v", top.FloorBudgetWatts())
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := cluster.ProductionTopology()
	bad.Rows = 0
	if bad.Validate() == nil {
		t.Error("empty topology should fail")
	}
	bad = cluster.ProductionTopology()
	bad.UtilityFeedWatts = 1000
	if bad.Validate() == nil {
		t.Error("floor exceeding utility feed should fail")
	}
	bad = cluster.ProductionTopology()
	bad.ProvisionedPerServerWatts = 0
	if bad.Validate() == nil {
		t.Error("zero slice should fail")
	}
}

func TestRowConfigFor(t *testing.T) {
	top := cluster.ProductionTopology()
	cfg := top.RowConfigFor(0.30)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.BaseServers != 40 || cfg.AddedFraction != 0.30 {
		t.Errorf("row config = %+v", cfg)
	}
	if cfg.ProvisionedWatts() != top.RowBudgetWatts() {
		t.Error("row budget mismatch")
	}
}

func TestPlanFloor(t *testing.T) {
	top := cluster.ProductionTopology()
	plan, err := cluster.PlanFloor(top, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalServers != 520 || plan.GainedServers != 120 {
		t.Errorf("plan = %+v, want 520 total / 120 gained", plan)
	}
	if plan.DatacentersAvoided < 0.29 || plan.DatacentersAvoided > 0.31 {
		t.Errorf("datacenters avoided = %v, want ~0.30", plan.DatacentersAvoided)
	}
	if _, err := cluster.PlanFloor(top, -1); err == nil {
		t.Error("negative added should fail")
	}
	bad := top
	bad.Rows = 0
	if _, err := cluster.PlanFloor(bad, 0.3); err == nil {
		t.Error("invalid topology should fail")
	}
}

func TestDescribeHierarchy(t *testing.T) {
	text := cluster.ProductionTopology().Describe()
	for _, want := range []string{"utility feed", "row (PDU)", "rack", "8 GPUs", "POLCA"} {
		if !strings.Contains(text, want) {
			t.Errorf("Describe missing %q:\n%s", want, text)
		}
	}
}

func TestCoolingHeadroom(t *testing.T) {
	top := cluster.ProductionTopology()
	// §6.7: the oversubscription range does not hit the cooling bottleneck
	// — four DGX at realistic peak (~5.8 kW) sit well under 40 kW/rack.
	srv := server.New(0, server.DGXA100(gpu.A100SXM80GB()))
	head := top.CoolingHeadroom(srv.PeakWatts())
	if head < 0.3 {
		t.Errorf("air-cooling headroom = %.2f, want comfortable (paper §6.7)", head)
	}
	// Packing 8 such servers per rack would overwhelm air cooling.
	dense := top
	dense.ServersPerRack = 8
	if dense.CoolingHeadroom(srv.PeakWatts()) > 0.2 {
		t.Error("8 DGX per air-cooled rack should leave little headroom")
	}
	// Immersion cooling (paper cites [28]) lifts the limit.
	dense.CoolingPerRackWatts = 100000
	if dense.CoolingHeadroom(srv.PeakWatts()) < 0.3 {
		t.Error("immersion cooling should restore headroom")
	}
}
