package cluster

// White-box tests for brakeLogic's edge cases (§6.2's safety net): the
// engage latency, the minimum hold, and the hysteresis release interact in
// ways the black-box run tests cannot pin down tick by tick.

import (
	"testing"
	"time"

	"polca/internal/sim"
)

type idleCtrl struct{}

func (idleCtrl) Name() string                                         { return "idle" }
func (idleCtrl) OnTelemetry(now sim.Time, util float64, act Actuator) {}

// newBrakeRow builds a small row without starting its telemetry loop, so
// the test drives brakeLogic directly at controlled simulated times.
func newBrakeRow(t *testing.T) (*sim.Engine, *Row) {
	t.Helper()
	cfg := Production()
	cfg.BaseServers = 4
	eng := sim.New(1)
	row, err := NewRow(eng, cfg, idleCtrl{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, row
}

// at schedules one brakeLogic evaluation at an absolute simulated time,
// the way the telemetry tick would deliver it.
func at(eng *sim.Engine, when time.Duration, row *Row, util float64) {
	eng.At(sim.Time(when), func(now sim.Time) { row.brakeLogic(util) })
}

// TestBrakeEngagesDespiteDipWhilePending: utilization drops below the
// release threshold while the engage is still in flight (brakePending).
// The operator pulled the lever; the brake lands anyway — the pending
// engage is not cancelable, which is the conservative choice for a safety
// mechanism triggered by a breach.
func TestBrakeEngagesDespiteDipWhilePending(t *testing.T) {
	eng, row := newBrakeRow(t)
	at(eng, 2*time.Second, row, row.cfg.BrakeUtil) // breach: pending engage
	at(eng, 4*time.Second, row, 0.10)              // dip below release while pending
	eng.RunUntil(sim.Time(4 * time.Second))
	if row.braked || !row.brakePending {
		t.Fatal("brake should still be pending, not engaged or canceled")
	}
	eng.RunUntil(sim.Time(10 * time.Second))
	if !row.braked {
		t.Error("pending brake should engage after BrakeLatency despite the dip")
	}
	if row.metrics.BrakeEvents != 1 {
		t.Errorf("BrakeEvents = %d, want 1", row.metrics.BrakeEvents)
	}
}

// TestBrakeNoRetriggerDuringHold: a second breach while the brake is
// already engaged (or pending) must not start a second engagement.
func TestBrakeNoRetriggerDuringHold(t *testing.T) {
	eng, row := newBrakeRow(t)
	at(eng, 2*time.Second, row, row.cfg.BrakeUtil)  // breach
	at(eng, 4*time.Second, row, row.cfg.BrakeUtil)  // re-breach while pending
	at(eng, 10*time.Second, row, row.cfg.BrakeUtil) // re-breach while engaged, in hold
	at(eng, 20*time.Second, row, row.cfg.BrakeUtil) // still in hold
	eng.RunUntil(sim.Time(20 * time.Second))
	if !row.braked {
		t.Fatal("brake should be engaged")
	}
	if row.metrics.BrakeEvents != 1 {
		t.Errorf("BrakeEvents = %d, want 1 (no re-trigger during hold)", row.metrics.BrakeEvents)
	}
	// High utilization past the hold keeps it engaged too: release needs
	// the hysteresis threshold, not just the hold expiring.
	held := row.brakeHeld
	at(eng, time.Duration(held)+2*time.Second, row, row.cfg.BrakeUtil)
	eng.RunUntil(held + sim.Time(2*time.Second))
	if !row.braked {
		t.Error("brake should stay engaged while utilization is above release")
	}
}

// TestBrakeReleasesExactlyAtHoldExpiry: the hold boundary is inclusive —
// a below-threshold reading arriving exactly at brakeHeld releases.
func TestBrakeReleasesExactlyAtHoldExpiry(t *testing.T) {
	eng, row := newBrakeRow(t)
	at(eng, 2*time.Second, row, row.cfg.BrakeUtil)
	eng.RunUntil(sim.Time(10 * time.Second))
	if !row.braked {
		t.Fatal("precondition: brake engaged")
	}
	held := row.brakeHeld
	if held != sim.Time(2*time.Second)+sim.Time(row.cfg.BrakeLatency)+sim.Time(row.cfg.BrakeHold) {
		t.Fatalf("brakeHeld = %v, want trigger + latency + hold", held)
	}
	// One tick before the boundary: low utilization must NOT release.
	at(eng, time.Duration(held)-2*time.Second, row, 0.10)
	eng.RunUntil(held - sim.Time(2*time.Second))
	if !row.braked {
		t.Fatal("brake released before the hold expired")
	}
	// Exactly at the boundary: releases (>=, not >).
	at(eng, time.Duration(held), row, 0.10)
	eng.RunUntil(held)
	if row.braked {
		t.Error("brake should release exactly at brakeHeld")
	}
	if row.brakePending {
		t.Error("no engage should be pending after release")
	}
}
