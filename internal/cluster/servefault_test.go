package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/obs"
	"polca/internal/polca"
	"polca/internal/workload"
)

// serveFTConfig is the full serve-mode fault-tolerance stack on a small
// hot row: OOB hardening plus request failover, class shedding, circuit
// breaking, and watchdog drain.
func serveFTConfig(t *testing.T, spec string) cluster.RowConfig {
	t.Helper()
	cfg := serveConfig()
	cfg.AddedFraction = 0.30
	cfg.BrakeUtil = 0.90
	cfg.BrakeReleaseUtil = 0.80
	cfg.Faults = mustSpec(t, spec)
	cfg.WatchdogEpochs = 5
	cfg.OOBRetryBudget = 8
	cfg.OOBRetryBackoff = 4 * time.Second
	cfg.DropStaleOOB = true
	cfg.ServeRetries = 3
	cfg.ServeRetryBackoff = 2 * time.Second
	cfg.ServeClassShed = true
	cfg.ServeCircuitSheds = 10
	cfg.WatchdogDrain = true
	return cfg
}

func totals(m map[workload.Priority]int) int {
	return m[workload.Low] + m[workload.High]
}

// TestServeFailoverBeatsDropOnly is the failover acceptance anchor: under
// node-death chaos, arming the retry budget must strictly beat the
// drop-only baseline on completed requests — the whole point of cluster-
// level requeue is that a node death costs a recompute, not the request.
func TestServeFailoverBeatsDropOnly(t *testing.T) {
	run := func(retries int) *cluster.Metrics {
		cfg := serveConfig()
		cfg.Faults = mustSpec(t, "kill=6@8m+4m")
		cfg.ServeRetries = retries
		cfg.ServeRetryBackoff = 2 * time.Second
		return runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.9, 20*time.Minute))
	}
	base := run(0)
	ft := run(3)
	if totals(base.Arrived) != totals(ft.Arrived) {
		t.Fatalf("arrivals differ (%d vs %d): runs are not comparable", totals(base.Arrived), totals(ft.Arrived))
	}
	if totals(base.Dropped) == 0 {
		t.Fatal("drop-only baseline lost nothing; the kill window is not stressing the row")
	}
	if ft.ServeRetries == 0 {
		t.Error("failover run recorded no retries")
	}
	if totals(ft.Completed) <= totals(base.Completed) {
		t.Errorf("failover completed %d, drop-only baseline %d — retries must strictly help",
			totals(ft.Completed), totals(base.Completed))
	}
	if totals(ft.Dropped) >= totals(base.Dropped) {
		t.Errorf("failover dropped %d, baseline %d — retries must strictly reduce losses",
			totals(ft.Dropped), totals(base.Dropped))
	}
	// Conservation: every first admission either completes or is dropped
	// exactly once, retries notwithstanding.
	for _, m := range []*cluster.Metrics{base, ft} {
		if totals(m.Arrived) != totals(m.Completed)+totals(m.Dropped) {
			t.Errorf("arrived %d != completed %d + dropped %d",
				totals(m.Arrived), totals(m.Completed), totals(m.Dropped))
		}
	}
	t.Logf("baseline: %d/%d completed; failover: %d/%d completed, %d retries (%d exhausted)",
		totals(base.Completed), totals(base.Arrived),
		totals(ft.Completed), totals(ft.Arrived), ft.ServeRetries, ft.ServeRetryExhausted)
}

// TestServeClassShedProtectsCritical is the degradation acceptance anchor:
// under a sustained power emergency, SLO-class-aware shedding must keep
// the critical mixed-interactive class (chat) strictly better on TTFT SLO
// attainment than class-blind admission, by spending the batch class first.
func TestServeClassShedProtectsCritical(t *testing.T) {
	run := func(classShed bool) *cluster.Metrics {
		cfg := serveConfig()
		cfg.AddedFraction = 0.30
		cfg.BrakeUtil = 0.90
		cfg.BrakeReleaseUtil = 0.80
		// Tight TTFT SLO plus sustained overload: during brake windows the
		// capped row prefills slowly, so class-blind admission queues chat
		// behind batch work past the SLO; shedding batch first frees those
		// slots for chat.
		cfg.TTFTSLO = 3 * time.Second
		cfg.ServeClassShed = classShed
		return runRow(t, cfg, polca.New(polca.DefaultConfig()), flatPlan(cfg, 1.15, 20*time.Minute))
	}
	blind := run(false)
	shed := run(true)
	frac := func(m *cluster.Metrics) float64 {
		if m.ClassArrived["chat"] == 0 {
			t.Fatal("no chat arrivals; scenario is vacuous")
		}
		return float64(m.ClassSLOOK["chat"]) / float64(m.ClassArrived["chat"])
	}
	blindFrac, shedFrac := frac(blind), frac(shed)
	sheds := 0
	for _, v := range shed.ClassShed {
		sheds += v
	}
	if sheds == 0 {
		t.Fatal("class shedding never engaged; the emergency is not sustained enough")
	}
	if shed.ClassShed["chat"] != 0 {
		t.Errorf("shed %d chat requests; the critical class must be shed last", shed.ClassShed["chat"])
	}
	if shedFrac <= blindFrac {
		t.Errorf("chat SLO attainment %.3f with class shedding, %.3f class-blind — shedding must strictly protect the critical class",
			shedFrac, blindFrac)
	}
	t.Logf("chat SLO attainment: class-blind %.3f, class-shed %.3f (%d sheds, brakes %d→%d)",
		blindFrac, shedFrac, sheds, blind.BrakeEvents, shed.BrakeEvents)
}

// TestServeSafetyInvariantUnderFaults extends the acceptance-criteria
// safety anchor to the serving backend with the full fault-tolerance stack
// armed: across every chaos scenario, physical power may exceed the
// breaker threshold only for one excursion bounded by the brake engage
// latency plus its hold — failover and class shedding must never keep a
// row hot past the brake.
func TestServeSafetyInvariantUnderFaults(t *testing.T) {
	scenarios := map[string]string{
		"node-death": "kill=4@4m+2m,drain=2@8m+1m",
		"oob-burst":  "oobburst=5m+2m,ooblat=2",
		"crash":      "crash=5m+40,miss=0.02",
		"blackout":   "tdrop=0.05,tblackout=6m+40s",
	}
	policies := map[string]func() cluster.Controller{
		"nocap": func() cluster.Controller { return polca.NoCap{} },
		"polca-hardened": func() cluster.Controller {
			return polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
		},
	}
	for sname, spec := range scenarios {
		for pname, mk := range policies {
			t.Run(sname+"/"+pname, func(t *testing.T) {
				cfg := serveFTConfig(t, spec)
				m := runRow(t, cfg, mk(), flatPlan(cfg, 0.98, 12*time.Minute))
				bound := cfg.BrakeLatency + cfg.BrakeHold + 2*cfg.TelemetryInterval
				if worst := m.Util.LongestRunAbove(cfg.BrakeUtil); worst > bound {
					t.Errorf("power above breaker limit for %v contiguous, bound %v (brakes %d)",
						worst, bound, m.BrakeEvents)
				}
				if pname == "nocap" && m.BrakeEvents == 0 {
					t.Error("nocap run never braked; the scenario is not stressing the breaker")
				}
			})
		}
	}
}

// TestServeFaultToleranceDeterministic: the retry, health, and shedding
// paths must be deterministic — same seed, same spec, same run, event for
// event.
func TestServeFaultToleranceDeterministic(t *testing.T) {
	run := func() (*cluster.Metrics, []obs.Event) {
		cfg := serveFTConfig(t, "tdrop=0.1,crash=2m+30,oobburst=4m+1m,kill=2@5m+2m,drain=1@8m+1m")
		ctrl := polca.NewGuard(polca.New(polca.DefaultConfig()), polca.DefaultGuardConfig())
		m, _, o := runObservedRow(t, cfg, ctrl, 0.9, 10*time.Minute)
		return m, o.Tracer.Events()
	}
	m1, ev1 := run()
	m2, ev2 := run()
	if !reflect.DeepEqual(m1.Util.Values, m2.Util.Values) {
		t.Error("utilization series differ between identical runs")
	}
	if m1.ServeRetries != m2.ServeRetries || m1.ServeRetryExhausted != m2.ServeRetryExhausted ||
		m1.CircuitOpens != m2.CircuitOpens || m1.NodeDrains != m2.NodeDrains {
		t.Error("fault-tolerance counters differ between identical runs")
	}
	if !reflect.DeepEqual(m1.ClassShed, m2.ClassShed) || !reflect.DeepEqual(m1.ClassSLOOK, m2.ClassSLOOK) {
		t.Error("per-class goodput accounting differs between identical runs")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event streams differ in length: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
}

// TestServeKVConservationAcrossFailover: a node death frees the dead
// replica's KV reservations, the revived node comes back cold, and retried
// re-admissions reserve afresh — the row-wide ledger must still balance
// exactly at drain.
func TestServeKVConservationAcrossFailover(t *testing.T) {
	cfg := serveConfig()
	cfg.Faults = mustSpec(t, "kill=4@5m+2m")
	cfg.ServeRetries = 5
	cfg.ServeRetryBackoff = 2 * time.Second
	m := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.8, 16*time.Minute))
	if m.NodeDeaths == 0 {
		t.Fatal("kill window injected no node deaths")
	}
	if m.ServeRetries == 0 {
		t.Fatal("node deaths triggered no failover retries; scenario is vacuous")
	}
	if m.Serve.KVReservedTokens != m.Serve.KVFreedTokens {
		t.Errorf("KV ledger leaked across failover: reserved %d, freed %d",
			m.Serve.KVReservedTokens, m.Serve.KVFreedTokens)
	}
	if totals(m.Arrived) != totals(m.Completed)+totals(m.Dropped) {
		t.Errorf("request conservation broken: arrived %d, completed %d, dropped %d",
			totals(m.Arrived), totals(m.Completed), totals(m.Dropped))
	}
}

// TestServeQuiescentFTDoesNotPerturb: arming every fault-tolerance knob on
// a fault-free run must not change a single sample — the zero-perturbation
// guarantee that keeps the serve figures byte-identical.
func TestServeQuiescentFTDoesNotPerturb(t *testing.T) {
	base := serveConfig()
	hard := base
	hard.ServeRetries = 3
	hard.ServeRetryBackoff = 2 * time.Second
	hard.ServeClassShed = true
	hard.ServeCircuitSheds = 10
	hard.WatchdogDrain = true
	hard.WatchdogEpochs = 50
	// Moderate load on purpose: a hotter row would engage the brake, and
	// class shedding responding to a real power emergency is not a
	// perturbation — it is the feature. Quiescent means no faults AND no
	// emergency.
	plan := flatPlan(base, 0.6, 10*time.Minute)
	m1 := runRow(t, base, polca.New(polca.DefaultConfig()), plan)
	m2 := runRow(t, hard, polca.New(polca.DefaultConfig()), plan)
	if !reflect.DeepEqual(m1.Util.Values, m2.Util.Values) {
		t.Error("quiescent fault tolerance changed the utilization series")
	}
	if !reflect.DeepEqual(m1.Completed, m2.Completed) || !reflect.DeepEqual(m1.Dropped, m2.Dropped) {
		t.Error("quiescent fault tolerance changed request outcomes")
	}
	if m1.Serve.Batches != m2.Serve.Batches || m1.Serve.DecodeTokens != m2.Serve.DecodeTokens {
		t.Error("quiescent fault tolerance changed scheduler behaviour")
	}
	if m2.ServeRetries != 0 || m2.ServeRetryExhausted != 0 || m2.CircuitOpens != 0 || m2.NodeDrains != 0 {
		t.Errorf("quiescent run tripped a fault-tolerance path: %+v", m2)
	}
	for class, n := range m2.ClassShed {
		if n != 0 {
			t.Errorf("quiescent run shed %d %s requests", n, class)
		}
	}
}

// TestServeDrainWindows: an injected maintenance drain must take replicas
// out of routing without losing their in-flight work — admissions go
// elsewhere, running requests finish, and the window is counted once.
func TestServeDrainWindows(t *testing.T) {
	cfg := serveConfig()
	cfg.Faults = mustSpec(t, "drain=3@4m+2m")
	m := runRow(t, cfg, &recordingCtrl{}, flatPlan(cfg, 0.5, 12*time.Minute))
	if m.NodeDrains != 3 {
		t.Errorf("NodeDrains = %d, want 3 (one per drained server)", m.NodeDrains)
	}
	if m.NodeDeaths != 0 {
		t.Errorf("drain window killed %d nodes; maintenance must be graceful", m.NodeDeaths)
	}
	if d := totals(m.Dropped); d != 0 {
		t.Errorf("graceful drain dropped %d requests; in-flight work must finish and admissions must route around", d)
	}
	if m.Serve.KVReservedTokens != m.Serve.KVFreedTokens {
		t.Errorf("KV ledger leaked across drain: reserved %d, freed %d",
			m.Serve.KVReservedTokens, m.Serve.KVFreedTokens)
	}
	if m.Faults.NodeDrains != 3 {
		t.Errorf("injector counted %d drain entries, want 3", m.Faults.NodeDrains)
	}
}
