package cluster

import (
	"strconv"
	"time"

	"polca/internal/obs"
	"polca/internal/sim"
	"polca/internal/workload"
)

// This file wires the row into the sim-time TSDB and the alert rules
// engine (internal/obs). When the run's observer carries a TSDB, NewRow
// registers the row's signal hierarchy — per-server power/cap/KV/queue
// series rolling up into row sums and maxes, the row series rolling up
// into site power — and the telemetry tick ingests one sample per signal
// and evaluates the rules. Like every other instrument, the whole wiring
// is observation-only: a nil TSDB costs one branch per tick, and enabling
// it leaves every simulated metric byte-identical.

// serverSeriesCapacity is the per-ring bucket count for per-server
// series. Server signals are consulted for rollups and recent-history
// queries, not long retention, so they keep a shorter window than the
// row/site series (which use the TSDB default) — at 10k-GPU topologies
// the per-server rings dominate the telemetry footprint.
const serverSeriesCapacity = 128

// defaultTTFTSLO is the TTFT SLO threshold used for the TSDB's SLO
// counters when RowConfig.TTFTSLO is unset.
const defaultTTFTSLO = 15 * time.Second

// rowTSDB holds the row's registered series handles, cached at
// construction so the telemetry tick ingests without lookups.
type rowTSDB struct {
	db    *obs.TSDB
	rules *obs.Rules

	// Row-level gauges (direct observations each tick).
	util     *obs.TSSeries // interval-mean power / provisioned
	headroom *obs.TSSeries // 1 - util: distance to the breaker
	breaker  *obs.TSSeries // provisioned watts (constant, for rule RHS)
	capped   *obs.TSSeries // servers with an applied lock

	// Row-level rollups (fed by per-server children; never observed
	// directly).
	power  *obs.TSSeries // sum of server power
	capmhz *obs.TSSeries // max applied lock
	kv     *obs.TSSeries // max replica KV occupancy (serve mode)
	queue  *obs.TSSeries // serve: sum of replica queues; slot: front-door depth

	// Row-level cumulative counters (observed from the run metrics).
	brakeTotal   *obs.TSSeries
	oobFailTotal *obs.TSSeries
	dropTotal    *obs.TSSeries
	reqTotal     *obs.TSSeries

	// Serve-mode latency signals (event-driven from replica callbacks).
	ttft      *obs.TSSeries // per-request TTFT seconds
	tbt       *obs.TSSeries // per-request mean TBT seconds
	ttftOK    *obs.TSSeries // requests meeting the TTFT SLO
	ttftTotal *obs.TSSeries // all first tokens

	// Serve-mode fault-tolerance counters. Registered only when a
	// fault-tolerance knob is armed so the series list (and rule
	// bindings) for existing configurations stays byte-identical.
	retryTotal *obs.TSSeries // cumulative failover requeues
	shedTotal  *obs.TSSeries // cumulative class-shed drops

	// Per-server children, indexed by node.
	srvPower []*obs.TSSeries
	srvCap   []*obs.TSSeries
	srvKV    []*obs.TSSeries
	srvQueue []*obs.TSSeries

	ttftSLOSec float64
}

// initTSDB registers the row's series hierarchy. Must run before
// initServe so the replica callbacks can reach the latency series.
func (r *Row) initTSDB(o *obs.Observer) {
	db := o.TimeSeries()
	if db == nil {
		return
	}
	ts := &rowTSDB{db: db, rules: o.RuleEngine()}
	slo := r.cfg.TTFTSLO
	if slo == 0 {
		slo = defaultTTFTSLO
	}
	ts.ttftSLOSec = slo.Seconds()

	site := db.Series("site.power", obs.LevelSite, obs.WithUnit("W"))
	ts.power = db.Series("row.power", obs.LevelRow, obs.WithUnit("W"),
		obs.WithParent(site, obs.AggSum))
	ts.util = db.Series("row.util", obs.LevelRow, obs.WithUnit("frac"))
	ts.headroom = db.Series("row.headroom", obs.LevelRow, obs.WithUnit("frac"))
	ts.breaker = db.Series("row.breaker", obs.LevelRow, obs.WithUnit("W"))
	ts.capmhz = db.Series("row.capmhz", obs.LevelRow, obs.WithUnit("MHz"))
	ts.capped = db.Series("row.capped_servers", obs.LevelRow, obs.WithUnit("servers"))
	ts.queue = db.Series("row.queue", obs.LevelRow, obs.WithUnit("requests"))
	if r.serveMode() {
		ts.kv = db.Series("row.kv", obs.LevelRow, obs.WithUnit("frac"))
		ts.ttft = db.Series("row.ttft", obs.LevelRow, obs.WithUnit("s"))
		ts.tbt = db.Series("row.tbt", obs.LevelRow, obs.WithUnit("s"))
		ts.ttftOK = db.Series("row.ttft_ok", obs.LevelRow, obs.CounterSeries())
		ts.ttftTotal = db.Series("row.ttft_total", obs.LevelRow, obs.CounterSeries())
		if r.cfg.serveFaultTolerant() {
			ts.retryTotal = db.Series("row.retries_total", obs.LevelRow, obs.CounterSeries())
			ts.shedTotal = db.Series("row.sheds_total", obs.LevelRow, obs.CounterSeries())
		}
	}
	ts.brakeTotal = db.Series("row.brake_total", obs.LevelRow, obs.CounterSeries())
	ts.oobFailTotal = db.Series("row.oob_fail_total", obs.LevelRow, obs.CounterSeries())
	ts.dropTotal = db.Series("row.drops_total", obs.LevelRow, obs.CounterSeries())
	ts.reqTotal = db.Series("row.req_total", obs.LevelRow, obs.CounterSeries())

	n := len(r.nodes)
	ts.srvPower = make([]*obs.TSSeries, n)
	ts.srvCap = make([]*obs.TSSeries, n)
	if r.serveMode() {
		ts.srvKV = make([]*obs.TSSeries, n)
		ts.srvQueue = make([]*obs.TSSeries, n)
	}
	for i := range r.nodes {
		lbl := obs.Label("server", strconv.Itoa(i))
		ts.srvPower[i] = db.Series(obs.MergeLabels("server.power", lbl), obs.LevelServer,
			obs.WithUnit("W"), obs.WithParent(ts.power, obs.AggSum),
			obs.WithCapacity(serverSeriesCapacity))
		ts.srvCap[i] = db.Series(obs.MergeLabels("server.capmhz", lbl), obs.LevelServer,
			obs.WithUnit("MHz"), obs.WithParent(ts.capmhz, obs.AggMax),
			obs.WithCapacity(serverSeriesCapacity))
		if r.serveMode() {
			ts.srvKV[i] = db.Series(obs.MergeLabels("server.kv", lbl), obs.LevelServer,
				obs.WithUnit("frac"), obs.WithParent(ts.kv, obs.AggMax),
				obs.WithCapacity(serverSeriesCapacity))
			ts.srvQueue[i] = db.Series(obs.MergeLabels("server.queue", lbl), obs.LevelServer,
				obs.WithUnit("requests"), obs.WithParent(ts.queue, obs.AggSum),
				obs.WithCapacity(serverSeriesCapacity))
		}
	}
	r.tsdb = ts
}

// tsdbTick ingests one telemetry sample per signal and evaluates the
// alert rules. Runs at the end of each telemetry tick; all reads are
// non-destructive (TelemetrySample, PowerAt), so the sample changes
// nothing downstream. The explicit Flush completes the parent rollups
// for this tick before the rules read them, so `row.power` rules see the
// current tick rather than lagging one interval.
func (r *Row) tsdbTick(now sim.Time, util float64) {
	ts := r.tsdb
	if ts == nil {
		return
	}
	capped := 0
	for i, n := range r.nodes {
		ts.srvPower[i].Observe(now, r.nodePower(n, now))
		ts.srvCap[i].Observe(now, n.appliedLock)
		if n.appliedLock > 0 && !n.dead {
			capped++
		}
		if ts.srvKV != nil && n.rep != nil {
			s := n.rep.TelemetrySample()
			ts.srvKV[i].Observe(now, s.KVFrac)
			ts.srvQueue[i].Observe(now, float64(s.Queue))
		}
	}
	ts.util.Observe(now, util)
	ts.headroom.Observe(now, 1-util)
	ts.breaker.Observe(now, r.metrics.Provisioned)
	ts.capped.Observe(now, float64(capped))
	if !r.serveMode() {
		ts.queue.Observe(now, float64(len(r.frontQ[workload.Low])+len(r.frontQ[workload.High])))
	}
	m := r.metrics
	ts.brakeTotal.Observe(now, float64(m.BrakeEvents))
	ts.oobFailTotal.Observe(now, float64(m.FailedCommands))
	ts.dropTotal.Observe(now, float64(m.Dropped[workload.Low]+m.Dropped[workload.High]))
	ts.reqTotal.Observe(now, float64(m.Completed[workload.Low]+m.Completed[workload.High]))
	if ts.retryTotal != nil {
		ts.retryTotal.Observe(now, float64(m.ServeRetries))
		sheds := 0
		for _, v := range m.ClassShed {
			sheds += v
		}
		ts.shedTotal.Observe(now, float64(sheds))
	}
	ts.db.Flush()
	ts.rules.Eval(now)
}

// observeFirstToken feeds the serve-mode TTFT signals: the latency
// distribution plus the good/total SLO counters burn-rate rules consume.
func (ts *rowTSDB) observeFirstToken(now sim.Time, ttftSec float64) {
	if ts == nil {
		return
	}
	ts.ttft.Observe(now, ttftSec)
	ts.ttftTotal.Add(now, 1)
	if ttftSec <= ts.ttftSLOSec {
		ts.ttftOK.Add(now, 1)
	}
}

// scheduleTSDBFinish arms the rules engine's end-of-run resolution as an
// engine event at the resolve timestamp (one evaluation step past the
// last telemetry tick). Resolving through the engine — rather than after
// the drain — keeps the event trace timestamp-ordered: drain-phase
// completions before the resolve time are emitted first, those after it
// later. Called between stopTelemetry and the drain run.
func (r *Row) scheduleTSDBFinish() {
	ts := r.tsdb
	if ts == nil {
		return
	}
	if end := ts.rules.FinishTime(); end > 0 {
		r.eng.At(end, func(sim.Time) { ts.rules.Finish() })
	}
}

// finishTSDB closes the telemetry pipeline at end of run: open alert
// episodes resolve (reason "end-of-run" semantics live in the rules
// engine) and pending rollups flush. Idempotent.
func (r *Row) finishTSDB() {
	if r.tsdb == nil {
		return
	}
	r.tsdb.rules.Finish()
	r.tsdb.db.Flush()
}
