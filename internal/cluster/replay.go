package cluster

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"polca/internal/sim"
	"polca/internal/trace"
	"polca/internal/workload"
)

// GenerateRequests materializes the synthetic request trace for a row: the
// arrival times of the fitted plan with concrete classes, priorities, and
// token sizes sampled from the row's workload mix. This is the artifact the
// paper's simulator consumes ("this synthetic trace contains the arrivals
// for each inference request along with their input and output sizes",
// §6.4); it can be saved, audited, and replayed with Row.RunRequests.
func GenerateRequests(cfg RowConfig, plan trace.RatePlan, seed int64) ([]workload.Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.New(seed)
	sampler := workload.NewSampler(cfg.Classes, eng.Rand("workload"))
	poolRNG := eng.Rand("dispatch")
	arrRNG := eng.Rand("arrivals")

	// Pool split mirrors NewRow: weight ∝ poolSize / mean service time.
	total := cfg.Servers()
	lpServers := int(float64(total)*cfg.LowPriorityFraction + 0.5)
	wLow := float64(lpServers) / cfg.MeanServiceSeconds(workload.Low)
	wHigh := float64(total-lpServers) / cfg.MeanServiceSeconds(workload.High)
	lowProb := 0.0
	if wLow+wHigh > 0 {
		lowProb = wLow / (wLow + wHigh)
	}

	var out []workload.Request
	t := time.Duration(0)
	for {
		next, ok := plan.NextAfter(t, arrRNG)
		if !ok {
			return out, nil
		}
		t = next
		pri := workload.High
		if poolRNG.Float64() < lowProb {
			pri = workload.Low
		}
		out = append(out, sampler.SampleWithPriority(next, pri))
	}
}

// RunRequests simulates the row serving an explicit, pre-materialized
// request trace (e.g. one loaded from disk) instead of sampling arrivals
// online. Requests must be sorted by arrival time.
func (r *Row) RunRequests(reqs []workload.Request, horizon time.Duration) *Metrics {
	// An explicit trace needs no rate plan, but the admission gate derives
	// its offered-load target from one: reconstruct a coarse plan from the
	// trace itself (arrival counts per 5-minute bucket).
	r.arrivalPlan = planFromRequests(reqs, horizon)
	for _, req := range reqs {
		req := req
		if req.Arrival > horizon {
			break
		}
		r.eng.At(req.Arrival, func(now sim.Time) {
			r.metrics.Arrived[req.Priority]++
			r.dispatch(now, req)
		})
	}
	r.startTelemetry()
	r.eng.RunUntil(horizon)
	r.stopTelemetry()
	r.scheduleTSDBFinish()
	r.eng.RunUntil(horizon + 30*time.Minute)
	r.metrics.Faults = r.inj.Counts()
	r.finalizeServe()
	r.finishTSDB()
	return r.metrics
}

// planFromRequests histograms arrivals into a rate plan.
func planFromRequests(reqs []workload.Request, horizon time.Duration) trace.RatePlan {
	bucket := 5 * time.Minute
	n := int(horizon/bucket) + 1
	plan := trace.RatePlan{Bucket: bucket, Rates: make([]float64, n), Shape: 32}
	for _, req := range reqs {
		i := int(req.Arrival / bucket)
		if i >= 0 && i < n {
			plan.Rates[i] += 1 / bucket.Seconds()
		}
	}
	return plan
}

// SaveRequestsCSV writes a request trace with one row per request.
func SaveRequestsCSV(w io.Writer, reqs []workload.Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"arrival_sec", "class", "priority", "input_tokens", "output_tokens"}); err != nil {
		return err
	}
	for _, r := range reqs {
		rec := []string{
			strconv.FormatFloat(r.Arrival.Seconds(), 'f', 3, 64),
			r.Class,
			r.Priority.String(),
			strconv.Itoa(r.Input),
			strconv.Itoa(r.Output),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadRequestsCSV reads a trace written by SaveRequestsCSV and returns the
// requests sorted by arrival.
func LoadRequestsCSV(rd io.Reader) ([]workload.Request, error) {
	cr := csv.NewReader(rd)
	cr.Comment = '#' // skip run-provenance header lines
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("cluster: empty request trace")
	}
	var out []workload.Request
	for i, rec := range records[1:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("cluster: trace line %d: want 5 fields, got %d", i+2, len(rec))
		}
		sec, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: trace line %d: bad arrival: %w", i+2, err)
		}
		var pri workload.Priority
		switch rec[2] {
		case "low":
			pri = workload.Low
		case "high":
			pri = workload.High
		default:
			return nil, fmt.Errorf("cluster: trace line %d: bad priority %q", i+2, rec[2])
		}
		input, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("cluster: trace line %d: bad input: %w", i+2, err)
		}
		output, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("cluster: trace line %d: bad output: %w", i+2, err)
		}
		if input <= 0 || output < 0 {
			return nil, fmt.Errorf("cluster: trace line %d: non-positive sizes", i+2)
		}
		out = append(out, workload.Request{
			ID:       int64(i + 1),
			Class:    rec[1],
			Priority: pri,
			Arrival:  time.Duration(sec * float64(time.Second)),
			Input:    input,
			Output:   output,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Arrival < out[b].Arrival })
	return out, nil
}
