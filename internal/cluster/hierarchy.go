package cluster

import (
	"fmt"
	"strings"
)

// Topology describes the datacenter power-distribution hierarchy of
// Figure 2: the utility feed powers the datacenter floor, PDUs power rows
// of racks, racks hold GPU servers, and each server holds eight GPUs.
// Power budgets attach at the PDU (row) level, which is where POLCA takes
// its capping decisions (§6.3: "a higher power aggregation level, namely
// the PDU breaker").
type Topology struct {
	Name string
	// Rows is the number of PDU domains on the floor.
	Rows int
	// RacksPerRow and ServersPerRack describe the physical layout. Modern
	// GPU servers are power-dense: a 6U DGX-A100 allows ~4 per rack before
	// the rack budget, not space, binds (§6.7).
	RacksPerRow    int
	ServersPerRack int
	// ProvisionedPerServerWatts is the per-server power slice.
	ProvisionedPerServerWatts float64
	// UtilityFeedWatts is the datacenter's contracted power envelope.
	UtilityFeedWatts float64
	// CoolingPerRackWatts is the heat the row's cooling can remove per
	// rack. Zero means the air-cooling default (40 kW).
	CoolingPerRackWatts float64
}

// ProductionTopology returns a floor of Table 2-style rows: ten rows of
// ten racks, four DGX-class servers each, derated to 4.6 kW slices.
func ProductionTopology() Topology {
	return Topology{
		Name:                      "llm-inference-floor",
		Rows:                      10,
		RacksPerRow:               10,
		ServersPerRack:            4,
		ProvisionedPerServerWatts: 4600,
		UtilityFeedWatts:          2.0e6,
	}
}

// coolingLimit returns the effective per-rack cooling capacity.
func (t Topology) coolingLimit() float64 {
	if t.CoolingPerRackWatts > 0 {
		return t.CoolingPerRackWatts
	}
	return 40000 // conventional hot/cold-aisle air cooling
}

// CoolingHeadroom returns the fraction of per-rack cooling capacity left
// at the rack's realistic peak heat (§6.7: cooling could become a
// bottleneck under extreme oversubscription, but not in POLCA's range).
// Negative means the rack overwhelms its cooling.
func (t Topology) CoolingHeadroom(peakServerWatts float64) float64 {
	heat := float64(t.ServersPerRack) * peakServerWatts
	return 1 - heat/t.coolingLimit()
}

// ServersPerRow returns the server count in one PDU domain.
func (t Topology) ServersPerRow() int { return t.RacksPerRow * t.ServersPerRack }

// Servers returns the total server count on the floor.
func (t Topology) Servers() int { return t.Rows * t.ServersPerRow() }

// RowBudgetWatts returns one PDU's power budget.
func (t Topology) RowBudgetWatts() float64 {
	return float64(t.ServersPerRow()) * t.ProvisionedPerServerWatts
}

// RackBudgetWatts returns one rack's share of the row budget.
func (t Topology) RackBudgetWatts() float64 {
	return float64(t.ServersPerRack) * t.ProvisionedPerServerWatts
}

// FloorBudgetWatts returns the sum of row budgets.
func (t Topology) FloorBudgetWatts() float64 {
	return float64(t.Rows) * t.RowBudgetWatts()
}

// Validate reports whether the topology is coherent: every level must fit
// inside its parent's envelope.
func (t Topology) Validate() error {
	switch {
	case t.Rows <= 0 || t.RacksPerRow <= 0 || t.ServersPerRack <= 0:
		return fmt.Errorf("cluster: empty topology")
	case t.ProvisionedPerServerWatts <= 0:
		return fmt.Errorf("cluster: no per-server budget")
	case t.UtilityFeedWatts <= 0:
		return fmt.Errorf("cluster: no utility feed")
	case t.FloorBudgetWatts() > t.UtilityFeedWatts:
		return fmt.Errorf("cluster: floor budget %.0f W exceeds utility feed %.0f W",
			t.FloorBudgetWatts(), t.UtilityFeedWatts)
	}
	return nil
}

// RowConfigFor derives the simulation RowConfig for one PDU domain of this
// topology, inheriting everything else from the production defaults.
func (t Topology) RowConfigFor(added float64) RowConfig {
	cfg := Production()
	cfg.BaseServers = t.ServersPerRow()
	cfg.ProvisionedPerServerWatts = t.ProvisionedPerServerWatts
	cfg.AddedFraction = added
	return cfg
}

// OversubscribedServers returns how many servers the floor hosts at the
// given oversubscription level, and how many were gained.
func (t Topology) OversubscribedServers(added float64) (total, gained int) {
	perRow := int(float64(t.ServersPerRow())*(1+added) + 0.5)
	total = perRow * t.Rows
	return total, total - t.Servers()
}

// Describe renders the hierarchy as a Figure 2-style tree with budgets.
func (t Topology) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "utility feed (%.1f MW)\n", t.UtilityFeedWatts/1e6)
	fmt.Fprintf(&b, "└── datacenter floor %q: %d rows, %.2f MW provisioned\n",
		t.Name, t.Rows, t.FloorBudgetWatts()/1e6)
	fmt.Fprintf(&b, "    └── row (PDU): %d racks, %.0f kW — POLCA's capping domain\n",
		t.RacksPerRow, t.RowBudgetWatts()/1000)
	fmt.Fprintf(&b, "        └── rack: %d servers, %.1f kW\n",
		t.ServersPerRack, t.RackBudgetWatts()/1000)
	fmt.Fprintf(&b, "            └── server: 8 GPUs, %.1f kW slice (derated from 6.5 kW rating)\n",
		t.ProvisionedPerServerWatts/1000)
	return b.String()
}

// FloorPlan summarizes an oversubscription decision across the floor.
type FloorPlan struct {
	Topology      Topology
	Added         float64
	TotalServers  int
	GainedServers int
	// DatacentersAvoided expresses the gained capacity in fractions of the
	// original floor — the paper's headline framing ("reduces costs
	// through fewer datacenters").
	DatacentersAvoided float64
}

// PlanFloor computes the floor-level effect of deploying the given
// oversubscription fraction in every row.
func PlanFloor(t Topology, added float64) (FloorPlan, error) {
	if err := t.Validate(); err != nil {
		return FloorPlan{}, err
	}
	if added < 0 || added > 1 {
		return FloorPlan{}, fmt.Errorf("cluster: added fraction %v outside [0,1]", added)
	}
	total, gained := t.OversubscribedServers(added)
	return FloorPlan{
		Topology:           t,
		Added:              added,
		TotalServers:       total,
		GainedServers:      gained,
		DatacentersAvoided: float64(gained) / float64(t.Servers()),
	}, nil
}
