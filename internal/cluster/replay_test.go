package cluster_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"polca/internal/cluster"
	"polca/internal/sim"
	"polca/internal/workload"
)

func TestGenerateRequests(t *testing.T) {
	cfg := testConfig()
	plan := flatPlan(cfg, 0.5, time.Hour)
	reqs, err := cluster.GenerateRequests(cfg, plan, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 50 {
		t.Fatalf("requests = %d, want a busy hour", len(reqs))
	}
	var low int
	for i, r := range reqs {
		if i > 0 && r.Arrival < reqs[i-1].Arrival {
			t.Fatal("requests not sorted by arrival")
		}
		if r.Input <= 0 || r.Output < 0 {
			t.Fatalf("bad sizes in request %+v", r)
		}
		if r.Priority == workload.Low {
			low++
		}
	}
	// Both pools see traffic.
	if low == 0 || low == len(reqs) {
		t.Errorf("degenerate priority mix: %d/%d low", low, len(reqs))
	}
	// Deterministic for a given seed.
	again, err := cluster.GenerateRequests(cfg, plan, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(reqs) || again[0] != reqs[0] {
		t.Error("generation not deterministic")
	}
	// Invalid config rejected.
	if _, err := cluster.GenerateRequests(cluster.RowConfig{}, plan, 1); err == nil {
		t.Error("want error for invalid config")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	reqs, err := cluster.GenerateRequests(cfg, flatPlan(cfg, 0.4, 10*time.Minute), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cluster.SaveRequestsCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	loaded, err := cluster.LoadRequestsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(loaded), len(reqs))
	}
	for i := range reqs {
		a, b := reqs[i], loaded[i]
		if a.Class != b.Class || a.Priority != b.Priority || a.Input != b.Input || a.Output != b.Output {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, a, b)
		}
		// Arrivals round to milliseconds in the CSV.
		if diff := a.Arrival - b.Arrival; diff > time.Millisecond || diff < -time.Millisecond {
			t.Fatalf("arrival drift %v", diff)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"arrival_sec,class,priority,input_tokens,output_tokens\nbad,chat,low,1,1\n",
		"arrival_sec,class,priority,input_tokens,output_tokens\n1.0,chat,medium,1,1\n",
		"arrival_sec,class,priority,input_tokens,output_tokens\n1.0,chat,low,x,1\n",
		"arrival_sec,class,priority,input_tokens,output_tokens\n1.0,chat,low,0,1\n",
	}
	for i, c := range cases {
		if _, err := cluster.LoadRequestsCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunRequestsReplay(t *testing.T) {
	cfg := testConfig()
	horizon := time.Hour
	plan := flatPlan(cfg, 0.5, horizon)
	reqs, err := cluster.GenerateRequests(cfg, plan, 13)
	if err != nil {
		t.Fatal(err)
	}

	replay := cluster.MustRow(sim.New(13), cfg, &recordingCtrl{}).RunRequests(reqs, horizon)
	arrived := replay.Arrived[workload.Low] + replay.Arrived[workload.High]
	completed := replay.Completed[workload.Low] + replay.Completed[workload.High]
	dropped := replay.Dropped[workload.Low] + replay.Dropped[workload.High]
	if arrived != len(reqs) {
		t.Errorf("arrived %d != trace length %d", arrived, len(reqs))
	}
	if completed+dropped != arrived {
		t.Errorf("conservation violated: %d + %d != %d", completed, dropped, arrived)
	}
	if replay.Util.Len() == 0 {
		t.Fatal("no telemetry recorded")
	}

	// Replay should be statistically indistinguishable from the online run
	// at the same load (same mix and rates; different RNG interleaving).
	online := cluster.MustRow(sim.New(13), cfg, &recordingCtrl{}).Run(plan)
	or := online.Util.Mean()
	rr := replay.Util.Mean()
	if rr < or*0.9 || rr > or*1.1 {
		t.Errorf("replay mean util %.3f far from online %.3f", rr, or)
	}
	// Determinism: replaying the same trace twice is bitwise identical.
	again := cluster.MustRow(sim.New(13), cfg, &recordingCtrl{}).RunRequests(reqs, horizon)
	for i := range replay.Util.Values {
		if replay.Util.Values[i] != again.Util.Values[i] {
			t.Fatal("replay not deterministic")
		}
	}
}
